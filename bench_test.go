package camouflage

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (DESIGN.md §4 experiment index), plus ablations and
// substrate micro-benchmarks. Custom metrics report the quantities the
// paper's figures plot (cycles per call, relative overhead, ns per
// iteration); wall-clock ns/op measures the simulator itself.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"camouflage/internal/attack"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/core"
	"camouflage/internal/fault"
	"camouflage/internal/figures"
	"camouflage/internal/hyp"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/lmbench"
	"camouflage/internal/obs"
	"camouflage/internal/pac"
	"camouflage/internal/qarma"
	"camouflage/internal/snapshot"
	"camouflage/internal/store"
	"camouflage/internal/workload"
)

// --- E1: key-switch cost (§6.1.1) ---

func BenchmarkKeySwitch(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		st, err := figures.MeasureKeySwitch(20)
		if err != nil {
			b.Fatal(err)
		}
		mean = st.Mean
	}
	b.ReportMetric(mean, "cycles/key")
}

// --- E2: Figure 2, per-call overhead by scheme ---

func BenchmarkCallOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.MeasureFigure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				name := strings.NewReplacer(" ", "", "(", "", ")", "", "/", "-").Replace(r.Scheme.String())
				b.ReportMetric(r.NsPerCall, name+"_ns/call")
			}
		}
	}
}

// --- E3: Figure 3, lmbench rows ---

func BenchmarkLmbench(b *testing.B) {
	for _, bench := range lmbench.Suite() {
		bench := bench
		for _, lv := range lmbench.Levels() {
			lv := lv
			b.Run(fmt.Sprintf("%s/%s", bench.Name, lv.Name), func(b *testing.B) {
				var r lmbench.Result
				var err error
				for i := 0; i < b.N; i++ {
					r, err = lmbench.Measure(lv.Cfg, lv.Name, bench)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.NsPerIter, "model_ns/iter")
				b.ReportMetric(r.CyclesPerIter, "model_cycles/iter")
			})
		}
	}
}

// --- E4: Figure 4, user workloads ---

func BenchmarkWorkload(b *testing.B) {
	for _, wl := range workload.Suite() {
		wl := wl
		for _, lv := range []struct {
			name string
			cfg  func() *codegen.Config
		}{
			{"none", codegen.ConfigNone},
			{"backward-edge", codegen.ConfigBackward},
			{"full", codegen.ConfigFull},
		} {
			lv := lv
			b.Run(fmt.Sprintf("%s/%s", wl.Name, lv.name), func(b *testing.B) {
				var r workload.Result
				var err error
				for i := 0; i < b.N; i++ {
					r, err = workload.Run(lv.cfg, lv.name, wl)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Cycles), "model_cycles")
			})
		}
	}
}

// --- E5/E6: Tables 1 and 2 ---

func BenchmarkTable1Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := figures.RenderTable1(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := figures.RenderTable2(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: §5.3 Coccinelle statistics ---

func BenchmarkCoccinelleStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := figures.RenderCoccinelle(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: §6.2 security evaluation ---

func BenchmarkAttackROP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := attack.ROPFrameRecord(codegen.ConfigFull(), "full")
		if err != nil {
			b.Fatal(err)
		}
		if r.Outcome != attack.OutcomeDetected {
			b.Fatalf("outcome = %v", r.Outcome)
		}
	}
}

func BenchmarkAttackFOpsSwap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := attack.FOpsSwap(codegen.ConfigFull(), "full")
		if err != nil {
			b.Fatal(err)
		}
		if r.Outcome != attack.OutcomeDetected {
			b.Fatalf("outcome = %v", r.Outcome)
		}
	}
}

func BenchmarkBruteForceToHalt(b *testing.B) {
	var attempts int
	for i := 0; i < b.N; i++ {
		rep, err := attack.BruteForcePAC(codegen.ConfigFull(), "full", 5)
		if err != nil {
			b.Fatal(err)
		}
		attempts = rep.Attempts
	}
	b.ReportMetric(float64(attempts), "attempts")
}

// --- E9: key-management ablation (XOM vs EL2 trap) ---

func BenchmarkKeyManagementAblation(b *testing.B) {
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigFull(), Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		b.Fatal(err)
	}
	b.Run("xom-setter", func(b *testing.B) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			before := k.CPU.Cycles
			if err := k.CallGuest(k.Img.Symbols["key_setter"]); err != nil {
				b.Fatal(err)
			}
			cycles = k.CPU.Cycles - before
		}
		b.ReportMetric(float64(cycles), "model_cycles")
	})
	b.Run("el2-trap", func(b *testing.B) {
		k.Hyp.EscrowKeys(k.KernelKeysForTest())
		var cycles uint64
		for i := 0; i < b.N; i++ {
			before := k.CPU.Cycles
			if err := k.Hyp.TrapInstallKeys(pac.KeyIB, pac.KeyIA, pac.KeyDB); err != nil {
				b.Fatal(err)
			}
			cycles = k.CPU.Cycles - before
		}
		b.ReportMetric(float64(cycles), "model_cycles")
		if hyp.TrapCycles < 100 {
			b.Fatal("trap model implausibly cheap")
		}
	})
}

// --- E10: replay census ---

func BenchmarkReplayCensus(b *testing.B) {
	var collisions int
	for i := 0; i < b.N; i++ {
		r := attack.ReplayCensus(pac.ModifierClangSP, 16, 32, 16)
		collisions = r.CollidingPairs
	}
	b.ReportMetric(float64(collisions), "clangsp_collisions")
}

// --- substrate micro-benchmarks ---

func BenchmarkQARMAEncrypt(b *testing.B) {
	c := qarma.New(qarma.Key{W0: 1, K0: 2}, qarma.DefaultRounds)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = c.Encrypt(uint64(i), 42)
	}
	_ = sink
}

func BenchmarkPACSign(b *testing.B) {
	s := pac.NewSigner(pac.DefaultConfig)
	s.SetKey(pac.KeyIB, pac.Key{Hi: 1, Lo: 2})
	ptr := uint64(pac.KernelBase) | 0x1234
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Sign(ptr, uint64(i), pac.KeyIB)
	}
	_ = sink
}

// BenchmarkSimulatorMIPS measures raw interpreter throughput: a tight
// guest ALU loop, reported as simulated instructions per host second.
func BenchmarkSimulatorMIPS(b *testing.B) {
	sys, err := NewSystem(LevelNone, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := kernel.BuildProgram("spin", func(u *kernel.UserASM) {
		u.MovImm(insn.X5, 1_000_000_000) // effectively endless
		u.A.Label("loop")
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.Exit(0)
	})
	if err != nil {
		b.Fatal(err)
	}
	sys.Kernel.RegisterProgram(1, prog)
	if _, err := sys.Kernel.Spawn(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sys.Kernel.Run(uint64(b.N))
	b.ReportMetric(float64(b.N), "instrs")
}

// BenchmarkExecThroughput measures end-to-end simulator throughput
// (simulated instructions per host second) on a representative mixed
// workload — user ALU blocks, function calls and a getppid round trip
// per iteration — under LevelNone and LevelFull. The "baseline" variants
// disable the fast-path pipeline (decoded basic-block cache + software
// TLB), reverting to the seed's per-word decode map and map-based
// translation, so the speedup is measured rather than asserted (see
// DESIGN.md §5 for the recorded numbers).
func BenchmarkExecThroughput(b *testing.B) {
	levels := []struct {
		name  string
		level ProtectionLevel
	}{
		{"none", LevelNone},
		{"full", LevelFull},
	}
	modes := []struct {
		name     string
		baseline bool
		cpus     int
		parallel bool
	}{
		{"fastpath", false, 1, false},
		{"baseline", true, 1, false},
		// fastpath-2cpu drives the deterministic SMP scheduler: the same
		// mix pinned to both cores of a 2-vCPU machine, budget split by
		// round-robin quanta. Guards the scheduler + shared-generation
		// overhead on top of the 1-vCPU fast path.
		{"fastpath-2cpu", false, 2, false},
		// parallel-Ncpu runs the same per-core mix under the truly-parallel
		// engine (one goroutine per vCPU over the shared bus): aggregate
		// instr/s should approach N× single-core on a host with ≥ N cores.
		// cmd/benchgate enforces the 2-vCPU scaling floor when the bench
		// host is multi-core.
		{"parallel-2cpu", false, 2, true},
		{"parallel-4cpu", false, 4, true},
	}
	mixProgram := func(u *kernel.UserASM) {
		u.MovImm(insn.X5, 1<<40) // effectively endless
		u.A.Label("loop")
		for i := 0; i < 4; i++ {
			u.A.I(insn.ADDi(insn.X6, insn.X6, 3))
			u.A.I(insn.EORr(insn.X7, insn.X7, insn.X6))
		}
		u.SyscallReg(kernel.SysGetppid)
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.Exit(0)
	}
	for _, lv := range levels {
		for _, mode := range modes {
			lv, mode := lv, mode
			b.Run(lv.name+"/"+mode.name, func(b *testing.B) {
				systems, err := ReplicateSystems(lv.level, Options{Seed: 3, CPUs: mode.cpus, Parallel: mode.parallel}, 1)
				if err != nil {
					b.Fatal(err)
				}
				sys := systems[0]
				for cpuID := 0; cpuID < mode.cpus; cpuID++ {
					prog, err := kernel.BuildProgram("mix", mixProgram)
					if err != nil {
						b.Fatal(err)
					}
					sys.Kernel.RegisterProgram(1+cpuID, prog)
					if _, err := sys.Kernel.SpawnOn(cpuID, 1+cpuID); err != nil {
						b.Fatal(err)
					}
				}
				c := sys.Kernel.CPU
				c.NoBlockCache = mode.baseline
				c.MMU.NoTLB = mode.baseline
				c.InvalidateDecode()
				b.ResetTimer()
				sys.Kernel.Run(uint64(b.N))
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "instr/s")
			})
		}
	}
}

// BenchmarkObsOverhead is the A/B cost measurement for the counter
// registry (DESIGN.md §11): the none/fastpath ExecThroughput mix run
// quiet, then again while a scraper goroutine continuously renders the
// Prometheus exposition and takes JSON snapshots. The hot path only
// bumps per-core plain cells and flushes at Run exit, so the scraped
// variant's ns/op must stay within a small budget of the quiet one —
// cmd/benchgate's -obs-overhead flag gates the ratio.
func BenchmarkObsOverhead(b *testing.B) {
	mix := func(u *kernel.UserASM) {
		u.MovImm(insn.X5, 1<<40) // effectively endless
		u.A.Label("loop")
		for i := 0; i < 4; i++ {
			u.A.I(insn.ADDi(insn.X6, insn.X6, 3))
			u.A.I(insn.EORr(insn.X7, insn.X7, insn.X6))
		}
		u.SyscallReg(kernel.SysGetppid)
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.Exit(0)
	}
	run := func(b *testing.B) {
		systems, err := ReplicateSystems(LevelNone, Options{Seed: 3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		sys := systems[0]
		prog, err := kernel.BuildProgram("mix", mix)
		if err != nil {
			b.Fatal(err)
		}
		sys.Kernel.RegisterProgram(1, prog)
		if _, err := sys.Kernel.Spawn(1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		sys.Kernel.Run(uint64(b.N))
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	}
	b.Run("quiet", run)
	b.Run("scraped", func(b *testing.B) {
		// Scrape at a 10ms cadence — already ~three orders of magnitude
		// hotter than a real Prometheus interval — rather than in a busy
		// loop, which on a small host would measure core contention with
		// the spinning scraper instead of the registry's cost.
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			tick := time.NewTicker(10 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				if err := obs.WritePrometheus(io.Discard); err != nil {
					b.Error(err)
					return
				}
				obs.TakeSnapshot()
			}
		}()
		run(b)
		close(stop)
		<-done
	})
}

// BenchmarkFaultOverhead is the A/B cost measurement for the fault
// injection layer (DESIGN.md §13): the none/fastpath ExecThroughput mix
// run with faults disabled (the production state — one atomic pointer
// load per injection point, all of them off the instruction loop), then
// again with a registry armed on store/pool points that never fire
// during execution. The armed variant's ns/op must stay within a small
// budget of the disabled one — cmd/benchgate's -fault-overhead flag
// gates the ratio, so injection points can never creep into the hot
// path unnoticed.
func BenchmarkFaultOverhead(b *testing.B) {
	mix := func(u *kernel.UserASM) {
		u.MovImm(insn.X5, 1<<40) // effectively endless
		u.A.Label("loop")
		for i := 0; i < 4; i++ {
			u.A.I(insn.ADDi(insn.X6, insn.X6, 3))
			u.A.I(insn.EORr(insn.X7, insn.X7, insn.X6))
		}
		u.SyscallReg(kernel.SysGetppid)
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.Exit(0)
	}
	run := func(b *testing.B) {
		systems, err := ReplicateSystems(LevelNone, Options{Seed: 3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		sys := systems[0]
		prog, err := kernel.BuildProgram("mix", mix)
		if err != nil {
			b.Fatal(err)
		}
		sys.Kernel.RegisterProgram(1, prog)
		if _, err := sys.Kernel.Spawn(1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		sys.Kernel.Run(uint64(b.N))
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "instr/s")
	}
	b.Run("off", func(b *testing.B) {
		prev := fault.Active()
		fault.Disable()
		defer fault.Install(prev)
		run(b)
	})
	b.Run("armed", func(b *testing.B) {
		r, err := fault.ParseSpec("seed=1,store.chunk.read=all,pool.boot=all,client.reset=all")
		if err != nil {
			b.Fatal(err)
		}
		prev := fault.Active()
		fault.Install(r)
		defer fault.Install(prev)
		run(b)
	})
}

// BenchmarkMemFastPath measures the data-side fast path on a load/store-
// heavy guest loop (pair and single loads/stores over a small working
// set). The "hostptr" variant runs the host-pointer TLB path; "buspath"
// disables only host-pointer caching (MMU.NoHostPtr), so every access
// still hits the TLB but pays translation bookkeeping plus bus routing
// and the page-map lookup — isolating exactly what the pointer cache
// buys. cmd/benchgate enforces a floor on the hostptr/buspath ratio.
func BenchmarkMemFastPath(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noHost bool
	}{
		{"hostptr", false},
		{"buspath", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			systems, err := ReplicateSystems(LevelNone, Options{Seed: 13}, 1)
			if err != nil {
				b.Fatal(err)
			}
			sys := systems[0]
			prog, err := kernel.BuildProgram("memmix", func(u *kernel.UserASM) {
				u.MovImm(insn.X8, kernel.UserDataBase)
				u.MovImm(insn.X5, 1<<40) // effectively endless
				u.A.Label("loop")
				for i := 0; i < 4; i++ {
					off := uint16(i * 16)
					u.A.I(insn.STP(insn.X6, insn.X7, insn.X8, int16(off)))
					u.A.I(insn.LDP(insn.X9, insn.X10, insn.X8, int16(off)))
					u.A.I(insn.STR(insn.X9, insn.X8, off+64))
					u.A.I(insn.LDR(insn.X6, insn.X8, off+64))
				}
				u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
				u.A.CBNZ(insn.X5, "loop")
				u.Exit(0)
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.Kernel.RegisterProgram(1, prog)
			if _, err := sys.Kernel.Spawn(1); err != nil {
				b.Fatal(err)
			}
			c := sys.Kernel.CPU
			c.MMU.NoHostPtr = mode.noHost
			c.MMU.InvalidateTLBAll()
			b.ResetTimer()
			sys.Kernel.Run(uint64(b.N))
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "instr/s")
		})
	}
}

// BenchmarkBoot measures the full build+verify+boot pipeline.
func BenchmarkBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewSystem(LevelFull, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForkVsBoot measures machine-supply cost for a short workload
// three ways: the full build+verify+boot pipeline per repetition
// (baseline), a copy-on-write Fork from a warm snapshot per repetition,
// and Reset of one dirtied machine per repetition. Fork and Reset are
// the paths the warm pool, the parallel experiment runner and the attack
// campaign take; the acceptance floor (fork+run ≥ 5x faster than
// boot+run) is pinned by TestForkAtLeast5xFasterThanBoot.
func BenchmarkForkVsBoot(b *testing.B) {
	// The same short workload and run helper the acceptance test
	// (TestForkAtLeast5xFasterThanBoot) measures, so the benchmark and
	// the pinning test can never drift apart.
	prog, err := kernel.BuildProgram("short", shortWorkload)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, sys *System) { runShortOn(b, sys, prog) }
	b.Run("boot+run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys, err := NewSystem(LevelFull, Options{Seed: 81})
			if err != nil {
				b.Fatal(err)
			}
			run(b, sys)
		}
	})
	b.Run("fork+run", func(b *testing.B) {
		origin, err := NewSystem(LevelFull, Options{Seed: 81})
		if err != nil {
			b.Fatal(err)
		}
		snap := origin.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys, err := snap.Fork()
			if err != nil {
				b.Fatal(err)
			}
			run(b, sys)
		}
	})
	b.Run("reset+run", func(b *testing.B) {
		origin, err := NewSystem(LevelFull, Options{Seed: 81})
		if err != nil {
			b.Fatal(err)
		}
		snap := origin.Snapshot()
		sys, err := snap.Fork()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := snap.Reset(sys); err != nil {
				b.Fatal(err)
			}
			run(b, sys)
		}
	})
}

// warmStartBatch is how many machines one BenchmarkWarmStart iteration
// supplies. A store load is an amortized cost: one verified load re-arms
// a pool key for every fork that follows, the way a restarted daemon or
// a warm cmd/experiments run consumes it. A single machine would hide
// that economics — load pays the same image rebuild + §4.1 verification
// boot pays, plus chunk hashing, and only wins by skipping the boot
// instruction stream — so the benchmark measures a restart serving a
// small batch, the store's actual unit of use.
const warmStartBatch = 8

// BenchmarkWarmStart measures what a restarted process pays to supply
// its first warmStartBatch machines: boot+run re-runs the full
// build+verify+boot pipeline for every machine (a store-less restart);
// load+fork+run opens the store a previous process populated, pays one
// verified load — whole-snapshot SHA-256 check, state deserialization,
// image rebuild — and forks the rest copy-on-write. Every iteration
// opens a fresh Store handle so the memoized-load fast path never
// fires: the number reported is the honest cold-restart cost. The
// committed floor (benchgate -warmstart-floor) pins the advantage.
func BenchmarkWarmStart(b *testing.B) {
	prog, err := kernel.BuildProgram("short", shortWorkload)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, sys *System) { runShortOn(b, sys, prog) }

	// Populate the store once — the "previous process" that booted this
	// configuration and persisted it. Same options as boot+run below, so
	// both sides supply identical machines.
	dir := b.TempDir()
	kopts := core.KernelOptionsFor(LevelFull, Options{Seed: 81})
	key := snapshot.KeyFor(kopts)
	seedStore, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	k, err := snapshot.BootOptions(kopts)()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seedStore.Save(key, snapshot.Take(k)); err != nil {
		b.Fatal(err)
	}

	b.Run("boot+run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < warmStartBatch; j++ {
				sys, err := NewSystem(LevelFull, Options{Seed: 81})
				if err != nil {
					b.Fatal(err)
				}
				run(b, sys)
			}
		}
	})
	b.Run("load+fork+run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := store.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			snap, _, err := st.Load(key)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < warmStartBatch; j++ {
				kern, err := snap.Fork()
				if err != nil {
					b.Fatal(err)
				}
				run(b, &System{Kernel: kern, Level: LevelFull})
			}
		}
	})
}

// BenchmarkSyscallRoundTrip measures one getppid round trip on the
// simulator under full protection (host time + model cycles).
func BenchmarkSyscallRoundTrip(b *testing.B) {
	for _, lv := range []struct {
		name  string
		level ProtectionLevel
	}{
		{"none", LevelNone},
		{"full", LevelFull},
	} {
		lv := lv
		b.Run(lv.name, func(b *testing.B) {
			sys, err := NewSystem(lv.level, Options{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			prog, err := kernel.BuildProgram("getppid-loop", func(u *kernel.UserASM) {
				u.MovImm(insn.X21, 1<<40)
				u.A.Label("loop")
				u.SyscallReg(kernel.SysGetppid)
				u.A.I(insn.SUBi(insn.X21, insn.X21, 1))
				u.A.CBNZ(insn.X21, "loop")
				u.Exit(0)
			})
			if err != nil {
				b.Fatal(err)
			}
			sys.Kernel.RegisterProgram(1, prog)
			if _, err := sys.Kernel.Spawn(1); err != nil {
				b.Fatal(err)
			}
			start := sys.Kernel.CPU.Cycles
			startRet := sys.Kernel.CPU.Retired
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Step one full syscall iteration: run until the loop
				// comes back around (~a few hundred instructions).
				sys.Kernel.Run(2000)
			}
			b.StopTimer()
			instrs := sys.Kernel.CPU.Retired - startRet
			if instrs > 0 {
				b.ReportMetric(float64(sys.Kernel.CPU.Cycles-start)/float64(instrs), "model_CPI")
			}
		})
	}
}

// --- boot substrate ---

func BenchmarkKeySetterEmission(b *testing.B) {
	keys := boot.NewPRNG(1).GenerateKeys()
	for i := 0; i < b.N; i++ {
		a := newAsm()
		boot.EmitKeySetter(a, "s", keys, boot.ModeV83)
	}
}
