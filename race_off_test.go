//go:build !race

package camouflage

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
