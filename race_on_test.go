//go:build race

package camouflage

// raceEnabled reports that the race detector is active: wall-clock ratio
// assertions are skipped, since instrumentation slows the interpreter
// fast path far more than the build+boot pipeline.
const raceEnabled = true
