module camouflage

go 1.22
