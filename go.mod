module camouflage

go 1.21
