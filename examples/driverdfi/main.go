// Driver DFI: demonstrates §4.5 — why Camouflage must protect *data*
// pointers to operations tables, not just function pointers. An attacker
// with kernel write swaps an open file's f_ops to a forged table. Without
// DFI the forged read() runs in kernel context; with DFI the transplanted
// pointer fails authentication.
//
//	go run ./examples/driverdfi
package main

import (
	"fmt"
	"log"

	"camouflage/internal/attack"
	"camouflage/internal/codegen"
)

func main() {
	fmt.Println("f_ops swap (forged operations table) vs kernel builds:")
	for _, lv := range []struct {
		name string
		cfg  *codegen.Config
	}{
		{"backward-edge only", codegen.ConfigBackward()},
		{"full (with DFI)", codegen.ConfigFull()},
	} {
		r, err := attack.FOpsSwap(lv.cfg, lv.name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s -> %-12s %s\n", lv.name, r.Outcome, r.Detail)
	}

	fmt.Println("\nf_ops replay (signed pointer transplanted between objects):")
	full, err := attack.FOpsReplay(codegen.ConfigFull(), "full")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-20s -> %-12s %s\n", "full (§4.3 modifier)", full.Outcome, full.Detail)
	zc := codegen.ConfigFull()
	zc.ZeroModifier = true
	zero, err := attack.FOpsReplay(zc, "zero-modifier")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-20s -> %-12s %s\n", "zero modifier (§7)", zero.Outcome, zero.Detail)
	fmt.Println("\nBinding the PAC to the containing object's address (48 bits) and a")
	fmt.Println("16-bit type constant stops the transplant that Apple's zero-modifier")
	fmt.Println("vtable scheme accepts.")
}
