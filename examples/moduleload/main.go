// Module loading: builds a loadable kernel module with a DECLARE_WORK-
// style statically initialised function pointer, loads it (which signs the
// pointer in place, §4.6), uses its driver from user space — and then
// shows the §4.1 gate rejecting a module that tries to read the PAuth
// keys.
//
//	go run ./examples/moduleload
package main

import (
	"fmt"
	"log"

	"camouflage/internal/codegen"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/module"
	"camouflage/internal/pac"
)

func main() {
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigFull(), Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("kernel booted (full protection)")

	// A benign module: a driver whose read() fills the buffer with '!'
	// plus a static work_struct pointer that must be signed at load.
	b := module.NewBuilder("bang", k.Cfg)
	a := b.A
	a.Label("bang_read")
	k.Cfg.Prologue(a, "bang_read")
	a.I(insn.MOVImm64(insn.X9, 0x2121212121212121)...)
	a.I(insn.STR(insn.X9, insn.X1, 0))
	a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	k.Cfg.Epilogue(a, "bang_read")
	a.Label("bang_nop")
	a.I(insn.MOVZ(insn.X0, 0, 0))
	a.I(insn.RET())
	a.Label("bang_work")
	a.I(insn.RET())
	a.Section(".moddata")
	a.Label("bang_ops")
	a.QuadAddr("bang_nop", 0)
	a.QuadAddr("bang_nop", 0)
	a.QuadAddr("bang_read", 0)
	a.QuadAddr("bang_nop", 0)
	a.QuadAddr("bang_nop", 0)
	a.Label("bang_static_work")
	a.QuadAddr("bang_work", 0)
	a.Quad(0)
	b.AddPauthEntry(module.PauthEntry{
		SlotLabel: "bang_static_work", ObjLabel: "bang_static_work",
		InstructionKey: true, TypeConst: pac.TypeConst("work_struct", "func"),
	})
	b.ExportDriver(90, "bang_ops")

	loaded, err := module.Load(k, b.Build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("module %q loaded at %#x; static pointer signed at load\n",
		loaded.Name, loaded.TextBase)
	got, ok := module.SignedPtrAuthenticates(k, loaded.Symbols["bang_static_work"],
		loaded.Symbols["bang_static_work"], pac.TypeConst("work_struct", "func"), true)
	fmt.Printf("  authenticates -> %v (target %#x)\n", ok, got)

	// Use the driver from user space.
	prog, err := kernel.BuildProgram("use", func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, 90, 0)
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X0, 0))
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(kernel.SysRead)
		u.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		log.Fatal(err)
	}
	k.Run(20_000_000)
	word := k.CPU.Bus.RAM.Read64(kernel.UVAToPA(1, kernel.UserDataBase))
	fmt.Printf("driver read produced: %q\n", string([]byte{
		byte(word), byte(word >> 8), byte(word >> 16), byte(word >> 24),
		byte(word >> 32), byte(word >> 40), byte(word >> 48), byte(word >> 56)}))

	// A malicious module: tries to exfiltrate the backward-edge CFI key.
	spy := module.NewBuilder("spy", k.Cfg)
	spy.A.Label("spy_init")
	spy.A.I(insn.MRS(insn.X0, insn.APIBKeyLo_EL1))
	spy.A.I(insn.RET())
	if _, err := module.Load(k, spy.Build()); err != nil {
		fmt.Printf("malicious module rejected:\n  %v\n", err)
	} else {
		log.Fatal("spy module was accepted!")
	}
}
