// ROP defense: the paper's backward-edge scenario end to end. An attacker
// with arbitrary kernel memory write smashes the saved return addresses on
// a victim task's kernel stack. On the unprotected kernel the attacker's
// gadget runs; under Camouflage's hardened return-address scheme
// (Listing 3) the corrupted pointer fails authentication and the kernel
// kills the offender instead.
//
//	go run ./examples/ropdefense
package main

import (
	"fmt"
	"log"

	"camouflage/internal/attack"
	"camouflage/internal/codegen"
)

func main() {
	fmt.Println("ROP frame-record attack (§2.1) vs kernel builds:")
	for _, lv := range []struct {
		name string
		cfg  *codegen.Config
	}{
		{"none (baseline)", codegen.ConfigNone()},
		{"backward-edge (Camouflage)", codegen.ConfigBackward()},
		{"full", codegen.ConfigFull()},
	} {
		r, err := attack.ROPFrameRecord(lv.cfg, lv.name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s -> %-12s %s\n", lv.name, r.Outcome, r.Detail)
	}
	fmt.Println("\nThe unprotected kernel executes the gadget; the protected builds")
	fmt.Println("poison the forged pointer on AUTIB and fault before the RET lands.")
}
