// Quickstart: boot a fully protected Camouflage machine and run a user
// program that exercises the authenticated kernel paths.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"camouflage"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
)

func main() {
	// Build, statically verify (§4.1) and boot a fully protected system:
	// the bootloader hides the kernel PAuth keys inside the execute-only
	// key-setter, and the hypervisor locks the MMU configuration.
	sys, err := camouflage.NewSystem(camouflage.LevelFull, camouflage.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booted in %d cycles at protection level %q\n",
		sys.Stats().BootCycles, sys.Level)

	// Run a user program. Every syscall switches PAuth keys on kernel
	// entry and exit; the read dispatches through the authenticated
	// file->f_ops pointer of Listing 4.
	cycles, err := sys.RunProgram("quickstart", func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0)) // save fd
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.MovImm(insn.X2, 64)
		u.SyscallReg(kernel.SysRead)
		u.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("program ran for %d cycles (%d instructions)\n", cycles, st.Instrs)
	fmt.Printf("PAC failures: %d (benign run: must be zero)\n", st.PACFailures)
}
