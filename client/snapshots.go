package client

// Typed bindings for the daemon's snapshot-store surface (/v1/snapshots,
// /v1/images): list and inspect persisted snapshots, pin them against
// eviction, delete unpinned ones, and read the per-image dedup ledger.

import (
	"context"
	"net/http"
)

// SnapshotInfo is one persisted snapshot as listed by GET /v1/snapshots.
type SnapshotInfo struct {
	// Digest is the whole-snapshot content address; every administer
	// call (inspect, pin, delete) takes it.
	Digest string `json:"digest"`
	// KeyDigest/Key identify the build configuration the snapshot
	// captures (Key is the human-readable normalized option string).
	KeyDigest string `json:"key_digest"`
	Key       string `json:"key"`
	// ImageDigest groups snapshots built from one kernel image.
	ImageDigest string `json:"image_digest"`
	Pages       int    `json:"pages"`
	CPUs        int    `json:"cpus"`
	BootCycles  uint64 `json:"boot_cycles"`
	Pinned      bool   `json:"pinned"`
	CreatedUnix int64  `json:"created_unix"`
	// Resident reports whether the daemon currently holds this
	// configuration armed in a warm pool; IdleMachines counts its parked
	// machines.
	Resident     bool `json:"resident"`
	IdleMachines int  `json:"idle_machines"`
	// Quarantined marks a snapshot whose loads failed repeatedly; the
	// daemon fast-fails loads of it (falling back to boot) until it is
	// re-saved or deleted.
	Quarantined bool `json:"quarantined,omitempty"`
}

// SnapshotsResponse is the GET /v1/snapshots reply.
type SnapshotsResponse struct {
	Snapshots []SnapshotInfo `json:"snapshots"`
}

// SnapshotManifest mirrors the store's on-disk manifest for GET
// /v1/snapshots/{digest}. Page references are elided from listings but
// included here, so clients can audit exactly which chunks a snapshot
// commits to.
type SnapshotManifest struct {
	Version     int             `json:"version"`
	Digest      string          `json:"digest"`
	KeyDigest   string          `json:"key_digest"`
	Key         string          `json:"key"`
	Options     SnapshotOptions `json:"options"`
	ImageDigest string          `json:"image_digest"`
	StateChunk  string          `json:"state_chunk"`
	StateSize   int             `json:"state_size"`
	Pages       []SnapshotPage  `json:"pages"`
	CPUs        int             `json:"cpus"`
	BootCycles  uint64          `json:"boot_cycles"`
	CreatedUnix int64           `json:"created_unix"`
}

// SnapshotOptions is the manifest's build-options block.
type SnapshotOptions struct {
	Scheme       int    `json:"scheme"`
	ForwardCFI   bool   `json:"forward_cfi"`
	DFI          bool   `json:"dfi"`
	ZeroModifier bool   `json:"zero_modifier"`
	CPUs         int    `json:"cpus"`
	Seed         uint64 `json:"seed"`
	Compat       bool   `json:"compat"`
	V80          bool   `json:"v80"`
	Threshold    int    `json:"failure_threshold"`
}

// SnapshotPage binds one guest RAM page to its content-addressed chunk.
type SnapshotPage struct {
	PN    uint64 `json:"pn"`
	Chunk string `json:"chunk"`
}

// PinRequest is the POST /v1/snapshots/{digest}/pin body.
type PinRequest struct {
	Pinned bool `json:"pinned"`
}

// ImageInfo aggregates the snapshots of one built kernel image and what
// page-level dedup saves across them.
type ImageInfo struct {
	ImageDigest  string   `json:"image_digest"`
	Snapshots    []string `json:"snapshots"`
	TotalPages   int      `json:"total_pages"`
	UniqueChunks int      `json:"unique_chunks"`
}

// ImagesResponse is the GET /v1/images reply.
type ImagesResponse struct {
	Images []ImageInfo `json:"images"`
}

// Snapshots lists the snapshots persisted in the daemon's store.
func (c *Client) Snapshots(ctx context.Context) ([]SnapshotInfo, error) {
	var out SnapshotsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/snapshots", nil, &out); err != nil {
		return nil, err
	}
	return out.Snapshots, nil
}

// Snapshot fetches one snapshot's full manifest.
func (c *Client) Snapshot(ctx context.Context, digest string) (*SnapshotManifest, error) {
	var out SnapshotManifest
	if err := c.do(ctx, http.MethodGet, "/v1/snapshots/"+digest, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PinSnapshot pins (or unpins) a snapshot: pinned snapshots survive
// store GC, refuse DELETE, and keep their warm machines through pool
// eviction.
func (c *Client) PinSnapshot(ctx context.Context, digest string, pinned bool) error {
	return c.do(ctx, http.MethodPost, "/v1/snapshots/"+digest+"/pin", PinRequest{Pinned: pinned}, nil)
}

// DeleteSnapshot evicts a snapshot from the store. The daemon answers
// 409 when the snapshot is pinned or is backing an active machine
// lease.
func (c *Client) DeleteSnapshot(ctx context.Context, digest string) error {
	return c.do(ctx, http.MethodDelete, "/v1/snapshots/"+digest, nil, nil)
}

// Images lists persisted snapshots grouped by built kernel image.
func (c *Client) Images(ctx context.Context) ([]ImageInfo, error) {
	var out ImagesResponse
	if err := c.do(ctx, http.MethodGet, "/v1/images", nil, &out); err != nil {
		return nil, err
	}
	return out.Images, nil
}
