package client

// Client resilience: the default per-request timeout, the retry policy
// (which requests retry, which failure classes, the Retry-After
// floor), auto-minted idempotency keys, and injected transport faults
// healing transparently.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"camouflage/internal/fault"
)

func withFaults(t *testing.T, spec string) *fault.Registry {
	t.Helper()
	r, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(r)
	t.Cleanup(func() { fault.Install(prev) })
	return r
}

func fastClient(url string) *Client {
	c := New(url)
	c.Retry.BaseDelay = time.Millisecond
	c.Retry.MaxDelay = 2 * time.Millisecond
	return c
}

func TestDefaults(t *testing.T) {
	c := New("http://example.invalid")
	if c.HTTP == http.DefaultClient || c.HTTP.Timeout != DefaultTimeout {
		t.Fatalf("New did not install a dedicated client with the default timeout (got %v)", c.HTTP.Timeout)
	}
	if c.Retry != DefaultRetryPolicy() {
		t.Fatalf("Retry = %+v, want the default policy", c.Retry)
	}
}

// TestRetryHealsInjectedResets: two injected connection resets are
// absorbed; the server sees exactly one request.
func TestRetryHealsInjectedResets(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"pool":{},"queue":{},"leases":{},"metrics":{}}`))
	}))
	defer hs.Close()
	r := withFaults(t, "client.reset=2")

	if _, err := fastClient(hs.URL).Stats(context.Background()); err != nil {
		t.Fatalf("Stats under transient resets: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (resets fire before sending)", hits.Load())
	}
	if r.Fired(fault.ClientReset) != 2 {
		t.Fatalf("resets fired %d times, want 2", r.Fired(fault.ClientReset))
	}
}

// TestRetry503ThenSuccess: a 503 (Retry-After: 0) from the daemon —
// breaker open, queue full — retries and succeeds on the next attempt.
func TestRetry503ThenSuccess(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"pool":{},"queue":{},"leases":{},"metrics":{}}`))
	}))
	defer hs.Close()

	if _, err := fastClient(hs.URL).Stats(context.Background()); err != nil {
		t.Fatalf("Stats after transient 503: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

// TestNonIdempotentPostNeverRetries: a POST without an Idempotency-Key
// must not retry even on a retryable status class.
func TestNonIdempotentPostNeverRetries(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}))
	defer hs.Close()

	err := fastClient(hs.URL).PinSnapshot(context.Background(), "abc", true)
	if err == nil {
		t.Fatal("PinSnapshot against a 503 server succeeded")
	}
	if hits.Load() != 1 {
		t.Fatalf("non-idempotent POST was retried: %d requests", hits.Load())
	}
}

// TestClientErrors4xxNotRetried: client mistakes (400/404) fail
// immediately even on retryable GETs.
func TestClientErrors4xxNotRetried(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no such run"}`, http.StatusNotFound)
	}))
	defer hs.Close()

	if _, err := fastClient(hs.URL).Stats(context.Background()); err == nil {
		t.Fatal("404 GET succeeded")
	}
	if hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d requests", hits.Load())
	}
}

// TestRunsCarryIdempotencyKeys: RunExperiments and RunCampaign mint a
// key per call, so the daemon can replay a response the network
// dropped.
func TestRunsCarryIdempotencyKeys(t *testing.T) {
	var keys []string
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{}`))
	}))
	defer hs.Close()
	c := fastClient(hs.URL)

	if _, err := c.RunExperiments(context.Background(), ExperimentsRequest{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunCampaign(context.Background(), CampaignRequest{}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] == "" || keys[1] == "" {
		t.Fatalf("requests missing idempotency keys: %q", keys)
	}
	if keys[0] == keys[1] {
		t.Fatalf("distinct calls shared an idempotency key: %q", keys[0])
	}
}

// TestBackoffHonorsRetryAfterFloor: a server hint above the jittered
// exponential delay floors it.
func TestBackoffHonorsRetryAfterFloor(t *testing.T) {
	c := New("http://example.invalid")
	if d := c.backoff(1, 3*time.Second); d != 3*time.Second {
		t.Fatalf("backoff with 3s hint = %v, want exactly the hint", d)
	}
	// Without a hint the delay is jittered around the base: bounded by
	// [base/2, base*3/2].
	c.Retry.BaseDelay = 100 * time.Millisecond
	for i := 0; i < 32; i++ {
		d := c.backoff(1, retryAfterSentinel)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered first backoff = %v, want within [50ms, 150ms]", d)
		}
	}
}

// TestStallFaultDelays: an injected stall slows the request without
// failing it.
func TestStallFaultDelays(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"pool":{},"queue":{},"leases":{},"metrics":{}}`))
	}))
	defer hs.Close()
	withFaults(t, "client.stall=1:30ms")

	t0 := time.Now()
	if _, err := fastClient(hs.URL).Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took < 30*time.Millisecond {
		t.Fatalf("stalled request returned in %v, want >= 30ms", took)
	}
}
