package client

// Round-trip test for the exposition parser: render the live registry
// with obs.WritePrometheus, parse it back with ParseMetrics, and check
// the parsed samples agree with the registry's own totals.

import (
	"strings"
	"testing"
	"time"

	"camouflage/internal/obs"
)

func TestParseMetricsRoundTrip(t *testing.T) {
	// Move some registry state so the exposition is non-trivial.
	obs.Add(obs.CPoolHit, 5)
	obs.Add(obs.CPACAuthDB, 2)
	obs.NewHistogram("camouflage_client_test_seconds", "Client parser test histogram.",
		[]float64{0.01, 1}).Observe(3 * time.Second)

	var b strings.Builder
	if err := obs.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseMetrics(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]MetricSample, len(samples))
	for _, s := range samples {
		if _, dup := byKey[s.Key()]; dup {
			t.Errorf("duplicate sample key %q", s.Key())
		}
		byKey[s.Key()] = s
	}

	// Every static counter must parse back to its registry total.
	for id := obs.CounterID(0); id < obs.NumCounters; id++ {
		key := id.SampleName()
		s, ok := byKey[key]
		if !ok {
			t.Errorf("counter %s missing from parsed samples", key)
			continue
		}
		if want := float64(obs.CounterTotal(id)); s.Value != want {
			t.Errorf("%s = %v, want %v", key, s.Value, want)
		}
	}

	// Labeled samples keep their labels through the canonical key.
	if s, ok := byKey[`camouflage_pac_auths_total{key="DB"}`]; !ok {
		t.Error("labeled PAC sample missing")
	} else if s.Labels["key"] != "DB" {
		t.Errorf("label map = %v", s.Labels)
	}

	// The histogram's +Inf bucket parses via the sentinel.
	inf, ok := byKey[`camouflage_client_test_seconds_bucket{le="+Inf"}`]
	if !ok {
		t.Fatal("+Inf bucket missing from parsed samples")
	}
	if inf.Value < 1 {
		t.Errorf("+Inf bucket = %v, want >= 1", inf.Value)
	}
	if inf.Labels["le"] != "+Inf" {
		t.Errorf("+Inf label lost: %v", inf.Labels)
	}
	if _, ok := byKey[`camouflage_client_test_seconds_count`]; !ok {
		t.Error("_count sample missing")
	}
}

func TestParseMetricsEscapes(t *testing.T) {
	in := "# HELP x_total Escaped labels.\n" +
		"# TYPE x_total counter\n" +
		"x_total{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\",nl=\"line\\nbreak\"} 4\n"
	samples, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Fatalf("parsed %d samples, want 1", len(samples))
	}
	s := samples[0]
	if s.Labels["path"] != `a\b` || s.Labels["msg"] != `say "hi"` || s.Labels["nl"] != "line\nbreak" {
		t.Fatalf("unescaped labels = %#v", s.Labels)
	}
	if s.Value != 4 {
		t.Fatalf("value = %v", s.Value)
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"x_total{unterminated=\"a} 1\n",
		"x_total notanumber\n",
		"lonely_name_no_value\n",
	} {
		if _, err := ParseMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("input %q parsed without error", in)
		}
	}
}
