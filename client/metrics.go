package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"camouflage/internal/obs"
)

// MetricSample is one parsed Prometheus exposition sample.
type MetricSample struct {
	// Name is the sample name (family name, or family_bucket /
	// family_sum / family_count for histogram series).
	Name string
	// Labels holds the sample's label pairs (nil for none).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Key renders the sample's identity (name plus sorted label pairs) in
// canonical form, e.g. `camouflage_pac_auths_total{key="IA"}`.
func (s MetricSample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Metrics scrapes GET /metrics and returns the parsed samples in
// exposition order.
func (c *Client) Metrics(ctx context.Context) ([]MetricSample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, &APIError{Status: resp.StatusCode, Message: resp.Status}
	}
	return ParseMetrics(resp.Body)
}

// RunTrace retrieves the structured trace of a run previously reported
// through a RunID field (GET /v1/runs/{id}/trace).
func (c *Client) RunTrace(ctx context.Context, id string) (*obs.RunTrace, error) {
	var out obs.RunTrace
	if err := c.do(ctx, http.MethodGet, "/v1/runs/"+id+"/trace", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ParseMetrics parses Prometheus text exposition format (the subset
// the daemon emits: # comments, samples with optional label sets, no
// timestamps or escapes beyond \" \\ \n inside label values).
func ParseMetrics(r io.Reader) ([]MetricSample, error) {
	var out []MetricSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %w", line, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(text string) (MetricSample, error) {
	var s MetricSample
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unterminated label set")
		}
		labels, err := parseLabels(rest[i+1 : j])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("want 'name value', got %q", text)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseValue(text string) (float64, error) {
	switch text {
	case "+Inf", "Inf":
		return obs.Inf64(), nil
	case "-Inf":
		return -obs.Inf64(), nil
	}
	return strconv.ParseFloat(text, 64)
}

func parseLabels(text string) (map[string]string, error) {
	labels := map[string]string{}
	for text != "" {
		eq := strings.IndexByte(text, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", text)
		}
		name := strings.TrimSpace(text[:eq])
		rest := strings.TrimSpace(text[eq+1:])
		if len(rest) < 2 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", text)
		}
		// Find the closing quote, honouring \" escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value in %q", text)
		}
		val := rest[1:end]
		val = strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n").Replace(val)
		labels[name] = val
		text = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		text = strings.TrimSpace(text)
	}
	return labels, nil
}
