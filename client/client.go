// Package client is the Go client for camouflaged, the Camouflage
// simulation service daemon, and defines the wire types the daemon and
// its clients share. The daemon owns the process-wide warm pool of
// booted machines, so remote runs pay boots only once per configuration
// across *all* clients; renderings are byte-identical to in-process
// sequential runs (pinned by the server tests and the CI server-smoke
// job).
package client

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"camouflage/internal/attack"
	"camouflage/internal/fault"
	"camouflage/internal/figures"
	"camouflage/internal/obs"
	"camouflage/internal/snapshot"
)

// ExperimentsRequest selects a figures.All() subset to run.
type ExperimentsRequest struct {
	// IDs are experiment IDs in the registry (empty = all, paper order).
	IDs []string `json:"ids,omitempty"`
	// Parallel runs experiments (and suite cells) concurrently on
	// isolated machines; the rendering is byte-identical either way.
	Parallel bool `json:"parallel,omitempty"`
	// CPUs is the vCPU count of every machine the experiments boot
	// (0/1: uniprocessor, byte-identical to pre-SMP renderings). The
	// daemon serializes non-default counts against other experiment
	// runs (the count changes the rendered bytes).
	CPUs int `json:"cpus,omitempty"`
	// DeadlineMS bounds the run; past it the server stops between
	// experiments and returns 504 (0 = no deadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ExperimentsResponse carries the rendering and the same per-experiment
// stats cmd/experiments writes to BENCH_results.json.
type ExperimentsResponse struct {
	Output      string             `json:"output"`
	Parallel    bool               `json:"parallel"`
	TotalWallNs int64              `json:"total_wall_ns"`
	Pool        snapshot.Stats     `json:"pool"`
	Experiments []figures.RunStats `json:"experiments"`
	// RunID names the run's trace (GET /v1/runs/{id}/trace).
	RunID string `json:"run_id,omitempty"`
}

// ExperimentInfo is one registry entry (GET /v1/experiments).
type ExperimentInfo struct {
	ID       string   `json:"id"`
	Title    string   `json:"title"`
	PaperRef string   `json:"paper_ref"`
	Levels   []string `json:"levels,omitempty"`
}

// CampaignRequest tunes a differential attack campaign run.
type CampaignRequest struct {
	// Mutations is the forked attempts per (attack, level) cell.
	Mutations int `json:"mutations,omitempty"`
	// Seed drives the mutation PRNGs.
	Seed uint64 `json:"seed,omitempty"`
	// Parallel strikes the forks concurrently.
	Parallel bool `json:"parallel,omitempty"`
	// Levels filters the §6.2 configurations by name (empty = all).
	Levels []string `json:"levels,omitempty"`
	// CPUs is the vCPU count of every cell machine; at 2+ the campaign
	// includes the cross-core f_ops replay scenario.
	CPUs int `json:"cpus,omitempty"`
	// DeadlineMS bounds the run (0 = no deadline).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CampaignResponse carries the defeat/bypass matrix and its rendering.
type CampaignResponse struct {
	Report      *attack.CampaignReport `json:"report"`
	Output      string                 `json:"output"`
	TotalWallNs int64                  `json:"total_wall_ns"`
	// RunID names the run's trace (GET /v1/runs/{id}/trace).
	RunID string `json:"run_id,omitempty"`
}

// MachineRequest leases a warm machine by build options.
type MachineRequest struct {
	// Level is the protection level name: "none", "backward-edge" or
	// "full" (empty = "full").
	Level string `json:"level,omitempty"`
	// Seed drives boot-time randomness.
	Seed uint64 `json:"seed,omitempty"`
	// FailureThreshold overrides the §5.4 brute-force halt threshold.
	FailureThreshold int `json:"failure_threshold,omitempty"`
	// Compat leases the §5.5 backwards-compatible build on a v8.0 core.
	Compat bool `json:"compat,omitempty"`
	// CPUs is the machine's vCPU count (0/1: uniprocessor; up to
	// kernel.MaxCPUs). Leased SMP machines run their cores under the
	// deterministic round-robin scheduler on every /run step unless
	// ParallelSMP opts them into truly-parallel execution.
	CPUs int `json:"cpus,omitempty"`
	// ParallelSMP runs the leased machine's cores truly in parallel
	// (one goroutine per vCPU) on every /run step instead of the
	// deterministic scheduler. Runtime-only: machines with and without
	// it share warm pool entries. Requires CPUs >= 2 to have any
	// effect; results are well-defined only for data-race-free guest
	// workloads (see DESIGN.md §10).
	ParallelSMP bool `json:"parallel_smp,omitempty"`
}

// MachineResponse identifies a granted lease.
type MachineResponse struct {
	ID         string `json:"id"`
	Key        string `json:"key"`
	BootCycles uint64 `json:"boot_cycles"`
}

// MachineRunRequest steps a leased machine.
type MachineRunRequest struct {
	// MaxInstrs is the instruction budget (0 = the server default).
	MaxInstrs uint64 `json:"max_instrs,omitempty"`
}

// MachineRunResponse reports why the run stopped and where the machine
// landed.
type MachineRunResponse struct {
	// Stop is "limit", "hlt" or "error".
	Stop string `json:"stop"`
	// StopCode is the HLT immediate for Stop == "hlt".
	StopCode uint16 `json:"stop_code,omitempty"`
	// Error carries the simulation error detail for Stop == "error"
	// (the machine and its lease survive).
	Error       string `json:"error,omitempty"`
	PC          uint64 `json:"pc"`
	Cycles      uint64 `json:"cycles"`
	Instrs      uint64 `json:"instrs"`
	Halted      bool   `json:"halted"`
	PACFailures int    `json:"pac_failures"`
	// RunID names the step's trace (GET /v1/runs/{id}/trace).
	RunID string `json:"run_id,omitempty"`
}

// OopsRecord mirrors one kernel fault-log entry.
type OopsRecord struct {
	ESR        uint64 `json:"esr"`
	FAR        uint64 `json:"far"`
	ELR        uint64 `json:"elr"`
	Kernel     bool   `json:"kernel"`
	PACFailure bool   `json:"pac_failure"`
}

// MachineState is the readback view of a leased machine: registers,
// console output and the fault log.
type MachineState struct {
	ID          string       `json:"id"`
	Key         string       `json:"key"`
	PC          uint64       `json:"pc"`
	SP          [2]uint64    `json:"sp"`
	EL          int          `json:"el"`
	X           []uint64     `json:"x"`
	Cycles      uint64       `json:"cycles"`
	Instrs      uint64       `json:"instrs"`
	Halted      bool         `json:"halted"`
	PACFailures int          `json:"pac_failures"`
	UART        string       `json:"uart"`
	Oops        []OopsRecord `json:"oops,omitempty"`
}

// QueueStats describes the daemon's bounded work queue.
type QueueStats struct {
	// Depth is requests waiting for a slot right now.
	Depth int `json:"depth"`
	// Running is jobs holding a slot.
	Running int `json:"running"`
	// Capacity is the concurrent-slot count; MaxQueue bounds Depth.
	Capacity int `json:"capacity"`
	MaxQueue int `json:"max_queue"`
	// AdmittedByKey is in-flight jobs per admission key: machine leases
	// under their pool key (concurrent leases of one key share a single
	// boot and fan out as forks), experiments and campaigns under
	// synthetic keys.
	AdmittedByKey map[string]int `json:"admitted_by_key,omitempty"`
}

// LeaseStats describes machine-lease lifecycle counters.
type LeaseStats struct {
	Active   int    `json:"active"`
	Issued   uint64 `json:"issued"`
	Released uint64 `json:"released"`
	// Expired counts leases reclaimed by the idle reaper.
	Expired uint64 `json:"expired"`
	// ForceExpired counts leases the drain path gave up waiting for
	// (their machines were abandoned, not parked — see Server.Drain).
	ForceExpired uint64 `json:"force_expired,omitempty"`
}

// StatsResponse is the GET /v1/stats document.
type StatsResponse struct {
	Pool     snapshot.Stats `json:"pool"`
	Queue    QueueStats     `json:"queue"`
	Leases   LeaseStats     `json:"leases"`
	Draining bool           `json:"draining"`
	UptimeNs int64          `json:"uptime_ns"`
	// Metrics embeds the full observability registry (the same numbers
	// GET /metrics exposes, as JSON).
	Metrics obs.Snapshot `json:"metrics"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// APIError is a non-2xx daemon response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("camouflaged: %d %s", e.Status, e.Message)
}

// RetryPolicy governs transparent request retries. Only safe requests
// retry: GETs, and POSTs carrying an Idempotency-Key (the daemon
// replays the stored response instead of re-running the job, so a
// retry after a dropped response never double-runs). Retryable
// failures are transport errors (connection reset, timeout short of
// the context deadline) and 502/503/504 — a 503 with Retry-After (an
// open circuit breaker, a saturated queue) waits at least that long.
type RetryPolicy struct {
	// MaxAttempts is the total tries per request (1 = no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff; each retry doubles it up
	// to MaxDelay, with ±50% jitter to spread synchronized retriers.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy is what New installs: 3 attempts, 100ms doubling
// to 2s.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// DefaultTimeout caps one HTTP request end to end (connect through
// body) unless the caller's context is tighter. Experiment and
// campaign runs are minutes-long on loaded daemons; the cap exists to
// bound a wedged connection, not a slow job.
const DefaultTimeout = 10 * time.Minute

// Client talks to one camouflaged daemon.
type Client struct {
	base string
	// HTTP is the underlying client (default: a dedicated client with
	// DefaultTimeout; replace it to tune transport or TLS).
	HTTP *http.Client
	// Retry is the retry policy (default DefaultRetryPolicy; set
	// MaxAttempts to 1 to disable).
	Retry RetryPolicy
}

// New returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8344").
func New(base string) *Client {
	return &Client{
		base:  strings.TrimRight(base, "/"),
		HTTP:  &http.Client{Timeout: DefaultTimeout},
		Retry: DefaultRetryPolicy(),
	}
}

// newIdemKey mints a random Idempotency-Key for job-running POSTs.
func newIdemKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "" // no entropy, no idempotency — the request still runs
	}
	return hex.EncodeToString(b[:])
}

// retryAfterSentinel distinguishes "no server hint" from Retry-After: 0.
const retryAfterSentinel = time.Duration(-1)

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doIdem(ctx, method, path, in, out, "")
}

// doIdem is the request core: marshal once, then attempt with
// backoff. idemKey marks a POST safe to retry; empty means only GETs
// retry.
func (c *Client) doIdem(ctx context.Context, method, path string, in, out any, idemKey string) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = b
	}
	retryable := method == http.MethodGet || idemKey != ""
	attempts := c.Retry.MaxAttempts
	if attempts < 1 || !retryable {
		attempts = 1
	}
	var lastErr error
	serverHint := retryAfterSentinel
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			obs.Add(obs.CClientRetry, 1)
			select {
			case <-time.After(c.backoff(attempt, serverHint)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err, hint, retry := c.attempt(ctx, method, path, body, in != nil, out, idemKey)
		if err == nil {
			return nil
		}
		if !retry || ctx.Err() != nil {
			return err
		}
		lastErr, serverHint = err, hint
	}
	return lastErr
}

// backoff computes the pre-attempt sleep: exponential with ±50%
// jitter, floored by the server's Retry-After hint when one was given.
func (c *Client) backoff(attempt int, serverHint time.Duration) time.Duration {
	d := c.Retry.BaseDelay
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
	}
	if max := c.Retry.MaxDelay; max > 0 && d > max {
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if serverHint > d {
		d = serverHint
	}
	return d
}

// attempt runs one HTTP exchange. retry reports whether the failure
// class is safe to try again; hint carries a Retry-After the server
// sent (retryAfterSentinel when absent).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, hasBody bool, out any, idemKey string) (err error, hint time.Duration, retry bool) {
	fault.SleepAt(fault.ClientStall)
	if ferr := fault.ErrAt(fault.ClientReset); ferr != nil {
		return fmt.Errorf("client: connection reset: %w", ferr), retryAfterSentinel, true
	}
	if ferr := fault.ErrAt(fault.Client5xx); ferr != nil {
		return &APIError{Status: http.StatusServiceUnavailable, Message: ferr.Error()}, 0, true
	}
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err, retryAfterSentinel, false
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		// Transport-level failure: nothing reached the handler (or the
		// response was lost) — safe to retry idempotent requests.
		return err, retryAfterSentinel, true
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: msg}
		switch resp.StatusCode {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			hint = retryAfterSentinel
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
					hint = time.Duration(secs) * time.Second
				}
			}
			return apiErr, hint, true
		}
		return apiErr, retryAfterSentinel, false
	}
	if out == nil {
		return nil, retryAfterSentinel, false
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return err, retryAfterSentinel, false
	}
	return nil, retryAfterSentinel, false
}

// Experiments lists the registry.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	if err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunExperiments runs a figures.All() selection on the daemon. The
// request carries a fresh Idempotency-Key, so retries after a dropped
// response replay the original run instead of re-running it.
func (c *Client) RunExperiments(ctx context.Context, req ExperimentsRequest) (*ExperimentsResponse, error) {
	var out ExperimentsResponse
	if err := c.doIdem(ctx, http.MethodPost, "/v1/experiments", req, &out, newIdemKey()); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunCampaign runs a differential attack campaign on the daemon,
// idempotency-keyed like RunExperiments.
func (c *Client) RunCampaign(ctx context.Context, req CampaignRequest) (*CampaignResponse, error) {
	var out CampaignResponse
	if err := c.doIdem(ctx, http.MethodPost, "/v1/campaigns", req, &out, newIdemKey()); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats reads the daemon's pool/queue/lease counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Machine is a leased warm machine on the daemon.
type Machine struct {
	c *Client
	// ID is the lease identifier; Key the pool key the machine was
	// acquired under; BootCycles the captured boot cost it inherited.
	ID         string
	Key        string
	BootCycles uint64
}

// Lease acquires a warm machine from the daemon's pool. Release it when
// done; the daemon's idle reaper reclaims abandoned leases.
func (c *Client) Lease(ctx context.Context, req MachineRequest) (*Machine, error) {
	var out MachineResponse
	if err := c.do(ctx, http.MethodPost, "/v1/machines", req, &out); err != nil {
		return nil, err
	}
	return &Machine{c: c, ID: out.ID, Key: out.Key, BootCycles: out.BootCycles}, nil
}

// Run steps the machine by an instruction budget.
func (m *Machine) Run(ctx context.Context, maxInstrs uint64) (*MachineRunResponse, error) {
	var out MachineRunResponse
	err := m.c.do(ctx, http.MethodPost, "/v1/machines/"+m.ID+"/run",
		MachineRunRequest{MaxInstrs: maxInstrs}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// State reads back registers, console output and the fault log.
func (m *Machine) State(ctx context.Context) (*MachineState, error) {
	var out MachineState
	if err := m.c.do(ctx, http.MethodGet, "/v1/machines/"+m.ID, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reset rewinds the machine to its lease-time snapshot.
func (m *Machine) Reset(ctx context.Context) error {
	return m.c.do(ctx, http.MethodPost, "/v1/machines/"+m.ID+"/reset", nil, nil)
}

// Release hands the machine back to the daemon's warm pool.
func (m *Machine) Release(ctx context.Context) error {
	return m.c.do(ctx, http.MethodPost, "/v1/machines/"+m.ID+"/release", nil, nil)
}
