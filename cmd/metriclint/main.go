// Command metriclint validates a Prometheus text exposition — the
// guardrail behind the CI metrics-smoke job, which scrapes a live
// camouflaged daemon twice and asserts the output stays well-formed and
// monotonic without pulling in any external exposition library.
//
// Usage:
//
//	metriclint                      — lint an exposition from stdin
//	metriclint -in scrape.txt       — lint a file
//	metriclint -url http://…/metrics — scrape and lint a live endpoint
//	metriclint -require a,b,c       — fail unless these families appear
//	metriclint -prev first.txt      — fail if any counter moved backwards
//	                                  relative to an earlier scrape
//
// Checks, in order:
//
//   - every sample line parses as name{labels} value with a legal
//     metric name and well-formed label quoting;
//   - every sample is preceded by its family's # HELP and # TYPE
//     comments, and each family declares them exactly once;
//   - counter families end in _total; histogram families expose
//     _bucket/_sum/_count series, bucket counts are cumulative
//     (monotone in le) and every bucket series ends at le="+Inf" with a
//     count equal to the series _count;
//   - with -prev, every counter and histogram bucket present in both
//     scrapes is monotonically non-decreasing.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"camouflage/internal/metriclint"

	"camouflage/client"
)

func main() {
	in := flag.String("in", "-", "exposition file (- for stdin)")
	url := flag.String("url", "", "scrape this endpoint instead of reading -in")
	require := flag.String("require", "",
		"comma-separated metric families that must appear in the exposition")
	prev := flag.String("prev", "",
		"earlier scrape of the same process: counters present in both must not decrease")
	flag.Parse()

	text, err := readExposition(*in, *url)
	if err != nil {
		fatal("%v", err)
	}
	samples, errs := lint(text)
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "metriclint: %s\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}

	if *require != "" {
		missing := requireFamilies(samples, strings.Split(*require, ","))
		for _, fam := range missing {
			fmt.Fprintf(os.Stderr, "metriclint: required family %s missing\n", fam)
		}
		if len(missing) > 0 {
			os.Exit(1)
		}
	}

	if *prev != "" {
		prevText, err := readExposition(*prev, "")
		if err != nil {
			fatal("reading -prev: %v", err)
		}
		prevSamples, prevErrs := lint(prevText)
		if len(prevErrs) > 0 {
			fatal("-prev scrape does not lint: %s", prevErrs[0])
		}
		regressions := monotonic(prevSamples, samples)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "metriclint: %s\n", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
	}

	fmt.Printf("metriclint: OK — %d samples, %d families\n", len(samples), countFamilies(samples))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metriclint: "+format+"\n", args...)
	os.Exit(1)
}

func readExposition(path, url string) (string, error) {
	if url != "" {
		resp, err := http.Get(url)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

// familyOf and validName delegate to the shared internal/metriclint
// rules, the same ones the camovet obscounter analyzer applies to the
// static obs.CounterID registry.
func familyOf(name string) string { return metriclint.FamilyOf(name) }

func validName(name string) bool { return metriclint.ValidName(name) }

// lint parses and structurally validates one exposition, returning the
// samples (for -require / -prev) and every violation found.
func lint(text string) ([]client.MetricSample, []string) {
	var errs []string
	types := map[string]string{} // family -> declared TYPE
	helps := map[string]bool{}

	// Pass 1: comment lines. HELP/TYPE must be unique per family.
	for ln, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
			errs = append(errs, fmt.Sprintf("line %d: malformed comment %q", ln+1, line))
			continue
		}
		fam := fields[2]
		if !validName(fam) {
			errs = append(errs, fmt.Sprintf("line %d: illegal metric name %q", ln+1, fam))
		}
		switch fields[1] {
		case "HELP":
			if helps[fam] {
				errs = append(errs, fmt.Sprintf("line %d: duplicate HELP for %s", ln+1, fam))
			}
			helps[fam] = true
		case "TYPE":
			if _, dup := types[fam]; dup {
				errs = append(errs, fmt.Sprintf("line %d: duplicate TYPE for %s", ln+1, fam))
			}
			if len(fields) < 4 {
				errs = append(errs, fmt.Sprintf("line %d: TYPE without a type", ln+1))
				continue
			}
			types[fam] = fields[3]
		}
	}

	samples, err := client.ParseMetrics(strings.NewReader(text))
	if err != nil {
		return nil, append(errs, err.Error())
	}

	// Pass 2: every sample is declared, legally named, and counters
	// follow the _total convention.
	for _, s := range samples {
		fam := familyOf(s.Name)
		if !validName(s.Name) {
			errs = append(errs, fmt.Sprintf("sample %s: illegal metric name", s.Name))
			continue
		}
		typ, declared := types[fam]
		if !declared || !helps[fam] {
			errs = append(errs, fmt.Sprintf("sample %s: family %s lacks HELP/TYPE", s.Key(), fam))
			continue
		}
		if typ == "counter" && !strings.HasSuffix(s.Name, "_total") {
			errs = append(errs, fmt.Sprintf("sample %s: counter without _total suffix", s.Name))
		}
		if typ == "counter" && s.Value < 0 {
			errs = append(errs, fmt.Sprintf("sample %s: negative counter %v", s.Key(), s.Value))
		}
	}

	errs = append(errs, lintHistograms(samples, types)...)
	return samples, errs
}

// lintHistograms groups bucket series by family + non-le labels and
// checks cumulativity, the +Inf terminal and _count agreement.
func lintHistograms(samples []client.MetricSample, types map[string]string) []string {
	type series struct {
		buckets map[float64]float64 // le -> count
		count   float64
		hasCnt  bool
	}
	bySeries := map[string]*series{}
	get := func(key string) *series {
		s, ok := bySeries[key]
		if !ok {
			s = &series{buckets: map[float64]float64{}}
			bySeries[key] = s
		}
		return s
	}
	// A series key is the family plus every label except le, rendered
	// sorted so bucket and _count lines meet at the same entry.
	seriesKey := func(fam string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(fam)
		for _, k := range keys {
			fmt.Fprintf(&b, "|%s=%s", k, labels[k])
		}
		return b.String()
	}

	for _, s := range samples {
		fam := familyOf(s.Name)
		if types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leText, ok := s.Labels["le"]
			if !ok {
				return []string{fmt.Sprintf("sample %s: bucket without le label", s.Key())}
			}
			le, err := parseLE(leText)
			if err != nil {
				return []string{fmt.Sprintf("sample %s: bad le %q", s.Key(), leText)}
			}
			get(seriesKey(fam, s.Labels)).buckets[le] = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			sr := get(seriesKey(fam, s.Labels))
			sr.count, sr.hasCnt = s.Value, true
		}
	}

	var errs []string
	keys := make([]string, 0, len(bySeries))
	for k := range bySeries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		sr := bySeries[key]
		les := make([]float64, 0, len(sr.buckets))
		for le := range sr.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		if len(les) == 0 || les[len(les)-1] != infLE {
			errs = append(errs, fmt.Sprintf("histogram %s: no +Inf bucket", key))
			continue
		}
		prev := -1.0
		for _, le := range les {
			if c := sr.buckets[le]; c < prev {
				errs = append(errs, fmt.Sprintf("histogram %s: bucket counts not cumulative at le=%v", key, le))
				break
			} else {
				prev = c
			}
		}
		if sr.hasCnt && sr.buckets[infLE] != sr.count {
			errs = append(errs, fmt.Sprintf("histogram %s: +Inf bucket %v != _count %v",
				key, sr.buckets[infLE], sr.count))
		}
	}
	return errs
}

// infLE is the sort key for the +Inf bucket: the largest finite
// float64, above every bound a real histogram declares.
const infLE = math.MaxFloat64

func parseLE(text string) (float64, error) {
	if text == "+Inf" {
		return infLE, nil
	}
	return strconv.ParseFloat(text, 64)
}

func requireFamilies(samples []client.MetricSample, families []string) []string {
	present := map[string]bool{}
	for _, s := range samples {
		present[familyOf(s.Name)] = true
	}
	var missing []string
	for _, fam := range families {
		fam = strings.TrimSpace(fam)
		if fam != "" && !present[fam] {
			missing = append(missing, fam)
		}
	}
	return missing
}

// monotonic compares two scrapes of the same process: every counter and
// histogram bucket present in both must not decrease. Gauges move both
// ways; only _total/_bucket/_sum/_count samples are compared.
func monotonic(prev, cur []client.MetricSample) []string {
	cumulative := func(name string) bool {
		return strings.HasSuffix(name, "_total") || strings.HasSuffix(name, "_bucket") ||
			strings.HasSuffix(name, "_sum") || strings.HasSuffix(name, "_count")
	}
	curBy := make(map[string]float64, len(cur))
	for _, s := range cur {
		curBy[s.Key()] = s.Value
	}
	var errs []string
	for _, s := range prev {
		if !cumulative(s.Name) {
			continue
		}
		if now, ok := curBy[s.Key()]; ok && now < s.Value {
			errs = append(errs, fmt.Sprintf("counter %s went backwards: %v -> %v", s.Key(), s.Value, now))
		}
	}
	return errs
}

func countFamilies(samples []client.MetricSample) int {
	fams := map[string]bool{}
	for _, s := range samples {
		fams[familyOf(s.Name)] = true
	}
	return len(fams)
}
