// Command experiments regenerates every table and figure of the paper's
// evaluation in one run (or a selected subset by ID).
//
// Usage:
//
//	experiments                — run everything, in paper order
//	experiments fig3 fig4      — run selected experiments
//	experiments -list          — list available experiment IDs
//	experiments -parallel      — one goroutine per experiment/level
//	experiments -json=path     — bench log path ("" disables)
//
// Alongside the text rendering, a machine-readable bench log
// (BENCH_results.json by default) records per-experiment wall time and
// simulated throughput, seeding the performance trajectory across
// revisions. The -parallel run produces byte-identical tables to the
// sequential run: every concurrent measurement owns an isolated
// simulated System and results are assembled in paper order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"camouflage"
)

// benchLog is the BENCH_results.json document.
type benchLog struct {
	GeneratedUnix int64                        `json:"generated_unix"`
	Parallel      bool                         `json:"parallel"`
	TotalWallNs   int64                        `json:"total_wall_ns"`
	Experiments   []camouflage.ExperimentStats `json:"experiments"`
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	parallel := flag.Bool("parallel", false,
		"run experiments concurrently (isolated Systems; identical output)")
	jsonPath := flag.String("json", "BENCH_results.json",
		"write a machine-readable bench log to this path (empty to disable)")
	flag.Parse()

	if *list {
		for _, e := range camouflage.Experiments() {
			fmt.Printf("  %-16s %-45s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	t0 := time.Now()
	stats, err := camouflage.RunExperiments(os.Stdout, flag.Args(), *parallel)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t0)

	if *jsonPath != "" {
		doc := benchLog{
			GeneratedUnix: time.Now().Unix(),
			Parallel:      *parallel,
			TotalWallNs:   wall.Nanoseconds(),
			Experiments:   stats,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench log: %s\n", *jsonPath)
	}
}
