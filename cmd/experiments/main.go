// Command experiments regenerates every table and figure of the paper's
// evaluation in one run (or a selected subset by ID).
//
// Usage:
//
//	experiments            — run everything, in paper order
//	experiments fig3 fig4  — run selected experiments
//	experiments -list      — list available experiment IDs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"camouflage"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	flag.Parse()

	if *list {
		for _, e := range camouflage.Experiments() {
			fmt.Printf("  %-16s %-45s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range camouflage.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		fmt.Printf("==== %s ====\n", id)
		if err := camouflage.RunExperiment(id, os.Stdout); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println()
	}
}
