// Command experiments regenerates every table and figure of the paper's
// evaluation in one run (or a selected subset by ID).
//
// Usage:
//
//	experiments                — run everything, in paper order
//	experiments fig3 fig4      — run selected experiments
//	experiments -list          — list available experiment IDs
//	experiments -parallel      — one goroutine per experiment/level
//	experiments -json=path     — bench log path ("" disables)
//	experiments -remote=URL    — run on a camouflaged daemon instead
//	experiments -store-dir=dir — warm-start from (and persist to) a shared
//	                             snapshot store: repeated runs skip every
//	                             kernel boot the store already holds
//	experiments -cpuprofile=p  — write a pprof CPU profile of the run
//	experiments -trace         — dump the structured run trace (JSON,
//	                             stderr): per-experiment wall times and
//	                             engine counter deltas
//
// With -remote the selection runs inside the daemon's long-lived
// process (sharing its warm pool across every client) and the text
// rendering is byte-identical to a local run — pinned by the server
// tests and the CI server-smoke job. The bench log then records the
// daemon's per-experiment stats and pool counters.
//
// Alongside the text rendering, a machine-readable bench log
// (BENCH_results.json by default) records per-experiment wall time and
// simulated throughput, seeding the performance trajectory across
// revisions. The -parallel run produces byte-identical tables to the
// sequential run: every concurrent measurement owns an isolated
// simulated System and results are assembled in paper order.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"camouflage"
	"camouflage/client"
	"camouflage/internal/fault"
	"camouflage/internal/obs"
	"camouflage/internal/snapshot"
	"camouflage/internal/store"
)

// runtimeMeta pins the execution environment so BENCH_results.json
// trajectories are comparable across revisions and machines.
type runtimeMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// benchLog is the BENCH_results.json document.
type benchLog struct {
	GeneratedUnix int64       `json:"generated_unix"`
	Runtime       runtimeMeta `json:"runtime"`
	// Parallel records the runner mode (the parallelism available to it
	// is Runtime.GOMAXPROCS).
	Parallel    bool  `json:"parallel"`
	TotalWallNs int64 `json:"total_wall_ns"`
	// Pool reports warm-pool effectiveness for the run: boots actually
	// paid vs machines served as copy-on-write forks or reset reuses.
	Pool        snapshot.Stats               `json:"pool"`
	Experiments []camouflage.ExperimentStats `json:"experiments"`
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs")
	parallel := flag.Bool("parallel", false,
		"run experiments concurrently (isolated Systems; identical output)")
	jsonPath := flag.String("json", "BENCH_results.json",
		"write a machine-readable bench log to this path (empty to disable)")
	cpus := flag.Int("cpus", 1,
		"vCPUs per booted machine (1 = pre-SMP-identical output; 2+ boots true SMP systems)")
	remote := flag.String("remote", "",
		"run on a camouflaged daemon at this base URL (e.g. http://127.0.0.1:8344) instead of in-process")
	cpuprofile := flag.String("cpuprofile", "",
		"write a CPU profile of the run to this path (perf-PR workflow; local runs only)")
	trace := flag.Bool("trace", false,
		"dump the structured run trace as JSON to stderr (stdout rendering is unchanged)")
	storeDir := flag.String("store-dir", "",
		"warm-start from a persistent snapshot store at this directory (shared with camouflaged; "+
			"snapshots booted by this run persist for the next one). Local runs only.")
	faults := flag.String("faults", "",
		"deterministic fault injection spec for chaos testing, e.g. "+
			"'seed=42,store.chunk.read=1,client.reset=1' (empty disables). With -remote, only the "+
			"client.* points apply in this process; arm the daemon's own -faults for the rest")
	flag.Parse()

	if *faults != "" {
		r, err := fault.ParseSpec(*faults)
		if err != nil {
			log.Fatalf("experiments: -faults: %v", err)
		}
		fault.Install(r)
		fmt.Fprintf(os.Stderr, "experiments: FAULT INJECTION ARMED: %s\n", r)
	}

	if *storeDir != "" && *remote == "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
		snapshot.Shared.Store = st
		// Persists are asynchronous; flush them before exit so the next
		// invocation actually starts warm.
		defer snapshot.Shared.WaitPersist()
	}

	// stopProfile flushes the CPU profile; fatal routes every later
	// error through it, because log.Fatal's os.Exit skips defers and
	// would leave the profile file truncated exactly when a run
	// misbehaves — the case a profile is most wanted for.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		var once sync.Once
		stopProfile = func() {
			once.Do(func() {
				pprof.StopCPUProfile()
				f.Close()
			})
		}
		defer stopProfile()
	}
	fatal := func(err error) {
		stopProfile()
		log.Fatal(err)
	}

	if *list {
		for _, e := range camouflage.Experiments() {
			fmt.Printf("  %-16s %-45s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	// dumpTrace writes a run trace to stderr; stdout carries only the
	// experiment rendering, so parity checks against untraced runs keep
	// passing.
	dumpTrace := func(tr obs.RunTrace) {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tr); err != nil {
			fatal(err)
		}
	}

	var (
		stats []camouflage.ExperimentStats
		pool  snapshot.Stats
	)
	t0 := time.Now()
	if *remote != "" {
		cl := client.New(*remote)
		resp, err := cl.RunExperiments(context.Background(), client.ExperimentsRequest{
			IDs:      flag.Args(),
			Parallel: *parallel,
			CPUs:     *cpus,
		})
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.WriteString(resp.Output); err != nil {
			fatal(err)
		}
		stats, pool = resp.Experiments, resp.Pool
		if *trace && resp.RunID != "" {
			tr, err := cl.RunTrace(context.Background(), resp.RunID)
			if err != nil {
				fatal(err)
			}
			dumpTrace(*tr)
		}
	} else {
		var run *obs.Run
		if *trace {
			run = obs.BeginRun("experiments", "cmd/experiments")
		}
		var err error
		stats, err = camouflage.RunExperimentsOpts(context.Background(), os.Stdout, camouflage.ExperimentOptions{
			IDs: flag.Args(), Parallel: *parallel, CPUs: *cpus, Trace: run,
		})
		if err != nil {
			fatal(err)
		}
		pool = snapshot.Shared.Stats()
		if run != nil {
			run.End()
			dumpTrace(run.Trace())
		}
	}
	wall := time.Since(t0)

	if *jsonPath != "" {
		doc := benchLog{
			GeneratedUnix: time.Now().Unix(),
			Runtime: runtimeMeta{
				GoVersion:  runtime.Version(),
				GOOS:       runtime.GOOS,
				GOARCH:     runtime.GOARCH,
				NumCPU:     runtime.NumCPU(),
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			},
			Parallel:    *parallel,
			TotalWallNs: wall.Nanoseconds(),
			Pool:        pool,
			Experiments: stats,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench log: %s\n", *jsonPath)
	}
}
