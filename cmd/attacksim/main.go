// Command attacksim regenerates the §6.2 security evaluation: the attack
// outcome matrix across kernel builds, the brute-force threshold
// behaviour, and the replay-surface census of the modifier schemes.
package main

import (
	"log"
	"os"

	"camouflage/internal/figures"
)

func main() {
	for _, id := range []string{"attacks", "ablation-replay"} {
		e, _ := figures.Lookup(id)
		if err := e.Run(os.Stdout); err != nil {
			log.Fatal(err)
		}
		os.Stdout.WriteString("\n")
	}
}
