// Command attacksim regenerates the §6.2 security evaluation: the attack
// outcome matrix across kernel builds, the brute-force threshold
// behaviour, and the replay-surface census of the modifier schemes.
//
// With -campaign it instead runs the differential attack campaign: for
// each (attack, protection level) cell one machine is booted and run to
// the attack window, then N copy-on-write forks are struck with mutated
// corruptions (guessed PAC bits, varied smash sets, transplant
// variants), yielding a per-level defeat/bypass matrix.
//
// Usage:
//
//	attacksim                      — §6.2 matrix + replay census
//	attacksim -campaign            — differential campaign, all levels
//	attacksim -campaign -mutations 64 -levels none,full -seq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"camouflage/internal/attack"
	"camouflage/internal/fault"
	"camouflage/internal/figures"
)

func main() {
	campaign := flag.Bool("campaign", false,
		"run the differential attack campaign (forked mutations against one armed snapshot per cell)")
	mutations := flag.Int("mutations", 32, "mutated attempts per (attack, level) cell")
	seed := flag.Uint64("seed", 1, "campaign mutation seed")
	levels := flag.String("levels", "", "comma-separated level filter (e.g. none,full); empty = all")
	seq := flag.Bool("seq", false, "strike forks sequentially instead of in parallel")
	cpus := flag.Int("cpus", 1,
		"vCPUs per campaign machine (1 = pre-SMP-identical; 2+ adds the cross-core replay cell)")
	faults := flag.String("faults", "",
		"deterministic fault injection spec for chaos testing, e.g. "+
			"'seed=42,pool.boot=1,store.chunk.read=1' (empty disables)")
	flag.Parse()

	if *faults != "" {
		r, err := fault.ParseSpec(*faults)
		if err != nil {
			log.Fatalf("attacksim: -faults: %v", err)
		}
		fault.Install(r)
		fmt.Fprintf(os.Stderr, "attacksim: FAULT INJECTION ARMED: %s\n", r)
	}

	if *campaign {
		var lv []string
		if *levels != "" {
			lv = strings.Split(*levels, ",")
		}
		rep, err := attack.RunCampaign(attack.CampaignOptions{
			Mutations: *mutations,
			Seed:      *seed,
			Parallel:  !*seq,
			Levels:    lv,
			CPUs:      *cpus,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep.Render(os.Stdout)
		return
	}

	for _, id := range []string{"attacks", "ablation-replay"} {
		e, _ := figures.Lookup(id)
		if err := e.Run(os.Stdout); err != nil {
			log.Fatal(err)
		}
		os.Stdout.WriteString("\n")
	}
}
