// Command lmbench regenerates Figure 3: lmbench micro-benchmark latencies
// under the three kernel protection levels, relative to the unprotected
// baseline.
package main

import (
	"log"
	"os"

	"camouflage/internal/figures"
)

func main() {
	e, _ := figures.Lookup("fig3")
	if err := e.Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
