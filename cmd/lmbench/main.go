// Command lmbench regenerates Figure 3: lmbench micro-benchmark latencies
// under the three kernel protection levels, relative to the unprotected
// baseline. With -cpus N the machines boot N vCPUs (the benchmarks stay
// pinned to the boot core; secondaries install their keys and idle).
package main

import (
	"flag"
	"log"
	"os"

	"camouflage/internal/figures"
)

func main() {
	cpus := flag.Int("cpus", 1, "vCPUs per machine (1 = pre-SMP-identical build)")
	flag.Parse()

	e, _ := figures.Lookup("fig3")
	err := figures.RunWithCPUs(*cpus, func() error { return e.Run(os.Stdout) })
	if err != nil {
		log.Fatal(err)
	}
}
