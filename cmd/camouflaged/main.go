// Command camouflaged is the Camouflage simulation service daemon: a
// long-running HTTP/JSON server that owns the process-wide warm pool of
// booted machines and serves experiment runs, differential attack
// campaigns and interactive machine leases (DESIGN.md §8). Because the
// pool lives as long as the process, every configuration pays its
// build+verify+boot exactly once across all requests and all clients —
// the economics one-shot CLI invocations can never reach.
//
// Usage:
//
//	camouflaged                       — serve on :8344
//	camouflaged -addr 127.0.0.1:9000  — serve elsewhere
//	camouflaged -concurrency 8 -queue 64 -max-leases 128
//	camouflaged -store-dir /var/lib/camouflage — persist snapshots across restarts
//	camouflaged -pprof 127.0.0.1:6060 — expose net/http/pprof separately
//
// Endpoints (see README for curl examples):
//
//	GET  /v1/experiments               — experiment registry
//	POST /v1/experiments               — run a figures.All() selection
//	POST /v1/campaigns                 — differential attack campaign
//	POST /v1/machines                  — lease a warm machine
//	GET  /v1/machines/{id}             — registers, UART, fault log
//	POST /v1/machines/{id}/run         — step by instruction budget
//	POST /v1/machines/{id}/reset       — rewind to lease snapshot
//	POST /v1/machines/{id}/release     — hand the machine back
//	GET  /v1/runs/{id}/trace           — structured trace of a recent run
//	GET  /v1/snapshots                 — persisted snapshots (-store-dir)
//	GET  /v1/snapshots/{digest}        — one snapshot's manifest
//	POST /v1/snapshots/{digest}/pin    — pin/unpin against eviction
//	DELETE /v1/snapshots/{digest}      — evict from the store
//	GET  /v1/images                    — snapshots grouped by kernel image
//	GET  /v1/stats                     — pool / queue / lease counters
//	                                     plus the full metrics registry
//	GET  /metrics                      — Prometheus text exposition
//
// SIGTERM or SIGINT drains gracefully: in-flight jobs finish, leases
// return to the pool, idle machines are evicted, then the listener
// closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only on -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"camouflage/internal/fault"
	"camouflage/internal/server"
	"camouflage/internal/snapshot"
	"camouflage/internal/store"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	concurrency := flag.Int("concurrency", 4, "jobs running at once")
	maxQueue := flag.Int("queue", 32, "jobs allowed to wait for a slot (503 beyond)")
	maxLeases := flag.Int("max-leases", 64, "machine leases checked out at once")
	leaseIdle := flag.Duration("lease-idle", 10*time.Minute, "idle time before a lease is reaped")
	idlePerKey := flag.Int("idle-per-key", 16, "warm machines parked per pool key")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	storeDir := flag.String("store-dir", "",
		"persist booted snapshots in this directory (content-addressed, verified on load); "+
			"a restart against a populated store serves its first experiment with zero kernel boots")
	storeGC := flag.Bool("store-gc", false,
		"run store garbage collection at startup (delete chunks no manifest references; pinned snapshots are kept)")
	pprofAddr := flag.String("pprof", "",
		"serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty disables). "+
			"Keeps profiling off the API listener so future perf PRs can profile the daemon under load.")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute,
		"run watchdog wall budget: an experiment/campaign past it is cancelled (504) and a "+
			"wedged lease operation force-expired (0 disables)")
	bootRetries := flag.Int("boot-retries", 3,
		"boot attempts per pool key before the failure feeds the circuit breaker")
	breakerThreshold := flag.Int("breaker-threshold", 5,
		"consecutive boot/verify failures that open a key's circuit breaker (fast-fail 503 + Retry-After)")
	breakerReset := flag.Duration("breaker-reset", 30*time.Second,
		"how long an open breaker fast-fails before allowing a half-open probe boot")
	faults := flag.String("faults", "",
		"deterministic fault injection spec for chaos testing, e.g. "+
			"'seed=42,store.chunk.read=2,pool.boot=every:3,client.stall=1:50ms' (empty disables). "+
			"TESTING ONLY: injected faults fail real requests")
	flag.Parse()

	if *faults != "" {
		r, err := fault.ParseSpec(*faults)
		if err != nil {
			log.Fatalf("camouflaged: -faults: %v", err)
		}
		fault.Install(r)
		log.Printf("camouflaged: FAULT INJECTION ARMED: %s", r)
	}

	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers; the API
			// listener below uses its own mux and never exposes them.
			log.Printf("camouflaged: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("camouflaged: pprof listener: %v", err)
			}
		}()
	}

	snapshot.Shared.MaxIdlePerKey = *idlePerKey
	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Fatalf("camouflaged: %v", err)
		}
		if *storeGC {
			if n, err := st.GC(); err != nil {
				log.Printf("camouflaged: store gc: %v", err)
			} else if n > 0 {
				log.Printf("camouflaged: store gc removed %d unreferenced chunks", n)
			}
		}
		snapshot.Shared.Store = st
		log.Printf("camouflaged: snapshot store at %s (%d snapshots)", *storeDir, len(st.List()))
		if rec := st.Recovery(); rec.OrphanTmps > 0 || rec.BadManifests > 0 {
			log.Printf("camouflaged: store recovery sweep: %d orphaned tmp files removed, %d torn manifests discarded",
				rec.OrphanTmps, rec.BadManifests)
		}
	}
	snapshot.Shared.BootAttempts = *bootRetries
	snapshot.Shared.BreakerThreshold = *breakerThreshold
	snapshot.Shared.BreakerReset = *breakerReset
	srv := server.New(server.Config{
		Concurrency: *concurrency,
		MaxQueue:    *maxQueue,
		MaxLeases:   *maxLeases,
		LeaseIdle:   *leaseIdle,
		Store:       st,
		JobTimeout:  *jobTimeout,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("camouflaged: serving on %s (concurrency %d, queue %d)", *addr, *concurrency, *maxQueue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("camouflaged: %v — draining (budget %s)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("camouflaged: drain incomplete: %v", err)
		}
		// The listener gets its own small budget: a drain that spent its
		// whole allowance force-expiring wedged leases must not leave
		// Shutdown with an already-expired context (the daemon would
		// never close the listener and never exit — the shutdown leak
		// this drain path is designed to prevent).
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("camouflaged: shutdown: %v", err)
		}
		st := snapshot.Shared.Stats()
		ls := srv.LeaseStats()
		log.Printf("camouflaged: done (boots %d, forks %d, reuses %d, evicted %d, store loads %d, store persists %d, leases released %d, force-expired %d)",
			st.Boots, st.Forks, st.Reuses, st.Evicted, st.StoreLoads, st.StorePersists, ls.Released, ls.ForceExpired)
		if r := fault.Active(); r != nil {
			log.Printf("camouflaged: injected faults fired: %v", r.Counts())
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
