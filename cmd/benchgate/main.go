// Command benchgate is the CI bench-trajectory gate: it parses `go test
// -bench` output, writes a machine-readable trajectory document, and
// fails when the warm pool's fork-vs-boot advantage drops below the
// pinned floor (DESIGN.md §7 records ≥5x; the same floor
// TestForkAtLeast5xFasterThanBoot enforces in-process).
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=3x -count=3 . | tee bench.txt
//	benchgate -in bench.txt -json BENCH_results.json -floor 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"camouflage/internal/benchparse"
)

// trajectory is the JSON document the CI job uploads as an artifact:
// raw entries plus the derived ratios the gate checks, with runtime
// metadata so revisions stay comparable.
type trajectory struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`

	// ForkVsBoot is mean(boot+run ns/op) / mean(fork+run ns/op); Floor
	// the gate it must clear.
	ForkVsBoot float64 `json:"fork_vs_boot"`
	Floor      float64 `json:"floor"`

	Entries []benchparse.Entry `json:"entries"`
}

func main() {
	in := flag.String("in", "-", "bench output file (- for stdin)")
	jsonPath := flag.String("json", "BENCH_results.json", "trajectory document path (empty to disable)")
	floor := flag.Float64("floor", 5.0, "minimum fork-vs-boot advantage")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	entries, err := benchparse.Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) == 0 {
		log.Fatal("benchgate: no benchmark results in input")
	}

	boot, okBoot := benchparse.MeanNsPerOp(entries, "BenchmarkForkVsBoot/boot+run")
	fork, okFork := benchparse.MeanNsPerOp(entries, "BenchmarkForkVsBoot/fork+run")
	if !okBoot || !okFork {
		log.Fatal("benchgate: BenchmarkForkVsBoot results missing (run it with -bench)")
	}
	if fork <= 0 {
		log.Fatal("benchgate: fork+run ns/op is zero")
	}
	ratio := boot / fork

	doc := trajectory{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		ForkVsBoot:    ratio,
		Floor:         *floor,
		Entries:       entries,
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: trajectory written to %s\n", *jsonPath)
	}

	fmt.Printf("benchgate: fork-vs-boot advantage %.2fx (floor %.1fx)\n", ratio, *floor)
	if ratio < *floor {
		fmt.Printf("benchgate: FAIL — boot+run %.0f ns/op vs fork+run %.0f ns/op\n", boot, fork)
		os.Exit(1)
	}
}
