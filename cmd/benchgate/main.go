// Command benchgate is the CI bench-trajectory gate: it parses `go test
// -bench` output, writes a machine-readable trajectory document, and
// fails when a pinned performance floor regresses:
//
//   - the warm pool's fork-vs-boot advantage (DESIGN.md §7 records ≥5x;
//     the same floor TestForkAtLeast5xFasterThanBoot enforces in-process);
//
//   - the execution pipeline's steady-state allocation budget (0
//     allocs/op for the fastpath BenchmarkExecThroughput variants — the
//     data fast path and block chaining are allocation-free by design);
//
//   - the host-pointer advantage on the load/store-heavy
//     BenchmarkMemFastPath (hostptr vs buspath ns/op ratio).
//
//   - the ns/op trajectory of the fastpath BenchmarkExecThroughput
//     variants against a committed baseline trajectory (-baseline,
//     -exec-regress): same-machine-class regressions beyond the budget
//     fail the gate.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=3x -count=3 -benchmem . | tee bench.txt
//	benchgate -in bench.txt -json BENCH_results.json -floor 5 -memfast-floor 1.5 -max-allocs 0 \
//	    -baseline BENCH_results.json.committed -exec-regress 0.05
//
// The allocation, mem-fast-path and baseline gates apply only when
// their benchmarks appear in the input (with -benchmem for the former)
// and the baseline is readable — but a gate silently not running is how
// regressions slip through CI, so every such self-disable is loud: a
// WARNING locally and, under -require-baseline (the default when the CI
// environment variable is set), a hard failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"camouflage/internal/benchparse"
)

// trajectory is the JSON document the CI job uploads as an artifact:
// raw entries plus the derived ratios the gate checks, with runtime
// metadata so revisions stay comparable.
type trajectory struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`

	// ForkVsBoot is mean(boot+run ns/op) / mean(fork+run ns/op); Floor
	// the gate it must clear.
	ForkVsBoot float64 `json:"fork_vs_boot"`
	Floor      float64 `json:"floor"`

	// MemFastPath is mean(buspath ns/op) / mean(hostptr ns/op) for
	// BenchmarkMemFastPath (0 when the benchmark was not run);
	// MemFastFloor the gate it must clear.
	MemFastPath  float64 `json:"mem_fast_path,omitempty"`
	MemFastFloor float64 `json:"mem_fast_floor,omitempty"`

	// ExecAllocs is the worst mean allocs/op observed across the
	// fastpath BenchmarkExecThroughput variants (present only when run
	// with -benchmem); MaxAllocs the budget it must stay within.
	ExecAllocs *float64 `json:"exec_allocs_per_op,omitempty"`
	MaxAllocs  float64  `json:"max_allocs,omitempty"`

	// ExecVsBase maps each fastpath ExecThroughput variant to its ns/op
	// ratio against the -baseline trajectory (present only when the
	// regression gate ran).
	ExecVsBase map[string]float64 `json:"exec_vs_baseline,omitempty"`

	Entries []benchparse.Entry `json:"entries"`
}

// loadBaseline reads a previous trajectory document.
func loadBaseline(path string) (*trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t trajectory
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, err
	}
	if len(t.Entries) == 0 {
		return nil, fmt.Errorf("no entries")
	}
	return &t, nil
}

// execFastpathVariants are the BenchmarkExecThroughput sub-benchmarks
// the allocation and baseline-regression gates cover (the baseline
// variants deliberately run the seed's allocating paths). The 2-vCPU
// variants pin the SMP scheduler: steady state must stay
// allocation-free and on the ns/op trajectory like the uniprocessor
// fast path.
var execFastpathVariants = []string{
	"BenchmarkExecThroughput/none/fastpath",
	"BenchmarkExecThroughput/full/fastpath",
	"BenchmarkExecThroughput/none/fastpath-2cpu",
	"BenchmarkExecThroughput/full/fastpath-2cpu",
}

func main() {
	in := flag.String("in", "-", "bench output file (- for stdin)")
	jsonPath := flag.String("json", "BENCH_results.json", "trajectory document path (empty to disable)")
	floor := flag.Float64("floor", 5.0, "minimum fork-vs-boot advantage")
	memfastFloor := flag.Float64("memfast-floor", 1.5,
		"minimum host-pointer advantage on BenchmarkMemFastPath (0 disables)")
	maxAllocs := flag.Float64("max-allocs", 0,
		"allocs/op budget for the fastpath BenchmarkExecThroughput variants (negative disables)")
	baselinePath := flag.String("baseline", "",
		"previous trajectory document (the committed BENCH_results.json) to regression-check "+
			"the fastpath BenchmarkExecThroughput variants against (empty disables)")
	execRegress := flag.Float64("exec-regress", 0.05,
		"max fractional ns/op regression vs -baseline for the fastpath BenchmarkExecThroughput "+
			"variants (0 disables; only applied when the baseline's go/arch metadata matches this run, "+
			"since cross-machine ns/op is noise, not signal)")
	requireBaseline := flag.Bool("require-baseline", os.Getenv("CI") != "",
		"fail hard — instead of warning and passing — when the -baseline document is missing or "+
			"unparseable, or when a gate's benchmarks are absent from the input (the loud self-disable "+
			"paths); defaults to on under a CI environment so a workflow regex typo cannot silently "+
			"turn a gate off behind a green build")
	flag.Parse()

	failed := false
	// disable reports a gate that cannot run for the given reason: a
	// warning locally, a failure under -require-baseline.
	disable := func(format string, args ...any) {
		if *requireBaseline {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — "+format+" (required by -require-baseline)\n", args...)
			failed = true
			return
		}
		fmt.Fprintf(os.Stderr, "benchgate: WARNING — "+format+"\n", args...)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	entries, err := benchparse.Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) == 0 {
		log.Fatal("benchgate: no benchmark results in input")
	}

	boot, okBoot := benchparse.MeanNsPerOp(entries, "BenchmarkForkVsBoot/boot+run")
	fork, okFork := benchparse.MeanNsPerOp(entries, "BenchmarkForkVsBoot/fork+run")
	if !okBoot || !okFork {
		log.Fatal("benchgate: BenchmarkForkVsBoot results missing (run it with -bench)")
	}
	if fork <= 0 {
		log.Fatal("benchgate: fork+run ns/op is zero")
	}
	ratio := boot / fork

	// Host-pointer floor: only gated when BenchmarkMemFastPath ran — but
	// say so loudly, so a CI regex typo that drops the benchmark cannot
	// silently turn the gate off behind a green build.
	var memRatio float64
	bus, okBus := benchparse.MeanNsPerOp(entries, "BenchmarkMemFastPath/buspath")
	host, okHost := benchparse.MeanNsPerOp(entries, "BenchmarkMemFastPath/hostptr")
	switch {
	case okBus && okHost:
		if host <= 0 {
			log.Fatal("benchgate: hostptr ns/op is zero")
		}
		memRatio = bus / host
	case *memfastFloor > 0:
		disable("BenchmarkMemFastPath results missing; the host-pointer floor is NOT being gated")
	}

	// Allocation budget: gated when the fastpath throughput variants ran;
	// they must then carry allocs/op (run go test with -benchmem). As
	// above, absence disables the gate visibly, never silently.
	var execAllocs *float64
	if *maxAllocs >= 0 {
		for _, name := range execFastpathVariants {
			if _, ran := benchparse.MeanNsPerOp(entries, name); !ran {
				disable("%s missing; the allocs/op budget is NOT being gated for it", name)
				continue
			}
			allocs, ok := benchparse.MeanMetric(entries, name, "allocs/op")
			if !ok {
				log.Fatalf("benchgate: %s has no allocs/op (run go test with -benchmem)", name)
			}
			if execAllocs == nil || allocs > *execAllocs {
				execAllocs = &allocs
			}
		}
	}

	// Baseline regression gate: compare the fastpath ExecThroughput
	// variants against the committed trajectory. A missing or
	// unparseable baseline is a loud self-disable — fatal in CI.
	execVsBase := map[string]float64{}
	if *baselinePath != "" && *execRegress > 0 {
		base, err := loadBaseline(*baselinePath)
		switch {
		case err != nil:
			disable("baseline %s unusable (%v); the ExecThroughput regression gate is NOT running", *baselinePath, err)
		case base.GOARCH != runtime.GOARCH || base.GOOS != runtime.GOOS:
			// ns/op across OS/architectures is noise, not signal: compare
			// only like with like, but say so. Toolchain *version* drift
			// deliberately does NOT skip the gate — CI pins go-version
			// "stable", so an exact-version key would silently disarm the
			// gate on every Go release (the self-disable failure mode this
			// flag set exists to kill); the 5% budget absorbs normal
			// toolchain movement, and a release that genuinely shifts
			// ns/op is exactly when the committed baseline should be
			// re-measured.
			fmt.Fprintf(os.Stderr,
				"benchgate: note — baseline from %s/%s, this run is %s/%s; "+
					"skipping the ns/op regression comparison (not comparable)\n",
				base.GOOS, base.GOARCH, runtime.GOOS, runtime.GOARCH)
		default:
			if base.GoVersion != runtime.Version() {
				fmt.Fprintf(os.Stderr,
					"benchgate: note — baseline measured under %s, this run is %s; comparing anyway\n",
					base.GoVersion, runtime.Version())
			}
			for _, name := range execFastpathVariants {
				cur, okCur := benchparse.MeanNsPerOp(entries, name)
				prev, okPrev := benchparse.MeanNsPerOp(base.Entries, name)
				if !okCur || !okPrev || prev <= 0 {
					disable("%s absent from run or baseline; its regression gate is NOT running", name)
					continue
				}
				ratio := cur / prev
				execVsBase[name] = ratio
				fmt.Printf("benchgate: %s %.1f ns/op vs baseline %.1f (x%.3f, budget x%.3f)\n",
					name, cur, prev, ratio, 1+*execRegress)
				if ratio > 1+*execRegress {
					fmt.Printf("benchgate: FAIL — %s regressed beyond the %.0f%% budget\n", name, *execRegress*100)
					failed = true
				}
			}
		}
	}

	doc := trajectory{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		ForkVsBoot:    ratio,
		Floor:         *floor,
		MemFastPath:   memRatio,
		MemFastFloor:  *memfastFloor,
		ExecAllocs:    execAllocs,
		MaxAllocs:     *maxAllocs,
		ExecVsBase:    execVsBase,
		Entries:       entries,
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: trajectory written to %s\n", *jsonPath)
	}

	fmt.Printf("benchgate: fork-vs-boot advantage %.2fx (floor %.1fx)\n", ratio, *floor)
	if ratio < *floor {
		fmt.Printf("benchgate: FAIL — boot+run %.0f ns/op vs fork+run %.0f ns/op\n", boot, fork)
		failed = true
	}
	if memRatio > 0 {
		fmt.Printf("benchgate: host-pointer advantage %.2fx (floor %.1fx)\n", memRatio, *memfastFloor)
		if *memfastFloor > 0 && memRatio < *memfastFloor {
			fmt.Printf("benchgate: FAIL — buspath %.0f ns/op vs hostptr %.0f ns/op\n", bus, host)
			failed = true
		}
	}
	if execAllocs != nil {
		fmt.Printf("benchgate: exec fastpath steady-state allocs/op %.3f (budget %.0f)\n",
			*execAllocs, *maxAllocs)
		if *execAllocs > *maxAllocs {
			fmt.Println("benchgate: FAIL — the fast path must not allocate in steady state")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
