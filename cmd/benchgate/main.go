// Command benchgate is the CI bench-trajectory gate: it parses `go test
// -bench` output, writes a machine-readable trajectory document, and
// fails when a pinned performance floor regresses:
//
//   - the warm pool's fork-vs-boot advantage (DESIGN.md §7 records ≥5x;
//     the same floor TestForkAtLeast5xFasterThanBoot enforces in-process);
//
//   - the execution pipeline's steady-state allocation budget (0
//     allocs/op for the fastpath BenchmarkExecThroughput variants — the
//     data fast path and block chaining are allocation-free by design);
//
//   - the host-pointer advantage on the load/store-heavy
//     BenchmarkMemFastPath (hostptr vs buspath ns/op ratio).
//
//   - the snapshot-store warm-start advantage on BenchmarkWarmStart
//     (-warmstart-floor): supplying a batch of machines by one verified
//     store load plus copy-on-write forks must beat rebooting each of
//     them by the floor's multiple.
//
//   - the ns/op trajectory of the fastpath BenchmarkExecThroughput
//     variants against a committed baseline trajectory (-baseline,
//     -exec-regress): same-machine-class regressions beyond the budget
//     fail the gate.
//
//   - the superblock-pipeline speedup against a committed reference
//     trajectory (-speedup-ref, -speedup-floor): the none/fastpath ns/op
//     must beat the reference by the floor after normalizing by the
//     none/baseline canary — the NoBlockCache interpreter is untouched
//     code, so its drift measures machine speed, not the pipeline. This
//     gate compares the MINIMUM across -count repeats on both sides:
//     microbenchmark noise is additive (a bursty neighbour slows a
//     repeat, never speeds it), so the minimum estimates quiet-machine
//     performance where the median wobbles by tens of percent on a
//     shared host. Every ns/op ratio gate in this command takes minima
//     for the same reason — a burst during one phase of the run must
//     not move a ratio the code didn't change.
//
//   - parallel-SMP scaling (-parallel-scale): on a multi-core bench
//     host, the truly-parallel 2-vCPU ExecThroughput variant must
//     deliver the floor's multiple of single-core aggregate instr/s.
//     The gate reads the bench host's parallelism from the -N
//     GOMAXPROCS name suffix, so a single-core bench host skips it
//     loudly rather than failing spuriously.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=3x -count=3 -benchmem . | tee bench.txt
//	benchgate -in bench.txt -json BENCH_results.json -floor 5 -memfast-floor 1.5 -max-allocs 0 \
//	    -baseline BENCH_results.json.committed -exec-regress 0.05
//
// The allocation, mem-fast-path and baseline gates apply only when
// their benchmarks appear in the input (with -benchmem for the former)
// and the baseline is readable — but a gate silently not running is how
// regressions slip through CI, so every such self-disable is loud: a
// WARNING locally and, under -require-baseline (the default when the CI
// environment variable is set), a hard failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"camouflage/internal/benchparse"
)

// trajectory is the JSON document the CI job uploads as an artifact:
// raw entries plus the derived ratios the gate checks, with runtime
// metadata so revisions stay comparable.
type trajectory struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`

	// ForkVsBoot is min(boot+run ns/op) / min(fork+run ns/op) across
	// the -count repeats (each side's quietest repeat — see the package
	// comment for why ratios are taken over minima); Floor the gate it
	// must clear.
	ForkVsBoot float64 `json:"fork_vs_boot"`
	Floor      float64 `json:"floor"`

	// MemFastPath is min(buspath ns/op) / min(hostptr ns/op) for
	// BenchmarkMemFastPath (0 when the benchmark was not run);
	// MemFastFloor the gate it must clear.
	MemFastPath  float64 `json:"mem_fast_path,omitempty"`
	MemFastFloor float64 `json:"mem_fast_floor,omitempty"`

	// WarmStart is min(boot+run ns/op) / min(load+fork+run ns/op) for
	// BenchmarkWarmStart — how many times cheaper a batch of machines is
	// when supplied from the persistent snapshot store instead of
	// rebooted (0 when the benchmark was not run); WarmStartFloor the
	// gate it must clear.
	WarmStart      float64 `json:"warm_start,omitempty"`
	WarmStartFloor float64 `json:"warm_start_floor,omitempty"`

	// ExecAllocs is the worst mean allocs/op observed across the
	// fastpath BenchmarkExecThroughput variants (present only when run
	// with -benchmem); MaxAllocs the budget it must stay within.
	ExecAllocs *float64 `json:"exec_allocs_per_op,omitempty"`
	MaxAllocs  float64  `json:"max_allocs,omitempty"`

	// ExecVsBase maps each fastpath ExecThroughput variant to its
	// min-ns/op ratio against the -baseline trajectory (present only
	// when the regression gate ran).
	ExecVsBase map[string]float64 `json:"exec_vs_baseline,omitempty"`

	// SpeedupVsRef is the canary-normalized none/fastpath speedup over
	// the -speedup-ref trajectory; SpeedupFloor the gate it must clear
	// (both 0 when the gate did not run).
	SpeedupVsRef float64 `json:"speedup_vs_ref,omitempty"`
	SpeedupFloor float64 `json:"speedup_floor,omitempty"`

	// ParallelScale2/4 are aggregate-throughput multiples of the
	// truly-parallel 2- and 4-vCPU ExecThroughput variants over
	// single-core none/fastpath, measured within one run (0 when not
	// run); ParallelFloor gates the 2-vCPU value on multi-core hosts.
	ParallelScale2 float64 `json:"parallel_scale_2,omitempty"`
	ParallelScale4 float64 `json:"parallel_scale_4,omitempty"`
	ParallelFloor  float64 `json:"parallel_floor,omitempty"`

	// ObsOverhead is the scraped/quiet ns/op ratio of
	// BenchmarkObsOverhead (0 when not run); ObsBudget the -obs-overhead
	// fraction it must stay within.
	ObsOverhead float64 `json:"obs_overhead,omitempty"`
	ObsBudget   float64 `json:"obs_budget,omitempty"`

	// FaultOverhead is the armed/off ns/op ratio of
	// BenchmarkFaultOverhead (0 when not run); FaultBudget the
	// -fault-overhead fraction it must stay within.
	FaultOverhead float64 `json:"fault_overhead,omitempty"`
	FaultBudget   float64 `json:"fault_budget,omitempty"`

	// Entries is the aggregated result set: one median entry per
	// benchmark (the -count repeats collapse via benchparse.Aggregate).
	Entries []benchparse.Entry `json:"entries"`
}

// loadBaseline reads a previous trajectory document.
func loadBaseline(path string) (*trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t trajectory
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, err
	}
	if len(t.Entries) == 0 {
		return nil, fmt.Errorf("no entries")
	}
	return &t, nil
}

// execFastpathVariants are the BenchmarkExecThroughput sub-benchmarks
// the allocation and baseline-regression gates cover (the baseline
// variants deliberately run the seed's allocating paths). The 2-vCPU
// variants pin the SMP scheduler: steady state must stay
// allocation-free and on the ns/op trajectory like the uniprocessor
// fast path.
var execFastpathVariants = []string{
	"BenchmarkExecThroughput/none/fastpath",
	"BenchmarkExecThroughput/full/fastpath",
	"BenchmarkExecThroughput/none/fastpath-2cpu",
	"BenchmarkExecThroughput/full/fastpath-2cpu",
	// The truly-parallel engine must hold the same steady-state budget:
	// its per-Run setup (goroutines, the stop array) amortizes to zero
	// across a benchmark's instruction budget.
	"BenchmarkExecThroughput/none/parallel-2cpu",
}

func main() {
	in := flag.String("in", "-", "bench output file (- for stdin)")
	jsonPath := flag.String("json", "BENCH_results.json", "trajectory document path (empty to disable)")
	floor := flag.Float64("floor", 5.0, "minimum fork-vs-boot advantage")
	memfastFloor := flag.Float64("memfast-floor", 1.5,
		"minimum host-pointer advantage on BenchmarkMemFastPath (0 disables)")
	warmstartFloor := flag.Float64("warmstart-floor", 2.0,
		"minimum store warm-start advantage on BenchmarkWarmStart — boot+run over load+fork+run (0 disables)")
	maxAllocs := flag.Float64("max-allocs", 0,
		"allocs/op budget for the fastpath BenchmarkExecThroughput variants (negative disables)")
	baselinePath := flag.String("baseline", "",
		"previous trajectory document (the committed BENCH_results.json) to regression-check "+
			"the fastpath BenchmarkExecThroughput variants against (empty disables)")
	execRegress := flag.Float64("exec-regress", 0.05,
		"max fractional ns/op regression vs -baseline for the fastpath BenchmarkExecThroughput "+
			"variants (0 disables; only applied when the baseline's go/arch metadata matches this run, "+
			"since cross-machine ns/op is noise, not signal)")
	speedupRef := flag.String("speedup-ref", "",
		"reference trajectory document for the canary-normalized speedup gate: the committed "+
			"pre-optimization BENCH_results.json the superblock pipeline is measured against (empty disables)")
	speedupFloor := flag.Float64("speedup-floor", 0,
		"minimum canary-normalized speedup of BenchmarkExecThroughput/none/fastpath over -speedup-ref "+
			"(0 disables). Normalization divides out machine-speed drift using the untouched "+
			"none/baseline interpreter: ref_fast/cur_fast * cur_base/ref_base")
	parallelScale := flag.Float64("parallel-scale", 0,
		"minimum aggregate-throughput multiple of the parallel-2cpu ExecThroughput variant over "+
			"single-core none/fastpath (0 disables; gated only when the bench host ran with "+
			"GOMAXPROCS >= 2, as recorded in the benchmark name suffix)")
	obsOverhead := flag.Float64("obs-overhead", 0,
		"max fractional slowdown of BenchmarkObsOverhead/scraped over /quiet (0 disables): the "+
			"observability registry must stay off the hot path even under continuous scraping")
	faultOverhead := flag.Float64("fault-overhead", 0,
		"max fractional slowdown of BenchmarkFaultOverhead/armed over /off (0 disables): fault "+
			"injection points must stay off the instruction loop, armed or not")
	requireBaseline := flag.Bool("require-baseline", os.Getenv("CI") != "",
		"fail hard — instead of warning and passing — when the -baseline document is missing or "+
			"unparseable, or when a gate's benchmarks are absent from the input (the loud self-disable "+
			"paths); defaults to on under a CI environment so a workflow regex typo cannot silently "+
			"turn a gate off behind a green build")
	flag.Parse()

	failed := false
	// disable reports a gate that cannot run for the given reason: a
	// warning locally, a failure under -require-baseline.
	disable := func(format string, args ...any) {
		if *requireBaseline {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — "+format+" (required by -require-baseline)\n", args...)
			failed = true
			return
		}
		fmt.Fprintf(os.Stderr, "benchgate: WARNING — "+format+"\n", args...)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	parsed, err := benchparse.Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(parsed) == 0 {
		log.Fatal("benchgate: no benchmark results in input")
	}
	// Collapse the -count repeats to one median entry per benchmark: the
	// gates below then compare medians, and the trajectory document
	// carries a single entry per name instead of duplicates.
	entries := benchparse.Aggregate(parsed)
	// The bench host's parallelism comes from the GOMAXPROCS name
	// suffix, not from this process — benchgate may evaluate output
	// produced on a different machine.
	benchCPUs := benchparse.MaxNumCPU(entries)
	if benchCPUs == 0 {
		benchCPUs = runtime.NumCPU()
	}

	// Min-of-repeats throughout the ns/op ratio gates: each side's
	// quietest repeat, so a load burst during one phase of the run
	// cannot squeeze (or inflate) a ratio the code didn't change.
	boot, okBoot := benchparse.MinNsPerOp(entries, "BenchmarkForkVsBoot/boot+run")
	fork, okFork := benchparse.MinNsPerOp(entries, "BenchmarkForkVsBoot/fork+run")
	if !okBoot || !okFork {
		log.Fatal("benchgate: BenchmarkForkVsBoot results missing (run it with -bench)")
	}
	if fork <= 0 {
		log.Fatal("benchgate: fork+run ns/op is zero")
	}
	ratio := boot / fork

	// Host-pointer floor: only gated when BenchmarkMemFastPath ran — but
	// say so loudly, so a CI regex typo that drops the benchmark cannot
	// silently turn the gate off behind a green build.
	var memRatio float64
	bus, okBus := benchparse.MinNsPerOp(entries, "BenchmarkMemFastPath/buspath")
	host, okHost := benchparse.MinNsPerOp(entries, "BenchmarkMemFastPath/hostptr")
	switch {
	case okBus && okHost:
		if host <= 0 {
			log.Fatal("benchgate: hostptr ns/op is zero")
		}
		memRatio = bus / host
	case *memfastFloor > 0:
		disable("BenchmarkMemFastPath results missing; the host-pointer floor is NOT being gated")
	}

	// Store warm-start floor: a restarted process supplying a batch of
	// machines from one verified store load must beat rebooting them.
	// Same loud self-disable discipline as the mem-fast gate.
	var warmRatio float64
	warmBoot, okWarmBoot := benchparse.MinNsPerOp(entries, "BenchmarkWarmStart/boot+run")
	warmLoad, okWarmLoad := benchparse.MinNsPerOp(entries, "BenchmarkWarmStart/load+fork+run")
	switch {
	case okWarmBoot && okWarmLoad:
		if warmLoad <= 0 {
			log.Fatal("benchgate: load+fork+run ns/op is zero")
		}
		warmRatio = warmBoot / warmLoad
	case *warmstartFloor > 0:
		disable("BenchmarkWarmStart results missing; the warm-start floor is NOT being gated")
	}

	// Allocation budget: gated when the fastpath throughput variants ran;
	// they must then carry allocs/op (run go test with -benchmem). As
	// above, absence disables the gate visibly, never silently.
	var execAllocs *float64
	if *maxAllocs >= 0 {
		for _, name := range execFastpathVariants {
			if _, ran := benchparse.MeanNsPerOp(entries, name); !ran {
				disable("%s missing; the allocs/op budget is NOT being gated for it", name)
				continue
			}
			allocs, ok := benchparse.MeanMetric(entries, name, "allocs/op")
			if !ok {
				log.Fatalf("benchgate: %s has no allocs/op (run go test with -benchmem)", name)
			}
			if execAllocs == nil || allocs > *execAllocs {
				execAllocs = &allocs
			}
		}
	}

	// Baseline regression gate: compare the fastpath ExecThroughput
	// variants against the committed trajectory. A missing or
	// unparseable baseline is a loud self-disable — fatal in CI.
	execVsBase := map[string]float64{}
	if *baselinePath != "" && *execRegress > 0 {
		base, err := loadBaseline(*baselinePath)
		switch {
		case err != nil:
			disable("baseline %s unusable (%v); the ExecThroughput regression gate is NOT running", *baselinePath, err)
		case base.GOARCH != runtime.GOARCH || base.GOOS != runtime.GOOS:
			// ns/op across OS/architectures is noise, not signal: compare
			// only like with like, but say so. Toolchain *version* drift
			// deliberately does NOT skip the gate — CI pins go-version
			// "stable", so an exact-version key would silently disarm the
			// gate on every Go release (the self-disable failure mode this
			// flag set exists to kill); the 5% budget absorbs normal
			// toolchain movement, and a release that genuinely shifts
			// ns/op is exactly when the committed baseline should be
			// re-measured.
			fmt.Fprintf(os.Stderr,
				"benchgate: note — baseline from %s/%s, this run is %s/%s; "+
					"skipping the ns/op regression comparison (not comparable)\n",
				base.GOOS, base.GOARCH, runtime.GOOS, runtime.GOARCH)
		default:
			if base.GoVersion != runtime.Version() {
				fmt.Fprintf(os.Stderr,
					"benchgate: note — baseline measured under %s, this run is %s; comparing anyway\n",
					base.GoVersion, runtime.Version())
			}
			for _, name := range execFastpathVariants {
				cur, okCur := benchparse.MinNsPerOp(entries, name)
				prev, okPrev := benchparse.MinNsPerOp(base.Entries, name)
				if !okCur || !okPrev || prev <= 0 {
					disable("%s absent from run or baseline; its regression gate is NOT running", name)
					continue
				}
				ratio := cur / prev
				execVsBase[name] = ratio
				fmt.Printf("benchgate: %s %.1f ns/op vs baseline %.1f (x%.3f, budget x%.3f)\n",
					name, cur, prev, ratio, 1+*execRegress)
				if ratio > 1+*execRegress {
					fmt.Printf("benchgate: FAIL — %s regressed beyond the %.0f%% budget\n", name, *execRegress*100)
					failed = true
				}
			}
		}
	}

	// Canary-normalized speedup gate: the superblock pipeline must beat
	// the committed reference trajectory. Machine-speed drift between
	// the reference host and this one is divided out with the untouched
	// NoBlockCache interpreter (none/baseline) as the canary.
	const (
		fastName = "BenchmarkExecThroughput/none/fastpath"
		baseName = "BenchmarkExecThroughput/none/baseline"
	)
	var speedup float64
	if *speedupRef != "" && *speedupFloor > 0 {
		ref, err := loadBaseline(*speedupRef)
		if err != nil {
			disable("speedup reference %s unusable (%v); the speedup gate is NOT running", *speedupRef, err)
		} else {
			// Minimum of the -count repeats on both sides (see the package
			// comment): an old-format reference without min_ns_per_op falls
			// back to its stored ns/op inside MinNsPerOp.
			curFast, ok1 := benchparse.MinNsPerOp(entries, fastName)
			curBase, ok2 := benchparse.MinNsPerOp(entries, baseName)
			refFast, ok3 := benchparse.MinNsPerOp(ref.Entries, fastName)
			refBase, ok4 := benchparse.MinNsPerOp(ref.Entries, baseName)
			if !ok1 || !ok2 || !ok3 || !ok4 || curFast <= 0 || refBase <= 0 {
				disable("fastpath/baseline pair missing from run or reference; the speedup gate is NOT running")
			} else {
				speedup = refFast / curFast * (curBase / refBase)
				fmt.Printf("benchgate: none/fastpath min %.2f ns/op vs reference %.2f; canary min %.1f vs %.1f → "+
					"normalized speedup %.2fx (floor %.2fx)\n",
					curFast, refFast, curBase, refBase, speedup, *speedupFloor)
				if speedup < *speedupFloor {
					fmt.Printf("benchgate: FAIL — superblock pipeline speedup below the %.2fx floor\n", *speedupFloor)
					failed = true
				}
			}
		}
	}

	// Parallel-SMP scaling gate: aggregate instr/s of the truly-parallel
	// variants against single-core, within this one run (no cross-run
	// normalization needed). ns/op is host time per simulated
	// instruction of the whole budget, so the throughput multiple is the
	// plain ns/op ratio. Only the bench host's real parallelism makes
	// the 2-vCPU floor meaningful.
	var scale2, scale4 float64
	if *parallelScale > 0 {
		// Minima again: the ratio of each variant's quietest repeat is the
		// cleanest scaling estimate a noisy host can produce.
		curFast, okFast := benchparse.MinNsPerOp(entries, fastName)
		par2, okPar2 := benchparse.MinNsPerOp(entries, fastName[:len(fastName)-len("fastpath")]+"parallel-2cpu")
		par4, okPar4 := benchparse.MinNsPerOp(entries, fastName[:len(fastName)-len("fastpath")]+"parallel-4cpu")
		if okPar4 && par4 > 0 && okFast {
			scale4 = curFast / par4
		}
		switch {
		case !okFast || !okPar2 || par2 <= 0:
			disable("parallel-2cpu/fastpath pair missing; the parallel scaling gate is NOT running")
		case benchCPUs < 2:
			fmt.Fprintf(os.Stderr,
				"benchgate: note — bench host ran at GOMAXPROCS=%d; parallel scaling recorded but not gated\n",
				benchCPUs)
			scale2 = curFast / par2
		default:
			scale2 = curFast / par2
			fmt.Printf("benchgate: parallel 2-vCPU aggregate throughput %.2fx single-core (floor %.2fx", scale2, *parallelScale)
			if scale4 > 0 {
				fmt.Printf("; 4-vCPU %.2fx", scale4)
			}
			fmt.Println(")")
			if scale2 < *parallelScale {
				fmt.Printf("benchgate: FAIL — parallel 2-vCPU scaling below the %.2fx floor\n", *parallelScale)
				failed = true
			}
		}
	}

	// Observability overhead gate: the counter design (per-core plain
	// cells, atomic shards touched only at Run exit) promises scrapes are
	// invisible to execution; hold the A/B benchmark to that promise.
	var obsRatio float64
	if *obsOverhead > 0 {
		quiet, okQuiet := benchparse.MinNsPerOp(entries, "BenchmarkObsOverhead/quiet")
		scraped, okScraped := benchparse.MinNsPerOp(entries, "BenchmarkObsOverhead/scraped")
		switch {
		case !okQuiet || !okScraped || quiet <= 0:
			disable("BenchmarkObsOverhead pair missing; the observability overhead gate is NOT running")
		default:
			obsRatio = scraped / quiet
			fmt.Printf("benchgate: scraped %.2f ns/op vs quiet %.2f (x%.3f, budget x%.3f)\n",
				scraped, quiet, obsRatio, 1+*obsOverhead)
			if obsRatio > 1+*obsOverhead {
				fmt.Printf("benchgate: FAIL — scraping slows execution beyond the %.0f%% budget\n", *obsOverhead*100)
				failed = true
			}
		}
	}

	// Fault-injection overhead gate: every injection point is a nil
	// atomic-pointer check off the hot path; arming a registry on points
	// execution never reaches must not slow execution.
	var faultRatio float64
	if *faultOverhead > 0 {
		off, okOff := benchparse.MinNsPerOp(entries, "BenchmarkFaultOverhead/off")
		armed, okArmed := benchparse.MinNsPerOp(entries, "BenchmarkFaultOverhead/armed")
		switch {
		case !okOff || !okArmed || off <= 0:
			disable("BenchmarkFaultOverhead pair missing; the fault overhead gate is NOT running")
		default:
			faultRatio = armed / off
			fmt.Printf("benchgate: faults armed %.2f ns/op vs off %.2f (x%.3f, budget x%.3f)\n",
				armed, off, faultRatio, 1+*faultOverhead)
			if faultRatio > 1+*faultOverhead {
				fmt.Printf("benchgate: FAIL — an armed fault registry slows execution beyond the %.0f%% budget\n",
					*faultOverhead*100)
				failed = true
			}
		}
	}

	doc := trajectory{
		GeneratedUnix:  time.Now().Unix(),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         benchCPUs,
		ForkVsBoot:     ratio,
		Floor:          *floor,
		MemFastPath:    memRatio,
		MemFastFloor:   *memfastFloor,
		WarmStart:      warmRatio,
		WarmStartFloor: *warmstartFloor,
		ExecAllocs:     execAllocs,
		MaxAllocs:      *maxAllocs,
		ExecVsBase:     execVsBase,
		SpeedupVsRef:   speedup,
		SpeedupFloor:   *speedupFloor,
		ParallelScale2: scale2,
		ParallelScale4: scale4,
		ParallelFloor:  *parallelScale,
		ObsOverhead:    obsRatio,
		ObsBudget:      *obsOverhead,
		FaultOverhead:  faultRatio,
		FaultBudget:    *faultOverhead,
		Entries:        entries,
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: trajectory written to %s\n", *jsonPath)
	}

	fmt.Printf("benchgate: fork-vs-boot advantage %.2fx (floor %.1fx)\n", ratio, *floor)
	if ratio < *floor {
		fmt.Printf("benchgate: FAIL — boot+run %.0f ns/op vs fork+run %.0f ns/op\n", boot, fork)
		failed = true
	}
	if memRatio > 0 {
		fmt.Printf("benchgate: host-pointer advantage %.2fx (floor %.1fx)\n", memRatio, *memfastFloor)
		if *memfastFloor > 0 && memRatio < *memfastFloor {
			fmt.Printf("benchgate: FAIL — buspath %.0f ns/op vs hostptr %.0f ns/op\n", bus, host)
			failed = true
		}
	}
	if warmRatio > 0 {
		fmt.Printf("benchgate: store warm-start advantage %.2fx (floor %.1fx)\n", warmRatio, *warmstartFloor)
		if *warmstartFloor > 0 && warmRatio < *warmstartFloor {
			fmt.Printf("benchgate: FAIL — boot+run %.0f ns/op vs load+fork+run %.0f ns/op\n", warmBoot, warmLoad)
			failed = true
		}
	}
	if execAllocs != nil {
		fmt.Printf("benchgate: exec fastpath steady-state allocs/op %.3f (budget %.0f)\n",
			*execAllocs, *maxAllocs)
		if *execAllocs > *maxAllocs {
			fmt.Println("benchgate: FAIL — the fast path must not allocate in steady state")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
