// Command benchgate is the CI bench-trajectory gate: it parses `go test
// -bench` output, writes a machine-readable trajectory document, and
// fails when a pinned performance floor regresses:
//
//   - the warm pool's fork-vs-boot advantage (DESIGN.md §7 records ≥5x;
//     the same floor TestForkAtLeast5xFasterThanBoot enforces in-process);
//   - the execution pipeline's steady-state allocation budget (0
//     allocs/op for the fastpath BenchmarkExecThroughput variants — the
//     data fast path and block chaining are allocation-free by design);
//   - the host-pointer advantage on the load/store-heavy
//     BenchmarkMemFastPath (hostptr vs buspath ns/op ratio).
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=3x -count=3 -benchmem . | tee bench.txt
//	benchgate -in bench.txt -json BENCH_results.json -floor 5 -memfast-floor 1.5 -max-allocs 0
//
// The allocation and mem-fast-path gates apply only when their
// benchmarks appear in the input (with -benchmem for the former), so the
// gate also accepts reduced benchmark selections.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"camouflage/internal/benchparse"
)

// trajectory is the JSON document the CI job uploads as an artifact:
// raw entries plus the derived ratios the gate checks, with runtime
// metadata so revisions stay comparable.
type trajectory struct {
	GeneratedUnix int64  `json:"generated_unix"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`

	// ForkVsBoot is mean(boot+run ns/op) / mean(fork+run ns/op); Floor
	// the gate it must clear.
	ForkVsBoot float64 `json:"fork_vs_boot"`
	Floor      float64 `json:"floor"`

	// MemFastPath is mean(buspath ns/op) / mean(hostptr ns/op) for
	// BenchmarkMemFastPath (0 when the benchmark was not run);
	// MemFastFloor the gate it must clear.
	MemFastPath  float64 `json:"mem_fast_path,omitempty"`
	MemFastFloor float64 `json:"mem_fast_floor,omitempty"`

	// ExecAllocs is the worst mean allocs/op observed across the
	// fastpath BenchmarkExecThroughput variants (present only when run
	// with -benchmem); MaxAllocs the budget it must stay within.
	ExecAllocs *float64 `json:"exec_allocs_per_op,omitempty"`
	MaxAllocs  float64  `json:"max_allocs,omitempty"`

	Entries []benchparse.Entry `json:"entries"`
}

// execFastpathVariants are the BenchmarkExecThroughput sub-benchmarks
// the allocation gate covers (the baseline variants deliberately run the
// seed's allocating paths).
var execFastpathVariants = []string{
	"BenchmarkExecThroughput/none/fastpath",
	"BenchmarkExecThroughput/full/fastpath",
}

func main() {
	in := flag.String("in", "-", "bench output file (- for stdin)")
	jsonPath := flag.String("json", "BENCH_results.json", "trajectory document path (empty to disable)")
	floor := flag.Float64("floor", 5.0, "minimum fork-vs-boot advantage")
	memfastFloor := flag.Float64("memfast-floor", 1.5,
		"minimum host-pointer advantage on BenchmarkMemFastPath (0 disables)")
	maxAllocs := flag.Float64("max-allocs", 0,
		"allocs/op budget for the fastpath BenchmarkExecThroughput variants (negative disables)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	entries, err := benchparse.Parse(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(entries) == 0 {
		log.Fatal("benchgate: no benchmark results in input")
	}

	boot, okBoot := benchparse.MeanNsPerOp(entries, "BenchmarkForkVsBoot/boot+run")
	fork, okFork := benchparse.MeanNsPerOp(entries, "BenchmarkForkVsBoot/fork+run")
	if !okBoot || !okFork {
		log.Fatal("benchgate: BenchmarkForkVsBoot results missing (run it with -bench)")
	}
	if fork <= 0 {
		log.Fatal("benchgate: fork+run ns/op is zero")
	}
	ratio := boot / fork

	// Host-pointer floor: only gated when BenchmarkMemFastPath ran — but
	// say so loudly, so a CI regex typo that drops the benchmark cannot
	// silently turn the gate off behind a green build.
	var memRatio float64
	bus, okBus := benchparse.MeanNsPerOp(entries, "BenchmarkMemFastPath/buspath")
	host, okHost := benchparse.MeanNsPerOp(entries, "BenchmarkMemFastPath/hostptr")
	switch {
	case okBus && okHost:
		if host <= 0 {
			log.Fatal("benchgate: hostptr ns/op is zero")
		}
		memRatio = bus / host
	case *memfastFloor > 0:
		fmt.Fprintln(os.Stderr,
			"benchgate: WARNING — BenchmarkMemFastPath results missing; the host-pointer floor is NOT being gated")
	}

	// Allocation budget: gated when the fastpath throughput variants ran;
	// they must then carry allocs/op (run go test with -benchmem). As
	// above, absence disables the gate visibly, never silently.
	var execAllocs *float64
	if *maxAllocs >= 0 {
		for _, name := range execFastpathVariants {
			if _, ran := benchparse.MeanNsPerOp(entries, name); !ran {
				fmt.Fprintf(os.Stderr,
					"benchgate: WARNING — %s missing; the allocs/op budget is NOT being gated for it\n", name)
				continue
			}
			allocs, ok := benchparse.MeanMetric(entries, name, "allocs/op")
			if !ok {
				log.Fatalf("benchgate: %s has no allocs/op (run go test with -benchmem)", name)
			}
			if execAllocs == nil || allocs > *execAllocs {
				execAllocs = &allocs
			}
		}
	}

	doc := trajectory{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		ForkVsBoot:    ratio,
		Floor:         *floor,
		MemFastPath:   memRatio,
		MemFastFloor:  *memfastFloor,
		ExecAllocs:    execAllocs,
		MaxAllocs:     *maxAllocs,
		Entries:       entries,
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchgate: trajectory written to %s\n", *jsonPath)
	}

	failed := false
	fmt.Printf("benchgate: fork-vs-boot advantage %.2fx (floor %.1fx)\n", ratio, *floor)
	if ratio < *floor {
		fmt.Printf("benchgate: FAIL — boot+run %.0f ns/op vs fork+run %.0f ns/op\n", boot, fork)
		failed = true
	}
	if memRatio > 0 {
		fmt.Printf("benchgate: host-pointer advantage %.2fx (floor %.1fx)\n", memRatio, *memfastFloor)
		if *memfastFloor > 0 && memRatio < *memfastFloor {
			fmt.Printf("benchgate: FAIL — buspath %.0f ns/op vs hostptr %.0f ns/op\n", bus, host)
			failed = true
		}
	}
	if execAllocs != nil {
		fmt.Printf("benchgate: exec fastpath steady-state allocs/op %.3f (budget %.0f)\n",
			*execAllocs, *maxAllocs)
		if *execAllocs > *maxAllocs {
			fmt.Println("benchgate: FAIL — the fast path must not allocate in steady state")
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
