// Command workloads regenerates Figure 4: user-space workload overheads
// (JPEG resize, package build, network download) under the three kernel
// protection levels, plus the geometric mean the paper headlines.
package main

import (
	"log"
	"os"

	"camouflage/internal/figures"
)

func main() {
	e, _ := figures.Lookup("fig4")
	if err := e.Run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
