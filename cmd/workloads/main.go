// Command workloads regenerates Figure 4: user-space workload overheads
// (JPEG resize, package build, network download) under the three kernel
// protection levels, plus the geometric mean the paper headlines. With
// -cpus N the machines boot N vCPUs (the workloads stay pinned to the
// boot core; secondaries install their keys and idle).
package main

import (
	"flag"
	"log"
	"os"

	"camouflage/internal/figures"
)

func main() {
	cpus := flag.Int("cpus", 1, "vCPUs per machine (1 = pre-SMP-identical build)")
	flag.Parse()

	e, _ := figures.Lookup("fig4")
	err := figures.RunWithCPUs(*cpus, func() error { return e.Run(os.Stdout) })
	if err != nil {
		log.Fatal(err)
	}
}
