// Command camovet runs the engine's project-specific invariant
// analyzers (internal/vet, DESIGN.md §14) over the module: the
// machine-checked contracts behind the hand-maintained invariants of
// PRs 4–9 — atomic publication discipline, byte-determinism, the
// 0 allocs/op hot path, the obs.CounterID exposition registry and the
// fault-point catalog. It is wired into CI as a required job alongside
// go vet and staticcheck; a clean tree exits 0 with no output.
//
// Usage:
//
//	camovet ./...                 — analyze packages (patterns as for go list)
//	camovet -json ./...           — machine-readable findings (stable order,
//	                                for diffing across commits)
//	camovet -run atomicfield ./…  — run a comma-separated analyzer subset
//	camovet -list                 — print the suite and each contract
//
// Exit status: 0 when no findings, 1 when findings, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"camouflage/internal/vet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (stable order for cross-commit diffs)")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Parse()

	analyzers := vet.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		analyzers = selectAnalyzers(analyzers, *run)
	}

	m, err := vet.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "camovet: %v\n", err)
		os.Exit(2)
	}
	findings, err := vet.RunAnalyzers(m, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "camovet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []vet.Diagnostic{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "camovet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "camovet: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

func selectAnalyzers(all []*vet.Analyzer, names string) []*vet.Analyzer {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []*vet.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		fmt.Fprintf(os.Stderr, "camovet: unknown analyzer %q (see -list)\n", n)
		os.Exit(2)
	}
	return out
}
