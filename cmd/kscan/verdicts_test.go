package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestVerdictsGolden pins the §4.1 verifier's verdicts over the built
// kernel image and the demo modules to the committed golden list. Any
// drift — the verifier starting to reject the kernel or a benign
// module, or accepting a key-stealing or SCTLR-tampering one — fails
// here and in the kscan-smoke CI job.
func TestVerdictsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeVerdicts(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("verdicts.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("verdict drift against verdicts.golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestVerdictsShape guards the semantic content independently of exact
// error wording: the kernel image and benign module pass, both
// malicious modules are rejected for the right reason.
func TestVerdictsShape(t *testing.T) {
	var buf bytes.Buffer
	if err := writeVerdicts(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"kernel-image: OK",
		"module benign-driver: OK",
		"module key-stealer: REJECTED:",
		"module sctlr-tamper: REJECTED:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("verdicts missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "key-stealer: OK") || strings.Contains(out, "sctlr-tamper: OK") {
		t.Errorf("a malicious module passed verification:\n%s", out)
	}
}
