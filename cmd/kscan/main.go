// Command kscan demonstrates the §4.1/§5.3 static analyses:
//
//	kscan         — scan demonstration module images (one benign, one
//	                key-stealing, one SCTLR-tampering) and print verdicts;
//	kscan -stats  — run the Coccinelle-analogue semantic search and print
//	                the §5.3 statistics and a sample of the planned
//	                get/set rewrites.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"camouflage/internal/analysis"
	"camouflage/internal/asm"
	"camouflage/internal/figures"
	"camouflage/internal/insn"
)

func main() {
	stats := flag.Bool("stats", false, "print §5.3 semantic-search statistics")
	flag.Parse()

	if *stats {
		e, _ := figures.Lookup("cocci")
		if err := e.Run(os.Stdout); err != nil {
			log.Fatal(err)
		}
		c := analysis.GenerateLinux52Corpus(1)
		rw := analysis.PlanRewrites(c)
		fmt.Println("\nsample rewrites:")
		for _, r := range rw[:5] {
			conv := ""
			if r.ConvertToOpsTable {
				conv = "  [recommend read-only ops table]"
			}
			fmt.Printf("  %s.%s -> %s()/%s(), tc=%#04x%s\n",
				r.Type, r.Member, r.Getter, r.Setter, r.TypeConst, conv)
		}
		return
	}

	scan := func(name string, build func(a *asm.Assembler)) {
		a := asm.New()
		build(a)
		img, err := a.Link(map[string]uint64{".text": 0x1000})
		if err != nil {
			log.Fatal(err)
		}
		text := img.Sections[".text"].Bytes
		fmt.Printf("module %q (%d bytes):\n", name, len(text))
		if err := analysis.VerifyModuleText(text); err != nil {
			fmt.Printf("  REJECTED: %v\n", err)
			return
		}
		fmt.Println("  ok: no key reads, no SCTLR writes")
	}

	scan("benign-driver", func(a *asm.Assembler) {
		a.I(insn.PACIA(insn.LR, insn.SP))
		a.I(insn.LDR(insn.X0, insn.X1, 8))
		a.I(insn.AUTIA(insn.LR, insn.SP))
		a.I(insn.RET())
	})
	scan("key-stealer", func(a *asm.Assembler) {
		a.I(insn.MRS(insn.X0, insn.APIBKeyLo_EL1))
		a.I(insn.MRS(insn.X1, insn.APIBKeyHi_EL1))
		a.I(insn.RET())
	})
	scan("sctlr-tamper", func(a *asm.Assembler) {
		a.I(insn.MOVZ(insn.X0, 0, 0))
		a.I(insn.MSR(insn.SCTLR_EL1, insn.X0))
		a.I(insn.RET())
	})
}
