// Command kscan demonstrates the §4.1/§5.3 static analyses:
//
//	kscan           — scan demonstration module images (one benign, one
//	                  key-stealing, one SCTLR-tampering) and print verdicts;
//	kscan -stats    — run the Coccinelle-analogue semantic search and print
//	                  the §5.3 statistics and a sample of the planned
//	                  get/set rewrites;
//	kscan -verdicts — machine-comparable verdict list over the built
//	                  kernel image and every demo module, one line each,
//	                  diffed against cmd/kscan/verdicts.golden by the
//	                  kscan-smoke CI job (and TestVerdictsGolden) so any
//	                  drift in what the §4.1 verifier accepts or rejects
//	                  fails the commit that caused it.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"camouflage/internal/analysis"
	"camouflage/internal/asm"
	"camouflage/internal/codegen"
	"camouflage/internal/figures"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
)

// demoModules are the three demonstration module images: one benign
// driver and two §4.1 violations.
func demoModules() []struct {
	name  string
	build func(a *asm.Assembler)
} {
	return []struct {
		name  string
		build func(a *asm.Assembler)
	}{
		{"benign-driver", func(a *asm.Assembler) {
			a.I(insn.PACIA(insn.LR, insn.SP))
			a.I(insn.LDR(insn.X0, insn.X1, 8))
			a.I(insn.AUTIA(insn.LR, insn.SP))
			a.I(insn.RET())
		}},
		{"key-stealer", func(a *asm.Assembler) {
			a.I(insn.MRS(insn.X0, insn.APIBKeyLo_EL1))
			a.I(insn.MRS(insn.X1, insn.APIBKeyHi_EL1))
			a.I(insn.RET())
		}},
		{"sctlr-tamper", func(a *asm.Assembler) {
			a.I(insn.MOVZ(insn.X0, 0, 0))
			a.I(insn.MSR(insn.SCTLR_EL1, insn.X0))
			a.I(insn.RET())
		}},
	}
}

// buildModuleText assembles one demo module and returns its .text bytes.
func buildModuleText(build func(a *asm.Assembler)) ([]byte, error) {
	a := asm.New()
	build(a)
	img, err := a.Link(map[string]uint64{".text": 0x1000})
	if err != nil {
		return nil, err
	}
	return img.Sections[".text"].Bytes, nil
}

// writeVerdicts emits the deterministic verdict list: the §4.1 verifier
// over the full built kernel image, then over each demo module.
func writeVerdicts(w io.Writer) error {
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigFull(), Seed: 1})
	if err != nil {
		return err
	}
	if err := kernel.VerifyImage(k.Img); err != nil {
		fmt.Fprintf(w, "kernel-image: REJECTED: %v\n", err)
	} else {
		fmt.Fprintln(w, "kernel-image: OK")
	}
	for _, mod := range demoModules() {
		text, err := buildModuleText(mod.build)
		if err != nil {
			return err
		}
		if err := analysis.VerifyModuleText(text); err != nil {
			fmt.Fprintf(w, "module %s: REJECTED: %v\n", mod.name, err)
		} else {
			fmt.Fprintf(w, "module %s: OK\n", mod.name)
		}
	}
	return nil
}

func main() {
	stats := flag.Bool("stats", false, "print §5.3 semantic-search statistics")
	verdicts := flag.Bool("verdicts", false, "print the golden verdict list (kernel image + demo modules)")
	flag.Parse()

	if *verdicts {
		if err := writeVerdicts(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *stats {
		e, _ := figures.Lookup("cocci")
		if err := e.Run(os.Stdout); err != nil {
			log.Fatal(err)
		}
		c := analysis.GenerateLinux52Corpus(1)
		rw := analysis.PlanRewrites(c)
		fmt.Println("\nsample rewrites:")
		for _, r := range rw[:5] {
			conv := ""
			if r.ConvertToOpsTable {
				conv = "  [recommend read-only ops table]"
			}
			fmt.Printf("  %s.%s -> %s()/%s(), tc=%#04x%s\n",
				r.Type, r.Member, r.Getter, r.Setter, r.TypeConst, conv)
		}
		return
	}

	scan := func(name string, build func(a *asm.Assembler)) {
		text, err := buildModuleText(build)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("module %q (%d bytes):\n", name, len(text))
		if err := analysis.VerifyModuleText(text); err != nil {
			fmt.Printf("  REJECTED: %v\n", err)
			return
		}
		fmt.Println("  ok: no key reads, no SCTLR writes")
	}

	for _, mod := range demoModules() {
		scan(mod.name, mod.build)
	}
}
