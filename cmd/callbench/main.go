// Command callbench regenerates Figure 2 (per-call overhead of the three
// return-address modifier schemes) and the §6.1.1 key-switch measurement.
package main

import (
	"log"
	"os"

	"camouflage/internal/figures"
)

func main() {
	for _, id := range []string{"fig2", "keys"} {
		e, _ := figures.Lookup(id)
		if err := e.Run(os.Stdout); err != nil {
			log.Fatal(err)
		}
		os.Stdout.WriteString("\n")
	}
}
