// Command camouflage-sim boots a Camouflage-protected machine, runs a
// demonstration workload, and prints a system summary.
//
// Usage:
//
//	camouflage-sim [-level full|backward-edge|none] [-seed N] [-compat]
package main

import (
	"flag"
	"fmt"
	"log"

	"camouflage"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/pac"
)

func main() {
	level := flag.String("level", "full", "protection level: none, backward-edge, full")
	seed := flag.Uint64("seed", 1, "boot randomness seed")
	compat := flag.Bool("compat", false, "backwards-compatible build on an ARMv8.0 core (§5.5)")
	flag.Parse()

	var lv camouflage.ProtectionLevel
	switch *level {
	case "none":
		lv = camouflage.LevelNone
	case "backward-edge":
		lv = camouflage.LevelBackwardEdge
	case "full":
		lv = camouflage.LevelFull
	default:
		log.Fatalf("unknown level %q", *level)
	}

	sys, err := camouflage.NewSystem(lv, camouflage.Options{Seed: *seed, Compat: *compat})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("camouflage: booted %s kernel (seed %d, boot %d cycles)\n",
		lv, *seed, sys.Stats().BootCycles)
	if lv != camouflage.LevelNone && !*compat {
		keys := []pac.KeyID{pac.KeyIB} // backward-edge: IB only
		if lv == camouflage.LevelFull {
			keys = []pac.KeyID{pac.KeyIB, pac.KeyIA, pac.KeyDB}
		}
		for _, id := range keys {
			fmt.Printf("  kernel key %-2v installed via XOM setter: %v\n", id, sys.KernelKeyInstalled(id))
		}
	}

	cycles, err := sys.RunProgram("demo", func(u *kernel.UserASM) {
		// Open /dev/zero, read through the authenticated f_ops path,
		// run the static workqueue item, and exit.
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.MovImm(insn.X2, 256)
		u.SyscallReg(kernel.SysRead)
		u.SyscallReg(kernel.SysWorkRun)
		u.Exit(0)
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("demo workload: %d cycles, %d instructions retired\n", cycles, st.Instrs)
	fmt.Printf("PAC failures: %d, oops records: %d\n", st.PACFailures, st.OopsCount)
}
