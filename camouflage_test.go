package camouflage

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"camouflage/internal/asm"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
)

// newAsm keeps bench_test.go free of a direct asm import cycle concern.
func newAsm() *asm.Assembler { return asm.New() }

func TestFacadeBootAndRun(t *testing.T) {
	sys, err := NewSystem(LevelFull, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := sys.RunProgram("t", func(u *kernel.UserASM) {
		u.SyscallReg(kernel.SysGetppid)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "keys", "fig2", "fig3", "fig4",
		"cocci", "attacks", "ablation-keys", "ablation-replay"}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

// shortWorkload is the acceptance-criterion program: a few syscalls and
// a little compute, representative of one experiment repetition.
func shortWorkload(u *kernel.UserASM) {
	u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
	u.CounterLoop("loop", insn.X21, 2, func() {
		u.SyscallReg(kernel.SysGetppid)
	})
	u.Exit(0)
}

// runShortOn runs the prebuilt short workload to completion on a
// pristine machine (the per-repetition work an experiment cell pays on
// top of machine supply).
func runShortOn(t testing.TB, sys *System, prog *kernel.Program) {
	t.Helper()
	sys.Kernel.RegisterProgram(1, prog)
	if _, err := sys.Kernel.Spawn(1); err != nil {
		t.Fatal(err)
	}
	if stop := sys.Kernel.Run(2_000_000); !sys.Kernel.Halted {
		t.Fatalf("short workload did not finish: %+v", stop)
	}
}

// TestForkAtLeast5xFasterThanBoot pins the headline acceptance
// criterion: Fork+run of a warm snapshot is at least 5x faster than
// NewSystem+run for a short workload. The workload program is built once
// — program assembly is identical on both paths; the criterion is about
// machine supply (codegen + §4.1 verification + boot vs a copy-on-write
// fork).
func TestForkAtLeast5xFasterThanBoot(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock ratio is skewed by race instrumentation")
	}
	const iters = 8
	prog, err := kernel.BuildProgram("short", shortWorkload)
	if err != nil {
		t.Fatal(err)
	}

	// Warm-up (and snapshot source): excluded from both timings.
	sys, err := NewSystem(LevelFull, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()

	measure := func() float64 {
		bootStart := time.Now()
		for i := 0; i < iters; i++ {
			s, err := NewSystem(LevelFull, Options{Seed: 77})
			if err != nil {
				t.Fatal(err)
			}
			runShortOn(t, s, prog)
		}
		bootTime := time.Since(bootStart)

		forkStart := time.Now()
		for i := 0; i < iters; i++ {
			s, err := snap.Fork()
			if err != nil {
				t.Fatal(err)
			}
			runShortOn(t, s, prog)
		}
		forkTime := time.Since(forkStart)

		ratio := float64(bootTime) / float64(forkTime)
		t.Logf("boot+run %v, fork+run %v: %.1fx", bootTime/iters, forkTime/iters, ratio)
		return ratio
	}

	// Best of three: a GC pause or scheduler stall inside one short
	// timing window must not fail the build; a genuine regression below
	// the 5x floor fails all attempts.
	best := 0.0
	for attempt := 0; attempt < 3 && best < 5; attempt++ {
		if r := measure(); r > best {
			best = r
		}
	}
	if best < 5 {
		t.Fatalf("fork+run only %.1fx faster than boot+run, want >= 5x", best)
	}
}

func TestRunExperimentByID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE 1") {
		t.Fatalf("unexpected output: %q", buf.String())
	}
	if err := RunExperiment("bogus", &buf); err == nil {
		t.Fatal("bogus experiment id accepted")
	}
}

// TestExecSteadyStateZeroAllocs pins the fast path's allocation-free
// steady state with testing.AllocsPerRun, which reports a float average
// — unlike `go test -benchmem`, whose allocs/op is truncated to an
// integer and would let a conditional allocation on ~90% of
// instructions read as 0. cmd/benchgate's -max-allocs gate guards the
// CI trajectory; this test guards the sub-1.0 band the gate cannot see.
//
// The budget is per-instruction, not absolutely zero: timer-dependent
// kernel branches occasionally enter already-decoded code at a new
// entry PA as the cycle counter grows, and each such cold entry decodes
// one small block (a few allocations, amortizing toward zero but never
// a hard floor). A per-instruction allocation regression — the failure
// mode this test exists for — sits orders of magnitude above the
// budget.
func TestExecSteadyStateZeroAllocs(t *testing.T) {
	sys, err := NewSystem(LevelNone, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := kernel.BuildProgram("mix", func(u *kernel.UserASM) {
		u.MovImm(insn.X5, 1<<40)
		u.A.Label("loop")
		for i := 0; i < 4; i++ {
			u.A.I(insn.ADDi(insn.X6, insn.X6, 3))
			u.A.I(insn.EORr(insn.X7, insn.X7, insn.X6))
		}
		u.SyscallReg(kernel.SysGetppid)
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RegisterProgram(1, prog)
	if _, err := sys.Kernel.Spawn(1); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.Run(500_000) // warm: decode, TLB, host pointers, chains
	const instrsPerRun = 5_000
	allocs := testing.AllocsPerRun(20, func() {
		sys.Kernel.Run(instrsPerRun)
	})
	if perInstr := allocs / instrsPerRun; perInstr > 0.01 {
		t.Fatalf("steady-state Run allocates %.4f times per instruction (%.1f per %d-instruction slice); the fast path must not allocate per instruction",
			perInstr, allocs, instrsPerRun)
	}
}
