package camouflage

import (
	"bytes"
	"strings"
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/kernel"
)

// newAsm keeps bench_test.go free of a direct asm import cycle concern.
func newAsm() *asm.Assembler { return asm.New() }

func TestFacadeBootAndRun(t *testing.T) {
	sys, err := NewSystem(LevelFull, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := sys.RunProgram("t", func(u *kernel.UserASM) {
		u.SyscallReg(kernel.SysGetppid)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "keys", "fig2", "fig3", "fig4",
		"cocci", "attacks", "ablation-keys", "ablation-replay"}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

func TestRunExperimentByID(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TABLE 1") {
		t.Fatalf("unexpected output: %q", buf.String())
	}
	if err := RunExperiment("bogus", &buf); err == nil {
		t.Fatal("bogus experiment id accepted")
	}
}
