// Package camouflage is a from-scratch Go reproduction of "Camouflage:
// Hardware-assisted CFI for the ARM Linux kernel" (Denis-Courmont,
// Liljestrand, Chinea, Ekberg — DAC 2020, arXiv:1912.04145).
//
// The library contains a cycle-approximate AArch64-subset simulator with
// full ARMv8.3 pointer-authentication semantics (QARMA-64 PACs, real A64
// instruction encodings, a two-stage VMSAv8 MMU), a hypervisor enforcing
// execute-only memory and MMU lockdown, a bootloader that hides the kernel
// PAuth keys inside the XOM key-setter's immediates, a miniature kernel
// whose entry/exit paths switch keys exactly as the paper describes, the
// compiler instrumentation for all the return-address schemes the paper
// compares, a loadable-module subsystem with the §4.1 static-analysis
// gate, an attack harness for the §6.2 security evaluation, and benchmark
// suites regenerating every figure and table of the evaluation.
//
// Quick start:
//
//	sys, err := camouflage.NewSystem(camouflage.LevelFull, camouflage.Options{Seed: 1})
//	if err != nil { ... }
//	cycles, err := sys.RunProgram("hello", func(u *kernel.UserASM) {
//	    u.SyscallReg(kernel.SysGetppid)
//	    u.Exit(0)
//	})
//
// See DESIGN.md for the system inventory, the fast-path execution
// pipeline (software TLB + decoded basic-block cache), the cache
// invalidation contract, and the concurrency model of the parallel
// experiment runner.
package camouflage

import (
	"context"
	"io"

	"camouflage/internal/core"
	"camouflage/internal/figures"
)

// ProtectionLevel selects how much of the Camouflage design is enabled.
type ProtectionLevel = core.ProtectionLevel

// Protection levels (the three builds of Figures 3 and 4).
const (
	// LevelNone is the unprotected baseline kernel.
	LevelNone = core.LevelNone
	// LevelBackwardEdge enables hardened return-address protection only.
	LevelBackwardEdge = core.LevelBackwardEdge
	// LevelFull adds forward-edge CFI and data-flow integrity.
	LevelFull = core.LevelFull
)

// Options tunes a System beyond its protection level.
type Options = core.Options

// System is a booted Camouflage machine.
type System = core.System

// Stats summarises machine counters.
type Stats = core.Stats

// NewSystem builds, statically verifies (§4.1) and boots a system.
func NewSystem(level ProtectionLevel, opts Options) (*System, error) {
	return core.New(level, opts)
}

// ReplicateSystems builds n isolated Systems with the same level and
// options: one build+verify+boot per option set (warm-pooled), then
// copy-on-write forks of its post-boot snapshot, produced concurrently.
// Every replica is identical to a sequentially built System. Used by the
// parallel experiment runner and throughput harnesses.
func ReplicateSystems(level ProtectionLevel, opts Options, n int) ([]*System, error) {
	return core.Replicate(level, opts, n)
}

// SystemSnapshot is an immutable capture of a booted System: Fork new
// Systems from it in O(1) guest memory, or Reset a dirtied descendant
// back to the captured point in O(pages touched). Capture one with
// System.Snapshot (mid-execution captures are allowed).
type SystemSnapshot = core.SystemSnapshot

// Experiment is one reproducible table or figure from the paper.
type Experiment = figures.Experiment

// Experiments returns the registry of every reproducible table and figure,
// in paper order.
func Experiments() []Experiment { return figures.All() }

// RunExperiment regenerates one table or figure by ID (e.g. "fig3"),
// writing its text rendering to w.
func RunExperiment(id string, w io.Writer) error {
	e, ok := figures.Lookup(id)
	if !ok {
		return errUnknownExperiment(id)
	}
	return e.Run(w)
}

// ExperimentStats records one experiment execution for the
// machine-readable bench log.
type ExperimentStats = figures.RunStats

// RunExperiments runs the selected experiments (every registered one
// when ids is empty), writing the renderings to w in registry order.
// With parallel=true, each experiment — and each (benchmark, protection
// level) cell inside the suite-shaped ones — runs in its own goroutine
// on an isolated System; the output is byte-identical to a sequential
// run. It returns per-experiment stats for the bench log.
func RunExperiments(w io.Writer, ids []string, parallel bool) ([]ExperimentStats, error) {
	return figures.RunAll(w, ids, parallel)
}

// RunExperimentsContext is RunExperiments with cancellation: once ctx
// is done the run stops between experiments and returns ctx.Err(). It
// is the entry point the camouflaged service daemon uses to honour
// request deadlines.
func RunExperimentsContext(ctx context.Context, w io.Writer, ids []string, parallel bool) ([]ExperimentStats, error) {
	return figures.RunAllContext(ctx, w, ids, parallel)
}

// ExperimentOptions parameterizes an experiment run (id selection,
// parallelism, vCPU count of the booted machines).
type ExperimentOptions = figures.RunOptions

// RunExperimentsOpts is RunExperiments with full options, notably the
// vCPU count: with CPUs: 2 every machine the experiments boot is a true
// 2-core SMP system (deterministic round-robin scheduler, per-core
// caches, shared shootdown generations — DESIGN.md §9).
func RunExperimentsOpts(ctx context.Context, w io.Writer, opts ExperimentOptions) ([]ExperimentStats, error) {
	return figures.RunAllWith(ctx, w, opts)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "camouflage: unknown experiment " + string(e) + " (see Experiments())"
}
