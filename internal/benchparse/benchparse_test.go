package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: camouflage
cpu: Some CPU @ 2.00GHz
BenchmarkForkVsBoot/boot+run-8         	       3	 90000000 ns/op
BenchmarkForkVsBoot/fork+run-8         	       3	 10000000 ns/op
BenchmarkForkVsBoot/boot+run-8         	       3	 110000000 ns/op
BenchmarkForkVsBoot/fork+run-8         	       3	 10000000 ns/op
BenchmarkExecThroughput/none/fastpath-8 	       3	     4200 ns/op	  23000000 instr/s
BenchmarkSimulatorMIPS-8                	       3	      311 ns/op	         3.000 instrs
BenchmarkWorkload/qsort/backward-edge-8 	       3	   500000 ns/op	    150000 model_cycles
PASS
ok  	camouflage	12.3s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("parsed %d entries, want 7", len(entries))
	}
	if entries[0].Name != "BenchmarkForkVsBoot/boot+run" {
		t.Fatalf("name = %q (suffix not stripped?)", entries[0].Name)
	}
	// A dash inside the sub-benchmark path must survive stripping.
	if entries[6].Name != "BenchmarkWorkload/qsort/backward-edge" {
		t.Fatalf("name = %q, want dash preserved", entries[6].Name)
	}
	if entries[4].Metrics["instr/s"] != 23000000 {
		t.Fatalf("custom metric = %v", entries[4].Metrics)
	}
}

func TestMeans(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	boot, ok := MeanNsPerOp(entries, "BenchmarkForkVsBoot/boot+run")
	if !ok || boot != 100000000 {
		t.Fatalf("boot mean = %v ok=%v, want 1e8", boot, ok)
	}
	fork, ok := MeanNsPerOp(entries, "BenchmarkForkVsBoot/fork+run")
	if !ok || fork != 10000000 {
		t.Fatalf("fork mean = %v ok=%v, want 1e7", fork, ok)
	}
	if ratio := boot / fork; ratio != 10 {
		t.Fatalf("ratio = %v, want 10", ratio)
	}
	ips, ok := MeanMetric(entries, "BenchmarkExecThroughput/none/fastpath", "instr/s")
	if !ok || ips != 23000000 {
		t.Fatalf("instr/s mean = %v ok=%v", ips, ok)
	}
	if _, ok := MeanNsPerOp(entries, "BenchmarkMissing"); ok {
		t.Fatal("MeanNsPerOp matched a missing name")
	}
}
