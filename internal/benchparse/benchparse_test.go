package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: camouflage
cpu: Some CPU @ 2.00GHz
BenchmarkForkVsBoot/boot+run-8         	       3	 90000000 ns/op
BenchmarkForkVsBoot/fork+run-8         	       3	 10000000 ns/op
BenchmarkForkVsBoot/boot+run-8         	       3	 110000000 ns/op
BenchmarkForkVsBoot/fork+run-8         	       3	 10000000 ns/op
BenchmarkExecThroughput/none/fastpath-8 	       3	     4200 ns/op	  23000000 instr/s
BenchmarkSimulatorMIPS-8                	       3	      311 ns/op	         3.000 instrs
BenchmarkWorkload/qsort/backward-edge-8 	       3	   500000 ns/op	    150000 model_cycles
PASS
ok  	camouflage	12.3s
`

func TestParse(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("parsed %d entries, want 7", len(entries))
	}
	if entries[0].Name != "BenchmarkForkVsBoot/boot+run" {
		t.Fatalf("name = %q (suffix not stripped?)", entries[0].Name)
	}
	// A dash inside the sub-benchmark path must survive stripping.
	if entries[6].Name != "BenchmarkWorkload/qsort/backward-edge" {
		t.Fatalf("name = %q, want dash preserved", entries[6].Name)
	}
	if entries[4].Metrics["instr/s"] != 23000000 {
		t.Fatalf("custom metric = %v", entries[4].Metrics)
	}
}

func TestMeans(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	boot, ok := MeanNsPerOp(entries, "BenchmarkForkVsBoot/boot+run")
	if !ok || boot != 100000000 {
		t.Fatalf("boot mean = %v ok=%v, want 1e8", boot, ok)
	}
	fork, ok := MeanNsPerOp(entries, "BenchmarkForkVsBoot/fork+run")
	if !ok || fork != 10000000 {
		t.Fatalf("fork mean = %v ok=%v, want 1e7", fork, ok)
	}
	if ratio := boot / fork; ratio != 10 {
		t.Fatalf("ratio = %v, want 10", ratio)
	}
	ips, ok := MeanMetric(entries, "BenchmarkExecThroughput/none/fastpath", "instr/s")
	if !ok || ips != 23000000 {
		t.Fatalf("instr/s mean = %v ok=%v", ips, ok)
	}
	if _, ok := MeanNsPerOp(entries, "BenchmarkMissing"); ok {
		t.Fatal("MeanNsPerOp matched a missing name")
	}
}

func TestNumCPURecorded(t *testing.T) {
	entries, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.NumCPU != 8 {
			t.Fatalf("%s NumCPU = %d, want 8 (from the -8 suffix)", e.Name, e.NumCPU)
		}
	}
	one, err := Parse(strings.NewReader("BenchmarkBoot \t 3\t 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].NumCPU != 1 {
		t.Fatalf("suffix-less entry NumCPU = %+v, want 1", one)
	}
	if got := MaxNumCPU(entries); got != 8 {
		t.Fatalf("MaxNumCPU = %d, want 8", got)
	}
}

func TestAggregateMedians(t *testing.T) {
	const dup = `BenchmarkX-4 	 10	 30.0 ns/op	 5.0 instr/s
BenchmarkX-4 	 10	 10.0 ns/op	 1.0 instr/s
BenchmarkX-4 	 10	 100.0 ns/op	 3.0 instr/s
BenchmarkY-4 	 7	 42.0 ns/op
`
	entries, err := Parse(strings.NewReader(dup))
	if err != nil {
		t.Fatal(err)
	}
	agg := Aggregate(entries)
	if len(agg) != 2 {
		t.Fatalf("aggregated to %d entries, want 2", len(agg))
	}
	x := agg[0]
	if x.Name != "BenchmarkX" || x.NsPerOp != 30.0 {
		t.Fatalf("X median ns/op = %v, want 30 (middle of 10,30,100)", x.NsPerOp)
	}
	if x.N != 30 {
		t.Fatalf("X N = %d, want 30 (total iterations)", x.N)
	}
	if x.Metrics["instr/s"] != 3.0 {
		t.Fatalf("X median instr/s = %v, want 3", x.Metrics["instr/s"])
	}
	if x.NumCPU != 4 {
		t.Fatalf("X NumCPU = %d, want 4", x.NumCPU)
	}
	if agg[1].Name != "BenchmarkY" || agg[1].NsPerOp != 42.0 {
		t.Fatalf("Y = %+v", agg[1])
	}
	// Even-length group: mean of the middle pair.
	if got := median([]float64{1, 2, 10, 100}); got != 6 {
		t.Fatalf("even median = %v, want 6", got)
	}

	// Aggregation records the fastest repeat alongside the median, and
	// MinNsPerOp surfaces it from both raw and aggregated entries.
	if x.MinNsPerOp != 10.0 {
		t.Fatalf("X min ns/op = %v, want 10", x.MinNsPerOp)
	}
	if m, ok := MinNsPerOp(entries, "BenchmarkX"); !ok || m != 10.0 {
		t.Fatalf("MinNsPerOp(raw) = %v/%v, want 10/true", m, ok)
	}
	if m, ok := MinNsPerOp(agg, "BenchmarkX"); !ok || m != 10.0 {
		t.Fatalf("MinNsPerOp(aggregated) = %v/%v, want 10/true", m, ok)
	}
	// Old-format entries (no MinNsPerOp) fall back to NsPerOp.
	if m, ok := MinNsPerOp([]Entry{{Name: "Z", NsPerOp: 7}}, "Z"); !ok || m != 7 {
		t.Fatalf("MinNsPerOp(old-format) = %v/%v, want 7/true", m, ok)
	}
	if _, ok := MinNsPerOp(agg, "BenchmarkMissing"); ok {
		t.Fatal("MinNsPerOp matched a missing name")
	}
}
