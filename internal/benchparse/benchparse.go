// Package benchparse parses `go test -bench` text output into
// structured entries and aggregates repeated runs (-count=N) — the
// substrate of the CI bench-trajectory gate, which pins the fork-vs-boot
// advantage and records throughput trajectories across revisions.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped
	// ("BenchmarkForkVsBoot/fork+run", not ".../fork+run-8").
	Name string `json:"name"`
	// N is the iteration count the line reports.
	N int64 `json:"n"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds custom b.ReportMetric values by unit (e.g.
	// "instr/s", "cycles/key").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output, returning one Entry per
// benchmark result line (repeated -count runs yield repeated entries).
// Non-benchmark lines (headers, PASS, ok) are ignored.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N value unit [value unit ...]
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: stripProcSuffix(fields[0]), N: n}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchparse: bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				e.NsPerOp = v
				continue
			}
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing -GOMAXPROCS decoration go test
// appends to benchmark names ("BenchmarkBoot-8" -> "BenchmarkBoot").
// Only a purely numeric final dash segment is stripped, so sub-benchmark
// names containing dashes ("fork+run", "backward-edge") survive.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// MeanNsPerOp averages ns/op over every entry named name (the -count
// repeats); ok reports whether any matched.
func MeanNsPerOp(entries []Entry, name string) (mean float64, ok bool) {
	var sum float64
	var n int
	for _, e := range entries {
		if e.Name == name {
			sum += e.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// MeanMetric averages a custom metric over every entry named name.
func MeanMetric(entries []Entry, name, unit string) (mean float64, ok bool) {
	var sum float64
	var n int
	for _, e := range entries {
		if e.Name == name {
			if v, has := e.Metrics[unit]; has {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
