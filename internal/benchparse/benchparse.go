// Package benchparse parses `go test -bench` text output into
// structured entries and aggregates repeated runs (-count=N) — the
// substrate of the CI bench-trajectory gate, which pins the fork-vs-boot
// advantage and records throughput trajectories across revisions.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped
	// ("BenchmarkForkVsBoot/fork+run", not ".../fork+run-8").
	Name string `json:"name"`
	// N is the iteration count the line reports.
	N int64 `json:"n"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// MinNsPerOp is the fastest repeat's ns/op, set by Aggregate (0 on
	// raw parsed entries). CPU-bound microbenchmark noise is additive —
	// interference slows a repeat, never speeds it — so the minimum
	// estimates quiet-machine performance; cross-revision speed
	// comparisons should prefer it over the median, which a bursty
	// neighbour can shift by tens of percent.
	MinNsPerOp float64 `json:"min_ns_per_op,omitempty"`
	// NumCPU is the GOMAXPROCS the benchmark ran under, recovered from
	// the -N name suffix (1 when the suffix is absent — go test omits it
	// at GOMAXPROCS=1). This is the bench host's true parallelism, which
	// can differ from the machine later evaluating the output; scaling
	// gates must read it from here, not from runtime.NumCPU.
	NumCPU int `json:"num_cpu"`
	// Metrics holds custom b.ReportMetric values by unit (e.g.
	// "instr/s", "cycles/key").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Parse reads `go test -bench` output, returning one Entry per
// benchmark result line (repeated -count runs yield repeated entries).
// Non-benchmark lines (headers, PASS, ok) are ignored.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N value unit [value unit ...]
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, ncpu := stripProcSuffix(fields[0])
		e := Entry{Name: name, N: n, NumCPU: ncpu}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchparse: bad value %q in %q", fields[i], line)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				e.NsPerOp = v
				continue
			}
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = v
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// stripProcSuffix removes the trailing -GOMAXPROCS decoration go test
// appends to benchmark names ("BenchmarkBoot-8" -> "BenchmarkBoot") and
// returns its value (1 when absent: go test omits the suffix at
// GOMAXPROCS=1). Only a purely numeric final dash segment is stripped,
// so sub-benchmark names containing dashes ("fork+run", "backward-edge")
// survive.
func stripProcSuffix(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}

// Aggregate collapses duplicate entries — the -count=N repeats of one
// benchmark — into a single entry per name carrying the median of ns/op
// and of every metric (medians resist the skew a noisy-neighbour repeat
// injects, where a mean would drag the whole trajectory). N becomes the
// total iterations across repeats; NumCPU must agree across repeats and
// is carried through. Input order of first appearance is preserved.
func Aggregate(entries []Entry) []Entry {
	byName := make(map[string][]Entry)
	var order []string
	for _, e := range entries {
		if _, seen := byName[e.Name]; !seen {
			order = append(order, e.Name)
		}
		byName[e.Name] = append(byName[e.Name], e)
	}
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		group := byName[name]
		agg := Entry{Name: name, NumCPU: group[0].NumCPU}
		ns := make([]float64, 0, len(group))
		units := make(map[string][]float64)
		for _, e := range group {
			agg.N += e.N
			ns = append(ns, e.NsPerOp)
			for unit, v := range e.Metrics {
				units[unit] = append(units[unit], v)
			}
		}
		agg.NsPerOp = median(ns)
		agg.MinNsPerOp = ns[0]
		for _, v := range ns[1:] {
			if v < agg.MinNsPerOp {
				agg.MinNsPerOp = v
			}
		}
		if len(units) > 0 {
			agg.Metrics = make(map[string]float64, len(units))
			for unit, vs := range units {
				agg.Metrics[unit] = median(vs)
			}
		}
		out = append(out, agg)
	}
	return out
}

// median returns the middle value (mean of the middle pair for even
// lengths) without mutating its argument.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := make([]float64, len(vs))
	copy(s, vs)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// MaxNumCPU returns the largest GOMAXPROCS recorded across entries —
// the bench host's parallelism (0 when entries is empty).
func MaxNumCPU(entries []Entry) int {
	maxCPU := 0
	for _, e := range entries {
		if e.NumCPU > maxCPU {
			maxCPU = e.NumCPU
		}
	}
	return maxCPU
}

// MinNsPerOp returns the smallest ns/op recorded across every entry
// named name, honouring an aggregated entry's MinNsPerOp when present
// (raw repeats contribute their NsPerOp directly, and old-format
// documents without the field fall back to their stored ns/op); ok
// reports whether any matched.
func MinNsPerOp(entries []Entry, name string) (min float64, ok bool) {
	for _, e := range entries {
		if e.Name != name {
			continue
		}
		v := e.NsPerOp
		if e.MinNsPerOp > 0 && e.MinNsPerOp < v {
			v = e.MinNsPerOp
		}
		if !ok || v < min {
			min, ok = v, true
		}
	}
	return min, ok
}

// MeanNsPerOp averages ns/op over every entry named name (the -count
// repeats); ok reports whether any matched.
func MeanNsPerOp(entries []Entry, name string) (mean float64, ok bool) {
	var sum float64
	var n int
	for _, e := range entries {
		if e.Name == name {
			sum += e.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// MeanMetric averages a custom metric over every entry named name.
func MeanMetric(entries []Entry, name, unit string) (mean float64, ok bool) {
	var sum float64
	var n int
	for _, e := range entries {
		if e.Name == name {
			if v, has := e.Metrics[unit]; has {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
