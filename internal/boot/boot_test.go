package boot

import (
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/pac"
)

func TestPRNGDeterministic(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("PRNG not deterministic")
		}
	}
	c := NewPRNG(43)
	if NewPRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds produced identical first outputs")
	}
}

func TestPRNGDistribution(t *testing.T) {
	// Crude sanity: bit balance over many draws.
	p := NewPRNG(7)
	ones := 0
	const n = 10000
	for i := 0; i < n; i++ {
		v := p.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones++
			}
		}
	}
	frac := float64(ones) / float64(n*64)
	if frac < 0.49 || frac > 0.51 {
		t.Fatalf("bit balance %f, want ~0.5", frac)
	}
}

func TestGenerateKeysDistinct(t *testing.T) {
	ks := NewPRNG(1).GenerateKeys()
	seen := map[pac.Key]bool{}
	for _, k := range ks.Keys {
		if k.IsZero() {
			t.Fatal("generated zero key")
		}
		if seen[k] {
			t.Fatal("duplicate key generated")
		}
		seen[k] = true
	}
}

// TestKeySetterInstallsKeys assembles the setter, runs it on the CPU and
// checks that exactly the three kernel keys are installed and x0 is
// scrubbed.
func TestKeySetterInstallsKeys(t *testing.T) {
	keys := NewPRNG(99).GenerateKeys()
	a := asm.New()
	a.Label("entry")
	a.BL("key_setter")
	a.I(insn.HLT(0))
	EmitKeySetter(a, "key_setter", keys, ModeV83)
	img, err := a.Link(map[string]uint64{".text": 0x8_0000})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, 0x10_0000)
	c.PC = img.Symbols["entry"]
	stop := c.Run(1000)
	if stop.Kind != cpu.StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	for _, id := range KernelKeys {
		if got := c.Signer.Key(id); got != keys.Keys[id] {
			t.Fatalf("key %v = %+v, want %+v", id, got, keys.Keys[id])
		}
	}
	// Keys not in the kernel set stay unset.
	if !c.Signer.Key(pac.KeyGA).IsZero() {
		t.Fatal("GA key installed unexpectedly")
	}
	if c.X[0] != 0 {
		t.Fatalf("x0 = %#x after setter; key material leaked in GPR", c.X[0])
	}
}

// TestKeySetterConstantLength: the emitted setter length must not depend
// on the key value (timing/layout side channel).
func TestKeySetterConstantLength(t *testing.T) {
	sizeOf := func(keys pac.KeySet) uint64 {
		a := asm.New()
		EmitKeySetter(a, "s", keys, ModeV83)
		img, err := a.Link(map[string]uint64{".text": 0})
		if err != nil {
			t.Fatal(err)
		}
		return uint64(len(img.Sections[".text"].Bytes))
	}
	var zeroish pac.KeySet // many zero halfwords
	for i := range zeroish.Keys {
		zeroish.Keys[i] = pac.Key{Hi: 1, Lo: 0x1_0000}
	}
	random := NewPRNG(5).GenerateKeys()
	if sizeOf(zeroish) != sizeOf(random) {
		t.Fatal("setter length depends on key value")
	}
}

// TestKeySetterV80Compat: the backwards-compatible build writes
// CONTEXTIDR_EL1 instead of key registers and skips data keys (§5.5).
func TestKeySetterV80Compat(t *testing.T) {
	keys := NewPRNG(3).GenerateKeys()
	a := asm.New()
	a.Label("entry")
	a.BL("key_setter")
	a.I(insn.HLT(0))
	EmitKeySetter(a, "key_setter", keys, ModeV80)
	img, err := a.Link(map[string]uint64{".text": 0x8_0000})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Features{PAuth: false}) // v8.0 core
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, 0x10_0000)
	c.PC = img.Symbols["entry"]
	stop := c.Run(1000)
	if stop.Kind != cpu.StopHLT || stop.Code != 0 {
		t.Fatalf("stop = %+v (setter must not fault on a v8.0 core)", stop)
	}
	// CONTEXTIDR received the last write.
	if c.CONTEXTIDR == 0 {
		t.Fatal("CONTEXTIDR untouched; PA-analogue writes missing")
	}
}

func TestBootInfoRoundTrip(t *testing.T) {
	in := Info{Seed: 0xABCDEF, KeySetter: uint64(pac.KernelBase) | 0x1000, MemBytes: 1 << 30}
	got, ok := DecodeInfo(in.Encode())
	if !ok || got != in {
		t.Fatalf("round trip = (%+v, %v)", got, ok)
	}
	if _, ok := DecodeInfo(make([]byte, 32)); ok {
		t.Fatal("zero block accepted")
	}
	if _, ok := DecodeInfo(nil); ok {
		t.Fatal("short block accepted")
	}
}
