// Package boot models the firmware bootloader of the paper's architecture
// (Figure 1): it generates the pseudo-random kernel PAuth keys, synthesises
// the XOM key-setter function whose MOVZ/MOVK immediates carry the key
// material, and hands the kernel a boot-information block (the analogue of
// the flattened device tree through which Linux receives its KASLR seed).
//
// The key design property (§4.1, §5.1): the kernel can *install* its keys
// by calling the setter, but no EL1 code can *read* them — the only copy
// lives inside execute-only instructions, and the setter scrubs every GPR
// it used before returning.
package boot

import (
	"camouflage/internal/asm"
	"camouflage/internal/insn"
	"camouflage/internal/pac"
)

// PRNG is the bootloader's deterministic random generator (an
// xoshiro256**-style generator standing in for the firmware TRNG; the
// paper likewise uses a firmware PRNG seeded before the kernel starts).
type PRNG struct {
	s [4]uint64
}

// NewPRNG seeds the generator with splitmix64, the reference seeding
// procedure for xoshiro.
func NewPRNG(seed uint64) *PRNG {
	p := &PRNG{}
	x := seed
	for i := range p.s {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		p.s[i] = z ^ z>>31
	}
	return p
}

// Clone returns an independent generator at the same stream position, so
// a forked machine draws exactly the randomness a fresh boot would.
func (p *PRNG) Clone() *PRNG {
	cp := *p
	return &cp
}

// State exports the generator's stream position for snapshot
// persistence.
func (p *PRNG) State() [4]uint64 { return p.s }

// NewPRNGFromState rebuilds a generator at an exported stream position,
// so a snapshot loaded from disk draws exactly the randomness the
// captured machine would have drawn.
func NewPRNGFromState(s [4]uint64) *PRNG { return &PRNG{s: s} }

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (p *PRNG) Uint64() uint64 {
	result := rotl(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl(p.s[3], 45)
	return result
}

// GenerateKeys draws a full bank of five 128-bit PAuth keys.
func (p *PRNG) GenerateKeys() pac.KeySet {
	var ks pac.KeySet
	for i := range ks.Keys {
		ks.Keys[i] = pac.Key{Hi: p.Uint64(), Lo: p.Uint64()}
	}
	return ks
}

// KernelKeys lists the three keys the kernel uses (§4.5): IB for
// backward-edge CFI, IA for forward-edge CFI, DB for DFI. (IA/IB roles
// are swapped relative to user space so that the kernel's backward-edge
// key differs from the one Clang-instrumented user binaries consume.)
var KernelKeys = []pac.KeyID{pac.KeyIB, pac.KeyIA, pac.KeyDB}

// keyRegs maps a key to its (Lo, Hi) system registers.
func keyRegs(id pac.KeyID) (lo, hi insn.SysReg) {
	switch id {
	case pac.KeyIA:
		return insn.APIAKeyLo_EL1, insn.APIAKeyHi_EL1
	case pac.KeyIB:
		return insn.APIBKeyLo_EL1, insn.APIBKeyHi_EL1
	case pac.KeyDA:
		return insn.APDAKeyLo_EL1, insn.APDAKeyHi_EL1
	case pac.KeyDB:
		return insn.APDBKeyLo_EL1, insn.APDBKeyHi_EL1
	default:
		return insn.APGAKeyLo_EL1, insn.APGAKeyHi_EL1
	}
}

// Compat selects the §5.5 backwards-compatible build: data-key setup is
// skipped (pre-8.3 cores have no D registers and the DFI macros reuse the
// instruction key), and key-register writes are replaced with writes to
// CONTEXTIDR_EL1, the paper's side-effect-free stand-in.
type Compat bool

// Build modes.
const (
	// ModeV83 targets ARMv8.3 hardware with real key installs.
	ModeV83 Compat = false
	// ModeV80 targets pre-8.3 hardware (PA-analogue measurement mode).
	ModeV80 Compat = true
)

// EmitKeySetter emits the XOM key-setter into the assembler's current
// section under the given label. The generated function:
//
//	for each kernel key:
//	    movz/movk x0, #<key lo>   ; immediates carry the secret
//	    msr APxKeyLo_EL1, x0
//	    movz/movk x0, #<key hi>
//	    msr APxKeyHi_EL1, x0
//	x0 := 0                        ; scrub key material from GPRs
//	ret
//
// The caller must run it with interrupts masked and map its page XOM
// (§5.1). In ModeV80 the MSRs target CONTEXTIDR_EL1 instead, preserving
// the exact instruction count and timing of the real sequence. ids selects
// the keys to install; nil means the full kernel set (KernelKeys).
func EmitKeySetter(a *asm.Assembler, label string, keys pac.KeySet, mode Compat, ids ...pac.KeyID) {
	if len(ids) == 0 {
		ids = KernelKeys
	}
	a.Label(label)
	for _, id := range ids {
		if mode == ModeV80 && id.IsData() {
			continue // no D keys on pre-8.3; DFI reuses the I key (§5.5)
		}
		lo, hi := keyRegs(id)
		if mode == ModeV80 {
			lo, hi = insn.CONTEXTIDR_EL1, insn.CONTEXTIDR_EL1
		}
		k := keys.Keys[id]
		emitImm64(a, insn.X0, k.Lo)
		a.I(insn.MSR(lo, insn.X0))
		emitImm64(a, insn.X0, k.Hi)
		a.I(insn.MSR(hi, insn.X0))
	}
	a.I(insn.MOVZ(insn.X0, 0, 0)) // scrub
	a.I(insn.RET())
}

// emitImm64 pads the MOVZ/MOVK chain to a fixed four instructions so that
// the setter size (and therefore its timing) is key-independent: a chain
// whose length depended on zero halfwords of the key would itself be a
// (small) side channel.
func emitImm64(a *asm.Assembler, rd insn.Reg, v uint64) {
	a.I(insn.MOVZ(rd, uint16(v), 0))
	a.I(insn.MOVK(rd, uint16(v>>16), 16))
	a.I(insn.MOVK(rd, uint16(v>>32), 32))
	a.I(insn.MOVK(rd, uint16(v>>48), 48))
}

// Info is the boot-information block the bootloader writes for the kernel
// (the FDT analogue of §5, footnote 3).
type Info struct {
	// Seed is the randomness handed to the kernel (KASLR-seed analogue).
	Seed uint64
	// KeySetter is the virtual address of the XOM key-setter.
	KeySetter uint64
	// MemBytes is the RAM size presented to the kernel.
	MemBytes uint64
}

// InfoMagic marks a boot info block in memory.
const InfoMagic = 0xCA11_F1A6_E000_0001

// Encode serialises the block as four little-endian quads.
func (bi Info) Encode() []byte {
	out := make([]byte, 32)
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			out[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, InfoMagic)
	put(8, bi.Seed)
	put(16, bi.KeySetter)
	put(24, bi.MemBytes)
	return out
}

// DecodeInfo parses an encoded block, reporting whether the magic matched.
func DecodeInfo(b []byte) (Info, bool) {
	if len(b) < 32 {
		return Info{}, false
	}
	get := func(off int) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[off+i]) << (8 * i)
		}
		return v
	}
	if get(0) != InfoMagic {
		return Info{}, false
	}
	return Info{Seed: get(8), KeySetter: get(16), MemBytes: get(24)}, true
}
