package snapshot

import (
	"errors"
	"testing"
	"time"

	"camouflage/internal/codegen"
	"camouflage/internal/fault"
	"camouflage/internal/kernel"
)

func withFaults(t *testing.T, spec string) *fault.Registry {
	t.Helper()
	r, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(r)
	t.Cleanup(func() { fault.Install(prev) })
	return r
}

// TestBootRetryHealsTransientFault: the first two boot attempts fail by
// injection; the third succeeds inside one Acquire, invisibly to the
// caller.
func TestBootRetryHealsTransientFault(t *testing.T) {
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 71}
	key := KeyFor(opts)
	pool := NewPool()
	pool.BootBackoff = time.Millisecond

	withFaults(t, "pool.boot=2")
	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatalf("Acquire with transient boot faults: %v", err)
	}
	m.Release()
	st := pool.Stats()
	if st.Boots != 1 || st.BootRetries != 2 {
		t.Fatalf("stats = %+v, want 1 boot after 2 retries", st)
	}
}

// TestFailedBootDoesNotPoisonKey is the sync.Once-poisoning regression:
// an arming that fails every retry must leave the key retryable, so the
// next Acquire — with the cause healed — succeeds.
func TestFailedBootDoesNotPoisonKey(t *testing.T) {
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 72}
	key := KeyFor(opts)
	pool := NewPool()
	pool.BootAttempts = 1

	bootErr := errors.New("transient resource failure")
	if _, err := pool.Acquire(key, func() (*kernel.Kernel, error) {
		return nil, bootErr
	}); !errors.Is(err, bootErr) {
		t.Fatalf("failing Acquire = %v, want bootErr", err)
	}

	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatalf("Acquire after healed failure: %v (key poisoned)", err)
	}
	m.Release()
	if st := pool.Stats(); st.Boots != 1 {
		t.Fatalf("stats = %+v, want exactly 1 boot", st)
	}
}

// TestBreakerOpensFastFailsAndHalfOpens walks the breaker state
// machine: threshold consecutive failures open it, an open key
// fast-fails without running the boot closure, and after the reset
// timer one half-open probe closes it again.
func TestBreakerOpensFastFailsAndHalfOpens(t *testing.T) {
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 73}
	key := KeyFor(opts)
	pool := NewPool()
	pool.BootAttempts = 1
	pool.BreakerThreshold = 2
	pool.BreakerReset = 80 * time.Millisecond

	calls := 0
	failing := func() (*kernel.Kernel, error) {
		calls++
		return nil, errors.New("boot keeps failing")
	}
	for i := 0; i < 2; i++ {
		if _, err := pool.Acquire(key, failing); err == nil {
			t.Fatal("failing Acquire succeeded")
		}
	}
	if calls != 2 {
		t.Fatalf("boot closure ran %d times, want 2", calls)
	}

	// Open: fast-fail with the typed error, no boot attempt.
	_, err := pool.Acquire(key, failing)
	var be *BreakerOpenError
	if !errors.As(err, &be) {
		t.Fatalf("open-breaker Acquire = %v, want *BreakerOpenError", err)
	}
	if be.Failures != 2 || be.RetryAfter <= 0 || be.Key.Digest != key.Digest {
		t.Fatalf("breaker error = %+v", be)
	}
	if calls != 2 {
		t.Fatalf("open breaker still ran the boot closure (%d calls)", calls)
	}
	brs := pool.Breakers()
	if len(brs) != 1 || !brs[0].Open || brs[0].Failures != 2 {
		t.Fatalf("Breakers() = %+v, want one open entry", brs)
	}
	st := pool.Stats()
	if st.BreakerTrips == 0 || st.BreakerFastFails != 1 {
		t.Fatalf("stats = %+v, want trips>0 fastFails=1", st)
	}

	// Half-open after the reset timer: one probe runs and closes it.
	time.Sleep(100 * time.Millisecond)
	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatalf("half-open probe Acquire: %v", err)
	}
	m.Release()
	if brs := pool.Breakers(); len(brs) != 0 {
		t.Fatalf("Breakers() after recovery = %+v, want empty", brs)
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe re-opens the
// breaker for another full reset window.
func TestBreakerProbeFailureReopens(t *testing.T) {
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 74}
	key := KeyFor(opts)
	pool := NewPool()
	pool.BootAttempts = 1
	pool.BreakerThreshold = 1
	pool.BreakerReset = 60 * time.Millisecond

	failing := func() (*kernel.Kernel, error) {
		return nil, errors.New("still down")
	}
	if _, err := pool.Acquire(key, failing); err == nil {
		t.Fatal("failing Acquire succeeded")
	}
	var be *BreakerOpenError
	if _, err := pool.Acquire(key, failing); !errors.As(err, &be) {
		t.Fatalf("want fast fail, got %v", err)
	}

	time.Sleep(80 * time.Millisecond)
	// Probe allowed through — and it fails, re-opening the breaker.
	if _, err := pool.Acquire(key, failing); errors.As(err, &be) {
		t.Fatalf("probe was fast-failed instead of attempted: %v", err)
	}
	if _, err := pool.Acquire(key, failing); !errors.As(err, &be) {
		t.Fatalf("breaker did not re-open after failed probe: %v", err)
	}
	if be.Failures != 2 {
		t.Fatalf("failures = %d, want 2", be.Failures)
	}

	// And a successful probe after another window heals it for good.
	time.Sleep(80 * time.Millisecond)
	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	m.Release()
	if st := pool.Stats(); st.Boots != 1 {
		t.Fatalf("stats = %+v, want 1 boot", st)
	}
}

// TestVerifyFaultFeedsBreaker: injected §4.1 verify failures behave
// like boot failures — retried, then breaker-counted.
func TestVerifyFaultFeedsBreaker(t *testing.T) {
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 75}
	key := KeyFor(opts)
	pool := NewPool()
	pool.BootAttempts = 1
	pool.BreakerThreshold = 1
	pool.BreakerReset = time.Minute

	r := withFaults(t, "pool.verify=1")
	_, err := pool.Acquire(key, BootOptions(opts))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != fault.PoolVerify {
		t.Fatalf("Acquire = %v, want injected pool.verify failure", err)
	}
	if r.Fired(fault.PoolVerify) != 1 {
		t.Fatal("verify fault did not fire")
	}
	var be *BreakerOpenError
	if _, err := pool.Acquire(key, BootOptions(opts)); !errors.As(err, &be) {
		t.Fatalf("breaker did not open on verify failure: %v", err)
	}
}
