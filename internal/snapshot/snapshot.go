// Package snapshot implements copy-on-write snapshotting of booted
// simulated machines: capture a kernel — freshly booted or mid-execution
// — into an immutable Snapshot, Fork independent machines from it in
// O(live host objects) with zero guest-memory copying, and Reset a
// dirtied machine back to the captured point in O(pages touched).
//
// Every experiment cell, benchmark repetition and attack run previously
// paid the full construction cost — codegen, the §4.1 static-analysis
// gate, and boot — even though the post-boot state is identical every
// time. A Snapshot pays that cost once; forks and resets replay none of
// it. Because construction is deterministic, a forked machine is
// indistinguishable from a freshly booted one: same cycle counters, same
// PRNG stream position, same memory image (pinned by the determinism
// tests in this package).
//
// The Pool layers a warm-machine cache on top: machines are keyed by
// their build options (protection level, seed, threshold, compat mode),
// booted once per key, and handed out as forks or reset idle machines.
// The lmbench/workload/figures suites, core.Replicate and the attack
// campaign driver all draw from the shared pool.
package snapshot

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/internal/fault"
	"camouflage/internal/kernel"
	"camouflage/internal/obs"
)

// Phase-latency histograms (DESIGN.md §11): every build+verify+boot,
// copy-on-write fork and snapshot reset is observed, so the fleet view
// shows where machine-provisioning time actually goes. Cold paths only
// — nothing on the instruction loop observes a histogram.
var (
	bootHist = obs.NewHistogram("camouflage_snapshot_boot_seconds",
		"Latency of full machine provisioning (build + verify + boot).", obs.DefaultLatencyBuckets)
	verifyHist = obs.NewHistogram("camouflage_snapshot_verify_seconds",
		"Latency of the §4.1 static-analysis image verification.", obs.DefaultLatencyBuckets)
	forkHist = obs.NewHistogram("camouflage_snapshot_fork_seconds",
		"Latency of copy-on-write machine forks.", obs.DefaultLatencyBuckets)
	resetHist = obs.NewHistogram("camouflage_snapshot_reset_seconds",
		"Latency of machine resets back to their snapshot.", obs.DefaultLatencyBuckets)
)

// Snapshot is an immutable capture of a booted machine. Any number of
// goroutines may Fork from (or Reset machines to) the same Snapshot
// concurrently.
type Snapshot struct {
	st *kernel.State

	// forks and resets count uses (pool/bench reporting).
	forks  atomic.Uint64
	resets atomic.Uint64
}

// Take captures the kernel's complete state — CPU, PAuth keys, MMU
// stages, hypervisor lockdown, devices, host mirrors, and guest RAM
// frozen copy-on-write. The kernel keeps running on a fresh overlay;
// taking a snapshot never perturbs it.
func Take(k *kernel.Kernel) *Snapshot {
	return &Snapshot{st: k.CaptureState()}
}

// Fork builds an independent machine resuming from the captured state:
// new CPU, bus, MMU and device mirrors; guest RAM shared copy-on-write
// with the snapshot. No codegen, verification or boot runs.
func (s *Snapshot) Fork() (*kernel.Kernel, error) {
	t0 := time.Now() //camo:nondet latency histogram sample; guest state is untouched
	k, err := kernel.NewFromState(s.st)
	if err != nil {
		return nil, err
	}
	s.forks.Add(1)
	obs.Add(obs.CPoolMiss, 1)
	forkHist.ObserveSince(t0)
	return k, nil
}

// Reset rewinds a machine to the captured state in O(pages touched),
// discarding everything it ran since. The machine must descend from the
// same built image (it was forked from this snapshot, or this snapshot
// was taken from it).
func (s *Snapshot) Reset(k *kernel.Kernel) error {
	t0 := time.Now() //camo:nondet latency histogram sample; guest state is untouched
	if err := k.RestoreState(s.st); err != nil {
		return err
	}
	s.resets.Add(1)
	resetHist.ObserveSince(t0)
	return nil
}

// Forks returns how many machines have been forked from the snapshot.
func (s *Snapshot) Forks() uint64 { return s.forks.Load() }

// Resets returns how many machines have been reset to the snapshot.
func (s *Snapshot) Resets() uint64 { return s.resets.Load() }

// FrozenPages returns the size of the copy-on-write base in pages.
func (s *Snapshot) FrozenPages() int { return s.st.FrozenPages() }

// BootCycles returns the captured machine's boot cost.
func (s *Snapshot) BootCycles() uint64 { return s.st.BootCycles() }

// BootOptions returns a boot closure for Pool.Acquire that builds,
// §4.1-verifies and boots a kernel with the given options (the standard
// pairing with KeyForOptions). Verification is mandatory on every path
// that can seed the shared pool: core.Replicate and the suites share
// one key space, so a key warmed here must be as trustworthy as one
// warmed through core.New.
func BootOptions(opts kernel.Options) func() (*kernel.Kernel, error) {
	return func() (*kernel.Kernel, error) {
		if err := fault.ErrAt(fault.PoolBoot); err != nil {
			return nil, err
		}
		t0 := time.Now() //camo:nondet boot latency histogram sample; guest state is untouched
		k, err := kernel.New(opts)
		if err != nil {
			return nil, err
		}
		tv := time.Now() //camo:nondet verify latency histogram sample; guest state is untouched
		if err := fault.ErrAt(fault.PoolVerify); err != nil {
			return nil, err
		}
		if err := kernel.VerifyImage(k.Img); err != nil {
			return nil, err
		}
		verifyHist.ObserveSince(tv)
		if err := k.Boot(); err != nil {
			return nil, err
		}
		bootHist.ObserveSince(t0)
		return k, nil
	}
}

// ForEach runs f(0) … f(n-1) and returns the lowest-index error:
// sequentially, or — with parallel set — across a bounded worker pool.
// Workers are capped well above hardware parallelism but independent of
// n, so fan-out over a user-controlled count (campaign mutations) keeps
// at most O(workers) machines live instead of O(n). It is the shared
// replication scaffold of the figures/lmbench/workload suites and the
// campaign driver: callers assemble results by index, keeping output
// independent of schedule.
func ForEach(n int, parallel bool, f func(i int) error) error {
	return ForEachContext(context.Background(), n, parallel, f)
}

// ForEachContext is ForEach with cancellation: once ctx is done no new
// index starts (indices already running finish normally — machines are
// never torn down mid-instruction) and ctx.Err() is reported unless an
// earlier index failed on its own. It is the deadline path of the
// service daemon: request contexts flow through here into every
// replicated cell and campaign strike.
func ForEachContext(ctx context.Context, n int, parallel bool, f func(i int) error) error {
	if !parallel {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := 8 * runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//camo:nondet worker pool forks independent machines; per-slot error slices keep the result order-stable
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Claim-then-check: a skipped index records ctx.Err() in
				// its slot, so cancellation surfaces through the same
				// lowest-index-error scan as real failures — and a run
				// whose every index completed before the context expired
				// still reports success.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
