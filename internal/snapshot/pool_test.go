package snapshot

import (
	"sync"
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/kernel"
)

// TestMaxIdlePerKeyEnforcedUnderConcurrentRelease: hammering Release
// from many goroutines must never park more than MaxIdlePerKey machines
// — the bound is rechecked under the entry lock after the reset, so the
// check-reset-park race cannot overshoot. Machines beyond the bound are
// accounted as Dropped.
func TestMaxIdlePerKeyEnforcedUnderConcurrentRelease(t *testing.T) {
	pool := NewPool()
	pool.MaxIdlePerKey = 3
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 51}
	key := KeyFor(opts)

	const machines = 12
	ms := make([]*Machine, machines)
	for i := range ms {
		m, err := pool.Acquire(key, BootOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}

	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			m.Release()
		}(m)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Idle > pool.MaxIdlePerKey {
		t.Fatalf("idle = %d, want <= MaxIdlePerKey = %d", st.Idle, pool.MaxIdlePerKey)
	}
	if got := st.Idle + int(st.Dropped); got != machines {
		t.Fatalf("idle (%d) + dropped (%d) = %d, want %d (every release parks or drops)",
			st.Idle, st.Dropped, got, machines)
	}
	if st.Boots != 1 {
		t.Fatalf("boots = %d, want 1", st.Boots)
	}
}

// TestEvictIdle: trimming the idle list is accounted separately from
// Release drops, and an evicted key still answers the next Acquire from
// the cached snapshot (a fork, not a re-boot).
func TestEvictIdle(t *testing.T) {
	pool := NewPool()
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 52}
	key := KeyFor(opts)

	ms := make([]*Machine, 4)
	for i := range ms {
		m, err := pool.Acquire(key, BootOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	for _, m := range ms {
		m.Release()
	}
	if st := pool.Stats(); st.Idle != 4 {
		t.Fatalf("idle = %d, want 4", st.Idle)
	}

	if n := pool.EvictIdle(1); n != 3 {
		t.Fatalf("EvictIdle(1) = %d, want 3", n)
	}
	st := pool.Stats()
	if st.Idle != 1 || st.Evicted != 3 {
		t.Fatalf("after eviction: idle = %d evicted = %d, want 1 and 3", st.Idle, st.Evicted)
	}

	if n := pool.EvictIdle(0); n != 1 {
		t.Fatalf("EvictIdle(0) = %d, want 1", n)
	}
	bootsBefore := pool.Stats().Boots
	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if st := pool.Stats(); st.Boots != bootsBefore {
		t.Fatalf("acquire after full eviction re-booted (boots %d -> %d)", bootsBefore, st.Boots)
	}
}

// TestMachineKey: the lease API reports the pool key per machine; the
// key survives Release (only the pool pointer is consumed) so
// diagnostics after release still identify the configuration.
func TestMachineKey(t *testing.T) {
	pool := NewPool()
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 53}
	key := KeyFor(opts)
	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	if m.Key() != key {
		t.Fatalf("Key() = %+v, want %+v", m.Key(), key)
	}
	m.Release()
}

// fakeStore is an in-memory snapshot.Store for pool-level tests: Load
// always misses, Save hands back a fixed digest.
type fakeStore struct {
	mu     sync.Mutex
	digest string
	saves  int
}

func (f *fakeStore) Load(Key) (*Snapshot, string, error) { return nil, "", ErrNotFound }
func (f *fakeStore) Save(Key, *Snapshot) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.saves++
	return f.digest, nil
}

// TestPinnedKeySurvivesEvictIdle: regression test for the pinned-evict
// race. A pinned key's idle machines must survive EvictIdle — including
// an EvictIdle racing with concurrent Acquire/Release traffic on the
// same key — while unpinned keys are still trimmed.
func TestPinnedKeySurvivesEvictIdle(t *testing.T) {
	pool := NewPool()
	pool.Store = &fakeStore{digest: "pinned-digest"}
	optsPinned := kernel.Options{Config: codegen.ConfigBackward(), Seed: 61}
	optsPlain := kernel.Options{Config: codegen.ConfigBackward(), Seed: 62}
	keyPinned, keyPlain := KeyFor(optsPinned), KeyFor(optsPlain)

	mp, err := pool.Acquire(keyPinned, BootOptions(optsPinned))
	if err != nil {
		t.Fatal(err)
	}
	pool.WaitPersist() // digest lands asynchronously; Pin needs it
	if !pool.Pin("pinned-digest", true) {
		t.Fatal("Pin found no resident entry for the persisted digest")
	}
	mp.Release()
	mo, err := pool.Acquire(keyPlain, BootOptions(optsPlain))
	if err != nil {
		t.Fatal(err)
	}
	mo.Release()

	// Race Acquire/Release of the pinned key against repeated evictions.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	evictorDone := make(chan struct{})
	go func() {
		defer close(evictorDone)
		for {
			select {
			case <-stop:
				return
			default:
				pool.EvictIdle(0)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				m, err := pool.Acquire(keyPinned, BootOptions(optsPinned))
				if err != nil {
					t.Error(err)
					return
				}
				m.Release()
			}
		}()
	}
	wg.Wait() // workers finish, then stop the evictor
	close(stop)
	<-evictorDone

	pool.EvictIdle(0)
	var pinnedIdle, plainIdle int
	for _, e := range pool.Entries() {
		switch e.Key {
		case keyPinned:
			pinnedIdle = e.Idle
			if !e.Pinned {
				t.Fatal("pinned entry lost its pin")
			}
		case keyPlain:
			plainIdle = e.Idle
		}
	}
	if pinnedIdle == 0 {
		t.Fatal("EvictIdle(0) evicted a pinned key's idle machines")
	}
	if plainIdle != 0 {
		t.Fatalf("EvictIdle(0) left %d idle machines on an unpinned key", plainIdle)
	}

	// Unpinning re-exposes the key to eviction.
	pool.Pin("pinned-digest", false)
	pool.EvictIdle(0)
	for _, e := range pool.Entries() {
		if e.Key == keyPinned && e.Idle != 0 {
			t.Fatalf("unpinned key kept %d idle machines through EvictIdle(0)", e.Idle)
		}
	}
}
