package snapshot

import (
	"sync"
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/kernel"
)

// TestMaxIdlePerKeyEnforcedUnderConcurrentRelease: hammering Release
// from many goroutines must never park more than MaxIdlePerKey machines
// — the bound is rechecked under the entry lock after the reset, so the
// check-reset-park race cannot overshoot. Machines beyond the bound are
// accounted as Dropped.
func TestMaxIdlePerKeyEnforcedUnderConcurrentRelease(t *testing.T) {
	pool := NewPool()
	pool.MaxIdlePerKey = 3
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 51}
	key := KeyForOptions(opts)

	const machines = 12
	ms := make([]*Machine, machines)
	for i := range ms {
		m, err := pool.Acquire(key, BootOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}

	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func(m *Machine) {
			defer wg.Done()
			m.Release()
		}(m)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Idle > pool.MaxIdlePerKey {
		t.Fatalf("idle = %d, want <= MaxIdlePerKey = %d", st.Idle, pool.MaxIdlePerKey)
	}
	if got := st.Idle + int(st.Dropped); got != machines {
		t.Fatalf("idle (%d) + dropped (%d) = %d, want %d (every release parks or drops)",
			st.Idle, st.Dropped, got, machines)
	}
	if st.Boots != 1 {
		t.Fatalf("boots = %d, want 1", st.Boots)
	}
}

// TestEvictIdle: trimming the idle list is accounted separately from
// Release drops, and an evicted key still answers the next Acquire from
// the cached snapshot (a fork, not a re-boot).
func TestEvictIdle(t *testing.T) {
	pool := NewPool()
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 52}
	key := KeyForOptions(opts)

	ms := make([]*Machine, 4)
	for i := range ms {
		m, err := pool.Acquire(key, BootOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	for _, m := range ms {
		m.Release()
	}
	if st := pool.Stats(); st.Idle != 4 {
		t.Fatalf("idle = %d, want 4", st.Idle)
	}

	if n := pool.EvictIdle(1); n != 3 {
		t.Fatalf("EvictIdle(1) = %d, want 3", n)
	}
	st := pool.Stats()
	if st.Idle != 1 || st.Evicted != 3 {
		t.Fatalf("after eviction: idle = %d evicted = %d, want 1 and 3", st.Idle, st.Evicted)
	}

	if n := pool.EvictIdle(0); n != 1 {
		t.Fatalf("EvictIdle(0) = %d, want 1", n)
	}
	bootsBefore := pool.Stats().Boots
	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release()
	if st := pool.Stats(); st.Boots != bootsBefore {
		t.Fatalf("acquire after full eviction re-booted (boots %d -> %d)", bootsBefore, st.Boots)
	}
}

// TestMachineKey: the lease API reports the pool key per machine; the
// key survives Release (only the pool pointer is consumed) so
// diagnostics after release still identify the configuration.
func TestMachineKey(t *testing.T) {
	pool := NewPool()
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 53}
	key := KeyForOptions(opts)
	m, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	if m.Key() != key {
		t.Fatalf("Key() = %q, want %q", m.Key(), key)
	}
	m.Release()
}
