package snapshot

// Snapshot-level trace hygiene: a machine that has fused superblock
// traces must never leak them through Fork or Reset — restored RAM can
// hold different code than the fused copies (DESIGN.md §10).

import (
	"testing"

	"camouflage/internal/insn"
	"camouflage/internal/kernel"
)

// warmTraces runs a hot user ALU loop long enough to fuse at least one
// superblock trace on the boot core.
func warmTraces(t *testing.T, k *kernel.Kernel) {
	t.Helper()
	prog, err := kernel.BuildProgram("hotloop", func(u *kernel.UserASM) {
		u.MovImm(insn.X5, 500)
		u.A.Label("loop")
		u.A.I(insn.ADDr(insn.X6, insn.X6, insn.X5))
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(9, prog)
	if _, err := k.Spawn(9); err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	if k.CPU.LiveTraces() == 0 {
		t.Fatal("hot loop never fused a trace; nothing to test")
	}
}

// TestSnapshotDropsWarmTraces: forking from a warm machine and resetting
// a warm machine both come up with zero live traces, and the reset
// machine still executes correctly afterwards.
func TestSnapshotDropsWarmTraces(t *testing.T) {
	k := bootFull(t, 77)
	postBoot := Take(k)

	warmTraces(t, k)

	warm := Take(k)
	fork, err := warm.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := fork.CPU.LiveTraces(); got != 0 {
		t.Fatalf("fork came up with %d live traces, want 0", got)
	}

	if err := postBoot.Reset(k); err != nil {
		t.Fatal(err)
	}
	if got := k.CPU.LiveTraces(); got != 0 {
		t.Fatalf("reset machine holds %d live traces, want 0", got)
	}

	// The reset machine re-runs the workload from scratch and fuses anew.
	warmTraces(t, k)
}
