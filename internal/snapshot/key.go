package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"camouflage/internal/codegen"
	"camouflage/internal/kernel"
)

// Key identifies a pool/store entry: machines built with the same Key
// are interchangeable. The Digest is the SHA-256 of the normalized
// option string, known before any boot — it names the *configuration*;
// the store separately content-addresses each persisted snapshot, and
// its index maps configuration digests to snapshot content digests.
type Key struct {
	// Digest is the hex SHA-256 of the normalized option string.
	Digest string
	// Options are the (normalized) build options behind the digest, so
	// store misses can boot and store saves can write manifests without
	// re-threading options through every call site.
	Options kernel.Options
}

// KeyFor derives the typed pool key for the given build options. Every
// field that shapes the post-boot state participates, normalized
// exactly as kernel.New normalizes it, so two option sets share a key
// exactly when their booted machines are interchangeable.
func KeyFor(opts kernel.Options) Key {
	cfg := opts.Config
	if cfg == nil {
		cfg = codegen.ConfigFull() // mirror kernel.New's default
	}
	if opts.FailureThreshold == 0 {
		opts.FailureThreshold = kernel.DefaultFailureThreshold
	}
	norm := opts
	norm.Config = cfg
	k := Key{Options: norm}
	sum := sha256.Sum256([]byte(k.Norm()))
	k.Digest = hex.EncodeToString(sum[:])
	return k
}

// Norm returns the human-readable normalized option string the digest
// is computed over (also the legacy pool-key format).
func (k Key) Norm() string {
	cfg := k.Options.Config
	if cfg == nil {
		cfg = codegen.ConfigFull()
	}
	thr := k.Options.FailureThreshold
	if thr == 0 {
		thr = kernel.DefaultFailureThreshold
	}
	return fmt.Sprintf("scheme=%d fwd=%t dfi=%t zmod=%t seed=%d thr=%d compat=%t v80=%t cpus=%d",
		cfg.Scheme, cfg.ForwardCFI, cfg.DFI, cfg.ZeroModifier,
		k.Options.Seed, thr, bool(k.Options.Compat), k.Options.V80, cfg.CPUs())
}

// KeyForOptions derives the legacy string pool key for the given
// options.
//
// Deprecated: use KeyFor, which carries the options alongside the
// digest so pools can boot and persist without a separate closure
// contract. KeyForOptions remains only so external callers keep
// compiling; it returns KeyFor(opts).Norm().
func KeyForOptions(opts kernel.Options) string { return KeyFor(opts).Norm() }

// ErrNotFound reports that a store holds no snapshot for the requested
// key or digest.
var ErrNotFound = errors.New("snapshot: not found in store")

// Store is the persistence surface the pool consults before booting. A
// nil Pool.Store keeps the pool purely in-memory — the store is an
// optional layer, not a requirement.
//
// Load returns the snapshot persisted for the key's configuration plus
// its content digest, or ErrNotFound. Implementations must verify
// integrity before returning (the pool serves forks from the result
// without further checks). Save persists the snapshot and returns its
// content digest; it must be safe for concurrent use.
type Store interface {
	Load(key Key) (*Snapshot, string, error)
	Save(key Key, s *Snapshot) (string, error)
}

// State exposes the captured kernel state for persistence. The state is
// immutable; the store serializes it without copying guest RAM.
func (s *Snapshot) State() *kernel.State { return s.st }

// FromState wraps an already-reconstructed state (a store load) as a
// Snapshot. Fork/Reset semantics are identical to a Take-captured one.
func FromState(st *kernel.State) *Snapshot { return &Snapshot{st: st} }
