package snapshot

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/internal/fault"
	"camouflage/internal/kernel"
	"camouflage/internal/obs"
)

// Machine is a pooled machine: a kernel plus the snapshot it descends
// from. Run it freely; hand it back with Release (which resets it) or
// abandon it (forks are independent — the pool does not track them).
type Machine struct {
	// K is the kernel, positioned exactly at the snapshot point.
	K *kernel.Kernel
	// Snap is the snapshot the machine descends from (for nested
	// snapshots or manual resets mid-use).
	Snap *Snapshot

	key  Key
	pool *Pool
	// fresh marks the just-booted origin machine: its first Acquire is
	// part of the boot, not a boot avoided, so it is not counted as a
	// reuse.
	fresh bool
}

// Key returns the pool key the machine was acquired under (zero for a
// released handle). The service daemon reports it per lease.
func (m *Machine) Key() Key { return m.key }

// Release resets the machine to its snapshot and parks it warm for the
// next Acquire of the same key. When the key's idle list is already
// full, the machine is dropped *without* paying the reset; a machine
// whose reset fails is dropped too. Drops are counted in Stats.
func (m *Machine) Release() {
	p := m.pool
	if p == nil {
		return
	}
	// Consume the handle: a second Release is a no-op instead of parking
	// the same kernel twice (Acquire re-arms the pool pointer when it
	// hands the machine out again).
	m.pool = nil
	p.release(m)
}

func (p *Pool) release(m *Machine) {
	e := p.entry(m.key)
	e.mu.Lock()
	full := len(e.idle) >= p.MaxIdlePerKey
	e.mu.Unlock()
	if full {
		p.dropped.Add(1)
		obs.Add(obs.CPoolDrop, 1)
		return
	}
	if err := m.Snap.Reset(m.K); err != nil {
		// Only a programming error reaches here (machine wired to a
		// snapshot of a different built image); surface it in Stats
		// rather than degrade the pool invisibly.
		p.dropped.Add(1)
		obs.Add(obs.CPoolDrop, 1)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.idle) >= p.MaxIdlePerKey {
		p.dropped.Add(1)
		obs.Add(obs.CPoolDrop, 1)
		return
	}
	e.idle = append(e.idle, m)
}

// Pool hands out warm pre-booted machines keyed by build options. The
// first Acquire of a key pays one boot and snapshots it; later Acquires
// reuse a reset idle machine or fork a new one in O(1). All methods are
// safe for concurrent use; concurrent Acquires of a cold key block until
// its one boot (or store load) completes.
//
// With Store set, a cold key consults the persistent snapshot store
// before booting: a verified hit arms the key in milliseconds with zero
// boots, and a miss boots once then persists the capture asynchronously
// so the *next* process starts warm. A nil Store keeps the pool purely
// in-memory; nothing else changes.
type Pool struct {
	mu      sync.Mutex
	entries map[string]*poolEntry // by Key.Digest

	// MaxIdlePerKey bounds parked machines per key (further Releases
	// drop the machine; its copy-on-write base stays shared).
	MaxIdlePerKey int

	// Store, when non-nil, backs cold keys with persisted snapshots.
	// Set it before first use; it must not change while the pool is
	// live.
	Store Store

	// BootAttempts bounds tries per arming (boot + retries); <=0 means
	// the default of 3. Retries back off exponentially from BootBackoff
	// (default 25ms) capped at BootBackoffMax (default 1s).
	BootAttempts   int
	BootBackoff    time.Duration
	BootBackoffMax time.Duration

	// BreakerThreshold consecutive failed armings open the key's
	// circuit breaker (<=0: default 5): Acquire fast-fails with
	// *BreakerOpenError instead of paying doomed boots, until
	// BreakerReset (default 30s) elapses and one half-open probe boot
	// is allowed through.
	BreakerThreshold int
	BreakerReset     time.Duration

	boots       atomic.Uint64
	reuses      atomic.Uint64
	dropped     atomic.Uint64
	evicted     atomic.Uint64
	loads       atomic.Uint64
	persists    atomic.Uint64
	bootRetries atomic.Uint64
	trips       atomic.Uint64
	fastFails   atomic.Uint64

	persistWG sync.WaitGroup
}

type poolEntry struct {
	key Key

	// armed flips once e.snap is published; the Acquire fast path is one
	// atomic load. armMu serializes arming attempts (store load, boot
	// retries, half-open breaker probes) without blocking readers of the
	// breaker state, which lives under mu.
	armed atomic.Bool
	armMu sync.Mutex
	snap  *Snapshot

	mu     sync.Mutex
	idle   []*Machine
	pinned bool
	// digest is the snapshot's store content digest: set synchronously
	// on a store hit, asynchronously once a post-boot persist lands.
	digest string
	// fails counts consecutive failed armings; at the breaker threshold
	// the key opens until openUntil.
	fails     int
	openUntil time.Time
}

// NewPool returns an empty in-memory pool.
func NewPool() *Pool {
	return &Pool{entries: make(map[string]*poolEntry), MaxIdlePerKey: 16}
}

// Shared is the process-wide pool used by the experiment suites, the
// benchmarks and core.Replicate.
var Shared = NewPool()

func (p *Pool) entry(key Key) *poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[key.Digest]
	if e == nil {
		e = &poolEntry{key: key}
		p.entries[key.Digest] = e
	}
	return e
}

// defaults for the boot retry loop and the breaker.
const (
	defaultBootAttempts     = 3
	defaultBootBackoff      = 25 * time.Millisecond
	defaultBootBackoffMax   = time.Second
	defaultBreakerThreshold = 5
	defaultBreakerReset     = 30 * time.Second
)

func (p *Pool) bootAttempts() int {
	if p.BootAttempts > 0 {
		return p.BootAttempts
	}
	return defaultBootAttempts
}

func (p *Pool) bootBackoff() (base, max time.Duration) {
	base, max = p.BootBackoff, p.BootBackoffMax
	if base <= 0 {
		base = defaultBootBackoff
	}
	if max <= 0 {
		max = defaultBootBackoffMax
	}
	return base, max
}

func (p *Pool) breakerThreshold() int {
	if p.BreakerThreshold > 0 {
		return p.BreakerThreshold
	}
	return defaultBreakerThreshold
}

func (p *Pool) breakerReset() time.Duration {
	if p.BreakerReset > 0 {
		return p.BreakerReset
	}
	return defaultBreakerReset
}

// BreakerOpenError fast-fails an Acquire whose key's circuit breaker is
// open: the last Failures armings in a row failed, and the next probe
// boot is RetryAfter away. The daemon maps it to 503 + Retry-After.
type BreakerOpenError struct {
	Key        Key
	Failures   int
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("snapshot: breaker open for key %.12s after %d consecutive boot failures (retry in %s)",
		e.Key.Digest, e.Failures, e.RetryAfter.Round(time.Millisecond))
}

// breakerCheck gates an arming attempt: nil means proceed (closed, or
// half-open probe), otherwise the typed fast-fail error.
func (p *Pool) breakerCheck(e *poolEntry, key Key) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fails < p.breakerThreshold() {
		return nil
	}
	//camo:nondet breaker timing is host-side resilience policy, never guest-visible state
	if wait := time.Until(e.openUntil); wait > 0 {
		p.fastFails.Add(1)
		obs.Add(obs.CBreakerFastFail, 1)
		return &BreakerOpenError{Key: key, Failures: e.fails, RetryAfter: wait}
	}
	// Past the reset timer: half-open. armMu already serializes, so
	// exactly one probe boot runs; its outcome re-opens or closes.
	return nil
}

// breakerFail records a failed arming, (re-)opening the breaker at the
// threshold.
func (p *Pool) breakerFail(e *poolEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fails++
	if e.fails >= p.breakerThreshold() {
		e.openUntil = time.Now().Add(p.breakerReset()) //camo:nondet breaker reset deadline is host-side resilience policy
		p.trips.Add(1)
		obs.Add(obs.CBreakerTrip, 1)
	}
}

// breakerOK closes the breaker after a successful arming.
func (p *Pool) breakerOK(e *poolEntry) {
	e.mu.Lock()
	e.fails = 0
	e.openUntil = time.Time{}
	e.mu.Unlock()
}

// ensureBooted arms the entry: a store hit serves the persisted
// snapshot with zero boots; otherwise the boot runs — retried with
// capped exponential backoff — the booted kernel becomes both the
// snapshot source and (since after Take it is indistinguishable from a
// fork) the first warm machine, and the capture is persisted in the
// background.
//
// Unlike the sync.Once arming this replaces, a failed arming never
// poisons the key: the next Acquire tries again, subject to the per-key
// circuit breaker — after BreakerThreshold consecutive failures the key
// fast-fails with *BreakerOpenError until BreakerReset allows a
// half-open probe.
func (p *Pool) ensureBooted(e *poolEntry, key Key, boot func() (*kernel.Kernel, error)) error {
	if e.armed.Load() {
		return nil
	}
	e.armMu.Lock()
	defer e.armMu.Unlock()
	if e.armed.Load() {
		return nil
	}
	if err := p.breakerCheck(e, key); err != nil {
		return err
	}
	if p.Store != nil {
		snap, digest, err := p.Store.Load(key)
		switch {
		case err == nil:
			p.loads.Add(1)
			e.mu.Lock()
			e.snap = snap
			e.digest = digest
			e.mu.Unlock()
			p.breakerOK(e)
			e.armed.Store(true)
			return nil
		case !errors.Is(err, ErrNotFound):
			// A corrupt, unreadable or quarantined persisted snapshot
			// must never take the key down: the store already counted
			// the failure; fall through to a fresh boot, whose persist
			// will overwrite the bad entry.
		}
	}
	k, err := p.bootWithRetry(boot)
	if err != nil {
		p.breakerFail(e)
		return err
	}
	p.boots.Add(1)
	obs.Add(obs.CPoolBoot, 1)
	// e.snap is published under e.mu as well as via e.armed: callers
	// read it after the armed.Load fast path (release/acquire ordered),
	// Stats reads it under e.mu only.
	e.mu.Lock()
	e.snap = Take(k)
	e.idle = append(e.idle, &Machine{K: k, Snap: e.snap, key: key, pool: p, fresh: true})
	e.mu.Unlock()
	if p.Store != nil {
		snap := e.snap
		p.persistWG.Add(1)
		//camo:nondet async persist races only against the host store; guest state is already captured
		go func() {
			defer p.persistWG.Done()
			digest, err := p.Store.Save(key, snap)
			if err != nil {
				return // store counted the failure; pool stays warm
			}
			p.persists.Add(1)
			e.mu.Lock()
			e.digest = digest
			e.mu.Unlock()
		}()
	}
	p.breakerOK(e)
	e.armed.Store(true)
	return nil
}

// bootWithRetry runs the boot closure up to BootAttempts times with
// capped exponential backoff between tries, returning the last error.
// Transient faults (an injected boot failure, a racing resource) heal
// here; deterministic ones (a §4.1 verify refusal) fail every attempt
// and feed the breaker.
func (p *Pool) bootWithRetry(boot func() (*kernel.Kernel, error)) (*kernel.Kernel, error) {
	backoff, max := p.bootBackoff()
	var lastErr error
	for attempt := 0; attempt < p.bootAttempts(); attempt++ {
		if attempt > 0 {
			p.bootRetries.Add(1)
			obs.Add(obs.CBootRetry, 1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > max {
				backoff = max
			}
		}
		k, err := boot()
		if err == nil {
			return k, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// WaitPersist blocks until every background snapshot persist issued so
// far has finished (graceful drain and test synchronization).
func (p *Pool) WaitPersist() { p.persistWG.Wait() }

// Acquire returns a machine positioned at the post-boot snapshot for
// key. The boot closure runs at most once per key, and not at all when
// the store already holds the key's snapshot.
func (p *Pool) Acquire(key Key, boot func() (*kernel.Kernel, error)) (*Machine, error) {
	fault.SleepAt(fault.PoolAcquire) // wedged/slow-guest injection
	e := p.entry(key)
	if err := p.ensureBooted(e, key, boot); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if n := len(e.idle); n > 0 {
		m := e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.mu.Unlock()
		if !m.fresh {
			p.reuses.Add(1)
			obs.Add(obs.CPoolHit, 1)
		}
		// Hand out a fresh handle around the parked kernel: the previous
		// owner's released handle stays permanently inert, so a stale
		// double-Release can never reset a machine a new owner is using.
		return &Machine{K: m.K, Snap: m.Snap, key: m.key, pool: p}, nil
	}
	e.mu.Unlock()
	k, err := e.snap.Fork()
	if err != nil {
		return nil, err
	}
	return &Machine{K: k, Snap: e.snap, key: key, pool: p}, nil
}

// SnapshotFor returns the post-boot snapshot for key, booting it on
// first use (for callers that fork directly, e.g. core.Replicate). No
// machine is acquired: a warm key answers from the cached snapshot.
func (p *Pool) SnapshotFor(key Key, boot func() (*kernel.Kernel, error)) (*Snapshot, error) {
	e := p.entry(key)
	if err := p.ensureBooted(e, key, boot); err != nil {
		return nil, err
	}
	return e.snap, nil
}

// Pin marks the snapshot with the given store content digest as pinned
// (or unpinned): EvictIdle leaves a pinned key's warm machines parked.
// It reports whether a resident entry matched. Pinning here is the
// in-memory half; the store persists its own pin set for GC.
func (p *Pool) Pin(digest string, pinned bool) bool {
	if digest == "" {
		return false
	}
	for _, e := range p.snapshotEntries() {
		e.mu.Lock()
		match := e.digest == digest
		if match {
			e.pinned = pinned
		}
		e.mu.Unlock()
		if match {
			return true
		}
	}
	return false
}

// BreakerInfo describes one key's circuit-breaker state for readiness
// checks and operator inspection.
type BreakerInfo struct {
	Key        Key
	Failures   int
	Open       bool
	RetryAfter time.Duration
}

// Breakers lists the breaker state of every key that has failed at
// least once (healthy keys are omitted). /readyz degrades when every
// known key is open.
func (p *Pool) Breakers() []BreakerInfo {
	var out []BreakerInfo
	thr := p.breakerThreshold()
	for _, e := range p.snapshotEntries() {
		e.mu.Lock()
		if e.fails > 0 {
			info := BreakerInfo{Key: e.key, Failures: e.fails}
			if e.fails >= thr {
				//camo:nondet reporting the live breaker deadline; diagnostics only
				if wait := time.Until(e.openUntil); wait > 0 {
					info.Open = true
					info.RetryAfter = wait
				}
			}
			out = append(out, info)
		}
		e.mu.Unlock()
	}
	return out
}

// EntryInfo describes one resident pool key for inspection APIs.
type EntryInfo struct {
	Key    Key
	Digest string // store content digest ("" until persisted)
	Idle   int
	Pinned bool
	Forks  uint64
	Resets uint64
}

// Entries lists the pool's armed keys (booted or store-loaded).
func (p *Pool) Entries() []EntryInfo {
	var out []EntryInfo
	for _, e := range p.snapshotEntries() {
		e.mu.Lock()
		if e.snap != nil {
			out = append(out, EntryInfo{
				Key:    e.key,
				Digest: e.digest,
				Idle:   len(e.idle),
				Pinned: e.pinned,
				Forks:  e.snap.Forks(),
				Resets: e.snap.Resets(),
			})
		}
		e.mu.Unlock()
	}
	return out
}

func (p *Pool) snapshotEntries() []*poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	entries := make([]*poolEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	return entries
}

// EvictIdle trims every unpinned key's idle list down to keep parked
// machines (keep <= 0 empties them), returning how many machines were
// let go. Pinned keys are exempt: an operator pin promises the key
// stays warm through idle reaping and graceful drain. Evictions are
// counted separately from Release-time drops so Stats can distinguish
// deliberate shrinking from parking pressure. The copy-on-write bases
// stay cached: the next Acquire of an evicted key forks, it does not
// re-boot.
func (p *Pool) EvictIdle(keep int) int {
	if keep < 0 {
		keep = 0
	}
	n := 0
	for _, e := range p.snapshotEntries() {
		e.mu.Lock()
		if !e.pinned {
			for len(e.idle) > keep {
				e.idle[len(e.idle)-1] = nil
				e.idle = e.idle[:len(e.idle)-1]
				n++
			}
		}
		e.mu.Unlock()
	}
	p.evicted.Add(uint64(n))
	if n > 0 {
		obs.Add(obs.CPoolEvict, uint64(n))
	}
	return n
}

// Stats is a point-in-time view of pool effectiveness: every reuse,
// fork or store load is a full build+verify+boot avoided. A nonzero
// Dropped under low parallelism signals misuse (reset failures); under
// high parallelism it just means Releases exceeded MaxIdlePerKey.
// Evicted counts idle machines deliberately let go through EvictIdle.
// StoreLoads counts keys armed from the persistent store (zero boots);
// StorePersists counts post-boot captures successfully written back.
type Stats struct {
	Keys          int    `json:"keys"`
	Idle          int    `json:"idle"`
	Boots         uint64 `json:"boots"`
	Forks         uint64 `json:"forks"`
	Reuses        uint64 `json:"reuses"`
	Dropped       uint64 `json:"dropped"`
	Evicted       uint64 `json:"evicted"`
	StoreLoads    uint64 `json:"store_loads"`
	StorePersists uint64 `json:"store_persists"`
	// Failure-path counters (DESIGN.md §13): boot attempts retried,
	// breaker trips, and Acquires fast-failed by an open breaker.
	BootRetries      uint64 `json:"boot_retries,omitempty"`
	BreakerTrips     uint64 `json:"breaker_trips,omitempty"`
	BreakerFastFails uint64 `json:"breaker_fast_fails,omitempty"`
}

// Stats returns current counters. Forks aggregates every fork taken
// from the pool's snapshots — through Acquire and through holders of a
// SnapshotFor result alike — so the boots-vs-machines-served ratio
// reflects all pool-derived machines.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Keys:             len(p.entries),
		Boots:            p.boots.Load(),
		Reuses:           p.reuses.Load(),
		Dropped:          p.dropped.Load(),
		Evicted:          p.evicted.Load(),
		StoreLoads:       p.loads.Load(),
		StorePersists:    p.persists.Load(),
		BootRetries:      p.bootRetries.Load(),
		BreakerTrips:     p.trips.Load(),
		BreakerFastFails: p.fastFails.Load(),
	}
	//camo:nondet stat sums commute; per-entry locks only guard concurrent mutation
	for _, e := range p.entries {
		e.mu.Lock()
		st.Idle += len(e.idle)
		if e.snap != nil {
			st.Forks += e.snap.Forks()
		}
		e.mu.Unlock()
	}
	return st
}
