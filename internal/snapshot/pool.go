package snapshot

import (
	"sync"
	"sync/atomic"

	"camouflage/internal/kernel"
	"camouflage/internal/obs"
)

// Machine is a pooled machine: a kernel plus the snapshot it descends
// from. Run it freely; hand it back with Release (which resets it) or
// abandon it (forks are independent — the pool does not track them).
type Machine struct {
	// K is the kernel, positioned exactly at the snapshot point.
	K *kernel.Kernel
	// Snap is the snapshot the machine descends from (for nested
	// snapshots or manual resets mid-use).
	Snap *Snapshot

	key  string
	pool *Pool
	// fresh marks the just-booted origin machine: its first Acquire is
	// part of the boot, not a boot avoided, so it is not counted as a
	// reuse.
	fresh bool
}

// Key returns the pool key the machine was acquired under (empty for a
// released handle). The service daemon reports it per lease.
func (m *Machine) Key() string { return m.key }

// Release resets the machine to its snapshot and parks it warm for the
// next Acquire of the same key. When the key's idle list is already
// full, the machine is dropped *without* paying the reset; a machine
// whose reset fails is dropped too. Drops are counted in Stats.
func (m *Machine) Release() {
	p := m.pool
	if p == nil {
		return
	}
	// Consume the handle: a second Release is a no-op instead of parking
	// the same kernel twice (Acquire re-arms the pool pointer when it
	// hands the machine out again).
	m.pool = nil
	p.release(m)
}

func (p *Pool) release(m *Machine) {
	e := p.entry(m.key)
	e.mu.Lock()
	full := len(e.idle) >= p.MaxIdlePerKey
	e.mu.Unlock()
	if full {
		p.dropped.Add(1)
		obs.Add(obs.CPoolDrop, 1)
		return
	}
	if err := m.Snap.Reset(m.K); err != nil {
		// Only a programming error reaches here (machine wired to a
		// snapshot of a different built image); surface it in Stats
		// rather than degrade the pool invisibly.
		p.dropped.Add(1)
		obs.Add(obs.CPoolDrop, 1)
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.idle) >= p.MaxIdlePerKey {
		p.dropped.Add(1)
		obs.Add(obs.CPoolDrop, 1)
		return
	}
	e.idle = append(e.idle, m)
}

// Pool hands out warm pre-booted machines keyed by build options. The
// first Acquire of a key pays one boot and snapshots it; later Acquires
// reuse a reset idle machine or fork a new one in O(1). All methods are
// safe for concurrent use; concurrent Acquires of a cold key block until
// its one boot completes.
type Pool struct {
	mu      sync.Mutex
	entries map[string]*poolEntry

	// MaxIdlePerKey bounds parked machines per key (further Releases
	// drop the machine; its copy-on-write base stays shared).
	MaxIdlePerKey int

	boots   atomic.Uint64
	reuses  atomic.Uint64
	dropped atomic.Uint64
	evicted atomic.Uint64
}

type poolEntry struct {
	once sync.Once
	snap *Snapshot
	err  error

	mu   sync.Mutex
	idle []*Machine
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{entries: make(map[string]*poolEntry), MaxIdlePerKey: 16}
}

// Shared is the process-wide pool used by the experiment suites, the
// benchmarks and core.Replicate.
var Shared = NewPool()

func (p *Pool) entry(key string) *poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entries[key]
	if e == nil {
		e = &poolEntry{}
		p.entries[key] = e
	}
	return e
}

// ensureBooted runs the entry's one-time boot: the booted kernel
// becomes both the snapshot source and — since after Take it is
// indistinguishable from a fork — the first warm machine.
func (p *Pool) ensureBooted(e *poolEntry, key string, boot func() (*kernel.Kernel, error)) error {
	e.once.Do(func() {
		k, err := boot()
		if err != nil {
			e.err = err
			return
		}
		p.boots.Add(1)
		obs.Add(obs.CPoolBoot, 1)
		// e.snap is published under e.mu as well as via once.Do: callers
		// read it after once.Do, Stats reads it under e.mu only.
		e.mu.Lock()
		e.snap = Take(k)
		e.idle = append(e.idle, &Machine{K: k, Snap: e.snap, key: key, pool: p, fresh: true})
		e.mu.Unlock()
	})
	return e.err
}

// Acquire returns a machine positioned at the post-boot snapshot for
// key. The boot closure runs at most once per key.
func (p *Pool) Acquire(key string, boot func() (*kernel.Kernel, error)) (*Machine, error) {
	e := p.entry(key)
	if err := p.ensureBooted(e, key, boot); err != nil {
		return nil, err
	}
	e.mu.Lock()
	if n := len(e.idle); n > 0 {
		m := e.idle[n-1]
		e.idle = e.idle[:n-1]
		e.mu.Unlock()
		if !m.fresh {
			p.reuses.Add(1)
			obs.Add(obs.CPoolHit, 1)
		}
		// Hand out a fresh handle around the parked kernel: the previous
		// owner's released handle stays permanently inert, so a stale
		// double-Release can never reset a machine a new owner is using.
		return &Machine{K: m.K, Snap: m.Snap, key: m.key, pool: p}, nil
	}
	e.mu.Unlock()
	k, err := e.snap.Fork()
	if err != nil {
		return nil, err
	}
	return &Machine{K: k, Snap: e.snap, key: key, pool: p}, nil
}

// SnapshotFor returns the post-boot snapshot for key, booting it on
// first use (for callers that fork directly, e.g. core.Replicate). No
// machine is acquired: a warm key answers from the cached snapshot.
func (p *Pool) SnapshotFor(key string, boot func() (*kernel.Kernel, error)) (*Snapshot, error) {
	e := p.entry(key)
	if err := p.ensureBooted(e, key, boot); err != nil {
		return nil, err
	}
	return e.snap, nil
}

// EvictIdle trims every key's idle list down to keep parked machines
// (keep <= 0 empties the pool), returning how many machines were let
// go. Evictions are counted separately from Release-time drops so
// Stats can distinguish deliberate shrinking (daemon idle reaper,
// graceful drain) from parking pressure. The copy-on-write bases stay
// cached: the next Acquire of an evicted key forks, it does not
// re-boot.
func (p *Pool) EvictIdle(keep int) int {
	if keep < 0 {
		keep = 0
	}
	p.mu.Lock()
	entries := make([]*poolEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, e)
	}
	p.mu.Unlock()
	n := 0
	for _, e := range entries {
		e.mu.Lock()
		for len(e.idle) > keep {
			e.idle[len(e.idle)-1] = nil
			e.idle = e.idle[:len(e.idle)-1]
			n++
		}
		e.mu.Unlock()
	}
	p.evicted.Add(uint64(n))
	if n > 0 {
		obs.Add(obs.CPoolEvict, uint64(n))
	}
	return n
}

// Stats is a point-in-time view of pool effectiveness: every reuse or
// fork is a full build+verify+boot avoided. A nonzero Dropped under low
// parallelism signals misuse (reset failures); under high parallelism
// it just means Releases exceeded MaxIdlePerKey. Evicted counts idle
// machines deliberately let go through EvictIdle.
type Stats struct {
	Keys    int    `json:"keys"`
	Idle    int    `json:"idle"`
	Boots   uint64 `json:"boots"`
	Forks   uint64 `json:"forks"`
	Reuses  uint64 `json:"reuses"`
	Dropped uint64 `json:"dropped"`
	Evicted uint64 `json:"evicted"`
}

// Stats returns current counters. Forks aggregates every fork taken
// from the pool's snapshots — through Acquire and through holders of a
// SnapshotFor result alike — so the boots-vs-machines-served ratio
// reflects all pool-derived machines.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Keys:    len(p.entries),
		Boots:   p.boots.Load(),
		Reuses:  p.reuses.Load(),
		Dropped: p.dropped.Load(),
		Evicted: p.evicted.Load(),
	}
	for _, e := range p.entries {
		e.mu.Lock()
		st.Idle += len(e.idle)
		if e.snap != nil {
			st.Forks += e.snap.Forks()
		}
		e.mu.Unlock()
	}
	return st
}
