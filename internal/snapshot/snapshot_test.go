package snapshot

import (
	"sync"
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
)

// bootFull builds and boots a fully protected kernel.
func bootFull(t *testing.T, seed uint64) *kernel.Kernel {
	t.Helper()
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigFull(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return k
}

// runFixture runs a syscall-heavy program to completion and returns the
// machine's observable fingerprint.
type fingerprint struct {
	Cycles, Retired uint64
	PACFailures     int
	Oops            int
	Halted          bool
	UART            string
	Heap            uint64
}

func runFixture(t *testing.T, k *kernel.Kernel) fingerprint {
	t.Helper()
	prog, err := kernel.BuildProgram("fixture", func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.CounterLoop("loop", insn.X21, 24, func() {
			u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
			u.MovImm(insn.X1, kernel.UserDataBase)
			u.MovImm(insn.X2, 64)
			u.SyscallReg(kernel.SysRead)
			u.SyscallReg(kernel.SysGetppid)
		})
		u.SyscallReg(kernel.SysClose)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	k.Run(10_000_000)
	return fingerprint{
		Cycles:      k.CPU.Cycles,
		Retired:     k.CPU.Retired,
		PACFailures: k.PACFailures,
		Oops:        len(k.Oops),
		Halted:      k.Halted,
		UART:        k.UART.Output(),
		Heap:        k.AllocScratch(0),
	}
}

// TestForkMatchesFreshBoot: a machine forked from a post-boot snapshot
// is observably identical to a freshly built and booted one — same
// cycle/instruction counters, same heap layout, same fault log.
func TestForkMatchesFreshBoot(t *testing.T) {
	origin := bootFull(t, 42)
	snap := Take(origin)
	fork, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	fresh := bootFull(t, 42)

	got := runFixture(t, fork)
	want := runFixture(t, fresh)
	if got != want {
		t.Fatalf("forked run diverges from fresh boot:\n fork:  %+v\n fresh: %+v", got, want)
	}
}

// TestTakeDoesNotPerturbOrigin: the origin machine keeps running after
// being snapshotted, and behaves exactly as an unsnapshotted machine.
func TestTakeDoesNotPerturbOrigin(t *testing.T) {
	origin := bootFull(t, 43)
	Take(origin)
	want := runFixture(t, bootFull(t, 43))
	got := runFixture(t, origin)
	if got != want {
		t.Fatalf("origin perturbed by Take:\n origin: %+v\n fresh:  %+v", got, want)
	}
}

// TestResetAfterDirtyRun: resetting a dirtied fork reproduces a pristine
// fork exactly, and reclaims the copy-on-write overlay.
func TestResetAfterDirtyRun(t *testing.T) {
	origin := bootFull(t, 44)
	snap := Take(origin)
	fork, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	want := runFixture(t, fork) // dirty it
	if fork.CPU.Bus.RAM.DirtyPages() == 0 {
		t.Fatal("fixture run dirtied no pages")
	}
	if err := snap.Reset(fork); err != nil {
		t.Fatal(err)
	}
	if n := fork.CPU.Bus.RAM.DirtyPages(); n != 0 {
		t.Fatalf("reset left %d dirty pages", n)
	}
	got := runFixture(t, fork)
	if got != want {
		t.Fatalf("reset run diverges from pristine fork:\n reset:    %+v\n pristine: %+v", got, want)
	}
}

// TestMidExecutionSnapshot: capture a machine mid-run (program spawned,
// partially executed) and check a fork resumes to the same end state as
// the origin.
func TestMidExecutionSnapshot(t *testing.T) {
	mk := func() *kernel.Kernel {
		k := bootFull(t, 45)
		prog, err := kernel.BuildProgram("mid", func(u *kernel.UserASM) {
			u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
			u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
			u.CounterLoop("loop", insn.X21, 40, func() {
				u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
				u.MovImm(insn.X1, kernel.UserDataBase)
				u.MovImm(insn.X2, 8)
				u.SyscallReg(kernel.SysRead)
			})
			u.Exit(0)
		})
		if err != nil {
			t.Fatal(err)
		}
		k.RegisterProgram(1, prog)
		if _, err := k.Spawn(1); err != nil {
			t.Fatal(err)
		}
		k.Run(50_000) // stop mid-loop
		return k
	}

	origin := mk()
	snap := Take(origin)
	fork, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	finish := func(k *kernel.Kernel) (uint64, uint64, bool) {
		k.Run(10_000_000)
		return k.CPU.Cycles, k.CPU.Retired, k.Halted
	}
	oc, or, oh := finish(origin)
	fc, fr, fh := finish(fork)
	if oc != fc || or != fr || oh != fh {
		t.Fatalf("mid-execution fork diverges: origin (%d, %d, %v) fork (%d, %d, %v)",
			oc, or, oh, fc, fr, fh)
	}
}

// TestConcurrentForks: many goroutines forking and running from one
// snapshot produce identical results (exercised under -race).
func TestConcurrentForks(t *testing.T) {
	origin := bootFull(t, 46)
	snap := Take(origin)
	const n = 8
	prints := make([]fingerprint, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fork, err := snap.Fork()
			if err != nil {
				t.Error(err)
				return
			}
			prints[i] = runFixture(t, fork)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if prints[i] != prints[0] {
			t.Fatalf("fork %d diverges: %+v vs %+v", i, prints[i], prints[0])
		}
	}
}

// TestPoolBootsOncePerKey: repeated Acquire/Release of one key pays a
// single boot; machines from reuse and fork paths behave identically.
func TestPoolBootsOncePerKey(t *testing.T) {
	pool := NewPool()
	opts := kernel.Options{Config: codegen.ConfigBackward(), Seed: 47}
	key := KeyFor(opts)

	m1, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	want := runFixture(t, m1.K)
	m1.Release()

	m2, err := pool.Acquire(key, BootOptions(opts))
	if err != nil {
		t.Fatal(err)
	}
	got := runFixture(t, m2.K)
	m2.Release()

	if got != want {
		t.Fatalf("reused machine diverges: %+v vs %+v", got, want)
	}
	m2.Release() // double release: must be a no-op, not a second park
	st := pool.Stats()
	if st.Boots != 1 {
		t.Fatalf("boots = %d, want 1", st.Boots)
	}
	if st.Reuses < 1 {
		t.Fatalf("reuses = %d, want >= 1", st.Reuses)
	}
	if st.Idle != 1 {
		t.Fatalf("idle = %d after double release, want 1", st.Idle)
	}
}

// TestPoolConcurrentAcquire: a cold key acquired from many goroutines
// still boots exactly once, and every machine is identical.
func TestPoolConcurrentAcquire(t *testing.T) {
	pool := NewPool()
	opts := kernel.Options{Config: codegen.ConfigFull(), Seed: 48}
	key := KeyFor(opts)

	const n = 6
	prints := make([]fingerprint, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := pool.Acquire(key, BootOptions(opts))
			if err != nil {
				t.Error(err)
				return
			}
			prints[i] = runFixture(t, m.K)
			m.Release()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if prints[i] != prints[0] {
			t.Fatalf("pooled machine %d diverges", i)
		}
	}
	if st := pool.Stats(); st.Boots != 1 {
		t.Fatalf("boots = %d, want 1", st.Boots)
	}
}

// TestKeyForOptionsDistinguishesLevels: option sets that build different
// machines never share a pool key.
func TestKeyForOptionsDistinguishesLevels(t *testing.T) {
	keys := map[string]string{}
	for name, opts := range map[string]kernel.Options{
		"none":     {Config: codegen.ConfigNone(), Seed: 1},
		"backward": {Config: codegen.ConfigBackward(), Seed: 1},
		"full":     {Config: codegen.ConfigFull(), Seed: 1},
		"seed2":    {Config: codegen.ConfigFull(), Seed: 2},
		"thr":      {Config: codegen.ConfigFull(), Seed: 1, FailureThreshold: 64},
	} {
		k := KeyForOptions(opts)
		if prev, dup := keys[k]; dup {
			t.Fatalf("options %q and %q collide on key %q", name, prev, k)
		}
		keys[k] = name
	}
}

// TestWarmFastPathAcrossCaptureAndReset pins the snapshot half of the
// host-pointer invalidation contract. The origin runs a full fixture
// first, so its data-side TLB is warm with host pointers into the
// pre-capture overlay. Take must invalidate them (mem.Freeze bumps the
// memory generation): if any post-capture store leaked through a stale
// pointer into the now-shared frozen base, forks taken before and after
// the origin's continued run would diverge. Reset of a dirtied fork
// must likewise kill the fork's warm pointers, or its re-run would see
// pages from the discarded overlay.
func TestWarmFastPathAcrossCaptureAndReset(t *testing.T) {
	origin := bootFull(t, 47)
	runFixture(t, origin) // warm the origin's fast path

	secondRun := func(k *kernel.Kernel) fingerprint {
		t.Helper()
		prog, err := kernel.BuildProgram("second", func(u *kernel.UserASM) {
			u.CounterLoop("loop", insn.X21, 16, func() {
				u.SyscallReg(kernel.SysGetppid)
			})
			u.Exit(0)
		})
		if err != nil {
			t.Fatal(err)
		}
		k.RegisterProgram(2, prog)
		if _, err := k.Spawn(2); err != nil {
			t.Fatal(err)
		}
		k.Run(10_000_000)
		return fingerprint{
			Cycles:  k.CPU.Cycles,
			Retired: k.CPU.Retired,
			UART:    k.UART.Output(),
			Heap:    k.AllocScratch(0),
		}
	}

	snap := Take(origin)
	before, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	wantFP := secondRun(before)

	// The origin keeps running with pointers it warmed before capture;
	// its stores must all land in its private overlay.
	originFP := secondRun(origin)
	after, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := secondRun(after); got != wantFP {
		t.Fatalf("origin's post-capture run corrupted the snapshot:\n pre-fork %+v\npost-fork %+v", wantFP, got)
	}
	if originFP != wantFP {
		t.Fatalf("origin diverged from its own fork after capture:\norigin %+v\n  fork %+v", originFP, wantFP)
	}

	// Reset a dirty fork (its fast path is warm from the run above) and
	// re-run: identical to the first run or stale pointers survived.
	if err := snap.Reset(before); err != nil {
		t.Fatal(err)
	}
	if got := secondRun(before); got != wantFP {
		t.Fatalf("reset fork re-run diverged:\nwant %+v\n got %+v", wantFP, got)
	}
}

// TestSMPWarmPointerVsSiblingReset: host pointers warmed before a
// capture must not survive into (or be corrupted by) sibling-fork
// activity. The origin machine runs a workload (warming its host-pointer
// TLB into the pages that later become the shared copy-on-write base),
// is captured, and two forks proceed concurrently: fork A runs the
// fixture while fork B is repeatedly reset and re-run. Every observable
// fingerprint must match the sequential control — a warm pointer leaking
// through the shared frozen base from one machine into another (or a
// Reset tearing pages out from under a sibling) would diverge the
// fingerprints, and -race would flag any unsynchronized generation
// plumbing.
func TestSMPWarmPointerVsSiblingReset(t *testing.T) {
	origin := bootFull(t, 77)
	_ = runFixture(t, origin) // warm the origin's host pointers pre-capture
	snap := Take(origin)

	// Sequential control: what one pristine fork observes.
	control, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	want := runFixture(t, control)

	a, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var gotA fingerprint
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotA = runFixture(t, a)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			fp := runFixture(t, b)
			if fp != want {
				t.Errorf("sibling run %d diverged: %+v != %+v", i, fp, want)
				return
			}
			if err := snap.Reset(b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if gotA != want {
		t.Fatalf("fork A diverged under concurrent sibling resets: %+v != %+v", gotA, want)
	}
	// The origin, whose pre-capture warm pointers referenced pages that
	// are now the shared base, must re-arm against its own overlay: its
	// rerun lands exactly where the pristine forks did (forking is
	// exact), and its post-capture writes must never have leaked through
	// the frozen base into the forks above.
	if fp := runFixture(t, origin); fp != want {
		t.Fatalf("origin rerun diverged from pristine forks: %+v != %+v", fp, want)
	}
}
