package attack

import (
	"fmt"

	"camouflage/internal/codegen"
	"camouflage/internal/kernel"
	"camouflage/internal/pac"
)

// CredSwap is the §4.5 privilege-escalation scenario the paper flags when
// noting that "the same approach for protecting pointers could be used to
// protect other sensitive pointers, such as the f_cred pointer to file
// credentials": the attacker points an open file's f_cred at a forged
// credentials object (uid 0). The next permission check (fstat's
// authenticated f_cred dereference) either reads the forged root
// credentials (hijack) or faults on the unauthenticated pointer.
func CredSwap(cfg *codegen.Config, level string) (Report, error) {
	k, err := bootWith(cfg, 27)
	if err != nil {
		return Report{}, err
	}
	prog, err := kernel.BuildProgram("credvictim", credVictimProgram())
	if err != nil {
		return Report{}, err
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		return Report{}, err
	}
	k.Run(500_000)
	fileVA := k.FileAddrByFD(0)
	if fileVA == 0 {
		return Report{}, fmt.Errorf("credswap: fd not open")
	}

	// Forge root credentials in writable kernel memory and swap f_cred.
	forgedCred := k.AllocScratch(64)
	ram := k.CPU.Bus.RAM
	ram.Write64(kernel.KVAToPA(forgedCred), 0) // uid 0: root
	ram.Write64(kernel.KVAToPA(fileVA)+kernel.FileCred, forgedCred)
	k.CPU.InvalidateDecode()

	k.Run(3_000_000)
	if k.PACFailures > 0 {
		return Report{Attack: "f_cred swap (priv-esc)", Level: level, Outcome: OutcomeDetected,
			PACFailures: k.PACFailures, Detail: "forged credentials rejected"}, nil
	}
	// Without DFI the swap is silent: the victim keeps running and fstat
	// keeps succeeding against the forged (root) credentials.
	if k.Task(1) != nil {
		lastRet := int64(ram.Read64(kernel.UVAToPA(1, kernel.UserDataBase)))
		return Report{Attack: "f_cred swap (priv-esc)", Level: level, Outcome: OutcomeHijacked,
			Detail: fmt.Sprintf("permission checks now consult forged root creds (fstat=%d)", lastRet)}, nil
	}
	return Report{Attack: "f_cred swap (priv-esc)", Level: level, Outcome: OutcomeInconclusive}, nil
}

// OracleReport is the §6.2.3 verification-oracle check.
type OracleReport struct {
	// UserAuthSucceeded would mean user space can verify kernel PACs.
	UserAuthSucceeded bool
	// KernelAuthSucceeded is the control: the kernel key does verify.
	KernelAuthSucceeded bool
}

// VerificationOracle demonstrates §6.2.3: "The user space process uses a
// randomly assigned key, and thus cannot verify kernel pointers." It
// extracts a kernel-signed f_ops value from memory and attempts to
// authenticate it under the victim task's user keys.
func VerificationOracle(cfg *codegen.Config, seed uint64) (OracleReport, error) {
	k, err := bootWith(cfg, seed)
	if err != nil {
		return OracleReport{}, err
	}
	prog, err := kernel.BuildProgram("orcl", func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
		u.A.Label("spin")
		u.SyscallReg(kernel.SysSchedYield)
		u.A.B("spin")
	})
	if err != nil {
		return OracleReport{}, err
	}
	k.RegisterProgram(1, prog)
	task, err := k.Spawn(1)
	if err != nil {
		return OracleReport{}, err
	}
	k.Run(500_000)
	fileVA := k.FileAddrByFD(0)
	if fileVA == 0 {
		return OracleReport{}, fmt.Errorf("oracle: fd not open")
	}
	signed := k.CPU.Bus.RAM.Read64(kernel.KVAToPA(fileVA) + kernel.FileOps)
	mod := pac.ObjectModifier(fileVA, pac.TypeConst("file", "f_ops"))

	// User-side attempt: a signer loaded with the task's own keys (which
	// is what the DB key registers hold whenever the task runs at EL0).
	userSigner := pac.NewSigner(pac.DefaultConfig)
	userSigner.SetKeys(task.Keys)
	_, userOK := userSigner.Auth(signed, mod, pac.KeyDB)

	// Control: the kernel key bank verifies the same value.
	kernelSigner := pac.NewSigner(pac.DefaultConfig)
	kernelSigner.SetKeys(k.KernelKeysForTest())
	_, kernelOK := kernelSigner.Auth(signed, mod, pac.KeyDB)

	return OracleReport{UserAuthSucceeded: userOK, KernelAuthSucceeded: kernelOK}, nil
}
