package attack

import (
	"strings"
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/pac"
)

// TestCampaignMatrix: the differential campaign reproduces the §6.2
// verdicts per protection level — full protection defeats every mutated
// attack, the unprotected kernel is bypassed by canonical forgeries, and
// the zero-modifier ablation is bypassed by replay.
func TestCampaignMatrix(t *testing.T) {
	rep, err := RunCampaign(CampaignOptions{
		Mutations: 12,
		Seed:      7,
		Parallel:  true,
		Levels:    []string{"none", "full", "full/zero-mod"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]CampaignCell{}
	bypassedAtNone := 0
	for _, c := range rep.Cells {
		cells[c.Attack+"/"+c.Level] = c
		if c.Runs != 12 {
			t.Errorf("%s/%s: %d runs, want 12", c.Attack, c.Level, c.Runs)
		}
		if c.Level == "none" && !c.Defeated() {
			bypassedAtNone++
		}
		if c.Level == "full" && !c.Defeated() {
			t.Errorf("%s bypassed full protection: %+v", c.Attack, c)
		}
	}
	if bypassedAtNone == 0 {
		t.Error("no attack bypassed the unprotected kernel")
	}
	replayZero, ok := cells["f_ops replay (reuse)/full/zero-mod"]
	if !ok || replayZero.Defeated() {
		t.Errorf("replay should bypass the zero-modifier ablation: %+v", replayZero)
	}
	if rep.Forks < uint64(len(rep.Cells)*12) {
		t.Errorf("forks = %d, want >= %d", rep.Forks, len(rep.Cells)*12)
	}

	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "DEFEATED") || !strings.Contains(sb.String(), "bypassed") {
		t.Errorf("render missing verdicts:\n%s", sb.String())
	}
}

// TestCampaignDeterministic: same options, same matrix — strikes are
// seeded per mutation and forks are exact, so parallel scheduling cannot
// leak into the results.
func TestCampaignDeterministic(t *testing.T) {
	opts := CampaignOptions{Mutations: 6, Seed: 9, Levels: []string{"full"}}
	a, err := RunCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = true
	b, err := RunCampaign(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell count differs: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Errorf("cell %d differs:\n seq: %+v\n par: %+v", i, a.Cells[i], b.Cells[i])
		}
	}
}

// TestROPMatrix pins §6.2.1 for the backward edge: the frame-record smash
// hijacks the unprotected kernel and is detected by every PAuth build.
func TestROPMatrix(t *testing.T) {
	r, err := ROPFrameRecord(codegen.ConfigNone(), "none")
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != OutcomeHijacked {
		t.Errorf("unprotected ROP: %s (%s), want HIJACKED", r.Outcome, r.Detail)
	}
	for _, lv := range []struct {
		name string
		cfg  *codegen.Config
	}{
		{"backward-edge", codegen.ConfigBackward()},
		{"full", codegen.ConfigFull()},
	} {
		r, err := ROPFrameRecord(lv.cfg, lv.name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome != OutcomeDetected {
			t.Errorf("%s ROP: %s (%s), want detected", lv.name, r.Outcome, r.Detail)
		}
		if r.PACFailures == 0 {
			t.Errorf("%s ROP: no PAC failures recorded", lv.name)
		}
	}
}

// TestFOpsSwapMatrix pins §4.5: without DFI the ops-table pointer swap
// hijacks control flow; with DFI it is detected. This is the paper's
// justification for protecting *data* pointers to operations tables.
func TestFOpsSwapMatrix(t *testing.T) {
	for _, c := range []struct {
		name string
		cfg  *codegen.Config
		want Outcome
	}{
		{"none", codegen.ConfigNone(), OutcomeHijacked},
		{"backward-edge", codegen.ConfigBackward(), OutcomeHijacked},
		{"full", codegen.ConfigFull(), OutcomeDetected},
	} {
		r, err := FOpsSwap(c.cfg, c.name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome != c.want {
			t.Errorf("%s f_ops swap: %s (%s), want %s", c.name, r.Outcome, r.Detail, c.want)
		}
	}
}

// TestFOpsReplayMatrix pins §6.2.1/§7: the cross-object transplant of a
// correctly signed pointer succeeds under the Apple-style zero modifier
// but fails under the §4.3 address-bound modifier.
func TestFOpsReplayMatrix(t *testing.T) {
	full, err := FOpsReplay(codegen.ConfigFull(), "full")
	if err != nil {
		t.Fatal(err)
	}
	if full.Outcome != OutcomeDetected {
		t.Errorf("full: replay %s (%s), want detected", full.Outcome, full.Detail)
	}
	zc := codegen.ConfigFull()
	zc.ZeroModifier = true
	zero, err := FOpsReplay(zc, "full/zero-mod")
	if err != nil {
		t.Fatal(err)
	}
	if zero.Outcome != OutcomeHijacked {
		t.Errorf("zero-modifier: replay %s (%s), want HIJACKED (Apple-scheme weakness, §7)",
			zero.Outcome, zero.Detail)
	}
}

// TestBruteForceHaltsAtThreshold pins §5.4: guessing the 15-bit PAC is
// cut off by the failure threshold long before the search space is
// covered.
func TestBruteForceHaltsAtThreshold(t *testing.T) {
	rep, err := BruteForcePAC(codegen.ConfigFull(), "full", 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded {
		t.Fatalf("brute force guessed a valid PAC in %d attempts (p≈2^-15 each)", rep.Attempts)
	}
	if !rep.Halted {
		t.Fatal("system did not halt at the failure threshold")
	}
	if rep.Attempts > rep.Threshold+1 {
		t.Fatalf("attacker got %d attempts against threshold %d", rep.Attempts, rep.Threshold)
	}
}

// TestMatrixComplete runs the full §6.2 table and checks the headline
// property: the full build detects everything; the unprotected build is
// hijacked by everything.
func TestMatrixComplete(t *testing.T) {
	reports, err := Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 4*4 {
		t.Fatalf("matrix has %d cells, want 16", len(reports))
	}
	for _, r := range reports {
		switch {
		case r.Level == "full" && r.Outcome != OutcomeDetected:
			t.Errorf("full vs %s: %s (%s)", r.Attack, r.Outcome, r.Detail)
		case r.Level == "none" && r.Outcome != OutcomeHijacked:
			t.Errorf("none vs %s: %s (%s)", r.Attack, r.Outcome, r.Detail)
		}
	}
}

// TestReplayCensus pins the E10 ablation: collision counts order as
// none ≫ Clang-SP > PARTS > Camouflage (= 0).
func TestReplayCensus(t *testing.T) {
	const threads, depths, funcs = 8, 16, 8
	clang := ReplayCensus(pac.ModifierClangSP, threads, depths, funcs)
	parts := ReplayCensus(pac.ModifierPARTS, threads, depths, funcs)
	camo := ReplayCensus(pac.ModifierCamouflage, threads, depths, funcs)

	if camo.CollidingPairs != 0 {
		t.Errorf("Camouflage census found %d colliding pairs, want 0", camo.CollidingPairs)
	}
	if parts.CollidingPairs == 0 {
		t.Error("PARTS census found no collisions; 16 KiB-strided stacks must alias at 64 KiB (§7)")
	}
	if clang.CollidingPairs <= parts.CollidingPairs {
		t.Errorf("Clang-SP (%d) should collide more than PARTS (%d)",
			clang.CollidingPairs, parts.CollidingPairs)
	}
	if clang.Contexts != threads*depths*funcs {
		t.Errorf("census enumerated %d contexts, want %d", clang.Contexts, threads*depths*funcs)
	}
}

// TestClangSPCollidesAcrossFunctions pins the specific §4.2 weakness: at
// one SP, every return site shares the Clang-SP modifier.
func TestClangSPCollidesAcrossFunctions(t *testing.T) {
	r := ReplayCensus(pac.ModifierClangSP, 1, 1, 16)
	// 16 functions, one SP: all 16 modifiers equal → C(16,2) pairs.
	if want := 16 * 15 / 2; r.CollidingPairs != want {
		t.Fatalf("collisions = %d, want %d", r.CollidingPairs, want)
	}
	c := ReplayCensus(pac.ModifierCamouflage, 1, 1, 16)
	if c.CollidingPairs != 0 {
		t.Fatalf("Camouflage collides across functions: %d", c.CollidingPairs)
	}
}

// TestPARTSCollidesAt64K pins §7's PARTS analysis in the census setting.
func TestPARTSCollidesAt64K(t *testing.T) {
	// Threads 0 and 4 have stacks exactly 64 KiB apart (16 KiB stride):
	// identical low 16 SP bits → identical PARTS modifiers.
	r := ReplayCensus(pac.ModifierPARTS, 5, 1, 1)
	if r.CollidingPairs == 0 {
		t.Fatal("no PARTS collision among 5 threads at 16 KiB stride")
	}
	c := ReplayCensus(pac.ModifierCamouflage, 5, 1, 1)
	if c.CollidingPairs != 0 {
		t.Fatalf("Camouflage collided: %d", c.CollidingPairs)
	}
}

// TestCredSwapMatrix pins the §4.5 f_cred scenario: without DFI the
// forged credentials are consulted silently; with DFI the swap faults.
func TestCredSwapMatrix(t *testing.T) {
	none, err := CredSwap(codegen.ConfigNone(), "none")
	if err != nil {
		t.Fatal(err)
	}
	if none.Outcome != OutcomeHijacked {
		t.Errorf("none: cred swap %s (%s), want HIJACKED", none.Outcome, none.Detail)
	}
	full, err := CredSwap(codegen.ConfigFull(), "full")
	if err != nil {
		t.Fatal(err)
	}
	if full.Outcome != OutcomeDetected {
		t.Errorf("full: cred swap %s (%s), want detected", full.Outcome, full.Detail)
	}
}

// TestVerificationOracle pins §6.2.3: user keys cannot verify
// kernel-signed pointers; kernel keys can.
func TestVerificationOracle(t *testing.T) {
	for seed := uint64(40); seed < 44; seed++ {
		r, err := VerificationOracle(codegen.ConfigFull(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if !r.KernelAuthSucceeded {
			t.Fatalf("seed %d: kernel keys failed to verify their own PAC", seed)
		}
		if r.UserAuthSucceeded {
			t.Fatalf("seed %d: user keys verified a kernel PAC — oracle exists", seed)
		}
	}
}
