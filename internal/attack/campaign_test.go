package attack

import (
	"bytes"
	"testing"
)

// TestSMPCampaignDeterminism pins the acceptance criterion that a
// 2-vCPU campaign is byte-identical across repeated runs, and that the
// cross-core replay cell joins the matrix at 2 vCPUs with the expected
// verdict under full protection.
func TestSMPCampaignDeterminism(t *testing.T) {
	run := func() (*CampaignReport, string) {
		rep, err := RunCampaign(CampaignOptions{
			Mutations: 3, Seed: 5, Parallel: true,
			Levels: []string{"full"}, CPUs: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Render(&buf)
		return rep, buf.String()
	}
	rep1, out1 := run()
	_, out2 := run()
	if out1 != out2 {
		t.Fatalf("2-vCPU campaign not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
	var crossCore *CampaignCell
	for i := range rep1.Cells {
		if rep1.Cells[i].Attack == "cross-core f_ops replay" {
			crossCore = &rep1.Cells[i]
		}
	}
	if crossCore == nil {
		t.Fatal("2-vCPU campaign missing the cross-core replay cell")
	}
	if !crossCore.Defeated() {
		t.Fatalf("full protection bypassed by cross-core replay: %+v", *crossCore)
	}
	if crossCore.Detected == 0 {
		t.Fatalf("cross-core replay produced no detections under full protection: %+v", *crossCore)
	}
}

// TestSMPCampaignUniprocessorUnchanged: a CPUs: 1 campaign must not
// grow the cross-core cell (its scenario list is the pre-SMP one).
func TestSMPCampaignUniprocessorUnchanged(t *testing.T) {
	rep, err := RunCampaign(CampaignOptions{
		Mutations: 2, Seed: 5, Parallel: true, Levels: []string{"none"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Attack == "cross-core f_ops replay" {
			t.Fatal("uniprocessor campaign includes the cross-core cell")
		}
	}
}
