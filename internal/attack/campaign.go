package attack

// The differential attack campaign: the snapshot subsystem's flagship
// scenario class. For each (protection level, attack) pair the driver
// boots one machine, runs the victim up to the attack window, captures
// the armed machine mid-execution, then forks N copy-on-write machines
// and strikes each with a differently mutated corruption (guessed PAC
// bits, different smash sets, transplant variants). Every mutation sees
// the *identical* machine state — the comparison the paper's §6.2
// security argument is implicitly about, and one that full reboots make
// prohibitively slow (each attempt would re-pay codegen + verification +
// boot + victim warm-up).

import (
	"context"
	"fmt"
	"io"

	"camouflage/internal/boot"
	"camouflage/internal/kernel"
	"camouflage/internal/snapshot"
)

// CampaignOptions tunes a differential campaign run.
type CampaignOptions struct {
	// Mutations is the number of forked attack attempts per (attack,
	// level) cell (default 32).
	Mutations int
	// Seed drives the mutation PRNGs (default 1).
	Seed uint64
	// Parallel strikes the forks concurrently.
	Parallel bool
	// Levels filters the §6.2 configurations by name (nil = all).
	Levels []string
	// CPUs is the vCPU count of every cell machine (0/1: uniprocessor,
	// byte-identical to pre-SMP campaigns). At 2 or more, the cell list
	// additionally includes the cross-core f_ops replay scenario: a
	// donor victim on core 0, a recipient victim on core 1, and a
	// mutated signed-pointer transplant between them.
	CPUs int
}

// CampaignCell aggregates one (attack, level) cell of the matrix.
type CampaignCell struct {
	Attack       string `json:"attack"`
	Level        string `json:"level"`
	Runs         int    `json:"runs"`
	Hijacked     int    `json:"hijacked"`
	Detected     int    `json:"detected"`
	Inconclusive int    `json:"inconclusive"`
	// ArmCycles is the victim warm-up cost every fork inherited for free.
	ArmCycles uint64 `json:"arm_cycles"`
	// DirtyPages is the mean copy-on-write overlay a strike produced.
	DirtyPages int `json:"dirty_pages"`
}

// Defeated reports whether the level stopped every mutation.
func (c CampaignCell) Defeated() bool { return c.Hijacked == 0 }

// CampaignReport is the full defeat/bypass matrix.
type CampaignReport struct {
	Cells     []CampaignCell `json:"cells"`
	Mutations int            `json:"mutations"`
	// Forks counts machines forked across the campaign; Armed the
	// mid-execution snapshots captured (one per cell). Cell machines are
	// themselves warm-pool forks keyed by (configuration, scenario
	// seed), so repeated campaigns in one process re-pay no boots.
	Forks uint64 `json:"forks"`
	Armed int    `json:"armed"`
}

// campaignWindow is the attack window located by arming a scenario: VAs
// and slots that are valid in every fork of the armed snapshot, because
// forking is exact.
type campaignWindow struct {
	fileVA  uint64   // victim's open file (f_ops / f_cred scenarios)
	fileVA2 uint64   // second file (replay donor/recipient)
	slots   []uint64 // saved-return-address slots (ROP scenario)
	gadget  uint64
	pacMask uint64
}

// scenario is one campaign attack: arm runs the victim to the window
// (paid once per cell), strike applies a mutated corruption to a fork,
// judge classifies the aftermath.
type scenario struct {
	name   string
	seed   uint64
	budget uint64
	arm    func(k *kernel.Kernel) (campaignWindow, error)
	strike func(k *kernel.Kernel, w campaignWindow, rng *boot.PRNG) error
	judge  func(k *kernel.Kernel, w campaignWindow, before uint64) Outcome
}

// mutatePointer forges a pointer at the target address with mutated
// authentication bits: one in four mutations leaves the pointer
// canonical (the corruption that defeats an *unprotected* kernel), the
// rest guess random PAC-field bits (the §5.4 forgery against a signed
// slot).
func mutatePointer(rng *boot.PRNG, target, mask uint64) uint64 {
	if rng.Uint64()%4 == 0 {
		return target
	}
	return (target &^ mask) | (rng.Uint64() & mask)
}

// newWindow fills the fields every scenario shares.
func newWindow(k *kernel.Kernel) campaignWindow {
	mask, _ := k.CPU.Signer.Config().PACField(true)
	return campaignWindow{gadget: k.Img.Symbols["work_handler"], pacMask: mask}
}

// judgeByGadget is the default classifier (hijack marker, then PAC
// failures, then plain kernel crashes).
func judgeByGadget(k *kernel.Kernel, _ campaignWindow, before uint64) Outcome {
	out, _ := classify(k, before)
	return out
}

// judgeByVictimAlive classifies silent-corruption scenarios (f_cred):
// detection is a PAC failure or a kernel fault; a victim still running
// against the corrupted state is a hijack.
func judgeByVictimAlive(k *kernel.Kernel, _ campaignWindow, _ uint64) Outcome {
	if k.PACFailures > 0 {
		return OutcomeDetected
	}
	for _, o := range k.Oops {
		if o.Kernel {
			return OutcomeDetected
		}
	}
	if k.Task(1) != nil {
		return OutcomeHijacked
	}
	return OutcomeInconclusive
}

// campaignScenarios returns the §6.2 attacks in their mutated campaign
// form; at 2+ vCPUs the cross-core replay scenario joins the list.
func campaignScenarios(cpus int) []scenario {
	scs := baseScenarios()
	if cpus >= 2 {
		scs = append(scs, crossCoreScenario())
	}
	return scs
}

// crossCoreScenario is the SMP campaign cell: arm two victims on two
// cores (donor holds a correctly signed f_ops, recipient dispatches
// through the slot the strike corrupts), then transplant mutated forms
// of the donor's signed pointer across cores.
func crossCoreScenario() scenario {
	return scenario{
		name: "cross-core f_ops replay", seed: 29, budget: 6_000_000,
		arm: func(k *kernel.Kernel) (campaignWindow, error) {
			w := newWindow(k)
			donor, err := kernel.BuildProgram("replayvictim", replayVictimProgram())
			if err != nil {
				return w, err
			}
			sink, err := kernel.BuildProgram("ccvictim", crossCoreVictimProgram())
			if err != nil {
				return w, err
			}
			k.RegisterProgram(1, donor)
			k.RegisterProgram(2, sink)
			if _, err := k.Spawn(1); err != nil {
				return w, err
			}
			if _, err := k.SpawnOn(1, 2); err != nil {
				return w, err
			}
			k.Run(1_000_000)
			w.fileVA = k.FileAddrByFD(0)       // donor: signed null_ops holder (core 0)
			w.fileVA2 = k.FileAddrByFDOn(1, 0) // recipient (core 1)
			if w.fileVA == 0 || w.fileVA2 == 0 {
				return w, fmt.Errorf("campaign crosscore: fds not open")
			}
			return w, nil
		},
		strike: func(k *kernel.Kernel, w campaignWindow, rng *boot.PRNG) error {
			ram := k.CPU.Bus.RAM
			signed := ram.Read64(kernel.KVAToPA(w.fileVA) + kernel.FileOps)
			switch rng.Uint64() % 3 {
			case 1:
				signed ^= 1 << 50 // also break the MAC itself
			case 2:
				own := ram.Read64(kernel.KVAToPA(w.fileVA2) + kernel.FileOps)
				signed = (own &^ w.pacMask) | (signed & w.pacMask)
			}
			ram.Write64(kernel.KVAToPA(w.fileVA2)+kernel.FileOps, signed)
			ram.Write64(kernel.UVAToPA(2, kernel.UserDataBase), 0x5E5E5E5E5E5E5E5E)
			return nil
		},
		judge: func(k *kernel.Kernel, w campaignWindow, _ uint64) Outcome {
			if k.PACFailures > 0 {
				return OutcomeDetected
			}
			ram := k.CPU.Bus.RAM
			sent := ram.Read64(kernel.UVAToPA(2, kernel.UserDataBase))
			// A dispatch in flight on core 1 when the strike landed may
			// consume the sentinel with the old ops (real SMP timing), so
			// "transplanted pointer still installed under a live victim"
			// counts as the silent swap too.
			planted := ram.Read64(kernel.KVAToPA(w.fileVA2)+kernel.FileOps) ==
				ram.Read64(kernel.KVAToPA(w.fileVA)+kernel.FileOps)
			if (sent == 0x5E5E5E5E5E5E5E5E || planted) && k.Task(2) != nil {
				return OutcomeHijacked // driver silently swapped across cores
			}
			return OutcomeInconclusive
		},
	}
}

// baseScenarios returns the uniprocessor campaign cells.
func baseScenarios() []scenario {
	return []scenario{
		{
			name: "ROP (frame-record smash)", seed: 23, budget: 5_000_000,
			arm: func(k *kernel.Kernel) (campaignWindow, error) {
				w := newWindow(k)
				prog, err := kernel.BuildProgram("blocker", pipeBlockerProgram())
				if err != nil {
					return w, err
				}
				k.RegisterProgram(1, prog)
				if _, err := k.Spawn(1); err != nil {
					return w, err
				}
				var victim *kernel.Task
				for i := 0; i < 300; i++ {
					k.Run(5_000)
					if t := k.Task(2); t != nil && t.State == kernel.TaskBlocked {
						victim = t
						break
					}
					if k.Halted {
						break
					}
				}
				if victim == nil {
					return w, fmt.Errorf("campaign rop: victim never blocked")
				}
				textLo := k.Img.Symbols["start_kernel"] &^ 0xFFFF
				textHi := textLo + 0x4_0000
				ram := k.CPU.Bus.RAM
				stackBase := victim.StackTop - kernel.StackSize
				for off := uint64(0); off < kernel.StackSize; off += 8 {
					va := stackBase + off
					v := ram.Read64(kernel.KVAToPA(va))
					if v == 0 {
						continue
					}
					if s := k.CPU.Signer.Strip(v); s >= textLo && s < textHi {
						w.slots = append(w.slots, va)
					}
				}
				if len(w.slots) == 0 {
					return w, fmt.Errorf("campaign rop: no return addresses on victim stack")
				}
				return w, nil
			},
			strike: func(k *kernel.Kernel, w campaignWindow, rng *boot.PRNG) error {
				ram := k.CPU.Bus.RAM
				smashed := false
				for _, va := range w.slots {
					if rng.Uint64()&1 == 0 {
						continue
					}
					ram.Write64(kernel.KVAToPA(va), mutatePointer(rng, w.gadget, w.pacMask))
					smashed = true
				}
				if !smashed {
					va := w.slots[rng.Uint64()%uint64(len(w.slots))]
					ram.Write64(kernel.KVAToPA(va), mutatePointer(rng, w.gadget, w.pacMask))
				}
				return nil
			},
			judge: judgeByGadget,
		},
		{
			name: "f_ops swap (JOP)", seed: 21, budget: 3_000_000,
			arm: func(k *kernel.Kernel) (campaignWindow, error) {
				w := newWindow(k)
				prog, err := kernel.BuildProgram("victim", spinReadProgram(kernel.PathDevZero))
				if err != nil {
					return w, err
				}
				k.RegisterProgram(1, prog)
				if _, err := k.Spawn(1); err != nil {
					return w, err
				}
				k.Run(400_000)
				if w.fileVA = k.FileAddrByFD(0); w.fileVA == 0 {
					return w, fmt.Errorf("campaign fops: victim fd not open")
				}
				return w, nil
			},
			strike: func(k *kernel.Kernel, w campaignWindow, rng *boot.PRNG) error {
				forged := k.AllocScratch(kernel.OpsSize)
				ram := k.CPU.Bus.RAM
				ram.Write64(kernel.KVAToPA(forged)+kernel.OpsRead, w.gadget)
				ram.Write64(kernel.KVAToPA(w.fileVA)+kernel.FileOps,
					mutatePointer(rng, forged, w.pacMask))
				return nil
			},
			judge: judgeByGadget,
		},
		{
			name: "f_ops replay (reuse)", seed: 22, budget: 2_000_000,
			arm: func(k *kernel.Kernel) (campaignWindow, error) {
				w := newWindow(k)
				prog, err := kernel.BuildProgram("replayvictim", replayVictimProgram())
				if err != nil {
					return w, err
				}
				k.RegisterProgram(1, prog)
				if _, err := k.Spawn(1); err != nil {
					return w, err
				}
				k.Run(500_000)
				w.fileVA = k.FileAddrByFD(0)  // /dev/null
				w.fileVA2 = k.FileAddrByFD(1) // /dev/zero
				if w.fileVA == 0 || w.fileVA2 == 0 {
					return w, fmt.Errorf("campaign replay: fds not open")
				}
				return w, nil
			},
			strike: func(k *kernel.Kernel, w campaignWindow, rng *boot.PRNG) error {
				ram := k.CPU.Bus.RAM
				signed := ram.Read64(kernel.KVAToPA(w.fileVA) + kernel.FileOps)
				switch rng.Uint64() % 3 {
				case 1:
					// Bit-flipped transplant: also breaks the MAC itself.
					signed ^= 1 << 50
				case 2:
					// PAC-field splice: graft the donor's PAC onto the
					// recipient's own ops target.
					own := ram.Read64(kernel.KVAToPA(w.fileVA2) + kernel.FileOps)
					signed = (own &^ w.pacMask) | (signed & w.pacMask)
				}
				ram.Write64(kernel.KVAToPA(w.fileVA2)+kernel.FileOps, signed)
				// Sentinel: a genuine /dev/zero read clears it; a silently
				// replayed null_ops read (EOF) leaves it.
				ram.Write64(kernel.UVAToPA(1, kernel.UserDataBase), 0x5E5E5E5E5E5E5E5E)
				return nil
			},
			judge: func(k *kernel.Kernel, w campaignWindow, _ uint64) Outcome {
				if k.PACFailures > 0 {
					return OutcomeDetected
				}
				sent := k.CPU.Bus.RAM.Read64(kernel.UVAToPA(1, kernel.UserDataBase))
				if sent == 0x5E5E5E5E5E5E5E5E && k.Task(1) != nil {
					return OutcomeHijacked // driver silently swapped
				}
				return OutcomeInconclusive
			},
		},
		{
			name: "f_cred swap (priv-esc)", seed: 27, budget: 3_000_000,
			arm: func(k *kernel.Kernel) (campaignWindow, error) {
				w := newWindow(k)
				prog, err := kernel.BuildProgram("credvictim", credVictimProgram())
				if err != nil {
					return w, err
				}
				k.RegisterProgram(1, prog)
				if _, err := k.Spawn(1); err != nil {
					return w, err
				}
				k.Run(500_000)
				if w.fileVA = k.FileAddrByFD(0); w.fileVA == 0 {
					return w, fmt.Errorf("campaign cred: victim fd not open")
				}
				return w, nil
			},
			strike: func(k *kernel.Kernel, w campaignWindow, rng *boot.PRNG) error {
				forged := k.AllocScratch(64)
				ram := k.CPU.Bus.RAM
				ram.Write64(kernel.KVAToPA(forged), 0) // uid 0: root
				ram.Write64(kernel.KVAToPA(w.fileVA)+kernel.FileCred,
					mutatePointer(rng, forged, w.pacMask))
				return nil
			},
			judge: judgeByVictimAlive,
		},
	}
}

// RunCampaign executes the differential campaign and returns the
// defeat/bypass matrix.
func RunCampaign(o CampaignOptions) (*CampaignReport, error) {
	return RunCampaignContext(context.Background(), o)
}

// RunCampaignContext is RunCampaign with cancellation: once ctx is done
// no new cell is armed and no new strike is forked (strikes already
// running finish their instruction budget), and ctx.Err() is returned.
// It is the service daemon's campaign entry point — request deadlines
// flow through here into every forked mutation.
func RunCampaignContext(ctx context.Context, o CampaignOptions) (*CampaignReport, error) {
	if o.Mutations <= 0 {
		o.Mutations = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	levels := Levels()
	if len(o.Levels) > 0 {
		known := map[string]bool{}
		for _, lv := range levels {
			known[lv.Name] = true
		}
		want := map[string]bool{}
		for _, n := range o.Levels {
			if !known[n] {
				return nil, fmt.Errorf("campaign: unknown level %q", n)
			}
			want[n] = true
		}
		kept := levels[:0]
		for _, lv := range levels {
			if want[lv.Name] {
				kept = append(kept, lv)
			}
		}
		levels = kept
	}
	scenarios := campaignScenarios(o.CPUs)

	rep := &CampaignReport{Mutations: o.Mutations}
	for _, lv := range levels {
		for _, sc := range scenarios {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg := lv.Cfg()
			cfg.NumCPUs = o.CPUs
			k, err := bootWith(cfg, sc.seed)
			if err != nil {
				return nil, err
			}
			rep.Armed++
			armStart := k.CPU.Cycles
			w, err := sc.arm(k)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sc.name, lv.Name, err)
			}
			cell := CampaignCell{
				Attack: sc.name, Level: lv.Name,
				Runs: o.Mutations, ArmCycles: k.CPU.Cycles - armStart,
			}
			snap := snapshot.Take(k)

			outcomes := make([]Outcome, o.Mutations)
			dirty := make([]int, o.Mutations)
			err = snapshot.ForEachContext(ctx, o.Mutations, o.Parallel, func(m int) error {
				fork, err := snap.Fork()
				if err != nil {
					return err
				}
				rng := boot.NewPRNG(o.Seed ^ sc.seed<<32 ^ uint64(m)*0x9E3779B97F4A7C15)
				before := gadgetCounter(fork)
				if err := sc.strike(fork, w, rng); err != nil {
					return err
				}
				fork.CPU.InvalidateDecode()
				fork.Run(sc.budget)
				outcomes[m] = sc.judge(fork, w, before)
				dirty[m] = fork.CPU.Bus.RAM.DirtyPages()
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sc.name, lv.Name, err)
			}
			totalDirty := 0
			for m, out := range outcomes {
				switch out {
				case OutcomeHijacked:
					cell.Hijacked++
				case OutcomeDetected:
					cell.Detected++
				default:
					cell.Inconclusive++
				}
				totalDirty += dirty[m]
			}
			cell.DirtyPages = totalDirty / o.Mutations
			rep.Forks += snap.Forks()
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// Render writes the campaign matrix as text.
func (rep *CampaignReport) Render(w io.Writer) {
	fmt.Fprintf(w, "DIFFERENTIAL ATTACK CAMPAIGN: %d mutated attempts per cell (forked from one armed snapshot each)\n",
		rep.Mutations)
	fmt.Fprintf(w, "  %-26s %-15s %-9s %-9s %-13s %-9s %s\n",
		"attack", "build", "hijacked", "detected", "inconclusive", "verdict", "avg dirty pages/strike")
	for _, c := range rep.Cells {
		verdict := "DEFEATED"
		if !c.Defeated() {
			verdict = "bypassed"
		}
		fmt.Fprintf(w, "  %-26s %-15s %-9d %-9d %-13d %-9s %d\n",
			c.Attack, c.Level, c.Hijacked, c.Detected, c.Inconclusive, verdict, c.DirtyPages)
	}
	fmt.Fprintf(w, "  machines: %d strike forks from %d armed snapshots\n", rep.Forks, rep.Armed)
}
