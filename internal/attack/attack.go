// Package attack implements the adversary of the paper's threat model
// (§3.1): full control of unprivileged user processes plus a kernel
// memory-corruption primitive giving arbitrary read/write of kernel
// memory (modelled as direct host access to guest RAM). The attacker
// cannot modify write-protected memory (rodata, XOM) and does not know
// the PAuth keys.
//
// The harness reproduces the security evaluation of §6.2: pointer
// injection, pointer reuse/replay, brute force against the 15-bit PAC,
// and verification-oracle probing — each against the protection levels
// the paper compares.
package attack

import (
	"fmt"

	"camouflage/internal/codegen"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/pac"
	"camouflage/internal/snapshot"
)

// Outcome classifies an attack run.
type Outcome int

// Outcomes.
const (
	// OutcomeHijacked: attacker-chosen code executed in kernel context.
	OutcomeHijacked Outcome = iota
	// OutcomeDetected: the corruption was caught (PAC failure → fault).
	OutcomeDetected
	// OutcomeInconclusive: neither marker fired within budget.
	OutcomeInconclusive
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeHijacked:
		return "HIJACKED"
	case OutcomeDetected:
		return "detected"
	}
	return "inconclusive"
}

// Report is the result of one attack under one configuration.
type Report struct {
	Attack  string
	Level   string
	Outcome Outcome
	// PACFailures observed during the attack.
	PACFailures int
	Detail      string
}

// gadgetCounter reads the hijack marker: the work counter incremented by
// work_handler, which all attacks use as their "attacker code" target.
func gadgetCounter(k *kernel.Kernel) uint64 {
	return k.CPU.Bus.RAM.Read64(kernel.KVAToPA(kernel.DataBase) + kernel.StaticWorkOffset + kernel.WorkData)
}

// classify turns post-run state into an outcome. Hijack wins: if the
// gadget ran, detection afterwards does not undo the damage.
func classify(k *kernel.Kernel, before uint64) (Outcome, string) {
	if gadgetCounter(k) > before {
		return OutcomeHijacked, fmt.Sprintf("gadget executed %d time(s)", gadgetCounter(k)-before)
	}
	if k.PACFailures > 0 {
		return OutcomeDetected, fmt.Sprintf("%d PAC failure(s), offender killed", k.PACFailures)
	}
	for _, o := range k.Oops {
		if o.Kernel {
			return OutcomeDetected, "kernel fault without PAC (crash, not hijack)"
		}
	}
	return OutcomeInconclusive, ""
}

// bootWith builds and boots a kernel for an attack run (warm-pooled:
// repeated matrix/benchmark/campaign runs fork instead of rebooting).
func bootWith(cfg *codegen.Config, seed uint64) (*kernel.Kernel, error) {
	opts := kernel.Options{Config: cfg, Seed: seed, FailureThreshold: 64}
	snap, err := snapshot.Shared.SnapshotFor(snapshot.KeyFor(opts), snapshot.BootOptions(opts))
	if err != nil {
		return nil, err
	}
	return snap.Fork()
}

// spinReadProgram is the standard victim: open a path, then read it in a
// tight loop (the dispatch the f_ops attacks corrupt).
func spinReadProgram(path uint64) func(u *kernel.UserASM) {
	return func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, path, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.A.Label("spin")
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(kernel.SysRead)
		u.A.B("spin")
	}
}

// pipeBlockerProgram is the ROP victim: fork a child that blocks reading
// an empty pipe (its kernel stack then holds live frame records) while
// the parent yields through the attack window before writing the pipe.
func pipeBlockerProgram() func(u *kernel.UserASM) {
	return func(u *kernel.UserASM) {
		u.Syscall(kernel.SysPipe2, kernel.UserDataBase+0x100)
		u.SyscallReg(kernel.SysClone)
		u.A.CBZ(insn.X0, "child")
		// Parent: yield a few times (attack window), then write the pipe.
		u.CounterLoop("spins", insn.X21, 50, func() {
			u.SyscallReg(kernel.SysSchedYield)
		})
		u.MovImm(insn.X9, kernel.UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 8))
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(kernel.SysWrite)
		u.Exit(0)
		// Child: block reading the empty pipe.
		u.A.Label("child")
		u.MovImm(insn.X9, kernel.UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 0))
		u.MovImm(insn.X1, kernel.UserDataBase+0x40)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(kernel.SysRead)
		u.Exit(0)
	}
}

// replayVictimProgram opens /dev/null (fd 0) and /dev/zero (fd 1), then
// keeps reading fd 1 — the dispatch the replay attack redirects.
func replayVictimProgram() func(u *kernel.UserASM) {
	return func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevNull, 0) // fd 0
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0) // fd 1
		u.A.Label("spin")
		u.Syscall(kernel.SysRead, 1, kernel.UserDataBase, 8)
		u.A.B("spin")
	}
}

// credVictimProgram opens /dev/zero and loops fstat — the permission
// check the f_cred attack subverts — recording each result for the host.
func credVictimProgram() func(u *kernel.UserASM) {
	return func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.A.Label("spin")
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.SyscallReg(kernel.SysFstat)
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.A.B("spin")
	}
}

// FOpsSwap is the forward-edge/DFI attack of §4.5: replace an open file's
// f_ops pointer with a forged operations table in writable memory whose
// read member is the attacker's gadget.
func FOpsSwap(cfg *codegen.Config, level string) (Report, error) {
	k, err := bootWith(cfg, 21)
	if err != nil {
		return Report{}, err
	}
	prog, err := kernel.BuildProgram("victim", spinReadProgram(kernel.PathDevZero))
	if err != nil {
		return Report{}, err
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		return Report{}, err
	}
	k.Run(400_000) // open + a few benign reads
	fileVA := k.FileAddrByFD(0)
	if fileVA == 0 {
		return Report{}, fmt.Errorf("fopsswap: victim fd not open")
	}

	before := gadgetCounter(k)
	// Arbitrary kernel R/W: forge an ops table pointing read at the
	// gadget, then swap f_ops. (.rodata itself is unwritable — §3.1 — so
	// the forgery must live in writable memory, which is exactly why the
	// pointer *to* the table needs DFI.)
	forged := k.AllocScratch(kernel.OpsSize)
	ram := k.CPU.Bus.RAM
	ram.Write64(kernel.KVAToPA(forged)+kernel.OpsRead, k.Img.Symbols["work_handler"])
	ram.Write64(kernel.KVAToPA(fileVA)+kernel.FileOps, forged)
	k.CPU.InvalidateDecode()

	k.Run(3_000_000)
	out, detail := classify(k, before)
	return Report{Attack: "f_ops swap (JOP)", Level: level, Outcome: out,
		PACFailures: k.PACFailures, Detail: detail}, nil
}

// FOpsReplay is the §6.2.1 reuse attack: transplant a correctly signed
// f_ops value from one file object into another of the same type. Under
// the §4.3 address-bound modifier this fails; under the zero-modifier
// ablation (Apple's vtable scheme, §7) it succeeds if the two files use
// different operations tables (privilege confusion between drivers).
func FOpsReplay(cfg *codegen.Config, level string) (Report, error) {
	k, err := bootWith(cfg, 22)
	if err != nil {
		return Report{}, err
	}
	prog, err := kernel.BuildProgram("replayvictim", replayVictimProgram())
	if err != nil {
		return Report{}, err
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		return Report{}, err
	}
	k.Run(500_000)
	nullFile := k.FileAddrByFD(0)
	zeroFile := k.FileAddrByFD(1)
	if nullFile == 0 || zeroFile == 0 {
		return Report{}, fmt.Errorf("fopsreplay: fds not open")
	}

	// Transplant the signed f_ops of the *null* file into the *zero*
	// file: subsequent reads of /dev/zero would dispatch through
	// null_ops (read = EOF), silently redirecting the driver — the
	// "pointer replaced with another pointer of the same type" case.
	ram := k.CPU.Bus.RAM
	signedNullOps := ram.Read64(kernel.KVAToPA(nullFile) + kernel.FileOps)
	ram.Write64(kernel.KVAToPA(zeroFile)+kernel.FileOps, signedNullOps)
	k.CPU.InvalidateDecode()

	// Observe: fill the buffer with a sentinel; a genuine /dev/zero read
	// zeroes it; a replayed null_ops read (EOF) leaves it untouched.
	sentPA := kernel.UVAToPA(1, kernel.UserDataBase)
	ram.Write64(sentPA, 0x5E5E5E5E5E5E5E5E)
	k.Run(2_000_000)

	if k.PACFailures > 0 {
		return Report{Attack: "f_ops replay (reuse)", Level: level, Outcome: OutcomeDetected,
			PACFailures: k.PACFailures, Detail: "cross-object transplant rejected"}, nil
	}
	if ram.Read64(sentPA) == 0x5E5E5E5E5E5E5E5E && k.Task(1) != nil {
		return Report{Attack: "f_ops replay (reuse)", Level: level, Outcome: OutcomeHijacked,
			Detail: "driver silently swapped: /dev/zero reads dispatch to null_ops"}, nil
	}
	return Report{Attack: "f_ops replay (reuse)", Level: level, Outcome: OutcomeInconclusive}, nil
}

// crossCoreVictimProgram is the second core's victim: open /dev/zero
// (fd 0) and keep reading it — the dispatch the cross-core replay
// silently redirects.
func crossCoreVictimProgram() func(u *kernel.UserASM) {
	return func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0) // fd 0
		u.A.Label("spin")
		u.Syscall(kernel.SysRead, 0, kernel.UserDataBase, 8)
		u.A.B("spin")
	}
}

// CrossCoreReplay is the SMP form of the §6.2.1 reuse attack, run on a
// real 2-vCPU machine instead of the synthetic ReplayCensus counts: a
// victim on core 0 holds a correctly signed f_ops pointer (signed under
// that core's — i.e. the whole kernel's — DB key), and the attacker
// transplants it into a file object a second victim, running
// concurrently on core 1, dispatches through. Kernel PAuth keys are
// per-boot, not per-core (every core installs the same XOM-hidden
// keys), so nothing about crossing cores weakens the transplant — what
// decides the outcome is the modifier: the §4.3 address-bound modifier
// rejects it on core 1's very next read, while the zero-modifier
// ablation authenticates it and the driver is silently swapped across
// cores.
func CrossCoreReplay(cfg *codegen.Config, level string) (Report, error) {
	if cfg.CPUs() < 2 {
		cfg.NumCPUs = 2
	}
	k, err := bootWith(cfg, 25)
	if err != nil {
		return Report{}, err
	}
	donorProg, err := kernel.BuildProgram("replayvictim", replayVictimProgram())
	if err != nil {
		return Report{}, err
	}
	sinkProg, err := kernel.BuildProgram("ccvictim", crossCoreVictimProgram())
	if err != nil {
		return Report{}, err
	}
	k.RegisterProgram(1, donorProg)
	k.RegisterProgram(2, sinkProg)
	if _, err := k.Spawn(1); err != nil {
		return Report{}, err
	}
	sink, err := k.SpawnOn(1, 2)
	if err != nil {
		return Report{}, err
	}
	k.Run(1_000_000) // both victims open their files and settle into reads

	nullFile := k.FileAddrByFD(0)      // core 0 victim's /dev/null
	zeroFile := k.FileAddrByFDOn(1, 0) // core 1 victim's /dev/zero
	if nullFile == 0 || zeroFile == 0 {
		return Report{}, fmt.Errorf("crosscore replay: fds not open")
	}

	// Transplant the signed f_ops across cores.
	ram := k.CPU.Bus.RAM
	signedNullOps := ram.Read64(kernel.KVAToPA(nullFile) + kernel.FileOps)
	ram.Write64(kernel.KVAToPA(zeroFile)+kernel.FileOps, signedNullOps)
	k.CPU.InvalidateDecode()

	// Drain: core 1 may be suspended mid-vfs_read with the *old* f_ops
	// already loaded into a register (the transplant raced a dispatch in
	// flight — real SMP semantics). A short slice lets that read retire
	// before the sentinel goes in, so the sentinel then witnesses only
	// post-transplant dispatches.
	k.Run(200_000)

	// Sentinel in the core-1 victim's buffer: a genuine /dev/zero read
	// zeroes it; a replayed null_ops read (EOF) leaves it untouched.
	sentPA := kernel.UVAToPA(sink.PID, kernel.UserDataBase)
	ram.Write64(sentPA, 0x5E5E5E5E5E5E5E5E)
	k.Run(4_000_000)

	if k.PACFailures > 0 {
		return Report{Attack: "cross-core f_ops replay", Level: level, Outcome: OutcomeDetected,
			PACFailures: k.PACFailures, Detail: "cross-core transplant rejected on sibling core"}, nil
	}
	if ram.Read64(sentPA) == 0x5E5E5E5E5E5E5E5E && k.Task(sink.PID) != nil {
		return Report{Attack: "cross-core f_ops replay", Level: level, Outcome: OutcomeHijacked,
			Detail: "driver silently swapped across cores: core-1 reads dispatch to null_ops"}, nil
	}
	return Report{Attack: "cross-core f_ops replay", Level: level, Outcome: OutcomeInconclusive}, nil
}

// ROPFrameRecord is the backward-edge attack of §2.1: overwrite saved
// return addresses in the frame records of a task blocked inside the
// kernel, then let it resume.
func ROPFrameRecord(cfg *codegen.Config, level string) (Report, error) {
	k, err := bootWith(cfg, 23)
	if err != nil {
		return Report{}, err
	}
	prog, err := kernel.BuildProgram("blocker", pipeBlockerProgram())
	if err != nil {
		return Report{}, err
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		return Report{}, err
	}

	// Run until the child (pid 2) is blocked in pipe_read.
	var victim *kernel.Task
	for i := 0; i < 300; i++ {
		k.Run(5_000)
		if t := k.Task(2); t != nil && t.State == kernel.TaskBlocked {
			victim = t
			break
		}
		if k.Halted {
			break
		}
	}
	if victim == nil {
		return Report{}, fmt.Errorf("rop: victim never blocked")
	}

	before := gadgetCounter(k)
	gadget := k.Img.Symbols["work_handler"]
	textLo := k.Img.Symbols["start_kernel"] &^ 0xFFFF
	textHi := textLo + 0x4_0000
	// Scan the victim's kernel stack for saved return addresses (any
	// quad whose PAC-stripped value lands in kernel text) and smash them.
	ram := k.CPU.Bus.RAM
	smashed := 0
	stackBase := victim.StackTop - kernel.StackSize
	for off := uint64(0); off < kernel.StackSize; off += 8 {
		va := stackBase + off
		v := ram.Read64(kernel.KVAToPA(va))
		if v == 0 {
			continue
		}
		stripped := k.CPU.Signer.Strip(v)
		if stripped >= textLo && stripped < textHi {
			ram.Write64(kernel.KVAToPA(va), gadget)
			smashed++
		}
	}
	if smashed == 0 {
		return Report{}, fmt.Errorf("rop: no return addresses found on victim stack")
	}
	k.CPU.InvalidateDecode()
	k.Run(5_000_000)
	out, detail := classify(k, before)
	return Report{Attack: "ROP (frame-record smash)", Level: level, Outcome: out,
		PACFailures: k.PACFailures, Detail: fmt.Sprintf("%s; %d slots smashed", detail, smashed)}, nil
}

// BruteReport is the result of the §5.4 brute-force experiment.
type BruteReport struct {
	Level     string
	Threshold int
	Attempts  int
	Halted    bool
	// Succeeded is true if a guessed PAC authenticated (probability
	// ~2^-15 per attempt; essentially never within the threshold).
	Succeeded bool
}

// BruteForcePAC models the §5.4 attacker: an unprivileged process guesses
// PAC bits for a forged f_ops pointer; every miss costs it the process,
// and the kernel halts at the failure threshold.
func BruteForcePAC(cfg *codegen.Config, level string, threshold int) (BruteReport, error) {
	opts := kernel.Options{Config: cfg, Seed: 31, FailureThreshold: threshold}
	snap, err := snapshot.Shared.SnapshotFor(snapshot.KeyFor(opts), snapshot.BootOptions(opts))
	if err != nil {
		return BruteReport{}, err
	}
	k, err := snap.Fork()
	if err != nil {
		return BruteReport{}, err
	}
	prog, err := kernel.BuildProgram("bruteforcer", spinReadProgram(kernel.PathDevZero))
	if err != nil {
		return BruteReport{}, err
	}
	k.RegisterProgram(1, prog)

	rep := BruteReport{Level: level, Threshold: threshold}
	forgedTarget := k.AllocScratch(kernel.OpsSize)
	ram := k.CPU.Bus.RAM
	ram.Write64(kernel.KVAToPA(forgedTarget)+kernel.OpsRead, k.Img.Symbols["work_handler"])

	mask, _ := k.CPU.Signer.Config().PACField(true)
	before := gadgetCounter(k)
	for rep.Attempts = 0; rep.Attempts < threshold+8 && !k.Halted; rep.Attempts++ {
		if _, err := k.Spawn(1); err != nil {
			return rep, err
		}
		k.Run(400_000)
		fileVA := k.FileAddrByFD(0)
		if fileVA == 0 {
			return rep, fmt.Errorf("bruteforce: fd not open")
		}
		// Guess: forged pointer with attempt-indexed PAC bits.
		guess := (forgedTarget &^ mask) | (uint64(rep.Attempts*0x9E37+1) << 48 & mask)
		ram.Write64(kernel.KVAToPA(fileVA)+kernel.FileOps, guess)
		k.CPU.InvalidateDecode()
		k.Run(3_000_000)
		if gadgetCounter(k) > before {
			rep.Succeeded = true
			return rep, nil
		}
	}
	rep.Halted = k.Halted
	return rep, nil
}

// Levels enumerates the §6.2 comparison configurations.
func Levels() []struct {
	Name string
	Cfg  func() *codegen.Config
} {
	zero := func() *codegen.Config {
		c := codegen.ConfigFull()
		c.ZeroModifier = true
		return c
	}
	return []struct {
		Name string
		Cfg  func() *codegen.Config
	}{
		{"none", codegen.ConfigNone},
		{"backward-edge", codegen.ConfigBackward},
		{"full", codegen.ConfigFull},
		{"full/zero-mod", zero},
	}
}

// Matrix runs every attack against every configuration: the §6.2
// security-evaluation table.
func Matrix() ([]Report, error) { return MatrixCPUs(1) }

// MatrixCPUs is Matrix on machines with the given vCPU count (the
// victims stay pinned to the boot core; the cross-core scenario lives
// in CrossCoreReplay and the campaign driver).
func MatrixCPUs(cpus int) ([]Report, error) {
	var out []Report
	for _, lv := range Levels() {
		for _, run := range []func(*codegen.Config, string) (Report, error){
			ROPFrameRecord, FOpsSwap, FOpsReplay, CredSwap,
		} {
			cfg := lv.Cfg()
			cfg.NumCPUs = cpus
			r, err := run(cfg, lv.Name)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// --- replay-surface census (E10) ---

// CensusResult counts modifier collisions across contexts for one
// return-address scheme.
type CensusResult struct {
	Scheme pac.ModifierScheme
	// Contexts is the number of (thread, depth, function) sign contexts.
	Contexts int
	// CollidingPairs counts distinct context pairs with equal modifiers —
	// each is a replay opportunity.
	CollidingPairs int
}

// ReplayCensus enumerates kernel sign contexts — threads with 16 KiB-
// strided stacks (§4.2), call depths, and return sites — and counts
// modifier collisions per scheme. It quantifies §4.2 and §7: the SP-only
// modifier collides across functions at equal depth and across threads;
// PARTS collides across stacks 64 KiB apart; Camouflage collides only
// when thread stacks alias at 4 GiB spacing, which the census never
// reaches.
func ReplayCensus(scheme pac.ModifierScheme, threads, depths, funcs int) CensusResult {
	type ctx struct{ modifier uint64 }
	var ctxs []ctx
	for th := 0; th < threads; th++ {
		stackTop := kernel.StackBase + uint64(th+1)*kernel.StackSize
		for d := 0; d < depths; d++ {
			sp := stackTop - uint64(d+1)*32
			for f := 0; f < funcs; f++ {
				fnAddr := kernel.TextBase + uint64(f)*0x80
				var m uint64
				switch scheme {
				case pac.ModifierClangSP:
					m = pac.ReturnModifierClangSP(sp)
				case pac.ModifierPARTS:
					m = pac.ReturnModifierPARTS(sp, uint64(f+1))
				case pac.ModifierCamouflage:
					m = pac.ReturnModifierCamouflage(sp, fnAddr)
				default:
					m = 0 // unprotected: everything collides
				}
				ctxs = append(ctxs, ctx{m})
			}
		}
	}
	seen := map[uint64]int{}
	pairs := 0
	for _, c := range ctxs {
		pairs += seen[c.modifier]
		seen[c.modifier]++
	}
	return CensusResult{Scheme: scheme, Contexts: len(ctxs), CollidingPairs: pairs}
}
