package hyp

import (
	"testing"

	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

func TestLockdownDeniesMMUWrites(t *testing.T) {
	c := cpu.New(cpu.Features{PAuth: true})
	h := Attach(c)

	// Before lockdown, writes pass.
	if err := c.WriteSys(insn.TTBR1_EL1, 0x1000); err != nil {
		t.Fatal(err)
	}
	if c.TTBR1 != 0x1000 {
		t.Fatal("pre-lockdown write lost")
	}

	h.Lockdown()
	if !h.LockedDown() {
		t.Fatal("LockedDown false")
	}
	if err := c.WriteSys(insn.TTBR1_EL1, 0xBAD); err != nil {
		t.Fatal(err)
	}
	if c.TTBR1 != 0x1000 {
		t.Fatalf("TTBR1 = %#x after lockdown write", c.TTBR1)
	}
	if err := c.WriteSys(insn.VBAR_EL1, 0xBAD); err != nil {
		t.Fatal(err)
	}
	if c.VBAR == 0xBAD {
		t.Fatal("VBAR write not denied")
	}
	if h.DeniedWrites != 2 {
		t.Fatalf("DeniedWrites = %d", h.DeniedWrites)
	}
}

// TestLockdownProtectsPAuthEnableBits pins §4.1: after lockdown, SCTLR
// writes clearing EnIA/EnIB/EnDA/EnDB are denied; writes preserving them
// pass.
func TestLockdownProtectsPAuthEnableBits(t *testing.T) {
	c := cpu.New(cpu.Features{PAuth: true})
	h := Attach(c)
	c.SCTLR = insn.SCTLRPAuthAll
	h.Lockdown()

	if err := c.WriteSys(insn.SCTLR_EL1, 0); err != nil {
		t.Fatal(err)
	}
	if c.SCTLR != insn.SCTLRPAuthAll {
		t.Fatalf("SCTLR = %#x; PAuth disable not denied", c.SCTLR)
	}
	ok := uint64(insn.SCTLRPAuthAll) | 1 // harmless extra bit
	if err := c.WriteSys(insn.SCTLR_EL1, ok); err != nil {
		t.Fatal(err)
	}
	if c.SCTLR != ok {
		t.Fatalf("benign SCTLR write denied: %#x", c.SCTLR)
	}
}

func TestMapXOM(t *testing.T) {
	c := cpu.New(cpu.Features{PAuth: true})
	h := Attach(c)
	h.MapXOM(0x4000_0000, 2*mmu.PageSize)
	if !c.MMU.S2.Enabled {
		t.Fatal("stage 2 not enabled")
	}
	if c.MMU.S2.Check(0x4000_0000, mmu.Load) {
		t.Fatal("XOM page readable")
	}
	if !c.MMU.S2.Check(0x4000_1000, mmu.Fetch) {
		t.Fatal("XOM page not executable")
	}
	if c.MMU.S2.Check(0x4000_1000, mmu.Store) {
		t.Fatal("XOM page writable")
	}
	if !c.MMU.S2.Check(0x4000_2000, mmu.Load) {
		t.Fatal("page outside XOM window restricted")
	}
}

func TestProtectReadOnly(t *testing.T) {
	c := cpu.New(cpu.Features{PAuth: true})
	h := Attach(c)
	h.ProtectReadOnly(0x5000_0000, mmu.PageSize)
	if !c.MMU.S2.Check(0x5000_0000, mmu.Load) {
		t.Fatal("RO page not readable")
	}
	if c.MMU.S2.Check(0x5000_0000, mmu.Store) {
		t.Fatal("RO page writable at stage 2")
	}
}

func TestTrapInstallKeys(t *testing.T) {
	c := cpu.New(cpu.Features{PAuth: true})
	h := Attach(c)
	var ks pac.KeySet
	ks.Keys[pac.KeyIB] = pac.Key{Hi: 0x11, Lo: 0x22}
	h.EscrowKeys(ks)

	before := c.Cycles
	if err := h.TrapInstallKeys(pac.KeyIB); err != nil {
		t.Fatal(err)
	}
	if got := c.Signer.Key(pac.KeyIB); got != ks.Keys[pac.KeyIB] {
		t.Fatalf("key = %+v", got)
	}
	cost := c.Cycles - before
	if cost < TrapCycles {
		t.Fatalf("trap cost %d < TrapCycles %d", cost, TrapCycles)
	}
	// The paper's point: the trap path is an order of magnitude more
	// expensive than the 9-cycle XOM install.
	if cost < 10*9 {
		t.Fatalf("trap cost %d not >> XOM cost", cost)
	}
	if h.TrapInstalls != 1 {
		t.Fatalf("TrapInstalls = %d", h.TrapInstalls)
	}
}

func TestHookChaining(t *testing.T) {
	c := cpu.New(cpu.Features{PAuth: true})
	calls := 0
	c.OnMSR = func(r insn.SysReg, v uint64) bool {
		calls++
		return false
	}
	h := Attach(c)
	h.Lockdown()
	_ = c.WriteSys(insn.TTBR0_EL1, 1)
	if calls != 1 {
		t.Fatalf("previous hook not chained: %d calls", calls)
	}
	if c.TTBR0 == 1 {
		t.Fatal("lockdown bypassed when chained")
	}
}
