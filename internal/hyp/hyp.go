// Package hyp models the EL2 hypervisor of the paper's trusted computing
// base. The paper relies on a proprietary hypervisor (of the kind described
// by Beniamini's RKP analysis [12]) for exactly two properties:
//
//  1. execute-only memory for the kernel key-setter page, expressed in the
//     stage-2 translation tables (stage 1 cannot deny EL1 reads — Appendix
//     A.2), and
//  2. MMU lockdown: after boot, EL1 writes to the MMU control registers
//     (TTBRn_EL1 and the MMU/PAuth-enable bits of SCTLR_EL1) are denied,
//     so an attacker with kernel R/W cannot remap or disable protections.
//
// It also implements the Ferri-style alternative (§7): trap-based key
// management, where EL1 never holds key material and every key install
// traps to EL2. That path exists as an ablation baseline for benchmarks —
// the paper's argument is that such traps are not designed for per-syscall
// frequency.
package hyp

import (
	"fmt"

	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// TrapCycles is the modelled cost of one EL1→EL2→EL1 trap round trip
// (exception entry to EL2, handler work, ERET), used by the trap-based key
// management ablation. Hypervisor calls on real cores cost hundreds of
// cycles; 280 matches the order of magnitude of published HVC latencies on
// Cortex-A53-class hardware.
const TrapCycles = 280

// Hypervisor is the EL2 monitor attached to one machine: the boot CPU
// plus any secondary cores registered with AttachPeer. The stage-2
// overlay is shared machine state (every core's MMU points at the same
// Stage2), so MapXOM/ProtectReadOnly act through the boot CPU; the MSR
// lockdown filter is installed per core.
type Hypervisor struct {
	cpu  *cpu.CPU
	cpus []*cpu.CPU

	// lockdown is set once the kernel has booted; after that, MMU control
	// register writes from EL1 are denied.
	lockdown bool

	// DeniedWrites counts EL1 writes suppressed by the lockdown.
	DeniedWrites uint64

	// escrow holds the kernel keys for trap-based key management.
	escrow pac.KeySet
	// TrapInstalls counts trap-based key installations.
	TrapInstalls uint64
}

// Attach installs the hypervisor on the CPU's system-register path.
func Attach(c *cpu.CPU) *Hypervisor {
	h := &Hypervisor{cpu: c}
	h.AttachPeer(c)
	return h
}

// AttachPeer extends the hypervisor's MSR lockdown filter to a sibling
// core of the same machine (secondary vCPUs share the stage-2 overlay
// already; what each needs individually is the register-write veto).
func (h *Hypervisor) AttachPeer(c *cpu.CPU) {
	h.cpus = append(h.cpus, c)
	prev := c.OnMSR
	c.OnMSR = func(r insn.SysReg, v uint64) bool {
		if prev != nil && prev(r, v) {
			return true
		}
		return h.filterMSR(r, v)
	}
}

// filterMSR enforces the lockdown policy.
func (h *Hypervisor) filterMSR(r insn.SysReg, v uint64) bool {
	if !h.lockdown {
		return false
	}
	switch r {
	case insn.TTBR0_EL1, insn.TTBR1_EL1, insn.VBAR_EL1:
		h.DeniedWrites++
		return true
	case insn.SCTLR_EL1:
		// Deny any write that would clear a PAuth enable bit (§4.1); other
		// SCTLR updates pass through with the PAuth bits forced on.
		if v&insn.SCTLRPAuthAll != insn.SCTLRPAuthAll {
			h.DeniedWrites++
			return true
		}
	}
	return false
}

// MapXOM maps the physical page(s) [pa, pa+size) execute-only in stage 2
// and enables stage-2 enforcement.
func (h *Hypervisor) MapXOM(pa, size uint64) {
	h.cpu.MMU.S2.Enabled = true
	for off := uint64(0); off < size; off += mmu.PageSize {
		h.cpu.MMU.S2.Restrict(pa+off, mmu.S2Perm{X: true})
	}
}

// ProtectReadOnly write-protects [pa, pa+size) at stage 2 (used for
// .rodata operations structures: even an attacker who corrupts stage-1
// tables cannot make them writable — §3.1's "locking down MMU ... via the
// hypervisor").
func (h *Hypervisor) ProtectReadOnly(pa, size uint64) {
	h.cpu.MMU.S2.Enabled = true
	for off := uint64(0); off < size; off += mmu.PageSize {
		h.cpu.MMU.S2.Restrict(pa+off, mmu.S2Perm{R: true, X: true})
	}
}

// Lockdown freezes the MMU configuration. Called by the kernel at the end
// of early boot. It flushes every core's software TLB so nothing
// translated under the pre-lockdown configuration survives the seal.
func (h *Hypervisor) Lockdown() {
	h.lockdown = true
	for _, c := range h.cpus {
		c.MMU.InvalidateTLBAll()
	}
}

// LockedDown reports whether lockdown is active.
func (h *Hypervisor) LockedDown() bool { return h.lockdown }

// State is a captured hypervisor snapshot: the lockdown latch, its denial
// counter, and the trap-management escrow. Stage-2 table contents are
// captured by the mmu package, not here.
type State struct {
	Lockdown     bool
	DeniedWrites uint64
	Escrow       pac.KeySet
	TrapInstalls uint64
}

// CaptureState snapshots the hypervisor's own state.
func (h *Hypervisor) CaptureState() State {
	return State{
		Lockdown:     h.lockdown,
		DeniedWrites: h.DeniedWrites,
		Escrow:       h.escrow,
		TrapInstalls: h.TrapInstalls,
	}
}

// RestoreState rewinds the hypervisor to a captured snapshot. The caller
// is responsible for the accompanying TLB flush (restore paths always
// follow with cpu.RestoreState, which flushes).
func (h *Hypervisor) RestoreState(st State) {
	h.lockdown = st.Lockdown
	h.DeniedWrites = st.DeniedWrites
	h.escrow = st.Escrow
	h.TrapInstalls = st.TrapInstalls
}

// --- trap-based key management (Ferri et al. ablation, §7) ---

// EscrowKeys stores the kernel keys at EL2 for the trap-based scheme.
func (h *Hypervisor) EscrowKeys(ks pac.KeySet) { h.escrow = ks }

// TrapInstallKeys models the EL1→EL2 trap that installs the escrowed
// kernel keys: it charges the trap cost to the CPU and writes the key
// registers directly (EL2 is above the MSR filter).
func (h *Hypervisor) TrapInstallKeys(ids ...pac.KeyID) error {
	if h.cpu == nil {
		return fmt.Errorf("hyp: not attached")
	}
	h.cpu.Cycles += TrapCycles
	for _, id := range ids {
		h.cpu.Signer.SetKey(id, h.escrow.Keys[id])
		// Each key write still costs the two MSRs at EL2.
		h.cpu.Cycles += 9
	}
	h.TrapInstalls++
	return nil
}
