package workload

import (
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/kernel"
)

// TestFigure4Shape pins the paper's Figure 4: the JPEG workload sees the
// least overhead, the download the most, and the geometric mean under
// full protection stays below 4 %.
func TestFigure4Shape(t *testing.T) {
	results, err := RunSuite()
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string]map[string]float64{}
	for _, r := range results {
		if rel[r.Workload] == nil {
			rel[r.Workload] = map[string]float64{}
		}
		rel[r.Workload][r.Level] = r.Relative
	}
	jpeg := rel["JPEG resize"]["full"]
	build := rel["package build"]["full"]
	dl := rel["network download"]["full"]
	if !(jpeg < build && build < dl) {
		t.Errorf("overhead ordering violated: jpeg=%.4f build=%.4f download=%.4f", jpeg, build, dl)
	}
	if jpeg > 1.02 {
		t.Errorf("JPEG (user-dominated) overhead %.2f%% too high", (jpeg-1)*100)
	}
	if dl < 1.02 {
		t.Errorf("download (kernel-dominated) overhead %.2f%% too low to be kernel-bound", (dl-1)*100)
	}
	gm := GeoMeanOverhead(results, "full")
	if gm >= 1.04 {
		t.Errorf("geometric mean overhead %.2f%% >= 4%% (§6.1.3)", (gm-1)*100)
	}
	if gm <= 1.0 {
		t.Errorf("geometric mean %.4f <= 1; protection cannot be free", gm)
	}
	// Backward-edge-only must be cheaper than full on every workload.
	for name, m := range rel {
		if m["backward-edge"] > m["full"] {
			t.Errorf("%s: backward-edge (%.4f) costlier than full (%.4f)", name, m["backward-edge"], m["full"])
		}
	}
}

// TestWorkloadsProduceWork sanity-checks the device side effects.
func TestWorkloadsProduceWork(t *testing.T) {
	for _, w := range Suite() {
		r, err := Run(codegen.ConfigNone, "none", w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Cycles < 100_000 {
			t.Errorf("%s: only %d cycles; workload too small to be meaningful", w.Name, r.Cycles)
		}
	}
}

// TestDownloadDrainsQueue: the download must consume every injected
// packet through the socket receive path before exiting on EOF.
func TestDownloadDrainsQueue(t *testing.T) {
	w := Suite()[2]
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigFull(), Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	w.Setup(k)
	injected := k.Net.QueuedPackets()
	if injected == 0 {
		t.Fatal("setup injected no packets")
	}
	prog, err := kernel.BuildProgram(w.Name, w.Build)
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	stop := k.Run(2_000_000_000)
	if stop.Kind != cpu.StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if left := k.Net.QueuedPackets(); left != 0 {
		t.Fatalf("%d/%d packets left in the NIC queue", left, injected)
	}
	if k.CPU.PACFailures != 0 {
		t.Fatalf("PAC failures during download: %d", k.CPU.PACFailures)
	}
}

func TestGeoMean(t *testing.T) {
	rs := []Result{
		{Workload: "a", Level: "full", Relative: 1.02},
		{Workload: "b", Level: "full", Relative: 1.08},
	}
	gm := GeoMeanOverhead(rs, "full")
	if gm < 1.049 || gm > 1.051 {
		t.Fatalf("geomean = %f, want ~1.05", gm)
	}
	if GeoMeanOverhead(rs, "missing") != 0 {
		t.Fatal("missing level should give 0")
	}
}

// TestRunSuiteParallelMatchesSequential: the per-(workload, level)
// parallel suite must produce exactly the sequential results, relative
// costs included.
func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	seq, err := RunSuite()
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSuiteParallel()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("cell %d: sequential %+v != parallel %+v", i, seq[i], par[i])
		}
	}
}
