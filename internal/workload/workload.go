// Package workload reproduces the user-space workloads of the paper's
// Figure 4: 1) a JPEG picture resize (predominantly user computation),
// 2) a Debian package build (balanced user/kernel), and 3) a network
// download (mostly kernel). The paper's observation is that the kernel CFI
// overhead is attenuated by the user:kernel cycle ratio, with a geometric
// mean below 4 % under full protection.
//
// Each workload is a complete user program on the simulated machine with
// the corresponding instruction mix; the kernel side goes through the real
// instrumented syscall paths.
package workload

import (
	"fmt"
	"math"

	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/snapshot"
)

// Workload is one Figure 4 bar group.
type Workload struct {
	// Name matches the paper's caption.
	Name string
	// Build emits the user program.
	Build func(u *kernel.UserASM)
	// Setup prepares host-side devices (packets, disk sectors).
	Setup func(k *kernel.Kernel)
	// NeedsExecTarget registers the compiler-stand-in program.
	NeedsExecTarget bool
}

// ExecTargetProgID is the program id spawned by the build workload.
const ExecTargetProgID = 9

// computeLoop emits a multiply-accumulate loop over user memory: the
// "user computation" component.
func computeLoop(u *kernel.UserASM, label string, iters uint64) {
	u.MovImm(insn.X4, kernel.UserDataBase)
	u.MovImm(insn.X5, iters)
	u.A.Label(label)
	u.A.I(insn.LDR(insn.X6, insn.X4, 0))
	u.A.I(insn.MADD(insn.X7, insn.X6, insn.X5, insn.X7))
	u.A.I(insn.EORr(insn.X7, insn.X7, insn.X5))
	u.A.I(insn.ADDr(insn.X7, insn.X7, insn.X6))
	u.A.I(insn.STR(insn.X7, insn.X4, 8))
	u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
	u.A.CBNZ(insn.X5, label)
}

// Suite returns the three Figure 4 workloads.
func Suite() []Workload {
	return []Workload{
		{
			// JPEG resize: long filter kernels over pixel rows, with a
			// handful of reads to page the image in.
			Name: "JPEG resize",
			Build: func(u *kernel.UserASM) {
				u.Syscall(kernel.SysOpenat, 0, kernel.PathTmpFile, 0)
				u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
				// 24 rows: read one row, then heavy resampling compute.
				u.CounterLoop("rows", insn.X22, 24, func() {
					u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
					u.MovImm(insn.X1, kernel.UserDataBase)
					u.MovImm(insn.X2, 256)
					u.SyscallReg(kernel.SysRead)
					computeLoop(u, "resample", 2600)
				})
				u.SyscallReg(kernel.SysClose)
				u.Exit(0)
			},
			Setup: func(k *kernel.Kernel) {
				sector := make([]byte, 512)
				for i := range sector {
					sector[i] = byte(i * 31)
				}
				k.Blk.WriteSector(7, sector)
			},
		},
		{
			// Package build: per compilation unit, a stat + open + read
			// (source), parsing compute, a compiler child (fork+exec),
			// an object write and a close.
			Name:            "package build",
			NeedsExecTarget: true,
			Build: func(u *kernel.UserASM) {
				u.CounterLoop("units", insn.X22, 10, func() {
					u.Syscall(kernel.SysFstatat, 0, kernel.PathTmpFile)
					u.Syscall(kernel.SysOpenat, 0, kernel.PathTmpFile, 0)
					u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
					u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
					u.MovImm(insn.X1, kernel.UserDataBase)
					u.MovImm(insn.X2, 512)
					u.SyscallReg(kernel.SysRead)
					// Parse/codegen compute.
					computeLoop(u, "parse", 900)
					// Spawn the compiler (fork + exec + wait-by-yield).
					u.SyscallReg(kernel.SysClone)
					u.A.CBNZ(insn.X0, "parent")
					u.Syscall(kernel.SysExecve, ExecTargetProgID)
					u.Exit(1)
					u.A.Label("parent")
					u.SyscallReg(kernel.SysSchedYield)
					// Write the object file and close.
					u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
					u.MovImm(insn.X1, kernel.UserDataBase)
					u.MovImm(insn.X2, 512)
					u.SyscallReg(kernel.SysWrite)
					u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
					u.SyscallReg(kernel.SysClose)
				})
				u.Exit(0)
			},
			Setup: func(k *kernel.Kernel) {
				k.Blk.WriteSector(7, make([]byte, 512))
			},
		},
		{
			// Network download: drain queued packets through the socket
			// receive path, checksumming each buffer (mostly kernel).
			Name: "network download",
			Build: func(u *kernel.UserASM) {
				u.Syscall(kernel.SysOpenat, 0, kernel.PathSocket, 0)
				u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
				u.A.Label("recv")
				u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
				u.MovImm(insn.X1, kernel.UserDataBase)
				u.MovImm(insn.X2, 1024)
				u.SyscallReg(kernel.SysRead)
				u.A.CBZ(insn.X0, "done") // EOF: queue drained
				// Light checksum over the received words.
				computeLoop(u, "csum", 60)
				u.A.B("recv")
				u.A.Label("done")
				u.SyscallReg(kernel.SysClose)
				u.Exit(0)
			},
			Setup: func(k *kernel.Kernel) {
				pkt := make([]byte, 1024)
				for i := range pkt {
					pkt[i] = byte(i)
				}
				for n := 0; n < 100; n++ {
					k.Net.InjectPacket(pkt)
				}
			},
		},
	}
}

// Result is one Figure 4 measurement.
type Result struct {
	Workload string
	Level    string
	Cycles   uint64
	// Relative is Cycles divided by the baseline build's cycles (filled
	// by RunSuite).
	Relative float64
}

// Run executes one workload under one configuration on a pristine
// machine from the shared snapshot pool (one boot per configuration,
// then copy-on-write forks/resets; Setup runs on the fork, after the
// snapshot point, so it never leaks between cells).
func Run(cfg func() *codegen.Config, level string, w Workload) (Result, error) {
	opts := kernel.Options{Config: cfg(), Seed: 99}
	m, err := snapshot.Shared.Acquire(snapshot.KeyFor(opts), snapshot.BootOptions(opts))
	if err != nil {
		return Result{}, err
	}
	defer m.Release()
	k := m.K
	if w.Setup != nil {
		w.Setup(k)
	}
	prog, err := kernel.BuildProgram(w.Name, w.Build)
	if err != nil {
		return Result{}, err
	}
	k.RegisterProgram(1, prog)
	if w.NeedsExecTarget {
		tgt, err := kernel.BuildProgram("cc1", func(u *kernel.UserASM) {
			// The "compiler": a short burst of compute, then exit.
			computeLoop(u, "cc1work", 300)
			u.Exit(0)
		})
		if err != nil {
			return Result{}, err
		}
		k.RegisterProgram(ExecTargetProgID, tgt)
	}
	if _, err := k.Spawn(1); err != nil {
		return Result{}, err
	}
	start := k.CPU.Cycles
	stop := k.Run(2_000_000_000)
	if stop.Kind != cpu.StopHLT {
		return Result{}, fmt.Errorf("workload %s: no halt: %+v", w.Name, stop)
	}
	return Result{Workload: w.Name, Level: level, Cycles: k.CPU.Cycles - start}, nil
}

// RunSuite measures all workloads under the three Figure 4 levels and
// fills in relative costs.
func RunSuite() ([]Result, error) { return runSuite(false, 1) }

// RunSuiteParallel is RunSuite with one goroutine per (workload, level)
// cell, each on its own isolated machine (a copy-on-write fork from the
// warm pool). Relative costs are filled in afterwards from the completed
// grid, so results match RunSuite exactly.
func RunSuiteParallel() ([]Result, error) { return runSuite(true, 1) }

// RunSuiteCPUs is RunSuite on machines with the given vCPU count.
func RunSuiteCPUs(parallel bool, cpus int) ([]Result, error) {
	return runSuite(parallel, cpus)
}

func runSuite(parallel bool, cpus int) ([]Result, error) {
	levels := []struct {
		Name string
		Cfg  func() *codegen.Config
	}{
		{"none", codegen.ConfigNone},
		{"backward-edge", codegen.ConfigBackward},
		{"full", codegen.ConfigFull},
	}
	workloads := Suite()
	out := make([]Result, len(workloads)*len(levels))
	err := snapshot.ForEach(len(out), parallel, func(idx int) error {
		w := workloads[idx/len(levels)]
		lv := levels[idx%len(levels)]
		var err error
		out[idx], err = Run(codegen.WithCPUs(lv.Cfg, cpus), lv.Name, w)
		return err
	})
	if err != nil {
		return nil, err
	}
	base := map[string]uint64{}
	for i, r := range out {
		if r.Level == "none" {
			base[out[i].Workload] = r.Cycles
		}
	}
	for i := range out {
		out[i].Relative = float64(out[i].Cycles) / float64(base[out[i].Workload])
	}
	return out, nil
}

// GeoMeanOverhead returns the geometric-mean relative cost of one level
// across workloads (the paper's "geometric mean of the overhead drops to
// less than 4%").
func GeoMeanOverhead(results []Result, level string) float64 {
	prod := 1.0
	n := 0
	for _, r := range results {
		if r.Level == level {
			prod *= r.Relative
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}
