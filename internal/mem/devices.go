package mem

import (
	"bytes"
	"fmt"
)

// UART register offsets (a PL011-flavoured console).
const (
	UARTTx     = 0x00 // write: transmit one byte
	UARTStatus = 0x18 // read: bit 0 = TX ready (always set)
)

// UART is a write-only console device; transmitted bytes accumulate in an
// internal buffer readable by the host.
type UART struct {
	buf bytes.Buffer
}

// Name implements Device.
func (u *UART) Name() string { return "uart" }

// Load implements Device.
func (u *UART) Load(offset uint64, size int) (uint64, error) {
	switch offset {
	case UARTStatus:
		return 1, nil
	}
	return 0, nil
}

// Store implements Device.
func (u *UART) Store(offset uint64, size int, v uint64) error {
	if offset == UARTTx {
		u.buf.WriteByte(byte(v))
	}
	return nil
}

// Output returns everything written to the console so far.
func (u *UART) Output() string { return u.buf.String() }

// Reset clears the console buffer.
func (u *UART) Reset() { u.buf.Reset() }

// CaptureState snapshots the console buffer for machine forking.
func (u *UART) CaptureState() []byte {
	return append([]byte(nil), u.buf.Bytes()...)
}

// RestoreState rewinds the console to a captured snapshot.
func (u *UART) RestoreState(b []byte) {
	u.buf.Reset()
	u.buf.Write(b)
}

// NetDev register offsets. The device is a deliberately simple
// descriptor-free NIC: the driver reads whole packets a word at a time.
// It exists so that the "network download" workload of Figure 4 exercises
// a real kernel receive path.
const (
	NetRxAvail = 0x00 // read: bytes available in current packet (0 = none)
	NetRxData  = 0x08 // read: next 8 bytes of packet payload
	NetRxDone  = 0x10 // write: packet consumed
	NetTxData  = 0x18 // write: transmit 8 payload bytes
	NetStats   = 0x20 // read: packets received so far
)

// NetDev models a NIC with a host-fed receive queue.
type NetDev struct {
	rx      [][]byte
	rxOff   int
	rxCount uint64
	txBytes uint64
}

// Name implements Device.
func (n *NetDev) Name() string { return "net" }

// InjectPacket queues a packet for the guest to receive.
func (n *NetDev) InjectPacket(p []byte) {
	cp := make([]byte, len(p))
	copy(cp, p)
	n.rx = append(n.rx, cp)
}

// QueuedPackets returns the number of undelivered packets.
func (n *NetDev) QueuedPackets() int { return len(n.rx) }

// TxBytes returns the number of payload bytes the guest transmitted.
func (n *NetDev) TxBytes() uint64 { return n.txBytes }

// Load implements Device.
func (n *NetDev) Load(offset uint64, size int) (uint64, error) {
	switch offset {
	case NetRxAvail:
		if len(n.rx) == 0 {
			return 0, nil
		}
		return uint64(len(n.rx[0]) - n.rxOff), nil
	case NetRxData:
		if len(n.rx) == 0 {
			return 0, nil
		}
		var v uint64
		p := n.rx[0]
		for i := 0; i < 8 && n.rxOff+i < len(p); i++ {
			v |= uint64(p[n.rxOff+i]) << (8 * i)
		}
		n.rxOff += 8
		return v, nil
	case NetStats:
		return n.rxCount, nil
	}
	return 0, nil
}

// Store implements Device.
func (n *NetDev) Store(offset uint64, size int, v uint64) error {
	switch offset {
	case NetRxDone:
		if len(n.rx) > 0 {
			n.rx = n.rx[1:]
			n.rxOff = 0
			n.rxCount++
		}
	case NetTxData:
		n.txBytes += 8
	}
	return nil
}

// NetDevState is a captured NetDev snapshot. Packet payloads are shared
// between the snapshot and every restore target — Load never mutates
// them — but slice headers are trimmed to capacity so post-restore
// InjectPacket appends cannot alias across forks.
type NetDevState struct {
	rx      [][]byte
	rxOff   int
	rxCount uint64
	txBytes uint64
}

// CaptureState snapshots the receive queue and counters.
func (n *NetDev) CaptureState() NetDevState {
	return NetDevState{
		rx:      n.rx[:len(n.rx):len(n.rx)],
		rxOff:   n.rxOff,
		rxCount: n.rxCount,
		txBytes: n.txBytes,
	}
}

// RestoreState rewinds the device to a captured snapshot.
func (n *NetDev) RestoreState(st NetDevState) {
	n.rx = st.rx[:len(st.rx):len(st.rx)]
	n.rxOff = st.rxOff
	n.rxCount = st.rxCount
	n.txBytes = st.txBytes
}

// BlockDev register offsets: a single-sector-at-a-time programmed-IO disk.
const (
	BlkSector = 0x00 // write: select sector
	BlkData   = 0x08 // read/write: 8 bytes at current offset, auto-advance
	BlkReset  = 0x10 // write: rewind intra-sector offset
)

// SectorSize is the disk sector size in bytes.
const SectorSize = 512

// BlockDev models the PIO disk backing the file system.
type BlockDev struct {
	sectors map[uint64]*[SectorSize]byte
	cur     uint64
	off     int

	// Reads and Writes count 8-byte transfers, for workload accounting.
	Reads, Writes uint64
}

// NewBlockDev returns an empty disk.
func NewBlockDev() *BlockDev {
	return &BlockDev{sectors: make(map[uint64]*[SectorSize]byte)}
}

// Name implements Device.
func (b *BlockDev) Name() string { return "blk" }

// BlockDevState is a captured BlockDev snapshot (sector contents are
// deep-copied: guest stores mutate them in place).
type BlockDevState struct {
	sectors map[uint64]*[SectorSize]byte
	cur     uint64
	off     int
	reads   uint64
	writes  uint64
}

// CaptureState snapshots the disk contents and transfer counters.
func (b *BlockDev) CaptureState() BlockDevState {
	sectors := make(map[uint64]*[SectorSize]byte, len(b.sectors))
	for n, s := range b.sectors {
		cp := *s
		sectors[n] = &cp
	}
	return BlockDevState{sectors: sectors, cur: b.cur, off: b.off, reads: b.Reads, writes: b.Writes}
}

// RestoreState rewinds the disk to a captured snapshot.
func (b *BlockDev) RestoreState(st BlockDevState) {
	b.sectors = make(map[uint64]*[SectorSize]byte, len(st.sectors))
	for n, s := range st.sectors {
		cp := *s
		b.sectors[n] = &cp
	}
	b.cur = st.cur
	b.off = st.off
	b.Reads = st.reads
	b.Writes = st.writes
}

func (b *BlockDev) sector(n uint64) *[SectorSize]byte {
	s := b.sectors[n]
	if s == nil {
		s = new([SectorSize]byte)
		b.sectors[n] = s
	}
	return s
}

// WriteSector fills a sector from the host side.
func (b *BlockDev) WriteSector(n uint64, data []byte) {
	copy(b.sector(n)[:], data)
}

// ReadSector returns a copy of a sector for the host side.
func (b *BlockDev) ReadSector(n uint64) []byte {
	out := make([]byte, SectorSize)
	copy(out, b.sector(n)[:])
	return out
}

// Load implements Device.
func (b *BlockDev) Load(offset uint64, size int) (uint64, error) {
	if offset != BlkData {
		return 0, nil
	}
	s := b.sector(b.cur)
	var v uint64
	for i := 0; i < 8 && b.off+i < SectorSize; i++ {
		v |= uint64(s[b.off+i]) << (8 * i)
	}
	b.off = (b.off + 8) % SectorSize
	b.Reads++
	return v, nil
}

// Store implements Device.
func (b *BlockDev) Store(offset uint64, size int, v uint64) error {
	switch offset {
	case BlkSector:
		b.cur = v
		b.off = 0
	case BlkReset:
		b.off = 0
	case BlkData:
		s := b.sector(b.cur)
		for i := 0; i < 8 && b.off+i < SectorSize; i++ {
			s[b.off+i] = byte(v >> (8 * i))
		}
		b.off = (b.off + 8) % SectorSize
		b.Writes++
	default:
		return fmt.Errorf("blk: bad store offset %#x", offset)
	}
	return nil
}
