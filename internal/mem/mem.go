// Package mem models the physical memory system of the simulated machine:
// sparse byte-addressable RAM plus a physical bus with memory-mapped device
// windows (UART console, a virtio-like network device and a block device).
// All multi-byte accesses are little-endian, as on AArch64 Linux.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"camouflage/internal/obs"
)

// PageSize is the physical page granule (4 KiB, the configuration of the
// paper's Appendix A).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Phys is sparse physical RAM with copy-on-write forking. Pages live in
// two layers: an immutable shared base (installed by Freeze or by forking
// from a Frozen snapshot) and a private overlay of pages this Phys has
// written since. Reads fall through the overlay to the base; the first
// write to a page copies it into the overlay. The zero value of the
// overlay-only form is ready to use: pages are allocated on first touch
// and read as zero before any write.
type Phys struct {
	// pages is the private, writable overlay.
	pages map[uint64]*[PageSize]byte
	// base is the immutable copy-on-write base (nil before any Freeze).
	// Base pages are shared between every Phys forked from the same
	// Frozen and must never be written through.
	base map[uint64]*[PageSize]byte
	// gen is the host-pointer generation. Any event that can change which
	// backing array serves an address bumps it: Freeze (overlay pages are
	// promoted into a shared base that must never be written through),
	// ResetTo (the overlay is dropped and the base repointed), and every
	// copy-on-write materialization or first-touch allocation (a page's
	// backing array changes from the shared base copy, or from implicit
	// zeroes, to a fresh private array). A cached *[PageSize]byte obtained
	// from PageForLoad/PageForStore is valid only while gen is unchanged.
	// It is an atomically published cell: on an SMP machine every CPU's
	// host-pointer TLB validates against the one shared generation, so a
	// copy-on-write materialization triggered by CPU 0 invalidates warm
	// pointers on CPU 1 at its next probe (the memory-side half of the
	// DESIGN.md §9 shootdown protocol).
	gen atomic.Uint64

	// parallel engages the page-map lock for truly-parallel SMP runs. It
	// is flipped only while no guest goroutine is running (before the
	// parallel phase starts, after it joins), so the single-goroutine
	// fast paths stay branch-only: deterministic runs never lock.
	parallel bool
	mu       sync.RWMutex
}

// SetParallel engages (or releases) concurrent-access mode: page-map
// lookups and copy-on-write materializations take an internal lock so
// multiple CPU goroutines may fault pages in simultaneously. Must only
// be called while no guest code is executing.
func (p *Phys) SetParallel(on bool) { p.parallel = on }

// NewPhys returns an empty physical memory.
func NewPhys() *Phys {
	return &Phys{pages: make(map[uint64]*[PageSize]byte)}
}

// Frozen is an immutable page store captured by Freeze: the copy-on-write
// base shared by every Phys forked from the same snapshot.
type Frozen struct {
	pages map[uint64]*[PageSize]byte
}

// Pages returns the number of pages in the frozen store.
func (f *Frozen) Pages() int { return len(f.pages) }

// Freeze promotes the current contents into a new immutable base and
// clears the overlay, returning the base as a Frozen snapshot. The Phys
// keeps running on top of it copy-on-write, so freezing a live machine is
// safe: its later writes land in the fresh overlay, never in the
// snapshot. Cost is O(populated pages) for the merge, zero copying.
func (p *Phys) Freeze() *Frozen {
	merged := make(map[uint64]*[PageSize]byte, len(p.base)+len(p.pages))
	for pn, pg := range p.base {
		merged[pn] = pg
	}
	for pn, pg := range p.pages {
		merged[pn] = pg
	}
	p.base = merged
	p.pages = make(map[uint64]*[PageSize]byte)
	p.gen.Add(1)
	return &Frozen{pages: merged}
}

// NewPhysFrom returns a fresh Phys backed copy-on-write by the frozen
// store: O(1), no pages are copied until written.
func NewPhysFrom(f *Frozen) *Phys {
	return &Phys{pages: make(map[uint64]*[PageSize]byte), base: f.pages}
}

// ResetTo rewinds the Phys to exactly the frozen store's contents,
// discarding every page written since (O(1) beyond garbage): the overlay
// is dropped and the base repointed, so intervening Freezes do not stick.
func (p *Phys) ResetTo(f *Frozen) {
	p.base = f.pages
	p.pages = make(map[uint64]*[PageSize]byte)
	p.gen.Add(1)
}

// DirtyPages returns the number of overlay pages written since the last
// Freeze/ResetTo (the copy-on-write cost a Reset reclaims).
func (p *Phys) DirtyPages() int { return len(p.pages) }

// page returns the page containing addr. With create=false the lookup
// falls through to the copy-on-write base and may return nil (read as
// zero); with create=true the page is copied up into the private overlay
// so the caller may write through it.
//
//camo:hotpath
func (p *Phys) page(addr uint64, create bool) *[PageSize]byte {
	pn := addr >> PageShift
	if p.parallel {
		return p.pageLocked(pn, create)
	}
	if pg := p.pages[pn]; pg != nil {
		return pg
	}
	shared := p.base[pn]
	if !create {
		return shared
	}
	pg := new([PageSize]byte) //camo:alloc copy-on-write materialization; once per page per fork
	if shared != nil {
		*pg = *shared
	}
	p.pages[pn] = pg
	p.gen.Add(1)
	obs.Add(obs.CCOWMaterialize, 1)
	return pg
}

// pageLocked is page() under the parallel-mode lock. Reads share an
// RLock; copy-on-write materialization takes the write lock and
// re-checks the overlay, so two cores faulting the same page race to
// one canonical copy instead of losing writes to a double insert.
//
//camo:hotpath
func (p *Phys) pageLocked(pn uint64, create bool) *[PageSize]byte {
	p.mu.RLock()
	pg := p.pages[pn]
	p.mu.RUnlock()
	if pg != nil {
		return pg
	}
	if !create {
		// base is immutable while guest goroutines run (Freeze/ResetTo
		// are forbidden mid-phase), so the fall-through needs no lock.
		return p.base[pn]
	}
	p.mu.Lock()
	defer p.mu.Unlock() //camo:alloc deferred unlock sits on the materialize slow path only
	if pg := p.pages[pn]; pg != nil {
		return pg
	}
	pg = new([PageSize]byte) //camo:alloc copy-on-write materialization; once per page per fork
	if shared := p.base[pn]; shared != nil {
		*pg = *shared
	}
	p.pages[pn] = pg
	p.gen.Add(1)
	obs.Add(obs.CCOWMaterialize, 1)
	return pg
}

// Gen returns the host-pointer generation. Cached page pointers are
// valid only while it is unchanged (see the gen field's doc).
func (p *Phys) Gen() uint64 { return p.gen.Load() }

// PageForLoad returns the backing page for reads of the page containing
// addr — possibly a shared copy-on-write base page — or nil when the
// page has never been touched (reads as zero). The pointer is valid
// until the next Gen bump; callers caching it must revalidate.
func (p *Phys) PageForLoad(addr uint64) *[PageSize]byte {
	return p.page(addr, false)
}

// PageForStore returns the private writable page containing addr,
// materializing a copy-on-write copy (or a fresh zero page) on first
// touch — which itself bumps Gen, so callers must read Gen after this
// call when caching the pointer.
func (p *Phys) PageForStore(addr uint64) *[PageSize]byte {
	return p.page(addr, true)
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (p *Phys) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		pg := p.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (PageSize - 1))
		chunk := PageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if pg != nil {
			copy(out[i:i+chunk], pg[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// AppendBytes appends n bytes starting at addr to dst and returns the
// extended slice: ReadBytes without the intermediate allocation. The only
// allocation is dst's own growth, which amortizes away for a reused
// buffer (the kernel's pipe fast path).
func (p *Phys) AppendBytes(dst []byte, addr uint64, n int) []byte {
	for i := 0; i < n; {
		pg := p.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (PageSize - 1))
		chunk := PageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if pg != nil {
			dst = append(dst, pg[off:off+chunk]...)
		} else {
			dst = append(dst, zeroPage[:chunk]...)
		}
		i += chunk
	}
	return dst
}

// zeroPage backs AppendBytes reads of never-touched pages.
var zeroPage [PageSize]byte

// WriteBytes copies b into memory starting at addr.
func (p *Phys) WriteBytes(addr uint64, b []byte) {
	for i := 0; i < len(b); {
		pg := p.page(addr+uint64(i), true)
		off := int((addr + uint64(i)) & (PageSize - 1))
		chunk := PageSize - off
		if chunk > len(b)-i {
			chunk = len(b) - i
		}
		copy(pg[off:off+chunk], b[i:i+chunk])
		i += chunk
	}
}

// readSlow assembles an n-byte little-endian value byte by byte: the
// allocation-free fallback for absent pages (read as zero) and accesses
// straddling a page boundary.
func (p *Phys) readSlow(addr uint64, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(p.Read8(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Read64 loads a little-endian 64-bit value.
//
//camo:hotpath
func (p *Phys) Read64(addr uint64) uint64 {
	if addr&(PageSize-1) <= PageSize-8 {
		if pg := p.page(addr, false); pg != nil {
			off := addr & (PageSize - 1)
			return binary.LittleEndian.Uint64(pg[off : off+8])
		}
		return 0
	}
	return p.readSlow(addr, 8)
}

// Write64 stores a little-endian 64-bit value.
//
//camo:hotpath
func (p *Phys) Write64(addr uint64, v uint64) {
	if addr&(PageSize-1) <= PageSize-8 {
		pg := p.page(addr, true)
		off := addr & (PageSize - 1)
		binary.LittleEndian.PutUint64(pg[off:off+8], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.WriteBytes(addr, b[:])
}

// Read32 loads a little-endian 32-bit value.
//
//camo:hotpath
func (p *Phys) Read32(addr uint64) uint32 {
	if addr&(PageSize-1) <= PageSize-4 {
		if pg := p.page(addr, false); pg != nil {
			off := addr & (PageSize - 1)
			return binary.LittleEndian.Uint32(pg[off : off+4])
		}
		return 0
	}
	return uint32(p.readSlow(addr, 4))
}

// Write32 stores a little-endian 32-bit value.
//
//camo:hotpath
func (p *Phys) Write32(addr uint64, v uint32) {
	if addr&(PageSize-1) <= PageSize-4 {
		pg := p.page(addr, true)
		off := addr & (PageSize - 1)
		binary.LittleEndian.PutUint32(pg[off:off+4], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.WriteBytes(addr, b[:])
}

// Read8 loads one byte.
//
//camo:hotpath
func (p *Phys) Read8(addr uint64) byte {
	if pg := p.page(addr, false); pg != nil {
		return pg[addr&(PageSize-1)]
	}
	return 0
}

// Write8 stores one byte.
//
//camo:hotpath
func (p *Phys) Write8(addr uint64, v byte) {
	p.page(addr, true)[addr&(PageSize-1)] = v
}

// PopulatedPages returns the number of RAM pages that have been touched
// (distinct pages across the copy-on-write base and the overlay).
func (p *Phys) PopulatedPages() int {
	n := len(p.pages)
	for pn := range p.base {
		if _, shadowed := p.pages[pn]; !shadowed {
			n++
		}
	}
	return n
}

// Device is a memory-mapped peripheral. Offsets are relative to the
// device's bus window. Accesses are 1, 4 or 8 bytes wide.
type Device interface {
	// Name identifies the device in diagnostics.
	Name() string
	// Load reads size bytes at offset.
	Load(offset uint64, size int) (uint64, error)
	// Store writes size bytes at offset.
	Store(offset uint64, size int, v uint64) error
}

// mapping is one device window on the bus.
type mapping struct {
	base uint64
	size uint64
	dev  Device
}

// Bus routes physical accesses to RAM or to device windows. On an SMP
// machine one Bus is shared by every CPU.
type Bus struct {
	RAM  *Phys
	maps []mapping
	// last caches the most recently hit device window: device accesses
	// cluster (a driver hammers one window), so the cache short-circuits
	// the binary search. Invalidated by Map (the slice is re-sorted and
	// pointers into it move). It is an atomic pointer because the cache
	// index is *written on every lookup*: two CPUs of one machine — or
	// goroutines sharing a Bus any other way — would otherwise race on
	// it (caught by -race; pinned by TestSMPBusFindRace).
	last atomic.Pointer[mapping]

	// parallel engages devMu around every device access: devices (and
	// the kernel service layer behind the doorbell device) are not
	// internally synchronized, so truly-parallel SMP serializes them at
	// the bus. Flipped only while no guest goroutine runs.
	parallel bool
	devMu    sync.Mutex
}

// SetParallel engages (or releases) concurrent-access mode on the bus
// and its RAM. Must only be called while no guest code is executing.
func (b *Bus) SetParallel(on bool) {
	b.parallel = on
	b.RAM.SetParallel(on)
}

// DevLock acquires the parallel-mode device mutex — the lock under
// which every device access and kernel service handler runs. Hosts use
// it to read service-layer state (task tables, halt flags) while CPU
// goroutines are live. No-op locking discipline aside, it may be taken
// even when parallel mode is off.
func (b *Bus) DevLock() { b.devMu.Lock() }

// DevUnlock releases DevLock.
func (b *Bus) DevUnlock() { b.devMu.Unlock() }

// NewBus returns a bus backed by fresh RAM.
func NewBus() *Bus {
	return &Bus{RAM: NewPhys()}
}

// Map attaches a device at [base, base+size). Windows must not overlap.
func (b *Bus) Map(base, size uint64, dev Device) error {
	for _, m := range b.maps {
		if base < m.base+m.size && m.base < base+size {
			return fmt.Errorf("mem: window %#x+%#x overlaps %s", base, size, m.dev.Name())
		}
	}
	b.maps = append(b.maps, mapping{base, size, dev})
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].base < b.maps[j].base })
	b.last.Store(nil)
	// Mapping a window changes address routing: any host pointer cached
	// for a page the window now overlaps must die, exactly like a
	// Freeze/ResetTo. Today windows are only mapped at construction, but
	// the invalidation contract should not depend on that.
	b.RAM.gen.Add(1)
	return nil
}

// find returns the device window containing addr, or nil for RAM.
// Windows are kept base-sorted by Map, so the lookup is a last-hit probe
// followed by binary search for the rightmost window at or below addr —
// O(log n) in the number of devices instead of the seed's linear scan.
func (b *Bus) find(addr uint64) *mapping {
	if m := b.last.Load(); m != nil && addr-m.base < m.size {
		return m
	}
	lo, hi := 0, len(b.maps)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.maps[mid].base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	m := &b.maps[lo-1]
	if addr-m.base < m.size {
		b.last.Store(m)
		return m
	}
	return nil
}

// findOverlap reports whether any device window overlaps [lo, hi).
func (b *Bus) findOverlap(lo, hi uint64) bool {
	for i := range b.maps {
		m := &b.maps[i]
		if lo < m.base+m.size && m.base < hi {
			return true
		}
	}
	return false
}

// Load reads size bytes (1, 4 or 8) at physical address addr.
func (b *Bus) Load(addr uint64, size int) (uint64, error) {
	if m := b.find(addr); m != nil {
		if b.parallel {
			b.devMu.Lock()
			defer b.devMu.Unlock()
		}
		return m.dev.Load(addr-m.base, size)
	}
	switch size {
	case 1:
		return uint64(b.RAM.Read8(addr)), nil
	case 4:
		return uint64(b.RAM.Read32(addr)), nil
	case 8:
		return b.RAM.Read64(addr), nil
	}
	return 0, fmt.Errorf("mem: bad load size %d", size)
}

// PageForLoad returns the RAM page backing the page containing pa for
// the host-pointer fast path, or nil when the page has never been
// touched or any device window overlaps it — device-mapped ranges never
// get a host pointer and must keep taking the Load/Store path.
func (b *Bus) PageForLoad(pa uint64) *[PageSize]byte {
	page := pa &^ uint64(PageSize-1)
	if b.findOverlap(page, page+PageSize) {
		return nil
	}
	return b.RAM.PageForLoad(pa)
}

// PageForStore is PageForLoad for writes: it returns the private
// writable page (materializing a copy-on-write copy, which bumps
// MemGen), or nil when a device window overlaps the page.
func (b *Bus) PageForStore(pa uint64) *[PageSize]byte {
	page := pa &^ uint64(PageSize-1)
	if b.findOverlap(page, page+PageSize) {
		return nil
	}
	return b.RAM.PageForStore(pa)
}

// MemGen returns the RAM host-pointer generation (see Phys.Gen). Callers
// that swap b.RAM wholesale must flush any cache keyed by this value
// themselves (the kernel snapshot paths do, via MMU.InvalidateTLBAll).
func (b *Bus) MemGen() uint64 { return b.RAM.gen.Load() }

// Store writes size bytes (1, 4 or 8) at physical address addr.
func (b *Bus) Store(addr uint64, size int, v uint64) error {
	if m := b.find(addr); m != nil {
		if b.parallel {
			b.devMu.Lock()
			defer b.devMu.Unlock()
		}
		return m.dev.Store(addr-m.base, size, v)
	}
	switch size {
	case 1:
		b.RAM.Write8(addr, byte(v))
	case 4:
		b.RAM.Write32(addr, uint32(v))
	case 8:
		b.RAM.Write64(addr, v)
	default:
		return fmt.Errorf("mem: bad store size %d", size)
	}
	return nil
}
