package mem

import (
	"testing"
	"testing/quick"
)

func TestPhysReadWriteRoundTrip(t *testing.T) {
	p := NewPhys()
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr)
		p.Write64(a, v)
		return p.Read64(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhysZeroFill(t *testing.T) {
	p := NewPhys()
	if p.Read64(0x1234) != 0 || p.Read8(0xFFFF_FFFF) != 0 {
		t.Fatal("untouched memory not zero")
	}
	if p.PopulatedPages() != 0 {
		t.Fatal("reads must not allocate pages")
	}
}

func TestPhysCrossPage(t *testing.T) {
	p := NewPhys()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	p.Write64(addr, 0x1122334455667788)
	if got := p.Read64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page read = %#x", got)
	}
	if got := p.Read8(PageSize - 3); got != 0x88 {
		t.Fatalf("low byte = %#x", got)
	}
	if got := p.Read8(PageSize); got != 0x55 {
		t.Fatalf("page-start byte = %#x, want 0x55", got)
	}
}

func TestPhysBytes(t *testing.T) {
	p := NewPhys()
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	p.WriteBytes(100, data)
	got := p.ReadBytes(100, len(data))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestPhys32(t *testing.T) {
	p := NewPhys()
	p.Write32(8, 0xDEADBEEF)
	if got := p.Read32(8); got != 0xDEADBEEF {
		t.Fatalf("Read32 = %#x", got)
	}
	if got := p.Read64(8); got != 0xDEADBEEF {
		t.Fatalf("Read64 over Write32 = %#x", got)
	}
	// Little-endian layout.
	if p.Read8(8) != 0xEF || p.Read8(11) != 0xDE {
		t.Fatal("not little-endian")
	}
}

func TestBusRAMFallthrough(t *testing.T) {
	b := NewBus()
	if err := b.Store(0x1000, 8, 42); err != nil {
		t.Fatal(err)
	}
	v, err := b.Load(0x1000, 8)
	if err != nil || v != 42 {
		t.Fatalf("Load = (%d, %v)", v, err)
	}
	if _, err := b.Load(0, 3); err == nil {
		t.Error("bad size accepted")
	}
}

func TestBusDeviceWindow(t *testing.T) {
	b := NewBus()
	u := &UART{}
	if err := b.Map(0x0900_0000, 0x1000, u); err != nil {
		t.Fatal(err)
	}
	for _, c := range []byte("hi") {
		if err := b.Store(0x0900_0000+UARTTx, 1, uint64(c)); err != nil {
			t.Fatal(err)
		}
	}
	if u.Output() != "hi" {
		t.Fatalf("UART output = %q", u.Output())
	}
	st, _ := b.Load(0x0900_0000+UARTStatus, 4)
	if st != 1 {
		t.Fatalf("UART status = %d", st)
	}
	// Overlapping window rejected.
	if err := b.Map(0x0900_0800, 0x1000, &UART{}); err == nil {
		t.Error("overlapping map accepted")
	}
	// RAM unaffected next to the window.
	if err := b.Store(0x0901_0000, 8, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Load(0x0901_0000, 8); v != 7 {
		t.Fatal("RAM write adjacent to device window lost")
	}
}

func TestNetDev(t *testing.T) {
	n := &NetDev{}
	n.InjectPacket([]byte("0123456789AB")) // 12 bytes
	avail, _ := n.Load(NetRxAvail, 8)
	if avail != 12 {
		t.Fatalf("avail = %d", avail)
	}
	w1, _ := n.Load(NetRxData, 8)
	if w1 != 0x3736353433323130 {
		t.Fatalf("first word = %#x", w1)
	}
	w2, _ := n.Load(NetRxData, 8)
	if byte(w2) != '8' {
		t.Fatalf("second word low byte = %c", byte(w2))
	}
	if err := n.Store(NetRxDone, 8, 0); err != nil {
		t.Fatal(err)
	}
	if n.QueuedPackets() != 0 {
		t.Fatal("packet not consumed")
	}
	stats, _ := n.Load(NetStats, 8)
	if stats != 1 {
		t.Fatalf("stats = %d", stats)
	}
	if avail, _ := n.Load(NetRxAvail, 8); avail != 0 {
		t.Fatalf("avail after done = %d", avail)
	}
	_ = n.Store(NetTxData, 8, 0xFF)
	if n.TxBytes() != 8 {
		t.Fatalf("TxBytes = %d", n.TxBytes())
	}
}

func TestBlockDev(t *testing.T) {
	d := NewBlockDev()
	sector := make([]byte, SectorSize)
	for i := range sector {
		sector[i] = byte(i)
	}
	d.WriteSector(3, sector)

	_ = d.Store(BlkSector, 8, 3)
	w, _ := d.Load(BlkData, 8)
	if w != 0x0706050403020100 {
		t.Fatalf("first word = %#x", w)
	}
	// Guest write path.
	_ = d.Store(BlkSector, 8, 9)
	_ = d.Store(BlkData, 8, 0x4242424242424242)
	got := d.ReadSector(9)
	if got[0] != 0x42 || got[7] != 0x42 || got[8] != 0 {
		t.Fatalf("sector 9 = % x...", got[:9])
	}
	if d.Reads == 0 || d.Writes == 0 {
		t.Fatal("transfer counters not advancing")
	}
}
