package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPhysReadWriteRoundTrip(t *testing.T) {
	p := NewPhys()
	f := func(addr uint32, v uint64) bool {
		a := uint64(addr)
		p.Write64(a, v)
		return p.Read64(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhysZeroFill(t *testing.T) {
	p := NewPhys()
	if p.Read64(0x1234) != 0 || p.Read8(0xFFFF_FFFF) != 0 {
		t.Fatal("untouched memory not zero")
	}
	if p.PopulatedPages() != 0 {
		t.Fatal("reads must not allocate pages")
	}
}

func TestPhysCrossPage(t *testing.T) {
	p := NewPhys()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	p.Write64(addr, 0x1122334455667788)
	if got := p.Read64(addr); got != 0x1122334455667788 {
		t.Fatalf("cross-page read = %#x", got)
	}
	if got := p.Read8(PageSize - 3); got != 0x88 {
		t.Fatalf("low byte = %#x", got)
	}
	if got := p.Read8(PageSize); got != 0x55 {
		t.Fatalf("page-start byte = %#x, want 0x55", got)
	}
}

func TestPhysBytes(t *testing.T) {
	p := NewPhys()
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	p.WriteBytes(100, data)
	got := p.ReadBytes(100, len(data))
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], data[i])
		}
	}
}

func TestPhys32(t *testing.T) {
	p := NewPhys()
	p.Write32(8, 0xDEADBEEF)
	if got := p.Read32(8); got != 0xDEADBEEF {
		t.Fatalf("Read32 = %#x", got)
	}
	if got := p.Read64(8); got != 0xDEADBEEF {
		t.Fatalf("Read64 over Write32 = %#x", got)
	}
	// Little-endian layout.
	if p.Read8(8) != 0xEF || p.Read8(11) != 0xDE {
		t.Fatal("not little-endian")
	}
}

func TestBusRAMFallthrough(t *testing.T) {
	b := NewBus()
	if err := b.Store(0x1000, 8, 42); err != nil {
		t.Fatal(err)
	}
	v, err := b.Load(0x1000, 8)
	if err != nil || v != 42 {
		t.Fatalf("Load = (%d, %v)", v, err)
	}
	if _, err := b.Load(0, 3); err == nil {
		t.Error("bad size accepted")
	}
}

func TestBusDeviceWindow(t *testing.T) {
	b := NewBus()
	u := &UART{}
	if err := b.Map(0x0900_0000, 0x1000, u); err != nil {
		t.Fatal(err)
	}
	for _, c := range []byte("hi") {
		if err := b.Store(0x0900_0000+UARTTx, 1, uint64(c)); err != nil {
			t.Fatal(err)
		}
	}
	if u.Output() != "hi" {
		t.Fatalf("UART output = %q", u.Output())
	}
	st, _ := b.Load(0x0900_0000+UARTStatus, 4)
	if st != 1 {
		t.Fatalf("UART status = %d", st)
	}
	// Overlapping window rejected.
	if err := b.Map(0x0900_0800, 0x1000, &UART{}); err == nil {
		t.Error("overlapping map accepted")
	}
	// RAM unaffected next to the window.
	if err := b.Store(0x0901_0000, 8, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.Load(0x0901_0000, 8); v != 7 {
		t.Fatal("RAM write adjacent to device window lost")
	}
}

func TestNetDev(t *testing.T) {
	n := &NetDev{}
	n.InjectPacket([]byte("0123456789AB")) // 12 bytes
	avail, _ := n.Load(NetRxAvail, 8)
	if avail != 12 {
		t.Fatalf("avail = %d", avail)
	}
	w1, _ := n.Load(NetRxData, 8)
	if w1 != 0x3736353433323130 {
		t.Fatalf("first word = %#x", w1)
	}
	w2, _ := n.Load(NetRxData, 8)
	if byte(w2) != '8' {
		t.Fatalf("second word low byte = %c", byte(w2))
	}
	if err := n.Store(NetRxDone, 8, 0); err != nil {
		t.Fatal(err)
	}
	if n.QueuedPackets() != 0 {
		t.Fatal("packet not consumed")
	}
	stats, _ := n.Load(NetStats, 8)
	if stats != 1 {
		t.Fatalf("stats = %d", stats)
	}
	if avail, _ := n.Load(NetRxAvail, 8); avail != 0 {
		t.Fatalf("avail after done = %d", avail)
	}
	_ = n.Store(NetTxData, 8, 0xFF)
	if n.TxBytes() != 8 {
		t.Fatalf("TxBytes = %d", n.TxBytes())
	}
}

func TestBlockDev(t *testing.T) {
	d := NewBlockDev()
	sector := make([]byte, SectorSize)
	for i := range sector {
		sector[i] = byte(i)
	}
	d.WriteSector(3, sector)

	_ = d.Store(BlkSector, 8, 3)
	w, _ := d.Load(BlkData, 8)
	if w != 0x0706050403020100 {
		t.Fatalf("first word = %#x", w)
	}
	// Guest write path.
	_ = d.Store(BlkSector, 8, 9)
	_ = d.Store(BlkData, 8, 0x4242424242424242)
	got := d.ReadSector(9)
	if got[0] != 0x42 || got[7] != 0x42 || got[8] != 0 {
		t.Fatalf("sector 9 = % x...", got[:9])
	}
	if d.Reads == 0 || d.Writes == 0 {
		t.Fatal("transfer counters not advancing")
	}
}

// fixedDev is a minimal device whose loads return its id (routing tests).
type fixedDev struct{ id uint64 }

func (d *fixedDev) Name() string                                  { return "fixed" }
func (d *fixedDev) Load(offset uint64, size int) (uint64, error)  { return d.id, nil }
func (d *fixedDev) Store(offset uint64, size int, v uint64) error { return nil }

// TestBusManyDevices: with a large device population the binary-search
// find must route every access to the right window, leave the RAM holes
// between windows alone, and keep the first/last/boundary addresses
// exact (regression for the linear scan's replacement).
func TestBusManyDevices(t *testing.T) {
	b := NewBus()
	const n = 64
	const base, stride, size = uint64(0x0900_0000), uint64(0x10_000), uint64(0x1000)
	for i := uint64(0); i < n; i++ {
		if err := b.Map(base+i*stride, size, &fixedDev{id: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	// Every window routes to its own device, probed in an order that
	// defeats the last-hit cache (forward, backward, then alternating).
	probe := func(i uint64) {
		t.Helper()
		for _, off := range []uint64{0, size - 1} {
			v, err := b.Load(base+i*stride+off, 1)
			if err != nil || v != 100+i {
				t.Fatalf("device %d offset %#x: (%d, %v)", i, off, v, err)
			}
		}
	}
	for i := uint64(0); i < n; i++ {
		probe(i)
	}
	for i := uint64(n); i > 0; i-- {
		probe(i - 1)
	}
	for i := uint64(0); i < n/2; i++ {
		probe(i)
		probe(n - 1 - i)
	}
	// The RAM holes between and around the windows still hit RAM.
	for _, addr := range []uint64{
		0x1000,                          // far below the first window
		base - 8,                        // just below the first window
		base + size,                     // just past a window, inside the hole
		base + (n-1)*stride - 16,        // just below the last window
		base + (n-1)*stride + size + 64, // above everything
	} {
		if err := b.Store(addr, 8, addr); err != nil {
			t.Fatal(err)
		}
		if v, _ := b.Load(addr, 8); v != addr {
			t.Fatalf("RAM at %#x routed into a device window", addr)
		}
	}
}

// TestPhysHostPointerGen: the host-pointer generation moves on exactly
// the events that can change which array backs an address — first-touch
// materialization, copy-on-write materialization, Freeze and ResetTo —
// and the accessors hand out the right layer's page.
func TestPhysHostPointerGen(t *testing.T) {
	p := NewPhys()
	if pg := p.PageForLoad(0x1000); pg != nil {
		t.Fatal("untouched page has a load pointer")
	}
	g0 := p.Gen()
	st := p.PageForStore(0x1000)
	if st == nil {
		t.Fatal("PageForStore returned nil")
	}
	if p.Gen() == g0 {
		t.Fatal("first-touch materialization did not bump Gen")
	}
	st[8] = 0xAB
	if p.Read8(0x1008) != 0xAB {
		t.Fatal("write through host pointer not visible")
	}
	if p.PageForLoad(0x1000) != st {
		t.Fatal("load pointer should be the overlay page after a write")
	}

	// Freeze: the overlay page is promoted into the shared base; cached
	// pointers now alias the snapshot and must be invalidated.
	g1 := p.Gen()
	frozen := p.Freeze()
	if p.Gen() == g1 {
		t.Fatal("Freeze did not bump Gen")
	}
	// Loads may serve the (shared, read-only) base page; a store must
	// materialize a fresh private copy and bump Gen again.
	ld := p.PageForLoad(0x1000)
	if ld == nil || ld[8] != 0xAB {
		t.Fatal("post-freeze load pointer lost the page contents")
	}
	g2 := p.Gen()
	st2 := p.PageForStore(0x1000)
	if p.Gen() == g2 {
		t.Fatal("copy-on-write materialization did not bump Gen")
	}
	if st2 == ld {
		t.Fatal("post-freeze store pointer aliases the frozen base")
	}
	st2[8] = 0xCD
	if fork := NewPhysFrom(frozen); fork.Read8(0x1008) != 0xAB {
		t.Fatal("write after Freeze leaked into the frozen base")
	}

	// ResetTo rewinds the overlay; stale pointers die with it.
	g3 := p.Gen()
	p.ResetTo(frozen)
	if p.Gen() == g3 {
		t.Fatal("ResetTo did not bump Gen")
	}
	if p.Read8(0x1008) != 0xAB {
		t.Fatal("ResetTo did not restore the frozen contents")
	}
}

// TestBusHostPagesDeclineDevices: Bus.PageForLoad/PageForStore must
// refuse any page a device window overlaps — device state is never
// served through a flat-array pointer.
func TestBusHostPagesDeclineDevices(t *testing.T) {
	b := NewBus()
	if err := b.Map(0x0900_0000, 0x1000, &UART{}); err != nil {
		t.Fatal(err)
	}
	if b.PageForLoad(0x0900_0000+UARTTx) != nil {
		t.Fatal("device page handed out for load")
	}
	if b.PageForStore(0x0900_0000+UARTTx) != nil {
		t.Fatal("device page handed out for store")
	}
	// An adjacent pure-RAM page is still eligible.
	if b.PageForStore(0x0901_0000) == nil {
		t.Fatal("RAM page next to a device window refused")
	}
}

// TestSMPBusFindRace pins the Bus.find last-hit-cache fix: the cache
// slot is written on every lookup, so two CPUs of one SMP machine (or
// any goroutines sharing a Bus) racing through different device windows
// used to be a data race on the plain pointer field (caught by -race
// before the slot became atomic). The accesses alternate windows so
// every lookup both reads and overwrites the cache.
func TestSMPBusFindRace(t *testing.T) {
	b := NewBus()
	for i := uint64(0); i < 4; i++ {
		if err := b.Map(0x0900_0000+i*0x10000, 0x1000, &fixedDev{id: i}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				want := uint64((g + i) % 4)
				v, err := b.Load(0x0900_0000+want*0x10000, 8)
				if err != nil || v != want {
					t.Errorf("load via racing cache: v=%d err=%v want %d", v, err, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
