package mem

// Persistence hooks for the content-addressed snapshot store: the frozen
// copy-on-write base and the captured device states are the only
// mem-owned pieces of a kernel snapshot, and their internals are
// deliberately unexported. The store serializes through the explicit
// export/import surface below instead of reaching into them, keeping the
// copy-on-write invariants (base pages are never written through) intact
// for loaded snapshots exactly as for captured ones.

import "sort"

// ForEachPage calls f for every page of the frozen store in ascending
// page-number order — the deterministic iteration the store's
// content-addressed manifests require. The page arrays are the live
// copy-on-write base: callers must treat them as read-only.
func (f *Frozen) ForEachPage(fn func(pn uint64, pg *[PageSize]byte)) {
	pns := make([]uint64, 0, len(f.pages))
	for pn := range f.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	for _, pn := range pns {
		fn(pn, f.pages[pn])
	}
}

// NewFrozenFromPages builds a frozen store around the given pages. The
// map and its page arrays become the shared copy-on-write base of every
// Phys forked from the result: the caller must hand over ownership and
// never write them again (the snapshot-load path allocates them fresh
// from verified chunk contents).
func NewFrozenFromPages(pages map[uint64]*[PageSize]byte) *Frozen {
	if pages == nil {
		pages = make(map[uint64]*[PageSize]byte)
	}
	return &Frozen{pages: pages}
}

// NetDevWire is the exported wire form of a captured NetDev snapshot.
type NetDevWire struct {
	RX      [][]byte
	RXOff   int
	RXCount uint64
	TXBytes uint64
}

// Wire exports the captured state. Packet payloads are shared with the
// snapshot; callers serializing them must copy, not alias.
func (st NetDevState) Wire() NetDevWire {
	return NetDevWire{RX: st.rx, RXOff: st.rxOff, RXCount: st.rxCount, TXBytes: st.txBytes}
}

// State imports a wire form back into a restorable device snapshot.
func (w NetDevWire) State() NetDevState {
	return NetDevState{rx: w.RX, rxOff: w.RXOff, rxCount: w.RXCount, txBytes: w.TXBytes}
}

// BlockDevWire is the exported wire form of a captured BlockDev
// snapshot, with sectors in ascending order for deterministic encoding.
type BlockDevWire struct {
	Sectors []BlockSectorWire
	Cur     uint64
	Off     int
	Reads   uint64
	Writes  uint64
}

// BlockSectorWire is one disk sector.
type BlockSectorWire struct {
	N    uint64
	Data [SectorSize]byte
}

// Wire exports the captured state (sector contents copied by value).
func (st BlockDevState) Wire() BlockDevWire {
	w := BlockDevWire{Cur: st.cur, Off: st.off, Reads: st.reads, Writes: st.writes}
	ns := make([]uint64, 0, len(st.sectors))
	for n := range st.sectors {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	for _, n := range ns {
		w.Sectors = append(w.Sectors, BlockSectorWire{N: n, Data: *st.sectors[n]})
	}
	return w
}

// State imports a wire form back into a restorable device snapshot.
func (w BlockDevWire) State() BlockDevState {
	sectors := make(map[uint64]*[SectorSize]byte, len(w.Sectors))
	for i := range w.Sectors {
		cp := w.Sectors[i].Data
		sectors[w.Sectors[i].N] = &cp
	}
	return BlockDevState{sectors: sectors, cur: w.Cur, off: w.Off, reads: w.Reads, writes: w.Writes}
}
