// Package metriclint holds the Prometheus exposition naming rules
// shared by the cmd/metriclint exposition linter (which validates a
// live scrape) and the camovet obscounter analyzer (which validates the
// static obs.CounterID registry at vet time). One rule set, two
// enforcement points: a name that would fail a scrape fails the commit
// that introduced it.
package metriclint

import "strings"

// ValidName reports whether name is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidLabelName reports whether name is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]* and not a reserved __ prefix.
func ValidLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// FamilyOf strips the histogram/summary series suffixes so bucket, sum
// and count samples attach to their family's HELP/TYPE declaration.
func FamilyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suffix); ok {
			return f
		}
	}
	return name
}

// CounterName reports whether name follows the counter convention
// (valid metric name ending in _total).
func CounterName(name string) bool {
	return ValidName(name) && strings.HasSuffix(name, "_total")
}

// CheckLabels validates a pre-rendered label set without braces, the
// form the obs registry stores (`result="hit"` or
// `key="IA"` — comma-separated k="v" pairs; empty means no labels).
// It returns "" when well-formed, or a description of the first
// problem.
func CheckLabels(labels string) string {
	if labels == "" {
		return ""
	}
	for _, pair := range splitLabelPairs(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return "label pair " + pair + " lacks '='"
		}
		if !ValidLabelName(k) {
			return "illegal label name " + k
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return "label value for " + k + " is not quoted"
		}
		inner := v[1 : len(v)-1]
		if strings.ContainsAny(inner, `"\`+"\n") {
			return "label value for " + k + " contains unescaped quote, backslash or newline"
		}
	}
	return ""
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(labels string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, strings.TrimSpace(b.String()))
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	out = append(out, strings.TrimSpace(b.String()))
	return out
}
