package metriclint

import "testing"

func TestValidName(t *testing.T) {
	good := []string{"camo_retired_total", "a", "_x", "ns:sub_total", "A9"}
	bad := []string{"", "9lives", "bad-name", "has space", "é"}
	for _, n := range good {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
}

func TestValidLabelName(t *testing.T) {
	good := []string{"result", "key", "a_b9"}
	bad := []string{"", "__reserved", "9x", "k-v", "with:colon"}
	for _, n := range good {
		if !ValidLabelName(n) {
			t.Errorf("ValidLabelName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if ValidLabelName(n) {
			t.Errorf("ValidLabelName(%q) = true, want false", n)
		}
	}
}

func TestFamilyOf(t *testing.T) {
	cases := map[string]string{
		"camo_lat_seconds_bucket": "camo_lat_seconds",
		"camo_lat_seconds_sum":    "camo_lat_seconds",
		"camo_lat_seconds_count":  "camo_lat_seconds",
		"camo_retired_total":      "camo_retired_total",
	}
	for in, want := range cases {
		if got := FamilyOf(in); got != want {
			t.Errorf("FamilyOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCounterName(t *testing.T) {
	if !CounterName("camo_retired_total") {
		t.Error("legal counter name rejected")
	}
	for _, n := range []string{"camo_retired", "1bad_total", ""} {
		if CounterName(n) {
			t.Errorf("CounterName(%q) = true, want false", n)
		}
	}
}

func TestCheckLabels(t *testing.T) {
	if p := CheckLabels(""); p != "" {
		t.Errorf("empty labels: %q", p)
	}
	if p := CheckLabels(`result="hit"`); p != "" {
		t.Errorf("single pair: %q", p)
	}
	if p := CheckLabels(`result="hit",key="IA"`); p != "" {
		t.Errorf("two pairs: %q", p)
	}
	if p := CheckLabels(`v="a,b"`); p != "" {
		t.Errorf("comma inside quotes: %q", p)
	}
	for labels, wantSub := range map[string]string{
		"noequals":     "lacks '='",
		`__r="x"`:      "illegal label name",
		`k=unquoted`:   "not quoted",
		`k="broken`:    "not quoted",
		"k=\"a\nb\"":   "unescaped",
		`k="back\slh"`: "unescaped",
	} {
		p := CheckLabels(labels)
		if p == "" {
			t.Errorf("CheckLabels(%q) passed, want problem containing %q", labels, wantSub)
		}
	}
}
