package kernel

import (
	"testing"

	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/pac"
)

// bootKernel builds and boots a kernel with the given config.
func bootKernel(t *testing.T, cfg *codegen.Config) *Kernel {
	t.Helper()
	k, err := New(Options{Config: cfg, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootInstallsKernelKeys(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	for _, id := range boot.KernelKeys {
		if got := k.CPU.Signer.Key(id); got != k.KernelKeysForTest().Keys[id] {
			t.Fatalf("key %v not installed by XOM setter", id)
		}
	}
	if !k.Hyp.LockedDown() {
		t.Fatal("hypervisor not locked down after boot")
	}
	if k.BootCycles == 0 {
		t.Fatal("boot consumed no cycles")
	}
}

func TestBootSignsStaticWork(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	workPA := KVAToPA(DataBase) + StaticWorkOffset
	signed := k.CPU.Bus.RAM.Read64(workPA + WorkFunc)
	raw := k.Img.Symbols["work_handler"]
	if signed == raw {
		t.Fatal("static work pointer left unsigned after early boot (§4.6)")
	}
	mod := pac.ObjectModifier(DataBase+StaticWorkOffset, tcWorkFunc)
	got, ok := k.CPU.Signer.Auth(signed, mod, pac.KeyIA)
	if !ok || got != raw {
		t.Fatalf("static work pointer does not authenticate: (%#x, %v)", got, ok)
	}
}

func TestBaselineBootSkipsSigning(t *testing.T) {
	k := bootKernel(t, codegen.ConfigNone())
	workPA := KVAToPA(DataBase) + StaticWorkOffset
	if got := k.CPU.Bus.RAM.Read64(workPA + WorkFunc); got != k.Img.Symbols["work_handler"] {
		t.Fatalf("baseline build signed the static pointer: %#x", got)
	}
}

// runProgram boots, spawns and runs a single program to completion.
func runProgram(t *testing.T, cfg *codegen.Config, build func(u *UserASM)) *Kernel {
	t.Helper()
	k := bootKernel(t, cfg)
	prog, err := BuildProgram("test", build)
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	stop := k.Run(50_000_000)
	if stop.Kind != cpu.StopHLT {
		t.Fatalf("did not halt: %+v (PC=%#x)", stop, k.CPU.PC)
	}
	return k
}

// userWord reads a quad from the (final) current task's user data window.
func userWord(k *Kernel, t *Task, off uint64) uint64 {
	return k.CPU.Bus.RAM.Read64(UVAToPA(t.PID, UserDataBase+off))
}

func TestGetppidSyscall(t *testing.T) {
	for _, cfg := range []*codegen.Config{codegen.ConfigNone(), codegen.ConfigBackward(), codegen.ConfigFull()} {
		var task *Task
		k := runProgram(t, cfg, func(u *UserASM) {
			u.SyscallReg(SysGetppid)
			u.MovImm(insn.X1, UserDataBase)
			u.A.I(insn.STR(insn.X0, insn.X1, 0))
			u.SyscallReg(SysGetpid)
			u.A.I(insn.STR(insn.X0, insn.X1, 8))
			u.Exit(0)
		})
		task = k.tasks[1]
		if task == nil {
			// Exited tasks are removed; look the PID up from records.
			task = &Task{PID: 1}
		}
		if got := userWord(k, task, 0); got != 0 {
			t.Fatalf("%s: getppid = %d, want 0", cfg.Level(), got)
		}
		if got := userWord(k, task, 8); got != 1 {
			t.Fatalf("%s: getpid = %d, want 1", cfg.Level(), got)
		}
	}
}

func TestUnknownSyscallReturnsENOSYS(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(399) // mapped to sys_ni
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Syscall(3000) // out of range
		u.A.I(insn.STR(insn.X0, insn.X1, 8))
		u.Exit(0)
	})
	task := &Task{PID: 1}
	if got := int64(userWord(k, task, 0)); got != -38 {
		t.Fatalf("sys_ni returned %d, want -38", got)
	}
	if got := int64(userWord(k, task, 8)); got != -38 {
		t.Fatalf("out-of-range syscall returned %d, want -38", got)
	}
}

func TestOpenReadDevZero(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysOpenat, 0, PathDevZero, 0) // → fd
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		// Pre-fill the buffer with junk so zeros are observable.
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0x4A4A4A4A4A4A4A4A)
		u.A.I(insn.STR(insn.X2, insn.X1, 0))
		u.A.I(insn.STR(insn.X2, insn.X1, 56))
		// read(fd, buf, 64)
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 64)
		u.SyscallReg(SysRead)
		// Store the byte count after the buffer.
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 64))
		u.Exit(0)
	})
	task := &Task{PID: 1}
	if got := userWord(k, task, 64); got != 64 {
		t.Fatalf("read returned %d, want 64", got)
	}
	for off := uint64(0); off < 64; off += 8 {
		if got := userWord(k, task, off); got != 0 {
			t.Fatalf("buffer[%d] = %#x, want 0 (/dev/zero)", off, got)
		}
	}
}

func TestWriteDevNull(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysOpenat, 0, PathDevNull, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 128)
		u.SyscallReg(SysWrite)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Exit(0)
	})
	if got := userWord(k, &Task{PID: 1}, 0); got != 128 {
		t.Fatalf("write returned %d, want 128", got)
	}
}

func TestBadFDRejected(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysRead, 11, UserDataBase, 8) // fd 11 never opened
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Exit(0)
	})
	if got := int64(userWord(k, &Task{PID: 1}, 0)); got != -9 {
		t.Fatalf("read(bad fd) = %d, want -EBADF", got)
	}
}

func TestForkRunsChild(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.SyscallReg(SysClone)
		u.A.CBZ(insn.X0, "child")
		// Parent: record child pid, then exit (child still runnable).
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Exit(0)
		u.A.Label("child")
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0xC41D)
		u.A.I(insn.STR(insn.X2, insn.X1, 8))
		u.Exit(0)
	})
	// Parent window holds the child pid; child window holds the marker.
	if got := userWord(k, &Task{PID: 1}, 0); got != 2 {
		t.Fatalf("parent saw child pid %d, want 2", got)
	}
	if got := userWord(k, &Task{PID: 2}, 8); got != 0xC41D {
		t.Fatalf("child marker = %#x, want 0xC41D", got)
	}
	if !k.Halted {
		t.Fatal("kernel not halted after last exit")
	}
}

func TestPipeBetweenProcesses(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		// pipe2(&fds)
		u.Syscall(SysPipe2, UserDataBase+0x100)
		u.SyscallReg(SysClone)
		u.A.CBZ(insn.X0, "child")
		// Parent: write 8 bytes into the pipe, then yield to the child.
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0x1BADB002)
		u.A.I(insn.STR(insn.X2, insn.X1, 0))
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 8)) // write fd
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysWrite)
		u.SyscallReg(SysSchedYield)
		u.Exit(0)
		// Child: read 8 bytes from the pipe (blocks until parent writes).
		u.A.Label("child")
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 0)) // read fd
		u.MovImm(insn.X1, UserDataBase+0x40)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysRead)
		u.Exit(0)
	})
	if got := userWord(k, &Task{PID: 2}, 0x40); got != 0x1BADB002 {
		t.Fatalf("child read %#x through pipe, want 0x1BADB002", got)
	}
}

func TestExecRegeneratesUserKeys(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	prog, err := BuildProgram("main", func(u *UserASM) {
		u.Syscall(SysExecve, 2)
		u.Exit(1) // unreachable: exec replaces the image
	})
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := BuildProgram("exec-target", func(u *UserASM) {
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0xEEC5)
		u.A.I(insn.STR(insn.X2, insn.X1, 0))
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	k.RegisterProgram(2, prog2)
	task, err := k.Spawn(1)
	if err != nil {
		t.Fatal(err)
	}
	keysBefore := task.Keys
	stop := k.Run(10_000_000)
	if stop.Kind != cpu.StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if got := userWord(k, task, 0); got != 0xEEC5 {
		t.Fatalf("exec target marker = %#x", got)
	}
	if task.Keys == keysBefore {
		t.Fatal("exec did not regenerate user PAuth keys (§2.2)")
	}
}

// TestWorkqueueAuthenticatedDispatch runs the statically initialised
// work_struct through its authenticated pointer (§4.6).
func TestWorkqueueAuthenticatedDispatch(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.SyscallReg(SysWorkRun)
		u.SyscallReg(SysWorkRun)
		u.Exit(0)
	})
	counter := k.CPU.Bus.RAM.Read64(KVAToPA(DataBase) + StaticWorkOffset + WorkData)
	if counter != 2 {
		t.Fatalf("work counter = %d, want 2", counter)
	}
	if k.CPU.PACFailures != 0 {
		t.Fatalf("PAC failures during benign work dispatch: %d", k.CPU.PACFailures)
	}
}

// TestFOpsCorruptionCaughtDeterministic drives the same scenario with a
// breakpoint-free protocol: run the program once benignly, then corrupt
// the still-open file and issue the second read from a fresh process.
func TestFOpsCorruptionCaughtDeterministic(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	// Program A opens /dev/zero, reads once, then spins on sched_yield
	// forever (so the file stays open while we corrupt it).
	progA, err := BuildProgram("holder", func(u *UserASM) {
		u.Syscall(SysOpenat, 0, PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysRead)
		u.A.Label("again")
		// Re-read in an infinite loop; the corruption lands mid-loop.
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysRead)
		u.A.B("again")
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, progA)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	// Let it open and read a few times.
	k.Run(500_000)
	fileVA := k.FileAddrByFD(0)
	if fileVA == 0 {
		t.Fatal("fd 0 not open")
	}
	// Attacker (arbitrary kernel R/W, §3.1): point f_ops at a forged
	// table in writable memory.
	forged := k.heapAlloc(OpsSize)
	gadget := k.Img.Symbols["dev_null_write"]
	k.CPU.Bus.RAM.Write64(KVAToPA(forged)+OpsRead, gadget)
	k.CPU.Bus.RAM.Write64(KVAToPA(fileVA)+FileOps, forged)
	k.CPU.InvalidateDecode()

	stop := k.Run(5_000_000)
	if stop.Kind != cpu.StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if k.PACFailures != 1 {
		t.Fatalf("PACFailures = %d, want 1", k.PACFailures)
	}
	if len(k.Oops) == 0 || !k.Oops[0].PACFailure {
		t.Fatalf("oops log missing PAC failure: %+v", k.Oops)
	}
	if k.tasks[1] != nil {
		t.Fatal("offending task not killed")
	}
}

// TestBruteForceThresholdHaltsSystem models §5.4: repeated PAC failures
// from attacker-launched processes eventually halt the system.
func TestBruteForceThresholdHaltsSystem(t *testing.T) {
	k, err := New(Options{Config: codegen.ConfigFull(), Seed: 7, FailureThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildProgram("bruteforce", func(u *UserASM) {
		u.Syscall(SysOpenat, 0, PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.A.Label("spin")
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysRead)
		u.A.B("spin")
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)

	guesses := 0
	for round := 0; round < 10 && !k.Halted; round++ {
		if _, err := k.Spawn(1); err != nil {
			t.Fatal(err)
		}
		k.Run(300_000) // let it open + read once
		fileVA := k.FileAddrByFD(0)
		if fileVA == 0 {
			t.Fatalf("round %d: fd not open", round)
		}
		// Brute-force guess: raw pointer with a guessed PAC.
		guess := k.Img.Symbols["zero_ops"] | uint64(round+1)<<48
		k.CPU.Bus.RAM.Write64(KVAToPA(fileVA)+FileOps, guess)
		guesses++
		stop := k.Run(5_000_000)
		if stop.Kind != cpu.StopHLT {
			t.Fatalf("round %d: %+v", round, stop)
		}
		if stop.Code == HaltPanic {
			break
		}
	}
	if !k.Halted {
		t.Fatal("system did not halt under brute force")
	}
	if k.PACFailures < 3 {
		t.Fatalf("PACFailures = %d, want >= threshold 3", k.PACFailures)
	}
	if guesses > 4 {
		t.Fatalf("halt took %d guesses, threshold was 3", guesses)
	}
}

// TestCompatBuildBootsOnV80: the §5.5 backwards-compatible kernel boots
// and serves syscalls on a core without PAuth.
func TestCompatBuildBootsOnV80(t *testing.T) {
	cfg := &codegen.Config{Scheme: codegen.SchemeCamouflageCompat}
	k, err := New(Options{Config: cfg, Seed: 3, Compat: boot.ModeV80, V80: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildProgram("compat", func(u *UserASM) {
		u.SyscallReg(SysGetppid)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	stop := k.Run(10_000_000)
	if stop.Kind != cpu.StopHLT || stop.Code != HaltUser {
		t.Fatalf("stop = %+v", stop)
	}
}

// TestXOMKeySetterUnreadableInKernel: even EL1 cannot read the key-setter
// page (stage-2 XOM); the read faults and is logged.
func TestXOMKeySetterUnreadableInKernel(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	pa, fault := k.CPU.MMU.Translate(XOMBase, 2 /* Store */, 1)
	_ = pa
	if fault == nil {
		t.Fatal("store to XOM page translated")
	}
	if _, fault = k.CPU.MMU.Translate(XOMBase, 1 /* Load */, 1); fault == nil {
		t.Fatal("load from XOM page translated")
	}
	if _, fault = k.CPU.MMU.Translate(XOMBase, 0 /* Fetch */, 1); fault != nil {
		t.Fatalf("fetch from XOM page faulted: %v", fault)
	}
}

// TestSignalDelivery covers the lmbench sig-handler path: sigaction +
// kill(self) redirects the return to the handler, sigreturn resumes.
func TestSignalDelivery(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysSigaction, 0) // placeholder: handler set below
		// Real handler address: we need a label VA, so load it via ADR.
		u.A.ADR(insn.X0, "handler")
		u.A.I(insn.ORRr(insn.X1, insn.XZR, insn.X0, 0))
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X1, 0))
		u.MovImm(insn.X1, 0)
		// sigaction(handler)
		u.A.I(insn.ORRr(insn.X1, insn.XZR, insn.X0, 0))
		u.SyscallReg(SysSigaction)
		// kill(self=1, SIGUSR1=10)
		u.Syscall(SysKill, 1, 10)
		// After handler + sigreturn we resume here.
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0xAF7E)
		u.A.I(insn.STR(insn.X2, insn.X1, 8))
		u.Exit(0)
		u.A.Label("handler")
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0x5166)
		u.A.I(insn.STR(insn.X2, insn.X1, 0))
		u.SyscallReg(SysSigreturn)
	})
	if got := userWord(k, &Task{PID: 1}, 0); got != 0x5166 {
		t.Fatalf("handler marker = %#x", got)
	}
	if got := userWord(k, &Task{PID: 1}, 8); got != 0xAF7E {
		t.Fatalf("post-handler marker = %#x", got)
	}
}
