package kernel

import (
	"bytes"
	"errors"
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/mem"
)

func bootState(t *testing.T, opts Options) *State {
	t.Helper()
	k, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return k.CaptureState()
}

// TestSerializeDeterministic: the wire form is a pure function of the
// state — two captures of identically built machines, and two encodes
// of one capture, produce identical bytes. Content addressing depends
// on this.
func TestSerializeDeterministic(t *testing.T) {
	opts := Options{Config: codegen.ConfigFull(), Seed: 1234}
	a, err := bootState(t, opts).Serialize()
	if err != nil {
		t.Fatal(err)
	}
	st := bootState(t, opts)
	b1, err := st.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := st.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two encodes of one state differ")
	}
	if !bytes.Equal(a, b1) {
		t.Fatal("captures of identically built machines encode differently")
	}
}

// TestSerializeRoundTrip: decode(encode(state)) forks a machine that is
// observably identical to one forked from the original capture,
// including on SMP machines.
func TestSerializeRoundTrip(t *testing.T) {
	for _, cpus := range []int{1, 2} {
		cfg := codegen.ConfigFull()
		cfg.NumCPUs = cpus
		opts := Options{Config: cfg, Seed: 99}
		st := bootState(t, opts)
		blob, err := st.Serialize()
		if err != nil {
			t.Fatal(err)
		}
		pages := make(map[uint64]*[mem.PageSize]byte)
		st.ForEachFrozenPage(func(pn uint64, pg *[mem.PageSize]byte) {
			cp := *pg
			pages[pn] = &cp
		})
		got, err := DeserializeState(blob, pages)
		if err != nil {
			t.Fatalf("cpus=%d: %v", cpus, err)
		}
		// Re-encode: the decoded state must be wire-identical, proving
		// no field was dropped or defaulted on the way through.
		blob2, err := got.Serialize()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("cpus=%d: re-encoded state differs from original wire form", cpus)
		}
		k1, err := NewFromState(st)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := NewFromState(got)
		if err != nil {
			t.Fatal(err)
		}
		k1.Run(100_000)
		k2.Run(100_000)
		if k1.CPU.Cycles != k2.CPU.Cycles || k1.CPU.Retired != k2.CPU.Retired ||
			k1.CPU.PC != k2.CPU.PC || k1.UART.Output() != k2.UART.Output() {
			t.Fatalf("cpus=%d: deserialized fork diverges from direct fork", cpus)
		}
	}
}

// TestSerializeRefusesPrograms: a state carrying registered user
// programs is not portable (program images are caller-owned, outside
// the deterministic kernel build) and must be refused with the typed
// sentinel.
func TestSerializeRefusesPrograms(t *testing.T) {
	k, err := New(Options{Config: codegen.ConfigFull(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildProgram("p", func(u *UserASM) { u.Exit(0) })
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.CaptureState().Serialize(); !errors.Is(err, ErrStateNotPortable) {
		t.Fatalf("Serialize with programs = %v, want ErrStateNotPortable", err)
	}
}

// TestDeserializeRejectsGarbage: truncated or corrupted blobs fail
// loudly, never yield a machine.
func TestDeserializeRejectsGarbage(t *testing.T) {
	st := bootState(t, Options{Config: codegen.ConfigBackward(), Seed: 3})
	blob, err := st.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeserializeState(blob[:len(blob)/2], nil); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := DeserializeState([]byte("not a snapshot"), nil); err == nil {
		t.Fatal("garbage blob accepted")
	}
	// Flip one byte of the serialized kernel keys: the rebuilt image's
	// keys no longer match and the blob must be refused.
	bad := append([]byte(nil), blob...)
	bad[len(stateWireMagic)+8+73] ^= 0x40 // inside the options/keys region
	if _, err := DeserializeState(bad, nil); err == nil {
		t.Fatal("bit-flipped blob accepted")
	}
}
