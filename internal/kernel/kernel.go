package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"camouflage/internal/asm"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/hyp"
	"camouflage/internal/insn"
	"camouflage/internal/mem"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// Options configures a kernel build.
type Options struct {
	// Config selects the instrumentation level (codegen.ConfigNone /
	// ConfigBackward / ConfigFull, or a custom scheme for Figure 2).
	Config *codegen.Config
	// Seed drives the bootloader PRNG (keys, user keys).
	Seed uint64
	// Compat selects the §5.5 backwards-compatible build.
	Compat boot.Compat
	// V80 runs on an ARMv8.0 core (no PAuth; pair with Compat).
	V80 bool
	// FailureThreshold is the §5.4 brute-force mitigation: the kernel
	// halts after this many PAC authentication failures. Zero selects the
	// default of 8.
	FailureThreshold int
}

// DefaultFailureThreshold is the §5.4 brute-force halt threshold used
// when Options.FailureThreshold is zero.
const DefaultFailureThreshold = 8

// OopsRecord is one logged kernel fault (§6.2.3: "any failures are also
// logged, ensuring that such vulnerable code paths can be fixed").
type OopsRecord struct {
	ESR, FAR, ELR uint64
	Kernel        bool
	PACFailure    bool
	PID           int
}

// Task is the host-side mirror of one kernel task.
type Task struct {
	PID, PPID int
	// Addr is the VA of the task struct in kernel memory.
	Addr uint64
	// StackTop is the top of the task's 16 KiB kernel stack.
	StackTop uint64
	// State mirrors the guest task state.
	State int
	// Keys are the task's user-space PAuth keys (regenerated on exec).
	Keys pac.KeySet
	// SigHandler and SavedELR implement minimal signal delivery.
	SigHandler uint64
	SavedELR   uint64
	// ProgID identifies the loaded user program.
	ProgID int
	// CPU is the core the task is affined to (tasks never migrate:
	// the scheduler is per-core round-robin, like a no-balancing
	// SCHED_FIFO; forks inherit the parent's core).
	CPU int
}

type pipeState struct {
	// buf[r:] is the unread data. The read cursor (instead of reslicing
	// buf forward) lets a drained pipe reuse its backing array: the
	// write fast path appends in place, allocation-free at steady state.
	buf []byte
	r   int
}

// fileState mirrors one open struct file.
type fileState struct {
	addr   uint64
	opsVA  uint64
	pathID int
	inode  uint64
}

// Kernel owns the simulated machine and the host service layer.
type Kernel struct {
	// CPU is the boot core (CPUs[0]): the target of every single-core
	// API (Spawn, CallGuest, the attack harness, Stats).
	CPU *cpu.CPU
	// CPUs are all cores of the machine, sharing one bus, stage-1
	// kernel table, stage-2 overlay and invalidation cluster; each owns
	// its architectural state, TLB, block cache and user-table pointer.
	CPUs []*cpu.CPU
	Hyp  *hyp.Hypervisor
	UART *mem.UART
	Net  *mem.NetDev
	Blk  *mem.BlockDev
	Cfg  *codegen.Config
	Img  *asm.Image

	opts Options
	keys pac.KeySet // bootloader's kernel keys (never in guest-readable memory)
	rng  *boot.PRNG

	// active is the core whose instructions are retiring right now; the
	// deterministic scheduler (and CallGuestOn) sets it before running a
	// core, so service handlers know which per-CPU frame and current
	// task a doorbell store belongs to. Execution is strictly one core
	// at a time (round-robin quanta), which is what keeps SMP runs
	// byte-reproducible.
	active int
	// currents mirrors each core's current task (nil: core idle).
	currents []*Task
	// parked marks cores with nothing to run: post-boot secondaries,
	// and cores whose last task exited. Parked cores are skipped by the
	// scheduler until SpawnOn hands them work.
	parked []bool

	heapNext uint64
	nextPID  int
	tasks    map[int]*Task
	tables   map[int]*mmu.Table
	programs map[int]*Program
	pipes    map[uint64]*pipeState
	nextPipe uint64
	files    map[uint64]*fileState
	credObj  uint64
	extraOps map[int]uint64 // dynamically registered drivers (modules)
	modNext  uint64

	// PACFailures counts kernel PAC authentication failures (§5.4).
	PACFailures int
	// Threshold is the halt threshold.
	Threshold int
	// Oops is the fault log.
	Oops []OopsRecord
	// Halted is set once the panic path or last-task exit fires.
	Halted bool

	// ServiceCalls counts service invocations by code (diagnostics).
	// Indexed by service code; dense so the dispatch loop counts with an
	// array store instead of a map insert.
	ServiceCalls [SvcMax]uint64

	// BootCycles is the cycle count consumed by start_kernel.
	BootCycles uint64

	// Parallel opts a multi-core machine into truly-parallel execution:
	// Run drives one goroutine per unparked core instead of the
	// deterministic round-robin scheduler. Runtime-only — it is not part
	// of the built image or any snapshot key, so the same machine (or
	// snapshot pool entry) can be run both ways. See runParallel for the
	// memory-model contract.
	Parallel bool
}

// serviceCost models the cycle cost of the host-side portion of each
// service (the un-instrumented kernel bookkeeping the service stands in
// for; identical across protection levels, so it never inflates relative
// overheads — see DESIGN.md).
var serviceCost = [SvcMax]uint64{
	SvcOpen:      600,
	SvcClose:     200,
	SvcStat:      450,
	SvcPickNext:  150,
	SvcFork:      2400,
	SvcExec:      7000,
	SvcExit:      300,
	SvcSigact:    80,
	SvcKill:      160,
	SvcPipe:      500,
	SvcPipeIO:    90,
	SvcPoll:      40,
	SvcFault:     200,
	SvcWake:      60,
	SvcLog:       10,
	SvcSigreturn: 40,
}

// svcDev is the kernel-service doorbell device.
type svcDev struct{ k *Kernel }

// Name implements mem.Device.
func (d *svcDev) Name() string { return "kernsvc" }

// Load implements mem.Device.
func (d *svcDev) Load(offset uint64, size int) (uint64, error) { return 0, nil }

// Store implements mem.Device. The window is an array of per-CPU
// doorbell slots, 8 bytes each: the slot offset identifies the ringing
// core (SMP images derive it from MPIDR_EL1; 1-vCPU images always ring
// slot 0, preserving the pre-SMP wire format).
func (d *svcDev) Store(offset uint64, size int, v uint64) error {
	if offset&7 == 0 && offset < 8*MaxCPUs {
		return d.k.serviceFrom(int(offset>>3), v)
	}
	return nil
}

// buildLinked runs the deterministic build pipeline for normalized
// options: seed the bootloader PRNG, draw the kernel keys, emit and link
// the image. It is shared by New and the snapshot-store load path, which
// re-derives the immutable image from the manifest's options instead of
// shipping code bytes — two builds from equal options are bit-identical,
// so a loaded snapshot's image is exactly the captured machine's.
func buildLinked(opts Options) (*asm.Image, pac.KeySet, *boot.PRNG, error) {
	rng := boot.NewPRNG(opts.Seed ^ 0xB007_B007)
	keys := rng.GenerateKeys()
	a := buildImage(opts.Config, keys, opts.Compat)
	img, err := a.Link(map[string]uint64{
		".xom":     XOMBase,
		".vectors": VecBase,
		".text":    TextBase,
		".rodata":  RodataBase,
		".data":    DataBase,
	})
	if err != nil {
		return nil, pac.KeySet{}, nil, fmt.Errorf("kernel: link: %w", err)
	}
	return img, keys, rng, nil
}

// New builds and loads the kernel but does not boot it. The CPU count
// comes from Options.Config.NumCPUs (0/1: uniprocessor, bit-identical
// to pre-SMP builds).
func New(opts Options) (*Kernel, error) {
	if opts.Config == nil {
		opts.Config = codegen.ConfigFull()
	}
	if opts.FailureThreshold == 0 {
		opts.FailureThreshold = DefaultFailureThreshold
	}
	ncpus := opts.Config.CPUs()
	if ncpus > MaxCPUs {
		return nil, fmt.Errorf("kernel: %d vCPUs exceeds MaxCPUs=%d", ncpus, MaxCPUs)
	}
	img, keys, rng, err := buildLinked(opts)
	if err != nil {
		return nil, err
	}

	c := cpu.New(cpu.Features{PAuth: !opts.V80})
	k := &Kernel{
		CPU:       c,
		UART:      &mem.UART{},
		Net:       &mem.NetDev{},
		Blk:       mem.NewBlockDev(),
		Cfg:       opts.Config,
		Img:       img,
		opts:      opts,
		keys:      keys,
		rng:       rng,
		heapNext:  HeapBase,
		nextPID:   1,
		tasks:     make(map[int]*Task),
		tables:    make(map[int]*mmu.Table),
		programs:  make(map[int]*Program),
		pipes:     make(map[uint64]*pipeState),
		nextPipe:  1,
		files:     make(map[uint64]*fileState),
		extraOps:  make(map[int]uint64),
		modNext:   ModuleBase,
		Threshold: opts.FailureThreshold,
	}

	// Devices.
	if err := k.mapDevices(); err != nil {
		return nil, err
	}

	// Load the image.
	//camo:nondet sections occupy disjoint physical ranges; write order cannot alias
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(KVAToPA(s.Base), s.Bytes)
	}

	// Stage-1 kernel mappings.
	mapRange := func(va, size uint64, perm mmu.Perm) {
		for off := uint64(0); off < size; off += mmu.PageSize {
			c.MMU.TT1.Map(va+off, KVAToPA(va+off), perm)
		}
	}
	secSize := func(name string) uint64 {
		s := img.Sections[name]
		if s == nil {
			return mmu.PageSize
		}
		return (uint64(len(s.Bytes)) + mmu.PageSize - 1) &^ (mmu.PageSize - 1)
	}
	mapRange(VecBase, secSize(".vectors"), mmu.KernelText)
	mapRange(XOMBase, secSize(".xom"), mmu.KernelText)
	mapRange(TextBase, secSize(".text"), mmu.KernelText)
	mapRange(RodataBase, secSize(".rodata"), mmu.KernelRO)
	mapRange(DataBase, secSize(".data"), mmu.KernelData)
	mapRange(HeapBase, HeapSize, mmu.KernelData)
	mapRange(StackBase, 64*StackSize, mmu.KernelData)
	if ncpus > 1 {
		// Secondary boot stacks live above the 64-slot task arena.
		mapRange(StackBase+64*StackSize, uint64(MaxCPUs)*StackSize, mmu.KernelData)
	}
	for _, dev := range []uint64{UARTBase, NetBase, BlkBase, SvcBase} {
		mapRange(dev, mmu.PageSize, mmu.KernelData)
	}

	// Hypervisor: XOM for the key setter, write-protect .rodata even
	// against stage-1 corruption (§3.1), stage-2 on.
	k.Hyp = hyp.Attach(c)
	k.Hyp.MapXOM(KVAToPA(XOMBase), secSize(".xom"))
	k.Hyp.ProtectReadOnly(KVAToPA(RodataBase), secSize(".rodata"))

	// Credentials object shared by all files (f_cred target).
	k.credObj = k.heapAlloc(64)

	// CPU initial state.
	c.MMU.Enabled = true
	c.VBAR = VecBase
	if !opts.V80 {
		c.SCTLR = insn.SCTLRPAuthAll
	}
	c.EL = 1
	c.TPIDR0 = PerCPUVA(0)

	// Secondary cores: same initial control state, own per-CPU frame
	// base; they share the bus, TT1, stage-2 and invalidation cluster
	// through NewPeer, and come under the hypervisor's MSR filter like
	// the boot core.
	k.CPUs = []*cpu.CPU{c}
	k.currents = make([]*Task, ncpus)
	k.parked = make([]bool, ncpus)
	for i := 1; i < ncpus; i++ {
		p := c.NewPeer(i)
		p.VBAR = VecBase
		if !opts.V80 {
			p.SCTLR = insn.SCTLRPAuthAll
		}
		p.TPIDR0 = PerCPUVA(i)
		k.Hyp.AttachPeer(p)
		k.CPUs = append(k.CPUs, p)
		k.parked[i] = true // parked until SpawnOn dispatches work
	}
	return k, nil
}

// NumCPUs returns the machine's core count.
func (k *Kernel) NumCPUs() int { return len(k.CPUs) }

// cpu returns the core whose quantum is executing (service dispatch).
func (k *Kernel) cpu() *cpu.CPU { return k.CPUs[k.active] }

// cur returns the current task of the executing core.
func (k *Kernel) cur() *Task { return k.currents[k.active] }

// mapDevices installs the device windows (and the service doorbell) on
// the kernel's bus. Shared by New and the snapshot fork path.
func (k *Kernel) mapDevices() error {
	c := k.CPU
	if err := c.Bus.Map(KVAToPA(UARTBase), 0x1000, k.UART); err != nil {
		return err
	}
	if err := c.Bus.Map(KVAToPA(NetBase), 0x1000, k.Net); err != nil {
		return err
	}
	if err := c.Bus.Map(KVAToPA(BlkBase), 0x1000, k.Blk); err != nil {
		return err
	}
	return c.Bus.Map(KVAToPA(SvcBase), 0x1000, &svcDev{k})
}

// KernelKeysForTest exposes the bootloader's kernel keys to the attack
// harness and tests (the attacker does NOT get these; they model the
// bootloader's own knowledge).
func (k *Kernel) KernelKeysForTest() pac.KeySet { return k.keys }

// AllocScratch carves writable kernel heap memory; the attack harness
// uses it for forged objects (the heap arena is always mapped).
func (k *Kernel) AllocScratch(n uint64) uint64 { return k.heapAlloc(n) }

// heapAlloc carves n bytes (64-byte aligned) from the kernel heap.
func (k *Kernel) heapAlloc(n uint64) uint64 {
	addr := (k.heapNext + 63) &^ 63
	k.heapNext = addr + n
	if k.heapNext > HeapBase+HeapSize {
		panic("kernel: heap exhausted")
	}
	return addr
}

// Boot runs start_kernel on the boot core — key install via the XOM
// setter and early-boot signing of static pointers — then brings every
// secondary core through secondary_start (each installs the kernel keys
// into its own per-core key registers, the state the paper's design
// switches on every kernel entry), and finally the hypervisor locks the
// MMU configuration machine-wide.
func (k *Kernel) Boot() error {
	start := k.CPU.Cycles
	k.CPU.SetSP(1, StackBase+StackSize) // boot stack (becomes task 0's)
	k.CPU.PC = k.Img.Symbols["start_kernel"]
	stop := k.CPU.Run(1_000_000)
	if stop.Kind != cpu.StopHLT || stop.Code != HaltBootOK {
		return fmt.Errorf("kernel: boot failed: %+v", stop)
	}
	for i := 1; i < len(k.CPUs); i++ {
		c := k.CPUs[i]
		c.SetSP(1, secondaryBootStackTop(i))
		c.PC = k.Img.Symbols["secondary_start"]
		k.active = i
		sstop := c.Run(1_000_000)
		k.active = 0
		if sstop.Kind != cpu.StopHLT || sstop.Code != HaltSecondaryOK {
			return fmt.Errorf("kernel: cpu%d secondary boot failed: %+v", i, sstop)
		}
	}
	k.BootCycles = k.CPU.Cycles - start
	k.Hyp.Lockdown()
	return nil
}

// secondaryBootStackTop returns the top of a secondary core's boot (and
// host-call) stack: the top MaxCPUs slots of the kernel stack arena,
// which task stacks (indexed by PID from slot 1) never reach.
func secondaryBootStackTop(cpu int) uint64 {
	return StackBase + uint64(secondaryStackSlot0+cpu+1)*StackSize
}

// percpuPA is the physical address of a core's per-CPU frame.
func percpuPA(cpu int) uint64 {
	return KVAToPA(DataBase) + PerCPUOffset + uint64(cpu)*PerCPUSize
}

func (k *Kernel) arg(i int) uint64 {
	return k.CPU.Bus.RAM.Read64(percpuPA(k.active) + PerCPUArg0 + uint64(8*i))
}

func (k *Kernel) setArg(i int, v uint64) {
	k.CPU.Bus.RAM.Write64(percpuPA(k.active)+PerCPUArg0+uint64(8*i), v)
}

func (k *Kernel) setRet(i int, v uint64) {
	k.CPU.Bus.RAM.Write64(percpuPA(k.active)+PerCPURet0+uint64(8*i), v)
}

func (k *Kernel) setPrevNext(prev, next uint64) {
	k.CPU.Bus.RAM.Write64(percpuPA(k.active)+PerCPUPrev, prev)
	k.CPU.Bus.RAM.Write64(percpuPA(k.active)+PerCPUNext, next)
}

// setHalt halts the whole machine: every core's halt flag is raised so
// each exits the guest at its next kernel-exit or fault check.
func (k *Kernel) setHalt() {
	k.Halted = true
	for i := range k.CPUs {
		k.CPU.Bus.RAM.Write64(percpuPA(i)+PerCPUHalt, 1)
	}
}

// parkCPU retires one core from scheduling: its halt flag is raised (the
// guest exits through HLT at the next check) without halting the
// machine. SpawnOn revives a parked core.
func (k *Kernel) parkCPU(cpu int) {
	k.CPU.Bus.RAM.Write64(percpuPA(cpu)+PerCPUHalt, 1)
}

// setPanic marks the §5.4 brute-force halt (reported as HaltPanic).
func (k *Kernel) setPanic() {
	k.Halted = true
	for i := range k.CPUs {
		k.CPU.Bus.RAM.Write64(percpuPA(i)+PerCPUHalt, 1)
	}
	k.CPU.Bus.RAM.Write64(percpuPA(k.active)+PerCPUHalt, 2)
}

// readFaultInfo reads the ESR/FAR the fault stub recorded.
func (k *Kernel) readFaultInfo() (esr, far uint64) {
	esr = k.CPU.Bus.RAM.Read64(percpuPA(k.active) + PerCPUFault)
	far = k.CPU.Bus.RAM.Read64(percpuPA(k.active) + PerCPUFAR)
	return
}

// serviceFrom dispatches a doorbell rung by a specific core. Under the
// deterministic scheduler k.active already names the ringing core (the
// scheduler sets it before running a quantum), so the assignment is a
// no-op; in parallel mode it is what binds the service handlers to the
// right per-CPU frame and current task. Callers in parallel mode hold
// the bus service lock.
func (k *Kernel) serviceFrom(cpu int, code uint64) error {
	if cpu < len(k.CPUs) {
		k.active = cpu
	}
	return k.service(code)
}

// service dispatches one host-service call from the guest.
func (k *Kernel) service(code uint64) error {
	if code < SvcMax {
		k.ServiceCalls[code]++
		k.cpu().Cycles += serviceCost[code]
	}
	switch code {
	case SvcOpen:
		k.svcOpen()
	case SvcClose:
		k.svcClose()
	case SvcStat:
		k.svcStat()
	case SvcPickNext:
		k.svcPickNext()
	case SvcFork:
		k.svcFork()
	case SvcExec:
		k.svcExec()
	case SvcExit:
		k.svcExit()
	case SvcSigact:
		k.cur().SigHandler = k.arg(0)
	case SvcKill:
		k.svcKill()
	case SvcSigreturn:
		k.svcSigreturn()
	case SvcPipe:
		k.svcPipe()
	case SvcPipeIO:
		k.svcPipeIO()
	case SvcPoll:
		k.svcPoll()
	case SvcFault:
		k.svcFault()
	case SvcWake:
		if t := k.tasks[int(k.arg(0))]; t != nil && t.State == TaskBlocked {
			t.State = TaskRunnable
		}
	case SvcLog:
		// diagnostic only
	default:
		return fmt.Errorf("kernel: unknown service %d", code)
	}
	return nil
}

// pathToOps maps a path id to its file_operations symbol.
func (k *Kernel) pathToOps(path int) (uint64, uint64) {
	switch path {
	case PathDevZero:
		return k.Img.Symbols["zero_ops"], 0
	case PathDevNull:
		return k.Img.Symbols["null_ops"], 0
	case PathTmpFile:
		return k.Img.Symbols["file_ops_blk"], 7 // sector 7
	case PathSocket:
		return k.Img.Symbols["sock_ops"], 0
	}
	if ops, ok := k.extraOps[path]; ok {
		return ops, uint64(path)
	}
	return 0, 0
}

// RegisterDriverOps exposes a (module-provided) file_operations table
// under a new path id.
func (k *Kernel) RegisterDriverOps(pathID int, opsVA uint64) {
	k.extraOps[pathID] = opsVA
}

// AllocModuleRange reserves module VA space (64 KiB aligned).
func (k *Kernel) AllocModuleRange(size uint64) uint64 {
	va := k.modNext
	k.modNext += (size + 0xFFFF) &^ 0xFFFF
	return va
}

// MapKernelRange installs stage-1 kernel mappings (module loading).
func (k *Kernel) MapKernelRange(va, size uint64, perm mmu.Perm) {
	for off := uint64(0); off < size; off += mmu.PageSize {
		k.CPU.MMU.TT1.Map(va+off, KVAToPA(va+off), perm)
	}
}

// WriteKernelMemory copies bytes into kernel memory (module loading),
// invalidating stale decoded instructions.
func (k *Kernel) WriteKernelMemory(va uint64, b []byte) {
	k.CPU.Bus.RAM.WriteBytes(KVAToPA(va), b)
	k.CPU.InvalidateDecode()
}

// CallGuest invokes a guest function at the given VA with up to four
// arguments in x0..x3, on the reserved boot stack, and waits for its
// return. Used by the module loader (pointer-table signing runs as guest
// code) and by micro-benchmarks.
func (k *Kernel) CallGuest(fnVA uint64, args ...uint64) error {
	regs := make(map[insn.Reg]uint64, len(args))
	for i, v := range args {
		regs[insn.Reg(i)] = v
	}
	return k.CallGuestRegs(fnVA, regs)
}

// CallGuestRegs is CallGuest with explicit register assignments.
func (k *Kernel) CallGuestRegs(fnVA uint64, regs map[insn.Reg]uint64) error {
	return k.CallGuestRegsOn(0, fnVA, regs)
}

// CallGuestOn is CallGuest targeted at a specific core — the cross-core
// entry point of the attack harness (e.g. invoking a driver dispatch on
// a sibling core against state another core signed).
func (k *Kernel) CallGuestOn(cpuID int, fnVA uint64, args ...uint64) error {
	regs := make(map[insn.Reg]uint64, len(args))
	for i, v := range args {
		regs[insn.Reg(i)] = v
	}
	return k.CallGuestRegsOn(cpuID, fnVA, regs)
}

// CallGuestRegsOn runs a guest function on the given core, on that
// core's boot stack, with service dispatch attributed to it.
func (k *Kernel) CallGuestRegsOn(cpuID int, fnVA uint64, regs map[insn.Reg]uint64) error {
	if cpuID < 0 || cpuID >= len(k.CPUs) {
		return fmt.Errorf("kernel: no cpu %d", cpuID)
	}
	c := k.CPUs[cpuID]
	savedActive := k.active
	k.active = cpuID
	defer func() { k.active = savedActive }()
	savedPC, savedEL := c.PC, c.EL
	savedSP := c.SP(1)
	c.EL = 1
	stackTop := StackBase + StackSize
	if cpuID > 0 {
		stackTop = secondaryBootStackTop(cpuID)
	}
	c.SetSP(1, stackTop)
	//camo:nondet each iteration sets a distinct register; no aliasing across keys
	for r, v := range regs {
		c.SetReg(r, v)
	}
	c.SetReg(insn.X16, fnVA)
	c.PC = k.Img.Symbols["host_call_stub"]
	stop := c.Run(10_000_000)
	if stop.Kind != cpu.StopHLT || stop.Code != HaltHostCall {
		return fmt.Errorf("kernel: guest call to %#x failed: %+v", fnVA, stop)
	}
	c.PC, c.EL = savedPC, savedEL
	c.SetSP(1, savedSP)
	return nil
}

// newFileObject allocates and initialises a struct file in guest memory
// (everything except the signed fields, which the guest signs itself).
func (k *Kernel) newFileObject(opsVA, inode uint64, pathID int) uint64 {
	addr := k.heapAlloc(FileSize)
	ram := k.CPU.Bus.RAM
	pa := KVAToPA(addr)
	ram.Write64(pa+FileCount, 1)
	ram.Write64(pa+FileFlags, 0)
	ram.Write64(pa+FilePos, 0)
	ram.Write64(pa+FileInode, inode)
	k.files[addr] = &fileState{addr: addr, opsVA: opsVA, pathID: pathID, inode: inode}
	return addr
}

// installFD writes a file pointer into the current task's fd table,
// returning the fd (or -1).
func (k *Kernel) installFD(fileVA uint64) int {
	ram := k.CPU.Bus.RAM
	base := KVAToPA(k.cur().Addr) + TaskFiles
	for fd := 0; fd < TaskNFiles; fd++ {
		if ram.Read64(base+uint64(8*fd)) == 0 {
			ram.Write64(base+uint64(8*fd), fileVA)
			return fd
		}
	}
	return -1
}

func (k *Kernel) svcOpen() {
	path := int(k.arg(0))
	opsVA, inode := k.pathToOps(path)
	if opsVA == 0 {
		k.setRet(0, errno(-2)) // -ENOENT
		return
	}
	fileVA := k.newFileObject(opsVA, inode, path)
	fd := k.installFD(fileVA)
	if fd < 0 {
		k.setRet(0, errno(-24)) // -EMFILE
		return
	}
	k.setRet(0, uint64(fd))
	k.setRet(1, fileVA)
	k.setArg(4, opsVA)
	k.setArg(5, k.credObj)
}

func (k *Kernel) svcClose() {
	fd := int(k.arg(0))
	ram := k.CPU.Bus.RAM
	if fd < 0 || fd >= TaskNFiles {
		k.setRet(0, errno(-9))
		return
	}
	slot := KVAToPA(k.cur().Addr) + TaskFiles + uint64(8*fd)
	if ram.Read64(slot) == 0 {
		k.setRet(0, errno(-9))
		return
	}
	ram.Write64(slot, 0)
	k.setRet(0, 0)
}

func (k *Kernel) svcStat() {
	path := int(k.arg(0))
	if ops, _ := k.pathToOps(path); ops == 0 {
		k.setRet(0, errno(-2))
		return
	}
	k.setRet(0, 0)
}

// pickNext chooses the next runnable task after current (round robin)
// among the tasks affined to the executing core.
func (k *Kernel) pickNext() *Task {
	if len(k.tasks) == 0 {
		return nil
	}
	start := 0
	if k.cur() != nil {
		start = k.cur().PID
	}
	for off := 1; off <= k.nextPID; off++ {
		pid := (start+off-1)%k.nextPID + 1
		if t := k.tasks[pid]; t != nil && t.CPU == k.active &&
			t.State == TaskRunnable && t != k.cur() {
			return t
		}
	}
	if k.cur() != nil && k.cur().State == TaskRunnable {
		return k.cur()
	}
	return nil
}

// anyRunnable reports whether any task in the system is runnable —
// i.e. whether, machine-wide, somebody could still make progress (or
// wake a blocked sibling). Running currents count: they stay Runnable
// while on a core.
func (k *Kernel) anyRunnable() bool {
	for _, t := range k.tasks {
		if t.State == TaskRunnable {
			return true
		}
	}
	return false
}

// switchAccounting points the executing core's MMU and host mirror at
// the next task. The guest's cpu_switch_to moves the architectural
// state.
func (k *Kernel) switchAccounting(next *Task) {
	if next == nil || next == k.cur() {
		return
	}
	k.cpu().MMU.TT0 = k.tables[next.PID]
	k.currents[k.active] = next
}

func (k *Kernel) svcPickNext() {
	block := k.arg(0) != 0
	prev := k.cur()
	if block {
		prev.State = TaskBlocked
	}
	next := k.pickNext()
	if next == nil {
		if block {
			if len(k.CPUs) > 1 && k.anyRunnable() {
				// Nothing runnable on this core, but another core can
				// still make progress (and may wake this task): spin —
				// the guest switches to itself and re-polls. The
				// deterministic quantum scheduler interleaves the cores,
				// so the wakeup arrives exactly as on a real SMP idle
				// poll loop.
				k.setPrevNext(prev.Addr, prev.Addr)
				return
			}
			// Deadlock: nothing runnable anywhere. Halt rather than spin.
			k.setHalt()
			k.setPrevNext(prev.Addr, prev.Addr)
			return
		}
		next = prev
	}
	k.setPrevNext(prev.Addr, next.Addr)
	k.switchAccounting(next)
}

func (k *Kernel) svcFork() {
	if k.taskSlotsExhausted() {
		k.setRet(0, errno(-11)) // -EAGAIN, as fork(2) reports it
		return
	}
	parent := k.cur()
	parentPtRegs := k.arg(0)
	child := k.newTask(parent.PID, parent.ProgID)
	child.Keys = parent.Keys // fork shares the address-space keys (§2.2)
	k.writeTaskKeys(child)

	// Child trap frame sits at the top of its kernel stack; the guest
	// copies the contents.
	childPtRegs := child.StackTop - PtRegsSize
	k.CPU.Bus.RAM.Write64(KVAToPA(child.Addr)+TaskPtRegs, childPtRegs)

	// Craft the child's cpu_context: resume at ret_from_fork on its own
	// trap frame; the saved SP is signed exactly as cpu_switch_to would
	// have signed it (§5.2).
	k.initContext(child, k.Img.Symbols["ret_from_fork"], childPtRegs)

	// Clone the fd table.
	ram := k.CPU.Bus.RAM
	for fd := 0; fd < TaskNFiles; fd++ {
		v := ram.Read64(KVAToPA(parent.Addr) + TaskFiles + uint64(8*fd))
		ram.Write64(KVAToPA(child.Addr)+TaskFiles+uint64(8*fd), v)
	}

	// Address space: share text read-only, copy stack and data windows.
	k.cloneUserSpace(parent, child)

	child.State = TaskRunnable
	k.setRet(0, uint64(child.PID))
	k.setRet(1, childPtRegs)
	_ = parentPtRegs // the guest performs the visible pt_regs copy
}

// initContext writes a fresh cpu_context so that switching to the task
// lands at pc with the given kernel SP (signed under DFI builds).
func (k *Kernel) initContext(t *Task, pc, sp uint64) {
	ram := k.CPU.Bus.RAM
	base := KVAToPA(t.Addr)
	for off := uint64(TaskCtx); off < TaskCtxFP; off += 8 {
		ram.Write64(base+off, 0)
	}
	ram.Write64(base+TaskCtxFP, 0)
	ram.Write64(base+TaskCtxPC, pc)
	spVal := sp
	if k.Cfg.DFI {
		mod := pac.ObjectModifier(t.Addr, tcTaskSP)
		if k.Cfg.ZeroModifier {
			mod = 0
		}
		spVal = k.CPU.Signer.Sign(sp, mod, pac.KeyDB)
	}
	ram.Write64(base+TaskCtxSP, spVal)
}

func (k *Kernel) svcExec() {
	progID := int(k.arg(0))
	t := k.cur()
	prog := k.programs[progID]
	if prog == nil {
		k.setRet(0, errno(-2))
		return
	}
	// exec() regenerates the address-space keys (§2.2).
	t.Keys = k.rng.GenerateKeys()
	k.writeTaskKeys(t)
	t.ProgID = progID
	k.loadUserSpace(t, prog)
	// Rewrite the live trap frame to enter the new program.
	ptregs := t.StackTop - PtRegsSize
	ram := k.CPU.Bus.RAM
	ram.Write64(KVAToPA(ptregs)+PtRegsELR, prog.entryVA)
	ram.Write64(KVAToPA(ptregs)+PtRegsSP, UserStackTop)
	ram.Write64(KVAToPA(ptregs)+PtRegsSPSR, 0) // EL0
	k.setRet(0, 0)
}

func (k *Kernel) svcExit() {
	k.cur().State = TaskZombie
	delete(k.tasks, k.cur().PID)
	next := k.pickNext()
	if next == nil {
		if len(k.CPUs) > 1 && k.anyRunnable() {
			// This core's task set drained, but siblings still have
			// work: park only this core (machine keeps running).
			k.parkCPU(k.active)
		} else {
			k.setHalt()
		}
		k.setPrevNext(k.cur().Addr, 0)
		return
	}
	k.setPrevNext(k.cur().Addr, next.Addr)
	k.switchAccounting(next)
}

func (k *Kernel) svcKill() {
	pid := int(k.arg(0))
	target := k.tasks[pid]
	if target == nil {
		k.setRet(0, errno(-3)) // -ESRCH
		return
	}
	if target == k.cur() && target.SigHandler != 0 {
		// Deliver immediately: redirect the trap-frame ELR through the
		// handler; sigreturn restores it.
		ptregs := target.StackTop - PtRegsSize
		ram := k.CPU.Bus.RAM
		target.SavedELR = ram.Read64(KVAToPA(ptregs) + PtRegsELR)
		ram.Write64(KVAToPA(ptregs)+PtRegsELR, target.SigHandler)
	}
	k.setRet(0, 0)
}

func (k *Kernel) svcSigreturn() {
	t := k.cur()
	if t.SavedELR != 0 {
		ptregs := t.StackTop - PtRegsSize
		k.CPU.Bus.RAM.Write64(KVAToPA(ptregs)+PtRegsELR, t.SavedELR)
		t.SavedELR = 0
	}
}

func (k *Kernel) svcPipe() {
	id := k.nextPipe
	k.nextPipe++
	k.pipes[id] = &pipeState{}
	rops := k.Img.Symbols["pipe_ops"]
	rfile := k.newFileObject(rops, id, 0)
	wfile := k.newFileObject(rops, id, 0)
	rfd := k.installFD(rfile)
	wfd := k.installFD(wfile)
	k.setRet(0, uint64(rfd))
	k.setRet(1, uint64(wfd))
	k.setArg(0, k.credObj)
	k.setArg(2, rfile)
	k.setArg(3, rops)
	k.setArg(4, wfile)
	k.setArg(5, rops)
}

// CredObjVA exposes the shared credentials object (examples/attacks).
func (k *Kernel) CredObjVA() uint64 { return k.credObj }

// userPA resolves a user VA of the current task for host-side copies.
func (k *Kernel) userPA(va uint64) uint64 {
	return UVAToPA(k.cur().PID, va)
}

func (k *Kernel) svcPipeIO() {
	id := k.arg(0)
	buf := k.arg(1)
	n := k.arg(2)
	write := k.arg(3) != 0
	p := k.pipes[id]
	if p == nil {
		k.setRet(0, errno(-9))
		return
	}
	ram := k.CPU.Bus.RAM
	k.cpu().Cycles += n / 8 // copy cost
	if write {
		// Guest pages are appended straight into the pipe buffer — no
		// intermediate copy, and at steady state (reader keeps up) no
		// allocation either: a drained buffer is rewound and reused.
		p.buf = ram.AppendBytes(p.buf, k.userPA(buf), int(n))
		// Wake any blocked reader.
		for _, t := range k.tasks {
			if t.State == TaskBlocked {
				t.State = TaskRunnable
			}
		}
		k.setRet(0, n)
		return
	}
	avail := uint64(len(p.buf) - p.r)
	if avail == 0 {
		k.setRet(0, errno(-11)) // -EAGAIN: guest blocks
		return
	}
	if n > avail {
		n = avail
	}
	ram.WriteBytes(k.userPA(buf), p.buf[p.r:p.r+int(n)])
	p.r += int(n)
	if p.r == len(p.buf) {
		p.buf, p.r = p.buf[:0], 0
	}
	k.setRet(0, n)
}

func (k *Kernel) svcPoll() {
	id := k.arg(0)
	if p := k.pipes[id]; p != nil && len(p.buf) > p.r {
		k.setRet(0, 1)
		return
	}
	k.setRet(0, 0)
}

// svcFault implements the fault policy: log every fault; count PAC
// authentication failures; halt the system at the §5.4 threshold;
// otherwise SIGKILL the offending task (the default Linux behaviour the
// paper describes) and schedule its successor.
func (k *Kernel) svcFault() {
	kernelFault := k.arg(0) == 1
	esr, far := k.readFaultInfo()
	isPAC := kernelFault && k.cpu().Signer.IsPoisoned(far)
	rec := OopsRecord{
		ESR: esr, FAR: far, ELR: k.cpu().ELR,
		Kernel: kernelFault, PACFailure: isPAC,
	}
	if k.cur() != nil {
		rec.PID = k.cur().PID
	}
	k.Oops = append(k.Oops, rec)

	if isPAC {
		k.PACFailures++
		if k.PACFailures >= k.Threshold {
			// Strong indication of kernel-exploitation attempts: halt.
			k.setPanic()
			k.setPrevNext(0, 0)
			return
		}
	}
	// SIGKILL the current task.
	victim := k.cur()
	if victim != nil {
		victim.State = TaskZombie
		delete(k.tasks, victim.PID)
	}
	next := k.pickNext()
	if next == nil {
		if len(k.CPUs) > 1 && k.anyRunnable() {
			k.parkCPU(k.active) // siblings keep running
		}
		k.setPrevNext(0, 0) // guest halts with HaltNoNext
		return
	}
	prevAddr := uint64(0)
	if victim != nil {
		prevAddr = victim.Addr
	}
	k.setPrevNext(prevAddr, next.Addr)
	k.switchAccounting(next)
}

// writeTaskKeys mirrors a task's user keys into its thread_struct, where
// the kernel-exit path restores them from (§2.2).
func (k *Kernel) writeTaskKeys(t *Task) {
	ram := k.CPU.Bus.RAM
	base := KVAToPA(t.Addr) + TaskKeys
	for i, key := range t.Keys.Keys {
		ram.Write64(base+uint64(16*i), key.Lo)
		ram.Write64(base+uint64(16*i)+8, key.Hi)
	}
}

// taskSlotsExhausted reports whether the next PID's stack slot would
// land in the secondary boot-stack region of an SMP machine. Both task
// creation paths (svcFork, SpawnOn) check it and fail gracefully — the
// guest gets -EAGAIN, the host an error — because the condition is
// guest-reachable (fork loops) and must never take down the host. On
// uniprocessor builds such PIDs simply fault on their unmapped stack,
// the pre-SMP behaviour, so nothing is gated there.
func (k *Kernel) taskSlotsExhausted() bool {
	return len(k.CPUs) > 1 && k.nextPID >= secondaryStackSlot0
}

// newTask allocates a task struct and kernel stack; the task is affined
// to the executing core. Callers must have checked taskSlotsExhausted.
func (k *Kernel) newTask(ppid, progID int) *Task {
	pid := k.nextPID
	k.nextPID++
	if len(k.CPUs) > 1 && pid >= secondaryStackSlot0 {
		// Unreachable when callers honour taskSlotsExhausted; a PID here
		// would corrupt the secondary boot stacks.
		panic("kernel: task stack arena exhausted")
	}
	addr := k.heapAlloc(TaskSize)
	stackBase := StackBase + uint64(pid)*StackSize
	t := &Task{
		PID: pid, PPID: ppid, Addr: addr,
		StackTop: stackBase + StackSize,
		State:    TaskBlocked,
		ProgID:   progID,
		CPU:      k.active,
	}
	ram := k.CPU.Bus.RAM
	pa := KVAToPA(addr)
	ram.Write64(pa+TaskPID, uint64(pid))
	ram.Write64(pa+TaskPPID, uint64(ppid))
	ram.Write64(pa+TaskStack, stackBase)
	k.tasks[pid] = t
	k.tables[pid] = mmu.NewTable()
	return t
}

// loadUserSpace (re)builds a task's user address space from a program.
func (k *Kernel) loadUserSpace(t *Task, prog *Program) {
	tbl := mmu.NewTable()
	k.tables[t.PID] = tbl
	ram := k.CPU.Bus.RAM
	// Text.
	text := prog.image.Sections[".utext"].Bytes
	for off := uint64(0); off < uint64(len(text))+mmu.PageSize; off += mmu.PageSize {
		tbl.Map(UserTextBase+off, UVAToPA(t.PID, UserTextBase+off), mmu.UserText)
	}
	ram.WriteBytes(UVAToPA(t.PID, UserTextBase), text)
	k.CPU.InvalidateDecode() // host-side code write bypasses store tracking
	// Data window (buffers).
	for off := uint64(0); off < 0x10000; off += mmu.PageSize {
		tbl.Map(UserDataBase+off, UVAToPA(t.PID, UserDataBase+off), mmu.UserData)
	}
	// Stack.
	for off := uint64(0); off <= UserStackSize; off += mmu.PageSize {
		va := UserStackTop - off
		tbl.Map(va, UVAToPA(t.PID, va), mmu.UserData)
	}
	for i, cur := range k.currents {
		if cur == t {
			k.CPUs[i].MMU.TT0 = tbl
		}
	}
}

// cloneUserSpace maps the child's address space: text shared read-only
// with the parent, stack and data copied.
func (k *Kernel) cloneUserSpace(parent, child *Task) {
	src := k.tables[parent.PID]
	tbl := mmu.NewTable()
	k.tables[child.PID] = tbl
	ram := k.CPU.Bus.RAM
	prog := k.programs[parent.ProgID]
	textLen := uint64(0)
	if prog != nil {
		textLen = uint64(len(prog.image.Sections[".utext"].Bytes))
	}
	for off := uint64(0); off < textLen+mmu.PageSize; off += mmu.PageSize {
		if pte, ok := src.Lookup(UserTextBase + off); ok {
			tbl.Map(UserTextBase+off, pte.PA, mmu.UserText) // shared
		}
	}
	copyRange := func(va, size uint64) {
		for off := uint64(0); off < size; off += mmu.PageSize {
			tbl.Map(va+off, UVAToPA(child.PID, va+off), mmu.UserData)
			data := ram.ReadBytes(UVAToPA(parent.PID, va+off), mmu.PageSize)
			ram.WriteBytes(UVAToPA(child.PID, va+off), data)
		}
	}
	copyRange(UserDataBase, 0x10000)
	copyRange(UserStackTop-UserStackSize, UserStackSize+mmu.PageSize)
}

// RegisterProgram makes a user program exec-able under the given id.
func (k *Kernel) RegisterProgram(id int, p *Program) {
	k.programs[id] = p
}

// Spawn creates the initial user task for a program on the boot core
// and makes it current.
func (k *Kernel) Spawn(progID int) (*Task, error) {
	return k.SpawnOn(0, progID)
}

// SpawnOn creates the initial user task for a program on the given core
// and makes it that core's current task, reviving the core if it was
// parked. It is the host-side dispatch path of the SMP model: per-core
// task sets, entered exactly as Spawn always entered the boot core.
func (k *Kernel) SpawnOn(cpuID, progID int) (*Task, error) {
	if cpuID < 0 || cpuID >= len(k.CPUs) {
		return nil, fmt.Errorf("kernel: no cpu %d", cpuID)
	}
	prog := k.programs[progID]
	if prog == nil {
		return nil, fmt.Errorf("kernel: no program %d", progID)
	}
	if k.taskSlotsExhausted() {
		return nil, fmt.Errorf("kernel: task stack arena exhausted")
	}
	savedActive := k.active
	k.active = cpuID
	defer func() { k.active = savedActive }()
	c := k.CPUs[cpuID]
	t := k.newTask(0, progID)
	t.Keys = k.rng.GenerateKeys()
	k.writeTaskKeys(t)
	k.loadUserSpace(t, prog)
	t.State = TaskRunnable
	k.currents[cpuID] = t
	k.parked[cpuID] = false
	k.CPU.Bus.RAM.Write64(percpuPA(cpuID)+PerCPUHalt, 0) // clear any park flag
	c.MMU.TT0 = k.tables[t.PID]
	// Enter user mode directly.
	c.WriteSys(insn.TPIDR_EL1, t.Addr)
	c.SetSP(1, t.StackTop)
	c.SetSP(0, UserStackTop)
	c.EL = 0
	c.PC = prog.entryVA
	return t, nil
}

// SMPQuantum is the round-robin time slice of the deterministic SMP
// scheduler, in instructions. Any fixed value keeps runs
// byte-reproducible; 4096 is small enough for tight cross-core
// interactions (pipe wakeups land within a slice of the writer) and
// large enough that slice-switch overhead vanishes.
const SMPQuantum = 4096

// Run executes until a halt condition or the instruction budget.
//
// Uniprocessor machines run the boot core directly — bit-for-bit the
// pre-SMP behaviour. SMP machines interleave the unparked cores
// round-robin in fixed instruction quanta on one host goroutine: the
// schedule is a pure function of guest state, so repeated runs are
// byte-identical (the determinism contract every suite depends on).
// Run returns when the boot core stops (HLT or error), when the machine
// halts, or when the total budget is exhausted; a secondary core's HLT
// parks that core and the run continues.
func (k *Kernel) Run(maxInstrs uint64) cpu.Stop {
	if len(k.CPUs) == 1 {
		k.active = 0
		return k.CPU.Run(maxInstrs)
	}
	if k.Parallel {
		return k.runParallel(maxInstrs)
	}
	return k.runSMP(maxInstrs)
}

// runParallel executes every unparked core on its own goroutine over the
// shared bus: the opt-in truly-parallel mode. The cores pull fixed
// quanta from one shared instruction budget and run concurrently;
// devices and the kernel service layer are serialized at the bus
// (mem.Bus.SetParallel), page faults take the RAM page lock, and the
// cluster's atomic generation cells — the same shootdown protocol the
// deterministic scheduler uses — keep decoded blocks, traces and host
// TLB pointers coherent across cores.
//
// The memory model matches real hardware more than the round-robin
// scheduler does: instruction interleaving is nondeterministic, so only
// guest workloads that are data-race-free (no unsynchronized cross-core
// stores to shared guest pages) produce well-defined results, and
// host-side snapshot operations (Fork/Reset/Freeze) as well as kernel
// map/unmap of guest-visible pages must not run during the phase. The
// deterministic scheduler remains the default; see DESIGN.md §10.
func (k *Kernel) runParallel(maxInstrs uint64) cpu.Stop {
	bus := k.CPU.Bus
	bus.SetParallel(true)
	defer bus.SetParallel(false)

	var budget atomic.Int64
	budget.Store(int64(maxInstrs))
	var stopAll atomic.Bool
	stops := make([]cpu.Stop, len(k.CPUs))
	var wg sync.WaitGroup
	for i := range k.CPUs {
		if k.parked[i] {
			continue
		}
		wg.Add(1)
		//camo:nondet opt-in truly-parallel SMP mode trades determinism for throughput by design (DESIGN.md §8)
		go func(i int) {
			defer wg.Done()
			c := k.CPUs[i]
			for !stopAll.Load() {
				avail := budget.Load()
				if avail <= 0 {
					return
				}
				slice := int64(SMPQuantum)
				if slice > avail {
					slice = avail
				}
				if !budget.CompareAndSwap(avail, avail-slice) {
					continue
				}
				before := c.Retired
				stop := c.Run(uint64(slice))
				if used := int64(c.Retired - before); used < slice {
					budget.Add(slice - used)
				}
				switch stop.Kind {
				case cpu.StopError:
					stops[i] = stop
					stopAll.Store(true)
					return
				case cpu.StopHLT:
					// The core finished (workload exit, park request,
					// panic): it leaves the run. parked[i] is only ever
					// written by the owning goroutine here and read
					// after the join below.
					k.parked[i] = true
					stops[i] = stop
					bus.DevLock()
					halted := k.Halted
					bus.DevUnlock()
					if i == 0 || halted {
						stopAll.Store(true)
					}
					return
				}
			}
		}(i)
	}
	wg.Wait()
	k.active = 0
	// Boot-core stop wins (error or HLT), then any secondary error, then
	// budget exhaustion — mirroring the deterministic scheduler's
	// reporting.
	if stops[0].Kind == cpu.StopHLT || stops[0].Kind == cpu.StopError {
		return stops[0]
	}
	for _, s := range stops[1:] {
		if s.Kind == cpu.StopError {
			return s
		}
	}
	return cpu.Stop{Kind: cpu.StopLimit}
}

func (k *Kernel) runSMP(maxInstrs uint64) cpu.Stop {
	remaining := maxInstrs
	for remaining > 0 {
		ranAny := false
		for i := range k.CPUs {
			if k.parked[i] || remaining == 0 {
				continue
			}
			slice := uint64(SMPQuantum)
			if slice > remaining {
				slice = remaining
			}
			k.active = i
			before := k.CPUs[i].Retired
			stop := k.CPUs[i].Run(slice)
			used := k.CPUs[i].Retired - before
			if used > remaining {
				remaining = 0
			} else {
				remaining -= used
			}
			ranAny = true
			switch stop.Kind {
			case cpu.StopError:
				k.active = 0
				return stop
			case cpu.StopHLT:
				// The core finished (workload exit, park request, panic):
				// retire it from the rotation. SpawnOn revives it.
				k.parked[i] = true
				if i == 0 || k.Halted {
					k.active = 0
					return stop
				}
			}
		}
		if !ranAny {
			break // every core parked
		}
	}
	k.active = 0
	return cpu.Stop{Kind: cpu.StopLimit}
}

// Current returns the boot core's current task.
func (k *Kernel) Current() *Task { return k.currents[0] }

// CurrentOn returns the given core's current task.
func (k *Kernel) CurrentOn(cpuID int) *Task { return k.currents[cpuID] }

// Parked reports whether a core is out of the scheduling rotation.
func (k *Kernel) Parked(cpuID int) bool { return k.parked[cpuID] }

// Task returns a task by pid.
func (k *Kernel) Task(pid int) *Task { return k.tasks[pid] }

// fileByFDOf resolves a task's fd to its file-state mirror.
func (k *Kernel) fileByFDOf(t *Task, fd int) *fileState {
	if fd < 0 || fd >= TaskNFiles || t == nil {
		return nil
	}
	va := k.CPU.Bus.RAM.Read64(KVAToPA(t.Addr) + TaskFiles + uint64(8*fd))
	return k.files[va]
}

// FileByFD resolves the boot core's current task's fd to its file-state
// mirror.
func (k *Kernel) FileByFD(fd int) *fileState {
	return k.fileByFDOf(k.currents[0], fd)
}

// FileAddrByFD returns the guest VA of the boot core's current task's
// open file.
func (k *Kernel) FileAddrByFD(fd int) uint64 {
	if f := k.FileByFD(fd); f != nil {
		return f.addr
	}
	return 0
}

// FileAddrByFDOn is FileAddrByFD for another core's current task (the
// cross-core attack scenarios inspect both victims' fd tables).
func (k *Kernel) FileAddrByFDOn(cpuID, fd int) uint64 {
	if cpuID < 0 || cpuID >= len(k.currents) {
		return 0
	}
	if f := k.fileByFDOf(k.currents[cpuID], fd); f != nil {
		return f.addr
	}
	return 0
}

// errno encodes a negative errno as the uint64 register representation.
func errno(e int64) uint64 { return uint64(e) }
