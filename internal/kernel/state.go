package kernel

// Snapshot capture and restore: the kernel half of the snapshot/fork/
// reset subsystem (see DESIGN.md §7). CaptureState freezes a booted —
// possibly mid-execution — machine into an immutable State; NewFromState
// forks an independent Kernel from it in O(live host objects) without
// re-running codegen, the §4.1 verifier, or boot; RestoreState rewinds a
// dirtied kernel to the captured point in O(pages touched).

import (
	"fmt"

	"camouflage/internal/asm"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/hyp"
	"camouflage/internal/mem"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// State is an immutable capture of a booted kernel. It deep-copies every
// mutable host-side mirror and freezes guest RAM copy-on-write, so any
// number of kernels can be forked from (or reset to) it concurrently.
// The built image, codegen configuration and program registry are shared:
// they are immutable after construction.
type State struct {
	img  *asm.Image
	cfg  *codegen.Config
	opts Options
	keys pac.KeySet
	rng  *boot.PRNG

	frozen *mem.Frozen
	// cpus holds one register file per core (index 0: boot core).
	cpus  []cpu.State
	mmuOn bool
	tt1   *mmu.Table
	s2    *mmu.Stage2
	hyp   hyp.State
	uart  []byte
	net   mem.NetDevState
	blk   mem.BlockDevState

	heapNext uint64
	nextPID  int
	tasks    map[int]Task
	// currentPIDs/currents mirror each core's current task (deep
	// copies; kept even when zombied out of tasks). parked mirrors the
	// scheduler rotation; activeCPU the core executing at capture.
	currentPIDs []int
	currents    []*Task
	parked      []bool
	activeCPU   int
	tables      map[int]*mmu.Table
	programs    map[int]*Program
	pipes       map[uint64][]byte
	nextPipe    uint64
	files       map[uint64]fileState
	credObj     uint64
	extraOps    map[int]uint64
	modNext     uint64
	pacFailures int
	threshold   int
	oops        []OopsRecord
	halted      bool
	svcCalls    [SvcMax]uint64
	bootCycles  uint64
}

// BootCycles returns the captured machine's boot cost (reporting).
func (st *State) BootCycles() uint64 { return st.bootCycles }

// FrozenPages returns the number of RAM pages in the copy-on-write base.
func (st *State) FrozenPages() int { return st.frozen.Pages() }

// CaptureState freezes the kernel into an immutable State. The live
// kernel keeps running on a fresh copy-on-write overlay, so capturing is
// non-destructive; its cost is one O(populated pages) map merge plus the
// host-mirror deep copies — no guest memory is copied.
func (k *Kernel) CaptureState() *State {
	st := &State{
		img:  k.Img,
		cfg:  k.Cfg,
		opts: k.opts,
		keys: k.keys,
		rng:  k.rng.Clone(),

		frozen: k.CPU.Bus.RAM.Freeze(),
		mmuOn:  k.CPU.MMU.Enabled,
		tt1:    k.CPU.MMU.TT1.Clone(),
		s2:     k.CPU.MMU.S2.Clone(),
		hyp:    k.Hyp.CaptureState(),
		uart:   k.UART.CaptureState(),
		net:    k.Net.CaptureState(),
		blk:    k.Blk.CaptureState(),

		parked:    append([]bool(nil), k.parked...),
		activeCPU: k.active,

		heapNext:    k.heapNext,
		nextPID:     k.nextPID,
		tasks:       make(map[int]Task, len(k.tasks)),
		tables:      make(map[int]*mmu.Table, len(k.tables)),
		programs:    make(map[int]*Program, len(k.programs)),
		pipes:       make(map[uint64][]byte, len(k.pipes)),
		nextPipe:    k.nextPipe,
		files:       make(map[uint64]fileState, len(k.files)),
		credObj:     k.credObj,
		extraOps:    make(map[int]uint64, len(k.extraOps)),
		modNext:     k.modNext,
		pacFailures: k.PACFailures,
		threshold:   k.Threshold,
		oops:        append([]OopsRecord(nil), k.Oops...),
		halted:      k.Halted,
		svcCalls:    k.ServiceCalls,
		bootCycles:  k.BootCycles,
	}
	for _, c := range k.CPUs {
		st.cpus = append(st.cpus, c.CaptureState())
	}
	for pid, t := range k.tasks {
		st.tasks[pid] = *t
	}
	st.currentPIDs = make([]int, len(k.currents))
	st.currents = make([]*Task, len(k.currents))
	for i, cur := range k.currents {
		if cur != nil {
			st.currentPIDs[i] = cur.PID
			cp := *cur
			st.currents[i] = &cp
		}
	}
	//camo:nondet Clone is a pure deep copy; map-rebuild order is irrelevant to the result
	for pid, tbl := range k.tables {
		st.tables[pid] = tbl.Clone()
	}
	for id, p := range k.programs {
		st.programs[id] = p
	}
	for id, p := range k.pipes {
		// Only the unread tail is state; the read cursor resets to 0.
		st.pipes[id] = p.buf[p.r:len(p.buf):len(p.buf)]
	}
	for va, f := range k.files {
		st.files[va] = *f
	}
	for path, ops := range k.extraOps {
		st.extraOps[path] = ops
	}
	return st
}

// restoreHostMirrors fills the kernel's host-side bookkeeping from the
// state's deep copies (shared by fork and reset).
func (k *Kernel) restoreHostMirrors(st *State) {
	k.heapNext = st.heapNext
	k.nextPID = st.nextPID
	k.tasks = make(map[int]*Task, len(st.tasks))
	for pid, t := range st.tasks {
		cp := t
		k.tasks[pid] = &cp
	}
	k.currents = make([]*Task, len(st.currents))
	for i, cur := range st.currents {
		if cur == nil {
			continue
		}
		if t := k.tasks[st.currentPIDs[i]]; t != nil {
			k.currents[i] = t
		} else {
			// The captured current task had already exited (zombie):
			// rebuild it outside the task table, as the live kernel had it.
			cp := *cur
			k.currents[i] = &cp
		}
	}
	k.parked = append([]bool(nil), st.parked...)
	k.active = st.activeCPU
	k.tables = make(map[int]*mmu.Table, len(st.tables))
	//camo:nondet Clone is a pure deep copy; map-rebuild order is irrelevant to the result
	for pid, tbl := range st.tables {
		k.tables[pid] = tbl.Clone()
	}
	k.programs = make(map[int]*Program, len(st.programs))
	for id, p := range st.programs {
		k.programs[id] = p
	}
	k.pipes = make(map[uint64]*pipeState, len(st.pipes))
	for id, buf := range st.pipes {
		k.pipes[id] = &pipeState{buf: buf[:len(buf):len(buf)]}
	}
	k.nextPipe = st.nextPipe
	k.files = make(map[uint64]*fileState, len(st.files))
	for va, f := range st.files {
		cp := f
		k.files[va] = &cp
	}
	k.credObj = st.credObj
	k.extraOps = make(map[int]uint64, len(st.extraOps))
	for path, ops := range st.extraOps {
		k.extraOps[path] = ops
	}
	k.modNext = st.modNext
	k.PACFailures = st.pacFailures
	k.Threshold = st.threshold
	k.Oops = append([]OopsRecord(nil), st.oops...)
	k.Halted = st.halted
	k.ServiceCalls = st.svcCalls
	k.BootCycles = st.bootCycles
	k.rng = st.rng.Clone()

	// Point each core's user table at its current task's clone (or an
	// empty table when the capture predates the first spawn there).
	for i, c := range k.CPUs {
		if cur := k.currents[i]; cur != nil && k.tables[cur.PID] != nil {
			c.MMU.TT0 = k.tables[cur.PID]
		} else {
			c.MMU.TT0 = mmu.NewTable()
		}
	}
}

// NewFromState forks an independent kernel from a captured state: a new
// CPU, bus and MMU wired to fresh device mirrors, guest RAM backed
// copy-on-write by the frozen page store, and every host mirror deep-
// copied. No codegen, verification or boot runs; the fork is ready to
// execute from exactly the captured PC. Safe to call concurrently on the
// same State.
func NewFromState(st *State) (*Kernel, error) {
	c := cpu.New(cpu.Features{PAuth: !st.opts.V80})
	c.Bus.RAM = mem.NewPhysFrom(st.frozen)
	c.MMU.Enabled = st.mmuOn
	c.MMU.TT1 = st.tt1.Clone()
	c.MMU.S2 = st.s2.Clone()

	k := &Kernel{
		CPU:  c,
		CPUs: []*cpu.CPU{c},
		UART: &mem.UART{},
		Net:  &mem.NetDev{},
		Blk:  mem.NewBlockDev(),
		Cfg:  st.cfg,
		Img:  st.img,
		opts: st.opts,
		keys: st.keys,
	}
	if err := k.mapDevices(); err != nil {
		return nil, err
	}
	k.UART.RestoreState(st.uart)
	k.Net.RestoreState(st.net)
	k.Blk.RestoreState(st.blk)

	k.Hyp = hyp.Attach(c)
	for i := 1; i < len(st.cpus); i++ {
		p := c.NewPeer(i)
		k.Hyp.AttachPeer(p)
		k.CPUs = append(k.CPUs, p)
	}
	k.Hyp.RestoreState(st.hyp)

	k.restoreHostMirrors(st)
	for i, cs := range st.cpus {
		k.CPUs[i].RestoreState(cs)
	}
	return k, nil
}

// RestoreState rewinds a kernel to a captured state in O(pages touched):
// the RAM overlay is dropped back to the state's frozen base and every
// host mirror is restored from the deep copies. The kernel must descend
// from the same built image as the state (normally: it was forked from
// it, or the state was captured from it).
func (k *Kernel) RestoreState(st *State) error {
	if k.Img != st.img {
		return fmt.Errorf("kernel: restore across different built images")
	}
	if len(k.CPUs) != len(st.cpus) {
		return fmt.Errorf("kernel: restore across different CPU counts (%d vs %d)",
			len(k.CPUs), len(st.cpus))
	}
	k.CPU.Bus.RAM.ResetTo(st.frozen)
	k.UART.RestoreState(st.uart)
	k.Net.RestoreState(st.net)
	k.Blk.RestoreState(st.blk)
	for _, c := range k.CPUs {
		c.MMU.Enabled = st.mmuOn
	}
	k.CPU.MMU.TT1.RestoreFrom(st.tt1)
	k.CPU.MMU.S2.RestoreFrom(st.s2)
	k.Hyp.RestoreState(st.hyp)
	k.restoreHostMirrors(st)
	// CPU restore last: it drops the decoded-block cache and flushes the
	// TLBs, sealing the rewind on every core.
	for i, cs := range st.cpus {
		k.CPUs[i].RestoreState(cs)
	}
	return nil
}
