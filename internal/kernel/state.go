package kernel

// Snapshot capture and restore: the kernel half of the snapshot/fork/
// reset subsystem (see DESIGN.md §7). CaptureState freezes a booted —
// possibly mid-execution — machine into an immutable State; NewFromState
// forks an independent Kernel from it in O(live host objects) without
// re-running codegen, the §4.1 verifier, or boot; RestoreState rewinds a
// dirtied kernel to the captured point in O(pages touched).

import (
	"fmt"

	"camouflage/internal/asm"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/hyp"
	"camouflage/internal/mem"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// State is an immutable capture of a booted kernel. It deep-copies every
// mutable host-side mirror and freezes guest RAM copy-on-write, so any
// number of kernels can be forked from (or reset to) it concurrently.
// The built image, codegen configuration and program registry are shared:
// they are immutable after construction.
type State struct {
	img  *asm.Image
	cfg  *codegen.Config
	opts Options
	keys pac.KeySet
	rng  *boot.PRNG

	frozen *mem.Frozen
	cpu    cpu.State
	mmuOn  bool
	tt1    *mmu.Table
	s2     *mmu.Stage2
	hyp    hyp.State
	uart   []byte
	net    mem.NetDevState
	blk    mem.BlockDevState

	heapNext    uint64
	nextPID     int
	tasks       map[int]Task
	currentPID  int
	current     *Task // deep copy; kept even when zombied out of tasks
	tables      map[int]*mmu.Table
	programs    map[int]*Program
	pipes       map[uint64][]byte
	nextPipe    uint64
	files       map[uint64]fileState
	credObj     uint64
	extraOps    map[int]uint64
	modNext     uint64
	pacFailures int
	threshold   int
	oops        []OopsRecord
	halted      bool
	svcCalls    map[uint64]uint64
	bootCycles  uint64
}

// BootCycles returns the captured machine's boot cost (reporting).
func (st *State) BootCycles() uint64 { return st.bootCycles }

// FrozenPages returns the number of RAM pages in the copy-on-write base.
func (st *State) FrozenPages() int { return st.frozen.Pages() }

// CaptureState freezes the kernel into an immutable State. The live
// kernel keeps running on a fresh copy-on-write overlay, so capturing is
// non-destructive; its cost is one O(populated pages) map merge plus the
// host-mirror deep copies — no guest memory is copied.
func (k *Kernel) CaptureState() *State {
	st := &State{
		img:  k.Img,
		cfg:  k.Cfg,
		opts: k.opts,
		keys: k.keys,
		rng:  k.rng.Clone(),

		frozen: k.CPU.Bus.RAM.Freeze(),
		cpu:    k.CPU.CaptureState(),
		mmuOn:  k.CPU.MMU.Enabled,
		tt1:    k.CPU.MMU.TT1.Clone(),
		s2:     k.CPU.MMU.S2.Clone(),
		hyp:    k.Hyp.CaptureState(),
		uart:   k.UART.CaptureState(),
		net:    k.Net.CaptureState(),
		blk:    k.Blk.CaptureState(),

		heapNext:    k.heapNext,
		nextPID:     k.nextPID,
		tasks:       make(map[int]Task, len(k.tasks)),
		tables:      make(map[int]*mmu.Table, len(k.tables)),
		programs:    make(map[int]*Program, len(k.programs)),
		pipes:       make(map[uint64][]byte, len(k.pipes)),
		nextPipe:    k.nextPipe,
		files:       make(map[uint64]fileState, len(k.files)),
		credObj:     k.credObj,
		extraOps:    make(map[int]uint64, len(k.extraOps)),
		modNext:     k.modNext,
		pacFailures: k.PACFailures,
		threshold:   k.Threshold,
		oops:        append([]OopsRecord(nil), k.Oops...),
		halted:      k.Halted,
		svcCalls:    make(map[uint64]uint64, len(k.ServiceCalls)),
		bootCycles:  k.BootCycles,
	}
	for pid, t := range k.tasks {
		st.tasks[pid] = *t
	}
	if k.current != nil {
		st.currentPID = k.current.PID
		cp := *k.current
		st.current = &cp
	}
	for pid, tbl := range k.tables {
		st.tables[pid] = tbl.Clone()
	}
	for id, p := range k.programs {
		st.programs[id] = p
	}
	for id, p := range k.pipes {
		st.pipes[id] = p.buf[:len(p.buf):len(p.buf)]
	}
	for va, f := range k.files {
		st.files[va] = *f
	}
	for path, ops := range k.extraOps {
		st.extraOps[path] = ops
	}
	for code, n := range k.ServiceCalls {
		st.svcCalls[code] = n
	}
	return st
}

// restoreHostMirrors fills the kernel's host-side bookkeeping from the
// state's deep copies (shared by fork and reset).
func (k *Kernel) restoreHostMirrors(st *State) {
	k.heapNext = st.heapNext
	k.nextPID = st.nextPID
	k.tasks = make(map[int]*Task, len(st.tasks))
	for pid, t := range st.tasks {
		cp := t
		k.tasks[pid] = &cp
	}
	k.current = nil
	if st.current != nil {
		if t := k.tasks[st.currentPID]; t != nil {
			k.current = t
		} else {
			// The captured current task had already exited (zombie):
			// rebuild it outside the task table, as the live kernel had it.
			cp := *st.current
			k.current = &cp
		}
	}
	k.tables = make(map[int]*mmu.Table, len(st.tables))
	for pid, tbl := range st.tables {
		k.tables[pid] = tbl.Clone()
	}
	k.programs = make(map[int]*Program, len(st.programs))
	for id, p := range st.programs {
		k.programs[id] = p
	}
	k.pipes = make(map[uint64]*pipeState, len(st.pipes))
	for id, buf := range st.pipes {
		k.pipes[id] = &pipeState{buf: buf[:len(buf):len(buf)]}
	}
	k.nextPipe = st.nextPipe
	k.files = make(map[uint64]*fileState, len(st.files))
	for va, f := range st.files {
		cp := f
		k.files[va] = &cp
	}
	k.credObj = st.credObj
	k.extraOps = make(map[int]uint64, len(st.extraOps))
	for path, ops := range st.extraOps {
		k.extraOps[path] = ops
	}
	k.modNext = st.modNext
	k.PACFailures = st.pacFailures
	k.Threshold = st.threshold
	k.Oops = append([]OopsRecord(nil), st.oops...)
	k.Halted = st.halted
	k.ServiceCalls = make(map[uint64]uint64, len(st.svcCalls))
	for code, n := range st.svcCalls {
		k.ServiceCalls[code] = n
	}
	k.BootCycles = st.bootCycles
	k.rng = st.rng.Clone()

	// Point the MMU's user table at the current task's clone (or an empty
	// table when the capture predates the first spawn).
	if k.current != nil && k.tables[k.current.PID] != nil {
		k.CPU.MMU.TT0 = k.tables[k.current.PID]
	} else {
		k.CPU.MMU.TT0 = mmu.NewTable()
	}
}

// NewFromState forks an independent kernel from a captured state: a new
// CPU, bus and MMU wired to fresh device mirrors, guest RAM backed
// copy-on-write by the frozen page store, and every host mirror deep-
// copied. No codegen, verification or boot runs; the fork is ready to
// execute from exactly the captured PC. Safe to call concurrently on the
// same State.
func NewFromState(st *State) (*Kernel, error) {
	c := cpu.New(cpu.Features{PAuth: !st.opts.V80})
	c.Bus.RAM = mem.NewPhysFrom(st.frozen)
	c.MMU.Enabled = st.mmuOn
	c.MMU.TT1 = st.tt1.Clone()
	c.MMU.S2 = st.s2.Clone()

	k := &Kernel{
		CPU:  c,
		UART: &mem.UART{},
		Net:  &mem.NetDev{},
		Blk:  mem.NewBlockDev(),
		Cfg:  st.cfg,
		Img:  st.img,
		opts: st.opts,
		keys: st.keys,
	}
	if err := k.mapDevices(); err != nil {
		return nil, err
	}
	k.UART.RestoreState(st.uart)
	k.Net.RestoreState(st.net)
	k.Blk.RestoreState(st.blk)

	k.Hyp = hyp.Attach(c)
	k.Hyp.RestoreState(st.hyp)

	k.restoreHostMirrors(st)
	c.RestoreState(st.cpu)
	return k, nil
}

// RestoreState rewinds a kernel to a captured state in O(pages touched):
// the RAM overlay is dropped back to the state's frozen base and every
// host mirror is restored from the deep copies. The kernel must descend
// from the same built image as the state (normally: it was forked from
// it, or the state was captured from it).
func (k *Kernel) RestoreState(st *State) error {
	if k.Img != st.img {
		return fmt.Errorf("kernel: restore across different built images")
	}
	k.CPU.Bus.RAM.ResetTo(st.frozen)
	k.UART.RestoreState(st.uart)
	k.Net.RestoreState(st.net)
	k.Blk.RestoreState(st.blk)
	k.CPU.MMU.Enabled = st.mmuOn
	k.CPU.MMU.TT1.RestoreFrom(st.tt1)
	k.CPU.MMU.S2.RestoreFrom(st.s2)
	k.Hyp.RestoreState(st.hyp)
	k.restoreHostMirrors(st)
	// CPU restore last: it drops the decoded-block cache and flushes the
	// TLB, sealing the rewind.
	k.CPU.RestoreState(st.cpu)
	return nil
}
