package kernel

import (
	"fmt"

	"camouflage/internal/asm"
	"camouflage/internal/insn"
)

// Program is an assembled user-space (EL0) program.
type Program struct {
	Name    string
	image   *asm.Image
	entryVA uint64
}

// EntryVA returns the program's entry point.
func (p *Program) EntryVA() uint64 { return p.entryVA }

// UserASM is the builder handed to user-program constructors. It wraps the
// assembler with syscall conveniences; benchmarks use the raw assembler
// for loops.
type UserASM struct {
	// A is the underlying assembler, positioned in ".utext".
	A *asm.Assembler
}

// MovImm loads a 64-bit immediate.
func (u *UserASM) MovImm(rd insn.Reg, v uint64) {
	u.A.I(insn.MOVImm64(rd, v)...)
}

// Syscall issues a syscall with up to four immediate arguments.
func (u *UserASM) Syscall(nr uint16, args ...uint64) {
	for i, v := range args {
		u.MovImm(insn.Reg(i), v)
	}
	u.A.I(insn.MOVZ(insn.X8, nr, 0))
	u.A.I(insn.SVC(0))
}

// SyscallReg issues a syscall with arguments already in x0..; only x8 is
// loaded.
func (u *UserASM) SyscallReg(nr uint16) {
	u.A.I(insn.MOVZ(insn.X8, nr, 0))
	u.A.I(insn.SVC(0))
}

// Exit terminates the process.
func (u *UserASM) Exit(status uint64) {
	u.Syscall(SysExit, status)
}

// CounterLoop emits a countdown loop: body runs `count` times using rc as
// the counter (rc must not be clobbered by the body).
func (u *UserASM) CounterLoop(label string, rc insn.Reg, count uint64, body func()) {
	u.MovImm(rc, count)
	u.A.Label(label)
	body()
	u.A.I(insn.SUBi(rc, rc, 1))
	u.A.CBNZ(rc, label)
}

// BuildProgram assembles a user program. The build callback emits code
// after the "_start" label; it must end the program itself (normally via
// Exit).
func BuildProgram(name string, build func(u *UserASM)) (*Program, error) {
	a := asm.New()
	a.Section(".utext")
	a.Label("_start")
	u := &UserASM{A: a}
	build(u)
	img, err := a.Link(map[string]uint64{".text": 0xFFFF_FFFF_0000, ".utext": UserTextBase})
	if err != nil {
		return nil, fmt.Errorf("userprog %s: %w", name, err)
	}
	return &Program{Name: name, image: img, entryVA: img.Symbols["_start"]}, nil
}
