package kernel

import (
	"camouflage/internal/asm"
	"camouflage/internal/codegen"
	"camouflage/internal/insn"
)

// protFn emits an instrumented non-leaf function: prologue, body, epilogue.
func protFn(a *asm.Assembler, cfg *codegen.Config, name string, body func()) {
	a.Label(name)
	cfg.Prologue(a, name)
	body()
	cfg.Epilogue(a, name)
}

// emitSyscalls emits the syscall wrappers and the VFS layer. Each wrapper
// receives the pt_regs pointer in x0 (arguments live in the trap frame)
// and returns its result in x0. Call-tree shapes approximate the depth of
// the corresponding Linux paths, so that instrumentation overhead scales
// with call rate as in §6.1.3.
func emitSyscalls(a *asm.Assembler, cfg *codegen.Config) {
	// Shared fillers (standing in for the call depth of helper layers).
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_pid_path", ALU: 3})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_rw_verify", ALU: 4, Loads: 1})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_walk3", ALU: 6, Loads: 2})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_walk2", ALU: 3, Calls: []string{"f_walk3"}})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_walk1", ALU: 2, Calls: []string{"f_walk2"}})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_stat_fill", ALU: 4, Stores: 4})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_sigact", ALU: 4, Stores: 1})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_close_tree", ALU: 3, Loads: 1})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_copy3", ALU: 5, Stores: 3})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_copy2", ALU: 4, Calls: []string{"f_copy3"}})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_copy1", ALU: 3, Calls: []string{"f_copy2", "f_copy3"}})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_exec3", ALU: 8, Stores: 4})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_exec2", ALU: 4, Calls: []string{"f_exec3", "f_exec3"}})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_exec1", ALU: 4, Calls: []string{"f_exec2", "f_walk1"}})
	cfg.EmitFunc(a, codegen.FuncSpec{Name: "f_select_prep", ALU: 3, Loads: 1})

	// sys_ni: unimplemented syscall.
	a.Label("sys_ni")
	a.I(insn.MOVN(insn.X0, 37, 0)) // -ENOSYS
	a.I(insn.RET())

	// fdget(fd in x0) → file pointer in x0 (0 if bad).
	protFn(a, cfg, "fdget", func() {
		a.I(insn.MOVZ(insn.X10, TaskNFiles, 0))
		a.I(insn.CMP(insn.X0, insn.X10))
		a.Bcond(insn.CC, "fdget.ok")
		a.I(insn.MOVZ(insn.X0, 0, 0))
		a.B("fdget.out")
		a.Label("fdget.ok")
		a.I(insn.MRS(insn.X9, insn.TPIDR_EL1))
		a.I(insn.LSLi(insn.X10, insn.X0, 3))
		a.I(insn.ADDr(insn.X9, insn.X9, insn.X10))
		a.I(insn.LDR(insn.X0, insn.X9, TaskFiles))
		a.Label("fdget.out")
	})

	// sys_getppid / sys_getpid.
	protFn(a, cfg, "sys_getppid", func() {
		a.BL("f_pid_path")
		a.I(insn.MRS(insn.X9, insn.TPIDR_EL1))
		a.I(insn.LDR(insn.X0, insn.X9, TaskPPID))
	})
	protFn(a, cfg, "sys_getpid", func() {
		a.BL("f_pid_path")
		a.I(insn.MRS(insn.X9, insn.TPIDR_EL1))
		a.I(insn.LDR(insn.X0, insn.X9, TaskPID))
	})

	// vfs_read / vfs_write: x0 = fd, x1 = buf, x2 = len. These contain
	// the Listing-4 authenticated f_ops access and the indirect call.
	for _, rw := range []struct {
		name  string
		opOff uint16
	}{{"vfs_read", OpsRead}, {"vfs_write", OpsWrite}} {
		rw := rw
		protFn(a, cfg, rw.name, func() {
			a.I(insn.SUBi(insn.SP, insn.SP, 32))
			a.I(insn.STP(insn.X1, insn.X2, insn.SP, 0))
			a.BL("f_rw_verify")
			a.BL("fdget") // x0: fd → file
			a.CBZ(insn.X0, rw.name+".ebadf")
			// Listing 4: authenticated load of file->f_ops.
			cfg.SignedFieldLoad(a, insn.X8, insn.X0, FileOps, tcFileOps, false)
			a.I(insn.LDR(insn.X9, insn.X8, rw.opOff))
			a.I(insn.LDP(insn.X1, insn.X2, insn.SP, 0))
			a.I(insn.BLR(insn.X9)) // file_ops(fp)->read(fp, buf, len)
			a.B(rw.name + ".out")
			a.Label(rw.name + ".ebadf")
			a.I(insn.MOVN(insn.X0, 8, 0)) // -EBADF
			a.Label(rw.name + ".out")
			a.I(insn.ADDi(insn.SP, insn.SP, 32))
		})
	}

	// sys_read / sys_write wrappers: unpack pt_regs.
	protFn(a, cfg, "sys_read", func() {
		a.I(insn.LDR(insn.X2, insn.X0, 16))
		a.I(insn.LDR(insn.X1, insn.X0, 8))
		a.I(insn.LDR(insn.X0, insn.X0, 0))
		a.BL("vfs_read")
	})
	protFn(a, cfg, "sys_write", func() {
		a.I(insn.LDR(insn.X2, insn.X0, 16))
		a.I(insn.LDR(insn.X1, insn.X0, 8))
		a.I(insn.LDR(insn.X0, insn.X0, 0))
		a.BL("vfs_write")
	})

	// sys_openat(pt_regs): x1 = path id, x2 = flags.
	protFn(a, cfg, "sys_openat", func() {
		a.I(insn.LDR(insn.X2, insn.X0, 16))
		a.I(insn.LDR(insn.X1, insn.X0, 8))
		a.BL("do_sys_open")
	})
	protFn(a, cfg, "do_sys_open", func() {
		a.I(insn.SUBi(insn.SP, insn.SP, 32))
		a.I(insn.STP(insn.X1, insn.X2, insn.SP, 0))
		a.BL("f_walk1") // do_filp_open → link_path_walk → walk_component
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDP(insn.X1, insn.X2, insn.SP, 0))
		a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0))
		a.I(insn.STR(insn.X2, insn.X11, PerCPUArg0+8))
		emitServiceCall(a, cfg, SvcOpen)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0)) // fd or -errno
		a.I(insn.LSRi(insn.X9, insn.X0, 63))
		a.CBNZ(insn.X9, "do_sys_open.fail")
		// set_file_ops(fp, ops): sign and store f_ops, then f_cred (§4.5).
		a.I(insn.LDR(insn.X1, insn.X11, PerCPURet0+8))  // file object
		a.I(insn.LDR(insn.X2, insn.X11, PerCPUArg0+32)) // ops table VA
		cfg.SignedFieldStore(a, insn.X1, insn.X2, FileOps, tcFileOps, false)
		a.I(insn.LDR(insn.X2, insn.X11, PerCPUArg0+40)) // cred VA
		cfg.SignedFieldStore(a, insn.X1, insn.X2, FileCred, tcFileCred, false)
		a.Label("do_sys_open.fail")
		a.I(insn.ADDi(insn.SP, insn.SP, 32))
	})

	// sys_close(pt_regs): x0 = fd.
	protFn(a, cfg, "sys_close", func() {
		a.I(insn.LDR(insn.X1, insn.X0, 0))
		a.BL("f_close_tree")
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0))
		emitServiceCall(a, cfg, SvcClose)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))
	})

	// sys_fstat(pt_regs): x0 = fd. Validates the fd through the
	// authenticated ops pointer, then fills the stat buffer.
	protFn(a, cfg, "sys_fstat", func() {
		a.I(insn.LDR(insn.X0, insn.X0, 0))
		a.BL("fdget")
		a.CBZ(insn.X0, "sys_fstat.ebadf")
		cfg.SignedFieldLoad(a, insn.X8, insn.X0, FileOps, tcFileOps, false)
		// Permission check: authenticate and dereference f_cred (§4.5
		// notes the same approach protects "other sensitive pointers,
		// such as the f_cred pointer to file credentials").
		cfg.SignedFieldLoad(a, insn.X7, insn.X0, FileCred, tcFileCred, false)
		a.I(insn.LDR(insn.X7, insn.X7, 0)) // cred->uid
		a.BL("f_stat_fill")
		a.I(insn.MOVZ(insn.X0, 0, 0))
		a.B("sys_fstat.out")
		a.Label("sys_fstat.ebadf")
		a.I(insn.MOVN(insn.X0, 8, 0))
		a.Label("sys_fstat.out")
	})

	// sys_fstatat(pt_regs): x1 = path id (path-walk stat).
	protFn(a, cfg, "sys_fstatat", func() {
		a.I(insn.LDR(insn.X1, insn.X0, 8))
		a.BL("f_walk1")
		a.BL("f_stat_fill")
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0))
		emitServiceCall(a, cfg, SvcStat)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))
	})

	// sys_pselect6(pt_regs): x0 = nfds; polls each fd through the
	// authenticated ops pointer (a DFI-heavy path).
	protFn(a, cfg, "sys_pselect6", func() {
		a.I(insn.SUBi(insn.SP, insn.SP, 32))
		a.I(insn.LDR(insn.X9, insn.X0, 0))
		a.I(insn.STP(insn.X9, insn.XZR, insn.SP, 0)) // [nfds, i=0]
		a.BL("f_select_prep")
		a.Label("sys_pselect6.loop")
		a.I(insn.LDP(insn.X9, insn.X10, insn.SP, 0))
		a.I(insn.CMP(insn.X10, insn.X9))
		a.Bcond(insn.CS, "sys_pselect6.done")
		a.I(insn.ORRr(insn.X0, insn.XZR, insn.X10, 0))
		a.BL("fdget")
		a.CBZ(insn.X0, "sys_pselect6.next")
		cfg.SignedFieldLoad(a, insn.X8, insn.X0, FileOps, tcFileOps, false)
		a.I(insn.LDR(insn.X9, insn.X8, OpsPoll))
		a.I(insn.BLR(insn.X9))
		a.Label("sys_pselect6.next")
		a.I(insn.LDP(insn.X9, insn.X10, insn.SP, 0))
		a.I(insn.ADDi(insn.X10, insn.X10, 1))
		a.I(insn.STP(insn.X9, insn.X10, insn.SP, 0))
		a.B("sys_pselect6.loop")
		a.Label("sys_pselect6.done")
		a.I(insn.MOVZ(insn.X0, 0, 0))
		a.I(insn.ADDi(insn.SP, insn.SP, 32))
	})

	// sys_sigaction(pt_regs): x1 = handler VA.
	protFn(a, cfg, "sys_sigaction", func() {
		a.I(insn.LDR(insn.X1, insn.X0, 8))
		a.BL("f_sigact")
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0))
		emitServiceCall(a, cfg, SvcSigact)
		a.I(insn.MOVZ(insn.X0, 0, 0))
	})

	// sys_kill(pt_regs): x0 = pid, x1 = sig.
	protFn(a, cfg, "sys_kill", func() {
		a.I(insn.LDR(insn.X1, insn.X0, 8))
		a.I(insn.LDR(insn.X2, insn.X0, 0))
		a.BL("f_sigact")
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X2, insn.X11, PerCPUArg0))
		a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0+8))
		emitServiceCall(a, cfg, SvcKill)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))
	})

	// sys_sigreturn: restore the interrupted ELR.
	protFn(a, cfg, "sys_sigreturn", func() {
		emitServiceCall(a, cfg, SvcSigreturn)
		a.I(insn.MOVZ(insn.X0, 0, 0))
	})

	// sys_sched_yield: pick next and context-switch (§5.2).
	protFn(a, cfg, "sys_sched_yield", func() {
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.XZR, insn.X11, PerCPUArg0)) // yield, not block
		emitServiceCall(a, cfg, SvcPickNext)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDP(insn.X0, insn.X1, insn.X11, PerCPUPrev))
		a.I(insn.CMP(insn.X0, insn.X1))
		a.Bcond(insn.EQ, "sys_sched_yield.out")
		a.BL("cpu_switch_to")
		a.Label("sys_sched_yield.out")
		a.I(insn.MOVZ(insn.X0, 0, 0))
	})

	// sys_clone: fork. The service allocates the child; the parent copies
	// its own trap frame into the child (the visible half of
	// copy_process), and the child's return value is zeroed.
	protFn(a, cfg, "sys_clone", func() {
		a.I(insn.SUBi(insn.SP, insn.SP, 32))
		a.I(insn.STR(insn.X0, insn.SP, 0)) // parent pt_regs
		a.BL("f_copy1")
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X9, insn.SP, 0))
		a.I(insn.STR(insn.X9, insn.X11, PerCPUArg0))
		emitServiceCall(a, cfg, SvcFork)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))   // child pid
		a.I(insn.LDR(insn.X1, insn.X11, PerCPURet0+8)) // child pt_regs
		a.I(insn.LDR(insn.X9, insn.SP, 0))
		for off := int16(0); off < PtRegsSize; off += 16 {
			a.I(insn.LDP(insn.X12, insn.X13, insn.X9, off))
			a.I(insn.STP(insn.X12, insn.X13, insn.X1, off))
		}
		a.I(insn.STR(insn.XZR, insn.X1, 0)) // child sees x0 = 0
		a.I(insn.ADDi(insn.SP, insn.SP, 32))
	})

	// sys_execve(pt_regs): x0 = program id. Regenerates the user PAuth
	// keys, as exec() does (§2.2).
	protFn(a, cfg, "sys_execve", func() {
		a.I(insn.LDR(insn.X1, insn.X0, 0))
		a.BL("f_exec1")
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0))
		emitServiceCall(a, cfg, SvcExec)
		a.I(insn.MOVZ(insn.X0, 0, 0))
	})

	// sys_exit: never returns; hands off to the fault/exit tail.
	a.Label("sys_exit")
	a.I(insn.LDR(insn.X1, insn.X0, 0))
	emitPerCPUAddr(a, cfg, insn.X11)
	a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0))
	emitServiceCall(a, cfg, SvcExit)
	a.B("after_fault")

	// sys_pipe2(pt_regs): x0 = user buffer for the two fds.
	protFn(a, cfg, "sys_pipe2", func() {
		a.I(insn.SUBi(insn.SP, insn.SP, 32))
		a.I(insn.LDR(insn.X1, insn.X0, 0))
		a.I(insn.STR(insn.X1, insn.SP, 0))
		emitServiceCall(a, cfg, SvcPipe)
		emitPerCPUAddr(a, cfg, insn.X11)
		// Sign both pipe files' f_ops and f_cred (set_file_ops /
		// set_file_cred at creation, §4.5).
		a.I(insn.LDR(insn.X2, insn.X11, PerCPUArg0+16))
		a.I(insn.LDR(insn.X3, insn.X11, PerCPUArg0+24))
		cfg.SignedFieldStore(a, insn.X2, insn.X3, FileOps, tcFileOps, false)
		a.I(insn.LDR(insn.X3, insn.X11, PerCPUArg0))
		cfg.SignedFieldStore(a, insn.X2, insn.X3, FileCred, tcFileCred, false)
		a.I(insn.LDR(insn.X2, insn.X11, PerCPUArg0+32))
		a.I(insn.LDR(insn.X3, insn.X11, PerCPUArg0+40))
		cfg.SignedFieldStore(a, insn.X2, insn.X3, FileOps, tcFileOps, false)
		a.I(insn.LDR(insn.X3, insn.X11, PerCPUArg0))
		cfg.SignedFieldStore(a, insn.X2, insn.X3, FileCred, tcFileCred, false)
		// Deliver the fds to user space.
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))
		a.I(insn.LDR(insn.X1, insn.X11, PerCPURet0+8))
		a.I(insn.LDR(insn.X9, insn.SP, 0))
		a.I(insn.STR(insn.X0, insn.X9, 0))
		a.I(insn.STR(insn.X1, insn.X9, 8))
		a.I(insn.MOVZ(insn.X0, 0, 0))
		a.I(insn.ADDi(insn.SP, insn.SP, 32))
	})

	// sys_workrun: execute the statically initialised work_struct through
	// its authenticated function pointer (run-time linkage, §4.6).
	protFn(a, cfg, "sys_workrun", func() {
		emitMov64(a, insn.X1, DataBase+StaticWorkOffset)
		cfg.SignedFieldLoad(a, insn.X8, insn.X1, WorkFunc, tcWorkFunc, true)
		a.I(insn.ORRr(insn.X0, insn.XZR, insn.X1, 0))
		a.I(insn.BLR(insn.X8))
		a.I(insn.MOVZ(insn.X0, 0, 0))
	})

	// work_handler(work in x0): bumps the work counter in .data.
	protFn(a, cfg, "work_handler", func() {
		emitMov64(a, insn.X9, DataBase+StaticWorkOffset+WorkData)
		a.I(insn.LDR(insn.X10, insn.X9, 0))
		a.I(insn.ADDi(insn.X10, insn.X10, 1))
		a.I(insn.STR(insn.X10, insn.X9, 0))
	})

	// sys_nanosleep: modelled as a yield.
	a.Label("sys_nanosleep")
	a.B("sys_sched_yield")
}

// emitDrivers emits the file_operations implementations.
func emitDrivers(a *asm.Assembler, cfg *codegen.Config) {
	// dev_ok_open / dev_release / dev_poll: trivial members.
	a.Label("dev_ok_open")
	a.I(insn.MOVZ(insn.X0, 0, 0))
	a.I(insn.RET())
	a.Label("dev_release")
	a.I(insn.MOVZ(insn.X0, 0, 0))
	a.I(insn.RET())
	a.Label("dev_poll")
	a.I(insn.MOVZ(insn.X0, 1, 0))
	a.I(insn.RET())

	// /dev/zero read: fill the user buffer with zeros.
	protFn(a, cfg, "dev_zero_read", func() {
		a.I(insn.ORRr(insn.X9, insn.XZR, insn.X2, 0))
		a.Label("dev_zero_read.loop")
		a.I(insn.MOVZ(insn.X10, 8, 0))
		a.I(insn.CMP(insn.X9, insn.X10))
		a.Bcond(insn.CC, "dev_zero_read.done")
		a.I(insn.STR(insn.XZR, insn.X1, 0))
		a.I(insn.ADDi(insn.X1, insn.X1, 8))
		a.I(insn.SUBi(insn.X9, insn.X9, 8))
		a.B("dev_zero_read.loop")
		a.Label("dev_zero_read.done")
		a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	})

	// /dev/null: read gives EOF, write swallows everything.
	a.Label("dev_null_read")
	a.I(insn.MOVZ(insn.X0, 0, 0))
	a.I(insn.RET())
	a.Label("dev_null_write")
	a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	a.I(insn.RET())
	a.Label("dev_zero_write")
	a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	a.I(insn.RET())

	// Pipe read: service-backed with blocking (drives the lmbench
	// context-switch measurement through real cpu_switch_to calls).
	protFn(a, cfg, "pipe_read", func() {
		a.I(insn.SUBi(insn.SP, insn.SP, 32))
		a.I(insn.STP(insn.X0, insn.X1, insn.SP, 0))
		a.I(insn.STR(insn.X2, insn.SP, 16))
		a.Label("pipe_read.retry")
		a.I(insn.LDR(insn.X9, insn.SP, 0))
		a.I(insn.LDR(insn.X10, insn.X9, FileInode))
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X10, insn.X11, PerCPUArg0))
		a.I(insn.LDR(insn.X10, insn.SP, 8))
		a.I(insn.STR(insn.X10, insn.X11, PerCPUArg0+8))
		a.I(insn.LDR(insn.X10, insn.SP, 16))
		a.I(insn.STR(insn.X10, insn.X11, PerCPUArg0+16))
		a.I(insn.STR(insn.XZR, insn.X11, PerCPUArg0+24)) // read
		emitServiceCall(a, cfg, SvcPipeIO)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))
		a.I(insn.MOVN(insn.X9, 10, 0)) // -EAGAIN
		a.I(insn.CMP(insn.X0, insn.X9))
		a.Bcond(insn.NE, "pipe_read.done")
		// Empty: block and switch away; retry when woken.
		a.I(insn.MOVZ(insn.X9, 1, 0))
		a.I(insn.STR(insn.X9, insn.X11, PerCPUArg0))
		emitServiceCall(a, cfg, SvcPickNext)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDP(insn.X0, insn.X1, insn.X11, PerCPUPrev))
		a.BL("cpu_switch_to")
		a.B("pipe_read.retry")
		a.Label("pipe_read.done")
		a.I(insn.ADDi(insn.SP, insn.SP, 32))
	})

	// Pipe write: copy into the pipe buffer (host side) and wake readers.
	protFn(a, cfg, "pipe_write", func() {
		a.I(insn.LDR(insn.X10, insn.X0, FileInode))
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X10, insn.X11, PerCPUArg0))
		a.I(insn.STR(insn.X1, insn.X11, PerCPUArg0+8))
		a.I(insn.STR(insn.X2, insn.X11, PerCPUArg0+16))
		a.I(insn.MOVZ(insn.X9, 1, 0))
		a.I(insn.STR(insn.X9, insn.X11, PerCPUArg0+24)) // write
		emitServiceCall(a, cfg, SvcPipeIO)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))
	})

	// pipe_poll: service-backed readiness.
	protFn(a, cfg, "pipe_poll", func() {
		a.I(insn.LDR(insn.X10, insn.X0, FileInode))
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.STR(insn.X10, insn.X11, PerCPUArg0))
		emitServiceCall(a, cfg, SvcPoll)
		emitPerCPUAddr(a, cfg, insn.X11)
		a.I(insn.LDR(insn.X0, insn.X11, PerCPURet0))
	})

	// Socket read: drain the NIC receive window (Figure 4's download).
	protFn(a, cfg, "sock_read", func() {
		emitMov64(a, insn.X12, NetBase)
		a.I(insn.LDR(insn.X9, insn.X12, 0)) // NetRxAvail
		a.CBZ(insn.X9, "sock_read.empty")
		a.I(insn.CMP(insn.X2, insn.X9))
		a.I(insn.CSEL(insn.X10, insn.X2, insn.X9, insn.CC)) // n = min(len, avail)
		a.I(insn.ORRr(insn.X0, insn.XZR, insn.X10, 0))
		a.Label("sock_read.loop")
		a.I(insn.MOVZ(insn.X11, 8, 0))
		a.I(insn.CMP(insn.X10, insn.X11))
		a.Bcond(insn.CC, "sock_read.fin")
		a.I(insn.LDR(insn.X11, insn.X12, 8)) // NetRxData
		a.I(insn.STR(insn.X11, insn.X1, 0))
		a.I(insn.ADDi(insn.X1, insn.X1, 8))
		a.I(insn.SUBi(insn.X10, insn.X10, 8))
		a.B("sock_read.loop")
		a.Label("sock_read.fin")
		a.I(insn.STR(insn.XZR, insn.X12, 0x10)) // NetRxDone
		a.B("sock_read.out")
		a.Label("sock_read.empty")
		a.I(insn.MOVZ(insn.X0, 0, 0)) // EOF: download complete
		a.Label("sock_read.out")
	})

	// Socket write: push payload out through the NIC.
	protFn(a, cfg, "sock_write", func() {
		emitMov64(a, insn.X12, NetBase)
		a.I(insn.ORRr(insn.X9, insn.XZR, insn.X2, 0))
		a.Label("sock_write.loop")
		a.I(insn.MOVZ(insn.X11, 8, 0))
		a.I(insn.CMP(insn.X9, insn.X11))
		a.Bcond(insn.CC, "sock_write.done")
		a.I(insn.LDR(insn.X11, insn.X1, 0))
		a.I(insn.STR(insn.X11, insn.X12, 0x18)) // NetTxData
		a.I(insn.ADDi(insn.X1, insn.X1, 8))
		a.I(insn.SUBi(insn.X9, insn.X9, 8))
		a.B("sock_write.loop")
		a.Label("sock_write.done")
		a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	})

	// Block-device file read/write (512-byte sectors, PIO).
	protFn(a, cfg, "blk_read", func() {
		emitMov64(a, insn.X12, BlkBase)
		a.I(insn.LDR(insn.X9, insn.X0, FileInode))
		a.I(insn.STR(insn.X9, insn.X12, 0)) // BlkSector
		a.I(insn.ORRr(insn.X9, insn.XZR, insn.X2, 0))
		a.Label("blk_read.loop")
		a.I(insn.MOVZ(insn.X11, 8, 0))
		a.I(insn.CMP(insn.X9, insn.X11))
		a.Bcond(insn.CC, "blk_read.done")
		a.I(insn.LDR(insn.X11, insn.X12, 8)) // BlkData
		a.I(insn.STR(insn.X11, insn.X1, 0))
		a.I(insn.ADDi(insn.X1, insn.X1, 8))
		a.I(insn.SUBi(insn.X9, insn.X9, 8))
		a.B("blk_read.loop")
		a.Label("blk_read.done")
		a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	})
	protFn(a, cfg, "blk_write", func() {
		emitMov64(a, insn.X12, BlkBase)
		a.I(insn.LDR(insn.X9, insn.X0, FileInode))
		a.I(insn.STR(insn.X9, insn.X12, 0))
		a.I(insn.ORRr(insn.X9, insn.XZR, insn.X2, 0))
		a.Label("blk_write.loop")
		a.I(insn.MOVZ(insn.X11, 8, 0))
		a.I(insn.CMP(insn.X9, insn.X11))
		a.Bcond(insn.CC, "blk_write.done")
		a.I(insn.LDR(insn.X11, insn.X1, 0))
		a.I(insn.STR(insn.X11, insn.X12, 8))
		a.I(insn.ADDi(insn.X1, insn.X1, 8))
		a.I(insn.SUBi(insn.X9, insn.X9, 8))
		a.B("blk_write.loop")
		a.Label("blk_write.done")
		a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	})
}

// emitRodata lays out the syscall table and the operations structures
// (§4.4: read-only, so their members stay unsigned).
func emitRodata(a *asm.Assembler) {
	a.Label("sys_call_table")
	handlers := map[int]string{
		SysOpenat:     "sys_openat",
		SysClose:      "sys_close",
		SysPipe2:      "sys_pipe2",
		SysRead:       "sys_read",
		SysWrite:      "sys_write",
		SysPselect6:   "sys_pselect6",
		SysFstatat:    "sys_fstatat",
		SysFstat:      "sys_fstat",
		SysExit:       "sys_exit",
		SysExitGroup:  "sys_exit",
		SysNanosleep:  "sys_nanosleep",
		SysSchedYield: "sys_sched_yield",
		SysKill:       "sys_kill",
		SysSigaction:  "sys_sigaction",
		SysSigreturn:  "sys_sigreturn",
		SysGetpid:     "sys_getpid",
		SysGetppid:    "sys_getppid",
		SysClone:      "sys_clone",
		SysExecve:     "sys_execve",
		SysWorkRun:    "sys_workrun",
	}
	for nr := 0; nr < SysMax; nr++ {
		if h, ok := handlers[nr]; ok {
			a.QuadAddr(h, 0)
		} else {
			a.QuadAddr("sys_ni", 0)
		}
	}

	ops := func(label, open, release, read, write, poll string) {
		a.Align(64)
		a.Label(label)
		a.QuadAddr(open, 0)
		a.QuadAddr(release, 0)
		a.QuadAddr(read, 0)
		a.QuadAddr(write, 0)
		a.QuadAddr(poll, 0)
	}
	ops("zero_ops", "dev_ok_open", "dev_release", "dev_zero_read", "dev_zero_write", "dev_poll")
	ops("null_ops", "dev_ok_open", "dev_release", "dev_null_read", "dev_null_write", "dev_poll")
	ops("pipe_ops", "dev_ok_open", "dev_release", "pipe_read", "pipe_write", "pipe_poll")
	ops("sock_ops", "dev_ok_open", "dev_release", "sock_read", "sock_write", "dev_poll")
	ops("file_ops_blk", "dev_ok_open", "dev_release", "blk_read", "blk_write", "dev_poll")
}

// emitData lays out .data: the per-CPU frames (one per core), the
// .pauth_ptrs table (§4.6) and the DECLARE_WORK-style static
// work_struct.
func emitData(a *asm.Assembler, cfg *codegen.Config) {
	a.Label("kdata")
	a.PadTo(PerCPUOffset)
	a.Label("percpu")
	a.Zero(cfg.CPUs() * PerCPUSize)

	a.PadTo(PauthTableOffset)
	a.Label("pauth_ptrs")
	a.Quad(1) // one statically initialised signed pointer
	a.QuadAddr("static_work", WorkFunc)
	a.QuadAddr("static_work", 0)
	a.Quad(1) // instruction key (function pointer)
	a.Quad(uint64(tcWorkFunc))

	a.PadTo(StaticWorkOffset)
	a.Label("static_work")
	a.QuadAddr("work_handler", 0) // raw until start_kernel signs it
	a.Quad(0)                     // work counter
}
