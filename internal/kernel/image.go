package kernel

import (
	"camouflage/internal/asm"
	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/insn"
	"camouflage/internal/pac"
)

// Type·member constants for the protected pointer fields (§4.3, §5.3).
var (
	tcFileOps  = pac.TypeConst("file", "f_ops")
	tcFileCred = pac.TypeConst("file", "f_cred")
	tcTaskSP   = pac.TypeConst("task_struct", "thread.sp")
	tcWorkFunc = pac.TypeConst("work_struct", "func")
)

// activeKeys returns the kernel keys a build actually switches (§6.1.1:
// full protection uses three keys; backward-edge only needs IB).
func activeKeys(cfg *codegen.Config) []pac.KeyID {
	if cfg.Scheme == codegen.SchemeNone {
		return nil
	}
	if cfg.ForwardCFI || cfg.DFI {
		return []pac.KeyID{pac.KeyIB, pac.KeyIA, pac.KeyDB}
	}
	return []pac.KeyID{pac.KeyIB}
}

// taskKeySlot maps a KeyID to its offset inside thread_struct.keys.
func taskKeySlot(id pac.KeyID) uint16 {
	return uint16(TaskKeys + 16*int(id))
}

// buildImage assembles the complete kernel. The caller links it at the
// layout.go bases and loads the sections into RAM.
func buildImage(cfg *codegen.Config, keys pac.KeySet, mode boot.Compat) *asm.Assembler {
	a := asm.New()
	protected := cfg.Scheme != codegen.SchemeNone

	// ---- .xom: the key-setter (§5.1) ----
	a.Section(".xom")
	boot.EmitKeySetter(a, "key_setter", keys, mode, activeKeys(cfg)...)

	// ---- .vectors ----
	a.Section(".vectors")
	a.Label("vectors")
	a.PadTo(0x200)
	a.B("el1_sync") // sync from current EL (kernel faults, PAC failures)
	a.PadTo(0x280)
	a.I(insn.HLT(0xE2)) // IRQ from current EL: unused in this model
	a.PadTo(0x400)
	a.B("el0_sync") // sync from EL0: syscalls and user faults
	a.PadTo(0x480)
	a.I(insn.HLT(0xE5)) // IRQ from EL0: unused (cooperative scheduling)

	// ---- .text ----
	a.Section(".text")
	emitStartKernel(a, cfg, protected)
	emitEL0Sync(a, cfg, protected, mode)
	emitEL1Sync(a, cfg)
	emitSwitchTo(a, cfg)
	emitSyscalls(a, cfg)
	emitDrivers(a, cfg)

	// ---- .rodata: syscall table and operations structures (§4.4) ----
	a.Section(".rodata")
	emitRodata(a)

	// ---- .data: per-CPU block, pauth table, static work ----
	a.Section(".data")
	emitData(a, cfg)

	return a
}

// emitMov64 materialises an absolute constant.
func emitMov64(a *asm.Assembler, rd insn.Reg, v uint64) {
	a.I(insn.MOVImm64(rd, v)...)
}

// emitPerCPUAddr loads the executing core's per-CPU frame VA into rd.
// Uniprocessor builds materialise the absolute address, keeping the
// image bit-identical to pre-SMP kernels; SMP builds read TPIDR_EL0,
// which the host loads with DataBase+PerCPUOffset+cpu*PerCPUSize at CPU
// construction (the model's stand-in for arm64 Linux keeping the
// per-CPU offset in a thread register — TPIDR_EL1 here already carries
// `current`).
func emitPerCPUAddr(a *asm.Assembler, cfg *codegen.Config, rd insn.Reg) {
	if cfg.CPUs() > 1 {
		a.I(insn.MRS(rd, insn.TPIDR_EL0))
		return
	}
	emitMov64(a, rd, DataBase+PerCPUOffset)
}

// emitServiceCall invokes the host service device: code goes to the
// doorbell; arguments must already be in the per-CPU slots. Clobbers x12
// and x13. SMP images ring a per-CPU doorbell slot (SvcBase + cpu*8,
// the core number from MPIDR_EL1.Aff0) so the host service layer can
// attribute the call to the ringing core even when cores execute truly
// in parallel; 1-vCPU images keep the plain offset-0 store and stay
// bit-identical to pre-SMP builds.
func emitServiceCall(a *asm.Assembler, cfg *codegen.Config, code uint64) {
	emitMov64(a, insn.X12, SvcBase)
	if cfg.CPUs() > 1 {
		a.I(insn.MRS(insn.X13, insn.MPIDR_EL1))
		a.I(insn.UBFX(insn.X13, insn.X13, 0, 8)) // Aff0: core number
		a.I(insn.LSLi(insn.X13, insn.X13, 3))
		a.I(insn.ADDr(insn.X12, insn.X12, insn.X13))
	}
	a.I(insn.MOVZ(insn.X13, uint16(code), 0))
	a.I(insn.STR(insn.X13, insn.X12, 0))
}

// emitStartKernel emits the early-boot entry: install kernel keys, sign
// the statically initialised pointers (§4.6), then report boot complete.
func emitStartKernel(a *asm.Assembler, cfg *codegen.Config, protected bool) {
	a.Label("start_kernel")
	if protected {
		a.BL("key_setter")
	}
	if cfg.DFI || cfg.ForwardCFI {
		emitMov64(a, insn.X10, DataBase+PauthTableOffset)
		a.BL("sign_ptr_table")
	}
	a.I(insn.HLT(HaltBootOK))

	// secondary_start is the boot path of every non-boot core (SMP
	// builds only): install the kernel keys from the XOM setter — key
	// registers are strictly per-core state, exactly as on hardware —
	// then report in and park until the host scheduler dispatches work.
	if cfg.CPUs() > 1 {
		a.Label("secondary_start")
		if protected {
			a.BL("key_setter")
		}
		a.I(insn.HLT(HaltSecondaryOK))
	}

	// host_call_stub lets the host invoke a guest function (module
	// loading, benchmarks): x16 = target, x0.. = arguments.
	a.Label("host_call_stub")
	a.I(insn.BLR(insn.X16))
	a.I(insn.HLT(HaltHostCall))

	// sign_ptr_table walks a .pauth_ptrs table at x10 (§4.6): for each
	// entry {slot, obj, key, tc}, sign *slot in place with the object
	// modifier. Used for the built-in table at early boot and for each
	// loadable module's table at load time ("an equivalent procedure is
	// applied when loading an LKM").
	a.Label("sign_ptr_table")
	a.I(insn.LDR(insn.X11, insn.X10, 0)) // entry count
	a.I(insn.ADDi(insn.X10, insn.X10, 8))
	a.Label("ssp_loop")
	a.CBZ(insn.X11, "ssp_done")
	a.I(insn.LDR(insn.X12, insn.X10, PauthEntrySlot))
	a.I(insn.LDR(insn.X13, insn.X10, PauthEntryObj))
	a.I(insn.LDR(insn.X14, insn.X10, PauthEntryKey))
	a.I(insn.LDR(insn.X15, insn.X10, PauthEntryTC))
	a.I(insn.LDR(insn.X0, insn.X12, 0)) // raw pointer value
	// modifier: tc | obj<<16 (mov w9,tc is dynamic here: use BFI twice).
	a.I(insn.ORRr(insn.X9, insn.XZR, insn.X15, 0))
	a.I(insn.BFI(insn.X9, insn.X13, 16, 48))
	a.CBNZ(insn.X14, "ssp_insn")
	a.I(insn.PACDB(insn.X0, insn.X9))
	a.B("ssp_store")
	a.Label("ssp_insn")
	a.I(insn.PACIA(insn.X0, insn.X9))
	a.Label("ssp_store")
	a.I(insn.STR(insn.X0, insn.X12, 0))
	a.I(insn.ADDi(insn.X10, insn.X10, PauthEntrySize))
	a.I(insn.SUBi(insn.X11, insn.X11, 1))
	a.B("ssp_loop")
	a.Label("ssp_done")
	a.I(insn.RET())
}

// Halt codes reported through HLT.
const (
	HaltBootOK = 0x0001 // start_kernel finished
	HaltIdle   = 0x0002 // no runnable task left
	HaltPanic  = 0x00DD // brute-force threshold exceeded (§5.4)
	HaltNoNext = 0x00DC // fault with no task to switch to
	HaltUser   = 0x0000 // user workload completed
	// HaltHostCall marks the return of a host-initiated guest call.
	HaltHostCall = 0x0004
	// HaltSecondaryOK marks a secondary core's boot path (key install)
	// completing; the core then parks until the host dispatches work.
	HaltSecondaryOK = 0x0005
)

// emitEL0Sync emits the kernel entry/exit path (§3.3, §6.1.1): save the
// trap frame, install kernel keys, dispatch, restore user keys, return.
func emitEL0Sync(a *asm.Assembler, cfg *codegen.Config, protected bool, mode boot.Compat) {
	a.Label("el0_sync")
	// kernel_entry: push pt_regs.
	a.I(insn.SUBi(insn.SP, insn.SP, PtRegsSize))
	for r := 0; r < 30; r += 2 {
		a.I(insn.STP(insn.Reg(r), insn.Reg(r+1), insn.SP, int16(8*r)))
	}
	a.I(insn.STR(insn.X30, insn.SP, 0xF0))
	a.I(insn.MRS(insn.X21, insn.SP_EL0))
	a.I(insn.STR(insn.X21, insn.SP, PtRegsSP))
	a.I(insn.MRS(insn.X22, insn.ELR_EL1))
	a.I(insn.MRS(insn.X23, insn.SPSR_EL1))
	a.I(insn.STP(insn.X22, insn.X23, insn.SP, PtRegsELR))
	// Switch to the kernel keys before running any kernel C code (§4.1).
	// The setter lives in XOM; its immediates are unreadable.
	if protected {
		a.BL("key_setter")
	}
	// Dispatch on the exception class.
	a.I(insn.MRS(insn.X20, insn.ESR_EL1))
	a.I(insn.LSRi(insn.X21, insn.X20, 26))
	a.I(insn.MOVZ(insn.X9, 0x15, 0)) // EC = SVC64
	a.I(insn.CMP(insn.X21, insn.X9))
	a.Bcond(insn.EQ, "el0_svc")
	a.B("user_fault")

	a.Label("el0_svc")
	a.I(insn.LDR(insn.X8, insn.SP, 0x40)) // pt_regs->x8: syscall number
	a.I(insn.MOVZ(insn.X9, SysMax, 0))
	a.I(insn.CMP(insn.X8, insn.X9))
	a.Bcond(insn.CC, "el0_svc_ok")
	a.I(insn.MOVN(insn.X0, 37, 0)) // -ENOSYS
	a.I(insn.STR(insn.X0, insn.SP, 0))
	a.B("ret_to_user")

	a.Label("el0_svc_ok")
	a.MOVAddr(insn.X10, "sys_call_table")
	a.I(insn.LSLi(insn.X9, insn.X8, 3))
	a.I(insn.ADDr(insn.X10, insn.X10, insn.X9))
	a.I(insn.LDR(insn.X11, insn.X10, 0))
	a.I(insn.MOVSP(insn.X0, insn.SP)) // pt_regs as the argument
	a.I(insn.BLR(insn.X11))
	a.I(insn.STR(insn.X0, insn.SP, 0)) // return value into pt_regs->x0

	a.Label("ret_to_user")
	// Halt request from the service layer?
	emitPerCPUAddr(a, cfg, insn.X9)
	a.I(insn.LDR(insn.X10, insn.X9, PerCPUHalt))
	a.CBZ(insn.X10, "rtu_keys")
	a.I(insn.HLT(HaltUser))
	a.Label("rtu_keys")
	// Restore the user keys of the current task from thread_struct
	// (6 cycles per key: LDP + 2×MSR — §6.1.1).
	if protected {
		a.I(insn.MRS(insn.X20, insn.TPIDR_EL1))
		for _, id := range activeKeys(cfg) {
			if mode == boot.ModeV80 && id.IsData() {
				continue
			}
			slot := taskKeySlot(id)
			a.I(insn.LDP(insn.X6, insn.X7, insn.X20, int16(slot)))
			lo, hi := userKeyRegs(id)
			if mode == boot.ModeV80 {
				// Pre-8.3 cores have no key registers: the PA-analogue
				// writes CONTEXTIDR_EL1 with identical timing (§6.1).
				lo, hi = insn.CONTEXTIDR_EL1, insn.CONTEXTIDR_EL1
			}
			a.I(insn.MSR(lo, insn.X6))
			a.I(insn.MSR(hi, insn.X7))
		}
	}
	// kernel_exit: pop pt_regs.
	a.I(insn.LDP(insn.X22, insn.X23, insn.SP, PtRegsELR))
	a.I(insn.MSR(insn.ELR_EL1, insn.X22))
	a.I(insn.MSR(insn.SPSR_EL1, insn.X23))
	a.I(insn.LDR(insn.X21, insn.SP, PtRegsSP))
	a.I(insn.MSR(insn.SP_EL0, insn.X21))
	for r := 0; r < 30; r += 2 {
		a.I(insn.LDP(insn.Reg(r), insn.Reg(r+1), insn.SP, int16(8*r)))
	}
	a.I(insn.LDR(insn.X30, insn.SP, 0xF0))
	a.I(insn.ADDi(insn.SP, insn.SP, PtRegsSize))
	a.I(insn.ERET())

	// user_fault: a fault taken from EL0 (bad pointer, etc.): record and
	// let the service kill the task; then run whatever is next.
	a.Label("user_fault")
	emitPerCPUAddr(a, cfg, insn.X9)
	a.I(insn.MRS(insn.X10, insn.ESR_EL1))
	a.I(insn.STR(insn.X10, insn.X9, PerCPUFault))
	a.I(insn.MRS(insn.X10, insn.FAR_EL1))
	a.I(insn.STR(insn.X10, insn.X9, PerCPUFAR))
	a.I(insn.MOVZ(insn.X13, 0, 0)) // arg0 = 0: user fault
	a.I(insn.STR(insn.X13, insn.X9, PerCPUArg0))
	emitServiceCall(a, cfg, SvcFault)
	a.B("after_fault")
}

// userKeyRegs returns the system registers for restoring a user key.
func userKeyRegs(id pac.KeyID) (lo, hi insn.SysReg) {
	switch id {
	case pac.KeyIA:
		return insn.APIAKeyLo_EL1, insn.APIAKeyHi_EL1
	case pac.KeyIB:
		return insn.APIBKeyLo_EL1, insn.APIBKeyHi_EL1
	case pac.KeyDA:
		return insn.APDAKeyLo_EL1, insn.APDAKeyHi_EL1
	case pac.KeyDB:
		return insn.APDBKeyLo_EL1, insn.APDBKeyHi_EL1
	default:
		return insn.APGAKeyLo_EL1, insn.APGAKeyHi_EL1
	}
}

// emitEL1Sync emits the kernel-fault handler: this is where PAC
// authentication failures land (a poisoned pointer raises an address-size
// fault when used). The service layer implements the §5.4 brute-force
// policy: log, kill the offending task, and halt the system once the
// failure threshold is crossed.
func emitEL1Sync(a *asm.Assembler, cfg *codegen.Config) {
	a.Label("el1_sync")
	emitPerCPUAddr(a, cfg, insn.X9)
	a.I(insn.MRS(insn.X10, insn.ESR_EL1))
	a.I(insn.STR(insn.X10, insn.X9, PerCPUFault))
	a.I(insn.MRS(insn.X10, insn.FAR_EL1))
	a.I(insn.STR(insn.X10, insn.X9, PerCPUFAR))
	a.I(insn.MOVZ(insn.X13, 1, 0)) // arg0 = 1: kernel fault
	a.I(insn.STR(insn.X13, insn.X9, PerCPUArg0))
	emitServiceCall(a, cfg, SvcFault)

	a.Label("after_fault")
	// The service decided: halt (1 = orderly, 2 = panic), or switch to
	// the victim's successor.
	emitPerCPUAddr(a, cfg, insn.X9)
	a.I(insn.LDR(insn.X10, insn.X9, PerCPUHalt))
	a.CBZ(insn.X10, "fault_pick")
	a.I(insn.MOVZ(insn.X11, 2, 0))
	a.I(insn.CMP(insn.X10, insn.X11))
	a.Bcond(insn.EQ, "fault_panic")
	a.I(insn.HLT(HaltUser))
	a.Label("fault_panic")
	a.I(insn.HLT(HaltPanic))
	a.Label("fault_pick")
	a.I(insn.LDR(insn.X1, insn.X9, PerCPUNext))
	a.CBNZ(insn.X1, "switch_in")
	a.I(insn.HLT(HaltNoNext))
}

// emitSwitchTo emits cpu_switch_to (§5.2): the context switch saves the
// callee-saved registers and — under Camouflage — signs the switched-out
// task's SP and authenticates the switched-in task's SP with the pointer
// integrity scheme, protecting stacks of scheduled-out tasks.
func emitSwitchTo(a *asm.Assembler, cfg *codegen.Config) {
	a.Label("cpu_switch_to")
	// Save prev (x0) context.
	a.I(insn.STP(insn.X19, insn.X20, insn.X0, TaskCtx+0))
	a.I(insn.STP(insn.X21, insn.X22, insn.X0, TaskCtx+16))
	a.I(insn.STP(insn.X23, insn.X24, insn.X0, TaskCtx+32))
	a.I(insn.STP(insn.X25, insn.X26, insn.X0, TaskCtx+48))
	a.I(insn.STP(insn.X27, insn.X28, insn.X0, TaskCtx+64))
	a.I(insn.STR(insn.X29, insn.X0, TaskCtxFP))
	a.I(insn.STR(insn.X30, insn.X0, TaskCtxPC))
	a.I(insn.MOVSP(insn.X9, insn.SP))
	if cfg.DFI {
		if cfg.ZeroModifier {
			a.I(insn.PACDZB(insn.X9))
		} else {
			a.I(insn.MOVZW(insn.X10, tcTaskSP, 0))
			a.I(insn.BFI(insn.X10, insn.X0, 16, 48))
			a.I(insn.PACDB(insn.X9, insn.X10))
		}
	}
	a.I(insn.STR(insn.X9, insn.X0, TaskCtxSP))

	// Restore next (x1) context. The "switch_in" entry is shared with the
	// fault path, which abandons the dead task's context.
	a.Label("switch_in")
	a.I(insn.LDP(insn.X19, insn.X20, insn.X1, TaskCtx+0))
	a.I(insn.LDP(insn.X21, insn.X22, insn.X1, TaskCtx+16))
	a.I(insn.LDP(insn.X23, insn.X24, insn.X1, TaskCtx+32))
	a.I(insn.LDP(insn.X25, insn.X26, insn.X1, TaskCtx+48))
	a.I(insn.LDP(insn.X27, insn.X28, insn.X1, TaskCtx+64))
	a.I(insn.LDR(insn.X29, insn.X1, TaskCtxFP))
	a.I(insn.LDR(insn.X30, insn.X1, TaskCtxPC))
	a.I(insn.LDR(insn.X9, insn.X1, TaskCtxSP))
	if cfg.DFI {
		if cfg.ZeroModifier {
			a.I(insn.AUTDZB(insn.X9))
		} else {
			a.I(insn.MOVZW(insn.X10, tcTaskSP, 0))
			a.I(insn.BFI(insn.X10, insn.X1, 16, 48))
			a.I(insn.AUTDB(insn.X9, insn.X10))
		}
	}
	a.I(insn.MOVSP(insn.SP, insn.X9))
	a.I(insn.MSR(insn.TPIDR_EL1, insn.X1))
	a.I(insn.RET())

	// ret_from_fork: the first thing a new task runs; its crafted
	// cpu_context points here with SP at the child's pt_regs.
	a.Label("ret_from_fork")
	a.B("ret_to_user")
}
