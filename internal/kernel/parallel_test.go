package kernel

import (
	"fmt"
	"testing"

	"camouflage/internal/cpu"
	"camouflage/internal/insn"
)

// sumProg builds a user program that folds a per-iteration accumulator
// through iters getppid round trips, stores the final value to its own
// user data page and exits. The result is a pure function of (iters,
// salt) — independent of scheduling interleaving — so it serves as the
// interleaving-tolerant observable for the parallel-vs-deterministic
// differential tests below.
func sumProg(iters uint16, salt uint64) func(u *UserASM) {
	return func(u *UserASM) {
		u.MovImm(insn.X5, uint64(iters))
		u.MovImm(insn.X6, salt)
		u.A.Label("loop")
		u.A.I(insn.ADDr(insn.X6, insn.X6, insn.X5))
		u.SyscallReg(SysGetppid)
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.MovImm(insn.X9, UserDataBase)
		u.A.I(insn.STR(insn.X6, insn.X9, 0))
		u.Exit(0)
	}
}

// drainRuns keeps issuing Run calls until every core is parked (or the
// round bound trips): both schedulers return early when the boot core
// halts, leaving secondaries mid-flight.
func drainRuns(t *testing.T, k *Kernel, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		allParked := true
		for i := 0; i < k.NumCPUs(); i++ {
			if !k.Parked(i) {
				allParked = false
			}
		}
		if allParked {
			return
		}
		stop := k.Run(20_000_000)
		if stop.Kind == cpu.StopError {
			t.Fatalf("run stopped with error: %+v", stop)
		}
	}
	t.Fatal("cores never all parked")
}

// runComputeWorkloads boots an ncpu machine, pins one sumProg per core
// with per-core parameters, runs to completion in the requested mode and
// returns each task's stored result plus exit state.
func runComputeWorkloads(t *testing.T, ncpu int, parallel bool) ([]uint64, []int) {
	t.Helper()
	k := bootSMP(t, ncpu, 21)
	k.Parallel = parallel
	tasks := make([]*Task, ncpu)
	for i := 0; i < ncpu; i++ {
		prog, err := BuildProgram(fmt.Sprintf("sum%d", i), sumProg(uint16(24+7*i), uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		k.RegisterProgram(1+i, prog)
		tsk, err := k.SpawnOn(i, 1+i)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = tsk
	}
	drainRuns(t, k, 50)
	results := make([]uint64, ncpu)
	states := make([]int, ncpu)
	ram := k.CPU.Bus.RAM
	for i := range results {
		results[i] = ram.Read64(UVAToPA(tasks[i].PID, UserDataBase))
		states[i] = tasks[i].State
	}
	return results, states
}

// TestParallelDifferentialCompute: identical per-core workloads run once
// under the truly-parallel engine and once under the deterministic
// round-robin scheduler, on separately booted same-seed machines. The
// comparison is interleaving-tolerant — final per-task results and exit
// states, never cycle or retirement counters (those legitimately differ
// between schedulers). Exercised at 2 and 4 vCPUs; `-race` runs of this
// test double as the data-race check on the shared Bus/Phys paths.
func TestParallelDifferentialCompute(t *testing.T) {
	for _, ncpu := range []int{2, 4} {
		t.Run(fmt.Sprintf("%dcpu", ncpu), func(t *testing.T) {
			parRes, parSt := runComputeWorkloads(t, ncpu, true)
			detRes, detSt := runComputeWorkloads(t, ncpu, false)
			for i := 0; i < ncpu; i++ {
				if parSt[i] != TaskZombie {
					t.Fatalf("parallel cpu%d task did not exit: state=%d", i, parSt[i])
				}
				if detSt[i] != TaskZombie {
					t.Fatalf("deterministic cpu%d task did not exit: state=%d", i, detSt[i])
				}
				if parRes[i] != detRes[i] {
					t.Fatalf("cpu%d result diverged: parallel=%#x deterministic=%#x",
						i, parRes[i], detRes[i])
				}
				// The result is also closed-form: salt + sum(1..iters).
				iters, salt := uint64(24+7*i), uint64(100+i)
				if want := salt + iters*(iters+1)/2; parRes[i] != want {
					t.Fatalf("cpu%d result wrong: got %#x want %#x", i, parRes[i], want)
				}
			}
		})
	}
}

// runPipeWorkload reproduces the cross-core pipe shape of
// TestSMPCrossCorePipe under the requested scheduler: a producer on core
// 0 opens a pipe and writes a payload, a consumer on core 1 blocks in
// read until the producer's write wakes it. Returns the payload the
// consumer observed. All pipe data moves host-side under the bus device
// lock, so the guest side stays data-race-free by construction.
func runPipeWorkload(t *testing.T, parallel bool) uint64 {
	t.Helper()
	k := bootSMP(t, 2, 23)
	prod, err := BuildProgram("producer", func(u *UserASM) {
		u.Syscall(SysPipe2, UserDataBase+0x100)
		u.CounterLoop("delay", insn.X21, 30, func() {
			u.SyscallReg(SysSchedYield)
		})
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 8)) // write fd
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysWrite)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prod)
	if _, err := k.SpawnOn(0, 1); err != nil {
		t.Fatal(err)
	}
	// Let the producer open the pipe under the deterministic scheduler,
	// then clone its read fd into the consumer (host-side fd passing).
	// The host-side RAM writes happen between Run calls, outside any
	// parallel phase.
	k.Run(300_000)

	cons, err := BuildProgram("consumer", func(u *UserASM) {
		u.Syscall(SysRead, 0, UserDataBase+0x40, 8)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(2, cons)
	consumer, err := k.SpawnOn(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	prodTask := k.CurrentOn(0)
	if prodTask == nil {
		t.Fatal("producer not running")
	}
	ram := k.CPU.Bus.RAM
	rfile := ram.Read64(KVAToPA(prodTask.Addr) + TaskFiles)
	if rfile == 0 {
		t.Fatal("producer pipe fd not open yet")
	}
	ram.Write64(KVAToPA(consumer.Addr)+TaskFiles, rfile)

	// Only now engage the requested mode for the contended phase.
	k.Parallel = parallel
	drainRuns(t, k, 50)

	got := ram.Read64(UVAToPA(consumer.PID, UserDataBase+0x40))
	want := ram.Read64(UVAToPA(prodTask.PID, UserDataBase))
	if got != want {
		t.Fatalf("pipe payload (parallel=%v): got %#x want %#x", parallel, got, want)
	}
	return got
}

// TestParallelDifferentialPipe: the cross-core pipe handoff delivers the
// same payload under both schedulers — the producer's write crosses to
// the consumer's address space through the serialized service device in
// parallel mode exactly as it does deterministically.
func TestParallelDifferentialPipe(t *testing.T) {
	p := runPipeWorkload(t, true)
	d := runPipeWorkload(t, false)
	if p != d {
		t.Fatalf("pipe payload diverged: parallel=%#x deterministic=%#x", p, d)
	}
}
