package kernel

import (
	"fmt"
	"hash/fnv"
	"sync"

	"camouflage/internal/analysis"
	"camouflage/internal/asm"
)

// verifiedSections caches §4.1 verification verdicts keyed by section
// content hash (sync.Map: pool boots and the parallel runner verify from
// many goroutines). Only clean verdicts are cached; failures always
// rescan.
var verifiedSections sync.Map

// VerifyImage runs the §4.1 static verification over the built image's
// code sections: "no code exists in the kernel ... which would read the
// keys from system registers". Key *writes* are legitimate in exactly
// two places — the XOM setter and the user-key restore of kernel exit —
// but key *reads* are forbidden everywhere. The scan result is memoized
// per section-content hash, so identical images are scanned once per
// process. Every boot path that can seed the shared machine pool
// (core.New, snapshot.BootOptions) runs this gate, keeping pool warm
// order irrelevant to whether an image was verified.
func VerifyImage(img *asm.Image) error {
	for _, name := range []string{".text", ".xom", ".vectors"} {
		sec := img.Sections[name]
		if sec == nil {
			return fmt.Errorf("kernel: verify: missing section %s", name)
		}
		if err := verifyNoKeyReads(name, sec.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// verifyNoKeyReads runs the §4.1 key-read scan over one code section,
// memoizing clean results by content hash.
func verifyNoKeyReads(sec string, code []byte) error {
	h := fnv.New64a()
	h.Write([]byte(sec))
	h.Write(code)
	key := h.Sum64()
	if _, ok := verifiedSections.Load(key); ok {
		return nil
	}
	for _, f := range analysis.ScanBytes(code) {
		if f.Kind == analysis.FindingKeyRead {
			return fmt.Errorf("kernel: %s reads keys: %s", sec, f)
		}
	}
	verifiedSections.Store(key, struct{}{})
	return nil
}
