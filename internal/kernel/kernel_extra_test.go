package kernel

import (
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// TestUserFaultKillsTask: a user program dereferencing a kernel address
// is SIGKILLed without taking the kernel down.
func TestUserFaultKillsTask(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	prog, err := BuildProgram("wild", func(u *UserASM) {
		u.MovImm(insn.X1, DataBase) // kernel address from EL0
		u.A.I(insn.LDR(insn.X0, insn.X1, 0))
		u.Exit(0) // unreachable
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	stop := k.Run(1_000_000)
	if stop.Kind != cpu.StopHLT || stop.Code != HaltNoNext {
		t.Fatalf("stop = %+v, want HaltNoNext after SIGKILL", stop)
	}
	if k.Task(1) != nil {
		t.Fatal("faulting task still alive")
	}
	if len(k.Oops) == 0 || k.Oops[0].Kernel {
		t.Fatalf("oops log wrong: %+v", k.Oops)
	}
	if k.PACFailures != 0 {
		t.Fatal("plain user fault must not count as a PAC failure")
	}
}

// TestRoundRobinFairness: three forked tasks all make progress under
// cooperative yielding.
func TestRoundRobinFairness(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		// Fork twice; each process writes its pid-tagged marker into its
		// own window and yields a few times.
		u.SyscallReg(SysClone)
		u.SyscallReg(SysClone)
		u.CounterLoop("yields", insn.X21, 5, func() {
			u.SyscallReg(SysSchedYield)
		})
		u.SyscallReg(SysGetpid)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Exit(0)
	})
	// Every process (1, and forked 2..4; the double clone yields 4 total
	// minus interleavings — at minimum pids 1..3 exist) must have written
	// its own pid into its own window.
	for pid := 1; pid <= 3; pid++ {
		got := k.CPU.Bus.RAM.Read64(UVAToPA(pid, UserDataBase))
		if got != uint64(pid) {
			t.Errorf("pid %d wrote %d in its window", pid, got)
		}
	}
}

// TestFDExhaustion: opening more files than the table holds yields
// -EMFILE, and close frees slots for reuse.
func TestFDExhaustion(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		// 16 opens fill the table (fds 0..15).
		u.CounterLoop("fill", insn.X21, TaskNFiles, func() {
			u.Syscall(SysOpenat, 0, PathDevNull, 0)
		})
		// 17th open must fail with -EMFILE (-24).
		u.Syscall(SysOpenat, 0, PathDevNull, 0)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		// Close fd 3 and retry: must succeed with fd 3.
		u.Syscall(SysClose, 3)
		u.Syscall(SysOpenat, 0, PathDevNull, 0)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 8))
		u.Exit(0)
	})
	if got := int64(userWord(k, &Task{PID: 1}, 0)); got != -24 {
		t.Fatalf("17th open = %d, want -EMFILE", got)
	}
	if got := userWord(k, &Task{PID: 1}, 8); got != 3 {
		t.Fatalf("reopen after close = fd %d, want 3", got)
	}
}

func TestCloseBadFD(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysClose, 12)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Syscall(SysClose, 255)
		u.A.I(insn.STR(insn.X0, insn.X1, 8))
		u.Exit(0)
	})
	if got := int64(userWord(k, &Task{PID: 1}, 0)); got != -9 {
		t.Fatalf("close(unopened) = %d", got)
	}
	if got := int64(userWord(k, &Task{PID: 1}, 8)); got != -9 {
		t.Fatalf("close(out of range) = %d", got)
	}
}

func TestStatUnknownPath(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysFstatat, 0, 999)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Syscall(SysFstatat, 0, PathTmpFile)
		u.A.I(insn.STR(insn.X0, insn.X1, 8))
		u.Exit(0)
	})
	if got := int64(userWord(k, &Task{PID: 1}, 0)); got != -2 {
		t.Fatalf("stat(unknown) = %d, want -ENOENT", got)
	}
	if got := int64(userWord(k, &Task{PID: 1}, 8)); got != 0 {
		t.Fatalf("stat(tmpfile) = %d, want 0", got)
	}
}

// TestFstatAuthenticatesCred covers the §4.5 f_cred path end to end.
func TestFstatAuthenticatesCred(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysOpenat, 0, PathDevZero, 0)
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X0, 0))
		u.SyscallReg(SysFstat)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Exit(0)
	})
	if got := int64(userWord(k, &Task{PID: 1}, 0)); got != 0 {
		t.Fatalf("fstat = %d", got)
	}
	if k.CPU.PACFailures != 0 {
		t.Fatalf("benign fstat produced %d PAC failures", k.CPU.PACFailures)
	}
}

// TestFstatOnPipeAuthenticates: pipe files sign f_cred at creation too.
func TestFstatOnPipeAuthenticates(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysPipe2, UserDataBase+0x100)
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 0)) // read end fd
		u.SyscallReg(SysFstat)
		u.MovImm(insn.X1, UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 0))
		u.Exit(0)
	})
	if got := int64(userWord(k, &Task{PID: 1}, 0)); got != 0 {
		t.Fatalf("fstat(pipe) = %d", got)
	}
	if k.CPU.PACFailures != 0 {
		t.Fatalf("pipe fstat produced %d PAC failures; f_cred unsigned?", k.CPU.PACFailures)
	}
}

// TestCrossProcessIsolation: the child's writes to a VA do not appear in
// the parent's physical window.
func TestCrossProcessIsolation(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0x0A0A)
		u.A.I(insn.STR(insn.X2, insn.X1, 0)) // parent marker pre-fork
		u.SyscallReg(SysClone)
		u.A.CBZ(insn.X0, "child")
		u.SyscallReg(SysSchedYield) // let the child run
		u.Exit(0)
		u.A.Label("child")
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 0x0B0B)
		u.A.I(insn.STR(insn.X2, insn.X1, 0)) // child overwrites its copy
		u.Exit(0)
	})
	if got := userWord(k, &Task{PID: 1}, 0); got != 0x0A0A {
		t.Fatalf("parent window = %#x; child write leaked", got)
	}
	if got := userWord(k, &Task{PID: 2}, 0); got != 0x0B0B {
		t.Fatalf("child window = %#x", got)
	}
}

// TestSwitchedOutSPTamperCaught covers §5.2: corrupting a blocked task's
// signed saved SP is detected when the task is switched back in.
func TestSwitchedOutSPTamperCaught(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	prog, err := BuildProgram("sp-victim", func(u *UserASM) {
		u.Syscall(SysPipe2, UserDataBase+0x100)
		u.SyscallReg(SysClone)
		u.A.CBZ(insn.X0, "child")
		u.CounterLoop("spins", insn.X21, 30, func() {
			u.SyscallReg(SysSchedYield)
		})
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 8))
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysWrite)
		u.Exit(0)
		u.A.Label("child")
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 0))
		u.MovImm(insn.X1, UserDataBase+0x40)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysRead) // blocks; ctx.sp signed while out
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	var victim *Task
	for i := 0; i < 200 && victim == nil && !k.Halted; i++ {
		k.Run(5_000)
		if c := k.Task(2); c != nil && c.State == TaskBlocked {
			victim = c
		}
	}
	if victim == nil {
		t.Fatal("child never blocked")
	}
	// Attacker redirects the blocked task's kernel stack to an
	// attacker-chosen address by overwriting the signed saved SP.
	forged := StackBase + 63*StackSize // plausible but unsigned value
	k.CPU.Bus.RAM.Write64(KVAToPA(victim.Addr)+TaskCtxSP, forged)
	k.CPU.InvalidateDecode()
	k.Run(5_000_000)
	if k.PACFailures == 0 {
		t.Fatal("saved-SP tamper not detected (§5.2)")
	}
}

// TestUnprotectedSwitchedOutSPTamperSucceeds is the control for §5.2.
func TestUnprotectedSwitchedOutSPTamperSucceeds(t *testing.T) {
	k := bootKernel(t, codegen.ConfigNone())
	// On the baseline kernel the saved SP is raw; redirecting it moves
	// the task's kernel stack wherever the attacker likes (we only check
	// that no detection fires — the machine ends up in attacker-chosen
	// state).
	prog, err := BuildProgram("v", func(u *UserASM) {
		u.Syscall(SysPipe2, UserDataBase+0x100)
		u.SyscallReg(SysClone)
		u.A.CBZ(insn.X0, "child")
		u.CounterLoop("spins", insn.X21, 10, func() {
			u.SyscallReg(SysSchedYield)
		})
		u.Exit(0)
		u.A.Label("child")
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 0))
		u.MovImm(insn.X1, UserDataBase+0x40)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysRead)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	var victim *Task
	for i := 0; i < 200 && victim == nil && !k.Halted; i++ {
		k.Run(5_000)
		if c := k.Task(2); c != nil && c.State == TaskBlocked {
			victim = c
		}
	}
	if victim == nil {
		t.Skip("child never blocked on baseline (scheduling variance)")
	}
	k.CPU.Bus.RAM.Write64(KVAToPA(victim.Addr)+TaskCtxSP, StackBase+63*StackSize)
	k.Run(5_000_000)
	if k.PACFailures != 0 {
		t.Fatal("baseline kernel cannot detect SP tamper, yet PAC failures recorded")
	}
}

// TestRodataUnwritableEvenWithStage1Corruption pins §3.1: the hypervisor
// write-protects .rodata at stage 2, so even an attacker who could edit
// stage-1 tables cannot make the ops tables writable.
func TestRodataUnwritableEvenWithStage1Corruption(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	opsVA := k.Img.Symbols["zero_ops"]
	// Attacker corrupts stage 1: remap .rodata writable.
	k.CPU.MMU.TT1.Map(opsVA, KVAToPA(opsVA), mmu.KernelData)
	if _, fault := k.CPU.MMU.Translate(opsVA, mmu.Store, 1); fault == nil {
		t.Fatal("store to rodata succeeded despite stage-2 protection")
	} else if fault.Kind != mmu.FaultStage2 {
		t.Fatalf("fault = %v, want stage-2", fault.Kind)
	}
}

// TestTaskStacksAreStridedAsPaperAssumes pins the §4.2 stack geometry the
// replay analysis depends on.
func TestTaskStacksAreStridedAsPaperAssumes(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	prog, err := BuildProgram("p", func(u *UserASM) {
		u.SyscallReg(SysSchedYield)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	t1, err := k.Spawn(1)
	if err != nil {
		t.Fatal(err)
	}
	t2 := k.newTask(1, 1)
	if t1.StackTop%0x1000 != 0 || t2.StackTop%0x1000 != 0 {
		t.Fatal("stacks not 4 KiB aligned (§4.2)")
	}
	if t2.StackTop-t1.StackTop != StackSize {
		t.Fatalf("stack stride = %#x, want %#x", t2.StackTop-t1.StackTop, uint64(StackSize))
	}
	// Low 12 bits of equal-depth SPs repeat across threads — the §4.2
	// observation that motivates the hardened modifier.
	if (t1.StackTop-32)&0xFFF != (t2.StackTop-32)&0xFFF {
		t.Fatal("low-order SP bits do not repeat across task stacks")
	}
}

// TestPauthTableEntryShape validates the built-in .pauth_ptrs table
// against the §4.6 entry format.
func TestPauthTableEntryShape(t *testing.T) {
	k := bootKernel(t, codegen.ConfigFull())
	ram := k.CPU.Bus.RAM
	tbl := KVAToPA(DataBase) + PauthTableOffset
	count := ram.Read64(tbl)
	if count != 1 {
		t.Fatalf("table count = %d", count)
	}
	slot := ram.Read64(tbl + 8 + PauthEntrySlot)
	obj := ram.Read64(tbl + 8 + PauthEntryObj)
	key := ram.Read64(tbl + 8 + PauthEntryKey)
	tc := ram.Read64(tbl + 8 + PauthEntryTC)
	if slot != DataBase+StaticWorkOffset+WorkFunc {
		t.Fatalf("slot = %#x", slot)
	}
	if obj != DataBase+StaticWorkOffset {
		t.Fatalf("obj = %#x", obj)
	}
	if key != 1 {
		t.Fatalf("key class = %d, want instruction", key)
	}
	if uint16(tc) != pac.TypeConst("work_struct", "func") {
		t.Fatalf("tc = %#x", tc)
	}
}

// TestServiceCallAccounting: service costs are charged to the cycle
// counter (they model un-instrumented kernel bookkeeping).
func TestServiceCallAccounting(t *testing.T) {
	k := runProgram(t, codegen.ConfigFull(), func(u *UserASM) {
		u.Syscall(SysOpenat, 0, PathDevZero, 0)
		u.Exit(0)
	})
	if k.ServiceCalls[SvcOpen] != 1 {
		t.Fatalf("SvcOpen called %d times", k.ServiceCalls[SvcOpen])
	}
	if k.ServiceCalls[SvcExit] != 1 {
		t.Fatalf("SvcExit called %d times", k.ServiceCalls[SvcExit])
	}
}
