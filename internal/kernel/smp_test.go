package kernel

import (
	"fmt"
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/insn"
)

// smpOptions returns full-protection build options for n vCPUs.
func smpOptions(n int, seed uint64) Options {
	cfg := codegen.ConfigFull()
	cfg.NumCPUs = n
	return Options{Config: cfg, Seed: seed}
}

func bootSMP(t *testing.T, n int, seed uint64) *Kernel {
	t.Helper()
	k, err := New(smpOptions(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyImage(k.Img); err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return k
}

// spinProg builds a user program that increments a counter in user data
// then exits after iters getppid round trips.
func spinProg(iters uint16) func(u *UserASM) {
	return func(u *UserASM) {
		u.MovImm(insn.X5, uint64(iters))
		u.A.Label("loop")
		u.SyscallReg(SysGetppid)
		u.A.I(insn.SUBi(insn.X5, insn.X5, 1))
		u.A.CBNZ(insn.X5, "loop")
		u.Exit(0)
	}
}

// TestSMPBootInstallsKeysPerCore: a 2-vCPU machine boots, and every
// core's key bank holds the bootloader's kernel keys (installed by
// secondary_start through the XOM setter, per core).
func TestSMPBootInstallsKeysPerCore(t *testing.T) {
	k := bootSMP(t, 2, 7)
	if got := k.NumCPUs(); got != 2 {
		t.Fatalf("NumCPUs = %d, want 2", got)
	}
	for i, c := range k.CPUs {
		for _, id := range []int{1, 0, 3} { // IB, IA, DB
			want := k.KernelKeysForTest().Keys[id]
			if c.Signer.Keys().Keys[id] != want {
				t.Fatalf("cpu%d key %d not installed", i, id)
			}
		}
		if c.TPIDR0 != PerCPUVA(i) {
			t.Fatalf("cpu%d TPIDR0 = %#x, want %#x", i, c.TPIDR0, PerCPUVA(i))
		}
	}
	if !k.Hyp.LockedDown() {
		t.Fatal("hypervisor not locked down after SMP boot")
	}
}

// TestSMPTwoWorkloadsRunConcurrently: tasks pinned to different cores
// both complete under the deterministic scheduler, interleaved within
// one Run call.
func TestSMPTwoWorkloadsRunConcurrently(t *testing.T) {
	k := bootSMP(t, 2, 8)
	for i := 0; i < 2; i++ {
		prog, err := BuildProgram(fmt.Sprintf("spin%d", i), spinProg(40))
		if err != nil {
			t.Fatal(err)
		}
		k.RegisterProgram(1+i, prog)
		if _, err := k.SpawnOn(i, 1+i); err != nil {
			t.Fatal(err)
		}
	}
	stop := k.Run(50_000_000)
	// The boot core's workload exits first or last; either way both
	// cores must end parked with their tasks gone.
	_ = stop
	if !k.Parked(1) {
		k.Run(50_000_000)
	}
	for i := 0; i < 2; i++ {
		if cur := k.CurrentOn(i); cur != nil && cur.State != TaskZombie {
			t.Fatalf("cpu%d task not finished: %+v", i, cur)
		}
	}
	if k.CPUs[1].Retired == 0 {
		t.Fatal("secondary core retired no instructions")
	}
}

// TestSMPDeterministicRuns: two identically seeded 2-vCPU machines,
// each running two cross-pinned workloads plus a cross-core pipe,
// finish with byte-identical cycle counters, retirement counts and RAM
// contents — the reproducibility contract of the quantum scheduler.
func TestSMPDeterministicRuns(t *testing.T) {
	run := func() (cyc [2]uint64, ret [2]uint64, heapSum uint64) {
		k := bootSMP(t, 2, 9)
		for i := 0; i < 2; i++ {
			prog, err := BuildProgram(fmt.Sprintf("d%d", i), spinProg(uint16(30+10*i)))
			if err != nil {
				t.Fatal(err)
			}
			k.RegisterProgram(1+i, prog)
			if _, err := k.SpawnOn(i, 1+i); err != nil {
				t.Fatal(err)
			}
		}
		k.Run(80_000_000)
		if !k.Parked(1) {
			k.Run(80_000_000)
		}
		for i, c := range k.CPUs {
			cyc[i], ret[i] = c.Cycles, c.Retired
		}
		// Fold a swath of kernel heap into a checksum.
		for off := uint64(0); off < 0x4000; off += 8 {
			heapSum = heapSum*31 + k.CPU.Bus.RAM.Read64(KVAToPA(HeapBase)+off)
		}
		return
	}
	c1, r1, h1 := run()
	c2, r2, h2 := run()
	if c1 != c2 || r1 != r2 || h1 != h2 {
		t.Fatalf("SMP run not deterministic:\n run1 cyc=%v ret=%v heap=%#x\n run2 cyc=%v ret=%v heap=%#x",
			c1, r1, h1, c2, r2, h2)
	}
}

// TestSMPUniprocessorImageUnchanged: a 1-vCPU build under the new
// options path produces byte-identical kernel text to a default build —
// the bit-compatibility guarantee behind "1-vCPU output identical to
// pre-SMP".
func TestSMPUniprocessorImageUnchanged(t *testing.T) {
	k1, err := New(Options{Config: codegen.ConfigFull(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := codegen.ConfigFull()
	cfg.NumCPUs = 1
	k2, err := New(Options{Config: cfg, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range []string{".text", ".xom", ".vectors", ".data"} {
		b1 := k1.Img.Sections[sec].Bytes
		b2 := k2.Img.Sections[sec].Bytes
		if string(b1) != string(b2) {
			t.Fatalf("section %s differs between default and explicit 1-vCPU build", sec)
		}
	}
}

// TestSMPCrossCorePipe: a producer on core 0 writes a pipe a consumer
// on core 1 blocks on — the cross-core wakeup path (consumer spins in
// its idle poll loop until the producer's SvcWake marks it runnable).
func TestSMPCrossCorePipe(t *testing.T) {
	k := bootSMP(t, 2, 11)

	// Producer (core 0): create the pipe, publish the read fd for the
	// consumer through a shared kernel-visible location — simplest is to
	// pre-create the pipe from the host via a producer program that
	// writes a known value after some delay.
	prod, err := BuildProgram("producer", func(u *UserASM) {
		u.Syscall(SysPipe2, UserDataBase+0x100)
		// Delay so the consumer spins first: the scheduler interleaves.
		u.CounterLoop("delay", insn.X21, 30, func() {
			u.SyscallReg(SysSchedYield)
		})
		u.MovImm(insn.X9, UserDataBase+0x100)
		u.A.I(insn.LDR(insn.X0, insn.X9, 8)) // write fd
		u.MovImm(insn.X1, UserDataBase)
		u.MovImm(insn.X2, 8)
		u.SyscallReg(SysWrite)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prod)
	if _, err := k.SpawnOn(0, 1); err != nil {
		t.Fatal(err)
	}
	// Let the producer open the pipe (fd 0 read, fd 1 write).
	k.Run(300_000)

	// The consumer on core 1 opens nothing; instead the host clones the
	// producer's read fd into the consumer's fd table after spawn (the
	// moral equivalent of fd passing).
	cons, err := BuildProgram("consumer", func(u *UserASM) {
		u.Syscall(SysRead, 0, UserDataBase+0x40, 8) // blocks until data
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(2, cons)
	consumer, err := k.SpawnOn(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	prodTask := k.CurrentOn(0)
	if prodTask == nil {
		t.Fatal("producer not running")
	}
	ram := k.CPU.Bus.RAM
	rfile := ram.Read64(KVAToPA(prodTask.Addr) + TaskFiles)
	if rfile == 0 {
		t.Fatal("producer pipe fd not open yet")
	}
	ram.Write64(KVAToPA(consumer.Addr)+TaskFiles, rfile)

	stop := k.Run(100_000_000)
	if k.CurrentOn(1) != nil && k.CurrentOn(1).State != TaskZombie && !k.Parked(1) {
		t.Fatalf("consumer never completed: stop=%+v", stop)
	}
	// The consumer must have read the producer's payload.
	got := ram.Read64(UVAToPA(consumer.PID, UserDataBase+0x40))
	want := ram.Read64(UVAToPA(prodTask.PID, UserDataBase))
	if got != want {
		t.Fatalf("cross-core pipe payload: got %#x want %#x", got, want)
	}
}

// TestSMPTaskSlotsExhaustGracefully: on an SMP machine, running out of
// task stack slots (the region above the arena holds secondary boot
// stacks) must surface as an error, never a host panic — the condition
// is guest-reachable through fork loops.
func TestSMPTaskSlotsExhaustGracefully(t *testing.T) {
	k := bootSMP(t, 2, 12)
	prog, err := BuildProgram("spin", spinProg(1))
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	failedAt := 0
	for i := 0; i < 100; i++ {
		if _, err := k.SpawnOn(0, 1); err != nil {
			failedAt = i
			break
		}
	}
	if failedAt == 0 {
		t.Fatal("spawn never failed despite exhausting the stack arena")
	}
	if failedAt > 64 {
		t.Fatalf("spawn failed only at %d, after overrunning the arena", failedAt)
	}
}
