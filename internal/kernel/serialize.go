package kernel

// Snapshot persistence: the deterministic wire codec for State, the
// kernel half of the content-addressed snapshot store (DESIGN.md §12).
//
// The format splits a snapshot along the mutable/derivable line:
//
//   - The built image and codegen configuration are NOT serialized.
//     Construction is deterministic (pinned by the fork≡boot tests), so
//     the load path re-derives them from the manifest's build options via
//     the same buildLinked pipeline New uses, then re-runs the §4.1
//     static verifier — a loaded snapshot passes exactly the gates a
//     fresh boot does.
//   - Frozen guest RAM is NOT in the blob either: pages are exported
//     separately so the store can chunk them content-addressed and dedup
//     across snapshots of the same image.
//   - Everything else — vCPU register files, MMU tables, hypervisor
//     latch, device state, PRNG position, host mirrors — is encoded
//     field-by-field with fixed ordering and sorted map iteration, so
//     equal states produce equal bytes and the store's whole-snapshot
//     SHA-256 is a stable content address across processes and restarts.
//
// The codec is versioned; any layout change must bump stateWireVersion
// (old blobs are refused, never misparsed).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/mem"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// stateWireMagic and stateWireVersion head every serialized state blob.
const (
	stateWireMagic   = "camoSTATE"
	stateWireVersion = 1
)

// ErrStateNotPortable marks a State that cannot be serialized: it holds
// registered user programs, whose built images live outside the
// deterministic kernel build (callers register them per fork). The pool
// only persists post-boot snapshots, which never carry programs.
var ErrStateNotPortable = errors.New("kernel: state holds registered user programs; only program-free (post-boot) snapshots are serializable")

// --- little-endian append/consume helpers ---

type wireEnc struct{ buf []byte }

func (e *wireEnc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *wireEnc) i64(v int)    { e.u64(uint64(int64(v))) }
func (e *wireEnc) boolean(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *wireEnc) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}
func (e *wireEnc) keys(ks pac.KeySet) {
	for _, k := range ks.Keys {
		e.u64(k.Hi)
		e.u64(k.Lo)
	}
}

type wireDec struct {
	buf []byte
	off int
	err error
}

func (d *wireDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("kernel: truncated state blob at %s (offset %d of %d)", what, d.off, len(d.buf))
	}
}

func (d *wireDec) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *wireDec) i64(what string) int { return int(int64(d.u64(what))) }

func (d *wireDec) boolean(what string) bool {
	if d.err != nil {
		return false
	}
	if d.off+1 > len(d.buf) {
		d.fail(what)
		return false
	}
	v := d.buf[d.off]
	d.off++
	return v != 0
}

func (d *wireDec) bytes(what string) []byte {
	n := d.u64(what)
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(what)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

func (d *wireDec) keys(what string) pac.KeySet {
	var ks pac.KeySet
	for i := range ks.Keys {
		ks.Keys[i].Hi = d.u64(what)
		ks.Keys[i].Lo = d.u64(what)
	}
	return ks
}

// --- accessors the store builds manifests from ---

// Options returns the normalized build options the captured machine was
// constructed with (the manifest's identity half).
func (st *State) Options() Options { return st.opts }

// ForEachFrozenPage iterates the copy-on-write RAM base in ascending
// page-number order; the store chunks each page content-addressed. Pages
// must be treated as read-only.
func (st *State) ForEachFrozenPage(fn func(pn uint64, pg *[mem.PageSize]byte)) {
	st.frozen.ForEachPage(fn)
}

// ImageDigest returns the SHA-256 of the built image's linked sections
// (sorted by name), the identity snapshots of one build share — the
// store groups snapshots by it for /v1/images and page-chunk dedup
// reporting.
func (st *State) ImageDigest() string {
	h := sha256.New()
	names := make([]string, 0, len(st.img.Sections))
	for name := range st.img.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	var tmp [8]byte
	for _, name := range names {
		s := st.img.Sections[name]
		h.Write([]byte(name))
		binary.LittleEndian.PutUint64(tmp[:], s.Base)
		h.Write(tmp[:])
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(s.Bytes)))
		h.Write(tmp[:])
		h.Write(s.Bytes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// --- encode ---

// optionsWire appends the normalized build options. Every field that
// shapes the post-boot state participates, mirroring KeyForOptions.
func encodeOptions(e *wireEnc, opts Options) {
	cfg := opts.Config
	e.u64(uint64(cfg.Scheme))
	e.boolean(cfg.ForwardCFI)
	e.boolean(cfg.DFI)
	e.boolean(cfg.ZeroModifier)
	e.i64(cfg.NumCPUs)
	e.u64(opts.Seed)
	e.boolean(bool(opts.Compat))
	e.boolean(opts.V80)
	e.i64(opts.FailureThreshold)
}

func decodeOptions(d *wireDec) Options {
	cfg := &codegen.Config{}
	cfg.Scheme = codegen.Scheme(d.u64("options.scheme"))
	cfg.ForwardCFI = d.boolean("options.fwd")
	cfg.DFI = d.boolean("options.dfi")
	cfg.ZeroModifier = d.boolean("options.zmod")
	cfg.NumCPUs = d.i64("options.cpus")
	opts := Options{Config: cfg}
	opts.Seed = d.u64("options.seed")
	opts.Compat = boot.Compat(d.boolean("options.compat"))
	opts.V80 = d.boolean("options.v80")
	opts.FailureThreshold = d.i64("options.threshold")
	return opts
}

func encodeCPU(e *wireEnc, cs cpu.State) {
	for _, x := range cs.X {
		e.u64(x)
	}
	e.u64(cs.PC)
	e.i64(cs.EL)
	e.boolean(cs.N)
	e.boolean(cs.Z)
	e.boolean(cs.C)
	e.boolean(cs.V)
	e.boolean(cs.IRQMasked)
	e.u64(cs.SP[0])
	e.u64(cs.SP[1])
	e.u64(cs.SCTLR)
	e.u64(cs.VBAR)
	e.u64(cs.ELR)
	e.u64(cs.SPSR)
	e.u64(cs.ESR)
	e.u64(cs.FAR)
	e.u64(cs.TTBR0)
	e.u64(cs.TTBR1)
	e.u64(cs.CONTEXTIDR)
	e.u64(cs.TPIDR)
	e.u64(cs.TPIDR0)
	e.keys(cs.Keys)
	e.u64(cs.Cycles)
	e.u64(cs.Retired)
	e.u64(cs.PACFailures)
	e.boolean(cs.IRQPending)
}

func decodeCPU(d *wireDec) cpu.State {
	var cs cpu.State
	for i := range cs.X {
		cs.X[i] = d.u64("cpu.x")
	}
	cs.PC = d.u64("cpu.pc")
	cs.EL = d.i64("cpu.el")
	cs.N = d.boolean("cpu.n")
	cs.Z = d.boolean("cpu.z")
	cs.C = d.boolean("cpu.c")
	cs.V = d.boolean("cpu.v")
	cs.IRQMasked = d.boolean("cpu.irqmask")
	cs.SP[0] = d.u64("cpu.sp0")
	cs.SP[1] = d.u64("cpu.sp1")
	cs.SCTLR = d.u64("cpu.sctlr")
	cs.VBAR = d.u64("cpu.vbar")
	cs.ELR = d.u64("cpu.elr")
	cs.SPSR = d.u64("cpu.spsr")
	cs.ESR = d.u64("cpu.esr")
	cs.FAR = d.u64("cpu.far")
	cs.TTBR0 = d.u64("cpu.ttbr0")
	cs.TTBR1 = d.u64("cpu.ttbr1")
	cs.CONTEXTIDR = d.u64("cpu.contextidr")
	cs.TPIDR = d.u64("cpu.tpidr")
	cs.TPIDR0 = d.u64("cpu.tpidr0")
	cs.Keys = d.keys("cpu.keys")
	cs.Cycles = d.u64("cpu.cycles")
	cs.Retired = d.u64("cpu.retired")
	cs.PACFailures = d.u64("cpu.pacfailures")
	cs.IRQPending = d.boolean("cpu.irqpending")
	return cs
}

func encodeTask(e *wireEnc, t Task) {
	e.i64(t.PID)
	e.i64(t.PPID)
	e.u64(t.Addr)
	e.u64(t.StackTop)
	e.i64(t.State)
	e.keys(t.Keys)
	e.u64(t.SigHandler)
	e.u64(t.SavedELR)
	e.i64(t.ProgID)
	e.i64(t.CPU)
}

func decodeTask(d *wireDec) Task {
	var t Task
	t.PID = d.i64("task.pid")
	t.PPID = d.i64("task.ppid")
	t.Addr = d.u64("task.addr")
	t.StackTop = d.u64("task.stacktop")
	t.State = d.i64("task.state")
	t.Keys = d.keys("task.keys")
	t.SigHandler = d.u64("task.sighandler")
	t.SavedELR = d.u64("task.savedelr")
	t.ProgID = d.i64("task.progid")
	t.CPU = d.i64("task.cpu")
	return t
}

func sortedInts[K int | uint64, V any](m map[K]V) []K {
	ks := make([]K, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Serialize encodes the state (minus frozen RAM pages and the derivable
// image) into the deterministic wire form: equal states yield equal
// bytes. States holding registered user programs are refused with
// ErrStateNotPortable.
func (st *State) Serialize() ([]byte, error) {
	if len(st.programs) > 0 {
		return nil, ErrStateNotPortable
	}
	e := &wireEnc{buf: make([]byte, 0, 4096)}
	e.buf = append(e.buf, stateWireMagic...)
	e.u64(stateWireVersion)

	encodeOptions(e, st.opts)
	e.keys(st.keys)
	for _, s := range st.rng.State() {
		e.u64(s)
	}

	e.i64(len(st.cpus))
	for _, cs := range st.cpus {
		encodeCPU(e, cs)
	}
	e.boolean(st.mmuOn)

	tt1 := st.tt1.Export()
	e.i64(len(tt1))
	for _, en := range tt1 {
		e.u64(en.PN)
		e.u64(en.PTE.PA)
		e.u64(uint64(en.PTE.Perm))
	}
	s2, s2on := st.s2.Export()
	e.boolean(s2on)
	e.i64(len(s2))
	for _, en := range s2 {
		e.u64(en.PN)
		e.boolean(en.Perm.R)
		e.boolean(en.Perm.W)
		e.boolean(en.Perm.X)
	}

	e.boolean(st.hyp.Lockdown)
	e.u64(st.hyp.DeniedWrites)
	e.keys(st.hyp.Escrow)
	e.u64(st.hyp.TrapInstalls)

	e.bytes(st.uart)
	nw := st.net.Wire()
	e.i64(len(nw.RX))
	for _, pkt := range nw.RX {
		e.bytes(pkt)
	}
	e.i64(nw.RXOff)
	e.u64(nw.RXCount)
	e.u64(nw.TXBytes)
	bw := st.blk.Wire()
	e.i64(len(bw.Sectors))
	for i := range bw.Sectors {
		e.u64(bw.Sectors[i].N)
		e.buf = append(e.buf, bw.Sectors[i].Data[:]...)
	}
	e.u64(bw.Cur)
	e.i64(bw.Off)
	e.u64(bw.Reads)
	e.u64(bw.Writes)

	e.u64(st.heapNext)
	e.i64(st.nextPID)
	e.i64(len(st.tasks))
	for _, pid := range sortedInts(st.tasks) {
		encodeTask(e, st.tasks[pid])
	}
	e.i64(len(st.currents))
	for i, cur := range st.currents {
		e.boolean(cur != nil)
		if cur != nil {
			e.i64(st.currentPIDs[i])
			encodeTask(e, *cur)
		}
	}
	e.i64(len(st.parked))
	for _, p := range st.parked {
		e.boolean(p)
	}
	e.i64(st.activeCPU)

	e.i64(len(st.tables))
	for _, pid := range sortedInts(st.tables) {
		e.i64(pid)
		entries := st.tables[pid].Export()
		e.i64(len(entries))
		for _, en := range entries {
			e.u64(en.PN)
			e.u64(en.PTE.PA)
			e.u64(uint64(en.PTE.Perm))
		}
	}

	e.i64(len(st.pipes))
	for _, id := range sortedInts(st.pipes) {
		e.u64(id)
		e.bytes(st.pipes[id])
	}
	e.u64(st.nextPipe)
	e.i64(len(st.files))
	for _, va := range sortedInts(st.files) {
		f := st.files[va]
		e.u64(va)
		e.u64(f.addr)
		e.u64(f.opsVA)
		e.i64(f.pathID)
		e.u64(f.inode)
	}
	e.u64(st.credObj)
	e.i64(len(st.extraOps))
	for _, path := range sortedInts(st.extraOps) {
		e.i64(path)
		e.u64(st.extraOps[path])
	}
	e.u64(st.modNext)
	e.i64(st.pacFailures)
	e.i64(st.threshold)
	e.i64(len(st.oops))
	for _, o := range st.oops {
		e.u64(o.ESR)
		e.u64(o.FAR)
		e.u64(o.ELR)
		e.boolean(o.Kernel)
		e.boolean(o.PACFailure)
		e.i64(o.PID)
	}
	e.boolean(st.halted)
	for _, v := range st.svcCalls {
		e.u64(v)
	}
	e.u64(st.bootCycles)
	return e.buf, nil
}

// DeserializeState rebuilds a State from its wire form plus the frozen
// RAM pages the store reassembled from verified chunks. The immutable
// half — built image, codegen config — is re-derived from the encoded
// options through the same deterministic pipeline New uses, then §4.1
// re-verified; the blob's kernel keys must match the rebuilt image's
// (they are a pure function of the seed), which catches blobs paired
// with the wrong options. Pages are owned by the result: callers must
// hand over fresh arrays and never write them again.
func DeserializeState(blob []byte, pages map[uint64]*[mem.PageSize]byte) (*State, error) {
	if len(blob) < len(stateWireMagic) || string(blob[:len(stateWireMagic)]) != stateWireMagic {
		return nil, fmt.Errorf("kernel: not a state blob (bad magic)")
	}
	d := &wireDec{buf: blob, off: len(stateWireMagic)}
	if v := d.u64("version"); d.err == nil && v != stateWireVersion {
		return nil, fmt.Errorf("kernel: state blob version %d, want %d", v, stateWireVersion)
	}

	opts := decodeOptions(d)
	wireKeys := d.keys("keys")
	var rngState [4]uint64
	for i := range rngState {
		rngState[i] = d.u64("rng")
	}
	if d.err != nil {
		return nil, d.err
	}

	img, keys, _, err := buildLinked(opts)
	if err != nil {
		return nil, fmt.Errorf("kernel: rebuild image from snapshot options: %w", err)
	}
	if err := VerifyImage(img); err != nil {
		return nil, fmt.Errorf("kernel: verify rebuilt snapshot image: %w", err)
	}
	if keys != wireKeys {
		return nil, fmt.Errorf("kernel: snapshot keys do not match image rebuilt from its options (blob/options mismatch)")
	}

	st := &State{
		img:    img,
		cfg:    opts.Config,
		opts:   opts,
		keys:   keys,
		rng:    boot.NewPRNGFromState(rngState),
		frozen: mem.NewFrozenFromPages(pages),
	}

	ncpus := d.i64("ncpus")
	if d.err == nil && (ncpus < 1 || ncpus > MaxCPUs) {
		return nil, fmt.Errorf("kernel: state blob has %d vCPUs (max %d)", ncpus, MaxCPUs)
	}
	for i := 0; i < ncpus && d.err == nil; i++ {
		st.cpus = append(st.cpus, decodeCPU(d))
	}
	st.mmuOn = d.boolean("mmuOn")

	nTT1 := d.i64("tt1.len")
	tt1 := make([]mmu.TableEntryWire, 0, max(nTT1, 0))
	for i := 0; i < nTT1 && d.err == nil; i++ {
		pn := d.u64("tt1.pn")
		pa := d.u64("tt1.pa")
		perm := mmu.Perm(d.u64("tt1.perm"))
		tt1 = append(tt1, mmu.TableEntryWire{PN: pn, PTE: mmu.PTE{PA: pa, Perm: perm}})
	}
	st.tt1 = mmu.NewTableFromEntries(tt1)
	s2on := d.boolean("s2.enabled")
	nS2 := d.i64("s2.len")
	s2 := make([]mmu.S2EntryWire, 0, max(nS2, 0))
	for i := 0; i < nS2 && d.err == nil; i++ {
		var en mmu.S2EntryWire
		en.PN = d.u64("s2.pn")
		en.Perm.R = d.boolean("s2.r")
		en.Perm.W = d.boolean("s2.w")
		en.Perm.X = d.boolean("s2.x")
		s2 = append(s2, en)
	}
	st.s2 = mmu.NewStage2FromEntries(s2, s2on)

	st.hyp.Lockdown = d.boolean("hyp.lockdown")
	st.hyp.DeniedWrites = d.u64("hyp.denied")
	st.hyp.Escrow = d.keys("hyp.escrow")
	st.hyp.TrapInstalls = d.u64("hyp.traps")

	st.uart = d.bytes("uart")
	var nw mem.NetDevWire
	nRX := d.i64("net.rx.len")
	for i := 0; i < nRX && d.err == nil; i++ {
		nw.RX = append(nw.RX, d.bytes("net.rx"))
	}
	nw.RXOff = d.i64("net.rxoff")
	nw.RXCount = d.u64("net.rxcount")
	nw.TXBytes = d.u64("net.txbytes")
	st.net = nw.State()
	var bw mem.BlockDevWire
	nSec := d.i64("blk.len")
	for i := 0; i < nSec && d.err == nil; i++ {
		var s mem.BlockSectorWire
		s.N = d.u64("blk.n")
		if d.off+mem.SectorSize > len(d.buf) {
			d.fail("blk.data")
			break
		}
		copy(s.Data[:], d.buf[d.off:d.off+mem.SectorSize])
		d.off += mem.SectorSize
		bw.Sectors = append(bw.Sectors, s)
	}
	bw.Cur = d.u64("blk.cur")
	bw.Off = d.i64("blk.off")
	bw.Reads = d.u64("blk.reads")
	bw.Writes = d.u64("blk.writes")
	st.blk = bw.State()

	st.heapNext = d.u64("heapNext")
	st.nextPID = d.i64("nextPID")
	nTasks := d.i64("tasks.len")
	st.tasks = make(map[int]Task, max(nTasks, 0))
	for i := 0; i < nTasks && d.err == nil; i++ {
		t := decodeTask(d)
		st.tasks[t.PID] = t
	}
	nCur := d.i64("currents.len")
	st.currentPIDs = make([]int, max(nCur, 0))
	st.currents = make([]*Task, max(nCur, 0))
	for i := 0; i < nCur && d.err == nil; i++ {
		if d.boolean("currents.present") {
			st.currentPIDs[i] = d.i64("currents.pid")
			t := decodeTask(d)
			st.currents[i] = &t
		}
	}
	nParked := d.i64("parked.len")
	for i := 0; i < nParked && d.err == nil; i++ {
		st.parked = append(st.parked, d.boolean("parked"))
	}
	st.activeCPU = d.i64("activeCPU")

	nTables := d.i64("tables.len")
	st.tables = make(map[int]*mmu.Table, max(nTables, 0))
	for i := 0; i < nTables && d.err == nil; i++ {
		pid := d.i64("tables.pid")
		n := d.i64("tables.entries")
		entries := make([]mmu.TableEntryWire, 0, max(n, 0))
		for j := 0; j < n && d.err == nil; j++ {
			pn := d.u64("tables.pn")
			pa := d.u64("tables.pa")
			perm := mmu.Perm(d.u64("tables.perm"))
			entries = append(entries, mmu.TableEntryWire{PN: pn, PTE: mmu.PTE{PA: pa, Perm: perm}})
		}
		st.tables[pid] = mmu.NewTableFromEntries(entries)
	}

	nPipes := d.i64("pipes.len")
	st.pipes = make(map[uint64][]byte, max(nPipes, 0))
	for i := 0; i < nPipes && d.err == nil; i++ {
		id := d.u64("pipes.id")
		st.pipes[id] = d.bytes("pipes.buf")
	}
	st.nextPipe = d.u64("nextPipe")
	nFiles := d.i64("files.len")
	st.files = make(map[uint64]fileState, max(nFiles, 0))
	for i := 0; i < nFiles && d.err == nil; i++ {
		va := d.u64("files.va")
		var f fileState
		f.addr = d.u64("files.addr")
		f.opsVA = d.u64("files.opsva")
		f.pathID = d.i64("files.pathid")
		f.inode = d.u64("files.inode")
		st.files[va] = f
	}
	st.credObj = d.u64("credObj")
	nOps := d.i64("extraOps.len")
	st.extraOps = make(map[int]uint64, max(nOps, 0))
	for i := 0; i < nOps && d.err == nil; i++ {
		path := d.i64("extraOps.path")
		st.extraOps[path] = d.u64("extraOps.ops")
	}
	st.modNext = d.u64("modNext")
	st.pacFailures = d.i64("pacFailures")
	st.threshold = d.i64("threshold")
	nOops := d.i64("oops.len")
	for i := 0; i < nOops && d.err == nil; i++ {
		var o OopsRecord
		o.ESR = d.u64("oops.esr")
		o.FAR = d.u64("oops.far")
		o.ELR = d.u64("oops.elr")
		o.Kernel = d.boolean("oops.kernel")
		o.PACFailure = d.boolean("oops.pacfailure")
		o.PID = d.i64("oops.pid")
		st.oops = append(st.oops, o)
	}
	st.halted = d.boolean("halted")
	for i := range st.svcCalls {
		st.svcCalls[i] = d.u64("svcCalls")
	}
	st.bootCycles = d.u64("bootCycles")
	st.programs = make(map[int]*Program)

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("kernel: %d trailing bytes after state blob", len(d.buf)-d.off)
	}
	if len(st.cpus) != len(st.currents) || len(st.cpus) != len(st.parked) {
		return nil, fmt.Errorf("kernel: state blob core-count mismatch (%d cpus, %d currents, %d parked)",
			len(st.cpus), len(st.currents), len(st.parked))
	}
	return st, nil
}
