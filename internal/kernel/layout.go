// Package kernel implements the miniature AArch64 kernel that the
// Camouflage reproduction protects. It is a hybrid: the mechanics the
// paper instruments and measures — exception vectors, kernel entry/exit
// with PAuth key switching, instrumented syscall call trees, the
// authenticated `f_ops` access pattern of Listing 4, `cpu_switch_to` with
// signed stack pointers, and the early-boot signing of statically
// initialised pointers — execute as real simulated instructions; the
// bookkeeping a 27-MLoC kernel does around them (allocating objects,
// picking the next task, pathname lookup) is handled by a host-side
// service device, with each service charging a modelled cycle cost
// (DESIGN.md documents the substitution).
package kernel

import "camouflage/internal/pac"

// KBase is the bottom of the kernel address range (Table 1).
const KBase = uint64(pac.KernelBase)

// Virtual memory layout.
const (
	// VecBase is the exception vector table (2 KiB aligned).
	VecBase = KBase | 0x0006_0000
	// XOMBase is the page holding the key-setter (mapped XOM, §5.1).
	XOMBase = KBase | 0x0007_0000
	// TextBase is kernel .text.
	TextBase = KBase | 0x0008_0000
	// RodataBase holds .rodata: operations structures and the syscall
	// table (read-only mappings; cannot be tampered per §3.1).
	RodataBase = KBase | 0x0020_0000
	// DataBase holds .data: mutable kernel globals, the per-CPU block,
	// statically initialised objects (DECLARE_WORK) and the .pauth_ptrs
	// table (§4.6).
	DataBase = KBase | 0x0030_0000
	// HeapBase is the kernel object heap (task structs, files, pipes).
	HeapBase = KBase | 0x0040_0000
	// HeapSize bounds the heap.
	HeapSize = 0x0040_0000
	// ModuleBase is the loadable-kernel-module arena.
	ModuleBase = KBase | 0x0080_0000
	// StackBase is the kernel task stack arena: one 16 KiB stack per
	// task (§4.2), each aligned to a 4 KiB boundary — stacks are placed
	// at 16 KiB strides, so the low-order SP bits repeat across threads
	// exactly as the paper's replay analysis assumes.
	StackBase = KBase | 0x0100_0000
	// StackSize is the per-task kernel stack size (§4.2: 16 KiB).
	StackSize = 0x4000

	// MMIO windows (kernel VA = PA for devices).
	UARTBase = KBase | 0x0900_0000
	NetBase  = KBase | 0x0A00_0000
	BlkBase  = KBase | 0x0B00_0000
	SvcBase  = KBase | 0x0C00_0000
)

// User-space layout (one window per process; PA = UserPABase | pid<<32 | va).
const (
	UserTextBase  = uint64(0x0040_0000)
	UserDataBase  = uint64(0x0100_0000)
	UserStackTop  = uint64(0x7FFF_F000)
	UserStackSize = uint64(0x1_0000)
	// UserPABase keeps per-process physical windows clear of kernel PAs.
	UserPABase = uint64(1) << 40
)

// KVAToPA converts a kernel VA to its physical address (linear map).
func KVAToPA(va uint64) uint64 { return va &^ KBase }

// UVAToPA converts a user VA of process pid to its physical address.
func UVAToPA(pid int, va uint64) uint64 {
	return UserPABase | uint64(pid)<<32 | va
}

// pt_regs layout: the trap frame kernel_entry pushes (offsets from SP at
// handler entry).
const (
	PtRegsX0   = 0x00 // x0..x30 at 8*i
	PtRegsSP   = 0xF8 // saved SP_EL0
	PtRegsELR  = 0x100
	PtRegsSPSR = 0x108
	PtRegsSize = 0x110
)

// Task struct layout (in kernel heap memory). The thread.cpu_context block
// matches arm64's {x19..x28, fp, sp, pc}; the saved SP is PAC-signed with
// the pointer-integrity scheme while the task is scheduled out (§5.2).
const (
	TaskPID     = 0x00
	TaskPPID    = 0x08
	TaskState   = 0x10
	TaskStack   = 0x18 // kernel stack base VA
	TaskPtRegs  = 0x20 // pointer to the live trap frame
	TaskPending = 0x28 // pending signal handler VA (0 = none)
	TaskCtx     = 0x38 // cpu_context: x19..x28 (10 quads)
	TaskCtxFP   = 0x88
	TaskCtxSP   = 0x90 // signed while scheduled out
	TaskCtxPC   = 0x98
	TaskKeys    = 0xA0  // user PAuth keys: 5 × (lo, hi)
	TaskFiles   = 0x100 // 16 file-pointer slots
	TaskNFiles  = 16
	TaskSize    = 0x200
)

// Task states.
const (
	TaskRunnable = 0
	TaskBlocked  = 1
	TaskZombie   = 2
)

// struct file layout. The f_ops offset of 40 matches Listing 4 exactly
// ("ldr x8, [x0, #40]"); f_ops and f_cred are the two PAC-protected
// fields (§4.5).
const (
	FileCount = 0x00
	FileFlags = 0x08
	FilePos   = 0x10
	FileCred  = 0x18 // signed data pointer (f_cred)
	FileInode = 0x20 // driver-private value (pipe id, file id, ...)
	FileOps   = 0x28 // == 40: signed data pointer to file_operations
	FileSize  = 0x40
)

// file_operations layout (read-only, unsigned members — §4.4: the table
// itself lives in .rodata, so its function pointers need no PACs). The
// read offset of 16 matches Listing 4 ("ldr x8, [x8, #16]").
const (
	OpsOpen    = 0x00
	OpsRelease = 0x08
	OpsRead    = 0x10 // == 16
	OpsWrite   = 0x18
	OpsPoll    = 0x20
	OpsSize    = 0x28
)

// Per-CPU block layout (in .data): service-call arguments and results,
// scheduler handoff slots, and the halt flag. SMP builds lay out one
// frame per core at PerCPUSize strides (MaxCPUs frames fit between
// PerCPUOffset and PauthTableOffset); each core finds its own frame
// through TPIDR_EL0 (see emitPerCPUAddr).
const (
	PerCPUArg0   = 0x00 // 6 argument slots
	PerCPURet0   = 0x30 // 2 result slots
	PerCPUPrev   = 0x40 // cpu_switch_to: previous task
	PerCPUNext   = 0x48 // cpu_switch_to: next task
	PerCPUHalt   = 0x50 // nonzero → this core exits the simulation
	PerCPUCur    = 0x58 // current task (mirrors TPIDR_EL1)
	PerCPUFault  = 0x60 // last kernel fault ESR
	PerCPUFAR    = 0x68 // last kernel fault FAR
	PerCPUSize   = 0x80
	PerCPUOffset = 0x0800 // from DataBase
)

// MaxCPUs bounds the vCPU count of one machine: MaxCPUs per-CPU frames
// fit under PauthTableOffset, and the secondary boot stacks occupy the
// top MaxCPUs slots of the 64-slot kernel stack arena.
const MaxCPUs = 8

// secondaryStackSlot0 is the first stack slot used for secondary boot
// stacks: the task arena keeps its full 64 PID-indexed slots, and SMP
// builds map MaxCPUs extra slots above it (uniprocessor builds map
// exactly the pre-SMP range, keeping them bit-identical).
const secondaryStackSlot0 = 64

// PerCPUVA returns the VA of a core's per-CPU frame.
func PerCPUVA(cpu int) uint64 {
	return DataBase + PerCPUOffset + uint64(cpu)*PerCPUSize
}

// PauthTableOffset locates the .pauth_ptrs table (§4.6) inside .data:
// a count followed by entries of four quads each.
const (
	PauthTableOffset = 0x1000
	// PauthEntrySlot etc. are offsets within one entry.
	PauthEntrySlot = 0x00 // address of the pointer to sign
	PauthEntryObj  = 0x08 // address of the containing object
	PauthEntryKey  = 0x10 // 0 = data key (DB), 1 = instruction key (IA)
	PauthEntryTC   = 0x18 // 16-bit type·member constant
	PauthEntrySize = 0x20
)

// StaticWorkOffset locates the statically initialised work_struct
// (DECLARE_WORK analogue, §4.6) inside .data.
const (
	StaticWorkOffset = 0x2000
	WorkFunc         = 0x00 // signed function pointer
	WorkData         = 0x08
	WorkSize         = 0x10
)

// Service codes for the host-service device.
const (
	SvcOpen      = 1  // arg0 = path id, arg1 = flags → ret0 = fd or -errno
	SvcClose     = 2  // arg0 = fd
	SvcStat      = 3  // arg0 = path id → ret0 = 0/-errno
	SvcPickNext  = 4  // arg0 = block(1)/yield(0) → prev/next slots
	SvcFork      = 5  // → ret0 = child pid
	SvcExec      = 6  // arg0 = program id → fresh user keys (§2.2)
	SvcExit      = 7  // arg0 = status
	SvcSigact    = 8  // arg0 = handler VA
	SvcKill      = 9  // arg0 = pid, arg1 = sig → may set pending handler
	SvcPipe      = 10 // → ret0 = read fd, ret1 = write fd
	SvcPipeIO    = 11 // arg0 = fd, arg1 = buf, arg2 = len, arg3 = write? → ret0 = n or -EAGAIN
	SvcPoll      = 12 // arg0 = fd → ret0 = readiness
	SvcFault     = 13 // kernel fault notification (PAC failures, §5.4)
	SvcWake      = 14 // arg0 = pid → mark runnable
	SvcLog       = 15 // arg0 = value → host log
	SvcSigreturn = 16 // restore the pre-signal ELR

	// SvcMax bounds the service-code space: the dispatch fast path
	// indexes cost and count arrays with it instead of hashing maps.
	SvcMax = SvcSigreturn + 1
)

// Path ids for SvcOpen/SvcStat (a fixed namespace instead of string
// parsing; lmbench stats and opens the same path repeatedly).
const (
	PathDevZero = 1
	PathDevNull = 2
	PathTmpFile = 3
	PathSocket  = 4
)

// Syscall numbers (the arm64 Linux ABI values).
const (
	SysDup        = 23
	SysOpenat     = 56
	SysClose      = 57
	SysPipe2      = 59
	SysRead       = 63
	SysWrite      = 64
	SysPselect6   = 72
	SysFstatat    = 79
	SysFstat      = 80
	SysExit       = 93
	SysExitGroup  = 94
	SysNanosleep  = 101
	SysSchedYield = 124
	SysKill       = 129
	SysSigaction  = 134
	SysSigreturn  = 139
	SysGetppid    = 173
	SysGetpid     = 172
	SysClone      = 220
	SysExecve     = 221
	SysWorkRun    = 400 // runs the static work_struct (run-time linkage demo)
	SysMax        = 401
)
