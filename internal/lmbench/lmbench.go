// Package lmbench reproduces the lmbench micro-benchmark rows of the
// paper's Figure 3: syscall-path latencies measured under three kernel
// builds (no protection, backward-edge CFI only, full protection). Each
// benchmark is a real user program running on the simulated machine; the
// reported latency is the cycle-count slope between two iteration counts,
// which cancels program start-up and tear-down exactly as lmbench's
// timing harness amortises loop overhead.
package lmbench

import (
	"fmt"

	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/snapshot"
)

// Benchmark is one lmbench row.
type Benchmark struct {
	// Name matches the lmbench tool naming (lat_syscall null, etc.).
	Name string
	// Iters is the base iteration count.
	Iters uint64
	// Build emits the measured loop for the given iteration count.
	Build func(u *kernel.UserASM, iters uint64)
	// NeedsExecTarget registers the trivial exec-target program.
	NeedsExecTarget bool
}

// openFD emits openat(path) and moves the fd into x20.
func openFD(u *kernel.UserASM, path uint64) {
	u.Syscall(kernel.SysOpenat, 0, path, 0)
	u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
}

// readLoop emits the measured read loop on fd x20.
func readLoop(u *kernel.UserASM, iters, size uint64) {
	u.CounterLoop("bench", insn.X21, iters, func() {
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.MovImm(insn.X2, size)
		u.SyscallReg(kernel.SysRead)
	})
}

// Suite returns the Figure 3 benchmark rows.
func Suite() []Benchmark {
	return []Benchmark{
		{
			Name:  "null (getppid)",
			Iters: 300,
			Build: func(u *kernel.UserASM, iters uint64) {
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.SyscallReg(kernel.SysGetppid)
				})
				u.Exit(0)
			},
		},
		{
			Name:  "read /dev/zero",
			Iters: 200,
			Build: func(u *kernel.UserASM, iters uint64) {
				openFD(u, kernel.PathDevZero)
				readLoop(u, iters, 64)
				u.Exit(0)
			},
		},
		{
			Name:  "write /dev/null",
			Iters: 200,
			Build: func(u *kernel.UserASM, iters uint64) {
				openFD(u, kernel.PathDevNull)
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
					u.MovImm(insn.X1, kernel.UserDataBase)
					u.MovImm(insn.X2, 64)
					u.SyscallReg(kernel.SysWrite)
				})
				u.Exit(0)
			},
		},
		{
			Name:  "stat",
			Iters: 200,
			Build: func(u *kernel.UserASM, iters uint64) {
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.Syscall(kernel.SysFstatat, 0, kernel.PathTmpFile)
				})
				u.Exit(0)
			},
		},
		{
			Name:  "fstat",
			Iters: 200,
			Build: func(u *kernel.UserASM, iters uint64) {
				openFD(u, kernel.PathTmpFile)
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
					u.SyscallReg(kernel.SysFstat)
				})
				u.Exit(0)
			},
		},
		{
			Name:  "open/close",
			Iters: 150,
			Build: func(u *kernel.UserASM, iters uint64) {
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
					u.SyscallReg(kernel.SysClose)
				})
				u.Exit(0)
			},
		},
		{
			Name:  "select (10 fds)",
			Iters: 150,
			Build: func(u *kernel.UserASM, iters uint64) {
				// Open ten fds, then select over them.
				for i := 0; i < 10; i++ {
					u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
				}
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.Syscall(kernel.SysPselect6, 10)
				})
				u.Exit(0)
			},
		},
		{
			Name:  "sig install",
			Iters: 200,
			Build: func(u *kernel.UserASM, iters uint64) {
				u.A.ADR(insn.X22, "handler")
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.A.I(insn.ORRr(insn.X1, insn.XZR, insn.X22, 0))
					u.SyscallReg(kernel.SysSigaction)
				})
				u.Exit(0)
				u.A.Label("handler")
				u.SyscallReg(kernel.SysSigreturn)
			},
		},
		{
			Name:  "sig handle",
			Iters: 150,
			Build: func(u *kernel.UserASM, iters uint64) {
				u.A.ADR(insn.X1, "handler")
				u.SyscallReg(kernel.SysSigaction)
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.Syscall(kernel.SysKill, 1, 10)
				})
				u.Exit(0)
				u.A.Label("handler")
				u.SyscallReg(kernel.SysSigreturn)
			},
		},
		{
			Name:  "fork+exit",
			Iters: 40,
			Build: func(u *kernel.UserASM, iters uint64) {
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.SyscallReg(kernel.SysClone)
					u.A.CBNZ(insn.X0, "parent_cont")
					u.Exit(0) // child exits immediately
					u.A.Label("parent_cont")
					// Yield so the child runs to completion (wait(2)).
					u.SyscallReg(kernel.SysSchedYield)
				})
				u.Exit(0)
			},
		},
		{
			Name:            "fork+execve",
			Iters:           30,
			NeedsExecTarget: true,
			Build: func(u *kernel.UserASM, iters uint64) {
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.SyscallReg(kernel.SysClone)
					u.A.CBNZ(insn.X0, "parent_cont")
					u.Syscall(kernel.SysExecve, ExecTargetProgID)
					u.Exit(1) // unreachable
					u.A.Label("parent_cont")
					u.SyscallReg(kernel.SysSchedYield)
				})
				u.Exit(0)
			},
		},
		{
			Name:  "pipe ctxsw",
			Iters: 60,
			Build: func(u *kernel.UserASM, iters uint64) {
				// Two pipes, ping-pong between parent and child: each
				// round trip is two context switches through real
				// cpu_switch_to (§5.2).
				u.Syscall(kernel.SysPipe2, kernel.UserDataBase+0x200) // pipe A
				u.Syscall(kernel.SysPipe2, kernel.UserDataBase+0x210) // pipe B
				u.SyscallReg(kernel.SysClone)
				u.A.CBZ(insn.X0, "child")
				// Parent: write A, read B.
				u.CounterLoop("bench", insn.X21, iters, func() {
					u.MovImm(insn.X9, kernel.UserDataBase+0x200)
					u.A.I(insn.LDR(insn.X0, insn.X9, 8)) // A write end
					u.MovImm(insn.X1, kernel.UserDataBase)
					u.MovImm(insn.X2, 8)
					u.SyscallReg(kernel.SysWrite)
					u.MovImm(insn.X9, kernel.UserDataBase+0x210)
					u.A.I(insn.LDR(insn.X0, insn.X9, 0)) // B read end
					u.MovImm(insn.X1, kernel.UserDataBase+0x20)
					u.MovImm(insn.X2, 8)
					u.SyscallReg(kernel.SysRead)
				})
				u.Exit(0)
				// Child: read A, write B.
				u.A.Label("child")
				u.CounterLoop("childloop", insn.X21, iters, func() {
					u.MovImm(insn.X9, kernel.UserDataBase+0x200)
					u.A.I(insn.LDR(insn.X0, insn.X9, 0))
					u.MovImm(insn.X1, kernel.UserDataBase+0x40)
					u.MovImm(insn.X2, 8)
					u.SyscallReg(kernel.SysRead)
					u.MovImm(insn.X9, kernel.UserDataBase+0x210)
					u.A.I(insn.LDR(insn.X0, insn.X9, 8))
					u.MovImm(insn.X1, kernel.UserDataBase+0x40)
					u.MovImm(insn.X2, 8)
					u.SyscallReg(kernel.SysWrite)
				})
				u.Exit(0)
			},
		},
	}
}

// ExecTargetProgID is the program id the fork+execve benchmark execs.
const ExecTargetProgID = 9

// Result is one measured cell.
type Result struct {
	Bench string
	Level string
	// CyclesPerIter is the slope-based per-iteration latency.
	CyclesPerIter float64
	// NsPerIter converts at the 1.2 GHz model clock.
	NsPerIter float64
}

// runOnce runs a benchmark with the given iteration count on a pristine
// kernel and returns total consumed cycles.
func runOnce(cfg func() *codegen.Config, b Benchmark, iters uint64, seed uint64) (uint64, error) {
	return runOnceOpts(kernel.Options{Config: cfg(), Seed: seed}, b, iters)
}

// runOnceOpts is runOnce with full kernel options (compat builds). The
// machine comes from the shared snapshot pool: one build+verify+boot per
// option set, then copy-on-write forks/resets — observably identical to
// a fresh boot (pinned by the snapshot determinism tests), so measured
// latencies are unchanged.
func runOnceOpts(opts kernel.Options, b Benchmark, iters uint64) (uint64, error) {
	m, err := snapshot.Shared.Acquire(snapshot.KeyFor(opts), snapshot.BootOptions(opts))
	if err != nil {
		return 0, err
	}
	defer m.Release()
	k := m.K
	prog, err := kernel.BuildProgram(b.Name, func(u *kernel.UserASM) {
		b.Build(u, iters)
	})
	if err != nil {
		return 0, err
	}
	k.RegisterProgram(1, prog)
	if b.NeedsExecTarget {
		tgt, err := kernel.BuildProgram("exec-target", func(u *kernel.UserASM) {
			u.Exit(0)
		})
		if err != nil {
			return 0, err
		}
		k.RegisterProgram(ExecTargetProgID, tgt)
	}
	if _, err := k.Spawn(1); err != nil {
		return 0, err
	}
	start := k.CPU.Cycles
	stop := k.Run(400_000_000)
	if stop.Kind != cpu.StopHLT {
		return 0, fmt.Errorf("lmbench %s: no halt: %+v", b.Name, stop)
	}
	return k.CPU.Cycles - start, nil
}

// MeasureOpts measures one benchmark under explicit kernel options (used
// for the §5.5 backwards-compatible build, which needs a v8.0 core).
func MeasureOpts(opts kernel.Options, level string, b Benchmark) (Result, error) {
	c1, err := runOnceOpts(opts, b, b.Iters)
	if err != nil {
		return Result{}, err
	}
	c2, err := runOnceOpts(opts, b, 2*b.Iters)
	if err != nil {
		return Result{}, err
	}
	slope := float64(c2-c1) / float64(b.Iters)
	return Result{
		Bench:         b.Name,
		Level:         level,
		CyclesPerIter: slope,
		NsPerIter:     slope * 1e9 / float64(cpu.ClockHz),
	}, nil
}

// Measure returns the per-iteration latency of one benchmark under one
// build, using the two-point slope to cancel fixed costs.
func Measure(cfg func() *codegen.Config, level string, b Benchmark) (Result, error) {
	c1, err := runOnce(cfg, b, b.Iters, 1234)
	if err != nil {
		return Result{}, err
	}
	c2, err := runOnce(cfg, b, 2*b.Iters, 1234)
	if err != nil {
		return Result{}, err
	}
	slope := float64(c2-c1) / float64(b.Iters)
	return Result{
		Bench:         b.Name,
		Level:         level,
		CyclesPerIter: slope,
		NsPerIter:     slope * 1e9 / float64(cpu.ClockHz),
	}, nil
}

// Levels returns the three Figure 3 protection levels in display order.
func Levels() []struct {
	Name string
	Cfg  func() *codegen.Config
} {
	return []struct {
		Name string
		Cfg  func() *codegen.Config
	}{
		{"none", codegen.ConfigNone},
		{"backward-edge", codegen.ConfigBackward},
		{"full", codegen.ConfigFull},
	}
}

// RunSuite measures every benchmark under every protection level.
func RunSuite() ([]Result, error) { return runSuite(false, 1) }

// RunSuiteParallel is RunSuite with one goroutine per (benchmark,
// protection level) cell. Every cell runs on its own isolated machine
// (a copy-on-write fork from the warm pool), so the cells share nothing
// mutable; results are assembled in the same order as RunSuite, making
// the output deterministic.
func RunSuiteParallel() ([]Result, error) { return runSuite(true, 1) }

// RunSuiteCPUs is RunSuite on machines with the given vCPU count (the
// workloads stay pinned to the boot core; secondaries boot, install
// their keys and idle — the suite measures SMP-build kernel paths).
func RunSuiteCPUs(parallel bool, cpus int) ([]Result, error) {
	return runSuite(parallel, cpus)
}

func runSuite(parallel bool, cpus int) ([]Result, error) {
	benches := Suite()
	levels := Levels()
	out := make([]Result, len(benches)*len(levels))
	err := snapshot.ForEach(len(out), parallel, func(idx int) error {
		b := benches[idx/len(levels)]
		lv := levels[idx%len(levels)]
		var err error
		out[idx], err = Measure(codegen.WithCPUs(lv.Cfg, cpus), lv.Name, b)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Relative computes Figure 3's relative latencies: for each benchmark,
// the latency of each level divided by the "none" baseline.
func Relative(results []Result) map[string]map[string]float64 {
	base := map[string]float64{}
	for _, r := range results {
		if r.Level == "none" {
			base[r.Bench] = r.CyclesPerIter
		}
	}
	out := map[string]map[string]float64{}
	for _, r := range results {
		if out[r.Bench] == nil {
			out[r.Bench] = map[string]float64{}
		}
		out[r.Bench][r.Level] = r.CyclesPerIter / base[r.Bench]
	}
	return out
}
