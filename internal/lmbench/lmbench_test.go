package lmbench

import (
	"testing"

	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/kernel"
)

// TestNullSyscallOverheadIsDoubleDigit pins §6.1.3: "the performance
// impact at system call level is measurable as double-digit percentual
// overhead".
func TestNullSyscallOverheadIsDoubleDigit(t *testing.T) {
	b := Suite()[0] // null (getppid)
	base, err := Measure(codegen.ConfigNone, "none", b)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Measure(codegen.ConfigFull, "full", b)
	if err != nil {
		t.Fatal(err)
	}
	rel := full.CyclesPerIter / base.CyclesPerIter
	if rel < 1.10 {
		t.Fatalf("null syscall full-protection overhead = %.1f%%, want double-digit", (rel-1)*100)
	}
	if rel > 2.0 {
		t.Fatalf("null syscall overhead = %.1f%%, implausibly high", (rel-1)*100)
	}
}

// TestBackwardEdgeCheaperThanFull: the partial build must always sit
// between baseline and full protection.
func TestBackwardEdgeCheaperThanFull(t *testing.T) {
	for _, b := range Suite()[:3] { // null, read, write: the cheap rows
		base, err := Measure(codegen.ConfigNone, "none", b)
		if err != nil {
			t.Fatal(err)
		}
		bw, err := Measure(codegen.ConfigBackward, "backward-edge", b)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Measure(codegen.ConfigFull, "full", b)
		if err != nil {
			t.Fatal(err)
		}
		if !(base.CyclesPerIter < bw.CyclesPerIter && bw.CyclesPerIter < full.CyclesPerIter) {
			t.Errorf("%s: ordering violated: none=%.0f bw=%.0f full=%.0f",
				b.Name, base.CyclesPerIter, bw.CyclesPerIter, full.CyclesPerIter)
		}
	}
}

// TestMeasurementDeterministic: identical runs give identical slopes (the
// simulator is deterministic, so error bars are zero by construction).
func TestMeasurementDeterministic(t *testing.T) {
	b := Suite()[0]
	r1, err := Measure(codegen.ConfigFull, "full", b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Measure(codegen.ConfigFull, "full", b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CyclesPerIter != r2.CyclesPerIter {
		t.Fatalf("non-deterministic measurement: %f vs %f", r1.CyclesPerIter, r2.CyclesPerIter)
	}
}

// TestAllBenchmarksRun smoke-tests every row under full protection.
func TestAllBenchmarksRun(t *testing.T) {
	for _, b := range Suite() {
		r, err := Measure(codegen.ConfigFull, "full", b)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if r.CyclesPerIter <= 0 {
			t.Errorf("%s: non-positive latency %f", b.Name, r.CyclesPerIter)
		}
		if r.NsPerIter <= 0 {
			t.Errorf("%s: non-positive ns %f", b.Name, r.NsPerIter)
		}
	}
}

// TestRelative checks the Figure 3 normalisation.
func TestRelative(t *testing.T) {
	results := []Result{
		{Bench: "x", Level: "none", CyclesPerIter: 100},
		{Bench: "x", Level: "full", CyclesPerIter: 130},
	}
	rel := Relative(results)
	if rel["x"]["none"] != 1.0 {
		t.Fatalf("baseline not 1.0: %f", rel["x"]["none"])
	}
	if rel["x"]["full"] != 1.3 {
		t.Fatalf("full = %f, want 1.3", rel["x"]["full"])
	}
}

// TestCompatBuildRunsFullSuite validates §5.5 end to end: the
// backwards-compatible kernel (HINT-form instrumentation on an ARMv8.0
// core) runs every benchmark, and — because the hint forms degrade to
// NOPs but still occupy pipeline slots — costs at least as much as the
// unprotected build but no more than the native v8.3 build.
func TestCompatBuildRunsFullSuite(t *testing.T) {
	compatOpts := func() kernel.Options {
		cfg := &codegen.Config{Scheme: codegen.SchemeCamouflageCompat}
		return kernel.Options{Config: cfg, Seed: 1234, Compat: boot.ModeV80, V80: true}
	}
	for _, b := range Suite() {
		r, err := MeasureOpts(compatOpts(), "compat", b)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if r.CyclesPerIter <= 0 {
			t.Errorf("%s: non-positive compat latency", b.Name)
		}
		base, err := Measure(codegen.ConfigNone, "none", b)
		if err != nil {
			t.Fatal(err)
		}
		if r.CyclesPerIter < base.CyclesPerIter {
			t.Errorf("%s: compat (%.0f) cheaper than baseline (%.0f)",
				b.Name, r.CyclesPerIter, base.CyclesPerIter)
		}
	}
}

// TestRunSuiteParallelMatchesSequential: the per-(benchmark, level)
// parallel suite must produce exactly the sequential results — every
// cell is a pure function of its seed on an isolated kernel.
func TestRunSuiteParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite twice")
	}
	seq, err := RunSuite()
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSuiteParallel()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("cell %d: sequential %+v != parallel %+v", i, seq[i], par[i])
		}
	}
}
