// Package server implements camouflaged, the long-running simulation
// service daemon (DESIGN.md §8). It owns the process-wide warm pool of
// booted machines and serves the paper's evaluation artefacts over
// HTTP/JSON: experiment runs (the figures.All() registry), differential
// attack campaigns, and machine leases that let a client step a warm
// forked kernel interactively. A bounded work queue sheds load instead
// of queueing unboundedly; per-key admission means concurrent requests
// for one configuration share a single boot and fan out as
// copy-on-write forks; request deadlines cancel work between
// experiments, cells and strikes; SIGTERM drains gracefully.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/client"
	"camouflage/internal/attack"
	"camouflage/internal/core"
	"camouflage/internal/fault"
	"camouflage/internal/figures"
	"camouflage/internal/obs"
	"camouflage/internal/snapshot"
	"camouflage/internal/store"
)

// requestsVec counts HTTP requests by endpoint pattern and status
// class (2xx/4xx/5xx…).
var requestsVec = obs.NewVec("camouflage_server_requests_total",
	"HTTP requests by endpoint and status class.")

// statusRecorder captures the status a handler wrote (200 when the
// handler never called WriteHeader explicitly) and whether a header was
// committed — the panic barrier must not WriteHeader twice.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// instrument wraps a handler with per-endpoint request accounting — a
// requests_total{endpoint,code} counter and a latency histogram
// labelled by the route pattern, labels pre-rendered at registration so
// the request path never formats strings — and with the per-job panic
// barrier: a panicking handler answers 500 and is counted, the daemon
// survives. Handler defers (queue-slot release, job end) run during the
// unwind as usual, so a recovered panic leaks no admission state.
func instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := obs.NewHistogramLabels("camouflage_server_request_seconds",
		"HTTP request latency by endpoint.",
		fmt.Sprintf("endpoint=%q", pattern), obs.DefaultLatencyBuckets)
	var classLabels [6]string
	for class := 1; class <= 5; class++ {
		classLabels[class] = fmt.Sprintf(`endpoint=%q,code="%dxx"`, pattern, class)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				obs.Add(obs.CPanicRecovered, 1)
				if !rec.wrote {
					writeErr(rec, http.StatusInternalServerError,
						fmt.Sprintf("internal panic (recovered): %v", v))
				} else {
					rec.status = http.StatusInternalServerError
				}
			}
			hist.ObserveSince(t0)
			if class := rec.status / 100; class >= 1 && class <= 5 {
				requestsVec.Cell(classLabels[class]).Add(1)
			}
		}()
		h(rec, r)
	}
}

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Pool is the warm pool machine leases draw from (default
	// snapshot.Shared). Experiments and campaigns always run on
	// snapshot.Shared — their suites reach the shared pool internally —
	// so a non-default Pool only isolates the lease surface.
	Pool *snapshot.Pool
	// Concurrency is how many admitted jobs run at once (default 4).
	Concurrency int
	// MaxQueue bounds jobs waiting for a slot; beyond it requests are
	// rejected with 503 (default 32).
	MaxQueue int
	// MaxLeases bounds simultaneously checked-out machines (default 64).
	MaxLeases int
	// LeaseIdle is how long an untouched lease survives before the
	// reaper returns its machine to the pool (default 10m; <0 disables).
	LeaseIdle time.Duration
	// Store is the persistent snapshot store behind -store-dir (nil: the
	// daemon is memory-only and the /v1/snapshots surface answers 503).
	// The caller wires the same store into the pools it serves.
	Store *store.Store
	// JobTimeout is the run watchdog's wall budget: an experiment or
	// campaign running past it is cancelled (504), and a lease operation
	// past it is force-expired — its machine abandoned on completion
	// rather than parked. 0 disables the watchdog (tests, ad-hoc use);
	// the daemon defaults it on.
	JobTimeout time.Duration
}

// Server is the daemon. It implements http.Handler.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	queue  *queue
	leases *leaseTable
	idem   *idemTable
	start  time.Time

	drainMu  sync.Mutex
	draining bool
	jobs     sync.WaitGroup

	requests atomic.Uint64
}

// New builds a Server around cfg.
func New(cfg Config) *Server {
	if cfg.Pool == nil {
		cfg.Pool = snapshot.Shared
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 32
	}
	if cfg.MaxLeases <= 0 {
		cfg.MaxLeases = 64
	}
	if cfg.LeaseIdle == 0 {
		cfg.LeaseIdle = 10 * time.Minute
	}
	s := &Server{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		queue:  newQueue(cfg.Concurrency, cfg.MaxQueue),
		leases: newLeaseTable(cfg.MaxLeases, cfg.LeaseIdle, cfg.JobTimeout),
		idem:   newIdemTable(256),
		start:  time.Now(),
	}
	for _, route := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"GET /healthz", s.handleHealthz},
		{"GET /readyz", s.handleReadyz},
		{"GET /v1/experiments", s.handleListExperiments},
		{"POST /v1/experiments", s.handleExperiments},
		{"POST /v1/campaigns", s.handleCampaigns},
		{"POST /v1/machines", s.handleLease},
		{"GET /v1/machines/{id}", s.handleMachineState},
		{"POST /v1/machines/{id}/run", s.handleMachineRun},
		{"POST /v1/machines/{id}/reset", s.handleMachineReset},
		{"POST /v1/machines/{id}/release", s.handleMachineRelease},
		{"GET /v1/runs/{id}/trace", s.handleRunTrace},
		{"GET /v1/snapshots", s.handleListSnapshots},
		{"GET /v1/snapshots/{digest}", s.handleSnapshotManifest},
		{"POST /v1/snapshots/{digest}/pin", s.handleSnapshotPin},
		{"DELETE /v1/snapshots/{digest}", s.handleSnapshotDelete},
		{"GET /v1/images", s.handleListImages},
		{"GET /v1/stats", s.handleStats},
		{"GET /metrics", s.handleMetrics},
	} {
		s.mux.HandleFunc(route.pattern, instrument(route.pattern, route.h))
	}
	// Instantaneous readings, read at scrape time. Registration replaces
	// by name, so the newest Server instance owns the gauges (tests
	// construct several; the daemon exactly one).
	obs.RegisterGauge("camouflage_server_queue_depth",
		"Jobs waiting for an execution slot.", func() float64 {
			d := s.queue.inSystem.Load() - s.queue.running.Load()
			if d < 0 {
				d = 0
			}
			return float64(d)
		})
	obs.RegisterGauge("camouflage_server_jobs_running",
		"Jobs holding an execution slot.", func() float64 {
			return float64(s.queue.running.Load())
		})
	obs.RegisterGauge("camouflage_server_leases_active",
		"Machine leases currently checked out.", func() float64 {
			return float64(s.leases.stats().Active)
		})
	obs.RegisterGauge("camouflage_snapshot_pool_idle",
		"Idle machines parked in the warm pool.", func() float64 {
			return float64(s.cfg.Pool.Stats().Idle)
		})
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting work, waits for in-flight jobs (bounded by
// ctx), hands every active lease back to the pool — force-expiring
// leases whose operations outlive the budget, so Drain itself always
// returns within it — and evicts the pool's idle machines. After Drain
// the Server answers reads but rejects all mutating requests with 503.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.leases.releaseAll(ctx)
	s.cfg.Pool.EvictIdle(0)
	if s.cfg.Pool != snapshot.Shared {
		// Experiments and campaigns park machines in the shared pool
		// regardless of the lease pool; drain both.
		snapshot.Shared.EvictIdle(0)
	}
	// Background snapshot persists must land before the process exits,
	// or the next start pays boots the store was meant to absorb.
	s.cfg.Pool.WaitPersist()
	snapshot.Shared.WaitPersist()
	return err
}

// LeaseStats snapshots the lease lifecycle counters (the daemon logs
// them after a drain).
func (s *Server) LeaseStats() client.LeaseStats { return s.leases.stats() }

// beginJob admits one mutating request unless the daemon is draining.
// The matching endJob must run when the work finishes.
func (s *Server) beginJob() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return false
	}
	s.jobs.Add(1)
	return true
}

func (s *Server) endJob() { s.jobs.Done() }

// --- plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// readJSON decodes the request body (an empty body decodes to the zero
// value, for curl convenience). It answers 400 itself on malformed
// JSON and reports whether the handler may proceed.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v)
	if err != nil && !errors.Is(err, io.EOF) {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// withDeadline applies a client-requested deadline to the request
// context.
func withDeadline(r *http.Request, ms int64) (context.Context, context.CancelFunc) {
	if ms <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
}

// errWatchdog is the cancellation cause stamped by the run watchdog.
var errWatchdog = errors.New("server: job exceeded wall budget (watchdog)")

// watchJob layers the watchdog's wall budget onto a job context, with
// errWatchdog as the cause so the error path can tell a watchdog kill
// from a client deadline.
func (s *Server) watchJob(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.JobTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, s.cfg.JobTimeout, errWatchdog)
}

// failRun maps a job error to its HTTP status: an open circuit breaker
// is 503 + Retry-After (the client's retry policy honors it), deadline
// expiry and client cancellation are 504/499-ish (both reported 504 for
// simplicity), everything else 500.
func failRun(w http.ResponseWriter, err error) {
	var be *snapshot.BreakerOpenError
	if errors.As(err, &be) {
		secs := int(be.RetryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeErr(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	writeErr(w, http.StatusInternalServerError, err.Error())
}

// failRunCtx is failRun plus watchdog attribution: a context the
// watchdog cancelled reports the watchdog, not a generic timeout.
func failRunCtx(ctx context.Context, w http.ResponseWriter, err error) {
	if cause := context.Cause(ctx); errors.Is(cause, errWatchdog) {
		obs.Add(obs.CWatchdogCancel, 1)
		writeErr(w, http.StatusGatewayTimeout, errWatchdog.Error())
		return
	}
	failRun(w, err)
}

// admit runs the common admission path: drain check, queue slot with
// deadline, post-admission deadline re-check (a request that spent its
// whole budget waiting must not start). On failure it has already
// answered; the caller proceeds only when done != nil and must defer
// done().
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, key string) (done func()) {
	if !s.beginJob() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return nil
	}
	release, err := s.queue.acquire(ctx, key)
	if err != nil {
		s.endJob()
		if errors.Is(err, errBusy) {
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		} else {
			failRun(w, err)
		}
		return nil
	}
	if err := ctx.Err(); err != nil {
		release()
		s.endJob()
		failRun(w, err)
		return nil
	}
	return func() {
		release()
		s.endJob()
	}
}

// --- experiments ---

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	var out []client.ExperimentInfo
	for _, e := range figures.All() {
		out = append(out, client.ExperimentInfo{
			ID: e.ID, Title: e.Title, PaperRef: e.PaperRef, Levels: e.Levels,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	w, finish, run0 := s.withIdempotency(w, r)
	if !run0 {
		return
	}
	defer finish()
	var req client.ExperimentsRequest
	if !readJSON(w, r, &req) {
		return
	}
	for _, id := range req.IDs {
		if _, ok := figures.Lookup(id); !ok {
			writeErr(w, http.StatusBadRequest, "unknown experiment "+id)
			return
		}
	}
	ctx, cancel := withDeadline(r, req.DeadlineMS)
	defer cancel()
	ctx, cancelWatch := s.watchJob(ctx)
	defer cancelWatch()
	done := s.admit(ctx, w, "experiments")
	if done == nil {
		return
	}
	defer done()
	fault.PanicAt(fault.ServerJob) // chaos probe for the panic barrier

	// Sole-occupancy bracket for the Exact decision below: queue.starts
	// already includes this job's own start, so an unchanged count at
	// the end means no other job began while this one ran.
	startsBefore := s.queue.starts.Load()
	soleAtStart := s.queue.running.Load() == 1

	run := obs.BeginRun("experiments", strings.Join(req.IDs, ","))
	defer run.End()

	var buf strings.Builder
	t0 := time.Now()
	stats, err := figures.RunAllWith(ctx, &buf, figures.RunOptions{
		IDs: req.IDs, Parallel: req.Parallel, CPUs: req.CPUs, Trace: run,
	})
	if err != nil {
		failRunCtx(ctx, w, err)
		return
	}
	// Cycle/instruction attribution in RunStats comes from process-wide
	// counters, so any overlapping job (another experiments run, a
	// campaign, a lease step) pollutes the deltas. A run that provably
	// ran alone — sole slot holder at start, no new starts since —
	// keeps the exactness figures computed; anything else is stamped
	// inexact.
	if !soleAtStart || s.queue.starts.Load() != startsBefore {
		for i := range stats {
			stats[i].Exact = false
		}
	}
	writeJSON(w, http.StatusOK, client.ExperimentsResponse{
		Output:      buf.String(),
		Parallel:    req.Parallel,
		TotalWallNs: time.Since(t0).Nanoseconds(),
		// Experiments always run on the shared pool, whatever the lease
		// pool is configured to be.
		Pool:        snapshot.Shared.Stats(),
		Experiments: stats,
		RunID:       run.ID(),
	})
}

// --- campaigns ---

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	w, finish, run0 := s.withIdempotency(w, r)
	if !run0 {
		return
	}
	defer finish()
	var req client.CampaignRequest
	if !readJSON(w, r, &req) {
		return
	}
	// Validate the level filter up front: a typo is the client's
	// mistake (400), not a server failure.
	known := map[string]bool{}
	for _, lv := range attack.Levels() {
		known[lv.Name] = true
	}
	for _, name := range req.Levels {
		if !known[name] {
			writeErr(w, http.StatusBadRequest, "unknown level "+name)
			return
		}
	}
	ctx, cancel := withDeadline(r, req.DeadlineMS)
	defer cancel()
	ctx, cancelWatch := s.watchJob(ctx)
	defer cancelWatch()
	done := s.admit(ctx, w, "campaign")
	if done == nil {
		return
	}
	defer done()
	fault.PanicAt(fault.ServerJob)

	run := obs.BeginRun("campaign", strings.Join(req.Levels, ","))
	defer run.End()

	t0 := time.Now()
	rep, err := attack.RunCampaignContext(ctx, attack.CampaignOptions{
		Mutations: req.Mutations,
		Seed:      req.Seed,
		Parallel:  req.Parallel,
		Levels:    req.Levels,
		CPUs:      req.CPUs,
	})
	if err != nil {
		failRunCtx(ctx, w, err)
		return
	}
	run.Phase("campaign", time.Since(t0))
	var buf strings.Builder
	rep.Render(&buf)
	writeJSON(w, http.StatusOK, client.CampaignResponse{
		Report:      rep,
		Output:      buf.String(),
		TotalWallNs: time.Since(t0).Nanoseconds(),
		RunID:       run.ID(),
	})
}

// --- machine leases ---

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req client.MachineRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Level == "" {
		req.Level = "full"
	}
	level, err := core.LevelByName(req.Level)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	kopts := core.KernelOptionsFor(level, core.Options{
		Seed:             req.Seed,
		FailureThreshold: req.FailureThreshold,
		Compat:           req.Compat,
		CPUs:             req.CPUs,
	})
	key := snapshot.KeyFor(kopts)

	ctx, cancel := withDeadline(r, 0)
	defer cancel()
	done := s.admit(ctx, w, key.Norm())
	if done == nil {
		return
	}
	defer done()

	s.leases.reap()
	m, err := s.cfg.Pool.Acquire(key, snapshot.BootOptions(kopts))
	if err != nil {
		failRun(w, err)
		return
	}
	// Runtime-only execution mode: set unconditionally so a pooled
	// machine never inherits the previous lease's choice.
	m.K.Parallel = req.ParallelSMP
	l, err := s.leases.add(m)
	if err != nil {
		m.Release()
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, client.MachineResponse{
		ID:         l.id,
		Key:        key.Norm(),
		BootCycles: l.m.Snap.BootCycles(),
	})
}

// withLease looks up a lease and runs f while holding the lease's
// operation lock (machines are single-core; operations serialize). The
// released flag is re-checked under the lock: a release or reap racing
// with the lookup must not let f step a machine already handed back to
// the pool — and possibly re-issued to another client.
func (s *Server) withLease(w http.ResponseWriter, r *http.Request, f func(l *lease)) {
	l, ok := s.leases.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such machine lease")
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.released {
		writeErr(w, http.StatusNotFound, "no such machine lease")
		return
	}
	l.touch()
	// Publish the operation start for the run watchdog; if the watchdog
	// force-expired the lease while f ran, the machine is abandoned (a
	// machine mid-run never parks — and the lease is already gone from
	// the table, so nothing else will release it).
	l.opStart.Store(time.Now().UnixNano())
	f(l)
	l.opStart.Store(0)
	if l.watchdogged.Load() {
		l.released = true
	}
	l.touch()
}

// maxRunBudget caps one /run step so a single request cannot wedge a
// queue slot arbitrarily long; longer runs loop on the client side.
const maxRunBudget = 500_000_000

func (s *Server) handleMachineRun(w http.ResponseWriter, r *http.Request) {
	var req client.MachineRunRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.MaxInstrs == 0 {
		req.MaxInstrs = 1_000_000
	}
	if req.MaxInstrs > maxRunBudget {
		req.MaxInstrs = maxRunBudget
	}
	// Lease runs are simulation work like any other: they go through the
	// queue under the machine's pool key, so N clients stepping leases
	// cannot oversubscribe the daemon past its configured concurrency.
	l, ok := s.leases.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such machine lease")
		return
	}
	done := s.admit(r.Context(), w, l.m.Key().Norm())
	if done == nil {
		return
	}
	defer done()
	s.withLease(w, r, func(l *lease) {
		run := obs.BeginRun("machine-run", l.id)
		defer run.End()
		k := l.m.K
		t0 := time.Now()
		stop := k.Run(req.MaxInstrs)
		run.Phase("run", time.Since(t0))
		resp := client.MachineRunResponse{
			Stop:        stopName(stop.Kind),
			StopCode:    stop.Code,
			PC:          k.CPU.PC,
			Cycles:      k.CPU.Cycles,
			Instrs:      k.CPU.Retired,
			Halted:      k.Halted,
			PACFailures: k.PACFailures,
			RunID:       run.ID(),
		}
		if stop.Err != nil {
			// The machine survives; the error is part of the result.
			resp.Error = stop.Err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func (s *Server) handleMachineState(w http.ResponseWriter, r *http.Request) {
	s.withLease(w, r, func(l *lease) {
		k := l.m.K
		st := client.MachineState{
			ID:          l.id,
			Key:         l.m.Key().Norm(),
			PC:          k.CPU.PC,
			SP:          [2]uint64{k.CPU.SP(0), k.CPU.SP(1)},
			EL:          k.CPU.EL,
			X:           append([]uint64(nil), k.CPU.X[:]...),
			Cycles:      k.CPU.Cycles,
			Instrs:      k.CPU.Retired,
			Halted:      k.Halted,
			PACFailures: k.PACFailures,
			UART:        k.UART.Output(),
		}
		for _, o := range k.Oops {
			st.Oops = append(st.Oops, client.OopsRecord{
				ESR: o.ESR, FAR: o.FAR, ELR: o.ELR,
				Kernel: o.Kernel, PACFailure: o.PACFailure,
			})
		}
		writeJSON(w, http.StatusOK, st)
	})
}

func (s *Server) handleMachineReset(w http.ResponseWriter, r *http.Request) {
	l, ok := s.leases.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such machine lease")
		return
	}
	done := s.admit(r.Context(), w, l.m.Key().Norm())
	if done == nil {
		return
	}
	defer done()
	s.withLease(w, r, func(l *lease) {
		if err := l.m.Snap.Reset(l.m.K); err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "reset"})
	})
}

func (s *Server) handleMachineRelease(w http.ResponseWriter, r *http.Request) {
	// Release works even while draining: clients handing machines back
	// is exactly what drain wants.
	l, ok := s.leases.take(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such machine lease")
		return
	}
	l.mu.Lock()
	l.m.Release()
	l.released = true
	l.mu.Unlock()
	s.leases.released.Add(1)
	obs.Add(obs.CLeaseReleased, 1)
	writeJSON(w, http.StatusOK, map[string]string{"status": "released"})
}

// --- health surface ---

// handleHealthz is liveness: the process is up and serving HTTP. It
// never degrades — a draining or saturated daemon is still alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.start).Nanoseconds(),
	})
}

// readyCheck is one /readyz probe result.
type readyCheck struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// handleReadyz is readiness: should a load balancer send this daemon
// work right now? Degraded (503) while draining, while the admission
// queue is saturated, when the snapshot store directory is unreachable,
// or when every key with boot failures has an open circuit breaker (the
// daemon cannot arm anything it knows about).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	checks := map[string]readyCheck{}

	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	checks["draining"] = readyCheck{OK: !draining, Detail: map[bool]string{true: "draining", false: ""}[draining]}

	qs := s.queue.stats()
	saturated := qs.Depth >= qs.MaxQueue
	checks["queue"] = readyCheck{OK: !saturated,
		Detail: fmt.Sprintf("%d/%d waiting, %d/%d running", qs.Depth, qs.MaxQueue, qs.Running, qs.Capacity)}

	storeCheck := readyCheck{OK: true, Detail: "no store configured"}
	if s.cfg.Store != nil {
		if _, err := os.Stat(s.cfg.Store.Dir()); err != nil {
			storeCheck = readyCheck{OK: false, Detail: err.Error()}
		} else {
			storeCheck = readyCheck{OK: true, Detail: s.cfg.Store.Dir()}
		}
	}
	checks["store"] = storeCheck

	breakers := s.cfg.Pool.Breakers()
	if s.cfg.Pool != snapshot.Shared {
		breakers = append(breakers, snapshot.Shared.Breakers()...)
	}
	open := 0
	for _, b := range breakers {
		if b.Open {
			open++
		}
	}
	allOpen := len(breakers) > 0 && open == len(breakers)
	checks["breakers"] = readyCheck{OK: !allOpen,
		Detail: fmt.Sprintf("%d open of %d degraded keys", open, len(breakers))}

	ready := true
	for _, c := range checks {
		ready = ready && c.OK
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"ready": ready, "checks": checks})
}

// --- stats ---

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.leases.reap()
	s.drainMu.Lock()
	draining := s.draining
	s.drainMu.Unlock()
	writeJSON(w, http.StatusOK, client.StatsResponse{
		Pool:     s.cfg.Pool.Stats(),
		Queue:    s.queue.stats(),
		Leases:   s.leases.stats(),
		Draining: draining,
		UptimeNs: time.Since(s.start).Nanoseconds(),
		Metrics:  obs.TakeSnapshot(),
	})
}

// --- observability ---

// handleMetrics serves the whole registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w)
}

// handleRunTrace serves the structured trace of a recent run (IDs come
// back in the run_id field of experiment, campaign and machine-run
// responses; the store keeps the most recent 256).
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok := obs.RunTraceByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such run")
		return
	}
	writeJSON(w, http.StatusOK, tr)
}
