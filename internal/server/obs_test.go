package server

// Tests of the observability surface: the /metrics exposition, the
// /v1/stats registry embedding, run traces, and the sole-occupancy
// exactness rule for served experiment stats.

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"camouflage/client"
	"camouflage/internal/obs"
)

// requiredFamilies is the coverage floor the metrics-smoke CI job also
// asserts: at least one family per instrumented subsystem.
var requiredFamilies = []string{
	"camouflage_cpu_instructions_retired_total",
	"camouflage_cpu_trace_enters_total",
	"camouflage_mmu_stage2_walks_total",
	"camouflage_mem_cow_materializations_total",
	"camouflage_pac_auths_total",
	"camouflage_snapshot_pool_boots_total",
	"camouflage_snapshot_boot_seconds",
	"camouflage_server_queue_wait_seconds",
	"camouflage_server_requests_total",
	"camouflage_server_queue_depth",
}

// TestMetricsEndpoint runs an experiment, scrapes /metrics twice and
// checks exposition shape, family coverage and monotonicity.
func TestMetricsEndpoint(t *testing.T) {
	_, hs, c := newTestServer(t, Config{})

	if _, err := c.RunExperiments(context.Background(), client.ExperimentsRequest{
		IDs: []string{"keys"},
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	first, err := client.ParseMetrics(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	byKey := func(samples []client.MetricSample) map[string]float64 {
		m := make(map[string]float64, len(samples))
		for _, s := range samples {
			m[s.Key()] = s.Value
		}
		return m
	}
	fm := byKey(first)
	for _, fam := range requiredFamilies {
		found := false
		for k := range fm {
			if k == fam || strings.HasPrefix(k, fam+"{") || strings.HasPrefix(k, fam+"_bucket") ||
				strings.HasPrefix(k, fam+"_sum") || strings.HasPrefix(k, fam+"_count") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("family %s missing from exposition", fam)
		}
	}
	if fm["camouflage_cpu_instructions_retired_total"] == 0 {
		t.Error("no instructions retired after an experiment run")
	}

	// Second scrape: counters must be monotonic.
	second, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sm := byKey(second)
	for k, v1 := range fm {
		if strings.Contains(k, "_gauge") || strings.Contains(k, "_depth") ||
			strings.Contains(k, "_running") || strings.Contains(k, "_active") ||
			strings.Contains(k, "_idle") {
			continue // gauges may move either way
		}
		if v2, ok := sm[k]; ok && v2 < v1 {
			t.Errorf("%s went backwards: %v -> %v", k, v1, v2)
		}
	}
}

// TestStatsEmbedsMetrics pins the /v1/stats registry embedding.
func TestStatsEmbedsMetrics(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	if _, err := c.RunExperiments(context.Background(), client.ExperimentsRequest{
		IDs: []string{"table1"},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Metrics.Counters) < int(obs.NumCounters) {
		t.Fatalf("stats metrics carry %d counters, want >= %d", len(st.Metrics.Counters), obs.NumCounters)
	}
	if _, ok := st.Metrics.Histograms["camouflage_server_queue_wait_seconds"]; !ok {
		t.Error("queue wait histogram missing from stats embedding")
	}
	if _, ok := st.Metrics.Gauges["camouflage_server_queue_depth"]; !ok {
		t.Error("queue depth gauge missing from stats embedding")
	}
}

// TestRunTraceEndpoint pins the run-trace lifecycle over the wire: an
// experiments run reports a run_id whose trace carries per-experiment
// phases; unknown IDs 404.
func TestRunTraceEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	resp, err := c.RunExperiments(context.Background(), client.ExperimentsRequest{
		IDs: []string{"table1", "keys"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RunID == "" {
		t.Fatal("experiments response carries no run_id")
	}
	tr, err := c.RunTrace(context.Background(), resp.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Kind != "experiments" {
		t.Fatalf("trace header: %+v", tr)
	}
	names := map[string]bool{}
	for _, e := range tr.Events {
		names[e.Name] = true
	}
	if !names["exp:table1"] || !names["exp:keys"] {
		t.Fatalf("trace events %v missing per-experiment phases", names)
	}

	if _, err := c.RunTrace(context.Background(), "run-999999"); err == nil {
		t.Fatal("unknown run id did not 404")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown run id error: %v", err)
	}

	// Machine runs report traces too.
	m, err := c.Lease(context.Background(), client.MachineRequest{Level: "none"})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Release(context.Background())
	rr, err := m.Run(context.Background(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rr.RunID == "" {
		t.Fatal("machine run carries no run_id")
	}
	if tr, err := c.RunTrace(context.Background(), rr.RunID); err != nil || tr.Kind != "machine-run" {
		t.Fatalf("machine run trace: %+v, %v", tr, err)
	}
}

// TestServedExactWhenAlone pins the RunStats.Exact fix: a sequential
// experiments request served with no overlapping jobs keeps exact
// attribution; a parallel one stays inexact.
func TestServedExactWhenAlone(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	resp, err := c.RunExperiments(context.Background(), client.ExperimentsRequest{
		IDs: []string{"keys"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range resp.Experiments {
		if !s.Exact {
			t.Errorf("%s: sequential sole-occupancy run served Exact=false", s.ID)
		}
		if s.Instrs == 0 {
			t.Errorf("%s: exact stats carry no instructions", s.ID)
		}
	}
	par, err := c.RunExperiments(context.Background(), client.ExperimentsRequest{
		IDs: []string{"keys"}, Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range par.Experiments {
		if s.Exact {
			t.Errorf("%s: parallel run wrongly served Exact=true", s.ID)
		}
	}
}
