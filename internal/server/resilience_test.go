package server

// Robustness surface of the daemon: the per-job panic barrier, the
// /healthz + /readyz probes, idempotent experiment replay, breaker
// errors mapped to 503 + Retry-After, and the run watchdog — both the
// job-context cancellation path and the lease force-expiry sweep.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"camouflage/client"
	"camouflage/internal/fault"
	"camouflage/internal/snapshot"
)

func withServerFaults(t *testing.T, spec string) *fault.Registry {
	t.Helper()
	r, err := fault.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(r)
	t.Cleanup(func() { fault.Install(prev) })
	return r
}

func postJSON(t *testing.T, url, body string, hdr map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestPanicBarrier: an injected in-job panic answers 500 and the daemon
// keeps serving — the next identical request succeeds. The recovered
// panic must not leak admission state (the queue slot frees during the
// unwind), which the follow-up request proves by being admitted.
func TestPanicBarrier(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Pool: snapshot.NewPool()})
	withServerFaults(t, "server.job=1")

	resp, body := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "panic") {
		t.Fatalf("500 body does not mention the recovered panic: %s", body)
	}

	resp, body = postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic = %d, want 200 (body %s)", resp.StatusCode, body)
	}
}

// TestHealthzAlwaysOK: liveness never degrades, even mid-drain.
func TestHealthzAlwaysOK(t *testing.T) {
	s, hs, _ := newTestServer(t, Config{Pool: snapshot.NewPool()})
	for _, phase := range []string{"fresh", "draining"} {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz (%s) = %d, want 200", phase, resp.StatusCode)
		}
		if phase == "fresh" {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			_ = s.Drain(ctx)
			cancel()
		}
	}
}

// TestReadyzDegradesOnDrain: a fresh daemon is ready; a draining one
// answers 503 with the draining check flagged.
func TestReadyzDegradesOnDrain(t *testing.T) {
	s, hs, _ := newTestServer(t, Config{Pool: snapshot.NewPool()})

	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh readyz = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	_ = s.Drain(ctx)
	cancel()

	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Ready  bool                  `json:"ready"`
		Checks map[string]readyCheck `json:"checks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || out.Ready {
		t.Fatalf("draining readyz = %d ready=%v, want 503 not-ready", resp.StatusCode, out.Ready)
	}
	if out.Checks["draining"].OK {
		t.Fatalf("draining check passed while draining: %+v", out.Checks)
	}
	if !out.Checks["queue"].OK {
		t.Fatalf("queue check failed on an idle daemon: %+v", out.Checks)
	}
}

// TestIdempotentReplay: a repeated POST with the same Idempotency-Key
// answers from the stored response — byte-identical body, replay
// header set, and the job itself runs exactly once.
func TestIdempotentReplay(t *testing.T) {
	s, hs, _ := newTestServer(t, Config{Pool: snapshot.NewPool()})
	hdr := map[string]string{"Idempotency-Key": "idem-test-1"}

	resp1, body1 := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`, hdr)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d (body %s)", resp1.StatusCode, body1)
	}
	startsAfterFirst := s.queue.starts.Load()

	resp2, body2 := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`, hdr)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed request = %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Idempotency-Replay") != "true" {
		t.Fatal("replay did not set Idempotency-Replay: true")
	}
	if body2 != body1 {
		t.Fatalf("replayed body differs:\n--- first ---\n%s\n--- replay ---\n%s", body1, body2)
	}
	if got := s.queue.starts.Load(); got != startsAfterFirst {
		t.Fatalf("replay re-ran the job: %d starts, want %d", got, startsAfterFirst)
	}

	// A different key runs fresh.
	resp3, _ := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`,
		map[string]string{"Idempotency-Key": "idem-test-2"})
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("Idempotency-Replay") == "true" {
		t.Fatalf("fresh key was replayed (status %d)", resp3.StatusCode)
	}
	if got := s.queue.starts.Load(); got != startsAfterFirst+1 {
		t.Fatalf("fresh key did not run: %d starts, want %d", got, startsAfterFirst+1)
	}
}

// TestIdempotentFailureNotCached: a failed run (here: an injected in-job
// panic answered 500) must not be replayed — the retry with the same
// key actually re-runs, and succeeds once the fault is exhausted.
func TestIdempotentFailureNotCached(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{Pool: snapshot.NewPool()})
	withServerFaults(t, "server.job=1")
	hdr := map[string]string{"Idempotency-Key": "idem-fail-1"}

	resp, _ := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`, hdr)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request = %d, want 500", resp.StatusCode)
	}
	resp, body := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after cached failure = %d (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Idempotency-Replay") == "true" {
		t.Fatal("failure was replayed instead of re-run")
	}
}

// TestBreakerAnswers503RetryAfter: once a key's circuit breaker opens,
// lease requests for it fast-fail with 503 and a Retry-After hint.
func TestBreakerAnswers503RetryAfter(t *testing.T) {
	pool := snapshot.NewPool()
	pool.BootAttempts = 1
	pool.BreakerThreshold = 1
	pool.BreakerReset = time.Minute
	_, hs, _ := newTestServer(t, Config{Pool: pool})
	withServerFaults(t, "pool.boot=all")

	resp, _ := postJSON(t, hs.URL+"/v1/machines", `{"level":"backward-edge","seed":91}`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first faulted lease = %d, want 500", resp.StatusCode)
	}
	resp, body := postJSON(t, hs.URL+"/v1/machines", `{"level":"backward-edge","seed":91}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker lease = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 breaker response missing Retry-After")
	}
	if !strings.Contains(body, "breaker open") {
		t.Fatalf("breaker 503 body: %s", body)
	}
}

// TestWatchdogCancelsOverBudgetJob: a job running past JobTimeout is
// cancelled with the watchdog as the cause (504 naming it), not a
// generic deadline error.
func TestWatchdogCancelsOverBudgetJob(t *testing.T) {
	// Sequential runs check the context between experiments, so put the
	// long one (fig4, tens of ms — far past the 5ms budget) first: the
	// check before "keys" always sees the watchdog's cancellation.
	_, hs, _ := newTestServer(t, Config{Pool: snapshot.NewPool(), JobTimeout: 5 * time.Millisecond})

	resp, body := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["fig4","keys"]}`, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("over-budget job = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "watchdog") {
		t.Fatalf("504 body does not attribute the watchdog: %s", body)
	}
}

// TestWatchdogForceExpiresWedgedLease: a lease whose operation runs
// past the budget is swept from the table (its id answers 404 while
// still wedged) and its machine abandoned when the operation finally
// returns — never parked back into the pool.
func TestWatchdogForceExpiresWedgedLease(t *testing.T) {
	pool := snapshot.NewPool()
	s, _, c := newTestServer(t, Config{Pool: pool, JobTimeout: 40 * time.Millisecond})
	ctx := context.Background()

	m, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge", Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	l, ok := s.leases.get(m.ID)
	if !ok {
		t.Fatal("lease not found")
	}

	// Simulate a wedged operation: mark it started, hold the op lock.
	l.mu.Lock()
	l.opStart.Store(time.Now().Add(-time.Second).UnixNano())

	s.leases.reap() // the watchdog rides the reap path
	if _, ok := s.leases.get(m.ID); ok {
		t.Fatal("watchdog left the wedged lease in the table")
	}
	if st := s.leases.stats(); st.ForceExpired != 1 {
		t.Fatalf("force-expired = %d, want 1", st.ForceExpired)
	}
	if !l.watchdogged.Load() {
		t.Fatal("lease not marked watchdogged")
	}

	// The operation finishes: withLease's epilogue abandons the machine.
	l.opStart.Store(0)
	if l.watchdogged.Load() {
		l.released = true
	}
	l.mu.Unlock()

	idleBefore := pool.Stats().Idle
	if _, err := m.State(ctx); err == nil {
		t.Fatal("watchdogged lease still answers state reads")
	}
	if idle := pool.Stats().Idle; idle != idleBefore {
		t.Fatalf("abandoned machine was parked (%d -> %d idle)", idleBefore, idle)
	}
}

// TestIdemTableUnit drives the table directly: FIFO eviction skips
// in-flight entries, and a status-0 finish (handler died before
// writing) leaves the key retryable.
func TestIdemTableUnit(t *testing.T) {
	tbl := newIdemTable(2)

	e1, owner := tbl.begin("a")
	if !owner {
		t.Fatal("first begin not owner")
	}
	tbl.finish("a", e1, http.StatusOK, []byte("ok-a"))
	if e, owner := tbl.begin("a"); owner || string(e.body) != "ok-a" {
		t.Fatalf("stored 2xx not replayed (owner=%v body=%q)", owner, e.body)
	}

	// Handler died before writing: status 0 drops the entry.
	e2, _ := tbl.begin("b")
	tbl.finish("b", e2, 0, nil)
	if _, owner := tbl.begin("b"); !owner {
		t.Fatal("status-0 entry was cached; key not retryable")
	}

	// Cap is 2: key "a" (finished) is evicted FIFO, in-flight "b" stays.
	e3, _ := tbl.begin("c")
	tbl.finish("c", e3, http.StatusOK, []byte("ok-c"))
	if _, owner := tbl.begin("a"); !owner {
		t.Fatal("evicted key still replayed")
	}
}
