package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/client"
	"camouflage/internal/cpu"
	"camouflage/internal/obs"
	"camouflage/internal/snapshot"
)

// errLeaseLimit rejects new leases when the table is full (503).
var errLeaseLimit = errors.New("server: lease limit reached")

// lease is one checked-out warm machine. All guest-touching operations
// (run, reset, state readback, release) serialize on mu — a machine is
// single-core; concurrent steps would interleave nonsensically.
// released is written under mu when the machine goes back to the pool;
// every operation that looked the lease up before that must re-check it
// after locking, or it would step a machine another client may already
// hold.
type lease struct {
	id string
	m  *snapshot.Machine

	mu       sync.Mutex
	released bool
	lastUsed atomic.Int64 // unix nanos, for the idle reaper

	// opStart is non-zero while an operation holds mu (unix nanos); the
	// run watchdog force-expires leases whose operation outlives the
	// budget. watchdogged tells the operation, when it finally finishes,
	// to abandon the machine instead of keeping the lease live — the
	// lease is already gone from the table.
	opStart     atomic.Int64
	watchdogged atomic.Bool
}

func (l *lease) touch() { l.lastUsed.Store(time.Now().UnixNano()) }

// leaseTable tracks active leases and reclaims abandoned ones: a lease
// idle past maxIdle is released back to the warm pool (its state is
// discarded — leases are a loan, not storage). Reaping piggybacks on
// lease operations and /v1/stats reads; there is no background
// goroutine to leak.
type leaseTable struct {
	mu     sync.Mutex
	leases map[string]*lease
	next   uint64

	maxLeases int
	maxIdle   time.Duration
	// runBudget is the watchdog's per-operation wall budget (0 disables):
	// a lease whose single operation runs past it is force-expired.
	runBudget time.Duration

	issued   atomic.Uint64
	released atomic.Uint64
	expired  atomic.Uint64
	// forceExpired counts leases the drain path gave up waiting for: a
	// lease whose in-flight run outlived the drain budget is removed
	// from the table and its machine abandoned (never parked mid-run).
	forceExpired atomic.Uint64
}

func newLeaseTable(maxLeases int, maxIdle, runBudget time.Duration) *leaseTable {
	return &leaseTable{
		leases:    make(map[string]*lease),
		maxLeases: maxLeases,
		maxIdle:   maxIdle,
		runBudget: runBudget,
	}
}

// add registers a freshly acquired machine and returns its lease.
func (t *leaseTable) add(m *snapshot.Machine) (*lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.leases) >= t.maxLeases {
		return nil, errLeaseLimit
	}
	t.next++
	l := &lease{id: fmt.Sprintf("m-%d", t.next), m: m}
	l.touch()
	t.leases[l.id] = l
	t.issued.Add(1)
	obs.Add(obs.CLeaseIssued, 1)
	return l, nil
}

// get looks a lease up without removing it.
func (t *leaseTable) get(id string) (*lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[id]
	return l, ok
}

// take removes a lease from the table (the release path); a second
// release of the same id misses and maps to 404.
func (t *leaseTable) take(id string) (*lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.leases[id]
	if ok {
		delete(t.leases, id)
	}
	return l, ok
}

// reap releases leases idle past maxIdle back to the pool, after the
// watchdog sweep has cleared any over-budget operations (a wedged op
// holds its lease's mu; the idle reaper must not block behind it).
func (t *leaseTable) reap() {
	t.watchdog()
	if t.maxIdle <= 0 {
		return
	}
	cutoff := time.Now().Add(-t.maxIdle).UnixNano()
	t.mu.Lock()
	var stale []*lease
	for id, l := range t.leases {
		if l.lastUsed.Load() < cutoff && l.opStart.Load() == 0 {
			delete(t.leases, id)
			stale = append(stale, l)
		}
	}
	t.mu.Unlock()
	for _, l := range stale {
		l.mu.Lock() // wait out any in-flight operation
		l.m.Release()
		l.released = true
		l.mu.Unlock()
		t.expired.Add(1)
		obs.Add(obs.CLeaseExpired, 1)
	}
}

// watchdog force-expires leases whose in-flight operation has run past
// the budget: the lease leaves the table immediately (the id answers
// 404 from here on) and the operation, when it eventually returns,
// abandons its machine rather than keeping the lease. It never takes a
// lease's mu — the whole point is that the operation holding it is
// wedged.
func (t *leaseTable) watchdog() {
	if t.runBudget <= 0 {
		return
	}
	cutoff := time.Now().Add(-t.runBudget).UnixNano()
	t.mu.Lock()
	for id, l := range t.leases {
		if start := l.opStart.Load(); start != 0 && start < cutoff {
			delete(t.leases, id)
			l.watchdogged.Store(true)
			t.forceExpired.Add(1)
			obs.Add(obs.CWatchdogCancel, 1)
			obs.Add(obs.CLeaseForceExpired, 1)
		}
	}
	t.mu.Unlock()
}

// releaseAll hands every active lease back (graceful drain), bounded
// by ctx. The pre-fix behaviour blocked unconditionally on each lease's
// operation lock: one wedged /run step (up to 500M instructions) made
// SIGTERM hang past its drain budget, so leases held at shutdown were
// effectively never released and the pool's idle/evicted accounting
// never saw their machines. Now a lease whose in-flight operation
// outlives ctx is *force-expired*: removed from the table immediately
// and counted in ForceExpired; when its operation eventually finishes,
// the machine is abandoned rather than parked (a machine must never
// join the warm pool mid-run — and the pool has already been evicted by
// then). Pinned by TestDrainForceExpiresWedgedLease.
func (t *leaseTable) releaseAll(ctx context.Context) {
	t.mu.Lock()
	all := make([]*lease, 0, len(t.leases))
	for id, l := range t.leases {
		delete(t.leases, id)
		all = append(all, l)
	}
	t.mu.Unlock()
	for _, l := range all {
		// Fast path: an idle lease (no operation in flight) releases
		// synchronously even when ctx has already expired — only leases
		// whose operation lock is actually held get the bounded wait, so
		// a drain whose budget was eaten by the in-flight-job phase does
		// not mislabel healthy leases as wedged.
		if l.mu.TryLock() {
			l.m.Release()
			l.released = true
			l.mu.Unlock()
			t.released.Add(1)
			obs.Add(obs.CLeaseReleased, 1)
			continue
		}
		abandon := new(atomic.Bool)
		done := make(chan struct{})
		go func(l *lease) {
			l.mu.Lock()
			defer l.mu.Unlock()
			l.released = true
			if !abandon.Load() {
				l.m.Release()
			}
			close(done)
		}(l)
		select {
		case <-done:
			t.released.Add(1)
			obs.Add(obs.CLeaseReleased, 1)
		case <-ctx.Done():
			abandon.Store(true)
			t.forceExpired.Add(1)
			obs.Add(obs.CLeaseForceExpired, 1)
		}
	}
}

// keyDigestInUse reports whether any active lease's machine descends
// from the configuration with the given key digest (the DELETE
// /v1/snapshots guard: a snapshot backing a checked-out machine must
// not be evicted from under its client).
func (t *leaseTable) keyDigestInUse(keyDigest string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, l := range t.leases {
		if l.m.Key().Digest == keyDigest {
			return true
		}
	}
	return false
}

// stats snapshots lease lifecycle counters for /v1/stats.
func (t *leaseTable) stats() client.LeaseStats {
	t.mu.Lock()
	active := len(t.leases)
	t.mu.Unlock()
	return client.LeaseStats{
		Active:       active,
		Issued:       t.issued.Load(),
		Released:     t.released.Load(),
		Expired:      t.expired.Load(),
		ForceExpired: t.forceExpired.Load(),
	}
}

// stopName maps a cpu stop to the wire string.
func stopName(k cpu.StopKind) string {
	switch k {
	case cpu.StopHLT:
		return "hlt"
	case cpu.StopError:
		return "error"
	}
	return "limit"
}
