package server

// Snapshot-store resource routes (DESIGN.md §12): list persisted
// snapshots, inspect a manifest, pin/unpin, evict, and group by image.
// They are read/administer surfaces over the daemon's -store-dir; when
// the daemon runs without a store they answer 503 so clients can tell
// "no store" from "empty store".

import (
	"errors"
	"net/http"

	"camouflage/client"
	"camouflage/internal/snapshot"
	"camouflage/internal/store"
)

func (s *Server) storeOr503(w http.ResponseWriter) *store.Store {
	if s.cfg.Store == nil {
		writeErr(w, http.StatusServiceUnavailable, "no snapshot store configured (start the daemon with -store-dir)")
		return nil
	}
	return s.cfg.Store
}

// resident maps key digests to their in-memory pool entries, so
// listings can show which persisted snapshots are currently armed.
func (s *Server) resident() map[string]snapshot.EntryInfo {
	out := make(map[string]snapshot.EntryInfo)
	for _, p := range []*snapshot.Pool{s.cfg.Pool, snapshot.Shared} {
		for _, e := range p.Entries() {
			out[e.Key.Digest] = e
		}
		if s.cfg.Pool == snapshot.Shared {
			break
		}
	}
	return out
}

func (s *Server) handleListSnapshots(w http.ResponseWriter, r *http.Request) {
	st := s.storeOr503(w)
	if st == nil {
		return
	}
	res := s.resident()
	var out []client.SnapshotInfo
	for _, info := range st.List() {
		e, ok := res[info.KeyDigest]
		out = append(out, client.SnapshotInfo{
			Digest:      info.Digest,
			KeyDigest:   info.KeyDigest,
			Key:         info.Key,
			ImageDigest: info.ImageDigest,
			Pages:       info.Pages,
			CPUs:        info.CPUs,
			BootCycles:  info.BootCycles,
			Pinned:      info.Pinned,
			CreatedUnix: info.CreatedUnix,
			Resident:    ok,
			Quarantined: info.Quarantined,
			IdleMachines: func() int {
				if ok {
					return e.Idle
				}
				return 0
			}(),
		})
	}
	writeJSON(w, http.StatusOK, client.SnapshotsResponse{Snapshots: out})
}

func (s *Server) handleSnapshotManifest(w http.ResponseWriter, r *http.Request) {
	st := s.storeOr503(w)
	if st == nil {
		return
	}
	m, err := st.ManifestFor(r.PathValue("digest"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "no such snapshot")
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleSnapshotPin(w http.ResponseWriter, r *http.Request) {
	st := s.storeOr503(w)
	if st == nil {
		return
	}
	var req client.PinRequest
	if !readJSON(w, r, &req) {
		return
	}
	digest := r.PathValue("digest")
	if err := st.Pin(digest, req.Pinned); err != nil {
		if errors.Is(err, snapshot.ErrNotFound) {
			writeErr(w, http.StatusNotFound, "no such snapshot")
		} else {
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	// Mirror the pin onto the resident pool entries so EvictIdle honours
	// it immediately; a snapshot not resident yet simply has no warm
	// machines to protect.
	s.cfg.Pool.Pin(digest, req.Pinned)
	if s.cfg.Pool != snapshot.Shared {
		snapshot.Shared.Pin(digest, req.Pinned)
	}
	writeJSON(w, http.StatusOK, map[string]any{"digest": digest, "pinned": req.Pinned})
}

func (s *Server) handleSnapshotDelete(w http.ResponseWriter, r *http.Request) {
	st := s.storeOr503(w)
	if st == nil {
		return
	}
	digest := r.PathValue("digest")
	m, err := st.ManifestFor(digest)
	if err != nil {
		writeErr(w, http.StatusNotFound, "no such snapshot")
		return
	}
	// A snapshot backing a checked-out machine must not vanish under its
	// lease: the client still holds a fork of exactly this state.
	if s.leases.keyDigestInUse(m.KeyDigest) {
		writeErr(w, http.StatusConflict, "snapshot is backing an active machine lease")
		return
	}
	if err := st.Delete(digest); err != nil {
		switch {
		case errors.Is(err, store.ErrPinned):
			writeErr(w, http.StatusConflict, "snapshot is pinned; unpin before deleting")
		case errors.Is(err, snapshot.ErrNotFound):
			writeErr(w, http.StatusNotFound, "no such snapshot")
		default:
			writeErr(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted", "digest": digest})
}

func (s *Server) handleListImages(w http.ResponseWriter, r *http.Request) {
	st := s.storeOr503(w)
	if st == nil {
		return
	}
	var out []client.ImageInfo
	for _, img := range st.Images() {
		out = append(out, client.ImageInfo{
			ImageDigest:  img.ImageDigest,
			Snapshots:    img.Snapshots,
			TotalPages:   img.TotalPages,
			UniqueChunks: img.UniqueChunks,
		})
	}
	writeJSON(w, http.StatusOK, client.ImagesResponse{Images: out})
}
