package server

// Chaos suite (DESIGN.md §13): end-to-end runs under seeded fault
// injection must be byte-identical to quiet runs — faults may cost
// retries, boots and latency, never bytes — and the daemon must
// survive every injected failure. Also the drain three-way race: an
// in-flight async persist, a wedged lease and Drain running at once
// (exercised under -race in CI).

import (
	"context"
	"net/http"
	"testing"
	"time"

	"camouflage/client"
	"camouflage/internal/fault"
	"camouflage/internal/snapshot"
	"camouflage/internal/store"
)

// chaosCampaign is the request both the quiet and the faulted run
// execute: 2-vCPU machines (the cross-core scenario included), fixed
// seed, sequential for cycle-exactness.
var chaosCampaign = client.CampaignRequest{
	Mutations: 3,
	Seed:      99,
	Levels:    []string{"backward-edge", "full"},
	CPUs:      2,
}

// TestChaosCampaignByteIdentical: a campaign run with store, pool and
// client faults armed — plus an injected in-job panic absorbed before
// it — renders byte-for-byte what the quiet run rendered.
func TestChaosCampaignByteIdentical(t *testing.T) {
	// Quiet baseline through a daemon.
	_, _, c := newTestServer(t, Config{Pool: snapshot.NewPool()})
	ctx := context.Background()
	quiet, err := c.RunCampaign(ctx, chaosCampaign)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: fresh daemon, persistent store behind the shared pool
	// (campaigns always run on snapshot.Shared), faults armed. The
	// spec's counts are chosen so every class fires at most as often as
	// its healing layer absorbs: one boot failure (retried), one store
	// read failure (boot fallback), one reset + one 5xx (client retry,
	// 3 attempts), one stall (latency only), one in-job panic (consumed
	// by the probe request below).
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prevStore := snapshot.Shared.Store
	snapshot.Shared.Store = st
	t.Cleanup(func() {
		snapshot.Shared.WaitPersist()
		snapshot.Shared.Store = prevStore
	})
	r := withServerFaults(t,
		"seed=42,server.job=1,pool.boot=1,store.chunk.read=1,store.persist=1,client.reset=1,client.5xx=1,client.stall=1:10ms")

	pool := snapshot.NewPool()
	pool.BootBackoff = time.Millisecond
	snapshot.Shared.BootBackoff = time.Millisecond
	t.Cleanup(func() { snapshot.Shared.BootBackoff = 0 })
	_, hs, cc := newTestServer(t, Config{Pool: pool, Store: st})
	cc.Retry.BaseDelay = time.Millisecond
	cc.Retry.MaxDelay = 2 * time.Millisecond

	// Probe: consume the armed in-job panic; the daemon answers 500 and
	// stays up.
	resp, _ := postJSON(t, hs.URL+"/v1/experiments", `{"ids":["keys"]}`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic probe = %d, want 500", resp.StatusCode)
	}

	chaos, err := cc.RunCampaign(ctx, chaosCampaign)
	if err != nil {
		t.Fatalf("campaign under chaos: %v", err)
	}
	if chaos.Output != quiet.Output {
		t.Fatalf("chaos output differs from quiet run:\n--- quiet ---\n%s\n--- chaos ---\n%s",
			quiet.Output, chaos.Output)
	}

	// The client-transport faults fire deterministically (every request
	// goes through the injection points); one reset and one 5xx were
	// absorbed by retries, the panic by the barrier.
	for _, p := range []fault.Point{fault.ClientReset, fault.Client5xx, fault.ServerJob} {
		if r.Fired(p) != 1 {
			t.Fatalf("fault %s fired %d times, want 1 (counts: %v)", p, r.Fired(p), r.Counts())
		}
	}

	// And the daemon is still healthy.
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos = %d", hresp.StatusCode)
	}
}

// TestDrainRacesPersistAndWedgedLease: Drain while (a) the boot's
// async store persist is still in flight — slowed by injection — and
// (b) a lease operation is wedged past the budget. Drain must finish
// within its budget anyway: the wedged lease force-expires, the
// persist is waited out, and the abandoned machine never re-enters the
// pool. Run under -race in CI, this is the three-way interleaving pin.
func TestDrainRacesPersistAndWedgedLease(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := snapshot.NewPool()
	pool.Store = st
	s, _, c := newTestServer(t, Config{Pool: pool, Store: st})
	ctx := context.Background()

	// The persist sleeps 80ms then fails — still in flight when Drain
	// starts, and a persist *failure* racing drain is the nastier case.
	withServerFaults(t, "store.persist=1:80ms")

	m, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge", Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	l, ok := s.leases.get(m.ID)
	if !ok {
		t.Fatal("lease not found")
	}
	l.mu.Lock() // wedge: hold the op lock like a long /run would
	unwedged := make(chan struct{})
	go func() {
		<-unwedged
		l.mu.Unlock()
	}()

	dctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_ = s.Drain(dctx)
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("Drain took %v with a wedged lease and in-flight persist", took)
	}

	lst := s.leases.stats()
	if lst.Active != 0 || lst.ForceExpired != 1 {
		t.Fatalf("lease stats after drain = %+v, want 0 active / 1 force-expired", lst)
	}

	close(unwedged)
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		released := l.released
		l.mu.Unlock()
		if released {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged lease never marked released")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if idle := pool.Stats().Idle; idle != 0 {
		t.Fatalf("abandoned machine was parked: %d idle after drain", idle)
	}
}
