package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/client"
	"camouflage/internal/obs"
)

// queueWaitHist observes how long admitted jobs spent waiting for a
// slot (rejected and cancelled requests are not observed — they never
// ran).
var queueWaitHist = obs.NewHistogram("camouflage_server_queue_wait_seconds",
	"Time admitted jobs spent waiting for an execution slot.", obs.DefaultLatencyBuckets)

// errBusy rejects work when the wait line is full — the daemon sheds
// load instead of queueing unboundedly (503 on the wire).
var errBusy = errors.New("server: work queue full")

// queue is the daemon's bounded admission layer: Capacity jobs run
// concurrently, at most MaxQueue more wait for a slot, anything beyond
// that is rejected immediately. Every admitted job is tagged with an
// admission key — machine leases use their snapshot.KeyForOptions pool
// key, experiments and campaigns synthetic ones — so /v1/stats can show
// which configurations the daemon is serving. Boot dedup itself lives
// in the pool: concurrent jobs admitted under one cold key block on the
// pool's once-per-key boot and then fan out as copy-on-write forks.
type queue struct {
	slots    chan struct{}
	maxQueue int
	// inSystem counts admitted jobs (waiting + running); running counts
	// slot holders. Waiting depth is the difference.
	inSystem atomic.Int64
	running  atomic.Int64
	// starts counts jobs that ever began running. Together with running
	// it lets a handler prove it ran alone: running == 1 on entry and no
	// new starts by exit means no other job overlapped it (the basis for
	// serving exact per-run counter attribution).
	starts atomic.Uint64

	mu       sync.Mutex
	inflight map[string]int
}

func newQueue(capacity, maxQueue int) *queue {
	return &queue{
		slots:    make(chan struct{}, capacity),
		maxQueue: maxQueue,
		inflight: make(map[string]int),
	}
}

// acquire admits one job: it fails fast with errBusy when the wait line
// is full, waits for a slot otherwise, and gives up with ctx.Err() if
// the request deadline expires first. The returned release must be
// called exactly once.
func (q *queue) acquire(ctx context.Context, key string) (release func(), err error) {
	if int(q.inSystem.Add(1)) > q.maxQueue+cap(q.slots) {
		q.inSystem.Add(-1)
		obs.Add(obs.CQueueRejected, 1)
		return nil, errBusy
	}
	t0 := time.Now()
	select {
	case q.slots <- struct{}{}:
	case <-ctx.Done():
		q.inSystem.Add(-1)
		return nil, ctx.Err()
	}
	queueWaitHist.ObserveSince(t0)
	q.running.Add(1)
	q.starts.Add(1)
	q.note(key, +1)
	var once sync.Once
	return func() {
		once.Do(func() {
			q.note(key, -1)
			q.running.Add(-1)
			q.inSystem.Add(-1)
			<-q.slots
		})
	}, nil
}

func (q *queue) note(key string, d int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.inflight[key] += d
	if q.inflight[key] <= 0 {
		delete(q.inflight, key)
	}
}

// stats snapshots the queue for /v1/stats.
func (q *queue) stats() client.QueueStats {
	q.mu.Lock()
	var byKey map[string]int
	if len(q.inflight) > 0 {
		byKey = make(map[string]int, len(q.inflight))
		for k, v := range q.inflight {
			byKey[k] = v
		}
	}
	q.mu.Unlock()
	depth := int(q.inSystem.Load()) - int(q.running.Load())
	if depth < 0 {
		depth = 0
	}
	return client.QueueStats{
		Depth:         depth,
		Running:       int(q.running.Load()),
		Capacity:      cap(q.slots),
		MaxQueue:      q.maxQueue,
		AdmittedByKey: byKey,
	}
}
