package server

import (
	"bytes"
	"net/http"
	"sync"

	"camouflage/internal/obs"
)

// idemTable backs the Idempotency-Key header on experiment and campaign
// POSTs: a retried request whose original response was dropped on the
// wire replays the stored response instead of re-running the job. Only
// successful (2xx) responses are stored — a failed run is removed at
// completion so the retry actually retries — which preserves both
// halves of the contract: a success never double-runs, a failure is
// never cached.
//
// Concurrent duplicates (a client retrying while the original is still
// running) wait for the original to finish rather than racing a second
// run.
type idemTable struct {
	mu      sync.Mutex
	entries map[string]*idemEntry
	order   []string // insertion order, for FIFO eviction
	cap     int
}

type idemEntry struct {
	done     chan struct{}
	finished bool
	status   int // 0 until a response status was recorded
	body     []byte
}

func newIdemTable(capacity int) *idemTable {
	return &idemTable{entries: make(map[string]*idemEntry), cap: capacity}
}

// begin claims or joins the key. owner=true means the caller runs the
// job and must call finish with the entry; owner=false means e holds a
// completed 2xx response to replay.
func (t *idemTable) begin(key string) (e *idemEntry, owner bool) {
	for {
		t.mu.Lock()
		cur := t.entries[key]
		if cur == nil {
			cur = &idemEntry{done: make(chan struct{})}
			t.entries[key] = cur
			t.order = append(t.order, key)
			t.evictLocked()
			t.mu.Unlock()
			return cur, true
		}
		if cur.finished {
			// finish only leaves 2xx entries behind.
			t.mu.Unlock()
			return cur, false
		}
		t.mu.Unlock()
		<-cur.done
		// The original completed while we waited: loop to either replay
		// its stored success or claim the slot a dropped failure freed.
	}
}

// finish records the outcome. 2xx responses stay for replay; anything
// else — including a handler that died before writing (status 0) — is
// dropped so the next request with this key re-runs.
func (t *idemTable) finish(key string, e *idemEntry, status int, body []byte) {
	t.mu.Lock()
	e.status, e.body = status, body
	e.finished = true
	if status/100 != 2 && t.entries[key] == e {
		t.dropLocked(key)
	}
	t.mu.Unlock()
	close(e.done)
}

// evictLocked enforces the FIFO cap, skipping entries still in flight.
func (t *idemTable) evictLocked() {
	for len(t.entries) > t.cap {
		evicted := false
		for i, key := range t.order {
			if e := t.entries[key]; e != nil && e.finished {
				t.order = append(t.order[:i:i], t.order[i+1:]...)
				delete(t.entries, key)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything in flight; over-cap transiently
		}
	}
}

func (t *idemTable) dropLocked(key string) {
	delete(t.entries, key)
	for i, k := range t.order {
		if k == key {
			t.order = append(t.order[:i:i], t.order[i+1:]...)
			return
		}
	}
}

// idemRecorder tees a handler's response so a 2xx can be stored for
// replay. status stays 0 until the handler commits one, so a handler
// that panics before writing never stores a bogus success.
type idemRecorder struct {
	http.ResponseWriter
	status int
	buf    bytes.Buffer
}

func (r *idemRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *idemRecorder) Write(p []byte) (int, error) {
	r.buf.Write(p)
	return r.ResponseWriter.Write(p)
}

// withIdempotency wraps an experiment/campaign handler body: replayed
// requests answer from the table, first runs record through it. It
// reports whether the caller should run the handler with the returned
// writer.
func (s *Server) withIdempotency(w http.ResponseWriter, r *http.Request) (http.ResponseWriter, func(), bool) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		return w, func() {}, true
	}
	e, owner := s.idem.begin(key)
	if !owner {
		obs.Add(obs.CIdemReplay, 1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Idempotency-Replay", "true")
		w.WriteHeader(e.status)
		_, _ = w.Write(e.body)
		return nil, nil, false
	}
	rec := &idemRecorder{ResponseWriter: w}
	return rec, func() { s.idem.finish(key, e, rec.status, rec.buf.Bytes()) }, true
}
