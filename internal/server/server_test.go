package server

// White-box tests of the service daemon: handler error mapping, the
// byte-identity pin between served and local sequential experiment
// runs (the contract the CI server-smoke job enforces end-to-end), the
// machine-lease lifecycle, queue shedding, deadline expiry, and — under
// -race — N concurrent experiment requests sharing one pool key.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"camouflage/client"
	"camouflage/internal/figures"
	"camouflage/internal/snapshot"
)

// parityIDs is the selection the CI server-smoke job compares; keep the
// two in sync.
var parityIDs = []string{"table1", "table2", "keys", "fig4"}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs, client.New(hs.URL)
}

// TestRemoteMatchesLocalSequential pins the tentpole acceptance
// criterion: the served rendering is byte-identical to an in-process
// sequential run.
func TestRemoteMatchesLocalSequential(t *testing.T) {
	_, _, c := newTestServer(t, Config{})

	var local bytes.Buffer
	if _, err := figures.RunAll(&local, parityIDs, false); err != nil {
		t.Fatal(err)
	}
	resp, err := c.RunExperiments(context.Background(), client.ExperimentsRequest{IDs: parityIDs})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Output != local.String() {
		t.Fatalf("served output differs from local sequential run:\n--- served ---\n%s\n--- local ---\n%s",
			resp.Output, local.String())
	}
	if len(resp.Experiments) != len(parityIDs) {
		t.Fatalf("stats for %d experiments, want %d", len(resp.Experiments), len(parityIDs))
	}
	for i, st := range resp.Experiments {
		if st.ID != parityIDs[i] {
			t.Fatalf("stats[%d].ID = %q, want %q", i, st.ID, parityIDs[i])
		}
	}
}

// TestHandlerErrors is the handler error-mapping table: malformed JSON,
// unknown experiment IDs, unknown leases and unknown routes.
func TestHandlerErrors(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"bad json", "POST", "/v1/experiments", `{"ids": [`, http.StatusBadRequest},
		{"unknown experiment", "POST", "/v1/experiments", `{"ids":["fig99"]}`, http.StatusBadRequest},
		{"bad campaign json", "POST", "/v1/campaigns", `nope`, http.StatusBadRequest},
		{"unknown campaign level", "POST", "/v1/campaigns", `{"levels":["ful"]}`, http.StatusBadRequest},
		{"unknown level", "POST", "/v1/machines", `{"level":"maximal"}`, http.StatusBadRequest},
		{"unknown lease state", "GET", "/v1/machines/m-999", ``, http.StatusNotFound},
		{"unknown lease run", "POST", "/v1/machines/m-999/run", `{}`, http.StatusNotFound},
		{"unknown route", "GET", "/v1/nope", ``, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, hs.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestExpiredDeadline: a request whose deadline expires while it waits
// for a queue slot (the only slot is held) comes back 504, not 500, and
// never starts running.
func TestExpiredDeadline(t *testing.T) {
	s, _, c := newTestServer(t, Config{Concurrency: 1, MaxQueue: 4})

	release, err := s.queue.acquire(context.Background(), "test-hold")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, err = c.RunExperiments(context.Background(), client.ExperimentsRequest{
		IDs:        []string{"table1"},
		DeadlineMS: 50,
	})
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("err = %v, want *client.APIError", err)
	}
	if apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", apiErr.Status)
	}
}

// TestQueueSheds: once capacity + wait line are full, further requests
// are rejected immediately with 503 instead of queueing unboundedly.
func TestQueueSheds(t *testing.T) {
	s, _, c := newTestServer(t, Config{Concurrency: 1, MaxQueue: 1})

	holdSlot, err := s.queue.acquire(context.Background(), "test-hold")
	if err != nil {
		t.Fatal(err)
	}
	defer holdSlot()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // fills the one wait-line seat until ctx is cancelled
		defer wg.Done()
		if rel, err := s.queue.acquire(ctx, "test-wait"); err == nil {
			rel()
		}
	}()
	// Wait until the seat is taken.
	for i := 0; int(s.queue.inSystem.Load()) < 2 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	_, err = c.RunExperiments(context.Background(), client.ExperimentsRequest{IDs: []string{"table1"}})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	cancel()
	wg.Wait()
}

// TestMachineLeaseLifecycle drives the full lease surface: lease, run,
// state readback, reset, release, double release.
func TestMachineLeaseLifecycle(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	ctx := context.Background()

	m, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge", Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if m.Key == "" || m.BootCycles == 0 {
		t.Fatalf("lease = %+v, want key and boot cycles", m)
	}

	st0, err := m.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st0.X) != 31 {
		t.Fatalf("state has %d registers, want 31", len(st0.X))
	}

	run, err := m.Run(ctx, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if run.Instrs <= st0.Instrs {
		t.Fatalf("run retired nothing (instrs %d -> %d)", st0.Instrs, run.Instrs)
	}

	if err := m.Reset(ctx); err != nil {
		t.Fatal(err)
	}
	st1, err := m.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cycles != st0.Cycles || st1.PC != st0.PC {
		t.Fatalf("reset did not rewind: cycles %d vs %d, pc %#x vs %#x",
			st1.Cycles, st0.Cycles, st1.PC, st0.PC)
	}

	if err := m.Release(ctx); err != nil {
		t.Fatal(err)
	}
	err = m.Release(ctx)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusNotFound {
		t.Fatalf("double release err = %v, want 404 APIError", err)
	}
}

// TestLeaseSharesBootAcrossClients: two leases of the same options cost
// one boot; the second is a fork or a reuse.
func TestLeaseSharesBootAcrossClients(t *testing.T) {
	s, _, c := newTestServer(t, Config{Pool: snapshot.NewPool()})
	ctx := context.Background()

	m1, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge", Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge", Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Key != m2.Key {
		t.Fatalf("keys differ: %q vs %q", m1.Key, m2.Key)
	}
	if st := s.cfg.Pool.Stats(); st.Boots != 1 {
		t.Fatalf("boots = %d, want 1 (second lease must fork)", st.Boots)
	}
	if err := m1.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m2.Release(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentExperimentsShareOneBoot: N concurrent /v1/experiments
// requests for an experiment that boots one configuration
// ("ablation-keys" boots full/seed-5) pay at most one additional boot
// between them — the admission contract. Run under -race this also
// checks the handler and runner plumbing for data races.
func TestConcurrentExperimentsShareOneBoot(t *testing.T) {
	_, _, c := newTestServer(t, Config{Concurrency: 8})
	before := snapshot.Shared.Stats().Boots

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	outs := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.RunExperiments(context.Background(), client.ExperimentsRequest{
				IDs: []string{"ablation-keys"},
			})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = resp.Output
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("request %d rendering differs from request 0", i)
		}
	}
	if boots := snapshot.Shared.Stats().Boots - before; boots > 1 {
		t.Fatalf("%d concurrent requests paid %d boots, want <= 1", n, boots)
	}
}

// TestCampaignEndpoint smokes the campaign surface with a tiny budget.
func TestCampaignEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	resp, err := c.RunCampaign(context.Background(), client.CampaignRequest{
		Mutations: 2,
		Levels:    []string{"none"},
		Parallel:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.Report.Cells); got != 4 {
		t.Fatalf("cells = %d, want 4 (one level x four attacks)", got)
	}
	if !strings.Contains(resp.Output, "DIFFERENTIAL ATTACK CAMPAIGN") {
		t.Fatalf("rendered output missing header:\n%s", resp.Output)
	}
	for _, cell := range resp.Report.Cells {
		if cell.Level != "none" {
			t.Fatalf("cell level %q, want none", cell.Level)
		}
	}
}

// TestStatsAndDrain: /v1/stats reflects pool and lease accounting, and
// after Drain mutating requests are rejected while reads still answer.
func TestStatsAndDrain(t *testing.T) {
	s, _, c := newTestServer(t, Config{Pool: snapshot.NewPool()})
	ctx := context.Background()

	m, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge", Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leases.Active != 1 || st.Leases.Issued != 1 {
		t.Fatalf("lease stats = %+v, want 1 active / 1 issued", st.Leases)
	}
	if st.Pool.Boots != 1 {
		t.Fatalf("pool boots = %d, want 1", st.Pool.Boots)
	}
	_ = m // left checked out: Drain must reclaim it

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Fatal("stats not draining after Drain")
	}
	if st.Leases.Active != 0 {
		t.Fatalf("drain left %d leases active", st.Leases.Active)
	}
	if st.Pool.Idle != 0 {
		t.Fatalf("drain left %d idle machines", st.Pool.Idle)
	}

	_, err = c.RunExperiments(ctx, client.ExperimentsRequest{IDs: []string{"table1"}})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain err = %v, want 503 APIError", err)
	}
}

// TestDrainForceExpiresWedgedLease pins the drain-path fix: a lease
// whose operation lock is held past the drain budget must not hang
// Drain (the pre-fix releaseAll blocked unconditionally on each lease's
// mutex, so a wedged 500M-instruction /run step made SIGTERM hang
// indefinitely and the lease's machine was never accounted for). The
// wedged lease is force-expired within the budget and its machine
// abandoned, never parked mid-run.
func TestDrainForceExpiresWedgedLease(t *testing.T) {
	s, _, c := newTestServer(t, Config{Pool: snapshot.NewPool()})
	ctx := context.Background()

	m, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge", Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the lease: hold its operation lock like a long /run would.
	l, ok := s.leases.get(m.ID)
	if !ok {
		t.Fatal("lease not found")
	}
	l.mu.Lock()
	unwedged := make(chan struct{})
	go func() {
		<-unwedged
		l.mu.Unlock()
	}()

	dctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_ = s.Drain(dctx) // in-flight jobs: none; the wedge is the lease lock
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("Drain blocked on the wedged lease for %v", took)
	}

	st := s.leases.stats()
	if st.Active != 0 {
		t.Fatalf("drain left %d leases active", st.Active)
	}
	if st.ForceExpired != 1 {
		t.Fatalf("force-expired = %d, want 1", st.ForceExpired)
	}
	if idle := s.cfg.Pool.Stats().Idle; idle != 0 {
		t.Fatalf("drain left %d idle machines", idle)
	}

	// Un-wedge: the background path marks the lease released and
	// abandons the machine — the pool must NOT gain an idle machine
	// after the drain already evicted everything.
	close(unwedged)
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		released := l.released
		l.mu.Unlock()
		if released {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("wedged lease never marked released")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if idle := s.cfg.Pool.Stats().Idle; idle != 0 {
		t.Fatalf("abandoned machine was parked: %d idle after un-wedge", idle)
	}
}

// TestSMPLeaseAndCampaignCPUs: the `cpus` request field reaches the
// pool key (SMP leases never share machines with uniprocessor ones)
// and the campaign driver (the cross-core cell appears).
func TestSMPLeaseAndCampaignCPUs(t *testing.T) {
	_, _, c := newTestServer(t, Config{Pool: snapshot.NewPool()})
	ctx := context.Background()

	m, err := c.Lease(ctx, client.MachineRequest{Level: "none", Seed: 81, CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Key, "cpus=2") {
		t.Fatalf("lease key %q does not pin the vCPU count", m.Key)
	}
	if _, err := m.Run(ctx, 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := c.RunCampaign(ctx, client.CampaignRequest{
		Mutations: 2, Levels: []string{"full"}, Parallel: true, CPUs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, cell := range resp.Report.Cells {
		if cell.Attack == "cross-core f_ops replay" {
			found = true
		}
	}
	if !found {
		t.Fatal("2-vCPU campaign response missing the cross-core cell")
	}
}
