package server

// Tests for the /v1/snapshots and /v1/images resource surface: listing,
// manifest inspect, pin/unpin, delete with its two 409 guards (pinned,
// lease-backed), and the 503 answer of a store-less daemon.

import (
	"context"
	"errors"
	"testing"

	"camouflage/client"
	"camouflage/internal/snapshot"
	"camouflage/internal/store"
)

func apiStatus(t *testing.T, err error) int {
	t.Helper()
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an APIError", err)
	}
	return ae.Status
}

func TestSnapshotRoutesWithoutStore(t *testing.T) {
	_, _, c := newTestServer(t, Config{Pool: snapshot.NewPool()})
	ctx := context.Background()
	if _, err := c.Snapshots(ctx); apiStatus(t, err) != 503 {
		t.Fatalf("Snapshots without store: %v, want 503", err)
	}
	if _, err := c.Images(ctx); apiStatus(t, err) != 503 {
		t.Fatalf("Images without store: %v, want 503", err)
	}
	if err := c.DeleteSnapshot(ctx, "abc"); apiStatus(t, err) != 503 {
		t.Fatalf("DeleteSnapshot without store: %v, want 503", err)
	}
}

func TestSnapshotResourceLifecycle(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := snapshot.NewPool()
	pool.Store = st
	_, _, c := newTestServer(t, Config{Pool: pool, Store: st})
	ctx := context.Background()

	// Lease a machine: the pool boots it and persists the snapshot.
	m, err := c.Lease(ctx, client.MachineRequest{Level: "backward-edge"})
	if err != nil {
		t.Fatal(err)
	}
	pool.WaitPersist()

	snaps, err := c.Snapshots(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("listed %d snapshots, want 1", len(snaps))
	}
	info := snaps[0]
	if !info.Resident {
		t.Fatal("persisted snapshot not marked resident while its pool entry is armed")
	}

	mani, err := c.Snapshot(ctx, info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if mani.Digest != info.Digest || len(mani.Pages) != info.Pages || mani.Key != info.Key {
		t.Fatalf("manifest disagrees with listing: %+v vs %+v", mani, info)
	}

	imgs, err := c.Images(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 1 || imgs[0].ImageDigest != info.ImageDigest {
		t.Fatalf("images = %+v, want one entry for %s", imgs, info.ImageDigest)
	}

	// Guard 1: the snapshot backs an active lease — DELETE is 409.
	if err := c.DeleteSnapshot(ctx, info.Digest); apiStatus(t, err) != 409 {
		t.Fatalf("DeleteSnapshot under lease: %v, want 409", err)
	}
	if err := m.Release(ctx); err != nil {
		t.Fatal(err)
	}

	// Guard 2: pinned — DELETE stays 409 even with no lease.
	if err := c.PinSnapshot(ctx, info.Digest, true); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSnapshot(ctx, info.Digest); apiStatus(t, err) != 409 {
		t.Fatalf("DeleteSnapshot while pinned: %v, want 409", err)
	}
	// The pin also protects the pool's warm machines from eviction.
	if pool.EvictIdle(0) != 0 {
		t.Fatal("EvictIdle(0) evicted machines of a pinned snapshot")
	}

	if err := c.PinSnapshot(ctx, info.Digest, false); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSnapshot(ctx, info.Digest); err != nil {
		t.Fatalf("DeleteSnapshot unpinned, unleased: %v", err)
	}
	snaps, err = c.Snapshots(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("%d snapshots listed after delete, want 0", len(snaps))
	}
	if err := c.DeleteSnapshot(ctx, info.Digest); apiStatus(t, err) != 404 {
		t.Fatalf("second delete: %v, want 404", err)
	}
	if _, err := c.Snapshot(ctx, info.Digest); apiStatus(t, err) != 404 {
		t.Fatalf("manifest after delete: %v, want 404", err)
	}
}
