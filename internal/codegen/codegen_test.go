package codegen

import (
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/pac"
)

const (
	textBase = uint64(pac.KernelBase) | 0x0008_0000
	stackTop = uint64(pac.KernelBase) | 0x0020_0000
	objBase  = uint64(pac.KernelBase) | 0x0018_0000
)

// buildAndRun assembles a program with "main" as entry and runs it.
func buildAndRun(t *testing.T, build func(a *asm.Assembler), pauth bool) *cpu.CPU {
	t.Helper()
	a := asm.New()
	build(a)
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Features{PAuth: pauth})
	c.SCTLR = insn.SCTLRPAuthAll
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.Signer.SetKey(pac.KeyIA, pac.Key{Hi: 0x11, Lo: 0x22})
	c.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 0x33, Lo: 0x44})
	c.Signer.SetKey(pac.KeyDB, pac.Key{Hi: 0x55, Lo: 0x66})
	c.SetSP(1, stackTop)
	c.PC = img.Symbols["main"]
	stop := c.Run(100000)
	if stop.Kind == cpu.StopError {
		t.Fatalf("simulation error: %v", stop.Err)
	}
	if stop.Kind != cpu.StopHLT {
		t.Fatalf("did not halt: %+v", stop)
	}
	return c
}

// TestAllSchemesRoundTrip: a function instrumented under every scheme
// returns correctly in the benign case.
func TestAllSchemesRoundTrip(t *testing.T) {
	schemes := []Scheme{SchemeNone, SchemeClangSP, SchemePARTS, SchemeCamouflage, SchemeCamouflageCompat}
	for _, s := range schemes {
		cfg := &Config{Scheme: s}
		c := buildAndRun(t, func(a *asm.Assembler) {
			a.Label("main")
			a.I(insn.MOVZ(insn.X0, 3, 0))
			a.BL("f")
			a.I(insn.HLT(0))
			cfg.EmitFunc(a, FuncSpec{Name: "f", ALU: 2})
		}, true)
		if c.X[10] != 2 {
			t.Errorf("%v: body ran %d ALU ops, want 2", s, c.X[10])
		}
		if c.PACFailures != 0 {
			t.Errorf("%v: %d PAC failures in benign run", s, c.PACFailures)
		}
	}
}

// TestCompatSchemeRunsOnV80: the compat build executes on a core without
// PAuth (hint forms degrade to NOPs) — §5.5.
func TestCompatSchemeRunsOnV80(t *testing.T) {
	cfg := &Config{Scheme: SchemeCamouflageCompat}
	c := buildAndRun(t, func(a *asm.Assembler) {
		a.Label("main")
		a.BL("f")
		a.I(insn.HLT(0))
		cfg.EmitFunc(a, FuncSpec{Name: "f", ALU: 1})
	}, false) // ARMv8.0
	if c.X[10] != 1 {
		t.Fatal("function body did not run on v8.0")
	}
}

// TestNonCompatSchemeFaultsOnV80 is the inverse control: the plain
// Camouflage build uses register-form PAuth and must trap on v8.0.
func TestNonCompatSchemeFaultsOnV80(t *testing.T) {
	cfg := &Config{Scheme: SchemeCamouflage}
	a := asm.New()
	a.Label("main")
	a.BL("f")
	a.I(insn.HLT(0))
	cfg.EmitFunc(a, FuncSpec{Name: "f", ALU: 1})
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Features{PAuth: false})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, stackTop)
	c.VBAR = uint64(pac.KernelBase) | 0x0030_0000 // empty vectors: will spin
	c.PC = img.Symbols["main"]
	stop := c.Run(100)
	// Execution must not reach HLT 0 — it traps into the (unmapped)
	// vector area and keeps faulting.
	if stop.Kind == cpu.StopHLT && stop.Code == 0 {
		t.Fatal("register-form PAuth executed on a v8.0 core")
	}
}

// TestFigure2Ordering measures per-call overhead for each scheme and pins
// the paper's Figure 2 ordering: baseline < Clang-SP < Camouflage < PARTS.
func TestFigure2Ordering(t *testing.T) {
	measure := func(s Scheme) uint64 {
		cfg := &Config{Scheme: s}
		c := buildAndRun(t, func(a *asm.Assembler) {
			a.Label("main")
			a.I(insn.MOVZ(insn.X5, 64, 0)) // iterations
			a.Label("loop")
			a.BL("f")
			a.I(insn.SUBi(insn.X5, insn.X5, 1))
			a.CBNZ(insn.X5, "loop")
			a.I(insn.HLT(0))
			cfg.EmitFunc(a, FuncSpec{Name: "f", ALU: 1})
		}, true)
		return c.Cycles
	}
	base := measure(SchemeNone)
	clang := measure(SchemeClangSP)
	camo := measure(SchemeCamouflage)
	parts := measure(SchemePARTS)
	if !(base < clang && clang < camo && camo < parts) {
		t.Fatalf("Figure 2 ordering violated: none=%d clang=%d camo=%d parts=%d",
			base, clang, camo, parts)
	}
	// Per-call deltas must match the analytic model.
	perCall := func(total uint64) uint64 { return (total - base) / 64 }
	for s, want := range map[Scheme]uint64{
		SchemeClangSP:    ExpectedOverheadCycles(SchemeClangSP),
		SchemeCamouflage: ExpectedOverheadCycles(SchemeCamouflage),
		SchemePARTS:      ExpectedOverheadCycles(SchemePARTS),
	} {
		var got uint64
		switch s {
		case SchemeClangSP:
			got = perCall(clang)
		case SchemeCamouflage:
			got = perCall(camo)
		case SchemePARTS:
			got = perCall(parts)
		}
		if got != want {
			t.Errorf("%v: measured %d cycles/call, analytic %d", s, got, want)
		}
	}
}

// TestROPCaughtByEachPAuthScheme: the frame-record overwrite is defeated
// by every PAuth scheme and succeeds under SchemeNone.
func TestROPCaughtByEachPAuthScheme(t *testing.T) {
	build := func(cfg *Config) func(a *asm.Assembler) {
		return func(a *asm.Assembler) {
			a.Label("main")
			a.BL("victim")
			a.I(insn.HLT(0))
			a.Label("victim")
			cfg.Prologue(a, "victim")
			a.MOVAddr(insn.X9, "gadget")
			a.I(insn.STR(insn.X9, insn.SP, 8)) // overwrite saved LR
			cfg.Epilogue(a, "victim")
			a.Label("gadget")
			a.I(insn.MOVZ(insn.X7, 0xBAD, 0))
			a.I(insn.HLT(0x77))
		}
	}
	for _, s := range []Scheme{SchemeClangSP, SchemePARTS, SchemeCamouflage, SchemeCamouflageCompat} {
		cfg := &Config{Scheme: s}
		a := asm.New()
		build(cfg)(a)
		img, err := a.Link(map[string]uint64{".text": textBase})
		if err != nil {
			t.Fatal(err)
		}
		c := cpu.New(cpu.Features{PAuth: true})
		c.SCTLR = insn.SCTLRPAuthAll
		for _, sec := range img.Sections {
			c.Bus.RAM.WriteBytes(sec.Base, sec.Bytes)
		}
		c.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 0x33, Lo: 0x44})
		c.SetSP(1, stackTop)
		c.PC = img.Symbols["main"]
		stop := c.Run(10000)
		if stop.Kind == cpu.StopHLT && stop.Code == 0x77 {
			t.Errorf("%v: gadget executed; ROP not caught", s)
			continue
		}
		if c.PACFailures != 1 {
			t.Errorf("%v: PACFailures = %d, want 1", s, c.PACFailures)
		}
	}
	// Control: unprotected build lets the gadget run.
	cfg := ConfigNone()
	c := buildAndRun(t, build(cfg), true)
	if c.X[7] != 0xBAD {
		t.Error("SchemeNone: gadget did not run; control broken")
	}
}

// TestSignedFieldRoundTrip: Listing 4 setter/getter on a struct-file-like
// object in kernel memory.
func TestSignedFieldRoundTrip(t *testing.T) {
	tc := pac.TypeConst("file", "f_ops")
	cfg := ConfigFull()
	c := buildAndRun(t, func(a *asm.Assembler) {
		a.Label("main")
		// x0 = object, x1 = ops pointer value.
		a.I(insn.MOVImm64(insn.X0, objBase)...)
		a.I(insn.MOVImm64(insn.X1, objBase|0x4000)...)
		cfg.SignedFieldStore(a, insn.X0, insn.X1, 40, tc, false)
		cfg.SignedFieldLoad(a, insn.X2, insn.X0, 40, tc, false)
		a.I(insn.HLT(0))
	}, true)
	if c.PACFailures != 0 {
		t.Fatalf("PACFailures = %d", c.PACFailures)
	}
	if c.X[2] != objBase|0x4000 {
		t.Fatalf("getter returned %#x, want %#x", c.X[2], objBase|0x4000)
	}
	// The stored form must differ from the raw pointer (it carries a PAC).
	stored := c.Bus.RAM.Read64(objBase + 40)
	if stored == objBase|0x4000 {
		t.Fatal("stored pointer unsigned")
	}
}

// TestSignedFieldSwapDetected: transplanting a signed pointer from one
// object to another fails (the modifier binds the containing address,
// §4.3).
func TestSignedFieldSwapDetected(t *testing.T) {
	tc := pac.TypeConst("file", "f_ops")
	cfg := ConfigFull()
	c := buildAndRun(t, func(a *asm.Assembler) {
		a.Label("main")
		a.I(insn.MOVImm64(insn.X0, objBase)...)        // object A
		a.I(insn.MOVImm64(insn.X3, objBase|0x2000)...) // object B
		a.I(insn.MOVImm64(insn.X1, objBase|0x4000)...) // ops value
		cfg.SignedFieldStore(a, insn.X0, insn.X1, 40, tc, false)
		// Attacker copies A's signed slot into B byte-for-byte.
		a.I(insn.LDR(insn.X4, insn.X0, 40))
		a.I(insn.STR(insn.X4, insn.X3, 40))
		// Victim loads through B.
		cfg.SignedFieldLoad(a, insn.X2, insn.X3, 40, tc, false)
		a.I(insn.HLT(0))
	}, true)
	if c.PACFailures != 1 {
		t.Fatalf("PACFailures = %d, want 1 (cross-object transplant)", c.PACFailures)
	}
	if c.Signer.Config().IsCanonical(c.X[2]) {
		t.Fatalf("transplanted pointer authenticated to %#x", c.X[2])
	}
}

// TestSignedFieldTypeConstSegregates: the same address signed under a
// different type·member constant does not authenticate (§4.3: "segregates
// pointers at the same address based on their type").
func TestSignedFieldTypeConstSegregates(t *testing.T) {
	tcA := pac.TypeConst("file", "f_ops")
	tcB := pac.TypeConst("file", "f_cred")
	cfg := ConfigFull()
	c := buildAndRun(t, func(a *asm.Assembler) {
		a.Label("main")
		a.I(insn.MOVImm64(insn.X0, objBase)...)
		a.I(insn.MOVImm64(insn.X1, objBase|0x4000)...)
		cfg.SignedFieldStore(a, insn.X0, insn.X1, 40, tcA, false)
		cfg.SignedFieldLoad(a, insn.X2, insn.X0, 40, tcB, false)
		a.I(insn.HLT(0))
	}, true)
	if c.PACFailures != 1 {
		t.Fatalf("PACFailures = %d, want 1 (type-constant mismatch)", c.PACFailures)
	}
}

// TestConfigLevels checks the Figure 3/4 level naming.
func TestConfigLevels(t *testing.T) {
	if ConfigNone().Level() != "none" ||
		ConfigBackward().Level() != "backward-edge" ||
		ConfigFull().Level() != "full" {
		t.Fatal("level names wrong")
	}
}

// TestDFIDisabledEmitsPlainAccess: with DFI off the getter is a plain
// load (no auth, no failure on transplant) — the baseline behaviour.
func TestDFIDisabledEmitsPlainAccess(t *testing.T) {
	tc := pac.TypeConst("file", "f_ops")
	cfg := ConfigBackward() // DFI off
	c := buildAndRun(t, func(a *asm.Assembler) {
		a.Label("main")
		a.I(insn.MOVImm64(insn.X0, objBase)...)
		a.I(insn.MOVImm64(insn.X1, objBase|0x4000)...)
		cfg.SignedFieldStore(a, insn.X0, insn.X1, 40, tc, false)
		cfg.SignedFieldLoad(a, insn.X2, insn.X0, 40, tc, false)
		a.I(insn.HLT(0))
	}, true)
	if c.X[2] != objBase|0x4000 {
		t.Fatalf("plain load = %#x", c.X[2])
	}
	stored := c.Bus.RAM.Read64(objBase + 40)
	if stored != objBase|0x4000 {
		t.Fatal("pointer signed despite DFI off")
	}
}

// TestCallTree: EmitFunc composes into a call tree that executes.
func TestCallTree(t *testing.T) {
	cfg := ConfigFull()
	c := buildAndRun(t, func(a *asm.Assembler) {
		a.Label("main")
		a.BL("parent")
		a.I(insn.HLT(0))
		cfg.EmitFunc(a, FuncSpec{Name: "parent", ALU: 1, Calls: []string{"child1", "child2"}})
		cfg.EmitFunc(a, FuncSpec{Name: "child1", ALU: 2, Loads: 1, Stores: 1})
		cfg.EmitFunc(a, FuncSpec{Name: "child2", ALU: 3})
	}, true)
	if c.X[10] != 6 {
		t.Fatalf("call tree executed %d ALU ops, want 6", c.X[10])
	}
	if c.PACFailures != 0 {
		t.Fatalf("PACFailures = %d", c.PACFailures)
	}
}

// TestLeafFunctionUninstrumented: leaves have no prologue, hence zero
// overhead (§6.1.2).
func TestLeafFunctionUninstrumented(t *testing.T) {
	cfgN := ConfigNone()
	cfgC := ConfigBackward()
	count := func(cfg *Config) uint64 {
		c := buildAndRun(t, func(a *asm.Assembler) {
			a.Label("main")
			a.I(insn.MOVImm64(insn.X11, objBase)...) // leaf scratch base
			a.BL("leaf")
			a.I(insn.HLT(0))
			cfg.EmitFunc(a, FuncSpec{Name: "leaf", ALU: 2, Leaf: true})
		}, true)
		return c.Cycles
	}
	if count(cfgN) != count(cfgC) {
		t.Fatal("leaf function cost differs across schemes; leaves must be uninstrumented")
	}
}

func TestInstrumentationInstrs(t *testing.T) {
	if InstrumentationInstrs(SchemeNone) != 0 {
		t.Error("SchemeNone adds instructions")
	}
	if !(InstrumentationInstrs(SchemeClangSP) < InstrumentationInstrs(SchemeCamouflage) &&
		InstrumentationInstrs(SchemeCamouflage) < InstrumentationInstrs(SchemePARTS)) {
		t.Error("instruction-count ordering violated")
	}
}

// TestFramePushPopMacros covers §5.2's hand-written-assembly path: the
// frame_push/frame_pop macros protect functions the compiler never sees
// (SIMD routines, cpu_switch_to) exactly like compiler-emitted frames.
func TestFramePushPopMacros(t *testing.T) {
	cfg := ConfigBackward()
	c := buildAndRun(t, func(a *asm.Assembler) {
		a.Label("main")
		a.BL("simd_routine")
		a.I(insn.HLT(0))
		// "Hand-written" function using the macros instead of EmitFunc.
		a.Label("simd_routine")
		cfg.FramePush(a, "simd_routine")
		a.I(insn.MOVZ(insn.X0, 0x51, 0))
		cfg.FramePop(a, "simd_routine")
	}, true)
	if c.X[0] != 0x51 || c.PACFailures != 0 {
		t.Fatalf("x0=%#x failures=%d", c.X[0], c.PACFailures)
	}

	// And the macro-protected frame resists the same smash as compiler
	// frames: overwrite the saved LR mid-function.
	a2 := asm.New()
	a2.Label("main")
	a2.BL("victim")
	a2.I(insn.HLT(0))
	a2.Label("victim")
	cfg.FramePush(a2, "victim")
	a2.MOVAddr(insn.X9, "gadget")
	a2.I(insn.STR(insn.X9, insn.SP, 8))
	cfg.FramePop(a2, "victim")
	a2.Label("gadget")
	a2.I(insn.HLT(0x77))
	img, err := a2.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c2 := cpu.New(cpu.Features{PAuth: true})
	c2.SCTLR = insn.SCTLRPAuthAll
	for _, sec := range img.Sections {
		c2.Bus.RAM.WriteBytes(sec.Base, sec.Bytes)
	}
	c2.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 3, Lo: 4})
	c2.SetSP(1, stackTop)
	c2.PC = img.Symbols["main"]
	stop := c2.Run(10000)
	if stop.Kind == cpu.StopHLT && stop.Code == 0x77 {
		t.Fatal("gadget ran through a frame_push-protected frame")
	}
	if c2.PACFailures != 1 {
		t.Fatalf("PACFailures = %d", c2.PACFailures)
	}
}
