// Package codegen is the compiler stand-in: it emits instrumented function
// prologues and epilogues for each return-address protection scheme the
// paper compares (Figure 2), the authenticated getter/setter sequences for
// forward-edge CFI and DFI (Listing 4), and parametrised synthetic
// functions used to build realistic kernel call trees for the lmbench and
// workload reproductions.
//
// The paper's prototype patched LLVM 8.0; the sequences emitted here are
// instruction-for-instruction the ones shown in the paper's listings.
package codegen

import (
	"camouflage/internal/asm"
	"camouflage/internal/insn"
	"camouflage/internal/pac"
)

// Scheme selects the return-address (backward-edge) instrumentation.
type Scheme int

// Schemes, in the order Figure 2 presents them.
const (
	// SchemeNone emits the plain Listing-1 prologue/epilogue.
	SchemeNone Scheme = iota
	// SchemeClangSP is Listing 2: modifier = SP (Qualcomm/Clang).
	SchemeClangSP
	// SchemePARTS is the PARTS construction: modifier = 16-bit SP ∥
	// 48-bit LTO function id, materialised with a move-wide chain.
	SchemePARTS
	// SchemeCamouflage is Listing 3: modifier = 32-bit SP ∥ 32-bit
	// function address taken from PC via ADR.
	SchemeCamouflage
	// SchemeCamouflageCompat is the §5.5 backwards-compatible variant:
	// the same modifier, but signing through the NOP-space PACIB1716 /
	// AUTIB1716 with x16/x17 staging, so the binary runs on ARMv8.0.
	SchemeCamouflageCompat
)

// String returns the Figure 2 label.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeClangSP:
		return "SP (Clang)"
	case SchemePARTS:
		return "PARTS"
	case SchemeCamouflage:
		return "Camouflage"
	case SchemeCamouflageCompat:
		return "Camouflage/compat"
	}
	return "scheme?"
}

// Config is the per-build instrumentation configuration. The three
// protection levels of Figures 3 and 4 are expressed as:
//
//	none:          Config{Scheme: SchemeNone}
//	backward-edge: Config{Scheme: SchemeCamouflage}
//	full:          Config{Scheme: SchemeCamouflage, ForwardCFI: true, DFI: true}
type Config struct {
	// Scheme is the backward-edge scheme.
	Scheme Scheme
	// ForwardCFI signs writable function pointers with key IA (§4.4).
	ForwardCFI bool
	// DFI signs data pointers to operations tables with key DB (§4.5).
	DFI bool
	// ZeroModifier is an ablation reproducing Apple's vtable scheme (§7):
	// pointers are signed with a zero modifier instead of the §4.3
	// object-address modifier. It preserves memcpy but is susceptible to
	// reuse attacks, which the attack harness demonstrates.
	ZeroModifier bool
	// NumCPUs is the number of simulated cores the build targets (0 and
	// 1 both mean uniprocessor). SMP builds (>1) address the per-CPU
	// block through TPIDR_EL0 instead of an absolute constant and lay
	// out one per-CPU frame per core; uniprocessor builds are
	// bit-identical to pre-SMP images.
	NumCPUs int
	// partsNextID assigns PARTS LTO function ids; it lives in the config
	// because PARTS requires whole-build LTO (§7) — one counter per link.
	partsNextID uint64
	partsIDs    map[string]uint64
}

// Level names a protection level for figures.
func (c Config) Level() string {
	switch {
	case c.Scheme == SchemeNone:
		return "none"
	case c.ForwardCFI || c.DFI:
		return "full"
	default:
		return "backward-edge"
	}
}

// ConfigNone returns the baseline build.
func ConfigNone() *Config { return &Config{Scheme: SchemeNone} }

// ConfigBackward returns the backward-edge-only build.
func ConfigBackward() *Config { return &Config{Scheme: SchemeCamouflage} }

// ConfigFull returns the full-protection build (backward + forward + DFI).
func ConfigFull() *Config {
	return &Config{Scheme: SchemeCamouflage, ForwardCFI: true, DFI: true}
}

// CPUs returns the normalized core count (NumCPUs with 0 meaning 1).
func (c *Config) CPUs() int {
	if c.NumCPUs <= 1 {
		return 1
	}
	return c.NumCPUs
}

// WithCPUs wraps a config constructor so every Config it builds targets
// n vCPUs (n <= 1 returns the constructor unchanged) — the shared shim
// the suite runners use to retarget their per-level constructors.
func WithCPUs(cfg func() *Config, n int) func() *Config {
	if n <= 1 {
		return cfg
	}
	return func() *Config {
		c := cfg()
		c.NumCPUs = n
		return c
	}
}

// partsID returns the next LTO function id.
func (c *Config) partsID() uint64 {
	c.partsNextID++
	return c.partsNextID
}

// Prologue emits the scheme's prologue for the function whose entry label
// is fnLabel. It must be emitted immediately at the function entry (the
// Camouflage ADR references the label). The emitted code ends with the
// frame record push of Listing 1. Returns the number of instructions
// added over the plain prologue, which Figure 2 measures.
func (c *Config) Prologue(a *asm.Assembler, fnLabel string) {
	switch c.Scheme {
	case SchemeNone:
	case SchemeClangSP:
		a.I(insn.PACIB(insn.LR, insn.SP))
	case SchemePARTS:
		c.emitPARTSModifier(a, insn.IP0, c.partsIDFor(fnLabel))
		a.I(insn.PACIB(insn.LR, insn.IP0))
	case SchemeCamouflage:
		emitCamouflageModifier(a, fnLabel)
		a.I(insn.PACIB(insn.LR, insn.IP0))
	case SchemeCamouflageCompat:
		emitCamouflageModifierCompat(a, fnLabel)
		a.I(insn.ORRr(insn.X17, insn.XZR, insn.LR, 0)) // mov x17, lr
		a.I(insn.PACIB1716())
		a.I(insn.ORRr(insn.LR, insn.XZR, insn.X17, 0)) // mov lr, x17
	}
	a.I(insn.STPpre(insn.FP, insn.LR, insn.SP, -16))
	a.I(insn.MOVSP(insn.FP, insn.SP))
}

// Epilogue emits the matching epilogue ending in RET.
func (c *Config) Epilogue(a *asm.Assembler, fnLabel string) {
	a.I(insn.LDPpost(insn.FP, insn.LR, insn.SP, 16))
	switch c.Scheme {
	case SchemeNone:
	case SchemeClangSP:
		a.I(insn.AUTIB(insn.LR, insn.SP))
	case SchemePARTS:
		c.emitPARTSModifier(a, insn.IP0, c.partsIDFor(fnLabel))
		a.I(insn.AUTIB(insn.LR, insn.IP0))
	case SchemeCamouflage:
		emitCamouflageModifier(a, fnLabel)
		a.I(insn.AUTIB(insn.LR, insn.IP0))
	case SchemeCamouflageCompat:
		emitCamouflageModifierCompat(a, fnLabel)
		a.I(insn.ORRr(insn.X17, insn.XZR, insn.LR, 0))
		a.I(insn.AUTIB1716())
		a.I(insn.ORRr(insn.LR, insn.XZR, insn.X17, 0))
	}
	a.I(insn.RET())
}

// emitCamouflageModifier emits Listing 3's modifier construction into IP0:
//
//	adr  ip0, function
//	mov  ip1, sp        ; SP is not a valid BFI operand
//	bfi  ip0, ip1, #32, #32
func emitCamouflageModifier(a *asm.Assembler, fnLabel string) {
	a.ADR(insn.IP0, fnLabel)
	a.I(insn.MOVSP(insn.IP1, insn.SP))
	a.I(insn.BFI(insn.IP0, insn.IP1, 32, 32))
}

// emitCamouflageModifierCompat builds the same modifier in x16 (the fixed
// modifier register of the 1716 hint forms).
func emitCamouflageModifierCompat(a *asm.Assembler, fnLabel string) {
	a.ADR(insn.X16, fnLabel)
	a.I(insn.MOVSP(insn.IP1, insn.SP))
	a.I(insn.BFI(insn.X16, insn.IP1, 32, 32))
}

// partsIDFor memoises PARTS function ids per label so prologue and
// epilogue agree; the table is per-Config, mirroring per-link LTO.
func (c *Config) partsIDFor(fnLabel string) uint64 {
	if c.partsIDs == nil {
		c.partsIDs = make(map[string]uint64)
	}
	if id, ok := c.partsIDs[fnLabel]; ok {
		return id
	}
	id := c.partsID()
	c.partsIDs[fnLabel] = id
	return id
}

// emitPARTSModifier materialises the PARTS modifier into rd:
//
//	movz rd, #id0            ; 48-bit LTO function id
//	movk rd, #id1, lsl #16
//	movk rd, #id2, lsl #32
//	mov  ip1, sp
//	bfi  rd, ip1, #48, #16   ; 16 low bits of SP in the top
func (c *Config) emitPARTSModifier(a *asm.Assembler, rd insn.Reg, id uint64) {
	a.I(insn.MOVZ(rd, uint16(id), 0))
	a.I(insn.MOVK(rd, uint16(id>>16), 16))
	a.I(insn.MOVK(rd, uint16(id>>32), 32))
	a.I(insn.MOVSP(insn.IP1, insn.SP))
	a.I(insn.BFI(rd, insn.IP1, 48, 16))
}

// --- pointer integrity getters and setters (Listing 4, §5.3) ---

// SignedFieldStore emits the set_<field>() pattern: sign ptrReg under the
// object modifier and store it at [objReg + off]. Uses key DB for data
// pointers and IA for function pointers, per §4.5. With the corresponding
// protection disabled it emits a plain store.
//
// Clobbers x9 (modifier scratch).
func (c *Config) SignedFieldStore(a *asm.Assembler, objReg, ptrReg insn.Reg, off uint16, tc uint16, fnPtr bool) {
	if c.protects(fnPtr) {
		switch {
		case c.ZeroModifier && fnPtr:
			a.I(insn.PACIZA(ptrReg))
		case c.ZeroModifier:
			a.I(insn.PACDZB(ptrReg))
		case fnPtr:
			emitObjectModifier(a, insn.X9, objReg, tc)
			a.I(insn.PACIA(ptrReg, insn.X9))
		default:
			emitObjectModifier(a, insn.X9, objReg, tc)
			a.I(insn.PACDB(ptrReg, insn.X9))
		}
	}
	a.I(insn.STR(ptrReg, objReg, off))
}

// SignedFieldLoad emits the <field>() getter pattern of Listing 4: load
// the signed pointer from [objReg + off] into dst and authenticate it.
//
//	ldr  dst, [obj, #off]
//	mov  w9, #tc
//	bfi  x9, obj, #16, #48
//	autdb dst, x9
//
// Clobbers x9.
func (c *Config) SignedFieldLoad(a *asm.Assembler, dst, objReg insn.Reg, off uint16, tc uint16, fnPtr bool) {
	a.I(insn.LDR(dst, objReg, off))
	if c.protects(fnPtr) {
		switch {
		case c.ZeroModifier && fnPtr:
			a.I(insn.AUTIZA(dst))
		case c.ZeroModifier:
			a.I(insn.AUTDZB(dst))
		case fnPtr:
			emitObjectModifier(a, insn.X9, objReg, tc)
			a.I(insn.AUTIA(dst, insn.X9))
		default:
			emitObjectModifier(a, insn.X9, objReg, tc)
			a.I(insn.AUTDB(dst, insn.X9))
		}
	}
}

// protects reports whether the config signs this class of pointer.
func (c *Config) protects(fnPtr bool) bool {
	if fnPtr {
		return c.ForwardCFI
	}
	return c.DFI
}

// emitObjectModifier emits the §4.3 modifier into rd:
//
//	mov w9, #tc            ; 16-bit type·member constant
//	bfi x9, obj, #16, #48  ; 48-bit object address above it
func emitObjectModifier(a *asm.Assembler, rd, objReg insn.Reg, tc uint16) {
	a.I(insn.MOVZW(rd, tc, 0))
	a.I(insn.BFI(rd, objReg, 16, 48))
}

// ObjectModifierValue mirrors emitObjectModifier for host-side computation
// (boot-time signing of the static pointer table, §4.6).
func ObjectModifierValue(objAddr uint64, tc uint16) uint64 {
	return pac.ObjectModifier(objAddr, tc)
}

// FramePush and FramePop are the paper's frame_push/frame_pop assembler
// macros (§5.2) for hand-written assembly such as cpu_switch_to and SIMD
// routines: functionally equivalent to the compiler-emitted sequences.
func (c *Config) FramePush(a *asm.Assembler, fnLabel string) { c.Prologue(a, fnLabel) }

// FramePop closes a FramePush frame.
func (c *Config) FramePop(a *asm.Assembler, fnLabel string) { c.Epilogue(a, fnLabel) }

// --- synthetic function generation for workload construction ---

// FuncSpec describes one synthetic kernel function. The lmbench and
// user-workload reproductions are call trees of these; the instrumentation
// overhead then scales with call-tree shape exactly as it does in the real
// kernel (§6.1.3: "the impact is due to a comparatively high rate of
// function calls to computation").
type FuncSpec struct {
	// Name is the function's label.
	Name string
	// ALU is the number of arithmetic body instructions.
	ALU int
	// Loads and Stores are data accesses performed on the stack frame.
	Loads, Stores int
	// Calls are direct callees, invoked in order.
	Calls []string
	// Leaf omits the frame record (and hence all instrumentation), as
	// compilers do for frameless leaves (§6.1.2: "except for functions
	// optimized to omit their stack frame").
	Leaf bool
}

// EmitFunc emits one synthetic function with the config's instrumentation.
// Non-leaf functions reserve a 32-byte local area addressed off SP.
func (c *Config) EmitFunc(a *asm.Assembler, spec FuncSpec) {
	if spec.Leaf {
		a.Label(spec.Name)
		emitBody(a, spec)
		a.I(insn.RET())
		return
	}
	a.Label(spec.Name)
	c.Prologue(a, spec.Name)
	a.I(insn.SUBi(insn.SP, insn.SP, 32))
	emitBody(a, spec)
	for _, callee := range spec.Calls {
		a.BL(callee)
	}
	a.I(insn.ADDi(insn.SP, insn.SP, 32))
	c.Epilogue(a, spec.Name)
}

func emitBody(a *asm.Assembler, spec FuncSpec) {
	for i := 0; i < spec.ALU; i++ {
		a.I(insn.ADDi(insn.X10, insn.X10, 1))
	}
	base := insn.Reg(insn.SP)
	if spec.Leaf {
		// Leaves have no reserved frame; use x11 as a scratch pointer the
		// caller provides (the generator wires x11 to a scratch page).
		base = insn.X11
	}
	for i := 0; i < spec.Stores; i++ {
		a.I(insn.STR(insn.X10, base, uint16(8*(i%4))))
	}
	for i := 0; i < spec.Loads; i++ {
		a.I(insn.LDR(insn.X12, base, uint16(8*(i%4))))
	}
}

// InstrumentationInstrs returns the number of extra instructions the
// scheme adds per protected function (prologue + epilogue), used by tests
// and the Figure 2 analysis.
func InstrumentationInstrs(s Scheme) int {
	switch s {
	case SchemeClangSP:
		return 2 // pacib + autib
	case SchemePARTS:
		return 12 // 2 × (movz+movk+movk+mov+bfi+pac)
	case SchemeCamouflage:
		return 8 // 2 × (adr+mov+bfi+pac)
	case SchemeCamouflageCompat:
		return 14 // 2 × (adr+mov+bfi+mov+hint+mov)
	}
	return 0
}

// ExpectedOverheadCycles returns the analytic per-call cycle overhead of a
// scheme under the cost model (PAuth = 4 cycles, ALU = 1), for
// cross-checking the measured Figure 2 results.
func ExpectedOverheadCycles(s Scheme) uint64 {
	switch s {
	case SchemeClangSP:
		return 2 * 4
	case SchemePARTS:
		// movz(1) + movk(1)×2 + mov(1) + bfi(1) + pac(4) per side.
		return 2 * (1 + 1 + 1 + 1 + 1 + 4)
	case SchemeCamouflage:
		// adr(1) + mov(1) + bfi(1) + pac(4) per side.
		return 2 * (1 + 1 + 1 + 4)
	case SchemeCamouflageCompat:
		// adr(1)+mov(1)+bfi(1)+mov(1)+hint(4)+mov(1) per side.
		return 2 * (1 + 1 + 1 + 1 + 4 + 1)
	}
	return 0
}
