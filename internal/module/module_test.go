package module

import (
	"strings"
	"testing"

	"camouflage/internal/codegen"
	"camouflage/internal/cpu"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/pac"
)

func bootFull(t *testing.T) *kernel.Kernel {
	t.Helper()
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigFull(), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	return k
}

// buildEchoDriver builds a module exporting a driver whose read fills the
// buffer with a constant byte, including a DECLARE_WORK-style statically
// initialised function pointer.
func buildEchoDriver(cfg *codegen.Config) *Image {
	b := NewBuilder("echo", cfg)
	a := b.A

	// Driver read: fill buffer with 0x55.
	a.Label("echo_read")
	cfg.Prologue(a, "echo_read")
	a.I(insn.MOVImm64(insn.X9, 0x5555555555555555)...)
	a.I(insn.ORRr(insn.X10, insn.XZR, insn.X2, 0))
	a.Label("echo_read.loop")
	a.I(insn.MOVZ(insn.X11, 8, 0))
	a.I(insn.CMP(insn.X10, insn.X11))
	a.Bcond(insn.CC, "echo_read.done")
	a.I(insn.STR(insn.X9, insn.X1, 0))
	a.I(insn.ADDi(insn.X1, insn.X1, 8))
	a.I(insn.SUBi(insn.X10, insn.X10, 8))
	a.B("echo_read.loop")
	a.Label("echo_read.done")
	a.I(insn.ORRr(insn.X0, insn.XZR, insn.X2, 0))
	cfg.Epilogue(a, "echo_read")

	a.Label("echo_trivial")
	a.I(insn.MOVZ(insn.X0, 0, 0))
	a.I(insn.RET())

	// A module work handler referenced by a static work_struct.
	a.Label("echo_work")
	a.I(insn.MOVZ(insn.X0, 7, 0))
	a.I(insn.RET())

	// Data: ops table (module data is writable, so under full protection
	// a real deployment would place this in .rodata; keeping it in data
	// exercises the signed static-pointer path) and the work object.
	a.Section(".moddata")
	a.Label("echo_ops")
	a.QuadAddr("echo_trivial", 0) // open
	a.QuadAddr("echo_trivial", 0) // release
	a.QuadAddr("echo_read", 0)    // read
	a.QuadAddr("echo_trivial", 0) // write
	a.QuadAddr("echo_trivial", 0) // poll

	a.Label("echo_static_work")
	a.QuadAddr("echo_work", 0)
	a.Quad(0)

	b.AddPauthEntry(PauthEntry{
		SlotLabel:      "echo_static_work",
		SlotOff:        0,
		ObjLabel:       "echo_static_work",
		InstructionKey: true,
		TypeConst:      pac.TypeConst("work_struct", "func"),
	})
	b.ExportDriver(77, "echo_ops")
	return b.Build()
}

func TestLoadModuleAndUseDriver(t *testing.T) {
	k := bootFull(t)
	img := buildEchoDriver(k.Cfg)
	loaded, err := Load(k, img)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Symbols["echo_read"] == 0 {
		t.Fatal("echo_read symbol missing")
	}

	// Open the module's device from user space and read through the
	// authenticated f_ops path.
	prog, err := kernel.BuildProgram("use-echo", func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, 77, 0)
		u.A.I(insn.ORRr(insn.X20, insn.XZR, insn.X0, 0))
		u.A.I(insn.ORRr(insn.X0, insn.XZR, insn.X20, 0))
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.MovImm(insn.X2, 32)
		u.SyscallReg(kernel.SysRead)
		u.MovImm(insn.X1, kernel.UserDataBase)
		u.A.I(insn.STR(insn.X0, insn.X1, 32))
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RegisterProgram(1, prog)
	if _, err := k.Spawn(1); err != nil {
		t.Fatal(err)
	}
	stop := k.Run(20_000_000)
	if stop.Kind != cpu.StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	pa := kernel.UVAToPA(1, kernel.UserDataBase)
	if got := k.CPU.Bus.RAM.Read64(pa); got != 0x5555555555555555 {
		t.Fatalf("driver read produced %#x", got)
	}
	if got := k.CPU.Bus.RAM.Read64(pa + 32); got != 32 {
		t.Fatalf("driver read returned %d", got)
	}
	if k.CPU.PACFailures != 0 {
		t.Fatalf("PAC failures during module driver use: %d", k.CPU.PACFailures)
	}
}

func TestModuleStaticPointerSignedAtLoad(t *testing.T) {
	k := bootFull(t)
	img := buildEchoDriver(k.Cfg)
	loaded, err := Load(k, img)
	if err != nil {
		t.Fatal(err)
	}
	slot := loaded.Symbols["echo_static_work"]
	raw := loaded.Symbols["echo_work"]
	stored := k.CPU.Bus.RAM.Read64(kernel.KVAToPA(slot))
	if stored == raw {
		t.Fatal("module static pointer left unsigned at load (§4.6)")
	}
	got, ok := SignedPtrAuthenticates(k, slot, slot,
		pac.TypeConst("work_struct", "func"), true)
	if !ok || got != raw {
		t.Fatalf("module pointer does not authenticate: (%#x, %v)", got, ok)
	}
}

func TestModuleUnsignedWhenUnprotected(t *testing.T) {
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigNone(), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	img := buildEchoDriver(k.Cfg)
	loaded, err := Load(k, img)
	if err != nil {
		t.Fatal(err)
	}
	slot := loaded.Symbols["echo_static_work"]
	if got := k.CPU.Bus.RAM.Read64(kernel.KVAToPA(slot)); got != loaded.Symbols["echo_work"] {
		t.Fatalf("baseline module pointer signed: %#x", got)
	}
}

// TestMaliciousKeyReaderRejected is the §4.1/§6.2.2 gate: a module
// containing an MRS from a key register is rejected at load.
func TestMaliciousKeyReaderRejected(t *testing.T) {
	k := bootFull(t)
	b := NewBuilder("spy", k.Cfg)
	a := b.A
	a.Label("spy_init")
	a.I(insn.MRS(insn.X0, insn.APIBKeyLo_EL1)) // steal the CFI key
	a.I(insn.RET())
	if _, err := Load(k, b.Build()); err == nil {
		t.Fatal("key-reading module accepted")
	} else if !strings.Contains(err.Error(), "PAuth key read") {
		t.Fatalf("wrong rejection reason: %v", err)
	}
}

// TestSCTLRTamperingModuleRejected: a module trying to clear the PAuth
// enable bits is rejected.
func TestSCTLRTamperingModuleRejected(t *testing.T) {
	k := bootFull(t)
	b := NewBuilder("tamper", k.Cfg)
	a := b.A
	a.Label("tamper_init")
	a.I(insn.MOVZ(insn.X0, 0, 0))
	a.I(insn.MSR(insn.SCTLR_EL1, insn.X0))
	a.I(insn.RET())
	if _, err := Load(k, b.Build()); err == nil {
		t.Fatal("SCTLR-writing module accepted")
	} else if !strings.Contains(err.Error(), "SCTLR_EL1 write") {
		t.Fatalf("wrong rejection reason: %v", err)
	}
}

// TestKeyWritingModuleRejected: only the XOM setter may install keys.
func TestKeyWritingModuleRejected(t *testing.T) {
	k := bootFull(t)
	b := NewBuilder("keywriter", k.Cfg)
	a := b.A
	a.Label("kw_init")
	a.I(insn.MOVZ(insn.X0, 0xBAD, 0))
	a.I(insn.MSR(insn.APIAKeyLo_EL1, insn.X0))
	a.I(insn.RET())
	if _, err := Load(k, b.Build()); err == nil {
		t.Fatal("key-writing module accepted")
	}
}

func TestTwoModulesGetDistinctRanges(t *testing.T) {
	k := bootFull(t)
	m1, err := Load(k, buildEchoDriver(k.Cfg))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("second", k.Cfg)
	b.A.Label("second_fn")
	b.A.I(insn.RET())
	m2, err := Load(k, b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if m1.TextBase == m2.TextBase {
		t.Fatal("modules share a load address")
	}
}
