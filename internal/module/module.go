// Package module implements loadable kernel modules (LKMs) for the
// Camouflage kernel: a relocatable image format with text, data and a
// .pauth_ptrs section (§4.6), and a loader that
//
//  1. links the module at its load address (run-time relocation),
//  2. runs the §4.1 static-analysis gate over the module text — rejecting
//     any code that reads PAuth key registers or writes SCTLR_EL1,
//  3. maps the sections with the appropriate permissions, and
//  4. signs the module's statically initialised pointers in place by
//     invoking the kernel's sign_ptr_table routine as guest code ("an
//     equivalent procedure is applied when loading an LKM at run-time").
//
// Because Camouflage's return-address modifier needs no link-time
// optimisation (unlike PARTS, §7), modules are instrumented exactly like
// the core kernel.
package module

import (
	"encoding/binary"
	"fmt"

	"camouflage/internal/analysis"
	"camouflage/internal/asm"
	"camouflage/internal/codegen"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// PauthEntry declares one statically initialised signed pointer in the
// module (a DECLARE_WORK-style table entry): the slot at slotLabel+slotOff
// holds a raw pointer that must be signed under the object at objLabel
// with the given key class and type constant.
type PauthEntry struct {
	SlotLabel string
	SlotOff   int64
	ObjLabel  string
	// InstructionKey selects IA (true) or DB (false).
	InstructionKey bool
	TypeConst      uint16
}

// Builder assembles a module.
type Builder struct {
	// A is the module assembler; code goes to ".modtext", data to
	// ".moddata".
	A    *asm.Assembler
	name string
	cfg  *codegen.Config

	pauth []PauthEntry
	// opsExports maps a path id to the ops-table label the module
	// registers as a driver.
	opsExports map[int]string
}

// NewBuilder starts a module. cfg must match the kernel's instrumentation
// configuration (modules are compiled with the same flags).
func NewBuilder(name string, cfg *codegen.Config) *Builder {
	a := asm.New()
	a.Section(".modtext")
	return &Builder{A: a, name: name, cfg: cfg, opsExports: make(map[int]string)}
}

// Config returns the instrumentation config modules are built with.
func (b *Builder) Config() *codegen.Config { return b.cfg }

// AddPauthEntry registers a statically initialised signed pointer.
func (b *Builder) AddPauthEntry(e PauthEntry) { b.pauth = append(b.pauth, e) }

// ExportDriver registers an ops table (by label) to be exposed as a
// device under the given path id when the module is loaded.
func (b *Builder) ExportDriver(pathID int, opsLabel string) {
	b.opsExports[pathID] = opsLabel
}

// Image is the built, unlinked module.
type Image struct {
	name       string
	asm        *asm.Assembler
	pauth      []PauthEntry
	opsExports map[int]string
}

// Build finalises the module: it emits the .pauth_ptrs table from the
// registered entries.
func (b *Builder) Build() *Image {
	b.A.Section(".modpauth")
	b.A.Label("mod_pauth_table")
	b.A.Quad(uint64(len(b.pauth)))
	for _, e := range b.pauth {
		b.A.QuadAddr(e.SlotLabel, e.SlotOff)
		b.A.QuadAddr(e.ObjLabel, 0)
		if e.InstructionKey {
			b.A.Quad(1)
		} else {
			b.A.Quad(0)
		}
		b.A.Quad(uint64(e.TypeConst))
	}
	return &Image{name: b.name, asm: b.A, pauth: b.pauth, opsExports: b.opsExports}
}

// Loaded describes a successfully loaded module.
type Loaded struct {
	Name    string
	Symbols map[string]uint64
	// TextBase/DataBase are the load addresses chosen by the kernel.
	TextBase, DataBase uint64
}

// Load links, verifies, maps and initialises the module in the kernel.
func Load(k *kernel.Kernel, img *Image) (*Loaded, error) {
	// 1. Run-time relocation: link at freshly allocated addresses.
	textVA := k.AllocModuleRange(0x10000)
	dataVA := k.AllocModuleRange(0x10000)
	pauthVA := k.AllocModuleRange(0x10000)
	linked, err := img.asm.Link(map[string]uint64{
		".modtext":  textVA,
		".moddata":  dataVA,
		".modpauth": pauthVA,
		".text":     pauthVA + 0x8000, // default section; usually empty
	})
	if err != nil {
		return nil, fmt.Errorf("module %s: link: %w", img.name, err)
	}

	// 2. Static-analysis gate (§4.1): reject key reads and SCTLR writes
	// before the module ever executes.
	text := linked.Sections[".modtext"].Bytes
	if err := analysis.VerifyModuleText(text); err != nil {
		return nil, fmt.Errorf("module %s: %w", img.name, err)
	}

	// 3. Map and install.
	k.WriteKernelMemory(textVA, text)
	k.MapKernelRange(textVA, uint64(len(text))+mmu.PageSize, mmu.KernelText)
	if d := linked.Sections[".moddata"]; d != nil && len(d.Bytes) > 0 {
		k.WriteKernelMemory(dataVA, d.Bytes)
		k.MapKernelRange(dataVA, uint64(len(d.Bytes))+mmu.PageSize, mmu.KernelData)
	} else {
		k.MapKernelRange(dataVA, mmu.PageSize, mmu.KernelData)
	}
	p := linked.Sections[".modpauth"]
	k.WriteKernelMemory(pauthVA, p.Bytes)
	k.MapKernelRange(pauthVA, uint64(len(p.Bytes))+mmu.PageSize, mmu.KernelData)

	// 4. Sign the module's static pointers in place, as guest code, with
	// the kernel's own routine (the keys never leave the machine).
	if (img.cfgDFI(k) || img.cfgFwd(k)) && len(img.pauth) > 0 {
		if err := k.CallGuestRegs(k.Img.Symbols["sign_ptr_table"],
			map[insn.Reg]uint64{insn.X10: linked.Symbols["mod_pauth_table"]}); err != nil {
			return nil, fmt.Errorf("module %s: pointer signing: %w", img.name, err)
		}
	}

	// 5. Register exported drivers.
	for pathID, label := range img.opsExports {
		va, ok := linked.Symbols[label]
		if !ok {
			return nil, fmt.Errorf("module %s: exported ops label %q undefined", img.name, label)
		}
		k.RegisterDriverOps(pathID, va)
	}

	return &Loaded{
		Name:     img.name,
		Symbols:  linked.Symbols,
		TextBase: textVA,
		DataBase: dataVA,
	}, nil
}

func (img *Image) cfgDFI(k *kernel.Kernel) bool { return k.Cfg.DFI }
func (img *Image) cfgFwd(k *kernel.Kernel) bool { return k.Cfg.ForwardCFI }

// ReadWord is a test helper to fetch a module text word after load.
func ReadWord(k *kernel.Kernel, va uint64) uint32 {
	return binary.LittleEndian.Uint32(k.CPU.Bus.RAM.ReadBytes(kernel.KVAToPA(va), 4))
}

// SignedPtrAuthenticates checks (host-side) that a module slot was signed
// correctly during load.
func SignedPtrAuthenticates(k *kernel.Kernel, slotVA, objVA uint64, tc uint16, instructionKey bool) (uint64, bool) {
	v := k.CPU.Bus.RAM.Read64(kernel.KVAToPA(slotVA))
	mod := pac.ObjectModifier(objVA, tc)
	id := pac.KeyDB
	if instructionKey {
		id = pac.KeyIA
	}
	return k.CPU.Signer.Auth(v, mod, id)
}
