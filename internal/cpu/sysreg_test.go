package cpu

import (
	"testing"

	"camouflage/internal/insn"
	"camouflage/internal/pac"
)

// TestAllKeyRegistersRoundTrip exercises every PAuth key register pair
// through the MSR/MRS paths and checks the signer bank tracks them.
func TestAllKeyRegistersRoundTrip(t *testing.T) {
	c := New(Features{PAuth: true})
	regs := []struct {
		lo, hi insn.SysReg
		id     pac.KeyID
	}{
		{insn.APIAKeyLo_EL1, insn.APIAKeyHi_EL1, pac.KeyIA},
		{insn.APIBKeyLo_EL1, insn.APIBKeyHi_EL1, pac.KeyIB},
		{insn.APDAKeyLo_EL1, insn.APDAKeyHi_EL1, pac.KeyDA},
		{insn.APDBKeyLo_EL1, insn.APDBKeyHi_EL1, pac.KeyDB},
		{insn.APGAKeyLo_EL1, insn.APGAKeyHi_EL1, pac.KeyGA},
	}
	for i, r := range regs {
		lo := uint64(0x1000 + i)
		hi := uint64(0x2000 + i)
		if err := c.WriteSys(r.lo, lo); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteSys(r.hi, hi); err != nil {
			t.Fatal(err)
		}
		if got := c.Signer.Key(r.id); got.Lo != lo || got.Hi != hi {
			t.Fatalf("%v: signer bank = %+v", r.id, got)
		}
		gotLo, err := c.ReadSys(r.lo)
		if err != nil {
			t.Fatal(err)
		}
		gotHi, err := c.ReadSys(r.hi)
		if err != nil {
			t.Fatal(err)
		}
		if gotLo != lo || gotHi != hi {
			t.Fatalf("%v: MRS = (%#x, %#x)", r.id, gotLo, gotHi)
		}
	}
}

// TestAllNamedSysRegsRoundTrip covers the named system-register file.
func TestAllNamedSysRegsRoundTrip(t *testing.T) {
	c := New(Features{PAuth: true})
	regs := []insn.SysReg{
		insn.SCTLR_EL1, insn.VBAR_EL1, insn.ELR_EL1, insn.SPSR_EL1,
		insn.ESR_EL1, insn.FAR_EL1, insn.TTBR0_EL1, insn.TTBR1_EL1,
		insn.CONTEXTIDR_EL1, insn.TPIDR_EL1, insn.SP_EL0,
	}
	for i, r := range regs {
		v := uint64(0xA0 + i)
		if err := c.WriteSys(r, v); err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		got, err := c.ReadSys(r)
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if got != v {
			t.Fatalf("%v: read %#x, want %#x", r, got, v)
		}
	}
}

func TestReadOnlyCounters(t *testing.T) {
	c := New(Features{PAuth: true})
	c.Cycles = 1234
	for _, r := range []insn.SysReg{insn.PMCCNTR_EL0, insn.CNTVCT_EL0} {
		v, err := c.ReadSys(r)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1234 {
			t.Fatalf("%v = %d", r, v)
		}
	}
	if v, _ := c.ReadSys(insn.CNTFRQ_EL0); v != ClockHz {
		t.Fatalf("CNTFRQ = %d", v)
	}
}

func TestUnknownSysRegErrors(t *testing.T) {
	c := New(Features{PAuth: true})
	bogus := insn.SysReg(0x7FFF)
	if err := c.WriteSys(bogus, 1); err == nil {
		t.Fatal("write to unknown sysreg accepted")
	}
	if _, err := c.ReadSys(bogus); err == nil {
		t.Fatal("read of unknown sysreg accepted")
	}
}

func TestKeyAccessWithoutPAuthErrors(t *testing.T) {
	c := New(Features{PAuth: false})
	if err := c.WriteSys(insn.APIAKeyLo_EL1, 1); err == nil {
		t.Fatal("key write accepted on v8.0")
	}
	if _, err := c.ReadSys(insn.APIAKeyLo_EL1); err == nil {
		t.Fatal("key read accepted on v8.0")
	}
}

// TestPAuthEnableBitsGateEachKey checks each SCTLR enable bit
// independently gates its key's instructions.
func TestPAuthEnableBitsGateEachKey(t *testing.T) {
	cases := []struct {
		bit  uint64
		id   pac.KeyID
		sign func(*CPU, uint64, uint64) uint64
	}{
		{insn.SCTLREnIA, pac.KeyIA, func(c *CPU, v, m uint64) uint64 {
			c.X[0], c.X[1] = v, m
			c.pacSign(insn.X0, insn.X1, pac.KeyIA)
			return c.X[0]
		}},
		{insn.SCTLREnIB, pac.KeyIB, func(c *CPU, v, m uint64) uint64 {
			c.X[0], c.X[1] = v, m
			c.pacSign(insn.X0, insn.X1, pac.KeyIB)
			return c.X[0]
		}},
		{insn.SCTLREnDA, pac.KeyDA, func(c *CPU, v, m uint64) uint64 {
			c.X[0], c.X[1] = v, m
			c.pacSign(insn.X0, insn.X1, pac.KeyDA)
			return c.X[0]
		}},
		{insn.SCTLREnDB, pac.KeyDB, func(c *CPU, v, m uint64) uint64 {
			c.X[0], c.X[1] = v, m
			c.pacSign(insn.X0, insn.X1, pac.KeyDB)
			return c.X[0]
		}},
	}
	ptr := uint64(pac.KernelBase) | 0x4000
	for _, tc := range cases {
		c := New(Features{PAuth: true})
		c.Signer.SetKey(tc.id, pac.Key{Hi: 9, Lo: 9})
		c.SCTLR = 0 // disabled: sign is a NOP
		if got := tc.sign(c, ptr, 7); got != ptr {
			t.Errorf("%v: sign modified pointer with enable bit clear", tc.id)
		}
		c.SCTLR = tc.bit // enabled: sign inserts a PAC
		if got := tc.sign(c, ptr, 7); got == ptr {
			t.Errorf("%v: sign was a NOP with enable bit set", tc.id)
		}
	}
}

// TestGAKeyHasNoEnableBit: PACGA works regardless of SCTLR (no EnGA
// exists in the architecture).
func TestGAKeyHasNoEnableBit(t *testing.T) {
	c := New(Features{PAuth: true})
	c.SCTLR = 0
	if !c.pauthEnabled(pac.KeyGA) {
		t.Fatal("GA gated by SCTLR; the architecture has no such bit")
	}
}
