package cpu

import (
	"encoding/binary"
	"sync/atomic"

	"camouflage/internal/insn"
	"camouflage/internal/mem"
	"camouflage/internal/mmu"
	"camouflage/internal/obs"
)

// storeCellFor snapshots the cluster's cell epoch and the generation
// cell of physical page pn — the pair the in-trace store memo caches so
// that memoed stores run the code-invalidation contract without a
// noteGuestStore call.
func (c *CPU) storeCellFor(pn uint64) (uint64, *atomic.Uint64) {
	return c.cluster.cellEpoch.Load(), c.cluster.lookup(pn)
}

// hostLoad64/hostStore64 are the host-pointer page accessors shared by
// the inline LDP/STP cases (identical to execute's inlined forms).
func hostLoad64(pg *[mem.PageSize]byte, off uint64) uint64 {
	return binary.LittleEndian.Uint64(pg[off : off+8])
}

func hostStore64(pg *[mem.PageSize]byte, off uint64, v uint64) {
	binary.LittleEndian.PutUint64(pg[off:off+8], v)
}

// hostLoadN/hostStoreN are the sized variants backing the single-register
// load/store fast paths (same truncation rules as loadMem/storeMem).
func hostLoadN(pg *[mem.PageSize]byte, off, size uint64) uint64 {
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(pg[off : off+8])
	case 4:
		return uint64(binary.LittleEndian.Uint32(pg[off : off+4]))
	default:
		return uint64(pg[off])
	}
}

func hostStoreN(pg *[mem.PageSize]byte, off, size, v uint64) {
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(pg[off:off+8], v)
	case 4:
		binary.LittleEndian.PutUint32(pg[off:off+4], uint32(v))
	default:
		pg[off] = byte(v)
	}
}

// Superblock (trace) execution: when a decoded block stays hot — it keeps
// being entered through the block cache — its chain of resolved direct
// successors is fused into a single straight-line trace. A trace executes
// from one flat instruction array with the hottest opcodes dispatched
// inline, paying the per-block epilogue work (chain validation, edge
// resolution, execGen snapshots) once per trace entry instead of once per
// basic block, and — for loop-shaped traces — re-entering the loop body
// with only an IRQ/budget/execGen check.
//
// Validity is the same §3 contract a chain edge obeys, hoisted to trace
// granularity:
//
//	clause                  checked              severs on
//	----------------------  -------------------  ------------------------
//	entry VA == build VA    every entry          VA aliasing of the entry PA
//	constituent pageGens    every entry          any store into a fused page
//	                                             (self- or cross-CPU), and
//	                                             InvalidateDecode/RestoreState
//	TT0/TT1 identity+gen    every entry          context switch, map/unmap
//	S2 gen+enable           every entry          stage-2 Restrict/Clear
//	EL, MMU enable          every entry          exception, ERET, MMU toggle
//	execGen                 after store-class    any code-page store anywhere
//	                        instrs and at each   in the cluster, mid-trace
//	                        loop back-edge
//
// A clause failing at entry falls back to ordinary block execution (the
// trace is dropped only when a constituent block itself went stale); a
// clause failing mid-trace side-exits with fully architectural state,
// because every instruction retires exactly as it would under execute().
const (
	// hotThreshold is how many times a block is entered before its chain
	// is fused into a trace. Low enough to catch benchmark and syscall
	// loops within their first iterations, high enough that one-shot
	// boot code never pays a build.
	hotThreshold = 16

	// maxTraceBlocks and maxTraceInstrs bound fusion: a trace never holds
	// more than this many constituent blocks or instructions.
	maxTraceBlocks = 16
	maxTraceInstrs = 512

	// ibtbSize is the direct-mapped indirect-branch target cache size
	// (slots of resolved chainEdges keyed by the low PC bits). It covers
	// the block transitions direct chaining cannot: BR/BLR/RET and the
	// authenticated forms, ERET returns, and exception-vector entries.
	ibtbSize = 128
)

// trace is one fused superblock: the concatenated instructions of a run
// of chained basic blocks, the expected successor PC after each
// instruction (uniform side-exit check covering fall-through and fused
// branch targets alike), the constituent blocks (whose shared generation
// cells the entry check validates), and one translation-regime snapshot
// — the builder only fuses edges whose snapshots are identical, so a
// single regime comparison at entry covers every constituent mapping.
type trace struct {
	entryVA uint64
	instrs  []insn.Instr
	succ    []uint64 // expected PC after instrs[k] retires

	blocks []*codeBlock

	// lastGen is the cluster execGen value as of the last full
	// constituent-block validation (build time, or a re-arm in
	// traceValid): while execGen is unmoved no generation cell anywhere
	// can have moved either — every cell bump also bumps execGen — so
	// entry validation is one atomic load instead of a per-block walk.
	lastGen uint64

	table *mmu.Table
	tgen  uint64
	s2gen uint64
	s2en  bool
	tt1   bool
	mmuOn bool
	el    int8

	// looping marks a trace whose last fused successor is its own entry
	// (a loop body): the execution loop re-enters the body directly,
	// re-checking only IRQ, budget and execGen.
	looping bool
}

// traceValid reports whether t may run right now from entryVA: every
// constituent block's generation cell is unmoved and the translation
// regime still matches the build-time snapshot (see the clause table
// above). The caller has just fetched or chain-validated the entry
// block, so the entry mapping itself is current.
func (c *CPU) traceValid(t *trace, entryVA uint64) bool {
	if entryVA != t.entryVA {
		return false
	}
	if g := c.cluster.execGen.Load(); g != t.lastGen {
		for _, b := range t.blocks {
			if b.gen != b.genp.Load() {
				return false
			}
		}
		// All cells individually unmoved: re-arm the one-load fast check
		// with the execGen value read before the walk (a bump landing
		// mid-walk re-triggers the walk on the next entry — conservative,
		// never stale).
		t.lastGen = g
	}
	m := c.MMU
	if m.Enabled != t.mmuOn || int8(c.EL) != t.el {
		return false
	}
	if !t.mmuOn {
		return true
	}
	table := m.TT0
	if t.tt1 {
		table = m.TT1
	}
	return t.table == table && t.tgen == table.Gen() &&
		t.s2gen == m.S2.Gen() && t.s2en == m.S2.Enabled
}

// traceStale reports whether a constituent block's code was invalidated
// (as opposed to a transient regime mismatch): only then is the trace
// really dead and worth dropping for a rebuild.
func traceStale(t *trace) bool {
	for _, b := range t.blocks {
		if b.gen != b.genp.Load() {
			return true
		}
	}
	return false
}

// buildTrace fuses the chain starting at block b (entered at entryVA)
// into a trace and attaches it to b. Fusion walks resolved chain edges —
// preferring a conditional branch's taken exit, falling back to its
// sequential exit — and stops at any unresolved or stale edge, any edge
// whose regime snapshot differs from the trace's, any block revisit
// (closing the loop when the revisit is the entry itself), or the size
// caps. A trace is attached even when nothing fuses: a single hot block
// still wins from the inline dispatch loop.
func (c *CPU) buildTrace(b *codeBlock, entryVA uint64) {
	m := c.MMU
	t := &trace{entryVA: entryVA, mmuOn: m.Enabled, el: int8(c.EL)}
	// Snapshot execGen before walking the constituents: a bump landing
	// mid-build leaves lastGen behind the cell state, which only costs
	// one full re-validation at the first entry.
	t.lastGen = c.cluster.execGen.Load()
	if m.Enabled {
		t.tt1 = m.KernelSide(entryVA)
		table := m.TT0
		if t.tt1 {
			table = m.TT1
		}
		t.table, t.tgen = table, table.Gen()
		t.s2gen, t.s2en = m.S2.Gen(), m.S2.Enabled
	}
	va := entryVA
	cur := b
	for {
		if cur.gen != cur.genp.Load() {
			return // constituent went stale mid-build; don't attach
		}
		t.blocks = append(t.blocks, cur)
		for k := range cur.instrs {
			t.instrs = append(t.instrs, cur.instrs[k])
			t.succ = append(t.succ, va+uint64(k+1)*insn.Size)
		}
		if len(t.blocks) >= maxTraceBlocks || len(t.instrs) >= maxTraceInstrs {
			break
		}
		last := len(cur.instrs) - 1
		lastVA := va + uint64(last)*insn.Size
		lastOp := cur.instrs[last].Op

		// Pick the edge to fuse: the taken exit of a direct branch first
		// (loop back-edges live there), else the sequential exit of a
		// conditional or a block that spilled past the page/size cap.
		var e *chainEdge
		var nextVA uint64
		switch {
		case directBranch(lastOp):
			e, nextVA = &cur.taken, lastVA+uint64(cur.instrs[last].Imm)
			if !c.fusable(e, nextVA, t) && condBranch(lastOp) {
				e, nextVA = &cur.fall, lastVA+insn.Size
			}
		case !endsBlock(lastOp):
			e, nextVA = &cur.fall, lastVA+insn.Size
		default:
			// SVC, ERET, MSR, indirect/authenticated branch, HLT,
			// Invalid: never fused across.
			goto done
		}
		if !c.fusable(e, nextVA, t) {
			break
		}
		// Retarget the fused exit: after the branch retires, the PC must
		// be the fused successor — on any other outcome (conditional not
		// taken where the taken side was fused, or vice versa) the trace
		// side-exits with architectural state.
		t.succ[len(t.succ)-1] = nextVA
		if nextVA == entryVA {
			t.looping = true
			goto done
		}
		for _, seen := range t.blocks {
			if seen == e.to {
				goto done // inner revisit that isn't the entry: stop
			}
		}
		cur, va = e.to, nextVA
	}
done:
	b.tr = t
	c.TracesBuilt++
}

// condBranch reports whether op is a conditional direct branch (both
// exits exist and may be fused).
func condBranch(op insn.Op) bool {
	switch op {
	case insn.OpBcond, insn.OpCBZ, insn.OpCBNZ:
		return true
	}
	return false
}

// fusable reports whether chain edge e can be fused into trace t as the
// successor at nextVA: resolved, targeting a still-valid block at that
// PC, under exactly the trace's regime snapshot.
func (c *CPU) fusable(e *chainEdge, nextVA uint64, t *trace) bool {
	if e.to == nil || e.pc != nextVA || e.to.gen != e.to.genp.Load() {
		return false
	}
	if e.mmuOn != t.mmuOn || e.el != t.el {
		return false
	}
	if !t.mmuOn {
		return true
	}
	return e.table == t.table && e.tgen == t.tgen &&
		e.s2gen == t.s2gen && e.s2en == t.s2en && e.tt1 == t.tt1
}

// runTrace executes t until a side exit: an unfused branch outcome, an
// exception or fault, a mid-trace code invalidation (execGen), a
// deliverable IRQ after a store, the budget, or — for non-looping traces
// — simply the end of the body. Every instruction retires with exactly
// the accounting execute() would give it; the hot opcodes are dispatched
// inline, everything else falls back to execute(). done=true propagates
// a machine stop (HLT, error) exactly as Run's inner loop would.
//
// The loop is two-tiered. The first switch covers the pure ALU opcodes:
// they cannot fault, branch or store, so they retire with a constant
// one-cycle epilogue and no successor or hazard check at all — a
// straight-line instruction's PC provably advances to succ[idx]. The
// slow tier handles branches (successor check: an unfused outcome
// side-exits), loads (fault check), stores (fault + execGen/IRQ hazard
// checks — the only inline instructions that can patch code or raise an
// IRQ), and falls back to execute() for everything else.
//
// Cycle/retirement/budget accounting and the PC are carried in locals
// and flushed at every exit and before every call that can observe them
// (execute may read c.Cycles through MRS PMCCNTR/CNTVCT; aborts capture
// c.PC into ELR). The flush points keep the counters bit-identical to
// block-by-block execution.
//
// The caller guarantees: traceValid just passed, no IRQ is deliverable,
// no tracer is attached, and at least len(t.instrs) budget remains.
func (c *CPU) runTrace(t *trace, n *uint64, maxInstrs uint64) (stop Stop, done bool) {
	c.TraceFollows++
	startGen := c.cluster.execGen.Load()
	code := t.instrs
	succ := t.succ
	var cyc, ret uint64 // batched c.Cycles / c.Retired-and-budget deltas
	pc := c.PC
	// EL and the IRQ mask are constant across inline instructions (only
	// exceptions, ERET and MSR change them, and those all run under
	// execute and end the trace), so deliverability is decided once.
	canIRQ := t.el == 0 && !c.IRQMasked
	// Last-page memo for the inline memory ops: the translation regime is
	// frozen while a trace runs (every regime-changing instruction ends a
	// trace), so a HostData hit stays valid until something outside the
	// inline fast paths runs — a slow-path bus access or an execute()
	// fallback, both of which can reach devices that remap or reseat
	// pages. Those sites reset the memo. Loads and stores memo
	// separately: the access kinds carry different permissions.
	ldVP, stVP := ^uint64(0), ^uint64(0)
	var ldPG, stPG *[mem.PageSize]byte
	var stPN uint64
	// The store memo also caches the page's generation cell and the
	// cell-epoch it was looked up under: a memoed store then pays one
	// epoch load for the code-invalidation contract instead of a
	// noteGuestStore call (same trust rule as the CPU-wide cell memo —
	// a peer decoding from a fresh page bumps the epoch).
	var stCell *atomic.Uint64
	var stEpoch uint64
	for {
		for idx := 0; idx < len(code); idx++ {
			ins := &code[idx]
			op := ins.Op
			switch op {
			case insn.OpADDi:
				c.setRegSP(ins.Rd, c.regSP(ins.Rn)+uint64(ins.Imm)<<ins.Shift)
			case insn.OpSUBi:
				c.setRegSP(ins.Rd, c.regSP(ins.Rn)-uint64(ins.Imm)<<ins.Shift)
			case insn.OpEORr:
				c.SetReg(ins.Rd, c.Reg(ins.Rn)^c.Reg(ins.Rm)<<ins.Shift)
			case insn.OpADDr:
				c.SetReg(ins.Rd, c.Reg(ins.Rn)+c.Reg(ins.Rm)<<ins.Shift)
			case insn.OpSUBr:
				c.SetReg(ins.Rd, c.Reg(ins.Rn)-c.Reg(ins.Rm)<<ins.Shift)
			case insn.OpANDr:
				c.SetReg(ins.Rd, c.Reg(ins.Rn)&(c.Reg(ins.Rm)<<ins.Shift))
			case insn.OpORRr:
				c.SetReg(ins.Rd, c.Reg(ins.Rn)|c.Reg(ins.Rm)<<ins.Shift)
			case insn.OpSUBSr:
				a := c.Reg(ins.Rn)
				b := c.Reg(ins.Rm) << ins.Shift
				res := a - b
				c.SetReg(ins.Rd, res)
				c.N = res>>63 == 1
				c.Z = res == 0
				c.C = a >= b
				c.V = (a>>63 != b>>63) && (res>>63 != a>>63)
			case insn.OpANDSr:
				res := c.Reg(ins.Rn) & (c.Reg(ins.Rm) << ins.Shift)
				c.SetReg(ins.Rd, res)
				c.N = res>>63 == 1
				c.Z = res == 0
				c.C = false
				c.V = false
			case insn.OpMOVZ:
				v := uint64(uint16(ins.Imm)) << ins.Shift
				if !ins.SF {
					v = uint64(uint32(v))
				}
				c.SetReg(ins.Rd, v)
			case insn.OpMOVN:
				v := ^(uint64(uint16(ins.Imm)) << ins.Shift)
				if !ins.SF {
					v = uint64(uint32(v))
				}
				c.SetReg(ins.Rd, v)
			case insn.OpMOVK:
				v := c.Reg(ins.Rd)
				v = v&^(uint64(0xFFFF)<<ins.Shift) | uint64(uint16(ins.Imm))<<ins.Shift
				if !ins.SF {
					v = uint64(uint32(v))
				}
				c.SetReg(ins.Rd, v)
			case insn.OpADR:
				c.SetReg(ins.Rd, pc+uint64(ins.Imm))
			case insn.OpADRP:
				c.SetReg(ins.Rd, pc&^uint64(4095)+uint64(ins.Imm)*4096)
			case insn.OpUBFM:
				r := uint(ins.ImmR)
				s := uint(ins.ImmS)
				src := c.Reg(ins.Rn)
				var v uint64
				if s >= r {
					v = src >> r & maskBits(s-r+1)
				} else {
					v = (src & maskBits(s+1)) << (64 - r)
				}
				c.SetReg(ins.Rd, v)
			case insn.OpCSEL:
				if c.condHolds(ins.Cond) {
					c.SetReg(ins.Rd, c.Reg(ins.Rn))
				} else {
					c.SetReg(ins.Rd, c.Reg(ins.Rm))
				}
			case insn.OpLSLV:
				c.SetReg(ins.Rd, c.Reg(ins.Rn)<<(c.Reg(ins.Rm)&63))
			case insn.OpLSRV:
				c.SetReg(ins.Rd, c.Reg(ins.Rn)>>(c.Reg(ins.Rm)&63))
			case insn.OpNOP:
				// no architectural effect
			default:
				goto slow
			}
			// Fast epilogue: every op above costs exactly costALU and
			// provably advances pc to succ[idx].
			cyc++
			ret++
			pc += insn.Size
			continue

		slow:
			{
				next := pc + insn.Size
				switch op {
				case insn.OpB:
					next = pc + uint64(ins.Imm)
				case insn.OpBL:
					c.X[insn.LR] = pc + insn.Size
					next = pc + uint64(ins.Imm)
				case insn.OpBcond:
					if c.condHolds(ins.Cond) {
						next = pc + uint64(ins.Imm)
					}
				case insn.OpCBZ:
					if c.Reg(ins.Rd) == 0 {
						next = pc + uint64(ins.Imm)
					}
				case insn.OpCBNZ:
					if c.Reg(ins.Rd) != 0 {
						next = pc + uint64(ins.Imm)
					}

				case insn.OpLDR, insn.OpLDRW, insn.OpLDRB, insn.OpLDRpost:
					size := uint64(8)
					if op == insn.OpLDRW {
						size = 4
					} else if op == insn.OpLDRB {
						size = 1
					}
					base := c.regSP(ins.Rn)
					addr := base
					if op != insn.OpLDRpost {
						addr += uint64(ins.Imm)
					}
					off := addr & (mem.PageSize - 1)
					if addr>>mem.PageShift == ldVP && off+size <= mem.PageSize {
						c.SetReg(ins.Rd, hostLoadN(ldPG, off, size))
					} else if pg, o, _, ok := c.MMU.HostData(addr, c.EL, size, mmu.Load); ok {
						ldVP, ldPG = addr>>mem.PageShift, pg
						c.SetReg(ins.Rd, hostLoadN(pg, o, size))
					} else {
						ldVP, stVP = ^uint64(0), ^uint64(0)
						v, f, err := c.loadMem(addr, int(size))
						if err != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							return Stop{Kind: StopError, Err: err}, true
						}
						if f != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							c.obsLocal.V[obs.CTraceExitFault]++
							c.dataAbort(f)
							*n++
							return Stop{}, false
						}
						c.SetReg(ins.Rd, v)
					}
					if op == insn.OpLDRpost {
						c.setRegSP(ins.Rn, base+uint64(ins.Imm))
					}
					goto loaded
				case insn.OpLDP, insn.OpLDPpost:
					base := c.regSP(ins.Rn)
					addr := base
					if op == insn.OpLDP {
						addr = base + uint64(ins.Imm)
					}
					off := addr & (mem.PageSize - 1)
					if addr>>mem.PageShift == ldVP && off+16 <= mem.PageSize {
						c.SetReg(ins.Rd, hostLoad64(ldPG, off))
						c.SetReg(ins.Rm, hostLoad64(ldPG, off+8))
					} else if pg, o, _, ok := c.MMU.HostData(addr, c.EL, 16, mmu.Load); ok {
						ldVP, ldPG = addr>>mem.PageShift, pg
						c.SetReg(ins.Rd, hostLoad64(pg, o))
						c.SetReg(ins.Rm, hostLoad64(pg, o+8))
					} else {
						ldVP, stVP = ^uint64(0), ^uint64(0)
						v1, f, err := c.loadMem(addr, 8)
						if err != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							return Stop{Kind: StopError, Err: err}, true
						}
						if f == nil {
							var v2 uint64
							v2, f, err = c.loadMem(addr+8, 8)
							if err != nil {
								c.PC = pc
								c.flushTrace(n, cyc, ret)
								return Stop{Kind: StopError, Err: err}, true
							}
							if f == nil {
								c.SetReg(ins.Rd, v1)
								c.SetReg(ins.Rm, v2)
							}
						}
						if f != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							c.obsLocal.V[obs.CTraceExitFault]++
							c.dataAbort(f)
							*n++
							return Stop{}, false
						}
					}
					if op == insn.OpLDPpost {
						c.setRegSP(ins.Rn, base+uint64(ins.Imm))
					}
					goto loaded

				case insn.OpSTR, insn.OpSTRW, insn.OpSTRB, insn.OpSTRpre:
					size := uint64(8)
					if op == insn.OpSTRW {
						size = 4
					} else if op == insn.OpSTRB {
						size = 1
					}
					addr := c.regSP(ins.Rn) + uint64(ins.Imm)
					off := addr & (mem.PageSize - 1)
					if addr>>mem.PageShift == stVP && off+size <= mem.PageSize {
						if c.cluster.cellEpoch.Load() != stEpoch {
							stEpoch, stCell = c.storeCellFor(stPN)
						}
						if stCell != nil {
							stCell.Add(1)
							c.cluster.execGen.Add(1)
							c.obsLocal.V[obs.CBlockSever]++
						}
						hostStoreN(stPG, off, size, c.Reg(ins.Rd))
					} else if pg, o, pn, ok := c.MMU.HostData(addr, c.EL, size, mmu.Store); ok {
						stVP, stPG, stPN = addr>>mem.PageShift, pg, pn
						stEpoch, stCell = c.storeCellFor(pn)
						if stCell != nil {
							stCell.Add(1)
							c.cluster.execGen.Add(1)
							c.obsLocal.V[obs.CBlockSever]++
						}
						hostStoreN(pg, o, size, c.Reg(ins.Rd))
					} else {
						ldVP, stVP = ^uint64(0), ^uint64(0)
						f, err := c.storeMem(addr, int(size), c.Reg(ins.Rd))
						if err != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							return Stop{Kind: StopError, Err: err}, true
						}
						if f != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							c.obsLocal.V[obs.CTraceExitFault]++
							c.dataAbort(f)
							*n++
							return Stop{}, false
						}
					}
					if op == insn.OpSTRpre {
						c.setRegSP(ins.Rn, addr)
					}
					goto stored
				case insn.OpSTP, insn.OpSTPpre:
					base := c.regSP(ins.Rn)
					addr := base + uint64(ins.Imm)
					off := addr & (mem.PageSize - 1)
					if addr>>mem.PageShift == stVP && off+16 <= mem.PageSize {
						if c.cluster.cellEpoch.Load() != stEpoch {
							stEpoch, stCell = c.storeCellFor(stPN)
						}
						if stCell != nil {
							stCell.Add(1)
							c.cluster.execGen.Add(1)
							c.obsLocal.V[obs.CBlockSever]++
						}
						hostStore64(stPG, off, c.Reg(ins.Rd))
						hostStore64(stPG, off+8, c.Reg(ins.Rm))
					} else if pg, o, pn, ok := c.hostStorePair(addr); ok {
						stVP, stPG, stPN = addr>>mem.PageShift, pg, pn
						stEpoch, stCell = c.storeCellFor(pn)
						if stCell != nil {
							stCell.Add(1)
							c.cluster.execGen.Add(1)
							c.obsLocal.V[obs.CBlockSever]++
						}
						hostStore64(pg, o, c.Reg(ins.Rd))
						hostStore64(pg, o+8, c.Reg(ins.Rm))
					} else {
						ldVP, stVP = ^uint64(0), ^uint64(0)
						f, err := c.storeMem(addr, 8, c.Reg(ins.Rd))
						if err != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							return Stop{Kind: StopError, Err: err}, true
						}
						if f == nil {
							f, err = c.storeMem(addr+8, 8, c.Reg(ins.Rm))
							if err != nil {
								c.PC = pc
								c.flushTrace(n, cyc, ret)
								return Stop{Kind: StopError, Err: err}, true
							}
						}
						if f != nil {
							c.PC = pc
							c.flushTrace(n, cyc, ret)
							c.obsLocal.V[obs.CTraceExitFault]++
							c.dataAbort(f)
							*n++
							return Stop{}, false
						}
					}
					if op == insn.OpSTPpre {
						c.setRegSP(ins.Rn, addr)
					}
					goto stored

				case insn.OpInvalid:
					c.PC = pc
					c.flushTrace(n, cyc, ret)
					c.obsLocal.V[obs.CTraceExitFault]++
					c.undefined()
					*n++
					return Stop{}, false

				default:
					// Everything else — PAuth, MSR/MRS, SVC, ERET, HLT,
					// indirect branches — retires through execute, with
					// the architectural counters flushed first.
					c.PC = pc
					c.flushTrace(n, cyc, ret)
					cyc, ret = 0, 0
					c.obsLocal.V[obs.CSlowFallback]++
					stop, done = c.execute(ins)
					*n++
					if done {
						c.obsLocal.V[obs.CTraceExitStop]++
						return stop, true
					}
					ldVP, stVP = ^uint64(0), ^uint64(0)
					pc = c.PC
					if pc != succ[idx] {
						c.obsLocal.V[obs.CTraceExitBranch]++
						return Stop{}, false
					}
					if storeClass[op] {
						if c.cluster.execGen.Load() != startGen {
							c.obsLocal.V[obs.CTraceExitHazard]++
							return Stop{}, false
						}
						if canIRQ && c.IRQPending {
							c.obsLocal.V[obs.CTraceExitIRQ]++
							return Stop{}, false
						}
					}
					continue
				}
				// Branch epilogue: the only inline ops that can diverge
				// from the fused successor (costBranch == costALU == 1).
				cyc++
				ret++
				pc = next
				if pc != succ[idx] {
					c.PC = pc
					c.flushTrace(n, cyc, ret)
					c.obsLocal.V[obs.CTraceExitBranch]++
					return Stop{}, false
				}
				continue
			}

		loaded:
			cyc += costTab[op]
			ret++
			pc += insn.Size
			continue

		stored:
			// Store hazards: the store may have patched code anywhere in
			// the cluster (execGen) or hit a device that raised an IRQ.
			cyc += costTab[op]
			ret++
			pc += insn.Size
			if c.cluster.execGen.Load() != startGen || (canIRQ && c.IRQPending) {
				c.PC = pc
				c.flushTrace(n, cyc, ret)
				if c.cluster.execGen.Load() != startGen {
					c.obsLocal.V[obs.CTraceExitHazard]++
				} else {
					c.obsLocal.V[obs.CTraceExitIRQ]++
				}
				return Stop{}, false
			}
			continue
		}
		// Body complete. Loop-shaped traces re-enter directly: the fused
		// back-edge has already proven pc == entryVA, so only the IRQ,
		// budget and cross-CPU invalidation clauses need re-checking.
		if !t.looping || (canIRQ && c.IRQPending) ||
			maxInstrs-*n-ret < uint64(len(code)) ||
			c.cluster.execGen.Load() != startGen {
			c.PC = pc
			c.flushTrace(n, cyc, ret)
			switch {
			case !t.looping:
				c.obsLocal.V[obs.CTraceExitEnd]++
			case canIRQ && c.IRQPending:
				c.obsLocal.V[obs.CTraceExitIRQ]++
			case maxInstrs-*n < uint64(len(code)): // ret already folded into *n
				c.obsLocal.V[obs.CTraceExitBudget]++
			default:
				c.obsLocal.V[obs.CTraceExitHazard]++
			}
			return Stop{}, false
		}
	}
}

// flushTrace folds runTrace's batched accounting into the architectural
// counters and the caller's budget.
func (c *CPU) flushTrace(n *uint64, cyc, ret uint64) {
	c.Cycles += cyc
	c.Retired += ret
	*n += ret
}
