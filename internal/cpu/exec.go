package cpu

import (
	"encoding/binary"
	"fmt"

	"camouflage/internal/insn"
	"camouflage/internal/mmu"
	"camouflage/internal/obs"
	"camouflage/internal/pac"
)

// storeClass marks the ops whose execution can write guest memory and
// therefore move execGen (guest stores, including stores into the
// service doorbell whose host handler may invalidate code). The block
// execution loop re-checks execGen only after these: nothing else can
// patch code mid-block, so the per-instruction re-check the seed paid is
// unnecessary. Indexed by insn.Op; sized for the whole uint8 op space.
var storeClass [256]bool

func init() {
	for _, op := range []insn.Op{
		insn.OpSTR, insn.OpSTRW, insn.OpSTRB,
		insn.OpSTRpre, insn.OpSTP, insn.OpSTPpre,
	} {
		storeClass[op] = true
	}
}

// directBranch reports whether op is a direct (immediate-target) branch
// whose taken exit may be chained: B, BL, B.cond, CBZ, CBNZ. Indirect
// and authenticated branches (BR/BLR/RET and the *AA/*AB forms), ERET,
// SVC and everything else always re-enter through fetchBlock.
func directBranch(op insn.Op) bool {
	switch op {
	case insn.OpB, insn.OpBL, insn.OpBcond, insn.OpCBZ, insn.OpCBNZ:
		return true
	}
	return false
}

// chainValid reports whether e may be followed right now: the PC must be
// the one the edge memoizes, the target block must still be valid
// (pageGen clause), and every translation-regime snapshot must still
// match (§3 contract — see chainEdge).
func (c *CPU) chainValid(e *chainEdge) bool {
	b := e.to
	if b == nil || c.PC != e.pc || b.gen != b.genp.Load() {
		return false
	}
	m := c.MMU
	if m.Enabled != e.mmuOn || int8(c.EL) != e.el {
		return false
	}
	if !e.mmuOn {
		return true
	}
	table := m.TT0
	if e.tt1 {
		table = m.TT1
	}
	return e.table == table && e.tgen == table.Gen() &&
		e.s2gen == m.S2.Gen() && e.s2en == m.S2.Enabled
}

// resolveChain memoizes "PC pc fetched block to" into slot, snapshotting
// the translation regime the resolution depended on.
func (c *CPU) resolveChain(slot *chainEdge, pc uint64, to *codeBlock) {
	m := c.MMU
	e := chainEdge{to: to, pc: pc, mmuOn: m.Enabled, el: int8(c.EL)}
	if m.Enabled {
		e.tt1 = m.KernelSide(pc)
		table := m.TT0
		if e.tt1 {
			table = m.TT1
		}
		e.table, e.tgen = table, table.Gen()
		e.s2gen, e.s2en = m.S2.Gen(), m.S2.Enabled
	}
	*slot = e
}

// Run executes until the instruction budget is exhausted, a HLT retires,
// or an unrecoverable error occurs.
//
// The fast path executes decoded basic blocks: translation and block
// lookup happen once per block entry, then the body runs from a flat
// []insn.Instr slice. The loop falls out of a block when an instruction
// branches or takes an exception (PC no longer advances sequentially),
// when the guest invalidates code the block could cover (execGen), when
// an IRQ becomes deliverable, or when the budget expires. Cycle and
// retirement accounting is identical to single-stepping.
//
// Block-to-block transitions follow direct chains where possible: a
// block that ran to completion and exited through its sequential fall-
// through or a direct branch follows (or lazily resolves) a chainEdge to
// its successor, skipping the per-entry Translate and block-map lookup.
// Chains are never followed blind — chainValid re-checks the §3
// snapshots on every follow — and break on IRQ delivery, budget expiry,
// exceptions, indirect/authenticated branches and any execGen movement.
func (c *CPU) Run(maxInstrs uint64) Stop {
	startCycles, startRetired := c.Cycles, c.Retired
	defer func() {
		totalCycles.Add(c.Cycles - startCycles)
		totalRetired.Add(c.Retired - startRetired)
		// Drain this core's observability cells into the shared
		// registry: scrapes read only the flushed accumulators, so a
		// concurrent /metrics never touches the plain cells the loop
		// bumps (DESIGN.md §11).
		c.flushObs()
	}()
	if c.NoBlockCache {
		return c.runLegacy(maxInstrs)
	}
	var (
		b       *codeBlock // current block; nil → fetch at loop top
		blockVA uint64     // VA the current block was entered at
		pending *chainEdge // slot awaiting resolution by the next fetch
		pendPC  uint64
	)
	for n := uint64(0); n < maxInstrs; {
		if c.IRQPending && !c.IRQMasked && c.EL == 0 {
			c.IRQPending = false
			c.TakeException(VecIRQLower, ECUnknown, 0, 0)
			n++
			b, pending = nil, nil
			continue
		}
		if b == nil {
			// Probe the indirect-branch target cache first: a computed
			// transfer (SVC/exception vector entry, ERET return, BR/BLR/
			// RET target — including a superblock side exit through one)
			// that already resolved to this PC under this regime skips
			// the Translate + block-map fetch entirely. A miss falls
			// through to the fetch, which resolves into the slot.
			if slot := &c.ibtb[(c.PC>>2)&(ibtbSize-1)]; c.chainValid(slot) {
				c.ChainFollows++
				b = slot.to
				blockVA = c.PC
				pending = nil
			} else if pending == nil {
				pending, pendPC = slot, c.PC
			}
		}
		if b == nil {
			var fault *mmu.Fault
			var err error
			b, fault, err = c.fetchBlock()
			if err != nil {
				return Stop{Kind: StopError, Err: err}
			}
			if fault != nil {
				c.instructionAbort(fault)
				n++
				b, pending = nil, nil
				continue
			}
			blockVA = c.PC
			if pending != nil {
				// Memoize the edge that led here. The PC guard keeps an
				// intervening abort from binding the wrong target; the
				// regime snapshot is taken now, so whatever changed since
				// the exit is what the edge records.
				if pendPC == c.PC {
					c.resolveChain(pending, c.PC, b)
				}
				pending = nil
			}
		}
		// Superblock path: a hot block carries a fused trace — run it if
		// its validity clauses hold and the budget covers one body (the
		// remainder runs block-by-block below). A trace whose constituent
		// code went stale is dropped for a rebuild; a transient regime
		// mismatch (context switch) keeps it. Tracing per retired
		// instruction is incompatible with the inline dispatch loop, so
		// an attached Tracer disables trace formation and entry entirely.
		if c.tracer == nil {
			if t := b.tr; t != nil {
				if c.traceValid(t, blockVA) {
					if maxInstrs-n >= uint64(len(t.instrs)) {
						stop, done := c.runTrace(t, &n, maxInstrs)
						if done {
							return stop
						}
						b, pending = nil, nil
						continue
					}
				} else if traceStale(t) {
					b.tr, b.heat = nil, 0
					c.obsLocal.V[obs.CTraceSeverStale]++
				} else {
					// Transient regime mismatch (context switch): the
					// trace is kept but this entry was rejected.
					c.obsLocal.V[obs.CTraceSeverEntry]++
				}
			} else if b.heat++; b.heat == hotThreshold {
				c.buildTrace(b, blockVA)
			}
		}
		startGen := c.cluster.execGen.Load()
		last := len(b.instrs) - 1
		completed := false
		idx := 0
		for ; idx <= last && n < maxInstrs; idx++ {
			ins := &b.instrs[idx]
			if ins.Op == insn.OpInvalid {
				c.undefined()
				n++
				break
			}
			pc := c.PC
			stop, done := c.execute(ins)
			n++
			if done {
				return stop
			}
			if c.PC != pc+insn.Size {
				// Branch taken, exception, or ERET. Only a clean exit off
				// the final instruction is a chainable completion.
				completed = idx == last
				break
			}
			// Mid-block hazards can only be raised by store-class
			// instructions: a guest store may patch code (execGen) and
			// only a device/doorbell store can raise an IRQ while the EL
			// and mask bits are unchanged (exceptions and ERET exit via
			// the PC check above; MSR ends every block). The seed paid
			// both re-checks on every instruction.
			if storeClass[ins.Op] {
				if c.cluster.execGen.Load() != startGen {
					break // the block's own code may have been patched
				}
				if c.IRQPending && !c.IRQMasked && c.EL == 0 {
					break // deliver at the top of the outer loop
				}
			}
		}
		if idx > last {
			completed = true // fell off the sequential end
		}
		exited := b
		b = nil
		if !completed || n >= maxInstrs ||
			(c.IRQPending && !c.IRQMasked && c.EL == 0) {
			continue
		}
		var slot *chainEdge
		if c.PC == blockVA+uint64(len(exited.instrs))*insn.Size {
			slot = &exited.fall
		} else if directBranch(exited.instrs[last].Op) {
			slot = &exited.taken
		} else {
			// SVC, ERET, indirect/authenticated branch: no per-block
			// edge can memoize a computed target — the ibtb probe at the
			// top of the loop covers these transfers.
			continue
		}
		if c.chainValid(slot) {
			c.ChainFollows++
			b = slot.to
			blockVA = c.PC
			continue
		}
		pending, pendPC = slot, c.PC
	}
	return Stop{Kind: StopLimit}
}

// runLegacy is the seed's per-instruction loop (NoBlockCache baseline).
func (c *CPU) runLegacy(maxInstrs uint64) Stop {
	for n := uint64(0); n < maxInstrs; n++ {
		if c.IRQPending && !c.IRQMasked && c.EL == 0 {
			c.IRQPending = false
			c.TakeException(VecIRQLower, ECUnknown, 0, 0)
			continue
		}
		stop, done := c.Step()
		if done {
			return stop
		}
	}
	return Stop{Kind: StopLimit}
}

// Step executes one instruction. done is true when the machine should
// stop (HLT or error).
func (c *CPU) Step() (Stop, bool) {
	var ins insn.Instr
	var fault *mmu.Fault
	var err error
	if c.NoBlockCache {
		ins, fault, err = c.fetchLegacy()
	} else {
		var b *codeBlock
		b, fault, err = c.fetchBlock()
		if b != nil {
			ins = b.instrs[0]
		}
	}
	if err != nil {
		return Stop{Kind: StopError, Err: err}, true
	}
	if fault != nil {
		c.instructionAbort(fault)
		return Stop{}, false
	}
	if ins.Op == insn.OpInvalid {
		c.undefined()
		return Stop{}, false
	}
	return c.execute(&ins)
}

// instructionAbort raises a prefetch abort for a fetch fault.
func (c *CPU) instructionAbort(f *mmu.Fault) {
	vec := uint64(VecSyncLower)
	ec := uint64(ECIAbortLower)
	if c.EL == 1 {
		vec = VecSyncCurrent
		ec = ECIAbortSame
	}
	c.TakeException(vec, ec, issFor(f), f.VA)
}

// dataAbort raises a data abort for a load/store fault.
func (c *CPU) dataAbort(f *mmu.Fault) {
	vec := uint64(VecSyncLower)
	ec := uint64(ECDAbortLower)
	if c.EL == 1 {
		vec = VecSyncCurrent
		ec = ECDAbortSame
	}
	c.TakeException(vec, ec, issFor(f), f.VA)
}

// undefined raises an undefined-instruction exception.
func (c *CPU) undefined() {
	vec := uint64(VecSyncLower)
	if c.EL == 1 {
		vec = VecSyncCurrent
	}
	c.TakeException(vec, ECUnknown, 0, 0)
}

// issFor packs a simplified fault-status code into the ISS: the mmu fault
// kind in the low bits (the real architecture uses a finer DFSC encoding;
// the kernel model only needs to distinguish the four kinds).
func issFor(f *mmu.Fault) uint64 {
	return uint64(f.Kind)
}

// FaultKindFromISS recovers the mmu fault kind from a syndrome value.
func FaultKindFromISS(iss uint64) mmu.FaultKind {
	return mmu.FaultKind(iss & 0x7)
}

// execute runs one decoded instruction. PC has not yet been advanced.
// The pointer argument avoids copying the ~24-byte Instr on every
// dispatch; execute never mutates or retains it.
func (c *CPU) execute(i *insn.Instr) (Stop, bool) {
	cy := costTab[i.Op]
	next := c.PC + insn.Size
	branched := false

	switch i.Op {
	case insn.OpNOP, insn.OpISB:
		// no architectural effect

	case insn.OpHLT:
		c.Cycles += cy
		c.Retired++
		c.PC = next
		return Stop{Kind: StopHLT, Code: uint16(i.Imm)}, true

	case insn.OpMOVZ:
		v := uint64(uint16(i.Imm)) << i.Shift
		if !i.SF {
			v = uint64(uint32(v))
		}
		c.SetReg(i.Rd, v)
	case insn.OpMOVN:
		v := ^(uint64(uint16(i.Imm)) << i.Shift)
		if !i.SF {
			v = uint64(uint32(v))
		}
		c.SetReg(i.Rd, v)
	case insn.OpMOVK:
		v := c.Reg(i.Rd)
		v = v&^(uint64(0xFFFF)<<i.Shift) | uint64(uint16(i.Imm))<<i.Shift
		if !i.SF {
			v = uint64(uint32(v))
		}
		c.SetReg(i.Rd, v)

	case insn.OpADR:
		c.SetReg(i.Rd, c.PC+uint64(i.Imm))
	case insn.OpADRP:
		c.SetReg(i.Rd, c.PC&^uint64(4095)+uint64(i.Imm)*4096)

	case insn.OpADDi:
		c.setRegSP(i.Rd, c.regSP(i.Rn)+uint64(i.Imm)<<i.Shift)
	case insn.OpSUBi:
		c.setRegSP(i.Rd, c.regSP(i.Rn)-uint64(i.Imm)<<i.Shift)

	case insn.OpBFM:
		// BFI/BFXIL semantics for the 64-bit form.
		r := uint(i.ImmR)
		s := uint(i.ImmS)
		src := c.Reg(i.Rn)
		dst := c.Reg(i.Rd)
		if s >= r {
			// BFXIL: copy bits [s:r] of src to [s-r:0] of dst.
			width := s - r + 1
			maskW := maskBits(width)
			dst = dst&^maskW | (src >> r & maskW)
		} else {
			// BFI: copy bits [s:0] of src into dst at bit 64-r.
			width := s + 1
			lsb := 64 - r
			maskW := maskBits(width)
			dst = dst&^(maskW<<lsb) | (src&maskW)<<lsb
		}
		c.SetReg(i.Rd, dst)
	case insn.OpUBFM:
		r := uint(i.ImmR)
		s := uint(i.ImmS)
		src := c.Reg(i.Rn)
		var v uint64
		if s >= r {
			// UBFX / LSR.
			v = src >> r & maskBits(s-r+1)
		} else {
			// LSL / UBFIZ.
			v = (src & maskBits(s+1)) << (64 - r)
		}
		c.SetReg(i.Rd, v)
	case insn.OpSBFM:
		r := uint(i.ImmR)
		s := uint(i.ImmS)
		src := c.Reg(i.Rn)
		if s >= r {
			width := s - r + 1
			v := src >> r & maskBits(width)
			// sign-extend from bit width-1
			if v&(1<<(width-1)) != 0 {
				v |= ^maskBits(width)
			}
			c.SetReg(i.Rd, v)
		} else {
			c.SetReg(i.Rd, 0) // SBFIZ unsupported; deterministic zero
		}

	case insn.OpADDr:
		c.SetReg(i.Rd, c.Reg(i.Rn)+c.Reg(i.Rm)<<i.Shift)
	case insn.OpSUBr:
		c.SetReg(i.Rd, c.Reg(i.Rn)-c.Reg(i.Rm)<<i.Shift)
	case insn.OpSUBSr:
		a := c.Reg(i.Rn)
		b := c.Reg(i.Rm) << i.Shift
		res := a - b
		c.SetReg(i.Rd, res)
		c.N = res>>63 == 1
		c.Z = res == 0
		c.C = a >= b
		c.V = (a>>63 != b>>63) && (res>>63 != a>>63)
	case insn.OpANDr:
		c.SetReg(i.Rd, c.Reg(i.Rn)&(c.Reg(i.Rm)<<i.Shift))
	case insn.OpORRr:
		c.SetReg(i.Rd, c.Reg(i.Rn)|c.Reg(i.Rm)<<i.Shift)
	case insn.OpEORr:
		c.SetReg(i.Rd, c.Reg(i.Rn)^c.Reg(i.Rm)<<i.Shift)
	case insn.OpANDSr:
		res := c.Reg(i.Rn) & (c.Reg(i.Rm) << i.Shift)
		c.SetReg(i.Rd, res)
		c.N = res>>63 == 1
		c.Z = res == 0
		c.C = false
		c.V = false
	case insn.OpMADD:
		c.SetReg(i.Rd, c.Reg(i.Ra)+c.Reg(i.Rn)*c.Reg(i.Rm))
	case insn.OpUDIV:
		d := c.Reg(i.Rm)
		if d == 0 {
			c.SetReg(i.Rd, 0)
		} else {
			c.SetReg(i.Rd, c.Reg(i.Rn)/d)
		}
	case insn.OpLSLV:
		c.SetReg(i.Rd, c.Reg(i.Rn)<<(c.Reg(i.Rm)&63))
	case insn.OpLSRV:
		c.SetReg(i.Rd, c.Reg(i.Rn)>>(c.Reg(i.Rm)&63))
	case insn.OpCSEL:
		if c.condHolds(i.Cond) {
			c.SetReg(i.Rd, c.Reg(i.Rn))
		} else {
			c.SetReg(i.Rd, c.Reg(i.Rm))
		}

	case insn.OpLDR, insn.OpLDRW, insn.OpLDRB:
		size := 8
		if i.Op == insn.OpLDRW {
			size = 4
		} else if i.Op == insn.OpLDRB {
			size = 1
		}
		v, f, err := c.loadMem(c.regSP(i.Rn)+uint64(i.Imm), size)
		if err != nil {
			return Stop{Kind: StopError, Err: err}, true
		}
		if f != nil {
			c.dataAbort(f)
			return Stop{}, false
		}
		c.SetReg(i.Rd, v)

	case insn.OpSTR, insn.OpSTRW, insn.OpSTRB:
		size := 8
		if i.Op == insn.OpSTRW {
			size = 4
		} else if i.Op == insn.OpSTRB {
			size = 1
		}
		f, err := c.storeMem(c.regSP(i.Rn)+uint64(i.Imm), size, c.Reg(i.Rd))
		if err != nil {
			return Stop{Kind: StopError, Err: err}, true
		}
		if f != nil {
			c.dataAbort(f)
			return Stop{}, false
		}

	case insn.OpLDRpost:
		base := c.regSP(i.Rn)
		v, f, err := c.loadMem(base, 8)
		if err != nil {
			return Stop{Kind: StopError, Err: err}, true
		}
		if f != nil {
			c.dataAbort(f)
			return Stop{}, false
		}
		c.SetReg(i.Rd, v)
		c.setRegSP(i.Rn, base+uint64(i.Imm))

	case insn.OpSTRpre:
		addr := c.regSP(i.Rn) + uint64(i.Imm)
		f, err := c.storeMem(addr, 8, c.Reg(i.Rd))
		if err != nil {
			return Stop{Kind: StopError, Err: err}, true
		}
		if f != nil {
			c.dataAbort(f)
			return Stop{}, false
		}
		c.setRegSP(i.Rn, addr)

	case insn.OpLDP, insn.OpLDPpost:
		base := c.regSP(i.Rn)
		addr := base
		if i.Op == insn.OpLDP {
			addr = base + uint64(i.Imm)
		}
		// Paired fast path: one host-pointer probe covers both halves
		// when they land in the same page (a hit proves the whole page
		// translates, so neither half can fault).
		if pg, off, _, ok := c.MMU.HostData(addr, c.EL, 16, mmu.Load); ok {
			c.SetReg(i.Rd, binary.LittleEndian.Uint64(pg[off:off+8]))
			c.SetReg(i.Rm, binary.LittleEndian.Uint64(pg[off+8:off+16]))
		} else {
			v1, f, err := c.loadMem(addr, 8)
			if err != nil {
				return Stop{Kind: StopError, Err: err}, true
			}
			if f == nil {
				var v2 uint64
				v2, f, err = c.loadMem(addr+8, 8)
				if err != nil {
					return Stop{Kind: StopError, Err: err}, true
				}
				if f == nil {
					c.SetReg(i.Rd, v1)
					c.SetReg(i.Rm, v2)
				}
			}
			if f != nil {
				c.dataAbort(f)
				return Stop{}, false
			}
		}
		if i.Op == insn.OpLDPpost {
			c.setRegSP(i.Rn, base+uint64(i.Imm))
		}

	case insn.OpSTP, insn.OpSTPpre:
		base := c.regSP(i.Rn)
		addr := base + uint64(i.Imm)
		if pg, off, pn, ok := c.hostStorePair(addr); ok {
			c.noteGuestStore(pn)
			binary.LittleEndian.PutUint64(pg[off:off+8], c.Reg(i.Rd))
			binary.LittleEndian.PutUint64(pg[off+8:off+16], c.Reg(i.Rm))
		} else {
			f, err := c.storeMem(addr, 8, c.Reg(i.Rd))
			if err != nil {
				return Stop{Kind: StopError, Err: err}, true
			}
			if f == nil {
				f, err = c.storeMem(addr+8, 8, c.Reg(i.Rm))
				if err != nil {
					return Stop{Kind: StopError, Err: err}, true
				}
			}
			if f != nil {
				c.dataAbort(f)
				return Stop{}, false
			}
		}
		if i.Op == insn.OpSTPpre {
			c.setRegSP(i.Rn, addr)
		}

	case insn.OpB:
		next = c.PC + uint64(i.Imm)
		branched = true
	case insn.OpBL:
		c.X[insn.LR] = c.PC + insn.Size
		next = c.PC + uint64(i.Imm)
		branched = true
	case insn.OpBcond:
		if c.condHolds(i.Cond) {
			next = c.PC + uint64(i.Imm)
			branched = true
		}
	case insn.OpCBZ:
		if c.Reg(i.Rd) == 0 {
			next = c.PC + uint64(i.Imm)
			branched = true
		}
	case insn.OpCBNZ:
		if c.Reg(i.Rd) != 0 {
			next = c.PC + uint64(i.Imm)
			branched = true
		}
	case insn.OpBR:
		next = c.Reg(i.Rn)
		branched = true
	case insn.OpBLR:
		c.X[insn.LR] = c.PC + insn.Size
		next = c.Reg(i.Rn)
		branched = true
	case insn.OpRET:
		next = c.Reg(i.Rn)
		branched = true

	case insn.OpPACIA:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacSign(i.Rd, i.Rn, pac.KeyIA)
	case insn.OpPACIB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacSign(i.Rd, i.Rn, pac.KeyIB)
	case insn.OpPACDA:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacSign(i.Rd, i.Rn, pac.KeyDA)
	case insn.OpPACDB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacSign(i.Rd, i.Rn, pac.KeyDB)
	case insn.OpAUTIA:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacAuth(i.Rd, i.Rn, pac.KeyIA)
	case insn.OpAUTIB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacAuth(i.Rd, i.Rn, pac.KeyIB)
	case insn.OpAUTDA:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacAuth(i.Rd, i.Rn, pac.KeyDA)
	case insn.OpAUTDB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.pacAuth(i.Rd, i.Rn, pac.KeyDB)
	case insn.OpPACIZA, insn.OpPACIZB, insn.OpPACDZA, insn.OpPACDZB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		id := zeroModKey[i.Op]
		if c.pauthEnabled(id) {
			c.SetReg(i.Rd, c.Signer.Sign(c.Reg(i.Rd), 0, id))
		}
	case insn.OpAUTIZA, insn.OpAUTIZB, insn.OpAUTDZA, insn.OpAUTDZB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		id := zeroModKey[i.Op]
		if c.pauthEnabled(id) {
			out, ok := c.Signer.Auth(c.Reg(i.Rd), 0, id)
			if !ok {
				c.PACFailures++
			}
			c.SetReg(i.Rd, out)
		}

	case insn.OpXPACI, insn.OpXPACD:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.SetReg(i.Rd, c.Signer.Strip(c.Reg(i.Rd)))
	case insn.OpPACGA:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		c.SetReg(i.Rd, c.Signer.GenericMAC(c.Reg(i.Rn), c.Reg(i.Rm)))

	case insn.OpBLRAA, insn.OpBLRAB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		id := pac.KeyIA
		if i.Op == insn.OpBLRAB {
			id = pac.KeyIB
		}
		target := c.authBranchTarget(i.Rn, c.Reg(i.Rm), id)
		c.X[insn.LR] = c.PC + insn.Size
		next = target
		branched = true
	case insn.OpBRAA, insn.OpBRAB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		id := pac.KeyIA
		if i.Op == insn.OpBRAB {
			id = pac.KeyIB
		}
		next = c.authBranchTarget(i.Rn, c.Reg(i.Rm), id)
		branched = true
	case insn.OpRETAA, insn.OpRETAB:
		if !c.requirePAuth() {
			return Stop{}, false
		}
		id := pac.KeyIA
		if i.Op == insn.OpRETAB {
			id = pac.KeyIB
		}
		next = c.authBranchTarget(insn.LR, c.sp[c.EL], id)
		branched = true

	case insn.OpPACIA1716, insn.OpPACIB1716, insn.OpAUTIA1716, insn.OpAUTIB1716:
		// HINT space: NOP on pre-8.3 cores (§5.5), PAuth op on 8.3.
		if c.Feat.PAuth {
			switch i.Op {
			case insn.OpPACIA1716:
				c.pacSign(insn.X17, insn.X16, pac.KeyIA)
			case insn.OpPACIB1716:
				c.pacSign(insn.X17, insn.X16, pac.KeyIB)
			case insn.OpAUTIA1716:
				c.pacAuth(insn.X17, insn.X16, pac.KeyIA)
			case insn.OpAUTIB1716:
				c.pacAuth(insn.X17, insn.X16, pac.KeyIB)
			}
		} else {
			cy = costALU // plain NOP timing on v8.0
		}

	case insn.OpMSR:
		if _, _, isKey := keyFor(i.Sys); isKey && !c.Feat.PAuth {
			c.undefined()
			return Stop{}, false
		}
		if err := c.WriteSys(i.Sys, c.Reg(i.Rd)); err != nil {
			c.undefined()
			return Stop{}, false
		}
	case insn.OpMRS:
		v, err := c.ReadSys(i.Sys)
		if err != nil {
			c.undefined()
			return Stop{}, false
		}
		c.SetReg(i.Rd, v)

	case insn.OpSVC:
		c.Cycles += cy
		c.Retired++
		c.PC = next
		vec := uint64(VecSyncLower)
		if c.EL == 1 {
			vec = VecSyncCurrent
		}
		c.TakeException(vec, ECSVC64, uint64(uint16(i.Imm)), 0)
		return Stop{}, false

	case insn.OpERET:
		c.Cycles += cy
		c.Retired++
		c.setPstate(c.SPSR)
		c.PC = c.ELR
		return Stop{}, false

	default:
		return Stop{Kind: StopError, Err: fmt.Errorf("cpu: unimplemented op %v at PC %#x", i.Op, c.PC)}, true
	}

	c.Cycles += cy
	c.Retired++
	if c.tracer != nil {
		c.tracer.Retire(c.PC, c.EL, *i)
	}
	_ = branched
	c.PC = next
	return Stop{}, false
}

// zeroModKey maps the zero-modifier PAuth ops to their key (hoisted to
// package level: building it per execution allocated on a hot path).
var zeroModKey = map[insn.Op]pac.KeyID{
	insn.OpPACIZA: pac.KeyIA, insn.OpPACIZB: pac.KeyIB,
	insn.OpPACDZA: pac.KeyDA, insn.OpPACDZB: pac.KeyDB,
	insn.OpAUTIZA: pac.KeyIA, insn.OpAUTIZB: pac.KeyIB,
	insn.OpAUTDZA: pac.KeyDA, insn.OpAUTDZB: pac.KeyDB,
}

// requirePAuth raises undefined-instruction on pre-8.3 cores and reports
// whether execution may continue.
func (c *CPU) requirePAuth() bool {
	if c.Feat.PAuth {
		return true
	}
	c.undefined()
	return false
}

// authBranchTarget authenticates the pointer in rn with the given modifier
// and returns the branch target (poisoned and fault-bound on failure).
func (c *CPU) authBranchTarget(rn insn.Reg, modifier uint64, id pac.KeyID) uint64 {
	v := c.Reg(rn)
	if !c.pauthEnabled(id) {
		return v
	}
	out, ok := c.Signer.Auth(v, modifier, id)
	if !ok {
		c.PACFailures++
	}
	return out
}

func (c *CPU) condHolds(cc insn.Cond) bool {
	switch cc {
	case insn.EQ:
		return c.Z
	case insn.NE:
		return !c.Z
	case insn.CS:
		return c.C
	case insn.CC:
		return !c.C
	case insn.MI:
		return c.N
	case insn.PL:
		return !c.N
	case insn.VS:
		return c.V
	case insn.VC:
		return !c.V
	case insn.HI:
		return c.C && !c.Z
	case insn.LS:
		return !c.C || c.Z
	case insn.GE:
		return c.N == c.V
	case insn.LT:
		return c.N != c.V
	case insn.GT:
		return !c.Z && c.N == c.V
	case insn.LE:
		return c.Z || c.N != c.V
	}
	return true // AL, NV
}

func maskBits(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<w - 1
}
