package cpu

import (
	"camouflage/internal/pac"
)

// State is a complete capture of one CPU's architectural and
// micro-architectural bookkeeping state: general-purpose registers, PC,
// exception level, PSTATE, banked stack pointers, the named system
// registers, the PAuth key bank mirrored by the signer, and the
// performance counters. It deliberately excludes the memory system (Bus,
// MMU) — those are captured by their own packages — and the decoded-block
// cache, which is derived state rebuilt on demand after a restore.
type State struct {
	X          [31]uint64
	PC         uint64
	EL         int
	N, Z, C, V bool
	IRQMasked  bool
	SP         [2]uint64

	SCTLR      uint64
	VBAR       uint64
	ELR        uint64
	SPSR       uint64
	ESR        uint64
	FAR        uint64
	TTBR0      uint64
	TTBR1      uint64
	CONTEXTIDR uint64
	TPIDR      uint64
	TPIDR0     uint64

	Keys pac.KeySet

	Cycles      uint64
	Retired     uint64
	PACFailures uint64
	IRQPending  bool
}

// CaptureState snapshots the CPU's architectural state.
func (c *CPU) CaptureState() State {
	return State{
		X: c.X, PC: c.PC, EL: c.EL,
		N: c.N, Z: c.Z, C: c.C, V: c.V,
		IRQMasked: c.IRQMasked, SP: c.sp,
		SCTLR: c.SCTLR, VBAR: c.VBAR, ELR: c.ELR, SPSR: c.SPSR,
		ESR: c.ESR, FAR: c.FAR, TTBR0: c.TTBR0, TTBR1: c.TTBR1,
		CONTEXTIDR: c.CONTEXTIDR, TPIDR: c.TPIDR, TPIDR0: c.TPIDR0,
		Keys:   c.Signer.Keys(),
		Cycles: c.Cycles, Retired: c.Retired,
		PACFailures: c.PACFailures, IRQPending: c.IRQPending,
	}
}

// RestoreState rewinds the CPU to a captured snapshot. Key installation
// bypasses the MSR hook chain (restore is a host operation, not a guest
// write, so the hypervisor lockdown must not veto it). The decoded-block
// cache is dropped: memory has been rewound underneath it.
func (c *CPU) RestoreState(st State) {
	c.X = st.X
	c.PC = st.PC
	c.EL = st.EL
	c.N, c.Z, c.C, c.V = st.N, st.Z, st.C, st.V
	c.IRQMasked = st.IRQMasked
	c.sp = st.SP
	c.SCTLR = st.SCTLR
	c.VBAR = st.VBAR
	c.ELR = st.ELR
	c.SPSR = st.SPSR
	c.ESR = st.ESR
	c.FAR = st.FAR
	c.TTBR0 = st.TTBR0
	c.TTBR1 = st.TTBR1
	c.CONTEXTIDR = st.CONTEXTIDR
	c.TPIDR = st.TPIDR
	c.TPIDR0 = st.TPIDR0
	if c.Feat.PAuth {
		c.Signer.SetKeys(st.Keys)
	}
	c.Cycles = st.Cycles
	c.Retired = st.Retired
	c.PACFailures = st.PACFailures
	c.IRQPending = st.IRQPending
	c.InvalidateDecode()
	c.MMU.InvalidateTLBAll()
}
