package cpu

import (
	"sync"
	"sync/atomic"
)

// Cluster is the invalidation state shared by every CPU of one simulated
// machine (the SMP analogue of a cache-coherent interconnect). The
// decoded-block cache, chain edges and host-pointer TLB stay strictly
// per-CPU — only the *generation cells* they validate against live here,
// as atomically published values, so a store retired on CPU 0 severs
// chains and kills cached blocks on CPU 1 without any cross-CPU walk:
// the next validation on CPU 1 simply observes the moved cell. This is
// the software shootdown protocol of DESIGN.md §9; the memory-side half
// (warm host pointers) rides the same scheme through mem.Phys's atomic
// generation.
//
// The map itself is mutated only on cold paths (a page holding code for
// the first time, a full InvalidateDecode) and is guarded by mu; hot
// paths hold cell pointers and never touch the map. cellEpoch versions
// the page→cell *presence* relation: each CPU's store-memo caches nil
// verdicts ("this page never held code"), which go stale the moment any
// CPU decodes from such a page, so the memo is re-validated against the
// epoch before use.
type Cluster struct {
	mu      sync.RWMutex
	pageGen map[uint64]*atomic.Uint64

	// execGen increments whenever any code page is invalidated, on any
	// CPU. Execution loops snapshot it per block so a cross-CPU (or
	// same-block) code patch forces a refetch before stale instructions
	// can retire.
	execGen atomic.Uint64

	// cellEpoch increments whenever a page first acquires a generation
	// cell; per-CPU store memos are invalid across an epoch change.
	cellEpoch atomic.Uint64
}

// newCluster returns an empty shared-invalidation domain.
func newCluster() *Cluster {
	return &Cluster{pageGen: make(map[uint64]*atomic.Uint64)}
}

// cell returns the generation cell for a physical page, creating it (and
// bumping cellEpoch) on first use — the moment the page becomes code.
func (cl *Cluster) cell(page uint64) *atomic.Uint64 {
	cl.mu.RLock()
	g := cl.pageGen[page]
	cl.mu.RUnlock()
	if g != nil {
		return g
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if g = cl.pageGen[page]; g != nil {
		return g
	}
	g = new(atomic.Uint64)
	g.Store(1)
	cl.pageGen[page] = g
	cl.cellEpoch.Add(1)
	return g
}

// lookup returns the page's generation cell, or nil when the page has
// never held decoded code on any CPU.
func (cl *Cluster) lookup(page uint64) *atomic.Uint64 {
	cl.mu.RLock()
	g := cl.pageGen[page]
	cl.mu.RUnlock()
	return g
}

// noteStore runs the code-invalidation contract for a store to physical
// page pn: if the page ever held code (on any CPU), bump its cell and
// execGen. Returns whether a bump happened.
func (cl *Cluster) noteStore(pn uint64) bool {
	if g := cl.lookup(pn); g != nil {
		g.Add(1)
		cl.execGen.Add(1)
		return true
	}
	return false
}

// invalidateAll bumps every cell (killing every cached block on every
// CPU of the cluster) and execGen. Cells are kept, not replaced, so
// pointers held by other CPUs' blocks and memos stay meaningful.
func (cl *Cluster) invalidateAll() {
	cl.mu.Lock()
	//camo:nondet atomic generation bumps commute; visit order does not affect the final counters
	for _, g := range cl.pageGen {
		g.Add(1)
	}
	cl.mu.Unlock()
	cl.execGen.Add(1)
}

// ExecGen exposes the shared execution generation (tests).
func (cl *Cluster) ExecGen() uint64 { return cl.execGen.Load() }
