package cpu

import (
	"strings"
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/insn"
	"camouflage/internal/mem"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

// runSnippet assembles and executes a code fragment ending in HLT, with
// optional pre-set registers, and returns the CPU.
func runSnippet(t *testing.T, setup func(c *CPU), build func(a *asm.Assembler)) *CPU {
	t.Helper()
	a := asm.New()
	a.Label("entry")
	build(a)
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	c.SCTLR = insn.SCTLRPAuthAll
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, stackTop)
	if setup != nil {
		setup(c)
	}
	c.PC = img.Symbols["entry"]
	stop := c.Run(100000)
	if stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	return c
}

func TestMOVNAndMOVK32(t *testing.T) {
	c := runSnippet(t, nil, func(a *asm.Assembler) {
		a.I(insn.MOVN(insn.X0, 0, 0))       // x0 = ^0
		a.I(insn.MOVN(insn.X1, 0xFFFF, 48)) // x1 = ^(0xFFFF<<48)
		a.I(insn.MOVZW(insn.X2, 0xFB45, 0)) // w2 = 0xFB45 (upper cleared)
		a.I(insn.HLT(0))
	})
	if c.X[0] != ^uint64(0) {
		t.Errorf("movn zero = %#x", c.X[0])
	}
	if c.X[1] != 0x0000_FFFF_FFFF_FFFF {
		t.Errorf("movn shifted = %#x", c.X[1])
	}
	if c.X[2] != 0xFB45 {
		t.Errorf("movz w-form = %#x", c.X[2])
	}
}

func TestADRP(t *testing.T) {
	c := runSnippet(t, nil, func(a *asm.Assembler) {
		a.I(insn.ADRP(insn.X0, 2)) // PC page + 2 pages
		a.I(insn.HLT(0))
	})
	want := textBase&^uint64(4095) + 2*4096
	if c.X[0] != want {
		t.Fatalf("adrp = %#x, want %#x", c.X[0], want)
	}
}

func TestUDIVByZeroGivesZero(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = 100
		c.X[2] = 0
		c.X[4] = 7
	}, func(a *asm.Assembler) {
		a.I(insn.UDIV(insn.X0, insn.X1, insn.X2)) // 100/0 = 0 on ARM
		a.I(insn.UDIV(insn.X3, insn.X1, insn.X4)) // 100/7 = 14
		a.I(insn.HLT(0))
	})
	if c.X[0] != 0 {
		t.Errorf("div by zero = %d, want 0 (ARM semantics)", c.X[0])
	}
	if c.X[3] != 14 {
		t.Errorf("100/7 = %d", c.X[3])
	}
}

func TestShiftsByRegister(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = 0xF0
		c.X[2] = 4
	}, func(a *asm.Assembler) {
		a.I(insn.LSLV(insn.X0, insn.X1, insn.X2))
		a.I(insn.LSRV(insn.X3, insn.X1, insn.X2))
		a.I(insn.HLT(0))
	})
	if c.X[0] != 0xF00 || c.X[3] != 0xF {
		t.Fatalf("lslv=%#x lsrv=%#x", c.X[0], c.X[3])
	}
}

// TestCSELAllConditions drives every condition code through a compare.
func TestCSELAllConditions(t *testing.T) {
	// After CMP 5, 7 (5-7): N=1 Z=0 C=0 V=0.
	expect := map[insn.Cond]bool{
		insn.EQ: false, insn.NE: true,
		insn.CS: false, insn.CC: true,
		insn.MI: true, insn.PL: false,
		insn.VS: false, insn.VC: true,
		insn.HI: false, insn.LS: true,
		insn.GE: false, insn.LT: true,
		insn.GT: false, insn.LE: true,
		insn.AL: true, insn.NV: true,
	}
	for cond, want := range expect {
		c := runSnippet(t, func(c *CPU) {
			c.X[1] = 5
			c.X[2] = 7
			c.X[3] = 111 // selected when cond holds
			c.X[4] = 222
		}, func(a *asm.Assembler) {
			a.I(insn.CMP(insn.X1, insn.X2))
			a.I(insn.CSEL(insn.X0, insn.X3, insn.X4, cond))
			a.I(insn.HLT(0))
		})
		got := c.X[0] == 111
		if got != want {
			t.Errorf("csel %v: cond held=%v, want %v", cond, got, want)
		}
	}
}

func TestFlagsUnsignedOverflow(t *testing.T) {
	// CMP 7, 5: C=1 (no borrow), Z=0, N=0.
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = 7
		c.X[2] = 5
	}, func(a *asm.Assembler) {
		a.I(insn.CMP(insn.X1, insn.X2))
		a.I(insn.CSEL(insn.X0, insn.X1, insn.XZR, insn.CS))
		a.I(insn.HLT(0))
	})
	if c.X[0] != 7 {
		t.Fatal("carry not set for 7-5")
	}
	// Signed overflow: min_int64 - 1.
	c = runSnippet(t, func(c *CPU) {
		c.X[1] = 0x8000_0000_0000_0000
		c.X[2] = 1
	}, func(a *asm.Assembler) {
		a.I(insn.CMP(insn.X1, insn.X2))
		a.I(insn.CSEL(insn.X0, insn.X1, insn.XZR, insn.VS))
		a.I(insn.HLT(0))
	})
	if c.X[0] != 0x8000_0000_0000_0000 {
		t.Fatal("V not set for min_int64 - 1")
	}
}

func TestByteAndWordAccess(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = dataBase
		c.X[2] = 0x1122334455667788
	}, func(a *asm.Assembler) {
		a.I(insn.STR(insn.X2, insn.X1, 0))
		a.I(insn.LDRB(insn.X3, insn.X1, 1))  // 0x77
		a.I(insn.LDRW(insn.X4, insn.X1, 4))  // 0x11223344
		a.I(insn.STRB(insn.X3, insn.X1, 8))  // write one byte
		a.I(insn.LDR(insn.X5, insn.X1, 8))   // read it back zero-extended
		a.I(insn.STRW(insn.X4, insn.X1, 16)) // 32-bit store
		a.I(insn.LDR(insn.X6, insn.X1, 16))
		a.I(insn.HLT(0))
	})
	if c.X[3] != 0x77 {
		t.Errorf("ldrb = %#x", c.X[3])
	}
	if c.X[4] != 0x11223344 {
		t.Errorf("ldrw = %#x", c.X[4])
	}
	if c.X[5] != 0x77 {
		t.Errorf("byte store roundtrip = %#x", c.X[5])
	}
	if c.X[6] != 0x11223344 {
		t.Errorf("word store roundtrip = %#x", c.X[6])
	}
}

func TestPrePostIndexAddressing(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = dataBase + 64
		c.X[2] = 42
	}, func(a *asm.Assembler) {
		a.I(insn.STRpre(insn.X2, insn.X1, -16)) // [x1-16] = 42; x1 -= 16
		a.I(insn.LDRpost(insn.X3, insn.X1, 8))  // x3 = [x1]; x1 += 8
		a.I(insn.HLT(0))
	})
	if c.X[3] != 42 {
		t.Errorf("pre/post roundtrip = %d", c.X[3])
	}
	if c.X[1] != dataBase+64-16+8 {
		t.Errorf("base after writeback = %#x", c.X[1])
	}
}

func TestBFXILPath(t *testing.T) {
	// BFI with lsb 0 exercises the s >= r (BFXIL-like) path.
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = 0xABCD
		c.X[0] = 0xFFFF_FFFF_FFFF_0000
	}, func(a *asm.Assembler) {
		a.I(insn.BFI(insn.X0, insn.X1, 0, 16))
		a.I(insn.HLT(0))
	})
	if c.X[0] != 0xFFFF_FFFF_FFFF_ABCD {
		t.Fatalf("bfi lsb=0 = %#x", c.X[0])
	}
}

func TestUBFXAndSBFM(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = 0xFFEE_0000_0000_0000
	}, func(a *asm.Assembler) {
		a.I(insn.UBFX(insn.X0, insn.X1, 48, 16)) // 0xFFEE
		a.I(insn.HLT(0))
	})
	if c.X[0] != 0xFFEE {
		t.Fatalf("ubfx = %#x", c.X[0])
	}
}

// TestSelfModifyingCodeInvalidatesDecodeCache: a guest store over an
// upcoming instruction must take effect (bootloader-style patching).
func TestSelfModifyingCodeInvalidatesDecodeCache(t *testing.T) {
	a := asm.New()
	a.Label("entry")
	// First execute the target once so it enters the decode cache.
	a.BL("target")
	// Patch target's first instruction to movz x0, #7.
	patch := insn.MOVZ(insn.X0, 7, 0).Encode()
	a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
	a.ADR(insn.X10, "target")
	a.I(insn.STRW(insn.X9, insn.X10, 0))
	a.BL("target")
	a.I(insn.HLT(0))
	a.Label("target")
	a.I(insn.MOVZ(insn.X0, 1, 0))
	a.I(insn.RET())
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, stackTop)
	c.PC = img.Symbols["entry"]
	if stop := c.Run(1000); stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 7 {
		t.Fatalf("x0 = %d; stale decode cache served the old instruction", c.X[0])
	}
}

// TestSameBlockSelfModifyingStore: a store that patches an instruction
// *later in the currently executing straight-line block* must take
// effect before that instruction runs — the block loop has to abandon
// pre-decoded state the moment its own code page is written.
func TestSameBlockSelfModifyingStore(t *testing.T) {
	a := asm.New()
	a.Label("entry")
	patch := insn.MOVZ(insn.X0, 7, 0).Encode()
	a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
	a.ADR(insn.X10, "target")
	a.I(insn.STRW(insn.X9, insn.X10, 0))
	// No branch between the store and the target: entry..HLT decodes as
	// one block, and the store rewrites an instruction inside it.
	a.Label("target")
	a.I(insn.MOVZ(insn.X0, 1, 0))
	a.I(insn.HLT(0))
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, stackTop)
	c.PC = img.Symbols["entry"]
	if stop := c.Run(1000); stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 7 {
		t.Fatalf("x0 = %d; stale in-block instruction executed", c.X[0])
	}
}

// TestBlockSpanningStoreInvalidates: a single 8-byte store overwriting
// TWO instructions of a previously executed block must kill the whole
// block, not just the directly addressed word (the seed's word-granular
// delete could leave a multi-word run half-stale).
func TestBlockSpanningStoreInvalidates(t *testing.T) {
	a := asm.New()
	a.Label("entry")
	a.BL("target") // cache the block at target
	lo := insn.MOVZ(insn.X0, 7, 0).Encode()
	hi := insn.MOVZ(insn.X1, 9, 0).Encode()
	a.I(insn.MOVImm64(insn.X9, uint64(hi)<<32|uint64(lo))...)
	a.ADR(insn.X10, "target")
	a.I(insn.STR(insn.X9, insn.X10, 0)) // spans both instructions
	a.BL("target")
	a.I(insn.HLT(0))
	a.Label("target")
	a.I(insn.MOVZ(insn.X0, 1, 0))
	a.I(insn.MOVZ(insn.X1, 2, 0))
	a.I(insn.RET())
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, stackTop)
	c.PC = img.Symbols["entry"]
	if stop := c.Run(1000); stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 7 || c.X[1] != 9 {
		t.Fatalf("x0, x1 = %d, %d; block spanning the written range survived", c.X[0], c.X[1])
	}
}

// TestPageSpanningStoreInvalidatesBothPages: an 8-byte store straddling
// a page boundary rewrites the last instruction of one page and the
// first of the next; cached blocks on BOTH pages must be invalidated.
func TestPageSpanningStoreInvalidatesBothPages(t *testing.T) {
	a := asm.New()
	a.Label("entry")
	a.BL("tail") // cache blocks on both sides of the boundary
	lo := insn.MOVZ(insn.X0, 7, 0).Encode()
	hi := insn.MOVZ(insn.X1, 9, 0).Encode()
	a.I(insn.MOVImm64(insn.X9, uint64(hi)<<32|uint64(lo))...)
	a.ADR(insn.X10, "tail")
	a.I(insn.STR(insn.X9, insn.X10, 0)) // [page_end-4, page_end+4)
	a.BL("tail")
	a.I(insn.HLT(0))
	a.PadTo(0xFFC) // place tail's first instruction on the last word of the page
	a.Label("tail")
	a.I(insn.MOVZ(insn.X0, 1, 0)) // last word of page 0
	a.I(insn.MOVZ(insn.X1, 2, 0)) // first word of page 1
	a.I(insn.RET())
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.SetSP(1, stackTop)
	c.PC = img.Symbols["entry"]
	if stop := c.Run(1000); stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 7 || c.X[1] != 9 {
		t.Fatalf("x0, x1 = %d, %d; stale block survived a page-spanning store", c.X[0], c.X[1])
	}
}

// TestBlockCacheMatchesLegacyPath: the block-cached pipeline and the
// seed's per-instruction path must produce identical architectural
// results and identical cycle/retire accounting.
func TestBlockCacheMatchesLegacyPath(t *testing.T) {
	build := func(noCache bool) *CPU {
		a := asm.New()
		a.Label("entry")
		a.I(insn.MOVZ(insn.X5, 50, 0))
		a.Label("loop")
		a.BL("f")
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "loop")
		a.I(insn.HLT(0))
		a.Label("f")
		a.I(insn.ADDi(insn.X0, insn.X0, 3))
		a.I(insn.EORr(insn.X1, insn.X1, insn.X0))
		a.I(insn.RET())
		img, err := a.Link(map[string]uint64{".text": textBase})
		if err != nil {
			t.Fatal(err)
		}
		c := New(Features{PAuth: true})
		c.NoBlockCache = noCache
		c.MMU.NoTLB = noCache
		for _, s := range img.Sections {
			c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
		}
		c.SetSP(1, stackTop)
		c.PC = img.Symbols["entry"]
		if stop := c.Run(100000); stop.Kind != StopHLT {
			t.Fatalf("stop = %+v", stop)
		}
		return c
	}
	fast := build(false)
	slow := build(true)
	if fast.X[0] != slow.X[0] || fast.X[1] != slow.X[1] {
		t.Fatalf("architectural divergence: fast x0/x1 = %d/%d, legacy %d/%d",
			fast.X[0], fast.X[1], slow.X[0], slow.X[1])
	}
	if fast.Cycles != slow.Cycles || fast.Retired != slow.Retired {
		t.Fatalf("accounting divergence: fast %d cycles/%d retired, legacy %d/%d",
			fast.Cycles, fast.Retired, slow.Cycles, slow.Retired)
	}
}

func TestIRQDeliveryAtEL0(t *testing.T) {
	a := asm.New()
	a.Section(".user")
	a.Label("user")
	a.Label("spin")
	a.I(insn.ADDi(insn.X0, insn.X0, 1))
	a.B("spin")
	buildVectors(a)
	img, err := a.Link(map[string]uint64{
		".text": textBase, ".user": userText, ".vectors": vbarBase,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.VBAR = img.Symbols["vectors"]
	c.EL = 0
	c.IRQMasked = false
	c.PC = img.Symbols["user"]
	// Run a little, then assert the IRQ line.
	c.Run(100)
	c.IRQPending = true
	stop := c.Run(100)
	if stop.Kind != StopHLT || stop.Code != 0xE5 {
		t.Fatalf("stop = %+v, want IRQ vector HLT 0xE5", stop)
	}
	if c.EL != 1 {
		t.Fatal("IRQ did not enter EL1")
	}
}

func TestPACGAInGuest(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.Signer.SetKey(pac.KeyGA, pac.Key{Hi: 5, Lo: 6})
		c.X[1] = 0x1234
		c.X[2] = 0x5678
	}, func(a *asm.Assembler) {
		a.I(insn.PACGA(insn.X0, insn.X1, insn.X2))
		a.I(insn.HLT(0))
	})
	if c.X[0] == 0 || c.X[0]&0xFFFF_FFFF != 0 {
		t.Fatalf("pacga = %#x; MAC must be in the high half", c.X[0])
	}
}

func TestXPACInGuest(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 1, Lo: 2})
		c.X[0] = uint64(pac.KernelBase) | 0x1000
		c.X[1] = 0x99 // modifier
	}, func(a *asm.Assembler) {
		a.I(insn.PACIB(insn.X0, insn.X1))
		a.I(insn.XPACI(insn.X0))
		a.I(insn.HLT(0))
	})
	if c.X[0] != uint64(pac.KernelBase)|0x1000 {
		t.Fatalf("xpac = %#x", c.X[0])
	}
}

func TestZeroRegisterSemantics(t *testing.T) {
	c := runSnippet(t, func(c *CPU) {
		c.X[1] = dataBase
	}, func(a *asm.Assembler) {
		a.I(insn.ADDi(insn.X2, insn.X2, 5))
		a.I(insn.ORRr(insn.XZR, insn.XZR, insn.X2, 0)) // write to xzr discarded
		a.I(insn.STR(insn.XZR, insn.X1, 0))            // store zero
		a.I(insn.LDR(insn.X3, insn.X1, 0))
		a.I(insn.HLT(0))
	})
	if c.X[3] != 0 {
		t.Fatalf("str xzr stored %#x", c.X[3])
	}
}

func TestRingTrace(t *testing.T) {
	ring := NewRingTrace(4)
	c := runSnippet(t, func(c *CPU) {
		c.AttachTracer(ring)
	}, func(a *asm.Assembler) {
		a.I(insn.MOVZ(insn.X0, 1, 0))
		a.I(insn.MOVZ(insn.X1, 2, 0))
		a.I(insn.MOVZ(insn.X2, 3, 0))
		a.I(insn.MOVZ(insn.X3, 4, 0))
		a.I(insn.MOVZ(insn.X4, 5, 0))
		a.I(insn.HLT(0))
	})
	_ = c
	entries := ring.Entries()
	if len(entries) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(entries))
	}
	// Ring keeps the most recent: movz x2..x4 + nothing for HLT (which
	// retires via an early return) — the last entry must be movz x4.
	last := entries[len(entries)-1]
	if last.Ins.Op != insn.OpMOVZ || last.Ins.Rd != insn.X4 {
		t.Fatalf("last traced = %+v", last.Ins)
	}
	if !strings.Contains(ring.String(), "movz") {
		t.Fatal("trace rendering missing disassembly")
	}
	// Detach: no more entries recorded.
	c2 := runSnippet(t, func(c *CPU) {
		c.AttachTracer(ring)
		c.AttachTracer(nil)
	}, func(a *asm.Assembler) {
		a.I(insn.MOVZ(insn.X9, 9, 0))
		a.I(insn.HLT(0))
	})
	_ = c2
	for _, e := range ring.Entries() {
		if e.Ins.Op == insn.OpMOVZ && e.Ins.Rd == insn.X9 {
			t.Fatal("detached tracer still recording")
		}
	}
}

func TestCyclesToNanos(t *testing.T) {
	if got := CyclesToNanos(1_200_000_000); got != 1e9 {
		t.Fatalf("1.2G cycles = %f ns, want 1e9", got)
	}
	if got := CyclesToNanos(12); got != 10 {
		t.Fatalf("12 cycles = %f ns, want 10", got)
	}
}

func TestBankedSPAcrossELs(t *testing.T) {
	c := New(Features{PAuth: true})
	c.SetSP(0, 0x1000)
	c.SetSP(1, 0x2000)
	c.EL = 0
	if c.CurrentSP() != 0x1000 {
		t.Fatal("EL0 SP wrong")
	}
	c.EL = 1
	if c.CurrentSP() != 0x2000 {
		t.Fatal("EL1 SP wrong")
	}
	if c.SP(0) != 0x1000 {
		t.Fatal("banked SP lost")
	}
}

// TestChainFollowsEngage: a hot loop's block-to-block transitions (the
// backward conditional branch) must be served by chain follows, not
// fresh fetches, while warming — and once past the hotness threshold the
// loop must be fused into a superblock trace that serves the remaining
// iterations without any per-block work at all.
func TestChainFollowsEngage(t *testing.T) {
	c := runSnippet(t, nil, func(a *asm.Assembler) {
		a.I(insn.MOVZ(insn.X5, 64, 0))
		a.Label("loop")
		a.I(insn.ADDr(insn.X6, insn.X6, insn.X5))
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "loop")
		a.I(insn.HLT(0))
	})
	if c.ChainFollows < 8 {
		t.Fatalf("ChainFollows = %d; direct chaining is not engaging", c.ChainFollows)
	}
	if c.TracesBuilt == 0 || c.TraceFollows == 0 {
		t.Fatalf("TracesBuilt = %d, TraceFollows = %d; the hot loop was not fused into a trace",
			c.TracesBuilt, c.TraceFollows)
	}
}

// TestSelfModifyingStoreSeversChain: once the warm loop's direct edges
// have been resolved and followed, a guest store into the chained
// target's code must sever the chain — re-entering the loop has to
// re-fetch and execute the patched instruction, not the memoized block.
func TestSelfModifyingStoreSeversChain(t *testing.T) {
	patch := insn.MOVZ(insn.X0, 7, 0).Encode()
	c := runSnippet(t, nil, func(a *asm.Assembler) {
		a.I(insn.MOVZ(insn.X5, 4, 0))
		a.Label("warm")
		a.B("target") // direct edge warm→target: resolved and followed hot
		a.Label("back")
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "warm")
		a.CBNZ(insn.X6, "done") // second pass: stop
		a.I(insn.MOVZ(insn.X6, 1, 0))
		// Patch target's MOVZ, then drive the warm loop once more
		// through its already-resolved edges.
		a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
		a.ADR(insn.X10, "target")
		a.I(insn.STRW(insn.X9, insn.X10, 0))
		a.I(insn.MOVZ(insn.X5, 1, 0))
		a.B("warm")
		a.Label("done")
		a.I(insn.HLT(0))
		a.Label("target")
		a.I(insn.MOVZ(insn.X0, 1, 0))
		a.B("back")
	})
	if c.X[0] != 7 {
		t.Fatalf("x0 = %d; a resolved chain served stale code after the patch", c.X[0])
	}
	if c.ChainFollows < 4 {
		t.Fatalf("ChainFollows = %d; the warm loop never chained, so severing was not exercised", c.ChainFollows)
	}
}

// TestDeviceAccessesBypassHostPointers: with the MMU on and the data
// fast path warm, loads and stores to a device-mapped page must keep
// reaching the device (UART bytes arrive exactly once, status reads
// come from the device), while RAM accesses in the same loop use the
// host-pointer path.
func TestDeviceAccessesBypassHostPointers(t *testing.T) {
	const (
		textPA = uint64(0x8_0000)
		dataPA = uint64(0x40_0000)
		uartPA = uint64(0x0900_0000)
	)
	textVA := uint64(pac.KernelBase) | textPA
	dataVA := uint64(pac.KernelBase) | dataPA
	uartVA := uint64(pac.KernelBase) | uartPA

	a := asm.New()
	a.Label("entry")
	a.I(insn.MOVZ(insn.X5, 4, 0))   // iterations
	a.I(insn.MOVZ(insn.X6, 'A', 0)) // byte to transmit
	a.I(insn.MOVImm64(insn.X7, uartVA)...)
	a.I(insn.MOVImm64(insn.X8, dataVA)...)
	a.Label("loop")
	a.I(insn.STRB(insn.X6, insn.X7, 0))  // UART TX (device store)
	a.I(insn.LDRW(insn.X9, insn.X7, 24)) // UART status (device load, =1)
	a.I(insn.ADDr(insn.X10, insn.X10, insn.X9))
	a.I(insn.STR(insn.X5, insn.X8, 0)) // RAM store (host-pointer path)
	a.I(insn.LDR(insn.X11, insn.X8, 0))
	a.I(insn.SUBi(insn.X5, insn.X5, 1))
	a.CBNZ(insn.X5, "loop")
	a.I(insn.HLT(0))
	img, err := a.Link(map[string]uint64{".text": textVA})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Features{PAuth: true})
	u := &mem.UART{}
	if err := c.Bus.Map(uartPA, 0x1000, u); err != nil {
		t.Fatal(err)
	}
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(textPA+(s.Base-textVA), s.Bytes)
	}
	c.MMU.Enabled = true
	for off := uint64(0); off < 0x2000; off += mmu.PageSize {
		c.MMU.TT1.Map(textVA+off, textPA+off, mmu.KernelText)
	}
	c.MMU.TT1.Map(dataVA, dataPA, mmu.KernelData)
	c.MMU.TT1.Map(uartVA, uartPA, mmu.KernelData)
	c.PC = img.Symbols["entry"]
	if stop := c.Run(10000); stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}

	if got := u.Output(); got != "AAAA" {
		t.Fatalf("UART output = %q, want \"AAAA\" (device stores lost or duplicated)", got)
	}
	if c.X[10] != 4 {
		t.Fatalf("status sum = %d, want 4 (device loads served from RAM?)", c.X[10])
	}
	if c.X[11] != 1 {
		t.Fatalf("RAM readback = %d, want 1", c.X[11])
	}
	if v, _ := c.Bus.Load(dataPA, 8); v != 1 {
		t.Fatalf("RAM store lost: %d", v)
	}
}
