package cpu

import "camouflage/internal/insn"

// The cycle model approximates the in-order Cortex-A53 of the paper's
// Raspberry Pi 3 testbed at 1.2 GHz. Two costs are load-bearing for the
// evaluation and are asserted by calibration tests:
//
//   - every PAuth instruction costs PAuthCycles = 4, the PA-analogue
//     estimate the paper substitutes for real PAuth hardware (§6.1);
//   - switching one 128-bit PAuth key costs 9 cycles on average (§6.1.1):
//     installing a kernel key through the XOM setter costs 12 (a MOVZ+3×
//     MOVK chain per 64-bit half plus two MSRs), restoring a user key from
//     thread_struct costs 6 (LDP plus two MSRs), and every syscall does
//     both, so the per-key switching cost is (12+6)/2 = 9.
const (
	// ClockHz is the simulated core clock (Raspberry Pi 3, Cortex-A53).
	ClockHz = 1_200_000_000

	// PAuthCycles is the PA-analogue cost of every PAC*/AUT*/XPAC/PACGA
	// instruction (§6.1: "4-cycles per instruction").
	PAuthCycles = 4

	costALU       = 1
	costMul       = 3
	costDiv       = 8
	costLoad      = 2
	costStore     = 1
	costLoadPair  = 2
	costStorePair = 2
	costBranch    = 1
	costMRS       = 2
	costMSR       = 2
	// costMSRKey is the cost of an MSR to a PAuth key system register;
	// two of these (Lo+Hi) plus the one-cycle immediate chain make the
	// 9-cycles-per-key figure of §6.1.1.
	costMSRKey = 4
	costISB    = 8
	costSVC    = 1 // plus exception entry
	// costExcEntry and costERET model the pipeline flush and state
	// save/restore of an exception round trip.
	costExcEntry = 40
	costERET     = 30
)

// CyclesToNanos converts simulated cycles to nanoseconds at ClockHz.
func CyclesToNanos(cycles uint64) float64 {
	return float64(cycles) * 1e9 / float64(ClockHz)
}

// costTab is cost() precomputed over the whole uint8 op space so the
// execute loop pays one array load instead of a switch dispatch.
var costTab [256]uint64

func init() {
	for op := 0; op < len(costTab); op++ {
		costTab[op] = cost(insn.Op(op))
	}
}

// cost returns the base cycle cost of an instruction. PAuth branch forms
// pay both the authentication and the branch.
func cost(op insn.Op) uint64 {
	switch op {
	case insn.OpMOVZ, insn.OpMOVK, insn.OpMOVN, insn.OpADR, insn.OpADRP,
		insn.OpADDi, insn.OpSUBi, insn.OpBFM, insn.OpUBFM, insn.OpSBFM,
		insn.OpADDr, insn.OpSUBr, insn.OpSUBSr, insn.OpANDr, insn.OpORRr,
		insn.OpEORr, insn.OpANDSr, insn.OpLSLV, insn.OpLSRV, insn.OpCSEL,
		insn.OpNOP:
		return costALU
	case insn.OpMADD:
		return costMul
	case insn.OpUDIV:
		return costDiv
	case insn.OpLDR, insn.OpLDRW, insn.OpLDRB, insn.OpLDRpost:
		return costLoad
	case insn.OpSTR, insn.OpSTRW, insn.OpSTRB, insn.OpSTRpre:
		return costStore
	case insn.OpLDP, insn.OpLDPpost:
		return costLoadPair
	case insn.OpSTP, insn.OpSTPpre:
		return costStorePair
	case insn.OpB, insn.OpBL, insn.OpBcond, insn.OpCBZ, insn.OpCBNZ,
		insn.OpBR, insn.OpBLR, insn.OpRET:
		return costBranch
	case insn.OpPACIA, insn.OpPACIB, insn.OpPACDA, insn.OpPACDB,
		insn.OpAUTIA, insn.OpAUTIB, insn.OpAUTDA, insn.OpAUTDB,
		insn.OpPACIZA, insn.OpPACIZB, insn.OpPACDZA, insn.OpPACDZB,
		insn.OpAUTIZA, insn.OpAUTIZB, insn.OpAUTDZA, insn.OpAUTDZB,
		insn.OpXPACI, insn.OpXPACD, insn.OpPACGA,
		insn.OpPACIA1716, insn.OpPACIB1716, insn.OpAUTIA1716, insn.OpAUTIB1716:
		return PAuthCycles
	case insn.OpBLRAA, insn.OpBLRAB, insn.OpBRAA, insn.OpBRAB,
		insn.OpRETAA, insn.OpRETAB:
		return PAuthCycles + costBranch
	case insn.OpMRS:
		return costMRS
	case insn.OpMSR:
		return costMSR // key registers adjusted in execute
	case insn.OpISB:
		return costISB
	case insn.OpSVC:
		return costSVC
	case insn.OpERET:
		return costERET
	case insn.OpHLT:
		return 1
	}
	return costALU
}
