package cpu

// Counter-correctness tests for the observability instrumentation
// (DESIGN.md §11): drive pinned execution scenarios and assert the
// registry deltas they must produce. Counters are process-global, so
// every assertion works on before/after deltas.

import (
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/insn"
	"camouflage/internal/obs"
	"camouflage/internal/pac"
)

// obsDeltaOf runs f and returns the registry movement it caused.
func obsDeltaOf(f func()) [obs.NumCounters]uint64 {
	before := obs.CounterTotals()
	f()
	after := obs.CounterTotals()
	var d [obs.NumCounters]uint64
	for i := range d {
		d[i] = after[i] - before[i]
	}
	return d
}

// TestObsHotLoopCounters pins the basic execution-pipeline counters: a
// hot loop must retire instructions, fill blocks, fuse at least one
// trace and enter it, and everything must be flushed by Run exit.
func TestObsHotLoopCounters(t *testing.T) {
	var c *CPU
	d := obsDeltaOf(func() {
		c = runSnippet(t, nil, func(a *asm.Assembler) {
			a.I(insn.MOVZ(insn.X5, 256, 0))
			a.Label("loop")
			a.I(insn.ADDr(insn.X6, insn.X6, insn.X5))
			a.I(insn.SUBi(insn.X5, insn.X5, 1))
			a.CBNZ(insn.X5, "loop")
			a.I(insn.HLT(0))
		})
	})
	if d[obs.CRetired] != c.Retired {
		t.Errorf("CRetired delta = %d, want the CPU's own %d", d[obs.CRetired], c.Retired)
	}
	if d[obs.CCycles] != c.Cycles {
		t.Errorf("CCycles delta = %d, want %d", d[obs.CCycles], c.Cycles)
	}
	if d[obs.CBlockFill] == 0 {
		t.Error("no block-cache fills recorded")
	}
	if d[obs.CTraceBuild] == 0 || d[obs.CTraceEnter] == 0 {
		t.Errorf("trace build/enter deltas = %d/%d; the loop never fused", d[obs.CTraceBuild], d[obs.CTraceEnter])
	}
	if d[obs.CTraceBuild] != c.TracesBuilt || d[obs.CTraceEnter] != c.TraceFollows {
		t.Errorf("trace deltas %d/%d diverge from CPU diagnostics %d/%d",
			d[obs.CTraceBuild], d[obs.CTraceEnter], c.TracesBuilt, c.TraceFollows)
	}
	// A terminating looping trace exits somewhere: the per-cause cells
	// must account for at least one exit.
	exits := d[obs.CTraceExitEnd] + d[obs.CTraceExitBranch] + d[obs.CTraceExitFault] +
		d[obs.CTraceExitHazard] + d[obs.CTraceExitIRQ] + d[obs.CTraceExitBudget] + d[obs.CTraceExitStop]
	if exits == 0 {
		t.Error("no trace exits recorded for a loop that terminated")
	}
}

// TestObsSameCoreSeverCounters drives the PR 6 same-core severing
// route (guest store into a fused page) and asserts both the
// block-cache sever and the stale-trace sever are counted.
func TestObsSameCoreSeverCounters(t *testing.T) {
	patch := insn.MOVZ(insn.X0, 7, 0).Encode()
	d := obsDeltaOf(func() {
		runSnippet(t, nil, func(a *asm.Assembler) {
			a.I(insn.MOVZ(insn.X5, 64, 0))
			a.Label("loop")
			a.I(insn.MOVZ(insn.X0, 1, 0))
			a.I(insn.SUBi(insn.X5, insn.X5, 1))
			a.CBNZ(insn.X5, "loop")
			a.CBNZ(insn.X6, "done")
			a.I(insn.MOVZ(insn.X6, 1, 0))
			a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
			a.ADR(insn.X10, "loop")
			a.I(insn.STRW(insn.X9, insn.X10, 0))
			a.I(insn.MOVZ(insn.X5, 4, 0))
			a.B("loop")
			a.Label("done")
			a.I(insn.HLT(0))
		})
	})
	if d[obs.CBlockSever] == 0 {
		t.Error("guest store into a code page recorded no block-cache sever")
	}
	if d[obs.CTraceSeverStale] == 0 {
		t.Error("re-entry of a patched trace recorded no stale sever")
	}
}

// TestObsCrossCoreSeverCounters drives the PR 6 cross-core severing
// route: a peer store moves the shared generation cells, and the
// victim's next trace entry must count a stale sever.
func TestObsCrossCoreSeverCounters(t *testing.T) {
	patch := insn.MOVZ(insn.X0, 7, 0).Encode()
	c0, c1, img := buildPeers(t, func(a *asm.Assembler) {
		a.Label("patcher")
		a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
		a.ADR(insn.X10, "loop")
		a.I(insn.STRW(insn.X9, insn.X10, 0))
		a.I(insn.HLT(0))
		a.Label("runner")
		a.I(insn.MOVZ(insn.X5, 400, 0))
		a.Label("loop")
		a.I(insn.MOVZ(insn.X0, 1, 0))
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "loop")
		a.I(insn.HLT(0))
	})
	c1.PC = img.Symbols["runner"]
	if stop := c1.Run(200); stop.Kind != StopLimit {
		t.Fatalf("cpu1 warm run: %+v", stop)
	}
	c0.PC = img.Symbols["patcher"]
	if stop := c0.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu0 patch run: %+v", stop)
	}
	d := obsDeltaOf(func() {
		if stop := c1.Run(10_000); stop.Kind != StopHLT {
			t.Fatalf("cpu1 resume: %+v", stop)
		}
	})
	if d[obs.CTraceSeverStale] == 0 {
		t.Error("peer-severed trace re-entry recorded no stale sever")
	}
}

// TestObsPACCounters pins the per-key PAC attribution: IB
// authentications land in the IB cell, and a corrupted pointer adds a
// failure in the same key's failure cell.
func TestObsPACCounters(t *testing.T) {
	d := obsDeltaOf(func() {
		runSnippet(t, func(c *CPU) {
			c.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 3, Lo: 9})
		}, func(a *asm.Assembler) {
			a.I(insn.MOVZ(insn.X0, 0x4000, 0))
			a.I(insn.MOVZ(insn.X1, 0, 0)) // modifier
			a.I(insn.PACIB(insn.X0, insn.X1))
			a.I(insn.AUTIB(insn.X0, insn.X1)) // good auth
			a.I(insn.HLT(0))
		})
	})
	if d[obs.CPACAuthIB] == 0 {
		t.Errorf("CPACAuthIB delta = 0 after an AUTIB")
	}
	if d[obs.CPACAuthIA] != 0 {
		t.Errorf("CPACAuthIA delta = %d; IB auth leaked into the IA cell", d[obs.CPACAuthIA])
	}
	if d[obs.CPACFailIB] != 0 {
		t.Errorf("CPACFailIB delta = %d for a valid authentication", d[obs.CPACFailIB])
	}
}

// TestObsFlushOnRunExit pins the memory-model boundary: counters
// accrued during a Run are visible to scrapes immediately after Run
// returns (the flush lives in Run's defer, not on any slower path).
func TestObsFlushOnRunExit(t *testing.T) {
	a := asm.New()
	a.Label("entry")
	a.I(insn.MOVZ(insn.X0, 1, 0))
	a.I(insn.HLT(0))
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c.PC = img.Symbols["entry"]
	before := obs.CounterTotal(obs.CRetired)
	if stop := c.Run(100); stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if got := obs.CounterTotal(obs.CRetired) - before; got != c.Retired {
		t.Fatalf("retired visible after Run = %d, want %d", got, c.Retired)
	}
}
