// Package cpu implements the simulated AArch64 core: architectural state,
// a block-structured fetch–decode–execute pipeline (software TLB in the
// mmu package, decoded basic-block cache here), the exception model,
// PAuth execution semantics driven by the pac package, and a cycle model
// calibrated to the paper's PA-analogue (see cost.go).
package cpu

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"camouflage/internal/insn"
	"camouflage/internal/mem"
	"camouflage/internal/mmu"
	"camouflage/internal/obs"
	"camouflage/internal/pac"
)

// totalCycles/totalRetired aggregate, across every CPU in the process,
// the work done by completed Run calls. The experiment harness snapshots
// them around each experiment to report simulated throughput
// (BENCH_results.json) without threading counters through every layer.
var totalCycles, totalRetired atomic.Uint64

// TotalCounters returns the process-wide simulated (cycles, instructions)
// retired by all Run calls so far.
func TotalCounters() (cycles, instrs uint64) {
	return totalCycles.Load(), totalRetired.Load()
}

// Features selects the architecture revision of the simulated core.
type Features struct {
	// PAuth is true on ARMv8.3-A cores. When false (ARMv8.0), the
	// register-form PAuth instructions are undefined, the HINT-space
	// forms (PACIB1716 etc.) execute as NOPs, and MSR to key registers is
	// undefined — the situation the paper's backwards-compatible build
	// targets (§5.5).
	PAuth bool
}

// Exception classes (ESR_EL1.EC).
const (
	ECUnknown     = 0x00
	ECSVC64       = 0x15
	ECIAbortLower = 0x20
	ECIAbortSame  = 0x21
	ECDAbortLower = 0x24
	ECDAbortSame  = 0x25
)

// Vector table offsets from VBAR_EL1 (the subset Linux uses).
const (
	VecSyncCurrent = 0x200 // synchronous exception from the current EL
	VecIRQCurrent  = 0x280
	VecSyncLower   = 0x400 // synchronous exception from a lower EL
	VecIRQLower    = 0x480
)

// StopKind says why Run returned.
type StopKind int

// Stop reasons.
const (
	StopLimit StopKind = iota // instruction budget exhausted
	StopHLT                   // guest executed HLT
	StopError                 // unrecoverable simulation error
)

// Stop describes why Run returned.
type Stop struct {
	Kind StopKind
	// Code is the HLT immediate for StopHLT.
	Code uint16
	// Err holds detail for StopError.
	Err error
}

// MSRHook observes or intercepts system-register writes. Returning true
// consumes the write (the hypervisor lockdown uses this to deny MMU
// control writes after boot).
type MSRHook func(reg insn.SysReg, val uint64) bool

// CPU is one simulated core.
type CPU struct {
	// X holds the general-purpose registers X0..X30.
	X [31]uint64
	// PC is the program counter.
	PC uint64
	// EL is the current exception level (0 or 1).
	EL int
	// NZCV condition flags.
	N, Z, C, V bool
	// IRQMasked is PSTATE.I.
	IRQMasked bool

	// sp is banked per EL (SP_EL0, SP_EL1).
	sp [2]uint64

	// Named system registers.
	SCTLR      uint64
	VBAR       uint64
	ELR        uint64
	SPSR       uint64
	ESR        uint64
	FAR        uint64
	TTBR0      uint64
	TTBR1      uint64
	CONTEXTIDR uint64
	TPIDR      uint64
	// TPIDR0 models TPIDR_EL0. SMP kernel builds repurpose it as the
	// per-CPU data base (the role TPIDR_EL1 plays on arm64 Linux, which
	// this model already spends on `current`): the host loads it with
	// the CPU's per-CPU frame VA at construction, and the kernel's
	// emitPerCPUAddr reads it with a single MRS.
	TPIDR0 uint64

	// Bus is the physical memory system.
	Bus *mem.Bus
	// MMU performs address translation.
	MMU *mmu.MMU
	// Signer implements the PAC primitive; its key bank mirrors the
	// APxKey system registers.
	Signer *pac.Signer
	// Feat is the architecture revision.
	Feat Features

	// Cycles counts simulated cycles; Retired counts instructions.
	Cycles  uint64
	Retired uint64

	// PACFailures counts AUT* mismatches (the poisoned-pointer events the
	// kernel's brute-force mitigation watches, §5.4).
	PACFailures uint64

	// OnMSR, if set, is consulted before any system-register write.
	OnMSR MSRHook

	// IRQPending is set by devices; checked between instructions when
	// unmasked at EL0 (the model takes IRQs only from EL0, as the paper's
	// measurements do not exercise nested kernel interrupts).
	IRQPending bool

	// NoBlockCache reverts fetch to the seed's per-word decode cache
	// (benchmarking baseline; set before running, not mid-flight).
	NoBlockCache bool

	// ID is the CPU's index within its machine (0 for the boot CPU).
	// Guest code reads it through MPIDR_EL1.
	ID int

	// cluster is the shared invalidation domain: code-page generation
	// cells, the execution generation and the memo epoch, published
	// atomically so stores on one CPU invalidate cached blocks, chain
	// edges and memo verdicts on its peers (DESIGN.md §9).
	cluster *Cluster

	// blocks caches decoded straight-line runs keyed by entry PA — a
	// strictly per-CPU structure (like a hardware I-cache). A block never
	// crosses a page boundary, so one (page, generation-cell) pair per
	// block suffices for precise invalidation: the cells live in the
	// shared cluster, so peer stores invalidate this CPU's blocks too.
	blocks map[uint64]*codeBlock
	// ChainFollows counts block transitions served by a direct chain edge
	// instead of a full fetchBlock (diagnostics).
	ChainFollows uint64
	// TracesBuilt counts superblock traces fused from hot chains;
	// TraceFollows counts trace entries served by runTrace (diagnostics;
	// see superblock.go).
	TracesBuilt  uint64
	TraceFollows uint64

	// ibtb is the direct-mapped indirect-branch target cache: memoized
	// fetchBlock resolutions for the transitions direct chaining cannot
	// cover (BR/BLR/RET and the authenticated forms, ERET returns,
	// exception-vector entries), keyed by the low bits of the target PC.
	// Each slot is an ordinary chainEdge, so the same chainValid contract
	// — and the same severing conditions — apply on every hit.
	ibtb [ibtbSize]chainEdge

	// sgenPN/sgenCell are a tiny direct-mapped memo of cluster cell
	// lookups for the store fast path: stores cluster on a handful of
	// pages (stack, per-CPU block, the workload's data), so most stores
	// resolve their code-invalidation check against this array instead
	// of the shared map. A nil cell is a valid memo ("page never held
	// code") only within one cellEpoch: any CPU decoding from a fresh
	// page moves the epoch, and noteGuestStore clears the memo before
	// trusting it.
	sgenPN    [8]uint64
	sgenCell  [8]*atomic.Uint64
	memoEpoch uint64

	// legacyDecode is the seed's per-word decode cache, active only under
	// NoBlockCache.
	legacyDecode map[uint64]insn.Instr

	tracer Tracer

	// obsLocal is this core's block of observability counter cells:
	// plain unsynchronized increments while the core runs (one
	// goroutine owns a running CPU, the same discipline its registers
	// rely on), drained into the process-wide obs registry by flushObs
	// when Run returns. obsBase snapshots the pre-existing cumulative
	// diagnostics (Cycles, Retired, chain/trace counts, MMU and PAC
	// counters) at the last flush so only deltas are published; a
	// counter that moved backwards (snapshot restore rewound it)
	// re-baselines instead of underflowing.
	obsLocal obs.Local
	obsBase  obsBaseline
}

// obsBaseline holds the last-flushed values of the cumulative
// diagnostic counters flushObs publishes as deltas.
type obsBaseline struct {
	cycles, retired                         uint64
	chainFollows, tracesBuilt, traceFollows uint64
	mmuHits, mmuMisses, mmuRearms, mmuWalks uint64
	pacAuths, pacFails                      [pac.NumKeys]uint64
}

// obsDelta returns cur minus *base and re-baselines, treating a rewound
// counter (snapshot restore) as a fresh baseline.
func obsDelta(cur uint64, base *uint64) uint64 {
	d := cur - *base
	if cur < *base {
		d = 0
	}
	*base = cur
	return d
}

// flushObs drains this core's observability counters into the shared
// registry: the new event cells verbatim, the cumulative diagnostics as
// deltas against the last flush. Called when Run returns — never from
// the instruction loop — and allocation-free, so the zero-allocs
// steady-state contract holds with instrumentation compiled in.
func (c *CPU) flushObs() {
	l := &c.obsLocal
	b := &c.obsBase
	l.V[obs.CCycles] += obsDelta(c.Cycles, &b.cycles)
	l.V[obs.CRetired] += obsDelta(c.Retired, &b.retired)
	l.V[obs.CChainFollow] += obsDelta(c.ChainFollows, &b.chainFollows)
	l.V[obs.CTraceBuild] += obsDelta(c.TracesBuilt, &b.tracesBuilt)
	l.V[obs.CTraceEnter] += obsDelta(c.TraceFollows, &b.traceFollows)
	if m := c.MMU; m != nil {
		l.V[obs.CTLBHit] += obsDelta(m.Hits, &b.mmuHits)
		l.V[obs.CTLBMiss] += obsDelta(m.Misses, &b.mmuMisses)
		l.V[obs.CHostRearm] += obsDelta(m.Rearms, &b.mmuRearms)
		l.V[obs.CS2Walk] += obsDelta(m.S2Walks, &b.mmuWalks)
	}
	if s := c.Signer; s != nil {
		for k := 0; k < pac.NumKeys; k++ {
			l.V[obs.CPACAuthIA+obs.CounterID(k)] += obsDelta(s.Auths[k], &b.pacAuths[k])
			l.V[obs.CPACFailIA+obs.CounterID(k)] += obsDelta(s.Fails[k], &b.pacFails[k])
		}
	}
	l.Flush(c.ID)
}

// codeBlock is one decoded straight-line run: the instructions from the
// entry PA up to and including the first control-flow instruction (or the
// page boundary).
type codeBlock struct {
	instrs []insn.Instr
	page   uint64
	gen    uint64
	// genp points at the page's shared generation cell; genp.Load() ==
	// gen while the block is valid (the same condition fetchBlock checks
	// via the cluster map, without the map). The cell is shared across
	// the machine's CPUs, so a peer's store invalidates this block too.
	genp *atomic.Uint64
	// fall and taken are the lazily resolved direct successor links: fall
	// covers the sequential exit (a conditional not taken, or a
	// straight-line run spilling past the page boundary / size cap),
	// taken the immediate-target branch exit (B, BL, B.cond, CBZ, CBNZ).
	fall, taken chainEdge
	// heat counts entries into the block; at hotThreshold the chain
	// starting here is fused into tr, a superblock trace (superblock.go).
	heat uint32
	tr   *trace
}

// chainEdge is a memoized fetchBlock result: "starting PC e.pc resolved
// to block e.to under this translation regime". Following an edge is
// sound only while every snapshot still matches — the same §3 contract a
// TLB entry obeys — and while the target block itself is valid
// (to.gen == *to.genp, the pageGen/execGen clause). The regime snapshot
// pins the stage-1 table identity+generation for e.pc's address side,
// the stage-2 generation+enable, the EL and the MMU enable; any
// Map/Unmap, context-switch table swap, stage-2 Restrict/Clear or
// exception-level change therefore severs the chain automatically.
type chainEdge struct {
	to    *codeBlock
	pc    uint64
	table *mmu.Table
	tgen  uint64
	s2gen uint64
	s2en  bool
	tt1   bool // e.pc translates through TT1 (kernel side)
	mmuOn bool
	el    int8
}

// maxBlockInstrs bounds decode-ahead waste on pathological straight-line
// runs; a page holds at most 1024 instructions anyway.
const maxBlockInstrs = 256

// New returns a CPU wired to a fresh bus and MMU using the default VMSAv8
// layout, starting at EL1 with PAuth available. The CPU forms its own
// single-member cluster; NewPeer grows the machine.
func New(feat Features) *CPU {
	cfg := pac.DefaultConfig
	c := &CPU{
		Bus:       mem.NewBus(),
		MMU:       mmu.New(cfg),
		Signer:    pac.NewSigner(cfg),
		Feat:      feat,
		EL:        1,
		IRQMasked: true,
		cluster:   newCluster(),
		blocks:    make(map[uint64]*codeBlock),
	}
	// Wire the MMU's host-pointer fast path to this CPU's bus: data-side
	// TLB fills cache the backing RAM page so repeat loads/stores skip
	// bus routing entirely (device windows never get a pointer).
	c.MMU.Mem = c.Bus
	c.clearStoreGenMemo()
	return c
}

// NewPeer returns a sibling core of the same simulated machine: it
// shares c's physical bus (RAM and device windows), stage-1 kernel
// table, stage-2 overlay, MMU-enable state and invalidation cluster, but
// owns its own architectural state, TLB, decoded-block cache and chain
// edges — exactly the per-core/shared split of real SMP hardware. The
// peer starts with its own empty user table (TT0 is swapped per-CPU on
// context switch) and its own PAuth key bank (keys are installed per
// core by the secondary boot path, as on hardware).
func (c *CPU) NewPeer(id int) *CPU {
	p := &CPU{
		Bus:       c.Bus,
		MMU:       mmu.New(c.MMU.Cfg),
		Signer:    pac.NewSigner(c.MMU.Cfg),
		Feat:      c.Feat,
		EL:        1,
		IRQMasked: true,
		ID:        id,
		cluster:   c.cluster,
		blocks:    make(map[uint64]*codeBlock),
	}
	p.MMU.TT1 = c.MMU.TT1
	p.MMU.S2 = c.MMU.S2
	p.MMU.Enabled = c.MMU.Enabled
	p.MMU.NoTLB = c.MMU.NoTLB
	p.MMU.NoHostPtr = c.MMU.NoHostPtr
	p.MMU.Mem = c.Bus
	p.clearStoreGenMemo()
	return p
}

// Cluster returns the CPU's shared invalidation domain (tests and
// diagnostics).
func (c *CPU) Cluster() *Cluster { return c.cluster }

// clearStoreGenMemo empties the cell lookup memo (no physical page
// number is all-ones, so ^0 marks a slot empty) and re-synchronises it
// with the cluster's cell epoch.
func (c *CPU) clearStoreGenMemo() {
	for i := range c.sgenPN {
		c.sgenPN[i] = ^uint64(0)
		c.sgenCell[i] = nil
	}
	c.memoEpoch = c.cluster.cellEpoch.Load()
}

// Reg reads Xn (register 31 reads as zero).
func (c *CPU) Reg(r insn.Reg) uint64 {
	if r >= 31 {
		return 0
	}
	return c.X[r]
}

// SetReg writes Xn (writes to register 31 are discarded).
func (c *CPU) SetReg(r insn.Reg, v uint64) {
	if r < 31 {
		c.X[r] = v
	}
}

// regSP reads Xn with register 31 meaning SP (current EL).
func (c *CPU) regSP(r insn.Reg) uint64 {
	if r == 31 {
		return c.sp[c.EL]
	}
	return c.X[r]
}

// setRegSP writes Xn with register 31 meaning SP.
func (c *CPU) setRegSP(r insn.Reg, v uint64) {
	if r == 31 {
		c.sp[c.EL] = v
		return
	}
	c.X[r] = v
}

// SP returns the stack pointer of the given EL.
func (c *CPU) SP(el int) uint64 { return c.sp[el] }

// SetSP sets the stack pointer of the given EL.
func (c *CPU) SetSP(el int, v uint64) { c.sp[el] = v }

// CurrentSP returns the active stack pointer.
func (c *CPU) CurrentSP() uint64 { return c.sp[c.EL] }

// keyFor maps a PAuth key system register to (key id, is-high-half). The
// ten key registers occupy a contiguous encoding range (op0=3, op1=0,
// CRn=2, CRm=1..3), so every other register — including the ESR/ELR/SPSR
// traffic of a hot trap path — is rejected with two compares.
func keyFor(r insn.SysReg) (pac.KeyID, bool, bool) {
	if r < insn.APIAKeyLo_EL1 || r > insn.APGAKeyHi_EL1 {
		return 0, false, false
	}
	switch r {
	case insn.APIAKeyLo_EL1:
		return pac.KeyIA, false, true
	case insn.APIAKeyHi_EL1:
		return pac.KeyIA, true, true
	case insn.APIBKeyLo_EL1:
		return pac.KeyIB, false, true
	case insn.APIBKeyHi_EL1:
		return pac.KeyIB, true, true
	case insn.APDAKeyLo_EL1:
		return pac.KeyDA, false, true
	case insn.APDAKeyHi_EL1:
		return pac.KeyDA, true, true
	case insn.APDBKeyLo_EL1:
		return pac.KeyDB, false, true
	case insn.APDBKeyHi_EL1:
		return pac.KeyDB, true, true
	case insn.APGAKeyLo_EL1:
		return pac.KeyGA, false, true
	case insn.APGAKeyHi_EL1:
		return pac.KeyGA, true, true
	}
	return 0, false, false
}

// WriteSys performs an MSR write (also used by the bootloader to establish
// initial state).
func (c *CPU) WriteSys(r insn.SysReg, v uint64) error {
	if c.OnMSR != nil && c.OnMSR(r, v) {
		return nil
	}
	if id, hi, isKey := keyFor(r); isKey {
		if !c.Feat.PAuth {
			return fmt.Errorf("cpu: MSR %v undefined without PAuth", r)
		}
		k := c.Signer.Key(id)
		if hi {
			k.Hi = v
		} else {
			k.Lo = v
		}
		c.Signer.SetKey(id, k)
		return nil
	}
	switch r {
	case insn.SCTLR_EL1:
		c.SCTLR = v
	case insn.VBAR_EL1:
		c.VBAR = v
	case insn.ELR_EL1:
		c.ELR = v
	case insn.SPSR_EL1:
		c.SPSR = v
	case insn.ESR_EL1:
		c.ESR = v
	case insn.FAR_EL1:
		c.FAR = v
	case insn.TTBR0_EL1:
		c.TTBR0 = v
	case insn.TTBR1_EL1:
		c.TTBR1 = v
	case insn.CONTEXTIDR_EL1:
		c.CONTEXTIDR = v
	case insn.TPIDR_EL1:
		c.TPIDR = v
	case insn.TPIDR_EL0:
		c.TPIDR0 = v
	case insn.SP_EL0:
		c.sp[0] = v
	default:
		return fmt.Errorf("cpu: MSR to unknown register %v", r)
	}
	return nil
}

// ReadSys performs an MRS read.
func (c *CPU) ReadSys(r insn.SysReg) (uint64, error) {
	if id, hi, isKey := keyFor(r); isKey {
		if !c.Feat.PAuth {
			return 0, fmt.Errorf("cpu: MRS %v undefined without PAuth", r)
		}
		k := c.Signer.Key(id)
		if hi {
			return k.Hi, nil
		}
		return k.Lo, nil
	}
	switch r {
	case insn.SCTLR_EL1:
		return c.SCTLR, nil
	case insn.VBAR_EL1:
		return c.VBAR, nil
	case insn.ELR_EL1:
		return c.ELR, nil
	case insn.SPSR_EL1:
		return c.SPSR, nil
	case insn.ESR_EL1:
		return c.ESR, nil
	case insn.FAR_EL1:
		return c.FAR, nil
	case insn.TTBR0_EL1:
		return c.TTBR0, nil
	case insn.TTBR1_EL1:
		return c.TTBR1, nil
	case insn.CONTEXTIDR_EL1:
		return c.CONTEXTIDR, nil
	case insn.TPIDR_EL1:
		return c.TPIDR, nil
	case insn.TPIDR_EL0:
		return c.TPIDR0, nil
	case insn.MPIDR_EL1:
		// Aff0 carries the core number (read-only, as in hardware).
		return uint64(c.ID), nil
	case insn.SP_EL0:
		return c.sp[0], nil
	case insn.PMCCNTR_EL0:
		return c.Cycles, nil
	case insn.CNTFRQ_EL0:
		return ClockHz, nil
	case insn.CNTVCT_EL0:
		return c.Cycles, nil // 1:1 timer for simplicity
	}
	return 0, fmt.Errorf("cpu: MRS from unknown register %v", r)
}

// loadMem translates and loads size bytes. The fast path is a TLB hit
// with a live host pointer: a bounds-checked little-endian read from the
// backing page array, no bus routing, no page-map lookup, no
// allocations. Device-mapped and untouched pages never carry a host
// pointer, so they — and every miss — take the Translate + Bus path.
func (c *CPU) loadMem(va uint64, size int) (uint64, *mmu.Fault, error) {
	if pg, off, _, ok := c.MMU.HostData(va, c.EL, uint64(size), mmu.Load); ok {
		switch size {
		case 8:
			return binary.LittleEndian.Uint64(pg[off : off+8]), nil, nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(pg[off : off+4])), nil, nil
		default:
			return uint64(pg[off]), nil, nil
		}
	}
	pa, f := c.MMU.Translate(va, mmu.Load, c.EL)
	if f != nil {
		return 0, f, nil
	}
	v, err := c.Bus.Load(pa, size)
	return v, nil, err
}

// storeMem translates and stores size bytes, invalidating any decoded
// instructions the store covers (self-modifying code, bootloader
// patching). Invalidation is page-granular: if a touched page ever held a
// cached block, its generation is bumped, which kills every block on the
// page — including blocks that merely *span* the written range from an
// earlier entry point (the seed's word-granular delete missed those).
// execGen moves once per store, not once per touched page: the execution
// loop only compares it for equality, so one bump carries the same
// information as several.
//
// The fast path mirrors loadMem's: a store-side TLB hit with a live host
// pointer writes the backing page array directly. The code-invalidation
// check stays on the fast path (one pageGen cell lookup), because a
// store through a host pointer is still a guest store into potential
// code. Stores that straddle a page boundary miss the fast path (the
// bounds check fails) and invalidate both pages on the slow path.
func (c *CPU) storeMem(va uint64, size int, v uint64) (*mmu.Fault, error) {
	if !c.NoBlockCache {
		if pg, off, pn, ok := c.MMU.HostData(va, c.EL, uint64(size), mmu.Store); ok {
			c.noteGuestStore(pn)
			switch size {
			case 8:
				binary.LittleEndian.PutUint64(pg[off:off+8], v)
			case 4:
				binary.LittleEndian.PutUint32(pg[off:off+4], uint32(v))
			default:
				pg[off] = byte(v)
			}
			return nil, nil
		}
	}
	pa, f := c.MMU.Translate(va, mmu.Store, c.EL)
	if f != nil {
		return f, nil
	}
	last := (pa + uint64(size) - 1) >> mmu.PageShift
	for p := pa >> mmu.PageShift; p <= last; p++ {
		if c.cluster.noteStore(p) {
			c.obsLocal.V[obs.CBlockSever]++
		}
	}
	if c.NoBlockCache && c.legacyDecode != nil {
		for a := pa &^ 3; a < pa+uint64(size); a += 4 {
			delete(c.legacyDecode, a)
		}
	}
	return nil, c.Bus.Store(pa, size, v)
}

// hostStorePair is the STP fast-path probe: a 16-byte host-pointer hit,
// gated on the block cache being live (the legacy decode map needs the
// slow path's word-granular invalidation).
func (c *CPU) hostStorePair(addr uint64) (*[mem.PageSize]byte, uint64, uint64, bool) {
	if c.NoBlockCache {
		return nil, 0, 0, false
	}
	return c.MMU.HostData(addr, c.EL, 16, mmu.Store)
}

// noteGuestStore runs the block-cache invalidation contract for a
// fast-path store to physical page pn: if the page ever held code — on
// any CPU of the cluster — bump its generation cell and the shared
// execGen. The direct-mapped memo keeps the common no-code case to an
// array probe; it is trusted only while the cluster's cell epoch is
// unchanged, because a peer decoding from a fresh page turns a memoized
// nil verdict stale.
func (c *CPU) noteGuestStore(pn uint64) {
	if e := c.cluster.cellEpoch.Load(); e != c.memoEpoch {
		c.clearStoreGenMemo()
	}
	i := pn & 7
	var g *atomic.Uint64
	if c.sgenPN[i] == pn {
		g = c.sgenCell[i]
	} else {
		g = c.cluster.lookup(pn)
		c.sgenPN[i], c.sgenCell[i] = pn, g
	}
	if g != nil {
		g.Add(1)
		c.cluster.execGen.Add(1)
		c.obsLocal.V[obs.CBlockSever]++
	}
}

// fetchBlock translates PC and returns the decoded basic block starting
// there, decoding it if absent or stale.
func (c *CPU) fetchBlock() (*codeBlock, *mmu.Fault, error) {
	pa, f := c.MMU.Translate(c.PC, mmu.Fetch, c.EL)
	if f != nil {
		return nil, f, nil
	}
	if b, ok := c.blocks[pa]; ok {
		if b.gen == b.genp.Load() {
			return b, nil, nil
		}
		// The re-decode replaces the stale block; a trace fused onto it
		// dies with it.
		if b.tr != nil {
			c.obsLocal.V[obs.CTraceSeverStale]++
		}
	}
	return c.decodeBlock(pa)
}

// decodeBlock decodes the straight-line run at pa: instructions are
// appended until the first control-flow or system instruction, the page
// boundary, or the block size cap. The block snapshots its page's
// generation so stores can invalidate it precisely.
func (c *CPU) decodeBlock(pa uint64) (*codeBlock, *mmu.Fault, error) {
	page := pa >> mmu.PageShift
	// The shared cell is created on first decode; cluster.cell bumps the
	// cell epoch then, which invalidates every CPU's memoized "no cell"
	// verdict for this page.
	genp := c.cluster.cell(page)
	b := &codeBlock{page: page, gen: genp.Load(), genp: genp}
	end := (page + 1) << mmu.PageShift
	for a := pa; a < end && len(b.instrs) < maxBlockInstrs; a += insn.Size {
		w, err := c.Bus.Load(a, 4)
		if err != nil {
			if len(b.instrs) == 0 {
				return nil, nil, err
			}
			break
		}
		i := insn.Decode(uint32(w))
		b.instrs = append(b.instrs, i)
		if endsBlock(i.Op) {
			break
		}
	}
	c.blocks[pa] = b
	c.obsLocal.V[obs.CBlockFill]++
	return b, nil, nil
}

// endsBlock reports whether op terminates a straight-line decode run:
// anything that branches, takes an exception, halts, or (MSR) can change
// translation or PAuth state out from under the pre-decoded run.
func endsBlock(op insn.Op) bool {
	switch op {
	case insn.OpB, insn.OpBL, insn.OpBcond, insn.OpCBZ, insn.OpCBNZ,
		insn.OpBR, insn.OpBLR, insn.OpRET,
		insn.OpBLRAA, insn.OpBLRAB, insn.OpBRAA, insn.OpBRAB,
		insn.OpRETAA, insn.OpRETAB,
		insn.OpERET, insn.OpSVC, insn.OpHLT, insn.OpMSR, insn.OpInvalid:
		return true
	}
	return false
}

// fetchLegacy is the seed's per-word fetch path (NoBlockCache baseline).
func (c *CPU) fetchLegacy() (insn.Instr, *mmu.Fault, error) {
	pa, f := c.MMU.Translate(c.PC, mmu.Fetch, c.EL)
	if f != nil {
		return insn.Instr{}, f, nil
	}
	if c.legacyDecode == nil {
		c.legacyDecode = make(map[uint64]insn.Instr)
	}
	if i, ok := c.legacyDecode[pa]; ok {
		return i, nil, nil
	}
	w, err := c.Bus.Load(pa, 4)
	if err != nil {
		return insn.Instr{}, nil, err
	}
	i := insn.Decode(uint32(w))
	c.legacyDecode[pa] = i
	return i, nil, nil
}

// InvalidateDecode drops every decoded instruction (used after host-side
// writes to guest code, e.g. module loading or bootloader key-hiding,
// which bypass storeMem's tracking). This CPU's block map is replaced;
// every *other* CPU's blocks and chain edges die through the shared
// cluster: invalidateAll bumps every generation cell, and a block (or
// the target of a chain edge) validates only while its cell is
// unchanged — so nothing stale stays reachable anywhere in the machine.
func (c *CPU) InvalidateDecode() {
	c.blocks = make(map[uint64]*codeBlock)
	c.cluster.invalidateAll()
	c.legacyDecode = nil
	c.ibtb = [ibtbSize]chainEdge{}
	c.clearStoreGenMemo()
}

// LiveTraces counts the superblock traces currently attached to this
// CPU's cached blocks (tests and diagnostics: a fork or reset must come
// up with none).
func (c *CPU) LiveTraces() int {
	live := 0
	for _, b := range c.blocks {
		if b.tr != nil {
			live++
		}
	}
	return live
}

// TakeException vectors to EL1. kind is a Vec* offset, ec the exception
// class and iss the syndrome detail; far is captured for aborts.
func (c *CPU) TakeException(vec uint64, ec uint64, iss uint64, far uint64) {
	spsr := c.pstate()
	c.SPSR = spsr
	c.ELR = c.PC
	c.ESR = ec<<26 | iss&0x1FFFFFF
	c.FAR = far
	c.EL = 1
	c.IRQMasked = true
	c.PC = c.VBAR + vec
	c.Cycles += costExcEntry
}

// pstate packs the PSTATE bits the model keeps into SPSR format: mode in
// bits 3:0 (0 = EL0t, 5 = EL1h), IRQ mask in bit 7, NZCV in bits 31:28.
func (c *CPU) pstate() uint64 {
	var v uint64
	if c.EL == 1 {
		v = 5
	}
	if c.IRQMasked {
		v |= 1 << 7
	}
	if c.V {
		v |= 1 << 28
	}
	if c.C {
		v |= 1 << 29
	}
	if c.Z {
		v |= 1 << 30
	}
	if c.N {
		v |= 1 << 31
	}
	return v
}

// setPstate restores PSTATE from SPSR format.
func (c *CPU) setPstate(v uint64) {
	if v&0xF == 5 {
		c.EL = 1
	} else {
		c.EL = 0
	}
	c.IRQMasked = v&(1<<7) != 0
	c.V = v&(1<<28) != 0
	c.C = v&(1<<29) != 0
	c.Z = v&(1<<30) != 0
	c.N = v&(1<<31) != 0
}

// pauthEnabled reports whether the SCTLR enable bit for the key is set.
func (c *CPU) pauthEnabled(id pac.KeyID) bool {
	switch id {
	case pac.KeyIA:
		return c.SCTLR&insn.SCTLREnIA != 0
	case pac.KeyIB:
		return c.SCTLR&insn.SCTLREnIB != 0
	case pac.KeyDA:
		return c.SCTLR&insn.SCTLREnDA != 0
	case pac.KeyDB:
		return c.SCTLR&insn.SCTLREnDB != 0
	}
	return true // GA has no enable bit
}

// pacSign signs value in register rd with modifier from rn under key id.
func (c *CPU) pacSign(rd, rn insn.Reg, id pac.KeyID) {
	if !c.pauthEnabled(id) {
		return // architectural NOP when disabled
	}
	v := c.Reg(rd)
	mod := c.regSP(rn)
	c.SetReg(rd, c.Signer.Sign(v, mod, id))
}

// pacAuth authenticates register rd with modifier from rn under key id,
// returning the result (poisoned on failure).
func (c *CPU) pacAuth(rd, rn insn.Reg, id pac.KeyID) uint64 {
	v := c.Reg(rd)
	if !c.pauthEnabled(id) {
		return v
	}
	mod := c.regSP(rn)
	out, ok := c.Signer.Auth(v, mod, id)
	if !ok {
		c.PACFailures++
	}
	c.SetReg(rd, out)
	return out
}
