package cpu

// Cross-CPU invalidation tests: the shared-generation (software
// shootdown) contract of DESIGN.md §9. The decoded-block cache and
// chain edges are per-CPU, but their generation cells are cluster-wide:
// a store retired on one core must kill stale blocks and sever chains
// on its peers before they can execute patched-over code.

import (
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/insn"
)

// buildPeers loads one image into a shared bus and returns two cores of
// the same cluster positioned at the given entry labels.
func buildPeers(t *testing.T, build func(a *asm.Assembler)) (*CPU, *CPU, *asm.Image) {
	t.Helper()
	a := asm.New()
	build(a)
	img, err := a.Link(map[string]uint64{".text": textBase})
	if err != nil {
		t.Fatal(err)
	}
	c0 := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c0.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	c0.SetSP(1, stackTop)
	c1 := c0.NewPeer(1)
	c1.SetSP(1, stackTop-0x8000)
	return c0, c1, img
}

// TestSMPCrossCPUStoreKillsPeerBlock: CPU 1 caches a decoded block;
// CPU 0 stores a patch into that block's page; CPU 1 must refetch and
// execute the new instruction (a per-CPU generation map would have
// served the stale block).
func TestSMPCrossCPUStoreKillsPeerBlock(t *testing.T) {
	c0, c1, img := buildPeers(t, func(a *asm.Assembler) {
		a.Label("patcher") // CPU 0: overwrite target's movz with movz x0,#7
		patch := insn.MOVZ(insn.X0, 7, 0).Encode()
		a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
		a.ADR(insn.X10, "target")
		a.I(insn.STRW(insn.X9, insn.X10, 0))
		a.I(insn.HLT(0))
		a.Label("runner") // CPU 1: call target, halt
		a.I(insn.MOVZ(insn.X0, 0, 0))
		a.BL("target")
		a.I(insn.HLT(0))
		a.Label("target")
		a.I(insn.MOVZ(insn.X0, 1, 0))
		a.I(insn.RET())
	})

	// CPU 1 executes target once: block cached on CPU 1.
	c1.PC = img.Symbols["runner"]
	if stop := c1.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu1 first run: %+v", stop)
	}
	if c1.X[0] != 1 {
		t.Fatalf("cpu1 first run x0 = %d, want 1", c1.X[0])
	}

	// CPU 0 patches the code page with a guest store.
	c0.PC = img.Symbols["patcher"]
	if stop := c0.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu0 patch run: %+v", stop)
	}

	// CPU 1 re-executes: the shared cell was bumped by CPU 0's store, so
	// the stale block must not be served.
	c1.PC = img.Symbols["runner"]
	if stop := c1.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu1 second run: %+v", stop)
	}
	if c1.X[0] != 7 {
		t.Fatalf("cpu1 executed stale code after peer store: x0 = %d, want 7", c1.X[0])
	}
}

// TestSMPCrossCPUStoreSeversPeerChain: CPU 1 resolves a direct chain
// edge between two blocks; CPU 0 then patches the *chained-to* block.
// Following the edge without revalidating the target's shared cell
// would execute the stale successor.
func TestSMPCrossCPUStoreSeversPeerChain(t *testing.T) {
	c0, c1, img := buildPeers(t, func(a *asm.Assembler) {
		a.Label("patcher")
		patch := insn.MOVZ(insn.X1, 9, 0).Encode()
		a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
		a.ADR(insn.X10, "succ")
		a.I(insn.STRW(insn.X9, insn.X10, 0))
		a.I(insn.HLT(0))
		a.Label("runner") // block A: direct branch to succ (chainable)
		a.I(insn.MOVZ(insn.X1, 0, 0))
		a.B("succ")
		a.Label("succ") // block B
		a.I(insn.MOVZ(insn.X1, 1, 0))
		a.I(insn.HLT(0))
	})

	// Two passes on CPU 1 so the runner→succ edge is resolved and then
	// actually followed.
	for i := 0; i < 2; i++ {
		c1.PC = img.Symbols["runner"]
		if stop := c1.Run(100); stop.Kind != StopHLT {
			t.Fatalf("cpu1 warm run %d: %+v", i, stop)
		}
	}
	if c1.ChainFollows == 0 {
		t.Fatal("chain edge never followed; test premise broken")
	}

	c0.PC = img.Symbols["patcher"]
	if stop := c0.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu0 patch run: %+v", stop)
	}

	c1.PC = img.Symbols["runner"]
	if stop := c1.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu1 post-patch run: %+v", stop)
	}
	if c1.X[1] != 9 {
		t.Fatalf("cpu1 followed a severed chain into stale code: x1 = %d, want 9", c1.X[1])
	}
}

// TestSMPPeerDecodeInvalidatesStoreMemo: CPU 0's store memo records
// "page P never held code"; CPU 1 then decodes a block from P. CPU 0's
// next store to P must notice (via the cluster cell epoch) and bump the
// generation — otherwise CPU 1 keeps executing the patched-over block.
func TestSMPPeerDecodeInvalidatesStoreMemo(t *testing.T) {
	c0, c1, img := buildPeers(t, func(a *asm.Assembler) {
		a.Label("patcher")
		patch := insn.MOVZ(insn.X0, 7, 0).Encode()
		a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
		a.ADR(insn.X10, "target")
		a.I(insn.STRW(insn.X9, insn.X10, 0)) // first store: memoizes "no code"
		a.I(insn.HLT(0))
		a.Label("patcher2")
		patch2 := insn.MOVZ(insn.X0, 8, 0).Encode()
		a.I(insn.MOVImm64(insn.X9, uint64(patch2))...)
		a.ADR(insn.X10, "target")
		a.I(insn.STRW(insn.X9, insn.X10, 0)) // second store: must see the new cell
		a.I(insn.HLT(0))
		a.Label("runner")
		a.BL("target")
		a.I(insn.HLT(0))
		// target sits on its own page: no code is decoded from it before
		// the first store, so that store memoizes a nil cell for it.
		a.PadTo(0x1000)
		a.Label("target")
		a.I(insn.MOVZ(insn.X0, 1, 0))
		a.I(insn.RET())
	})

	// CPU 0 stores to the target page before any code there was decoded:
	// its memo records a nil cell for that page.
	c0.PC = img.Symbols["patcher"]
	if stop := c0.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu0 first patch: %+v", stop)
	}

	// CPU 1 decodes and runs the (patched) target: the page becomes code
	// and the cluster's cell epoch moves.
	c1.PC = img.Symbols["runner"]
	if stop := c1.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu1 run: %+v", stop)
	}
	if c1.X[0] != 7 {
		t.Fatalf("cpu1 x0 = %d, want 7 (first patch visible)", c1.X[0])
	}

	// CPU 0 stores again: its stale "no code here" memo entry must be
	// discarded via the epoch, bumping the now-existing cell.
	c0.PC = img.Symbols["patcher2"]
	if stop := c0.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu0 second patch: %+v", stop)
	}
	c1.PC = img.Symbols["runner"]
	if stop := c1.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu1 rerun: %+v", stop)
	}
	if c1.X[0] != 8 {
		t.Fatalf("peer store after decode not observed: x0 = %d, want 8", c1.X[0])
	}
}

// TestSMPSharedMemGenInvalidatesPeerHostPointer: two cores share one
// Phys; a copy-on-write materialization caused by core 0 must kill the
// warm host pointer core 1 holds for the same page (shared memGen).
func TestSMPSharedMemGenInvalidatesPeerHostPointer(t *testing.T) {
	c0, c1, img := buildPeers(t, func(a *asm.Assembler) {
		a.Label("entry")
		a.I(insn.HLT(0))
	})
	_ = img
	// Warm a load host pointer on core 1 through its MMU... requires
	// stage-1 mappings; exercise via the shared bus directly instead:
	// the generation is one cell on the shared Phys.
	g := c1.Bus.RAM.Gen()
	c0.Bus.RAM.Freeze() // snapshot-style event through core 0's view
	if c1.Bus.RAM.Gen() == g {
		t.Fatal("peer did not observe the shared memory-generation bump")
	}
}
