package cpu

import (
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/insn"
	"camouflage/internal/mmu"
	"camouflage/internal/pac"
)

const (
	textBase  = uint64(pac.KernelBase) | 0x0008_0000
	dataBase  = uint64(pac.KernelBase) | 0x0010_0000
	stackTop  = uint64(pac.KernelBase) | 0x0020_0000
	vbarBase  = uint64(pac.KernelBase) | 0x0030_0000
	userText  = uint64(0x0040_0000)
	userStack = uint64(0x0080_0000)
)

// load links the program at the standard test bases and loads it into RAM
// identity-style (PA = VA with the kernel prefix stripped is unnecessary:
// while the MMU is off, PA = VA and the sparse RAM accepts any address).
func load(t *testing.T, a *asm.Assembler, bases map[string]uint64) (*CPU, *asm.Image) {
	t.Helper()
	img, err := a.Link(bases)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	c.SCTLR = insn.SCTLRPAuthAll
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	return c, img
}

func run(t *testing.T, c *CPU, entry uint64, max uint64) Stop {
	t.Helper()
	c.PC = entry
	stop := c.Run(max)
	if stop.Kind == StopError {
		t.Fatalf("simulation error: %v", stop.Err)
	}
	return stop
}

func TestALULoop(t *testing.T) {
	a := asm.New()
	a.Label("start")
	a.I(insn.MOVZ(insn.X0, 0, 0))  // sum = 0
	a.I(insn.MOVZ(insn.X1, 10, 0)) // i = 10
	a.Label("loop")
	a.I(insn.ADDr(insn.X0, insn.X0, insn.X1))
	a.I(insn.SUBi(insn.X1, insn.X1, 1))
	a.CBNZ(insn.X1, "loop")
	a.I(insn.HLT(0))
	c, img := load(t, a, map[string]uint64{".text": textBase})
	stop := run(t, c, img.Symbols["start"], 1000)
	if stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 55 {
		t.Fatalf("sum = %d, want 55", c.X[0])
	}
}

func TestFunctionCallListing1(t *testing.T) {
	// The canonical AArch64 prologue/epilogue of Listing 1, including a
	// frame record on the stack.
	a := asm.New()
	a.Label("main")
	a.I(insn.MOVZ(insn.X0, 5, 0))
	a.BL("double")
	a.I(insn.HLT(0))
	a.Label("double")
	a.I(insn.STPpre(insn.FP, insn.LR, insn.SP, -16))
	a.I(insn.MOVSP(insn.FP, insn.SP))
	a.I(insn.ADDr(insn.X0, insn.X0, insn.X0))
	a.I(insn.LDPpost(insn.FP, insn.LR, insn.SP, 16))
	a.I(insn.RET())
	c, img := load(t, a, map[string]uint64{".text": textBase})
	c.SetSP(1, stackTop)
	stop := run(t, c, img.Symbols["main"], 1000)
	if stop.Kind != StopHLT {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 10 {
		t.Fatalf("result = %d, want 10", c.X[0])
	}
	if c.CurrentSP() != stackTop {
		t.Fatalf("SP = %#x, want %#x (unbalanced frame)", c.CurrentSP(), stackTop)
	}
}

// TestListing2SignAuth: the Clang-style SP-modifier prologue/epilogue
// authenticates correctly in the benign case.
func TestListing2SignAuth(t *testing.T) {
	a := asm.New()
	a.Label("main")
	a.BL("f")
	a.I(insn.HLT(0))
	a.Label("f")
	a.I(insn.PACIA(insn.LR, insn.SP))
	a.I(insn.STPpre(insn.FP, insn.LR, insn.SP, -16))
	a.I(insn.MOVSP(insn.FP, insn.SP))
	a.I(insn.MOVZ(insn.X0, 42, 0))
	a.I(insn.LDPpost(insn.FP, insn.LR, insn.SP, 16))
	a.I(insn.AUTIA(insn.LR, insn.SP))
	a.I(insn.RET())
	c, img := load(t, a, map[string]uint64{".text": textBase})
	c.SetSP(1, stackTop)
	c.Signer.SetKey(pac.KeyIA, pac.Key{Hi: 7, Lo: 9})
	stop := run(t, c, img.Symbols["main"], 1000)
	if stop.Kind != StopHLT || c.X[0] != 42 {
		t.Fatalf("stop=%+v x0=%d", stop, c.X[0])
	}
	if c.PACFailures != 0 {
		t.Fatalf("PACFailures = %d", c.PACFailures)
	}
}

// mapKernelFlat maps text/data/stack/vectors for MMU-on tests.
func mapKernelFlat(c *CPU) {
	c.MMU.Enabled = true
	for off := uint64(0); off < 0x40_0000; off += mmu.PageSize {
		va := uint64(pac.KernelBase) | off
		perm := mmu.KernelData
		if off >= 0x0008_0000 && off < 0x0010_0000 {
			perm = mmu.KernelText
		}
		if off >= 0x0030_0000 && off < 0x0031_0000 {
			perm = mmu.KernelText
		}
		c.MMU.TT1.Map(va, va, perm) // PA = VA (sparse RAM accepts it)
	}
}

// buildVectors emits a vector stub that records the exception and halts.
func buildVectors(a *asm.Assembler) {
	a.Section(".vectors")
	a.Label("vectors")
	// 0x200: sync from current EL.
	a.PadTo(0x200)
	a.I(insn.HLT(0xE1))
	a.PadTo(0x280)
	a.I(insn.HLT(0xE2)) // IRQ current
	a.PadTo(0x400)
	a.I(insn.HLT(0xE4)) // sync lower
	a.PadTo(0x480)
	a.I(insn.HLT(0xE5)) // IRQ lower
}

// TestROPDetected reproduces the paper's core backward-edge scenario: an
// attacker overwrites the saved LR in the frame record between prologue
// and epilogue; AUTIA poisons the pointer and the RET faults instead of
// executing the gadget.
func TestROPDetected(t *testing.T) {
	a := asm.New()
	a.Label("main")
	a.BL("victim")
	a.I(insn.HLT(0))
	a.Label("victim")
	a.I(insn.PACIA(insn.LR, insn.SP))
	a.I(insn.STPpre(insn.FP, insn.LR, insn.SP, -16))
	a.I(insn.MOVSP(insn.FP, insn.SP))
	// --- vulnerability: overwrite the saved LR with the gadget address.
	a.MOVAddr(insn.X9, "gadget")
	a.I(insn.STR(insn.X9, insn.SP, 8)) // frame record slot of LR
	// --- epilogue
	a.I(insn.LDPpost(insn.FP, insn.LR, insn.SP, 16))
	a.I(insn.AUTIA(insn.LR, insn.SP))
	a.I(insn.RET())
	a.Label("gadget")
	a.I(insn.MOVZ(insn.X7, 0xBAD, 0))
	a.I(insn.HLT(0x77))
	buildVectors(a)

	c, img := load(t, a, map[string]uint64{".text": textBase, ".vectors": vbarBase})
	mapKernelFlat(c)
	c.SetSP(1, stackTop)
	c.VBAR = img.Symbols["vectors"]
	c.Signer.SetKey(pac.KeyIA, pac.Key{Hi: 0xAA, Lo: 0xBB})

	stop := run(t, c, img.Symbols["main"], 10000)
	if stop.Kind != StopHLT || stop.Code != 0xE1 {
		t.Fatalf("stop = %+v, want HLT 0xE1 (sync abort at EL1)", stop)
	}
	if c.PACFailures != 1 {
		t.Fatalf("PACFailures = %d, want 1", c.PACFailures)
	}
	if c.X[7] == 0xBAD {
		t.Fatal("gadget executed: ROP not prevented")
	}
	// The faulting address must be the poisoned LR, i.e. non-canonical.
	if c.Signer.Config().IsCanonical(c.FAR) {
		t.Fatalf("FAR %#x canonical; expected poisoned pointer", c.FAR)
	}
	if FaultKindFromISS(c.ESR&0x1FFFFFF) != mmu.FaultAddressSize {
		t.Fatalf("ESR ISS = %#x, want address-size fault", c.ESR&0x1FFFFFF)
	}
}

// TestROPSucceedsWithoutPAuth is the control: with no instrumentation the
// same overwrite hijacks control flow.
func TestROPSucceedsWithoutPAuth(t *testing.T) {
	a := asm.New()
	a.Label("main")
	a.BL("victim")
	a.I(insn.HLT(0))
	a.Label("victim")
	a.I(insn.STPpre(insn.FP, insn.LR, insn.SP, -16))
	a.I(insn.MOVSP(insn.FP, insn.SP))
	a.MOVAddr(insn.X9, "gadget")
	a.I(insn.STR(insn.X9, insn.SP, 8))
	a.I(insn.LDPpost(insn.FP, insn.LR, insn.SP, 16))
	a.I(insn.RET())
	a.Label("gadget")
	a.I(insn.MOVZ(insn.X7, 0xBAD, 0))
	a.I(insn.HLT(0x77))
	c, img := load(t, a, map[string]uint64{".text": textBase})
	c.SetSP(1, stackTop)
	stop := run(t, c, img.Symbols["main"], 10000)
	if stop.Kind != StopHLT || stop.Code != 0x77 {
		t.Fatalf("stop = %+v, want gadget HLT 0x77", stop)
	}
	if c.X[7] != 0xBAD {
		t.Fatal("gadget did not run in unprotected build")
	}
}

// TestListing3CamouflagePrologue runs the paper's hardened prologue and
// epilogue (Listing 3) and checks the modifier construction in-guest.
func TestListing3CamouflagePrologue(t *testing.T) {
	a := asm.New()
	a.Label("main")
	a.BL("f")
	a.I(insn.HLT(0))
	a.Label("f")
	// Prologue (Listing 3).
	a.ADR(insn.IP0, "f")
	a.I(insn.MOVSP(insn.IP1, insn.SP))
	a.I(insn.BFI(insn.IP0, insn.IP1, 32, 32))
	a.I(insn.PACIB(insn.LR, insn.IP0))
	a.I(insn.STPpre(insn.FP, insn.LR, insn.SP, -16))
	a.I(insn.MOVSP(insn.FP, insn.SP))
	a.I(insn.MOVZ(insn.X0, 99, 0))
	// Epilogue.
	a.I(insn.LDPpost(insn.FP, insn.LR, insn.SP, 16))
	a.ADR(insn.IP0, "f")
	a.I(insn.MOVSP(insn.IP1, insn.SP))
	a.I(insn.BFI(insn.IP0, insn.IP1, 32, 32))
	a.I(insn.AUTIB(insn.LR, insn.IP0))
	a.I(insn.RET())
	c, img := load(t, a, map[string]uint64{".text": textBase})
	c.SetSP(1, stackTop)
	c.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 0xC0FFEE, Lo: 0xF00D})
	stop := run(t, c, img.Symbols["main"], 1000)
	if stop.Kind != StopHLT || stop.Code != 0 {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 99 || c.PACFailures != 0 {
		t.Fatalf("x0=%d failures=%d", c.X[0], c.PACFailures)
	}
	// The modifier left in IP0 must match the documented construction.
	want := pac.ReturnModifierCamouflage(stackTop, img.Symbols["f"])
	if c.X[insn.IP0] != want {
		t.Fatalf("modifier = %#x, want %#x", c.X[insn.IP0], want)
	}
}

// TestSVCAndERET exercises the EL0→EL1→EL0 round trip with banked SPs.
func TestSVCAndERET(t *testing.T) {
	a := asm.New()
	a.Section(".user")
	a.Label("user")
	a.I(insn.MOVZ(insn.X8, 42, 0)) // syscall number
	a.I(insn.SVC(0))
	a.I(insn.HLT(0x11)) // resumes here after ERET
	buildVectors(a)

	// Replace the sync-lower stub with a real handler.
	a.Section(".handler")
	a.Label("handler")
	a.I(insn.MOVZ(insn.X0, 7, 0))
	a.I(insn.ERET())

	img, err := a.Link(map[string]uint64{
		".text":    textBase,
		".user":    userText,
		".vectors": vbarBase,
		".handler": vbarBase + 0x1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	// Patch the 0x400 vector to branch to the handler.
	b := insn.B(int64(img.Symbols["handler"]) - int64(img.Symbols["vectors"]+0x400)).Encode()
	c.Bus.RAM.Write32(img.Symbols["vectors"]+0x400, b)

	c.VBAR = img.Symbols["vectors"]
	c.EL = 0
	c.SetSP(0, userStack)
	c.SetSP(1, stackTop)
	c.PC = img.Symbols["user"]
	stop := c.Run(1000)
	if stop.Kind != StopHLT || stop.Code != 0x11 {
		t.Fatalf("stop = %+v", stop)
	}
	if c.X[0] != 7 {
		t.Fatalf("handler result x0 = %d", c.X[0])
	}
	if c.EL != 0 {
		t.Fatalf("EL after ERET = %d", c.EL)
	}
	if (c.ESR >> 26) != ECSVC64 {
		t.Fatalf("ESR EC = %#x, want SVC64", c.ESR>>26)
	}
}

// TestXOMKeySetter verifies the §5.1 flow end to end: a key-setter whose
// immediates hold the key, mapped XOM via stage 2. Executing it installs
// keys and zeroes its GPRs; reading it from EL1 faults.
func TestXOMKeySetter(t *testing.T) {
	key := pac.Key{Hi: 0x1122334455667788, Lo: 0x99AABBCCDDEEFF00}
	a := asm.New()
	a.Label("caller")
	a.BL("key_setter")
	a.I(insn.HLT(0))
	a.Section(".xom")
	a.Label("key_setter")
	for _, i := range insn.MOVImm64(insn.X0, key.Lo) {
		a.I(i)
	}
	a.I(insn.MSR(insn.APIBKeyLo_EL1, insn.X0))
	for _, i := range insn.MOVImm64(insn.X0, key.Hi) {
		a.I(i)
	}
	a.I(insn.MSR(insn.APIBKeyHi_EL1, insn.X0))
	a.I(insn.MOVZ(insn.X0, 0, 0)) // scrub
	a.I(insn.RET())
	buildVectors(a)

	xomBase := uint64(pac.KernelBase) | 0x0034_0000
	c, img := load(t, a, map[string]uint64{
		".text": textBase, ".xom": xomBase, ".vectors": vbarBase,
	})
	mapKernelFlat(c)
	c.MMU.TT1.Map(xomBase, xomBase, mmu.KernelText)
	c.MMU.S2.Enabled = true
	c.MMU.S2.Restrict(xomBase, mmu.S2Perm{X: true}) // XOM

	c.SetSP(1, stackTop)
	c.VBAR = img.Symbols["vectors"]

	stop := run(t, c, img.Symbols["caller"], 1000)
	if stop.Kind != StopHLT || stop.Code != 0 {
		t.Fatalf("stop = %+v", stop)
	}
	if got := c.Signer.Key(pac.KeyIB); got != key {
		t.Fatalf("installed key = %+v, want %+v", got, key)
	}
	if c.X[0] != 0 {
		t.Fatal("key material left in GPR after setter")
	}

	// Now try to read the key-setter code (disassembly attack).
	a2 := asm.New()
	a2.Label("spy")
	a2.MOVAddr(insn.X1, "dummy")
	a2.I(insn.LDR(insn.X0, insn.X1, 0))
	a2.I(insn.HLT(0x22))
	a2.Label("dummy")
	img2, err := a2.Link(map[string]uint64{".text": textBase + 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	// Point the load at the XOM page instead of the dummy.
	c.Bus.RAM.WriteBytes(img2.Sections[".text"].Base, img2.Sections[".text"].Bytes)
	c.InvalidateDecode()
	c.PC = img2.Symbols["spy"]
	c.X[1] = xomBase // overwrite pointer directly
	// Skip the MOVAddr chain; jump straight to the load.
	c.PC = img2.Symbols["spy"] + 4*insn.Size
	stop = c.Run(100)
	if stop.Kind != StopHLT || stop.Code != 0xE1 {
		t.Fatalf("stop = %+v, want HLT 0xE1 (data abort reading XOM)", stop)
	}
	if FaultKindFromISS(c.ESR&0x1FFFFFF) != mmu.FaultStage2 {
		t.Fatalf("ISS = %#x, want stage-2 fault", c.ESR&0x1FFFFFF)
	}
}

// TestKeyInstallCostCalibration pins the §6.1.1 calibration: installing a
// 128-bit key through the immediates of the XOM setter costs 12 cycles
// (two MOVZ+3×MOVK chains at 1 cycle each plus two 2-cycle MSRs); the
// memory-sourced restore on kernel exit costs 6 (LDP + two MSRs); the
// round-trip average is the paper's 9 cycles per key.
func TestKeyInstallCostCalibration(t *testing.T) {
	a := asm.New()
	a.Label("setkey")
	for _, i := range insn.MOVImm64(insn.X0, 0x1111_2222_3333_4444) {
		a.I(i)
	}
	a.I(insn.MSR(insn.APIBKeyLo_EL1, insn.X0))
	for _, i := range insn.MOVImm64(insn.X0, 0x5555_6666_7777_8888) {
		a.I(i)
	}
	a.I(insn.MSR(insn.APIBKeyHi_EL1, insn.X0))
	a.I(insn.HLT(0))
	c, img := load(t, a, map[string]uint64{".text": textBase})
	start := c.Cycles
	run(t, c, img.Symbols["setkey"], 100)
	cycles := c.Cycles - start - 1 // exclude the HLT
	if cycles != 12 {
		t.Fatalf("immediate key install = %d cycles, want 12 (§6.1.1 calibration)", cycles)
	}

	// Memory-sourced restore: ldp + msr + msr = 6 cycles.
	b := asm.New()
	b.Label("restore")
	b.I(insn.LDP(insn.X6, insn.X7, insn.X0, 0))
	b.I(insn.MSR(insn.APIBKeyLo_EL1, insn.X6))
	b.I(insn.MSR(insn.APIBKeyHi_EL1, insn.X7))
	b.I(insn.HLT(0))
	c2, img2 := load(t, b, map[string]uint64{".text": textBase})
	c2.X[0] = dataBase
	start = c2.Cycles
	run(t, c2, img2.Symbols["restore"], 100)
	if got := c2.Cycles - start - 1; got != 6 {
		t.Fatalf("memory key restore = %d cycles, want 6", got)
	}
	// (12 + 6) / 2 = 9 cycles per key per switch direction — §6.1.1.
}

// TestPAuthDisabledBySCTLR: with EnIB clear, PACIB is an architectural NOP.
func TestPAuthDisabledBySCTLR(t *testing.T) {
	a := asm.New()
	a.Label("f")
	a.I(insn.PACIB(insn.X0, insn.X1))
	a.I(insn.HLT(0))
	c, img := load(t, a, map[string]uint64{".text": textBase})
	c.SCTLR = 0 // all PAuth disabled
	c.X[0] = uint64(pac.KernelBase) | 0x1234
	before := c.X[0]
	run(t, c, img.Symbols["f"], 10)
	if c.X[0] != before {
		t.Fatalf("PACIB modified register with EnIB clear: %#x", c.X[0])
	}
}

// TestV80Compat: on an ARMv8.0 core the HINT forms are NOPs and the
// register forms are undefined (§5.5).
func TestV80Compat(t *testing.T) {
	a := asm.New()
	a.Label("f")
	a.I(insn.PACIB1716())
	a.I(insn.AUTIB1716())
	a.I(insn.HLT(0))
	a.Label("g")
	a.I(insn.PACIB(insn.X0, insn.X1))
	a.I(insn.HLT(1))
	buildVectors(a)
	c, img := load(t, a, map[string]uint64{".text": textBase, ".vectors": vbarBase})
	c.Feat = Features{PAuth: false}
	c.VBAR = img.Symbols["vectors"]
	c.X[17] = 0x1234
	stop := run(t, c, img.Symbols["f"], 10)
	if stop.Kind != StopHLT || stop.Code != 0 {
		t.Fatalf("hint forms: stop = %+v", stop)
	}
	if c.X[17] != 0x1234 {
		t.Fatal("PACIB1716 modified x17 on v8.0 core")
	}
	// Register form must trap.
	stop = run(t, c, img.Symbols["g"], 10)
	if stop.Kind != StopHLT || stop.Code != 0xE1 {
		t.Fatalf("register form: stop = %+v, want undefined exception", stop)
	}
}

// TestMSRHookLockdown: the hypervisor hook can deny MMU register writes.
func TestMSRHookLockdown(t *testing.T) {
	a := asm.New()
	a.Label("f")
	a.I(insn.MOVZ(insn.X0, 0xBEEF, 0))
	a.I(insn.MSR(insn.TTBR1_EL1, insn.X0))
	a.I(insn.HLT(0))
	c, img := load(t, a, map[string]uint64{".text": textBase})
	c.TTBR1 = 0x1000
	denied := 0
	c.OnMSR = func(r insn.SysReg, v uint64) bool {
		if r == insn.TTBR1_EL1 {
			denied++
			return true // consume: lockdown
		}
		return false
	}
	run(t, c, img.Symbols["f"], 10)
	if denied != 1 {
		t.Fatalf("hook fired %d times", denied)
	}
	if c.TTBR1 != 0x1000 {
		t.Fatalf("TTBR1 = %#x; lockdown failed", c.TTBR1)
	}
}

// TestBLRABAuthenticatedCall: the combined authenticate-and-call form.
func TestBLRABAuthenticatedCall(t *testing.T) {
	a := asm.New()
	a.Label("main")
	a.MOVAddr(insn.X1, "callee")
	a.I(insn.MOVZ(insn.X2, 0x77, 0)) // modifier
	a.I(insn.PACIB(insn.X1, insn.X2))
	a.I(insn.BLRAB(insn.X1, insn.X2))
	a.I(insn.HLT(0))
	a.Label("callee")
	a.I(insn.MOVZ(insn.X0, 5, 0))
	a.I(insn.RET())
	c, img := load(t, a, map[string]uint64{".text": textBase})
	c.Signer.SetKey(pac.KeyIB, pac.Key{Hi: 1, Lo: 2})
	stop := run(t, c, img.Symbols["main"], 100)
	if stop.Kind != StopHLT || c.X[0] != 5 || c.PACFailures != 0 {
		t.Fatalf("stop=%+v x0=%d failures=%d", stop, c.X[0], c.PACFailures)
	}
}

// TestPMCCNTRReadsCycles: the cycle counter is visible in-guest, which the
// micro-benchmarks rely on.
func TestPMCCNTRReadsCycles(t *testing.T) {
	a := asm.New()
	a.Label("f")
	a.I(insn.MRS(insn.X0, insn.PMCCNTR_EL0))
	a.I(insn.NOP())
	a.I(insn.NOP())
	a.I(insn.MRS(insn.X1, insn.PMCCNTR_EL0))
	a.I(insn.HLT(0))
	c, img := load(t, a, map[string]uint64{".text": textBase})
	run(t, c, img.Symbols["f"], 10)
	if c.X[1] <= c.X[0] {
		t.Fatalf("cycle counter not monotonic: %d then %d", c.X[0], c.X[1])
	}
}

func TestUserCannotTouchKernelMemory(t *testing.T) {
	a := asm.New()
	a.Section(".user")
	a.Label("user")
	a.MOVAddr(insn.X1, "user") // overwritten below
	a.I(insn.LDR(insn.X0, insn.X1, 0))
	a.I(insn.HLT(0x33))
	buildVectors(a)
	img, err := a.Link(map[string]uint64{".text": textBase, ".user": userText, ".vectors": vbarBase})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Features{PAuth: true})
	for _, s := range img.Sections {
		c.Bus.RAM.WriteBytes(s.Base, s.Bytes)
	}
	mapKernelFlat(c)
	for off := uint64(0); off < 0x10000; off += mmu.PageSize {
		c.MMU.TT0.Map(userText+off, userText+off, mmu.UserText)
	}
	c.VBAR = img.Symbols["vectors"]
	c.EL = 0
	c.PC = img.Symbols["user"] + 4*insn.Size // skip MOVAddr
	c.X[1] = dataBase                        // kernel address
	stop := c.Run(100)
	if stop.Kind != StopHLT || stop.Code != 0xE4 {
		t.Fatalf("stop = %+v, want sync-lower abort", stop)
	}
	if c.EL != 1 {
		t.Fatal("abort did not enter EL1")
	}
}
