package cpu

// Trace-severing tests: the superblock validity contract of DESIGN.md
// §10. A fused trace may only run while every constituent block's
// generation cell is unmoved; these tests drive the three severing
// routes — a same-core guest store into a fused page, a cross-core
// patch landing between trace entries, and state restore — and pin the
// behaviour under `-race` along with the rest of the suite.

import (
	"testing"

	"camouflage/internal/asm"
	"camouflage/internal/insn"
)

// TestStoreIntoFusedTraceSevers: a loop runs hot enough to fuse into a
// looping trace, then the program patches the loop body and re-enters
// it. The stale trace (and the blocks under it) must be dropped so the
// re-entry executes the patched instruction.
func TestStoreIntoFusedTraceSevers(t *testing.T) {
	patch := insn.MOVZ(insn.X0, 7, 0).Encode()
	c := runSnippet(t, nil, func(a *asm.Assembler) {
		a.I(insn.MOVZ(insn.X5, 64, 0))
		a.Label("loop")
		a.I(insn.MOVZ(insn.X0, 1, 0)) // body: patched on the second pass
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "loop")
		a.CBNZ(insn.X6, "done")
		a.I(insn.MOVZ(insn.X6, 1, 0))
		a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
		a.ADR(insn.X10, "loop")
		a.I(insn.STRW(insn.X9, insn.X10, 0))
		a.I(insn.MOVZ(insn.X5, 4, 0))
		a.B("loop")
		a.Label("done")
		a.I(insn.HLT(0))
	})
	if c.TracesBuilt == 0 || c.TraceFollows == 0 {
		t.Fatalf("TracesBuilt = %d, TraceFollows = %d; the loop never fused, so severing was not exercised",
			c.TracesBuilt, c.TraceFollows)
	}
	if c.X[0] != 7 {
		t.Fatalf("x0 = %d; a fused trace served stale code after the in-page store", c.X[0])
	}
	// The second pass is 4 iterations — far below the hotness threshold —
	// so the severed trace must not have been rebuilt either.
	if got := c.LiveTraces(); got != 0 {
		t.Fatalf("LiveTraces = %d after severing; the stale trace is still attached", got)
	}
}

// TestCrossCoreShootdownMidTrace: CPU 1 runs a looping trace and is
// interrupted mid-loop by budget exhaustion; CPU 0 then patches the
// loop's page. When CPU 1 resumes the same loop, the cluster generation
// cells must sever both the trace and its blocks — the remaining
// iterations execute the patched body.
func TestCrossCoreShootdownMidTrace(t *testing.T) {
	patch := insn.MOVZ(insn.X0, 7, 0).Encode()
	c0, c1, img := buildPeers(t, func(a *asm.Assembler) {
		a.Label("patcher") // CPU 0
		a.I(insn.MOVImm64(insn.X9, uint64(patch))...)
		a.ADR(insn.X10, "loop")
		a.I(insn.STRW(insn.X9, insn.X10, 0))
		a.I(insn.HLT(0))
		a.Label("runner") // CPU 1
		a.I(insn.MOVZ(insn.X5, 400, 0))
		a.Label("loop")
		a.I(insn.MOVZ(insn.X0, 1, 0)) // body: patched mid-run by CPU 0
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "loop")
		a.I(insn.HLT(0))
	})

	// CPU 1 burns a bounded budget: enough iterations to fuse the loop
	// (hotThreshold entries) and follow the trace, then StopLimit lands
	// mid-loop with the trace warm and hundreds of iterations left.
	c1.PC = img.Symbols["runner"]
	if stop := c1.Run(200); stop.Kind != StopLimit {
		t.Fatalf("cpu1 warm run: %+v", stop)
	}
	if c1.TraceFollows == 0 || c1.LiveTraces() == 0 {
		t.Fatalf("TraceFollows = %d, LiveTraces = %d; the loop was not mid-trace at the interruption",
			c1.TraceFollows, c1.LiveTraces())
	}

	// CPU 0 patches the loop body: the shared generation cells move.
	c0.PC = img.Symbols["patcher"]
	if stop := c0.Run(100); stop.Kind != StopHLT {
		t.Fatalf("cpu0 patch run: %+v", stop)
	}

	// CPU 1 resumes where it stopped: the warm trace and its blocks are
	// stale and must not be served.
	if stop := c1.Run(10_000); stop.Kind != StopHLT {
		t.Fatalf("cpu1 resume: %+v", stop)
	}
	if c1.X[0] != 7 {
		t.Fatalf("x0 = %d; cpu1 kept executing a trace severed by a peer store", c1.X[0])
	}
}

// TestRestoreStateDropsWarmTraces: RestoreState (the snapshot reset
// path) must come up with no live traces — restored RAM may hold
// different code than the fused copies.
func TestRestoreStateDropsWarmTraces(t *testing.T) {
	c := runSnippet(t, nil, func(a *asm.Assembler) {
		a.I(insn.MOVZ(insn.X5, 64, 0))
		a.Label("loop")
		a.I(insn.ADDr(insn.X6, insn.X6, insn.X5))
		a.I(insn.SUBi(insn.X5, insn.X5, 1))
		a.CBNZ(insn.X5, "loop")
		a.I(insn.HLT(0))
	})
	if c.LiveTraces() == 0 {
		t.Fatal("hot loop left no live trace to drop")
	}
	st := c.CaptureState()
	c.RestoreState(st)
	if got := c.LiveTraces(); got != 0 {
		t.Fatalf("LiveTraces = %d after RestoreState, want 0", got)
	}
}
