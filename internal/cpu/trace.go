package cpu

import (
	"fmt"
	"strings"

	"camouflage/internal/insn"
)

// Tracer observes retired instructions. Install with CPU.AttachTracer;
// the hot loop pays one nil check when no tracer is attached.
type Tracer interface {
	// Retire is called after each instruction retires, with the PC it
	// executed at and its current EL.
	Retire(pc uint64, el int, ins insn.Instr)
}

// AttachTracer installs (or, with nil, removes) the tracer.
func (c *CPU) AttachTracer(t Tracer) { c.tracer = t }

// RingTrace is a fixed-capacity Tracer keeping the most recent
// instructions — the crash-dump facility used when debugging guest code.
type RingTrace struct {
	entries []TraceEntry
	next    int
	full    bool
}

// TraceEntry is one retired instruction.
type TraceEntry struct {
	PC  uint64
	EL  int
	Ins insn.Instr
}

// NewRingTrace returns a ring holding the last n instructions.
func NewRingTrace(n int) *RingTrace {
	return &RingTrace{entries: make([]TraceEntry, n)}
}

// Retire implements Tracer.
func (r *RingTrace) Retire(pc uint64, el int, ins insn.Instr) {
	r.entries[r.next] = TraceEntry{PC: pc, EL: el, Ins: ins}
	r.next++
	if r.next == len(r.entries) {
		r.next = 0
		r.full = true
	}
}

// Entries returns the retired instructions in execution order.
func (r *RingTrace) Entries() []TraceEntry {
	if !r.full {
		return append([]TraceEntry(nil), r.entries[:r.next]...)
	}
	out := make([]TraceEntry, 0, len(r.entries))
	out = append(out, r.entries[r.next:]...)
	out = append(out, r.entries[:r.next]...)
	return out
}

// String renders a disassembly listing of the ring contents.
func (r *RingTrace) String() string {
	var b strings.Builder
	for _, e := range r.Entries() {
		fmt.Fprintf(&b, "EL%d %#016x  %s\n", e.EL, e.PC, e.Ins)
	}
	return b.String()
}
