package pac

import (
	"testing"
	"testing/quick"
)

func testSigner() *Signer {
	s := NewSigner(DefaultConfig)
	s.SetKey(KeyIA, Key{Hi: 0x1111, Lo: 0xAAAA})
	s.SetKey(KeyIB, Key{Hi: 0x2222, Lo: 0xBBBB})
	s.SetKey(KeyDA, Key{Hi: 0x3333, Lo: 0xCCCC})
	s.SetKey(KeyDB, Key{Hi: 0x4444, Lo: 0xDDDD})
	s.SetKey(KeyGA, Key{Hi: 0x5555, Lo: 0xEEEE})
	return s
}

// TestPACFieldTable2 pins the PAC geometry of Table 2 / §5.4: with a 48-bit
// VA, a kernel pointer (TBI off) has a 15-bit PAC in bits 63..56 and 54..48;
// a user pointer with TBI on has a 7-bit PAC in bits 54..48.
func TestPACFieldTable2(t *testing.T) {
	mask, size := DefaultConfig.PACField(true)
	if size != 15 {
		t.Errorf("kernel PAC size = %d bits, want 15 (§5.4)", size)
	}
	if want := uint64(0xFF7F_0000_0000_0000); mask != want {
		t.Errorf("kernel PAC mask = %#016x, want %#016x", mask, want)
	}
	mask, size = DefaultConfig.PACField(false)
	if size != 7 {
		t.Errorf("user PAC size = %d bits, want 7 (TBI)", size)
	}
	if want := uint64(0x007F_0000_0000_0000); mask != want {
		t.Errorf("user PAC mask = %#016x, want %#016x", mask, want)
	}
}

// TestPACSizeSweep exercises PAC geometry across VA sizes (Appendix A: up
// to 52 bits with ARMv8.2-LVA).
func TestPACSizeSweep(t *testing.T) {
	cases := []struct {
		vaBits      int
		tbi         bool
		wantPACBits int
	}{
		{48, false, 15}, // default kernel
		{48, true, 7},   // default user
		{39, false, 24}, // 39-bit VA kernel
		{39, true, 16},
		{52, false, 11},
		{42, false, 21},
	}
	for _, c := range cases {
		cfg := Config{VABits: c.vaBits, TBIUser: c.tbi, TBIKernel: c.tbi}
		_, size := cfg.PACField(false)
		if size != c.wantPACBits {
			t.Errorf("VABits=%d TBI=%v: PAC size = %d, want %d", c.vaBits, c.tbi, size, c.wantPACBits)
		}
	}
}

// TestVMSAv8AddressRanges reproduces Table 1: bit 55 selects the
// translation table; the canonical kernel and user ranges are recognised
// and the hole between them is neither.
func TestVMSAv8AddressRanges(t *testing.T) {
	cfg := DefaultConfig
	kernelAddrs := []uint64{0xFFFF_FFFF_FFFF_FFFF, KernelBase, 0xFFFF_0000_1234_5678}
	for _, a := range kernelAddrs {
		if !cfg.IsKernel(a) {
			t.Errorf("IsKernel(%#x) = false, want true", a)
		}
		if !cfg.IsCanonical(a) {
			t.Errorf("IsCanonical(%#x) = false, want true", a)
		}
	}
	userAddrs := []uint64{0, 0x0000_7FFF_FFFF_F000, UserTop & ^uint64(0x00FF_0000_0000_0000)}
	for _, a := range userAddrs {
		if cfg.IsKernel(a) {
			t.Errorf("IsKernel(%#x) = true, want false", a)
		}
	}
	// Addresses in the Table 1 invalid hole are non-canonical.
	invalid := []uint64{0x0001_0000_0000_0000, 0xFFFE_FFFF_FFFF_FFFF, 0x0040_0000_0000_0000}
	for _, a := range invalid {
		if cfg.IsCanonical(a) {
			t.Errorf("IsCanonical(%#x) = true, want false (Table 1 hole)", a)
		}
	}
	// With TBI, a tagged user pointer is canonical (tag ignored).
	tagged := uint64(0xAB00_7FFF_0000_1234)
	if !cfg.IsCanonical(tagged) {
		t.Errorf("tagged user pointer %#x should be canonical under TBI", tagged)
	}
}

func TestSignAuthRoundTrip(t *testing.T) {
	s := testSigner()
	f := func(off uint32, mod uint64) bool {
		ptr := KernelBase | uint64(off)
		signed := s.Sign(ptr, mod, KeyIB)
		got, ok := s.Auth(signed, mod, KeyIB)
		return ok && got == ptr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSignAuthUserPointer(t *testing.T) {
	s := testSigner()
	ptr := uint64(0x0000_7FFF_1234_5000)
	signed := s.Sign(ptr, 7, KeyIA)
	got, ok := s.Auth(signed, 7, KeyIA)
	if !ok || got != ptr {
		t.Fatalf("Auth = (%#x, %v), want (%#x, true)", got, ok, ptr)
	}
}

func TestAuthWrongModifierFails(t *testing.T) {
	s := testSigner()
	ptr := uint64(KernelBase) | 0x1234_5678
	signed := s.Sign(ptr, 100, KeyIB)
	got, ok := s.Auth(signed, 101, KeyIB)
	if ok {
		t.Fatal("Auth succeeded with wrong modifier")
	}
	if s.cfg.IsCanonical(got) {
		t.Fatalf("poisoned pointer %#x is canonical; it must fault on use", got)
	}
	if !s.IsPoisoned(got) {
		t.Fatalf("IsPoisoned(%#x) = false", got)
	}
}

func TestAuthWrongKeyFails(t *testing.T) {
	s := testSigner()
	ptr := uint64(KernelBase) | 0xBEEF000
	signed := s.Sign(ptr, 5, KeyIA)
	if _, ok := s.Auth(signed, 5, KeyIB); ok {
		t.Fatal("Auth succeeded under the wrong key")
	}
}

func TestAuthCorruptedPointerFails(t *testing.T) {
	s := testSigner()
	ptr := uint64(KernelBase) | 0xCAFE000
	signed := s.Sign(ptr, 5, KeyDB)
	// Attacker overwrites the address bits but keeps the PAC.
	mask, _ := s.cfg.PACField(true)
	forged := (signed & mask) | s.cfg.Canonical(KernelBase|0xD00D000)&^mask
	if _, ok := s.Auth(forged, 5, KeyDB); ok {
		t.Fatal("Auth accepted a pointer with transplanted PAC")
	}
}

// TestAuthInjectedUnsignedPointer models the paper's §6.2.1: injecting an
// arbitrary unsigned (canonical) pointer fails authentication except with
// probability 2^-pac_size.
func TestAuthInjectedUnsignedPointer(t *testing.T) {
	s := testSigner()
	misses := 0
	const n = 2000
	for i := 0; i < n; i++ {
		ptr := KernelBase | uint64(i)<<12
		if _, ok := s.Auth(ptr, 99, KeyIB); ok {
			misses++
		}
	}
	// Expected acceptance rate 2^-15; with n=2000 even 3 passes would be
	// an extraordinary fluke.
	if misses > 2 {
		t.Fatalf("%d/%d unsigned pointers authenticated; expected ~n*2^-15", misses, n)
	}
}

func TestStrip(t *testing.T) {
	s := testSigner()
	ptr := uint64(KernelBase) | 0xABC000
	signed := s.Sign(ptr, 3, KeyIB)
	if got := s.Strip(signed); got != ptr {
		t.Fatalf("Strip = %#x, want %#x", got, ptr)
	}
	u := uint64(0x0000_7FFF_0000_1000)
	su := s.Sign(u, 3, KeyDA)
	if got := s.Strip(su); got != u {
		t.Fatalf("Strip user = %#x, want %#x", got, u)
	}
}

func TestPACDependsOnKeyAndModifierAndAddress(t *testing.T) {
	s := testSigner()
	ptr := uint64(KernelBase) | 0x40_0000
	base := s.Sign(ptr, 1, KeyIB)
	if s.Sign(ptr, 2, KeyIB) == base {
		t.Error("PAC identical under different modifiers")
	}
	if s.Sign(ptr, 1, KeyIA) == base {
		t.Error("PAC identical under different keys")
	}
	if s.Sign(ptr|0x1000, 1, KeyIB)&^0xFFFF == base&^0xFFFF && s.Sign(ptr|0x1000, 1, KeyIB)&0xFF7F_0000_0000_0000 == base&0xFF7F_0000_0000_0000 {
		t.Error("PAC identical under different addresses")
	}
}

func TestGenericMAC(t *testing.T) {
	s := testSigner()
	m := s.GenericMAC(0x1234, 0x5678)
	if m&0xFFFF_FFFF != 0 {
		t.Errorf("GenericMAC low 32 bits = %#x, want 0 (PACGA result is in the high half)", m&0xFFFF_FFFF)
	}
	if m == 0 {
		t.Error("GenericMAC = 0; MAC should be non-trivial for a non-zero key")
	}
	if s.GenericMAC(0x1234, 0x5679) == m {
		t.Error("GenericMAC identical under different modifiers")
	}
}

func TestSignerZeroKeyStillWorks(t *testing.T) {
	s := NewSigner(DefaultConfig) // no keys installed
	ptr := uint64(KernelBase) | 0x9000
	signed := s.Sign(ptr, 1, KeyIB)
	if got, ok := s.Auth(signed, 1, KeyIB); !ok || got != ptr {
		t.Fatalf("zero-key Auth = (%#x, %v), want (%#x, true)", got, ok, ptr)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{VABits: 48}).Validate(); err != nil {
		t.Errorf("48-bit VA rejected: %v", err)
	}
	if err := (Config{VABits: 20}).Validate(); err == nil {
		t.Error("20-bit VA accepted")
	}
	if err := (Config{VABits: 64}).Validate(); err == nil {
		t.Error("64-bit VA accepted")
	}
}

func TestKeyIDString(t *testing.T) {
	want := map[KeyID]string{KeyIA: "IA", KeyIB: "IB", KeyDA: "DA", KeyDB: "DB", KeyGA: "GA"}
	for id, w := range want {
		if id.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(id), id.String(), w)
		}
	}
	if KeyIA.IsData() || !KeyIA.IsInstruction() || !KeyDB.IsData() || KeyDB.IsInstruction() {
		t.Error("key class predicates wrong")
	}
}

// --- modifier constructions ---

func TestReturnModifierCamouflage(t *testing.T) {
	// Listing 3: modifier = SP[31:0] << 32 | funcAddr[31:0].
	sp := uint64(0xFFFF_0000_DEAD_B000)
	fn := uint64(0xFFFF_0000_1234_5678)
	got := ReturnModifierCamouflage(sp, fn)
	if want := uint64(0xDEAD_B000_1234_5678); got != want {
		t.Fatalf("ReturnModifierCamouflage = %#x, want %#x", got, want)
	}
}

func TestReturnModifierPARTS(t *testing.T) {
	got := ReturnModifierPARTS(0xFFFF_0000_DEAD_B321, 0x0000_ABCD_EF01_2345)
	if want := uint64(0xB321_ABCD_EF01_2345); got != want {
		t.Fatalf("ReturnModifierPARTS = %#x, want %#x", got, want)
	}
}

func TestObjectModifierListing4(t *testing.T) {
	// Listing 4: mov w9, #0xfb45; bfi x9, x0, #16, #48.
	obj := uint64(0xFFFF_0000_0DE0_0040)
	got := ObjectModifier(obj, 0xFB45)
	if got&0xFFFF != 0xFB45 {
		t.Fatalf("ObjectModifier low 16 = %#x, want 0xFB45", got&0xFFFF)
	}
	if got>>16 != obj&0x0000_FFFF_FFFF_FFFF {
		t.Fatalf("ObjectModifier high 48 = %#x, want %#x", got>>16, obj&0x0000_FFFF_FFFF_FFFF)
	}
}

// TestReplaySurfaceClangSP demonstrates §4.2: with the SP-only modifier,
// two different threads whose kernel stacks are 4 KiB aligned produce the
// same signed return address for the same stack depth — a replayable PAC.
// The Camouflage modifier at the same depth in a different function does
// not replay.
func TestReplaySurfaceClangSP(t *testing.T) {
	s := testSigner()
	retAddr := uint64(KernelBase) | 0x0040_1000 // some return site
	spThread1 := uint64(KernelBase) | 0x0800_3F40
	spThread2 := uint64(KernelBase) | 0x0900_3F40 // same low bits: stacks 4 KiB aligned

	sig1 := s.Sign(retAddr, ReturnModifierClangSP(spThread1), KeyIB)
	sig2 := s.Sign(retAddr, ReturnModifierClangSP(spThread2), KeyIB)
	if sig1 == sig2 {
		t.Log("full-SP modifiers differ in high bits here; replay needs equal SP")
	}
	// Same thread, same SP later in time (shallow 16 KiB stack): identical
	// modifier, so the old signed pointer replays.
	if _, ok := s.Auth(sig1, ReturnModifierClangSP(spThread1), KeyIB); !ok {
		t.Fatal("replayed ClangSP pointer did not authenticate")
	}

	// Camouflage: same SP but different function address -> no replay.
	fn1 := uint64(KernelBase) | 0x0040_0000
	fn2 := uint64(KernelBase) | 0x0050_0000
	sigA := s.Sign(retAddr, ReturnModifierCamouflage(spThread1, fn1), KeyIB)
	if _, ok := s.Auth(sigA, ReturnModifierCamouflage(spThread1, fn2), KeyIB); ok {
		t.Fatal("Camouflage pointer replayed across functions")
	}
}

// TestReplaySurfacePARTS demonstrates §7: PARTS's 16-bit SP component
// collides for stacks separated by a multiple of 64 KiB, while Camouflage's
// 32-bit SP component does not collide until 4 GiB spacing.
func TestReplaySurfacePARTS(t *testing.T) {
	s := testSigner()
	retAddr := uint64(KernelBase) | 0x0040_1000
	funcID := uint64(777)
	sp1 := uint64(KernelBase) | 0x0081_3F40
	sp2 := sp1 + 0x10000 // 64 KiB apart: PARTS modifier identical

	m1 := ReturnModifierPARTS(sp1, funcID)
	m2 := ReturnModifierPARTS(sp2, funcID)
	if m1 != m2 {
		t.Fatalf("PARTS modifiers differ (%#x vs %#x); expected collision at 64 KiB spacing", m1, m2)
	}
	sig := s.Sign(retAddr, m1, KeyIB)
	if _, ok := s.Auth(sig, m2, KeyIB); !ok {
		t.Fatal("PARTS replay did not authenticate despite modifier collision")
	}

	fn := uint64(KernelBase) | 0x0040_0000
	c1 := ReturnModifierCamouflage(sp1, fn)
	c2 := ReturnModifierCamouflage(sp2, fn)
	if c1 == c2 {
		t.Fatal("Camouflage modifiers collided at 64 KiB stack spacing")
	}
}

func TestTypeConstStable(t *testing.T) {
	a := TypeConst("file", "f_ops")
	if a != TypeConst("file", "f_ops") {
		t.Fatal("TypeConst is not deterministic")
	}
	if a == TypeConst("file", "f_cred") {
		t.Error("TypeConst collides for distinct members (unlucky hash; pick different names)")
	}
	if a == TypeConst("inode", "f_ops") {
		t.Error("TypeConst collides for distinct types (unlucky hash; pick different names)")
	}
}

func TestPoisonedPointerNotCanonicalBothSides(t *testing.T) {
	s := testSigner()
	for _, ptr := range []uint64{uint64(KernelBase) | 0x1000, 0x0000_7FFF_0000_2000} {
		signed := s.Sign(ptr, 1, KeyIA)
		got, ok := s.Auth(signed, 2, KeyIA)
		if ok {
			t.Fatalf("Auth unexpectedly succeeded for %#x", ptr)
		}
		if s.cfg.IsCanonical(got) {
			t.Errorf("poisoned %#x canonical", got)
		}
	}
}
