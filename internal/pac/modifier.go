package pac

// This file implements the PAuth modifier constructions compared in the
// paper. The modifier is the 64-bit tweak fed to QARMA alongside the
// pointer; its construction determines how far a signed pointer can be
// replayed in another context (§4.2, §5.2, Figure 2).

// ModifierScheme identifies a return-address modifier construction.
type ModifierScheme int

const (
	// ModifierNone means no backward-edge protection (baseline).
	ModifierNone ModifierScheme = iota
	// ModifierClangSP is the Qualcomm/Clang reference scheme (Listing 2):
	// the modifier is the stack pointer alone. Vulnerable to replay when SP
	// values repeat — which they do, systematically, across the 4 KiB
	// aligned, 16 KiB deep kernel task stacks (§4.2).
	ModifierClangSP
	// ModifierPARTS is the PARTS scheme (Liljestrand et al., USENIX Sec'19):
	// the low 16 bits of SP concatenated with a 48-bit link-time function
	// identifier. Replayable across two stacks whose addresses differ by an
	// exact multiple of 64 KiB (§7), and requires LTO, which is incompatible
	// with loadable kernel modules.
	ModifierPARTS
	// ModifierCamouflage is the paper's hardened scheme (Listing 3): the
	// low 32 bits of SP concatenated with the low 32 bits of the function's
	// address, obtained from PC at instrumentation time. No LTO required,
	// compatible with modules, and SP collisions alone no longer suffice
	// for replay.
	ModifierCamouflage
)

// String returns the display name used in Figure 2.
func (m ModifierScheme) String() string {
	switch m {
	case ModifierNone:
		return "none"
	case ModifierClangSP:
		return "SP (Clang)"
	case ModifierPARTS:
		return "PARTS (16b SP + 48b func-id)"
	case ModifierCamouflage:
		return "Camouflage (32b SP + func addr)"
	}
	return "unknown"
}

// ReturnModifierClangSP builds the Listing-2 modifier: SP itself.
func ReturnModifierClangSP(sp uint64) uint64 { return sp }

// ReturnModifierPARTS builds the PARTS modifier: the low 16 bits of SP in
// the top 16 bits, and the 48-bit LTO function id below.
func ReturnModifierPARTS(sp uint64, funcID uint64) uint64 {
	return (sp&0xFFFF)<<48 | funcID&0x0000_FFFF_FFFF_FFFF
}

// ReturnModifierCamouflage builds the Listing-3 modifier, exactly as the
// emitted code does:
//
//	adr  ip0, function    // ip0 = function address
//	mov  ip1, sp          // SP is not a valid BFI operand
//	bfi  ip0, ip1, #32, #32
//
// i.e. the low 32 bits of SP in bits 63..32 and the low 32 bits of the
// function address in bits 31..0.
func ReturnModifierCamouflage(sp, funcAddr uint64) uint64 {
	return (sp&0xFFFF_FFFF)<<32 | funcAddr&0xFFFF_FFFF
}

// ObjectModifier builds the pointer-integrity modifier of §4.3 / Listing 4,
// exactly as the emitted code does:
//
//	mov  w9, #typeConst
//	bfi  x9, x0, #16, #48  // x0 = address of the containing object
//
// i.e. the low 48 bits of the containing object's address in bits 63..16
// and the 16-bit type·member constant in bits 15..0. Since AArch64 uses 48
// address bits, the modifier uniquely identifies the object in memory at a
// given time, and the constant segregates pointers of different
// type-members stored at a recycled address.
func ObjectModifier(objAddr uint64, typeConst uint16) uint64 {
	return (objAddr&0x0000_FFFF_FFFF_FFFF)<<16 | uint64(typeConst)
}

// TypeConst derives the 16-bit constant identifying a (compound type,
// member) pair from its name, using an FNV-1a hash folded to 16 bits. The
// compiler attribute the paper proposes would assign these constants; a
// stable hash of "struct.member" is the deterministic equivalent.
func TypeConst(typeName, memberName string) uint16 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(typeName); i++ {
		h = (h ^ uint64(typeName[i])) * prime64
	}
	h = (h ^ '.') * prime64
	for i := 0; i < len(memberName); i++ {
		h = (h ^ uint64(memberName[i])) * prime64
	}
	return uint16(h ^ h>>16 ^ h>>32 ^ h>>48)
}
