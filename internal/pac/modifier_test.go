package pac

import (
	"testing"
	"testing/quick"
)

// TestCamouflageModifierInjective: the Camouflage modifier is injective
// in (SP low 32, function-address low 32) — two sign contexts collide only
// if both components collide.
func TestCamouflageModifierInjective(t *testing.T) {
	f := func(sp1, fn1, sp2, fn2 uint64) bool {
		m1 := ReturnModifierCamouflage(sp1, fn1)
		m2 := ReturnModifierCamouflage(sp2, fn2)
		same := uint32(sp1) == uint32(sp2) && uint32(fn1) == uint32(fn2)
		return (m1 == m2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestClangSPModifierIgnoresFunction: the SP-only modifier cannot
// distinguish return sites — the §4.2 weakness as a property.
func TestClangSPModifierIgnoresFunction(t *testing.T) {
	f := func(sp uint64) bool {
		return ReturnModifierClangSP(sp) == sp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPARTSModifier64KAliasing: adding any multiple of 64 KiB to SP never
// changes the PARTS modifier (§7).
func TestPARTSModifier64KAliasing(t *testing.T) {
	f := func(sp, fid uint64, k uint8) bool {
		shifted := sp + uint64(k)*0x10000
		return ReturnModifierPARTS(sp, fid) == ReturnModifierPARTS(shifted, fid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCamouflageModifierNo64KAliasing: the same shift always changes the
// Camouflage modifier (until 4 GiB).
func TestCamouflageModifierNo64KAliasing(t *testing.T) {
	f := func(sp, fn uint64, k uint8) bool {
		shift := (uint64(k%15) + 1) * 0x10000 // 64 KiB .. ~1 MiB
		return ReturnModifierCamouflage(sp, fn) != ReturnModifierCamouflage(sp+shift, fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestObjectModifierFields: the §4.3 modifier decomposes exactly into its
// two fields for all inputs.
func TestObjectModifierFields(t *testing.T) {
	f := func(obj uint64, tc uint16) bool {
		m := ObjectModifier(obj, tc)
		return uint16(m) == tc && m>>16 == obj&0x0000_FFFF_FFFF_FFFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestObjectModifierDistinguishesObjects: distinct 48-bit object addresses
// never share a modifier, whatever the type constants.
func TestObjectModifierDistinguishesObjects(t *testing.T) {
	f := func(a, b uint64, tc uint16) bool {
		if a&0x0000_FFFF_FFFF_FFFF == b&0x0000_FFFF_FFFF_FFFF {
			return true // same object: collision expected
		}
		return ObjectModifier(a, tc) != ObjectModifier(b, tc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestModifierSchemeStrings pins the display names used across figures.
func TestModifierSchemeStrings(t *testing.T) {
	for scheme, want := range map[ModifierScheme]string{
		ModifierNone:       "none",
		ModifierClangSP:    "SP (Clang)",
		ModifierPARTS:      "PARTS (16b SP + 48b func-id)",
		ModifierCamouflage: "Camouflage (32b SP + func addr)",
	} {
		if scheme.String() != want {
			t.Errorf("%d.String() = %q, want %q", scheme, scheme.String(), want)
		}
	}
}

// TestTypeConstDistribution: the FNV-folded constants spread across the
// 16-bit space for realistic kernel member names (no systematic bias that
// would cluster modifiers).
func TestTypeConstDistribution(t *testing.T) {
	names := []struct{ typ, member string }{
		{"file", "f_ops"}, {"file", "f_cred"}, {"inode", "i_op"},
		{"socket", "ops"}, {"net_device", "netdev_ops"}, {"tty_struct", "ops"},
		{"work_struct", "func"}, {"timer_list", "function"},
		{"super_block", "s_op"}, {"dentry", "d_op"},
	}
	seen := map[uint16]bool{}
	for _, n := range names {
		tc := TypeConst(n.typ, n.member)
		if seen[tc] {
			t.Fatalf("collision at %s.%s (tc=%#x) within a tiny sample", n.typ, n.member, tc)
		}
		seen[tc] = true
	}
}
