// Package pac models ARMv8.3-A pointer authentication (PAuth) over the
// VMSAv8 virtual address layout described in Appendix A of the Camouflage
// paper (Tables 1 and 2).
//
// A 64-bit AArch64 pointer does not use all of its bits for addressing: with
// the usual 48-bit virtual address space, bits 47..0 address memory, bit 55
// selects the translation table (TTBR0 for user, TTBR1 for kernel) and the
// remaining bits are sign extension (or an ignored tag byte when top-byte
// ignore is enabled). PAuth replaces those unused bits with a truncated
// keyed MAC — the pointer authentication code (PAC) — computed by QARMA
// from the pointer and a 64-bit modifier.
//
// This package computes PAC field geometry for a configurable layout,
// signs, authenticates and strips pointers, and models the
// authentication-failure "poisoning" that makes a corrupted pointer fault
// when dereferenced.
package pac

import (
	"fmt"

	"camouflage/internal/qarma"
)

// KeyID names one of the five PAuth keys of ARMv8.3-A (Appendix B.1).
type KeyID int

const (
	// KeyIA and KeyIB sign instruction pointers (return addresses and
	// function pointers).
	KeyIA KeyID = iota
	KeyIB
	// KeyDA and KeyDB sign data pointers.
	KeyDA
	KeyDB
	// KeyGA signs generic 64-bit data, unconstrained by address layout.
	KeyGA

	// NumKeys is the number of simultaneously active PAuth keys per core.
	NumKeys = 5
)

// String returns the ARM name of the key.
func (k KeyID) String() string {
	switch k {
	case KeyIA:
		return "IA"
	case KeyIB:
		return "IB"
	case KeyDA:
		return "DA"
	case KeyDB:
		return "DB"
	case KeyGA:
		return "GA"
	}
	return fmt.Sprintf("KeyID(%d)", int(k))
}

// IsInstruction reports whether k is one of the two instruction keys.
func (k KeyID) IsInstruction() bool { return k == KeyIA || k == KeyIB }

// IsData reports whether k is one of the two data keys.
func (k KeyID) IsData() bool { return k == KeyDA || k == KeyDB }

// Config describes the virtual-memory layout parameters that determine
// where the PAC lives inside a pointer.
type Config struct {
	// VABits is the virtual address space size in bits (48 in the typical
	// configuration of Table 1; up to 52 with ARMv8.2-LVA).
	VABits int
	// TBIUser enables top-byte ignore for user (TTBR0) addresses. Linux
	// enables this, so user PACs lose bits 63..56.
	TBIUser bool
	// TBIKernel enables top-byte ignore for kernel (TTBR1) addresses.
	// Linux leaves this disabled except under KASAN.
	TBIKernel bool
}

// DefaultConfig is the typical Linux/Ubuntu AArch64 run-time configuration
// of the paper: 48-bit VA, 4 KiB pages, TBI for user space only. Under this
// configuration a kernel pointer carries a 15-bit PAC (§5.4).
var DefaultConfig = Config{VABits: 48, TBIUser: true, TBIKernel: false}

// selectBit is the bit that selects between TTBR0 (0, user) and
// TTBR1 (1, kernel) per Table 1.
const selectBit = 55

// KernelBase is the lowest kernel virtual address of Table 1 for a 48-bit
// VA configuration.
const KernelBase = 0xFFFF_0000_0000_0000

// UserTop is the highest user virtual address of Table 1 for a 48-bit VA
// configuration.
const UserTop = 0x0000_FFFF_FFFF_FFFF

// Validate reports whether the configuration is one the model supports.
func (c Config) Validate() error {
	if c.VABits < 36 || c.VABits > 52 {
		return fmt.Errorf("pac: VABits %d outside supported range [36, 52]", c.VABits)
	}
	return nil
}

// IsKernel reports whether addr selects the kernel translation table
// (bit 55 set — Table 1).
func (c Config) IsKernel(addr uint64) bool {
	return addr&(1<<selectBit) != 0
}

// PACField returns the mask of pointer bits that hold the PAC for a pointer
// on the given side of the address space, and the PAC size in bits. Bit 55
// is never part of the PAC (it must keep selecting the translation table),
// and tag bits 63..56 are excluded when TBI is enabled for that side.
func (c Config) PACField(kernel bool) (mask uint64, size int) {
	tbi := c.TBIUser
	if kernel {
		tbi = c.TBIKernel
	}
	top := 63
	if tbi {
		top = 55
	}
	for bit := c.VABits; bit <= top; bit++ {
		if bit == selectBit {
			continue
		}
		mask |= 1 << bit
	}
	return mask, popcount(mask)
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Canonical returns ptr with its PAC field replaced by the canonical
// extension bits for its side of the address space: all-ones above bit 54
// for kernel pointers, all-zeros for user pointers (Table 2), leaving tag
// bits alone when TBI applies.
func (c Config) Canonical(ptr uint64) uint64 {
	kernel := c.IsKernel(ptr)
	mask, _ := c.PACField(kernel)
	if kernel {
		return ptr | mask
	}
	return ptr &^ mask
}

// IsCanonical reports whether the pointer's extension bits match its bit-55
// selector, i.e. the pointer carries no PAC and no corruption.
func (c Config) IsCanonical(ptr uint64) bool {
	return ptr == c.Canonical(ptr)
}

// Key is one 128-bit PAuth key as held by a register pair
// (APxKeyHi_EL1:APxKeyLo_EL1).
type Key struct {
	Hi uint64
	Lo uint64
}

// IsZero reports whether the key is all-zero (never provisioned).
func (k Key) IsZero() bool { return k.Hi == 0 && k.Lo == 0 }

// KeySet is a full bank of five PAuth keys.
type KeySet struct {
	Keys [NumKeys]Key
}

// Signer computes and checks PACs under a fixed layout configuration. The
// QARMA cipher instances are cached per key value.
type Signer struct {
	cfg    Config
	rounds int
	cipher [NumKeys]*qarma.Cipher
	keys   [NumKeys]Key

	// Auths and Fails count Auth calls and authentication failures per
	// key (GenericMAC counts under KeyGA). Plain fields by design: a
	// Signer is owned by one CPU, which is run by one goroutine at a
	// time, so increments are unsynchronized and free; the owning CPU
	// drains them into the obs registry when its Run returns.
	Auths [NumKeys]uint64
	Fails [NumKeys]uint64
}

// NewSigner returns a Signer for the given layout using QARMA-64 with the
// default PAC round count.
func NewSigner(cfg Config) *Signer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Signer{cfg: cfg, rounds: qarma.DefaultRounds}
}

// Config returns the layout configuration of the signer.
func (s *Signer) Config() Config { return s.cfg }

// SetKey installs the 128-bit key for the given slot.
func (s *Signer) SetKey(id KeyID, k Key) {
	s.keys[id] = k
	s.cipher[id] = qarma.New(qarma.Key{W0: k.Hi, K0: k.Lo}, s.rounds)
}

// Key returns the currently installed key for the slot.
func (s *Signer) Key(id KeyID) Key { return s.keys[id] }

// SetKeys installs a full bank of keys.
func (s *Signer) SetKeys(ks KeySet) {
	for i := range ks.Keys {
		s.SetKey(KeyID(i), ks.Keys[i])
	}
}

// Keys returns the currently installed key bank (snapshot capture).
func (s *Signer) Keys() KeySet {
	return KeySet{Keys: s.keys}
}

// pacFor computes the PAC bits for ptr under modifier, positioned within
// the PAC field mask. The MAC input is the canonical form of the pointer so
// that signing is independent of any stale PAC bits.
func (s *Signer) pacFor(ptr, modifier uint64, id KeyID) uint64 {
	mask, _ := s.cfg.PACField(s.cfg.IsKernel(ptr))
	c := s.cipher[id]
	if c == nil {
		// Unprovisioned key: ARM behaviour with a zero key is still a MAC;
		// we model an explicit all-zero key.
		c = qarma.New(qarma.Key{}, s.rounds)
		s.cipher[id] = c
	}
	mac := c.Encrypt(s.cfg.Canonical(ptr), modifier)
	// Scatter the low MAC bits into the PAC field positions.
	var pacBits uint64
	bit := 0
	for i := 0; i < 64; i++ {
		if mask&(1<<i) != 0 {
			if mac&(1<<bit) != 0 {
				pacBits |= 1 << i
			}
			bit++
		}
	}
	return pacBits
}

// Sign returns ptr with its PAC field replaced by the PAC computed under
// the key and modifier (the PAC* instructions).
func (s *Signer) Sign(ptr, modifier uint64, id KeyID) uint64 {
	kernel := s.cfg.IsKernel(ptr)
	mask, _ := s.cfg.PACField(kernel)
	pacBits := s.pacFor(ptr, modifier, id)
	if kernel {
		// Kernel canonical extension is all-ones: the PAC is stored
		// inverted relative to the extension so that a zero MAC still
		// yields a canonical-looking pointer only when it should.
		return (ptr &^ mask) | pacBits
	}
	return (ptr &^ mask) | pacBits
}

// poisonBit returns the extension bit flipped on authentication failure so
// the resulting address is non-canonical and faults when dereferenced.
// ARMv8.3 writes a key-class-dependent error code into the top bits of the
// PAC field itself (bits 62:61 without TBI, bits 54:53 with TBI) — placing
// it inside the *checked* field is essential: with top-byte ignore the tag
// bits are never validated, so poisoning them would not fault. We model the
// top PAC-field bit for instruction keys and the next one down for data
// keys.
func poisonBit(mask uint64, id KeyID) uint64 {
	top := uint64(1) << 63
	for ; top != 0 && top&mask == 0; top >>= 1 {
	}
	if id.IsInstruction() || top == 1 {
		return top
	}
	second := top >> 1
	for ; second != 0 && second&mask == 0; second >>= 1 {
	}
	if second == 0 {
		return top
	}
	return second
}

// Auth authenticates a signed pointer (the AUT* instructions). On success
// it returns the canonical pointer and ok = true. On failure it returns a
// poisoned, guaranteed-non-canonical pointer and ok = false; dereferencing
// or branching to that pointer raises a translation fault in the MMU model.
func (s *Signer) Auth(signed, modifier uint64, id KeyID) (ptr uint64, ok bool) {
	kernel := s.cfg.IsKernel(signed)
	mask, _ := s.cfg.PACField(kernel)
	want := s.pacFor(signed, modifier, id)
	got := signed & mask
	canonical := s.cfg.Canonical(signed)
	s.Auths[id]++
	if got == want {
		return canonical, true
	}
	s.Fails[id]++
	// Poison: canonicalise, then flip a checked extension bit so the
	// pointer is invalid regardless of address-space side.
	return canonical ^ poisonBit(mask, id), false
}

// Strip removes the PAC, restoring the canonical pointer without any
// authentication (the XPAC* instructions; debugging only).
func (s *Signer) Strip(ptr uint64) uint64 {
	return s.cfg.Canonical(ptr)
}

// GenericMAC computes the 32-bit PACGA-style MAC over value with the given
// modifier; the result is placed in the high 32 bits as the architecture
// does for PACGA's destination register.
func (s *Signer) GenericMAC(value, modifier uint64) uint64 {
	s.Auths[KeyGA]++
	c := s.cipher[KeyGA]
	if c == nil {
		c = qarma.New(qarma.Key{}, s.rounds)
		s.cipher[KeyGA] = c
	}
	return uint64(c.MAC(value, modifier)) << 32
}

// IsPoisoned reports whether ptr carries the authentication-failure marker
// of either key class (and is therefore guaranteed non-canonical).
func (s *Signer) IsPoisoned(ptr uint64) bool {
	if s.cfg.IsCanonical(ptr) {
		return false
	}
	mask, _ := s.cfg.PACField(s.cfg.IsKernel(ptr))
	for _, id := range []KeyID{KeyIA, KeyDA} {
		if s.cfg.IsCanonical(ptr ^ poisonBit(mask, id)) {
			return true
		}
	}
	return false
}
