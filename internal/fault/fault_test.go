package fault

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// install swaps in a registry for the test and restores the previous
// one (tests in other packages race through the same global).
func install(t *testing.T, r *Registry) {
	t.Helper()
	prev := Active()
	Install(r)
	t.Cleanup(func() { Install(prev) })
}

func TestDisabledIsInert(t *testing.T) {
	install(t, nil)
	if Enabled() {
		t.Fatal("Enabled() with nil registry")
	}
	if Fire(StoreChunkRead) {
		t.Fatal("Fire with nil registry")
	}
	if err := ErrAt(StoreChunkRead); err != nil {
		t.Fatalf("ErrAt with nil registry: %v", err)
	}
	data := []byte{0xAA, 0xBB}
	if Corrupt(StoreChunkCorrupt, data) || data[0] != 0xAA || data[1] != 0xBB {
		t.Fatal("Corrupt mutated data with nil registry")
	}
	SleepAt(ClientStall)
	PanicAt(ServerJob)
}

func TestFaultDisabledZeroAllocs(t *testing.T) {
	install(t, nil)
	buf := []byte{1, 2, 3, 4}
	allocs := testing.AllocsPerRun(1000, func() {
		if Fire(StoreChunkRead) {
			t.Error("fired")
		}
		if ErrAt(StoreChunkWrite) != nil {
			t.Error("erred")
		}
		Corrupt(StoreChunkCorrupt, buf)
		SleepAt(ClientStall)
	})
	if allocs != 0 {
		t.Fatalf("disabled fault checks allocate: %.1f allocs/op", allocs)
	}
}

func TestFirstNRule(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(StoreChunkRead, Rule{First: 2})
	install(t, r)
	var fired int
	for i := 0; i < 10; i++ {
		if err := ErrAt(StoreChunkRead); err != nil {
			fired++
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("ErrAt returned %T, want *fault.Error", err)
			}
			if fe.Point != StoreChunkRead || fe.N != uint64(fired) {
				t.Fatalf("error = %+v, want point=%s n=%d", fe, StoreChunkRead, fired)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("First:2 fired %d times, want 2", fired)
	}
	if got := r.Fired(StoreChunkRead); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := r.Checks(StoreChunkRead); got != 10 {
		t.Fatalf("Checks = %d, want 10", got)
	}
}

func TestEveryKRule(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(PoolBoot, Rule{Every: 3})
	install(t, r)
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, Fire(PoolBoot))
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("every:3 pattern = %v, want %v", pattern, want)
		}
	}
}

func TestEveryWithFirstCap(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(PoolBoot, Rule{Every: 2, First: 2})
	install(t, r)
	var fired int
	for i := 0; i < 20; i++ {
		if Fire(PoolBoot) {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("every:2 capped at first 2 fired %d times", fired)
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(StoreChunkRead, Rule{})
	install(t, r)
	if Fire(ClientReset) {
		t.Fatal("unarmed point fired")
	}
}

func TestCorruptIsDeterministic(t *testing.T) {
	base := bytes.Repeat([]byte{0x5C}, 4096)

	flip := func(seed uint64) []byte {
		r := NewRegistry(seed)
		r.Arm(StoreChunkCorrupt, Rule{First: 1})
		install(t, r)
		data := append([]byte(nil), base...)
		if !Corrupt(StoreChunkCorrupt, data) {
			t.Fatal("Corrupt did not fire")
		}
		return data
	}

	a, b := flip(42), flip(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed flipped different bits")
	}
	if bytes.Equal(a, base) {
		t.Fatal("Corrupt flipped nothing")
	}
	// Exactly one bit differs.
	diffBits := 0
	for i := range a {
		x := a[i] ^ base[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flipped %d bits, want 1", diffBits)
	}
	if c := flip(43); bytes.Equal(a, c) {
		t.Fatal("different seeds flipped the same bit (possible but suspicious for 32768 positions)")
	}
}

func TestCorruptOrdinalsDiffer(t *testing.T) {
	r := NewRegistry(7)
	r.Arm(StoreChunkCorrupt, Rule{First: 2})
	install(t, r)
	a := bytes.Repeat([]byte{0}, 512)
	b := bytes.Repeat([]byte{0}, 512)
	if !Corrupt(StoreChunkCorrupt, a) || !Corrupt(StoreChunkCorrupt, b) {
		t.Fatal("corruptions did not fire")
	}
	if bytes.Equal(a, b) {
		t.Fatal("consecutive corruptions flipped the same bit")
	}
}

func TestSleepAtDelays(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(ClientStall, Rule{First: 1, Delay: 30 * time.Millisecond})
	install(t, r)
	start := time.Now()
	SleepAt(ClientStall)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("SleepAt returned after %v, want >=30ms", d)
	}
	// Second check doesn't fire, so no delay.
	start = time.Now()
	SleepAt(ClientStall)
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("exhausted SleepAt still slept %v", d)
	}
}

func TestPanicAt(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(ServerJob, Rule{First: 1})
	install(t, r)
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("PanicAt did not panic")
			}
			fe, ok := v.(*Error)
			if !ok || fe.Point != ServerJob {
				t.Fatalf("panic value = %#v, want *fault.Error{server.job}", v)
			}
		}()
		PanicAt(ServerJob)
	}()
	PanicAt(ServerJob) // exhausted: must not panic
}

func TestConcurrentChecksFireExactly(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(StoreChunkRead, Rule{First: 100})
	install(t, r)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 100; i++ {
				if Fire(StoreChunkRead) {
					local++
				}
			}
			mu.Lock()
			fired += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if fired != 100 {
		t.Fatalf("First:100 under 8 goroutines fired %d times", fired)
	}
	if r.Checks(StoreChunkRead) != 800 {
		t.Fatalf("checks = %d, want 800", r.Checks(StoreChunkRead))
	}
}

func TestParseSpec(t *testing.T) {
	r, err := ParseSpec("seed=42, store.chunk.read=2, client.stall=1:50ms, pool.boot=every:3, store.crash=all")
	if err != nil {
		t.Fatal(err)
	}
	if r.seed != 42 {
		t.Fatalf("seed = %d", r.seed)
	}
	wantRules := map[Point]Rule{
		StoreChunkRead: {First: 2},
		ClientStall:    {First: 1, Delay: 50 * time.Millisecond},
		PoolBoot:       {Every: 3},
		StoreCrash:     {},
	}
	for p, want := range wantRules {
		ru := r.rules[p]
		if ru == nil {
			t.Fatalf("point %s not armed", p)
		}
		if ru.spec != want {
			t.Fatalf("point %s rule = %+v, want %+v", p, ru.spec, want)
		}
	}
	if len(r.rules) != len(wantRules) {
		t.Fatalf("armed %d points, want %d", len(r.rules), len(wantRules))
	}
}

func TestParseSpecEveryWithDelay(t *testing.T) {
	r, err := ParseSpec("pool.acquire=every:2:10ms")
	if err != nil {
		t.Fatal(err)
	}
	ru := r.rules[PoolAcquire]
	if ru == nil || ru.spec.Every != 2 || ru.spec.Delay != 10*time.Millisecond {
		t.Fatalf("rule = %+v", ru)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"storechunkread",        // no =
		"seed=abc",              // bad seed
		"store.chunk.read=0",    // zero count
		"store.chunk.read=x",    // bad count
		"pool.boot=every",       // every without K
		"pool.boot=every:0",     // zero K
		"client.stall=1:nope",   // bad duration
		"client.stall=1:1ms:2s", // trailing fields
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

func TestEnableSpecEmptyIsNoop(t *testing.T) {
	install(t, nil)
	r, err := EnableSpec("   ")
	if err != nil || r != nil {
		t.Fatalf("EnableSpec(blank) = %v, %v", r, err)
	}
	if Enabled() {
		t.Fatal("blank spec installed a registry")
	}
}

func TestStringCanonical(t *testing.T) {
	r, err := ParseSpec("seed=9,store.crash=all,client.stall=3:50ms,pool.boot=every:4")
	if err != nil {
		t.Fatal(err)
	}
	got := r.String()
	want := "seed=9,client.stall=3:50ms,pool.boot=every:4,store.crash=all"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// Round-trip.
	r2, err := ParseSpec(got)
	if err != nil {
		t.Fatal(err)
	}
	if r2.String() != got {
		t.Fatalf("round-trip = %q", r2.String())
	}
}

func TestCountsSnapshot(t *testing.T) {
	r := NewRegistry(1)
	r.Arm(StoreChunkRead, Rule{First: 3})
	r.Arm(ClientReset, Rule{First: 1})
	install(t, r)
	for i := 0; i < 5; i++ {
		Fire(StoreChunkRead)
	}
	Fire(ClientReset)
	counts := r.Counts()
	if counts[StoreChunkRead] != 3 || counts[ClientReset] != 1 {
		t.Fatalf("Counts = %v", counts)
	}
}
