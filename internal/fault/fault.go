// Package fault is the deterministic fault-injection registry behind
// the chaos tests and the `-faults` flag of camouflaged and the CLIs
// (DESIGN.md §13). Injection points are threaded through the cold
// paths of the store (chunk/manifest reads, writes, renames, a
// crash-before-rename that strands temp files exactly like a process
// death), the warm pool (boot and §4.1 verify failures, slow guests)
// and the client transport (connection resets, synthesized 5xx,
// stalls); the layers above are hardened to survive them, and the
// chaos suite pins that whenever retries succeed, output is
// byte-identical to a quiet run.
//
// Determinism is the whole point: a fault plan is a seed plus a set of
// per-point rules, and every decision is a pure function of (rule,
// per-point check ordinal, seed) — never of wall time or a shared PRNG
// another goroutine could advance. Two runs with the same plan that
// reach each injection point the same number of times inject exactly
// the same faults, so a chaos failure reproduces from its spec string
// alone. Count-based rules ("the first N", "every Kth") stay
// deterministic even when the points themselves are raced from many
// goroutines, because each point counts its own checks.
//
// When no registry is installed — every production run — an injection
// point costs one atomic pointer load and a branch, allocates nothing,
// and is benchgate-gated (≤2% on the scraped execution A/B, like the
// observability registry it is modeled on).
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"camouflage/internal/obs"
)

// Point names one injection site. The constants below are the complete
// set of sites threaded through the tree; Arm accepts any Point so
// tests can add private ones.
type Point string

// Injection sites, by subsystem.
const (
	// internal/store — the persistent snapshot store.
	StoreChunkRead     Point = "store.chunk.read"     // fail a chunk/manifest read
	StoreChunkCorrupt  Point = "store.chunk.corrupt"  // flip one deterministic bit in read chunk data
	StoreChunkWrite    Point = "store.chunk.write"    // fail a chunk write before the temp file exists
	StoreManifestWrite Point = "store.manifest.write" // fail a manifest write before the temp file exists
	StoreRename        Point = "store.rename"         // fail the publishing rename (temp file cleaned up)
	StoreCrash         Point = "store.crash"          // crash-before-rename: temp file written and STRANDED
	StorePersist       Point = "store.persist"        // delay/fail Save at entry (async persist in flight)

	// internal/snapshot — the warm pool.
	PoolBoot    Point = "pool.boot"    // fail machine construction before codegen
	PoolVerify  Point = "pool.verify"  // fail the §4.1 static verification gate
	PoolAcquire Point = "pool.acquire" // delay Acquire (slow or wedged guest)

	// client — the HTTP transport.
	ClientReset Point = "client.reset" // connection reset before the request is sent
	Client5xx   Point = "client.5xx"   // synthesize a 503 with Retry-After: 0
	ClientStall Point = "client.stall" // delay the request in flight

	// internal/server — job execution.
	ServerJob Point = "server.job" // panic inside an admitted job
)

// Rule decides when an armed point fires. The zero Rule fires on every
// check; First and Every restrict it. Delay is the sleep injected by
// SleepAt (points checked with ErrAt/Fire ignore it).
type Rule struct {
	// First fires only the first N checks of the point (0 = no limit).
	First uint64
	// Every fires only every Kth check (0 or 1 = every check). Combined
	// with First, the first N of the selected checks fire.
	Every uint64
	// Delay is the injected sleep for SleepAt points.
	Delay time.Duration
}

// Error is an injected failure. Layers above treat it exactly like the
// real fault it stands in for; tests unwrap it with errors.As to
// distinguish injected faults from genuine ones.
type Error struct {
	Point Point
	// N is the 1-based fire ordinal at this point.
	N uint64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure #%d", e.Point, e.N)
}

// rule is the armed state of one point.
type rule struct {
	spec   Rule
	checks uint64
	fired  uint64
}

// Registry is one fault plan: a seed plus per-point rules. All methods
// are safe for concurrent use.
type Registry struct {
	seed uint64

	mu    sync.Mutex
	rules map[Point]*rule
}

// NewRegistry returns an empty registry keyed by seed (the seed drives
// deterministic payload choices such as which bit a corruption flips).
func NewRegistry(seed uint64) *Registry {
	return &Registry{seed: seed, rules: make(map[Point]*rule)}
}

// Arm installs (or replaces) the rule for a point, resetting its
// counters.
func (r *Registry) Arm(p Point, spec Rule) {
	r.mu.Lock()
	r.rules[p] = &rule{spec: spec}
	r.mu.Unlock()
}

// Fired returns how many times the point has fired.
func (r *Registry) Fired(p Point) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ru := r.rules[p]; ru != nil {
		return ru.fired
	}
	return 0
}

// Checks returns how many times the point has been consulted (armed
// points only; unarmed checks are not counted).
func (r *Registry) Checks(p Point) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ru := r.rules[p]; ru != nil {
		return ru.checks
	}
	return 0
}

// Counts snapshots every armed point's fire count (operator logging
// after a chaos run).
func (r *Registry) Counts() map[Point]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Point]uint64, len(r.rules))
	for p, ru := range r.rules {
		out[p] = ru.fired
	}
	return out
}

// String renders the registry as a canonical spec (points sorted), for
// logs.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	parts := []string{fmt.Sprintf("seed=%d", r.seed)}
	points := make([]string, 0, len(r.rules))
	for p := range r.rules {
		points = append(points, string(p))
	}
	sort.Strings(points)
	for _, p := range points {
		ru := r.rules[Point(p)]
		s := p + "="
		switch {
		case ru.spec.Every > 1:
			s += fmt.Sprintf("every:%d", ru.spec.Every)
		case ru.spec.First > 0:
			s += strconv.FormatUint(ru.spec.First, 10)
		default:
			s += "all"
		}
		if ru.spec.Delay > 0 {
			s += ":" + ru.spec.Delay.String()
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

// check decides whether the point fires now, returning the 1-based fire
// ordinal and the rule's delay.
func (r *Registry) check(p Point) (n uint64, delay time.Duration, fire bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ru := r.rules[p]
	if ru == nil {
		return 0, 0, false
	}
	ru.checks++
	if ru.spec.Every > 1 && ru.checks%ru.spec.Every != 0 {
		return 0, 0, false
	}
	if ru.spec.First > 0 && ru.fired >= ru.spec.First {
		return 0, 0, false
	}
	ru.fired++
	obs.Add(obs.CFaultInjected, 1)
	return ru.fired, ru.spec.Delay, true
}

// active is the installed registry; nil means the fault layer is
// disabled and every injection point is a load-and-branch no-op.
var active atomic.Pointer[Registry]

// Install makes r the process-wide registry (nil disables injection).
func Install(r *Registry) { active.Store(r) }

// Disable removes the installed registry.
func Disable() { active.Store(nil) }

// Active returns the installed registry, or nil.
func Active() *Registry { return active.Load() }

// Enabled reports whether a registry is installed.
func Enabled() bool { return active.Load() != nil }

// Fire reports whether the point fires now. The disabled fast path is
// one atomic load and a branch.
func Fire(p Point) bool {
	r := active.Load()
	if r == nil {
		return false
	}
	_, _, fire := r.check(p)
	return fire
}

// ErrAt returns an injected *Error when the point fires, nil otherwise.
// A rule armed with a delay sleeps it before failing (slow-then-fail
// faults: a persist that wedges, then errors).
func ErrAt(p Point) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	n, delay, fire := r.check(p)
	if !fire {
		return nil
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return &Error{Point: p, N: n}
}

// SleepAt sleeps the armed delay when the point fires (slow guests,
// transport stalls). Points armed without a delay simply fire-count.
func SleepAt(p Point) {
	r := active.Load()
	if r == nil {
		return
	}
	if _, delay, fire := r.check(p); fire && delay > 0 {
		time.Sleep(delay)
	}
}

// PanicAt panics with an injected *Error when the point fires — the
// probe for per-job panic recovery.
func PanicAt(p Point) {
	r := active.Load()
	if r == nil {
		return
	}
	if n, _, fire := r.check(p); fire {
		panic(&Error{Point: p, N: n})
	}
}

// Corrupt flips one deterministic bit of data in place when the point
// fires, reporting whether it did. The bit is chosen by the registry
// seed, the point name and the fire ordinal, so a corruption campaign
// replays byte-for-byte.
func Corrupt(p Point, data []byte) bool {
	r := active.Load()
	if r == nil || len(data) == 0 {
		return false
	}
	n, _, fire := r.check(p)
	if !fire {
		return false
	}
	bit := splitmix64(r.seed^hashPoint(p)^n) % uint64(len(data)*8)
	data[bit/8] ^= 1 << (bit % 8)
	return true
}

// hashPoint folds a point name into the payload-choice stream (FNV-1a).
func hashPoint(p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the canonical deterministic mixer (no shared state, no
// allocation).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParseSpec builds a registry from a fault plan string — the `-faults`
// flag format:
//
//	seed=42,store.chunk.read=2,client.stall=3:50ms,pool.boot=every:3
//
// Comma-separated entries; `seed=N` keys the payload PRNG (default 1);
// every other entry is `<point>=<when>[:<delay>]` where <when> is a
// count ("2" = the first two checks fire), "every:K" (every Kth check),
// or "all", and <delay> is a Go duration for sleep points.
func ParseSpec(spec string) (*Registry, error) {
	var seed uint64 = 1
	type armed struct {
		p    Point
		rule Rule
	}
	var rules []armed
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec entry %q (want point=rule)", part)
		}
		if k == "seed" {
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			seed = s
			continue
		}
		var ru Rule
		fields := strings.Split(v, ":")
		when := fields[0]
		rest := fields[1:]
		switch {
		case when == "all":
		case when == "every":
			if len(rest) == 0 {
				return nil, fmt.Errorf("fault: %s: every needs a count (every:K)", k)
			}
			n, err := strconv.ParseUint(rest[0], 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("fault: %s: bad every count %q", k, rest[0])
			}
			ru.Every = n
			rest = rest[1:]
		default:
			n, err := strconv.ParseUint(when, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("fault: %s: bad fire count %q", k, when)
			}
			ru.First = n
		}
		if len(rest) > 0 {
			d, err := time.ParseDuration(rest[0])
			if err != nil {
				return nil, fmt.Errorf("fault: %s: bad delay %q: %v", k, rest[0], err)
			}
			ru.Delay = d
			rest = rest[1:]
		}
		if len(rest) > 0 {
			return nil, fmt.Errorf("fault: %s: trailing spec fields %v", k, rest)
		}
		rules = append(rules, armed{p: Point(k), rule: ru})
	}
	r := NewRegistry(seed)
	for _, a := range rules {
		r.Arm(a.p, a.rule)
	}
	return r, nil
}

// EnableSpec parses a fault plan and installs it process-wide; an empty
// spec is a no-op (the CLIs pass their -faults flag straight through).
func EnableSpec(spec string) (*Registry, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	r, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	Install(r)
	return r, nil
}
