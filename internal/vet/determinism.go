package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the byte-reproducibility contract (DESIGN.md §9,
// §14) inside the determinism-critical packages — the ones whose
// behavior feeds guest-visible state or serialized snapshots, where two
// runs with equal inputs must be bit-identical:
//
//   - no wall-clock reads (time.Now, Since, After, NewTimer, …);
//   - no math/rand (seeded or not: a shared PRNG another goroutine can
//     advance breaks replay);
//   - no goroutine spawns (the deterministic scheduler owns
//     interleaving; parallel modes are deliberate, annotated
//     exceptions);
//   - no map iteration whose body does order-sensitive work (key
//     collection for sorting, commutative reductions and delete() are
//     fine; anything else must sort first or carry an annotation).
//
// Deliberate exceptions carry //camo:nondet <reason> on the line, the
// statement above, or the enclosing function's doc comment.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags wall-clock reads, math/rand, goroutine spawns and " +
		"order-sensitive map iteration in determinism-critical packages",
	Run: runDeterminism,
}

// deterministicPkgs are the critical packages, matched by the last
// element of the import path.
var deterministicPkgs = map[string]bool{
	"cpu": true, "mmu": true, "mem": true, "kernel": true,
	"insn": true, "snapshot": true,
}

// wallClockFuncs are the time package functions whose results differ
// across runs.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

func runDeterminism(pass *Pass) error {
	path := pass.Pkg.Path
	if !deterministicPkgs[path[strings.LastIndex(path, "/")+1:]] {
		return nil
	}
	m := pass.Module
	for _, file := range pass.Pkg.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, f, n)
			case *ast.GoStmt:
				if !excused(m, f, n.Pos(), "nondet") {
					pass.Reportf(n.Pos(),
						"goroutine spawn in determinism-critical package %s: scheduling order is not reproducible (annotate //camo:nondet <reason> if deliberate)",
						pass.Pkg.Types.Name())
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

// checkNondetCall flags wall-clock reads and any use of math/rand.
func checkNondetCall(pass *Pass, f *ast.File, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Module.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	var what string
	switch fn.Pkg().Path() {
	case "time":
		if !wallClockFuncs[fn.Name()] {
			return
		}
		what = "wall-clock read time." + fn.Name()
	case "math/rand", "math/rand/v2":
		what = fn.Pkg().Path() + "." + fn.Name()
	default:
		return
	}
	if excused(pass.Module, f, call.Pos(), "nondet") {
		return
	}
	pass.Reportf(call.Pos(),
		"%s in determinism-critical package %s breaks byte-reproducibility (annotate //camo:nondet <reason> if host-side only)",
		what, pass.Pkg.Types.Name())
}

// checkMapRange flags iteration over a map unless the body is
// order-insensitive or the loop is annotated.
func checkMapRange(pass *Pass, f *ast.File, rng *ast.RangeStmt) {
	t := pass.Module.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBody(pass.Module.Info, rng) {
		return
	}
	if excused(pass.Module, f, rng.Pos(), "nondet") {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration with an order-sensitive body in determinism-critical package %s: collect and sort keys first, or annotate //camo:nondet <reason>",
		pass.Pkg.Types.Name())
}

// orderInsensitiveBody reports whether every statement of a map-range
// body commutes across iteration orders: collecting into a slice or
// map for later (sorted) use, commutative accumulation (+=, |=, ^=,
// ++), counting, guarded variants of those, early exit with a literal,
// per-element stores through the range variables, and delete(). Calls
// other than append/delete/len/cap make a body opaque: the analyzer
// cannot see whether the callee is commutative, so such loops need a
// //camo:nondet annotation or a sorted-key rewrite.
func orderInsensitiveBody(info *types.Info, rng *ast.RangeStmt) bool {
	vars := make(map[string]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			vars[id.Name] = true
		}
	}
	return stmtsOrderInsensitive(info, rng.Body.List, vars)
}

func stmtsOrderInsensitive(info *types.Info, stmts []ast.Stmt, rangeVars map[string]bool) bool {
	for _, stmt := range stmts {
		if !orderInsensitiveStmt(info, stmt, rangeVars) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, stmt ast.Stmt, rangeVars map[string]bool) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return orderInsensitiveAssign(info, s, rangeVars)
	case *ast.IncDecStmt:
		return true
	case *ast.IfStmt:
		// A guard commutes if its pieces do: call-free condition,
		// order-insensitive branches. (Early exits with literals are
		// exists-checks.)
		if s.Init != nil && !orderInsensitiveStmt(info, s.Init, rangeVars) {
			return false
		}
		if !callFree(s.Cond) {
			return false
		}
		if !stmtsOrderInsensitive(info, s.Body.List, rangeVars) {
			return false
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				return stmtsOrderInsensitive(info, blk.List, rangeVars)
			}
			return orderInsensitiveStmt(info, s.Else, rangeVars)
		}
		return true
	case *ast.ReturnStmt:
		// return true / return false / return nil / return 0: an
		// exists-check, the same answer in any order. Returning a
		// range variable or computed value leaks iteration order.
		for _, r := range s.Results {
			if !literalResult(r) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		// continue commutes; break leaks which element came first.
		return s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	}
	return false
}

func orderInsensitiveAssign(info *types.Info, s *ast.AssignStmt, rangeVars map[string]bool) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
		// x += v / x |= v: commutative, associative folds — but only
		// when the added value is call-free (a method call could do
		// order-sensitive work beyond the fold), and only for numeric
		// and bitwise types: += on a string is concatenation, which is
		// exactly the iteration-order leak this rule exists to stop.
		if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isStringType(info.TypeOf(s.Lhs[0])) {
			return false
		}
		for _, r := range s.Rhs {
			if !callFree(r) {
				return false
			}
		}
		return true
	case token.DEFINE:
		// cp := t — a loop-local copy; order-sensitivity is decided by
		// what later statements do with it.
		for _, r := range s.Rhs {
			if !callFree(r) {
				return false
			}
		}
		return true
	case token.ASSIGN:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			// x = append(x, …): order-insensitive collection; the
			// consumer sorts (unsorted use would fail the byte-parity
			// tests loudly).
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					return true
				}
			}
			// m2[k] = v: map insertion order is irrelevant to map
			// contents.
			if _, ok := s.Lhs[0].(*ast.IndexExpr); ok {
				return callFree(s.Rhs[0])
			}
			// t.State = v through a range variable: each iteration
			// stores to its own element.
			if rootedInVars(s.Lhs[0], rangeVars) {
				return callFree(s.Rhs[0])
			}
		}
		return false
	}
	return false
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// callFree reports whether e contains no function calls other than the
// pure builtins len and cap.
func callFree(e ast.Expr) bool {
	if e == nil {
		return true
	}
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return pure
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return pure
		}
		pure = false
		return false
	})
	return pure
}

// literalResult reports whether r is a constant literal or one of the
// universe constants (true/false/nil/iota-free idents).
func literalResult(r ast.Expr) bool {
	switch r := unparen(r).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return r.Name == "true" || r.Name == "false" || r.Name == "nil"
	}
	return false
}

// rootedInVars reports whether the assignable expression is a
// selector/index chain rooted at one of the range variables.
func rootedInVars(e ast.Expr, vars map[string]bool) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return vars[x.Name]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}
