package vet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"camouflage/internal/metriclint"
)

// ObsCounter validates the static observability registry (DESIGN.md
// §11, §14): the obs.CounterID enum and its counterMetas exposition
// table are the single source of truth for every engine counter, and
// the registry only works if they stay in lockstep. For every
// CounterID constant (NumCounters aside) the analyzer requires:
//
//   - a counterMetas entry with a non-empty family and help text;
//   - a family name that passes the shared metriclint naming rules and
//     ends in _total (every registry cell is a counter);
//   - a well-formed pre-rendered label set, unique per (family, labels)
//     pair — two IDs sharing a full sample name would silently merge in
//     the exposition;
//   - at least one use outside the registry table itself: an
//     unreferenced counter is dead exposition surface. A use of a base
//     constant in index arithmetic (CPACAuthIA + CounterID(k)) covers
//     every constant sharing that family, which is how the per-key
//     blocks are bumped.
var ObsCounter = &Analyzer{
	Name: "obscounter",
	Doc: "checks that every obs.CounterID is registered with valid " +
		"exposition metadata and incremented somewhere",
	RunModule: runObsCounter,
}

func runObsCounter(pass *ModulePass) error {
	m := pass.Module
	obsPkg := findPackage(m, "obs", "CounterID")
	if obsPkg == nil {
		return nil // module has no counter registry; nothing to check
	}
	scope := obsPkg.Types.Scope()
	counterID, ok := scope.Lookup("CounterID").(*types.TypeName)
	if !ok {
		return nil
	}

	// Collect the CounterID constants in declaration order.
	type counter struct {
		obj *types.Const
	}
	var counters []counter
	constObjs := make(map[types.Object]int) // object -> index in counters
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != counterID.Type() || name == "NumCounters" {
			continue
		}
		constObjs[c] = len(counters)
		counters = append(counters, counter{obj: c})
	}

	// Parse the counterMetas table.
	metasLit := findVarLiteral(m, obsPkg, "counterMetas")
	if metasLit == nil {
		pass.Reportf(counterID.Pos(), "CounterID registry has no counterMetas table")
		return nil
	}
	type meta struct {
		family, help, labels string
	}
	metas := make(map[types.Object]meta)
	for _, elt := range metasLit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyObj := usedObject(m.Info, kv.Key)
		lit, ok := kv.Value.(*ast.CompositeLit)
		if !ok || keyObj == nil {
			continue
		}
		var fields [3]string
		for i, f := range lit.Elts {
			if i >= 3 {
				break
			}
			if tv, ok := m.Info.Types[f]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				fields[i] = constant.StringVal(tv.Value)
			}
		}
		metas[keyObj] = meta{family: fields[0], help: fields[1], labels: fields[2]}
	}

	// Scan the whole module for uses outside the metas table.
	used := make(map[types.Object]bool)
	usedFamilies := make(map[string]bool) // families covered by index arithmetic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			walkParents(f, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := m.Info.Uses[id]
				if obj == nil {
					return true
				}
				if _, isCounter := constObjs[obj]; !isCounter {
					return true
				}
				if withinNode(metasLit, id.Pos()) {
					return true
				}
				used[obj] = true
				if inBinaryAddition(stack) {
					usedFamilies[metas[obj].family] = true
				}
				return true
			})
		}
	}

	// Verdicts, in declaration order.
	seenSample := make(map[string]types.Object)
	for _, c := range counters {
		mt, registered := metas[c.obj]
		name := c.obj.Name()
		switch {
		case !registered || mt.family == "":
			pass.Reportf(c.obj.Pos(), "counter %s has no exposition metadata in counterMetas", name)
			continue
		case mt.help == "":
			pass.Reportf(c.obj.Pos(), "counter %s has no help text", name)
		}
		if !metriclint.CounterName(mt.family) {
			pass.Reportf(c.obj.Pos(),
				"counter %s family %q fails the metriclint naming rules (legal metric name ending in _total)",
				name, mt.family)
		}
		if problem := metriclint.CheckLabels(mt.labels); problem != "" {
			pass.Reportf(c.obj.Pos(), "counter %s labels %q: %s", name, mt.labels, problem)
		}
		sample := mt.family + "{" + mt.labels + "}"
		if prev, dup := seenSample[sample]; dup {
			pass.Reportf(c.obj.Pos(),
				"counter %s duplicates the exposition sample of %s (%s%s)",
				name, prev.Name(), mt.family, "{"+mt.labels+"}")
		} else {
			seenSample[sample] = c.obj
		}
		if !used[c.obj] && !usedFamilies[mt.family] {
			pass.Reportf(c.obj.Pos(),
				"counter %s is registered but never incremented or referenced outside the registry table",
				name)
		}
	}
	return nil
}

// findPackage locates the module package with the given name that
// declares the given top-level identifier.
func findPackage(m *Module, name, declares string) *Package {
	for _, pkg := range m.Packages {
		if pkg.Types.Name() == name && pkg.Types.Scope().Lookup(declares) != nil {
			return pkg
		}
	}
	return nil
}

// findVarLiteral returns the composite literal initializing the named
// package-level variable of pkg, or nil.
func findVarLiteral(m *Module, pkg *Package, name string) *ast.CompositeLit {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name == name && i < len(vs.Values) {
						if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
							return lit
						}
					}
				}
			}
		}
	}
	return nil
}

// usedObject resolves an expression (identifier or pkg.Sel) to the
// object it uses.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// withinNode reports whether pos falls inside n.
func withinNode(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}

// inBinaryAddition reports whether the identifier's ancestors include a
// binary + expression (index arithmetic over a counter block).
func inBinaryAddition(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.BinaryExpr:
			if p.Op.String() == "+" {
				return true
			}
		case *ast.ParenExpr, *ast.SelectorExpr:
			continue
		default:
			return false
		}
	}
	return false
}
