// Package vet is the engine's project-specific invariant checker: a
// small go/analysis-style framework plus the camovet analyzer suite
// (DESIGN.md §14). The host engine rests on contracts that ordinary
// tests cannot see — atomically-published generation cells that must
// never be read plainly, determinism-critical packages that must never
// consult wall clocks or iterate maps into output, hot-path functions
// benchgate holds to 0 allocs/op, the obs.CounterID exposition
// registry, the fault-point spec grammar — and this package encodes
// each one as a static analyzer run over the whole module on every
// commit (cmd/camovet, the required CI job).
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) so the
// suite can migrate to the real multichecker mechanically if the
// dependency ever becomes available; it is self-contained today
// because the build environment is offline. Loading is go/types over
// `go list -deps -json` output (load.go), which type-checks the module
// and its entire dependency closure from source in one shared
// universe, so analyzers can compare types.Object identities across
// packages.
//
// Deliberate exceptions to an invariant are annotated in the source
// with `//camo:` directives, each carrying a reason string:
//
//	//camo:nondet <reason>   — allow wall-clock/goroutine/map-order
//	                           nondeterminism at this line or function
//	//camo:atomicok <reason> — allow a plain access to an
//	                           atomically-published field
//	//camo:alloc <reason>    — allow an allocating construct inside a
//	                           //camo:hotpath function
//	//camo:hotpath           — mark a function as covered by the
//	                           0 allocs/op contract (not an exception;
//	                           takes no reason)
//
// A directive that requires a reason but carries none is itself a
// finding: silent suppressions rot.
package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. Exactly one of Run
// (invoked once per module package) or RunModule (invoked once with
// the whole module, for cross-package registries) is set.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and -run
	// filters.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string

	// Run analyzes one package.
	Run func(*Pass) error
	// RunModule analyzes the whole module at once.
	RunModule func(*ModulePass) error
}

// A Package is one type-checked module package.
type Package struct {
	// Path is the import path.
	Path string
	// Files are the package's non-test syntax trees, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
}

// A Module is the fully loaded analysis universe: every package of the
// target module, type-checked against a shared file set and type info
// so objects are comparable across packages.
type Module struct {
	// Dir is the module root directory (where DESIGN.md and go.mod
	// live).
	Dir string
	// Fset positions every file in the module and its dependencies.
	Fset *token.FileSet
	// Packages are the module's own packages in dependency order;
	// dependency packages are type-checked but not listed (analyzers
	// never report into code the module does not own).
	Packages []*Package
	// Info is the merged type information for every file of every
	// package (module and dependencies alike).
	Info *types.Info

	ann *annotations
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Module   *Module

	report func(Diagnostic)
}

// A ModulePass carries one analyzer's view of the whole module.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	report func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(diag(p.Module.Fset, p.Analyzer.Name, pos, format, args...))
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(diag(p.Module.Fset, p.Analyzer.Name, pos, format, args...))
}

func diag(fset *token.FileSet, name string, pos token.Pos, format string, args ...any) Diagnostic {
	position := fset.Position(pos)
	return Diagnostic{
		Analyzer: name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// RunAnalyzers applies every analyzer to the module and returns the
// findings sorted by position then analyzer name (deterministic output
// for golden files and cross-commit diffs).
func RunAnalyzers(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	report := func(d Diagnostic) { out = append(out, d) }
	for _, a := range analyzers {
		switch {
		case a.RunModule != nil:
			if err := a.RunModule(&ModulePass{Analyzer: a, Module: m, report: report}); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		case a.Run != nil:
			for _, pkg := range m.Packages {
				if err := a.Run(&Pass{Analyzer: a, Pkg: pkg, Module: m, report: report}); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		default:
			return nil, fmt.Errorf("%s: analyzer has no Run or RunModule", a.Name)
		}
	}
	out = append(out, m.annotationErrors()...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// All returns the full camovet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		Determinism,
		HotAlloc,
		ObsCounter,
		FaultPoint,
	}
}

// ---- //camo: annotations ----------------------------------------------

// directive is one parsed //camo: comment.
type directive struct {
	name   string // "nondet", "atomicok", "alloc", "hotpath"
	reason string
	pos    token.Pos
	line   int
	file   string
	// own reports whether the comment stands on its own line (covers
	// the next line) rather than trailing code (covers its own line).
	own bool
}

type annotations struct {
	// byLine indexes directives by file and covered line.
	byLine map[string]map[int][]*directive
	all    []*directive
}

var directiveRE = regexp.MustCompile(`^//camo:([a-z]+)(?:[ \t]+(.*))?$`)

// reasonRequired lists the directives that suppress a finding and so
// must say why.
var reasonRequired = map[string]bool{"nondet": true, "atomicok": true, "alloc": true}

var knownDirectives = map[string]bool{
	"nondet": true, "atomicok": true, "alloc": true, "hotpath": true,
}

// collectAnnotations indexes every //camo: directive in the module's
// files. src maps filenames to their raw bytes (used to decide whether
// a directive stands alone on its line, covering the following line,
// or trails code, covering its own).
func collectAnnotations(fset *token.FileSet, pkgs []*Package, src map[string][]byte) *annotations {
	ann := &annotations{byLine: make(map[string]map[int][]*directive)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := directiveRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Slash)
					d := &directive{
						name:   m[1],
						reason: strings.TrimSpace(m[2]),
						pos:    c.Slash,
						line:   pos.Line,
						file:   pos.Filename,
						own:    standsAlone(src[pos.Filename], pos.Offset, pos.Column),
					}
					ann.all = append(ann.all, d)
					lines := ann.byLine[d.file]
					if lines == nil {
						lines = make(map[int][]*directive)
						ann.byLine[d.file] = lines
					}
					lines[d.line] = append(lines[d.line], d)
					if d.own {
						lines[d.line+1] = append(lines[d.line+1], d)
					}
				}
			}
		}
	}
	return ann
}

// standsAlone reports whether the comment starting at offset (column
// col, 1-based) has only whitespace before it on its line.
func standsAlone(src []byte, offset, col int) bool {
	start := offset - (col - 1)
	if start < 0 || offset > len(src) {
		return false
	}
	for _, b := range src[start:offset] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// Annotated reports whether pos (or its enclosing function's doc
// comment) carries the named //camo: directive, returning its reason.
// Line-level lookup covers the directive's own line and, for
// standalone comments, the following line.
func (m *Module) Annotated(pos token.Pos, name string) (string, bool) {
	position := m.Fset.Position(pos)
	for _, d := range m.ann.byLine[position.Filename][position.Line] {
		if d.name == name {
			return d.reason, true
		}
	}
	return "", false
}

// FuncAnnotated reports whether fn's doc comment carries the named
// directive.
func (m *Module) FuncAnnotated(fn *ast.FuncDecl, name string) (string, bool) {
	if fn.Doc == nil {
		return "", false
	}
	for _, c := range fn.Doc.List {
		mm := directiveRE.FindStringSubmatch(c.Text)
		if mm != nil && mm[1] == name {
			return strings.TrimSpace(mm[2]), true
		}
	}
	return "", false
}

// annotationErrors turns malformed directives into findings: unknown
// directive names and exception directives without a reason string.
func (m *Module) annotationErrors() []Diagnostic {
	var out []Diagnostic
	for _, d := range m.ann.all {
		switch {
		case !knownDirectives[d.name]:
			out = append(out, diag(m.Fset, "camoannotation", d.pos,
				"unknown directive //camo:%s (known: alloc, atomicok, hotpath, nondet)", d.name))
		case reasonRequired[d.name] && d.reason == "":
			out = append(out, diag(m.Fset, "camoannotation", d.pos,
				"//camo:%s requires a reason string", d.name))
		case d.name == "hotpath" && d.reason != "":
			// A marker, not an exception; a trailing string is probably
			// a misplaced reason for a different directive.
			out = append(out, diag(m.Fset, "camoannotation", d.pos,
				"//camo:hotpath takes no argument (got %q)", d.reason))
		}
	}
	return out
}

// EnclosingFunc returns the FuncDecl in file that encloses pos, if any.
func EnclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	return nil
}
