package vet_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"camouflage/internal/vet"
	"camouflage/internal/vet/vettest"
)

func TestAtomicField(t *testing.T) {
	t.Parallel()
	vettest.Run(t, "atomicfield", vet.AtomicField)
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	vettest.Run(t, "determinism", vet.Determinism)
}

func TestHotAlloc(t *testing.T) {
	t.Parallel()
	vettest.Run(t, "hotalloc", vet.HotAlloc)
}

func TestObsCounter(t *testing.T) {
	t.Parallel()
	vettest.Run(t, "obscounter", vet.ObsCounter)
}

func TestFaultPoint(t *testing.T) {
	t.Parallel()
	vettest.Run(t, "faultpoint", vet.FaultPoint)
}

// TestAnnotationErrors exercises the directive hygiene findings, which
// cannot live in want-comment testdata: a malformed directive's line
// cannot also carry a separate want comment.
func TestAnnotationErrors(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module camovettest\n\ngo 1.22\n")
	write("a.go", `package a

func missingReason() int {
	//camo:nondet
	return 1
}

func unknownDirective() int {
	//camo:bogus some reason
	return 2
}

//camo:hotpath misplaced reason text
func strayArgument() {}
`)

	m, err := vet.Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := vet.RunAnalyzers(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		if d.Analyzer != "camoannotation" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		got = append(got, d.Message)
	}
	wants := []string{
		"//camo:nondet requires a reason string",
		"unknown directive //camo:bogus",
		"//camo:hotpath takes no argument",
	}
	if len(got) != len(wants) {
		t.Fatalf("got %d findings %v, want %d", len(got), got, len(wants))
	}
	for _, w := range wants {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding contains %q (got %v)", w, got)
		}
	}
}
