package vet

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is the compile-time face of the benchgate 0 allocs/op
// contract (DESIGN.md §5, §14): functions marked //camo:hotpath run
// inside the steady-state execution loop, where a single heap
// allocation per op shows up as a throughput cliff and fails the bench
// job — hours after the commit that introduced it. This analyzer moves
// that tripwire to vet time by flagging the allocating constructs the
// compiler cannot optimize away inside marked functions:
//
//   - make / new / append and slice-, map- or &T-composite literals;
//   - fmt.* calls (interface boxing plus formatting buffers);
//   - string concatenation and string<->[]byte conversions;
//   - interface boxing: passing, assigning, converting or returning a
//     concrete value where an interface is expected;
//   - closures, defer and go statements.
//
// A cold sub-path inside a hot function (error handling, a once-per-run
// fill) carries //camo:alloc <reason> on the offending line.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags heap allocations, interface boxing and fmt calls in " +
		"//camo:hotpath functions",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		f := file
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, hot := pass.Module.FuncAnnotated(fn, "hotpath"); !hot {
				continue
			}
			checkHotFunc(pass, f, fn)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, f *ast.File, fn *ast.FuncDecl) {
	m := pass.Module
	report := func(pos token.Pos, format string, args ...any) {
		if _, ok := m.Annotated(pos, "alloc"); ok {
			return
		}
		args = append(args, fn.Name.Name)
		pass.Reportf(pos, format+" in //camo:hotpath func %s (move it off the hot path or annotate //camo:alloc <reason>)", args...)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, report, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			switch m.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(m.Info.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal may capture and allocate")
			return false // don't descend: one finding per closure
		case *ast.DeferStmt:
			report(n.Pos(), "defer allocates a frame")
		case *ast.GoStmt:
			report(n.Pos(), "goroutine spawn allocates")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					checkBoxing(pass, report, m.Info.TypeOf(n.Lhs[i]), rhs)
				}
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, report, fn, n)
		}
		return true
	})
}

// checkHotCall flags the allocating builtins, fmt calls, allocating
// conversions and call-argument interface boxing.
func checkHotCall(pass *Pass, report func(token.Pos, string, ...any), call *ast.CallExpr) {
	info := pass.Module.Info

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			report(call.Pos(), "make allocates")
			return
		case "new":
			report(call.Pos(), "new allocates")
			return
		case "append":
			report(call.Pos(), "append may grow and allocate")
			return
		}
	}

	// Conversions: T(x) with an allocating representation change or an
	// interface target.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		switch {
		case isString(to) && !isString(from) && from != nil && !isNumeric(from):
			report(call.Pos(), "conversion to string allocates")
		case isByteSlice(to) && isString(from):
			report(call.Pos(), "string-to-[]byte conversion allocates")
		case types.IsInterface(to) && from != nil && !types.IsInterface(from):
			report(call.Pos(), "conversion to interface boxes the value")
		}
		return
	}

	// fmt.* (and any function of package fmt): boxing plus buffers.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s allocates", fn.Name())
			return
		}
	}

	// Interface boxing at call arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, report, param, arg)
	}
}

// checkBoxing reports when a concrete value meets an interface-typed
// slot.
func checkBoxing(pass *Pass, report func(token.Pos, string, ...any), to types.Type, expr ast.Expr) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	from := pass.Module.Info.TypeOf(expr)
	if from == nil || types.IsInterface(from) {
		return
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, isPtr := from.Underlying().(*types.Pointer); isPtr {
		// Boxing a pointer stores the pointer word directly: no
		// allocation beyond the (possibly shared) iface header.
		return
	}
	report(expr.Pos(), "interface boxing of concrete value")
}

func checkReturnBoxing(pass *Pass, report func(token.Pos, string, ...any), fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	if fn.Type.Results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, fld := range fn.Type.Results.List {
		t := pass.Module.Info.TypeOf(fld.Type)
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // multi-value call spread; skip
	}
	for i, r := range ret.Results {
		checkBoxing(pass, report, resultTypes[i], r)
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}
