// Module loading: `go list -deps -json` resolves the package graph
// (the go command owns build tags, module resolution and file
// selection), then go/parser + go/types type-check every package —
// dependencies included — from source into one shared FileSet and
// types.Info. One universe means a struct field's *types.Var is the
// same object in every package that touches it, which is what lets the
// atomicfield analyzer match an atomic publication in internal/cpu
// against a plain read in internal/snapshot without a facts
// serialization layer.
//
// Loading is offline and hermetic: no network, no export data, no
// build cache dependency beyond what `go list` itself consults.
// CGO_ENABLED=0 selects the pure-Go file sets of the few stdlib
// packages with native variants.
package vet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the subset of `go list -json` camovet consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path, Dir string }
}

// Load type-checks the packages matched by patterns (resolved in dir)
// plus their whole dependency closure, returning the module view the
// analyzers run over. Patterns default to ./... .
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return typeCheck(dir, pkgs)
}

// goList runs `go list -deps -json` and decodes the package stream,
// which arrives in dependency order (imports before importers).
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-json=Dir,ImportPath,Name,Standard,GoFiles,Imports,ImportMap,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("vet: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("vet: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks pkgs in order into one Module.
func typeCheck(dir string, pkgs []*listPackage) (*Module, error) {
	fset := token.NewFileSet()
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	typed := map[string]*types.Package{"unsafe": types.Unsafe}
	src := make(map[string][]byte)

	m := &Module{Fset: fset, Info: info}
	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" || len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("vet: %v", err)
			}
			f, err := parser.ParseFile(fset, path, data, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("vet: parsing %s: %v", path, err)
			}
			files = append(files, f)
			src[path] = data
		}
		conf := types.Config{
			Importer: &depImporter{imports: lp.ImportMap, typed: typed},
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("vet: type-checking %s: %v", lp.ImportPath, err)
		}
		typed[lp.ImportPath] = tpkg
		if !lp.Standard {
			if lp.Module != nil && lp.Module.Dir != "" {
				m.Dir = lp.Module.Dir
			}
			m.Packages = append(m.Packages, &Package{
				Path:  lp.ImportPath,
				Files: files,
				Types: tpkg,
			})
		}
	}
	if m.Dir == "" {
		m.Dir = dir
	}
	m.ann = collectAnnotations(fset, m.Packages, src)
	return m, nil
}

// depImporter resolves imports against the already-type-checked
// universe, honoring the package's go list ImportMap (vendoring and
// test-variant renames).
type depImporter struct {
	imports map[string]string
	typed   map[string]*types.Package
}

func (i *depImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := i.imports[path]; ok {
		path = mapped
	}
	if p, ok := i.typed[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("vet: import %q not in dependency-ordered universe", path)
}
