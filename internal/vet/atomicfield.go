package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces the engine's atomic-publication contract
// (DESIGN.md §14): the generation cells and caches that one goroutine
// publishes and others validate — Cluster page/exec generations, the
// mem.Phys generation, the fault registry pointer, the Bus last-hit
// cache — are only sound if every access goes through sync/atomic.
//
// Two rules:
//
//  1. A struct field passed by address to a sync/atomic function
//     (atomic.LoadUint64(&s.gen), atomic.AddUint64, …) anywhere in the
//     module is "atomic-published": every other read, write or aliasing
//     of that field must also be atomic, or carry a //camo:atomicok
//     reason (e.g. a constructor that runs before the value is
//     published).
//  2. A field of a typed atomic (atomic.Uint64, atomic.Pointer[T], …)
//     must never be copied by value — a copy tears the cell out of the
//     coherence protocol — and functions must not take or return typed
//     atomics by value.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "flags plain accesses to atomic-published struct fields and " +
		"by-value copies of typed sync/atomic cells",
	RunModule: runAtomicField,
}

func runAtomicField(pass *ModulePass) error {
	m := pass.Module

	// Phase 1: find every field published via function-style
	// sync/atomic calls, remembering the sanctioned selector nodes so
	// phase 2 does not flag the atomic accesses themselves.
	published := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicFuncCall(m.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					sel, ok := unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if fld := fieldOf(m.Info, sel); fld != nil {
						published[fld] = true
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}

	// Phase 2: flag plain accesses to published fields and value
	// copies of typed atomic fields.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			file := f
			walkParents(file, func(n ast.Node, stack []ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if fld := fieldOf(m.Info, n); fld != nil {
						if published[fld] && !sanctioned[n] {
							reportPlainAccess(pass, file, n, fld)
						}
						if isTypedAtomic(m.Info.TypeOf(n)) && copiesValue(stack) {
							if !excused(m, file, n.Pos(), "atomicok") {
								pass.Reportf(n.Pos(),
									"field %s.%s is a typed sync/atomic cell and must not be copied by value",
									fieldOwner(fld), fld.Name())
							}
						}
					}
				case *ast.FuncDecl:
					checkAtomicSignature(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

func reportPlainAccess(pass *ModulePass, file *ast.File, sel *ast.SelectorExpr, fld *types.Var) {
	if excused(pass.Module, file, sel.Pos(), "atomicok") {
		return
	}
	pass.Reportf(sel.Pos(),
		"field %s.%s is accessed via sync/atomic elsewhere; plain access here races with the atomic publication (use sync/atomic, or annotate //camo:atomicok <reason>)",
		fieldOwner(fld), fld.Name())
}

// excused reports whether pos carries the named line-level directive or
// sits in a function whose doc comment carries it.
func excused(m *Module, file *ast.File, pos token.Pos, directive string) bool {
	if _, ok := m.Annotated(pos, directive); ok {
		return true
	}
	if fn := EnclosingFunc(file, pos); fn != nil {
		if _, ok := m.FuncAnnotated(fn, directive); ok {
			return true
		}
	}
	return false
}

// isAtomicFuncCall reports whether call invokes a function-style
// sync/atomic operation (LoadUint64, StoreInt32, AddUint64, SwapPointer,
// CompareAndSwapUint64, …).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// fieldOwner names the struct type declaring fld, best-effort (the
// receiver side of the diagnostic message).
func fieldOwner(fld *types.Var) string {
	if fld.Pkg() != nil {
		return fld.Pkg().Name()
	}
	return "?"
}

// atomicValueTypes are the typed cells of sync/atomic; copying one by
// value detaches it from every concurrent reader.
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isTypedAtomic reports whether t is (an alias of) a typed sync/atomic
// cell.
func isTypedAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicValueTypes[obj.Name()]
}

// copiesValue reports whether the innermost relevant ancestor consumes
// the selector as a value (a copy) rather than taking its address,
// calling a method on it, or selecting through it.
func copiesValue(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			return p.Op != token.AND
		case *ast.SelectorExpr:
			// s.gen.Load() or deeper field selection: no copy.
			return false
		case *ast.StarExpr:
			return false
		default:
			// Assignment RHS, call argument, composite-literal element,
			// return value, binary operand: all copy.
			return true
		}
	}
	return true
}

// checkAtomicSignature flags parameters and results that pass typed
// atomics by value.
func checkAtomicSignature(pass *ModulePass, fn *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if t := pass.Module.Info.TypeOf(f.Type); isTypedAtomic(t) {
				pass.Reportf(f.Type.Pos(),
					"func %s passes a typed sync/atomic cell by value as a %s (use a pointer)",
					fn.Name.Name, what)
			}
		}
	}
	check(fn.Type.Params, "parameter")
	check(fn.Type.Results, "result")
}
