// Package vettest is the analysistest analogue for the camovet suite:
// it loads a self-contained module under testdata, runs analyzers over
// it, and diffs the diagnostics against `// want "regexp"` comments in
// the sources. Each testdata module carries its own go.mod (the go tool
// never descends into testdata directories, so the nested modules are
// invisible to builds of the host module) and uses only the standard
// library, keeping the tests runnable offline.
package vettest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"camouflage/internal/vet"
)

// wantRE matches a single expectation: `// want "regexp"` with one or
// more space-separated quoted regexps (double- or backquoted).
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the module rooted at testdata/<name> relative to the
// caller's directory, runs the analyzers, and reports any diagnostic
// not matched by a want comment and any want comment not matched by a
// diagnostic.
func Run(t *testing.T, name string, analyzers ...*vet.Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	if _, err := os.Stat(filepath.Join(dir, "go.mod")); err != nil {
		t.Fatalf("testdata module %s has no go.mod: %v", name, err)
	}

	m, err := vet.Load(dir, "./...")
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	diags, err := vet.RunAnalyzers(m, analyzers)
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", name, err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unhit expectation on the diagnostic's file:line
// whose regexp matches the message.
func claim(wants []*expectation, d vet.Diagnostic) bool {
	base := filepath.Base(d.File)
	for _, w := range wants {
		if w.hit || w.file != base || w.line != d.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants walks every .go file under dir for want comments.
func collectWants(dir string) ([]*expectation, error) {
	var wants []*expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		base := filepath.Base(path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			found := false
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if q[2] != "" {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp %q: %v", base, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: base, line: i + 1, re: re})
				found = true
			}
			if !found {
				return fmt.Errorf("%s:%d: want comment with no quoted regexp", base, i+1)
			}
		}
		return nil
	})
	return wants, err
}
