package vet

import "go/ast"

// walkParents traverses every node of f, invoking fn with the node and
// its ancestor stack (stack[0] is the file, stack[len-1] is the node's
// parent). Returning false prunes the subtree.
func walkParents(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// unparen strips ParenExprs.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
