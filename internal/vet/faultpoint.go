package vet

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"camouflage/internal/fault"
)

// FaultPoint validates the deterministic fault-injection surface
// (DESIGN.md §13, §14). A chaos failure must reproduce from its spec
// string alone, which only holds if every injection point is a known,
// spellable, documented name:
//
//   - every fault.Point constant has a unique string value;
//   - every value round-trips through the real spec grammar
//     (fault.ParseSpec), so `-faults <point>=1` can always arm it;
//   - every check site (fault.Fire / ErrAt / SleepAt / PanicAt /
//     Corrupt) names a declared Point constant — an ad-hoc string
//     literal at a check site is an unregistered point no spec can
//     target reliably;
//   - every declared Point is threaded through at least one check site
//     (a dead point is a documented capability that does not exist);
//   - every Point value is listed in the DESIGN.md §13 injection-point
//     table, so the operator-facing catalog cannot drift from the code.
var FaultPoint = &Analyzer{
	Name: "faultpoint",
	Doc: "checks fault.Point uniqueness, spec-grammar validity, " +
		"registered use at check sites and DESIGN.md §13 listing",
	RunModule: runFaultPoint,
}

// faultCheckFuncs are the injection-point entry points whose first
// argument must be a declared Point constant.
var faultCheckFuncs = map[string]bool{
	"Fire": true, "ErrAt": true, "SleepAt": true, "PanicAt": true, "Corrupt": true,
}

func runFaultPoint(pass *ModulePass) error {
	m := pass.Module
	faultPkg := findPackage(m, "fault", "Point")
	if faultPkg == nil {
		return nil // module has no fault registry; nothing to check
	}
	scope := faultPkg.Types.Scope()
	pointType, ok := scope.Lookup("Point").(*types.TypeName)
	if !ok {
		return nil
	}

	// Collect declared Point constants.
	var points []faultPointEntry
	pointObjs := make(map[types.Object]int)
	byValue := make(map[string]*types.Const)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Type() != pointType.Type() {
			continue
		}
		v := constant.StringVal(c.Val())
		pointObjs[c] = len(points)
		points = append(points, faultPointEntry{obj: c, value: v})
		if prev, dup := byValue[v]; dup {
			pass.Reportf(c.Pos(), "fault point %s duplicates the name %q of %s", c.Name(), v, prev.Name())
		} else {
			byValue[v] = c
		}
	}

	// Grammar: every name must arm through the real spec parser.
	for _, p := range points {
		if _, err := fault.ParseSpec(p.value + "=1"); err != nil || strings.ContainsAny(p.value, "=,: \t") || p.value == "" || p.value == "seed" {
			pass.Reportf(p.obj.Pos(),
				"fault point %s name %q is not addressable by the -faults spec grammar", p.obj.Name(), p.value)
		}
	}

	// Check sites: every Fire/ErrAt/SleepAt/PanicAt/Corrupt call in the
	// module (outside the fault package itself) must name a declared
	// constant; and every constant must be threaded somewhere.
	threaded := make(map[types.Object]bool)
	for _, pkg := range m.Packages {
		inFaultPkg := pkg == faultPkg
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := m.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() != faultPkg.Types || !faultCheckFuncs[fn.Name()] {
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				arg := unparen(call.Args[0])
				if obj := usedObject(m.Info, arg); obj != nil {
					if _, isPoint := pointObjs[obj]; isPoint {
						threaded[obj] = true
						return true
					}
				}
				if inFaultPkg {
					return true // the registry's own plumbing takes any Point
				}
				pass.Reportf(arg.Pos(),
					"fault.%s argument must be a declared fault.Point constant, not %s (register the point so spec strings can arm it)",
					fn.Name(), describeExpr(arg))
				return true
			})
		}
	}
	for _, p := range points {
		if !threaded[p.obj] {
			pass.Reportf(p.obj.Pos(),
				"fault point %s (%q) is declared but never threaded through a check site", p.obj.Name(), p.value)
		}
	}

	// DESIGN.md §13 listing.
	if len(points) > 0 {
		checkDesignListing(pass, points)
	}
	return nil
}

// faultPointEntry pairs a declared Point constant with its string
// value.
type faultPointEntry struct {
	obj   *types.Const
	value string
}

// checkDesignListing requires every point name to appear in the §13
// section of the module's DESIGN.md.
func checkDesignListing(pass *ModulePass, points []faultPointEntry) {
	m := pass.Module
	data, err := os.ReadFile(filepath.Join(m.Dir, "DESIGN.md"))
	if err != nil {
		pass.Reportf(points[0].obj.Pos(), "cannot read DESIGN.md to verify the §13 fault-point table: %v", err)
		return
	}
	section := sectionText(string(data), "§13")
	if section == "" {
		pass.Reportf(points[0].obj.Pos(), "DESIGN.md has no §13 section listing the fault points")
		return
	}
	for _, p := range points {
		if !strings.Contains(section, p.value) {
			pass.Reportf(p.obj.Pos(),
				"fault point %s (%q) is missing from the DESIGN.md §13 injection-point table", p.obj.Name(), p.value)
		}
	}
}

// sectionText extracts the body of the `## §N …` section.
func sectionText(doc, marker string) string {
	lines := strings.Split(doc, "\n")
	var b strings.Builder
	in := false
	for _, line := range lines {
		if strings.HasPrefix(line, "## ") {
			in = strings.Contains(line, marker)
			continue
		}
		if in {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// describeExpr names the offending argument shape for the diagnostic.
func describeExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BasicLit:
		return "string literal " + e.Value
	case *ast.CallExpr:
		return "a conversion/call expression"
	case *ast.Ident:
		return "variable " + e.Name
	default:
		return "a non-constant expression"
	}
}
