// Package engine references a subset of the obs counters so the
// obscounter use-scan has both hits and misses to judge.
package engine

import "camovettest/obs"

type local struct {
	v [obs.NumCounters]uint64
}

func (l *local) bump() {
	l.v[obs.CRetired]++
	l.v[obs.CNoHelp]++
	l.v[obs.CBadName]++
	l.v[obs.CNotTotal]++
	l.v[obs.CBadLabels]++
	l.v[obs.CDup1]++
	l.v[obs.CDup2]++
}

// bumpKey indexes a per-key counter block arithmetically; the base
// constant's family covers every constant sharing it (CBaseIB too).
func (l *local) bumpKey(k int) {
	l.v[obs.CBaseIA+obs.CounterID(k)]++
}
