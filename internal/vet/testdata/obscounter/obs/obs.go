// Package obs mirrors the host engine's counter registry shape with
// seeded exposition violations for the obscounter analyzer tests.
package obs

type CounterID int

const (
	CRetired   CounterID = iota // fully registered and used: clean
	CNoMeta                     // want `counter CNoMeta has no exposition metadata`
	CNoHelp                     // want `counter CNoHelp has no help text`
	CBadName                    // want `fails the metriclint naming rules`
	CNotTotal                   // want `fails the metriclint naming rules`
	CBadLabels                  // want `label value for key is not quoted`
	CDup1                       // first owner of its sample: clean
	CDup2                       // want `duplicates the exposition sample of CDup1`
	CUnused                     // want `never incremented or referenced`
	CBaseIA                     // bumped via index arithmetic: clean
	CBaseIB                     // covered by the same family arithmetic: clean
	NumCounters
)

type counterMeta struct{ family, help, labels string }

var counterMetas = [NumCounters]counterMeta{
	CRetired:   {"camo_retired_total", "instructions retired", ""},
	CNoHelp:    {"camo_nohelp_total", "", ""},
	CBadName:   {"1bad-name_total", "illegal characters", ""},
	CNotTotal:  {"camo_thing", "counter family must end in _total", ""},
	CBadLabels: {"camo_badlabels_total", "labels missing quotes", `key=IA`},
	CDup1:      {"camo_dup_total", "first owner", `result="hit"`},
	CDup2:      {"camo_dup_total", "same family and labels", `result="hit"`},
	CUnused:    {"camo_unused_total", "registered but dead", ""},
	CBaseIA:    {"camo_pac_total", "per-key block base", `key="IA"`},
	CBaseIB:    {"camo_pac_total", "per-key block", `key="IB"`},
}
