module camovettest

go 1.22
