// Package hot seeds allocation violations inside //camo:hotpath
// functions for the hotalloc analyzer tests.
package hot

import "fmt"

type ring struct {
	buf  [16]uint64
	head int
}

// push is on the steady-state path.
//
//camo:hotpath
func (r *ring) push(v uint64) {
	r.buf[r.head&15] = v
	r.head++
}

//camo:hotpath
func badMake(n int) []byte {
	return make([]byte, n) // want `make allocates`
}

//camo:hotpath
func badAppend(s []int, v int) []int {
	return append(s, v) // want `append may grow and allocate`
}

//camo:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//camo:hotpath
func badAddrLit() *ring {
	return &ring{} // want `&composite literal allocates`
}

//camo:hotpath
func badFmt(v uint64) {
	fmt.Println(v) // want `fmt\.Println allocates`
}

//camo:hotpath
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//camo:hotpath
func badBytesConv(s string) []byte {
	return []byte(s) // want `string-to-\[\]byte conversion allocates`
}

//camo:hotpath
func badBoxing(v uint64) any {
	return v // want `interface boxing of concrete value`
}

//camo:hotpath
func badDefer(f func()) {
	defer f() // want `defer allocates a frame`
}

//camo:hotpath
func badClosure() func() int {
	n := 0
	return func() int { n++; return n } // want `function literal may capture and allocate`
}

//camo:hotpath
func okExcused(n int) []byte {
	return make([]byte, n) //camo:alloc once-per-run warmup fill for this test
}

//camo:hotpath
func okPointerBoxing(r *ring) any {
	return r // boxing a pointer stores the word directly; no finding
}

// notHot is unmarked: the same constructs draw no findings.
func notHot(n int) []byte {
	return make([]byte, n)
}
