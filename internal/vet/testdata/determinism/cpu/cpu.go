// Package cpu seeds determinism violations; the package name places it
// in the determinism-critical set.
package cpu

import (
	"math/rand"
	"sort"
	"time"
)

func badClock() int64 {
	return time.Now().UnixNano() // want `wall-clock read time\.Now in determinism-critical package cpu`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time\.Since`
}

func okClockAnnotated() time.Time {
	return time.Now() //camo:nondet host-side latency sample for this test
}

//camo:nondet whole function is host-side diagnostics
func okClockFuncDoc() time.Time {
	return time.Now()
}

func badRand() int {
	return rand.Intn(6) // want `math/rand\.Intn in determinism-critical package cpu`
}

func badSpawn(f func()) {
	go f() // want `goroutine spawn in determinism-critical package cpu`
}

func badMapOrder(m map[string]int, out *string) {
	for k := range m { // want `map iteration with an order-sensitive body`
		*out += k // string += is concatenation: iteration order leaks into the value
	}
}

func okMapCollect(m map[string]int, out *[]int) {
	for _, v := range m {
		*out = append(*out, v) // collection; the consumer sorts
	}
}

func okMapSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func okMapCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okMapGuardedCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

func okMapExists(m map[string]int) bool {
	for _, v := range m {
		if v < 0 {
			return true
		}
	}
	return false
}

func okMapRebuild(m map[string]int) map[string]int {
	cp := make(map[string]int, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

func okMapDeepCopy(m map[string]*int) map[string]*int {
	cp := make(map[string]*int, len(m))
	for k, v := range m {
		c := *v
		cp[k] = &c
	}
	return cp
}

func okMapFieldStore(m map[string]*struct{ done bool }) {
	for _, e := range m {
		e.done = true
	}
}

func badMapCall(m map[string]func()) {
	for _, f := range m { // want `map iteration with an order-sensitive body`
		f()
	}
}
