// Package store threads fault points through check sites — some
// legally, some not.
package store

import "camovettest/fault"

func readChunk() error {
	if fault.Fire(fault.StoreRead) {
		return fault.ErrAt(fault.StoreRead)
	}
	return nil
}

func writeChunk() error {
	return fault.ErrAt(fault.StoreWrite)
}

func oddball(name string) error {
	if err := fault.ErrAt("ad.hoc"); err != nil { // want `must be a declared fault\.Point constant, not string literal`
		return err
	}
	return fault.ErrAt(fault.Point(name)) // want `must be a declared fault\.Point constant, not a conversion/call expression`
}

func spaced() bool {
	return fault.Fire(fault.BadSpace)
}

func undocumented() bool {
	return fault.Fire(fault.Undocumented)
}
