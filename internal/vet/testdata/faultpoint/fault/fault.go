// Package fault mirrors the host engine's fault registry shape with
// seeded violations for the faultpoint analyzer tests.
package fault

type Point string

const (
	StoreRead Point = "store.read"
	// StoreWrite is registered first (scope iteration is sorted by
	// name), so WDup below is the one reported as the duplicate.
	StoreWrite   Point = "store.write"
	WDup         Point = "store.write" // want `duplicates the name "store\.write"` `never threaded through a check site`
	BadSpace     Point = "store read"  // want `not addressable by the -faults spec grammar`
	NeverUsed    Point = "store.never" // want `never threaded through a check site`
	Undocumented Point = "store.undoc" // want `missing from the DESIGN\.md §13 injection-point table`
)

// Fire and ErrAt are the check-site entry points the analyzer matches
// by name and package.
func Fire(p Point) bool { return p != "" }

func ErrAt(p Point) error {
	_ = p
	return nil
}
