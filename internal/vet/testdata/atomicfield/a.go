// Package a seeds violations of the atomic-publication contract for
// the atomicfield analyzer tests.
package a

import "sync/atomic"

type counters struct {
	gen   uint64        // published via function-style atomics below
	hits  atomic.Uint64 // typed cell: must never be copied by value
	plain int           // never atomic; plain access is fine
}

func bump(c *counters) {
	atomic.AddUint64(&c.gen, 1)
}

func read(c *counters) uint64 {
	return atomic.LoadUint64(&c.gen)
}

func badPlainRead(c *counters) uint64 {
	return c.gen // want `field a\.gen is accessed via sync/atomic elsewhere`
}

func badPlainWrite(c *counters) {
	c.gen = 0 // want `field a\.gen is accessed via sync/atomic elsewhere`
}

func okInit() *counters {
	c := &counters{}
	c.gen = 1 //camo:atomicok constructor runs before the value is published
	return c
}

func okPlainField(c *counters) int {
	return c.plain // never published atomically: no finding
}

func badCopy(c *counters) {
	cp := c.hits // want `typed sync/atomic cell and must not be copied by value`
	_ = cp
}

func okThroughCell(c *counters) uint64 {
	return c.hits.Load() // method call through the cell: no copy
}

func badParam(h atomic.Uint64) { // want `passes a typed sync/atomic cell by value as a parameter`
	_ = h
}

func okPointerParam(h *atomic.Uint64) {
	h.Add(1)
}
