package analysis

import (
	"fmt"
	"sort"

	"camouflage/internal/boot"
	"camouflage/internal/pac"
)

// This file is the Coccinelle-analogue of §5.3: "A semantic search using
// Coccinelle over the complete Linux version 5.2 source code yields 1285
// function pointer members assigned at run-time, residing in 504 different
// compound types. We expect that for 229 out of the 504 types — i.e.,
// those with more than one function pointer — should follow existing
// kernel practices and be converted to use read-only operations
// structures."
//
// The 27-MLoC Linux tree is not available offline, so the search runs over
// a synthetic source model whose distribution is generated to match the
// published statistics exactly (see DESIGN.md); the search, classification
// and rewrite-planning pipeline is the real artefact.

// MemberKind classifies a struct member.
type MemberKind int

// Member kinds.
const (
	KindScalar MemberKind = iota
	KindDataPtr
	KindFuncPtr
)

// Member is one field of a compound type in the source model.
type Member struct {
	Name string
	Kind MemberKind
	// RuntimeAssigned is true when some statement outside a static
	// initialiser writes the member (the Coccinelle match condition).
	RuntimeAssigned bool
}

// Type is one compound type.
type Type struct {
	Name    string
	Members []Member
}

// Corpus is the kernel-source model.
type Corpus struct {
	Types []Type
}

// Linux52Stats are the published §5.3 numbers.
var Linux52Stats = Stats{
	RuntimeFuncPtrMembers: 1285,
	TypesWithRuntimeFP:    504,
	TypesWithMultiple:     229,
}

// Stats summarises a semantic search.
type Stats struct {
	// RuntimeFuncPtrMembers counts function-pointer members assigned at
	// run time.
	RuntimeFuncPtrMembers int
	// TypesWithRuntimeFP counts compound types containing at least one.
	TypesWithRuntimeFP int
	// TypesWithMultiple counts those with more than one (candidates for
	// conversion to read-only operations structures).
	TypesWithMultiple int
}

// GenerateLinux52Corpus synthesises a source model whose semantic-search
// statistics match Linux 5.2's published numbers. The remaining structure
// (noise types without protected members, scalar and data members) is
// drawn deterministically from the seed.
func GenerateLinux52Corpus(seed uint64) *Corpus {
	rng := boot.NewPRNG(seed)
	c := &Corpus{}

	const (
		singleTypes = 504 - 229 // types with exactly one runtime fptr
		multiTypes  = 229
	)
	remaining := 1285 - singleTypes // members to spread over multi types

	// Types with exactly one runtime-assigned function pointer: the "lone
	// function pointers" of §4.4 that stay writable and need PACs.
	for i := 0; i < singleTypes; i++ {
		t := Type{Name: fmt.Sprintf("lone_dev_%03d", i)}
		t.Members = append(t.Members, Member{Name: "callback", Kind: KindFuncPtr, RuntimeAssigned: true})
		addNoiseMembers(&t, rng, 2+int(rng.Uint64()%5))
		c.Types = append(c.Types, t)
	}

	// Types with more than one: §5.3 expects these to be converted to
	// read-only operations structures. Distribute the remaining members
	// so every such type gets ≥ 2.
	base := remaining / multiTypes
	extra := remaining % multiTypes
	for i := 0; i < multiTypes; i++ {
		n := base
		if i < extra {
			n++
		}
		if n < 2 {
			n = 2 // invariant of the 229 bucket
		}
		t := Type{Name: fmt.Sprintf("driver_ops_host_%03d", i)}
		for j := 0; j < n; j++ {
			t.Members = append(t.Members, Member{
				Name: fmt.Sprintf("op%d", j), Kind: KindFuncPtr, RuntimeAssigned: true,
			})
		}
		addNoiseMembers(&t, rng, 1+int(rng.Uint64()%4))
		c.Types = append(c.Types, t)
	}

	// Noise: types with only static-initialised function pointers (the
	// existing read-only ops tables) and plain data types.
	for i := 0; i < 300; i++ {
		t := Type{Name: fmt.Sprintf("const_ops_%03d", i)}
		for j := 0; j < 3+int(rng.Uint64()%6); j++ {
			t.Members = append(t.Members, Member{
				Name: fmt.Sprintf("op%d", j), Kind: KindFuncPtr, RuntimeAssigned: false,
			})
		}
		c.Types = append(c.Types, t)
	}
	for i := 0; i < 500; i++ {
		t := Type{Name: fmt.Sprintf("plain_%03d", i)}
		addNoiseMembers(&t, rng, 3+int(rng.Uint64()%8))
		c.Types = append(c.Types, t)
	}
	return c
}

func addNoiseMembers(t *Type, rng *boot.PRNG, n int) {
	for j := 0; j < n; j++ {
		kind := KindScalar
		if rng.Uint64()%4 == 0 {
			kind = KindDataPtr
		}
		t.Members = append(t.Members, Member{
			Name: fmt.Sprintf("f%d_%d", len(t.Members), j), Kind: kind,
		})
	}
}

// SemanticSearch runs the Coccinelle-match over the corpus: function
// pointer members assigned at run time.
func SemanticSearch(c *Corpus) Stats {
	var s Stats
	for _, t := range c.Types {
		n := 0
		for _, m := range t.Members {
			if m.Kind == KindFuncPtr && m.RuntimeAssigned {
				n++
			}
		}
		if n > 0 {
			s.TypesWithRuntimeFP++
			s.RuntimeFuncPtrMembers += n
		}
		if n > 1 {
			s.TypesWithMultiple++
		}
	}
	return s
}

// Rewrite is one planned source change of the §5.3 semantic patch:
// "substitute the direct reading and writing of protected pointers with
// explicit get and set inline functions".
type Rewrite struct {
	Type   string
	Member string
	// Getter and Setter are the generated accessor names (file_ops() /
	// set_file_ops() in the paper's example).
	Getter, Setter string
	// TypeConst is the 16-bit modifier constant for the member (§4.3).
	TypeConst uint16
	// ConvertToOpsTable recommends migrating the whole type to a
	// read-only operations structure instead of signing each member
	// (types with more than one function pointer, §5.3).
	ConvertToOpsTable bool
}

// PlanRewrites produces the rewrite list for every protected member, in
// deterministic order.
func PlanRewrites(c *Corpus) []Rewrite {
	var out []Rewrite
	for _, t := range c.Types {
		n := 0
		for _, m := range t.Members {
			if m.Kind == KindFuncPtr && m.RuntimeAssigned {
				n++
			}
		}
		if n == 0 {
			continue
		}
		for _, m := range t.Members {
			if m.Kind != KindFuncPtr || !m.RuntimeAssigned {
				continue
			}
			out = append(out, Rewrite{
				Type:              t.Name,
				Member:            m.Name,
				Getter:            t.Name + "_" + m.Name,
				Setter:            "set_" + t.Name + "_" + m.Name,
				TypeConst:         pac.TypeConst(t.Name, m.Name),
				ConvertToOpsTable: n > 1,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Member < out[j].Member
	})
	return out
}
