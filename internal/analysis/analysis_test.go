package analysis

import (
	"testing"

	"camouflage/internal/insn"
)

func words(ins ...insn.Instr) []uint32 {
	out := make([]uint32, len(ins))
	for i, x := range ins {
		out[i] = x.Encode()
	}
	return out
}

func TestScannerFindsKeyRead(t *testing.T) {
	ws := words(
		insn.NOP(),
		insn.MRS(insn.X0, insn.APIBKeyLo_EL1),
		insn.RET(),
	)
	fs := ScanWords(ws)
	if len(fs) != 1 {
		t.Fatalf("findings = %d, want 1", len(fs))
	}
	if fs[0].Kind != FindingKeyRead || fs[0].Offset != 4 {
		t.Fatalf("finding = %+v", fs[0])
	}
}

func TestScannerFindsAllKeyRegisters(t *testing.T) {
	for _, reg := range insn.PAuthKeyRegs {
		fs := ScanWords(words(insn.MRS(insn.X3, reg)))
		if len(fs) != 1 || fs[0].Kind != FindingKeyRead {
			t.Errorf("MRS %v not flagged", reg)
		}
		fs = ScanWords(words(insn.MSR(reg, insn.X3)))
		if len(fs) != 1 || fs[0].Kind != FindingKeyWrite {
			t.Errorf("MSR %v not flagged", reg)
		}
	}
}

func TestScannerFindsSCTLRWrite(t *testing.T) {
	fs := ScanWords(words(insn.MSR(insn.SCTLR_EL1, insn.X0)))
	if len(fs) != 1 || fs[0].Kind != FindingSCTLRWrite {
		t.Fatalf("findings = %+v", fs)
	}
	// Reading SCTLR is fine (feature probing).
	if fs := ScanWords(words(insn.MRS(insn.X0, insn.SCTLR_EL1))); len(fs) != 0 {
		t.Fatalf("MRS SCTLR flagged: %+v", fs)
	}
}

func TestScannerIgnoresBenignCode(t *testing.T) {
	ws := words(
		insn.PACIA(insn.LR, insn.SP),
		insn.AUTIA(insn.LR, insn.SP),
		insn.MSR(insn.CONTEXTIDR_EL1, insn.X0),
		insn.MRS(insn.X0, insn.CNTVCT_EL0),
		insn.LDR(insn.X0, insn.X1, 8),
		insn.RET(),
	)
	if fs := ScanWords(ws); len(fs) != 0 {
		t.Fatalf("benign code flagged: %+v", fs)
	}
}

func TestScanBytesHandlesFragment(t *testing.T) {
	b := []byte{0x1F, 0x20, 0x03, 0xD5, 0xAA} // NOP + trailing byte
	if fs := ScanBytes(b); len(fs) != 0 {
		t.Fatalf("fragment scan: %+v", fs)
	}
}

func TestVerifyModuleText(t *testing.T) {
	good := words(insn.NOP(), insn.RET())
	b := make([]byte, 0)
	for _, w := range good {
		b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	if err := VerifyModuleText(b); err != nil {
		t.Fatalf("benign module rejected: %v", err)
	}
	bad := insn.MRS(insn.X0, insn.APGAKeyHi_EL1).Encode()
	b = append(b, byte(bad), byte(bad>>8), byte(bad>>16), byte(bad>>24))
	if err := VerifyModuleText(b); err == nil {
		t.Fatal("key-reading module accepted")
	}
}

func TestAllowedKeyWriters(t *testing.T) {
	seq := words(
		insn.NOP(),
		insn.MSR(insn.APIBKeyLo_EL1, insn.X0), // offset 4: inside setter
		insn.RET(),
	)
	b := make([]byte, 0)
	for _, w := range seq {
		b = append(b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	if err := AllowedKeyWriters(b, 4, 8); err != nil {
		t.Fatalf("setter-resident key write rejected: %v", err)
	}
	if err := AllowedKeyWriters(b, 8, 12); err == nil {
		t.Fatal("stray key write accepted")
	}
}

// TestCoccinelleStats reproduces §5.3: 1285 run-time-assigned function
// pointer members in 504 types, 229 of which have more than one.
func TestCoccinelleStats(t *testing.T) {
	c := GenerateLinux52Corpus(1)
	s := SemanticSearch(c)
	if s != Linux52Stats {
		t.Fatalf("stats = %+v, want %+v", s, Linux52Stats)
	}
}

func TestCoccinelleStatsSeedIndependent(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		if s := SemanticSearch(GenerateLinux52Corpus(seed)); s != Linux52Stats {
			t.Fatalf("seed %d: stats = %+v", seed, s)
		}
	}
}

func TestPlanRewrites(t *testing.T) {
	c := GenerateLinux52Corpus(2)
	rw := PlanRewrites(c)
	if len(rw) != Linux52Stats.RuntimeFuncPtrMembers {
		t.Fatalf("rewrites = %d, want %d", len(rw), Linux52Stats.RuntimeFuncPtrMembers)
	}
	convert := 0
	types := map[string]bool{}
	for _, r := range rw {
		if r.Getter == "" || r.Setter == "" {
			t.Fatalf("missing accessor names: %+v", r)
		}
		if r.ConvertToOpsTable && !types[r.Type] {
			types[r.Type] = true
			convert++
		}
	}
	if convert != Linux52Stats.TypesWithMultiple {
		t.Fatalf("types recommended for ops-table conversion = %d, want %d",
			convert, Linux52Stats.TypesWithMultiple)
	}
	// Deterministic ordering.
	for i := 1; i < len(rw); i++ {
		if rw[i-1].Type > rw[i].Type {
			t.Fatal("rewrites not sorted")
		}
	}
}

func TestSemanticSearchIgnoresStaticOps(t *testing.T) {
	c := &Corpus{Types: []Type{
		{Name: "ro_ops", Members: []Member{
			{Name: "read", Kind: KindFuncPtr, RuntimeAssigned: false},
			{Name: "write", Kind: KindFuncPtr, RuntimeAssigned: false},
		}},
		{Name: "file", Members: []Member{
			{Name: "f_ops", Kind: KindDataPtr, RuntimeAssigned: true},
		}},
	}}
	s := SemanticSearch(c)
	if s.RuntimeFuncPtrMembers != 0 || s.TypesWithRuntimeFP != 0 {
		t.Fatalf("static/const members matched: %+v", s)
	}
}
