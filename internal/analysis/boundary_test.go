package analysis

import (
	"encoding/binary"
	"testing"

	"camouflage/internal/insn"
)

// bytesOf renders instruction words little-endian, the layout ScanBytes
// consumes.
func bytesOf(ws []uint32) []byte {
	b := make([]byte, 4*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint32(b[4*i:], w)
	}
	return b
}

// TestScannerBoundaryWords places a key read in the very first and the
// very last word of an image: off-by-one loops lose exactly these.
func TestScannerBoundaryWords(t *testing.T) {
	steal := insn.MRS(insn.X0, insn.APIAKeyLo_EL1)

	first := words(steal, insn.NOP(), insn.RET())
	fs := ScanWords(first)
	if len(fs) != 1 || fs[0].Offset != 0 {
		t.Fatalf("first-word finding = %+v, want one at +0x0", fs)
	}

	last := words(insn.NOP(), insn.RET(), steal)
	fs = ScanWords(last)
	wantOff := uint64(2 * insn.Size)
	if len(fs) != 1 || fs[0].Offset != wantOff {
		t.Fatalf("last-word finding = %+v, want one at +%#x", fs, wantOff)
	}

	alone := words(steal)
	if fs = ScanWords(alone); len(fs) != 1 || fs[0].Offset != 0 {
		t.Fatalf("single-word image finding = %+v", fs)
	}
}

// TestScannerEmptyImages: nothing to scan is a clean verdict, not a
// crash and not a rejection.
func TestScannerEmptyImages(t *testing.T) {
	if fs := ScanWords(nil); len(fs) != 0 {
		t.Fatalf("ScanWords(nil) = %+v", fs)
	}
	if fs := ScanWords([]uint32{}); len(fs) != 0 {
		t.Fatalf("ScanWords(empty) = %+v", fs)
	}
	if fs := ScanBytes(nil); len(fs) != 0 {
		t.Fatalf("ScanBytes(nil) = %+v", fs)
	}
	if err := VerifyModuleText(nil); err != nil {
		t.Fatalf("VerifyModuleText(nil) = %v", err)
	}
	if err := AllowedKeyWriters(nil, 0, 0); err != nil {
		t.Fatalf("AllowedKeyWriters(empty) = %v", err)
	}
	// Sub-word fragments can never be fetched; they scan clean.
	for n := 1; n < 4; n++ {
		if fs := ScanBytes(make([]byte, n)); len(fs) != 0 {
			t.Fatalf("%d-byte fragment = %+v", n, fs)
		}
	}
}

// TestScannerUnknownWords feeds undecodable and data words: the scanner
// must pass over them without findings or panics (a module's constant
// pool is not code it can reject).
func TestScannerUnknownWords(t *testing.T) {
	ws := []uint32{
		0x0000_0000,             // all zeroes
		0xFFFF_FFFF,             // all ones
		0xDEAD_BEEF,             // arbitrary data
		0xD503_0000,             // system-op neighborhood, not MRS/MSR
		insn.NOP().Encode() ^ 1, // single-bit-flipped NOP
	}
	if fs := ScanWords(ws); len(fs) != 0 {
		t.Fatalf("unknown words flagged: %+v", fs)
	}
	// A key read surrounded by garbage is still found at the right
	// offset.
	ws = append(ws, insn.MRS(insn.X9, insn.APDBKeyHi_EL1).Encode())
	fs := ScanWords(ws)
	if len(fs) != 1 || fs[0].Offset != uint64(5*insn.Size) {
		t.Fatalf("finding in garbage = %+v, want one at +%#x", fs, 5*insn.Size)
	}
}

// TestScannerAllKeyRegistersReadAndWrite is the table-driven pass over
// every PAuth key register, in both directions: an MRS from any of the
// ten is a key read, an MSR to any of the ten is a key write.
func TestScannerAllKeyRegistersReadAndWrite(t *testing.T) {
	for _, reg := range insn.PAuthKeyRegs {
		reg := reg
		t.Run(reg.String(), func(t *testing.T) {
			read := ScanWords(words(insn.MRS(insn.X2, reg)))
			if len(read) != 1 || read[0].Kind != FindingKeyRead {
				t.Errorf("MRS x2, %s: findings = %+v, want one FindingKeyRead", reg, read)
			}
			write := ScanWords(words(insn.MSR(reg, insn.X2)))
			if len(write) != 1 || write[0].Kind != FindingKeyWrite {
				t.Errorf("MSR %s, x2: findings = %+v, want one FindingKeyWrite", reg, write)
			}
			if err := VerifyModuleText(bytesOf(words(insn.MRS(insn.X2, reg)))); err == nil {
				t.Errorf("module reading %s passed verification", reg)
			}
			if err := VerifyModuleText(bytesOf(words(insn.MSR(reg, insn.X2)))); err == nil {
				t.Errorf("module writing %s passed verification", reg)
			}
		})
	}
}

// TestAllowedKeyWritersBoundaries pins the half-open [start, end) window
// of the kernel-image key-setter allowance.
func TestAllowedKeyWritersBoundaries(t *testing.T) {
	ws := words(
		insn.NOP(),                            // +0x0
		insn.MSR(insn.APIAKeyLo_EL1, insn.X0), // +0x4
		insn.RET(),                            // +0x8
	)
	text := bytesOf(ws)
	// Window exactly covering the write.
	if err := AllowedKeyWriters(text, 4, 8); err != nil {
		t.Fatalf("write inside [4,8) rejected: %v", err)
	}
	// The end bound is exclusive: a window ending at the write's offset
	// does not contain it.
	if err := AllowedKeyWriters(text, 0, 4); err == nil {
		t.Fatal("write at the exclusive end bound was allowed")
	}
	// The start bound is inclusive.
	if err := AllowedKeyWriters(text, 5, 12); err == nil {
		t.Fatal("write before the start bound was allowed")
	}
	// Key reads are never allowed, even inside the setter window.
	read := bytesOf(words(insn.MRS(insn.X0, insn.APIAKeyLo_EL1)))
	if err := AllowedKeyWriters(read, 0, 4); err == nil {
		t.Fatal("key read inside the setter window was allowed")
	}
}
