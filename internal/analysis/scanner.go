// Package analysis implements the two static-analysis components of the
// paper:
//
//  1. the §4.1 code verifier — "we can use static code analysis to verify
//     that no code exists in the kernel, including the loadable kernel
//     modules, which would read the keys from system registers" and "that
//     no code exists that would corrupt the PAuth flags in the SCTLR_EL1
//     register" — implemented as an instruction-stream scanner over A64
//     words (MRS addresses its register immediately, so key reads "can be
//     trivially found and rejected, e.g. when loading a module", §6.2.2);
//
//  2. the §5.3 Coccinelle-analogue — a semantic search over a kernel-source
//     model that finds function-pointer members assigned at run time,
//     classifies the containing types, and plans the getter/setter rewrite
//     the paper applies semi-automatically.
package analysis

import (
	"encoding/binary"
	"fmt"

	"camouflage/internal/insn"
)

// FindingKind classifies a scanner hit.
type FindingKind int

// Finding kinds.
const (
	// FindingKeyRead is an MRS from a PAuth key register (always fatal).
	FindingKeyRead FindingKind = iota
	// FindingSCTLRWrite is an MSR to SCTLR_EL1 (fatal in modules: a
	// loadable module has no business touching the PAuth enable bits).
	FindingSCTLRWrite
	// FindingKeyWrite is an MSR to a PAuth key register outside the
	// known key-setter (fatal in modules).
	FindingKeyWrite
)

// String names the finding kind.
func (k FindingKind) String() string {
	switch k {
	case FindingKeyRead:
		return "PAuth key read (MRS)"
	case FindingSCTLRWrite:
		return "SCTLR_EL1 write (MSR)"
	case FindingKeyWrite:
		return "PAuth key write (MSR)"
	}
	return "finding?"
}

// Finding is one scanner hit.
type Finding struct {
	Kind   FindingKind
	Offset uint64 // byte offset of the word within the scanned image
	Word   uint32
	Instr  insn.Instr
}

// String renders the finding for a rejection log.
func (f Finding) String() string {
	return fmt.Sprintf("%s at +%#x: %s", f.Kind, f.Offset, f.Instr)
}

// ScanWords scans a sequence of instruction words.
func ScanWords(words []uint32) []Finding {
	var out []Finding
	for i, w := range words {
		ins := insn.Decode(w)
		off := uint64(i) * insn.Size
		switch ins.Op {
		case insn.OpMRS:
			if ins.Sys.IsPAuthKey() {
				out = append(out, Finding{FindingKeyRead, off, w, ins})
			}
		case insn.OpMSR:
			if ins.Sys == insn.SCTLR_EL1 {
				out = append(out, Finding{FindingSCTLRWrite, off, w, ins})
			} else if ins.Sys.IsPAuthKey() {
				out = append(out, Finding{FindingKeyWrite, off, w, ins})
			}
		}
	}
	return out
}

// ScanBytes scans little-endian code bytes (length must be a multiple of
// four; a trailing fragment is ignored, as the hardware could never fetch
// it).
func ScanBytes(b []byte) []Finding {
	words := make([]uint32, 0, len(b)/4)
	for i := 0; i+4 <= len(b); i += 4 {
		words = append(words, binary.LittleEndian.Uint32(b[i:i+4]))
	}
	return ScanWords(words)
}

// VerifyModuleText applies the module-load gate: any finding rejects the
// module (§4.1). The returned error lists every finding.
func VerifyModuleText(text []byte) error {
	findings := ScanBytes(text)
	if len(findings) == 0 {
		return nil
	}
	msg := "analysis: module rejected:"
	for _, f := range findings {
		msg += "\n  " + f.String()
	}
	return fmt.Errorf("%s", msg)
}

// AllowedKeyWriters verifies a full kernel image: key writes may appear
// only inside [setterStart, setterEnd) (the XOM key-setter), and no key
// reads may appear anywhere.
func AllowedKeyWriters(text []byte, setterStart, setterEnd uint64) error {
	for _, f := range ScanBytes(text) {
		switch f.Kind {
		case FindingKeyRead:
			return fmt.Errorf("analysis: kernel image contains %s", f)
		case FindingKeyWrite:
			if f.Offset < setterStart || f.Offset >= setterEnd {
				return fmt.Errorf("analysis: key write outside key-setter: %s", f)
			}
		}
	}
	return nil
}
