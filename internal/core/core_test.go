package core

import (
	"testing"

	"camouflage/internal/boot"
	"camouflage/internal/codegen"
	"camouflage/internal/insn"
	"camouflage/internal/kernel"
	"camouflage/internal/pac"
)

func TestNewBootsAllLevels(t *testing.T) {
	for _, lv := range []ProtectionLevel{LevelNone, LevelBackwardEdge, LevelFull} {
		s, err := New(lv, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", lv, err)
		}
		if s.Stats().BootCycles == 0 {
			t.Errorf("%v: no boot cycles", lv)
		}
		if lv != LevelNone && !s.KernelKeyInstalled(pac.KeyIB) {
			t.Errorf("%v: IB key not installed", lv)
		}
	}
}

func TestRunProgram(t *testing.T) {
	s, err := New(LevelFull, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := s.RunProgram("demo", func(u *kernel.UserASM) {
		u.SyscallReg(kernel.SysGetppid)
		u.Exit(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no cycles consumed")
	}
	if s.Stats().PACFailures != 0 {
		t.Fatal("PAC failures in benign program")
	}
}

func TestCompatSystem(t *testing.T) {
	s, err := New(LevelBackwardEdge, Options{Seed: 3, Compat: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunProgram("compat", func(u *kernel.UserASM) {
		u.SyscallReg(kernel.SysGetpid)
		u.Exit(0)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeOverride(t *testing.T) {
	s, err := New(LevelBackwardEdge, Options{Seed: 4, Scheme: codegen.SchemeClangSP})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kernel.Cfg.Scheme != codegen.SchemeClangSP {
		t.Fatalf("scheme = %v", s.Kernel.Cfg.Scheme)
	}
}

func TestLevelStrings(t *testing.T) {
	if LevelNone.String() != "none" || LevelBackwardEdge.String() != "backward-edge" ||
		LevelFull.String() != "full" {
		t.Fatal("level names wrong")
	}
}

// TestVerifierRejectsKeyReadingKernel plants an MRS-of-key in the built
// image and checks that core.New refuses to boot it.
func TestVerifierRejectsKeyReadingKernel(t *testing.T) {
	// Build a normal kernel, then corrupt the image under test via the
	// scanner directly: core.New embeds the scan, so simulate by checking
	// the scanner behaviour on a poisoned copy of the text section.
	k, err := kernel.New(kernel.Options{Config: codegen.ConfigFull(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	text := append([]byte(nil), k.Img.Sections[".text"].Bytes...)
	bad := insn.MRS(insn.X0, insn.APIBKeyLo_EL1).Encode()
	text[0] = byte(bad)
	text[1] = byte(bad >> 8)
	text[2] = byte(bad >> 16)
	text[3] = byte(bad >> 24)
	// The same check core.New performs must now fire.
	found := false
	for _, f := range scanForKeyReads(text) {
		_ = f
		found = true
	}
	if !found {
		t.Fatal("planted key read not detected")
	}
}

func TestBootKeysDifferAcrossSeeds(t *testing.T) {
	s1, err := New(LevelFull, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(LevelFull, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	k1 := s1.Kernel.KernelKeysForTest().Keys[pac.KeyIB]
	k2 := s2.Kernel.KernelKeysForTest().Keys[pac.KeyIB]
	if k1 == k2 {
		t.Fatal("kernel keys identical across seeds")
	}
	_ = boot.ModeV83
}

// TestReplicateBuildsIsolatedIdenticalSystems: concurrent replication
// must yield fully booted, mutually isolated, deterministic replicas.
func TestReplicateBuildsIsolatedIdenticalSystems(t *testing.T) {
	systems, err := Replicate(LevelFull, Options{Seed: 21}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 3 {
		t.Fatalf("got %d systems", len(systems))
	}
	ref := systems[0].Stats()
	for i, s := range systems {
		if !s.KernelKeyInstalled(pac.KeyIB) {
			t.Errorf("replica %d: kernel IB key not installed", i)
		}
		if st := s.Stats(); st != ref {
			t.Errorf("replica %d stats %+v differ from replica 0 %+v", i, st, ref)
		}
		if i > 0 && s.Kernel.CPU == systems[0].Kernel.CPU {
			t.Error("replicas share a CPU")
		}
	}
	// Mutating one replica must not leak into another.
	if _, err := systems[1].RunProgram("probe", func(u *kernel.UserASM) {
		u.SyscallReg(kernel.SysGetppid)
		u.Exit(0)
	}); err != nil {
		t.Fatal(err)
	}
	if systems[2].Stats() != ref {
		t.Error("running a program on one replica changed another")
	}
}

// TestReplicateMatchesNew: a pool-forked replica is observably identical
// to a freshly built and booted System — same Stats at rest and same
// cycle consumption running the same program.
func TestReplicateMatchesNew(t *testing.T) {
	opts := Options{Seed: 23}
	fresh, err := New(LevelFull, opts)
	if err != nil {
		t.Fatal(err)
	}
	systems, err := Replicate(LevelFull, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	forked := systems[0]
	if forked.Stats() != fresh.Stats() {
		t.Fatalf("post-boot stats diverge: fork %+v fresh %+v", forked.Stats(), fresh.Stats())
	}
	prog := func(u *kernel.UserASM) {
		u.Syscall(kernel.SysOpenat, 0, kernel.PathDevZero, 0)
		u.SyscallReg(kernel.SysGetppid)
		u.Exit(0)
	}
	c1, err := fresh.RunProgram("probe", prog)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := forked.RunProgram("probe", prog)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("program cycles diverge: fork %d fresh %d", c2, c1)
	}
	if forked.Stats() != fresh.Stats() {
		t.Fatalf("post-run stats diverge: fork %+v fresh %+v", forked.Stats(), fresh.Stats())
	}
}

// TestSystemSnapshotForkReset: the System-level snapshot API forks and
// resets through the same machinery as the pool.
func TestSystemSnapshotForkReset(t *testing.T) {
	sys, err := New(LevelFull, Options{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	fork, err := snap.Fork()
	if err != nil {
		t.Fatal(err)
	}
	prog := func(u *kernel.UserASM) {
		u.SyscallReg(kernel.SysGetppid)
		u.Exit(0)
	}
	want, err := fork.RunProgram("p", prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Reset(fork); err != nil {
		t.Fatal(err)
	}
	if fork.Stats() != sys.Stats() {
		t.Fatalf("reset fork stats %+v differ from origin %+v", fork.Stats(), sys.Stats())
	}
	got, err := fork.RunProgram("p", prog)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("re-run after reset: %d cycles, want %d", got, want)
	}
}
